// Package dinar is the public API of this repository: a from-scratch Go
// implementation of DINAR — "Personalized Privacy-Preserving Federated
// Learning" (Boscher, Benarba, Elhattab, Bouchenak; MIDDLEWARE '24,
// doi:10.1145/3652892.3700785) — together with the complete substrate the
// paper's evaluation needs: a neural-network engine, synthetic stand-ins for
// the paper's seven datasets, the FedAvg federated-learning core, five
// state-of-the-art defense baselines (LDP, CDP, WDP, GC, SA), membership
// inference attacks, the layer-leakage analyzer, the Byzantine-tolerant
// layer-vote consensus, and a TCP middleware deployment.
//
// # Quick start
//
//	sys, err := dinar.New(dinar.Config{
//		Dataset: "purchase100",
//		Defense: "dinar",
//		Clients: 5,
//		Rounds:  10,
//		Seed:    1,
//	})
//	if err != nil { ... }
//	if err := sys.Train(ctx); err != nil { ... }
//	priv, err := sys.EvaluatePrivacy(ctx) // attack AUCs, 50% = optimal
//	acc, err := sys.Utility()             // mean personalized accuracy
//
// Experiment reproduction (every table/figure of the paper's §5) is exposed
// through RunExperiment and the cmd/dinar-bench tool.
package dinar

import (
	"context"
	"fmt"
	"math"
	"time"

	"repro/internal/data"
	"repro/internal/defense"
	"repro/internal/experiment"
	"repro/internal/fl"
)

// Defenses lists the supported defense names in the paper's presentation
// order: "none" (undefended baseline), "wdp", "ldp", "cdp", "gc", "sa", and
// "dinar".
func Defenses() []string {
	return append([]string(nil), defense.StandardNames...)
}

// Datasets lists the supported dataset names (synthetic stand-ins for the
// paper's Table 2, CPU-scaled).
func Datasets() []string { return data.Names() }

// Experiments lists the reproducible paper artifacts (table/figure IDs).
func Experiments() []string { return experiment.IDs() }

// Config describes a federated-learning run.
type Config struct {
	// Dataset is one of Datasets() (default "purchase100").
	Dataset string
	// Defense is one of Defenses() (default "dinar").
	Defense string
	// Clients is the number of FL participants (default 5).
	Clients int
	// Rounds is the number of FL rounds (default 10).
	Rounds int
	// LocalEpochs is the number of local epochs per round (default 5).
	LocalEpochs int
	// BatchSize is the local mini-batch size (default 64, as in the paper).
	BatchSize int
	// LearningRate is the client learning rate; 0 selects a per-optimizer
	// default.
	LearningRate float64
	// Optimizer overrides the client optimizer ("sgd", "adagrad", "adam",
	// "adamax", "rmsprop", "adgd"). Empty selects DINAR's Adagrad when
	// Defense is "dinar" and SGD otherwise.
	Optimizer string
	// Records overrides the dataset's record count (0 = spec default).
	Records int
	// DirichletAlpha < +Inf produces a non-IID partition (§5.8); 0 means
	// IID.
	DirichletAlpha float64
	// Seed makes the run fully deterministic.
	Seed int64
	// Parallel trains clients concurrently.
	Parallel bool
	// Aggregator selects the server-side aggregation rule: "fedavg" (the
	// default, the defense's own rule), "median", "trimmed-mean", "krum",
	// "multi-krum", or "norm-bound". The robust rules tolerate up to
	// MaxByzantine poisoned updates per round.
	Aggregator string
	// MaxByzantine is the assumed number of malicious clients f the robust
	// aggregator must tolerate.
	MaxByzantine int
}

// Aggregators lists the selectable server-side aggregation rules.
func Aggregators() []string {
	return append([]string(nil), fl.AggregatorNames...)
}

func (c Config) withDefaults() Config {
	if c.Defense == "" {
		c.Defense = "dinar"
	}
	if c.Optimizer == "" {
		if c.Defense == "dinar" {
			c.Optimizer = "adagrad"
		} else {
			c.Optimizer = "sgd"
		}
	}
	if c.Dataset == "" {
		c.Dataset = "purchase100"
	}
	if c.LearningRate == 0 {
		c.LearningRate = fl.DefaultLearningRate(c.Dataset, c.Optimizer)
	}
	if c.Clients == 0 {
		c.Clients = 5
	}
	if c.Rounds == 0 {
		c.Rounds = 10
	}
	if c.LocalEpochs == 0 {
		c.LocalEpochs = 5
	}
	if c.BatchSize == 0 {
		c.BatchSize = 64
	}
	if c.DirichletAlpha == 0 {
		c.DirichletAlpha = math.Inf(1)
	}
	return c
}

// DefaultLearningRate returns the tuned learning rate for a (dataset,
// optimizer) pair: adaptive optimizers use 0.01, SGD uses a per-dataset
// tuned rate.
func DefaultLearningRate(dataset, optimizer string) float64 {
	return fl.DefaultLearningRate(dataset, optimizer)
}

// System is an assembled federation ready to train.
type System struct {
	cfg Config
	sys *fl.System

	finalUpdates []*fl.Update
}

// New builds a deterministic federated system from cfg.
func New(cfg Config) (*System, error) {
	cfg = cfg.withDefaults()
	def, err := defense.New(cfg.Defense, cfg.Seed+7, cfg.Clients)
	if err != nil {
		return nil, err
	}
	flCfg := fl.Config{
		Dataset:        cfg.Dataset,
		Records:        cfg.Records,
		Clients:        cfg.Clients,
		Rounds:         cfg.Rounds,
		LocalEpochs:    cfg.LocalEpochs,
		BatchSize:      cfg.BatchSize,
		LearningRate:   cfg.LearningRate,
		Optimizer:      cfg.Optimizer,
		DirichletAlpha: cfg.DirichletAlpha,
		Seed:           cfg.Seed,
		Parallel:       cfg.Parallel,
		Aggregator:     cfg.Aggregator,
		MaxByzantine:   cfg.MaxByzantine,
	}
	sys, err := fl.NewSystem(flCfg, def)
	if err != nil {
		return nil, err
	}
	return &System{cfg: cfg, sys: sys}, nil
}

// Train runs all configured rounds and installs the final (personalized)
// models into the clients.
func (s *System) Train(ctx context.Context) error {
	updates, err := s.sys.Run(ctx)
	if err != nil {
		return err
	}
	s.finalUpdates = updates
	return s.sys.FinalizeClients()
}

// Rounds returns the number of completed rounds.
func (s *System) Rounds() int { return s.sys.Server.Round() }

// Utility returns the paper's overall model utility metric: the mean test
// accuracy of the clients' personalized models (Appendix A). Call after
// Train.
func (s *System) Utility() (float64, error) {
	if s.sys.Server.Round() == 0 {
		return 0, fmt.Errorf("dinar: Utility before Train")
	}
	return s.sys.MeanClientAccuracy(s.sys.Split.Test)
}

// PrivacyReport holds membership-inference outcomes; 0.5 is the optimum
// (random attacker), higher means more leakage.
type PrivacyReport struct {
	// GlobalAUC is the attack AUC against the global FL model.
	GlobalAUC float64
	// LocalAUC is the mean attack AUC against the clients' uploaded models.
	LocalAUC float64
}

// EvaluatePrivacy mounts the paper's shadow-model membership inference
// attack (§5.5, [41]) against the trained system and reports attack AUCs.
// Call after Train.
func (s *System) EvaluatePrivacy(ctx context.Context) (*PrivacyReport, error) {
	if s.finalUpdates == nil {
		return nil, fmt.Errorf("dinar: EvaluatePrivacy before Train")
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	run := &experiment.FLRun{Sys: s.sys, Updates: s.finalUpdates}
	o := experiment.DefaultOptions()
	o.Seed = s.cfg.Seed
	o.BatchSize = s.cfg.BatchSize
	atk, err := o.NewAttacker(run)
	if err != nil {
		return nil, err
	}
	global, err := experiment.GlobalAUC(run, atk)
	if err != nil {
		return nil, err
	}
	local, err := experiment.LocalAUC(run, atk)
	if err != nil {
		return nil, err
	}
	return &PrivacyReport{GlobalAUC: global, LocalAUC: local}, nil
}

// CostReport summarizes measured costs (Table 3's metrics). The heap peaks
// are process-global samples (see metrics.CostMeter): with parallel clients
// the train-phase peak includes concurrently training siblings, so the
// per-phase split is an upper bound per phase, not a per-client figure.
type CostReport struct {
	MeanClientTrain time.Duration
	MeanServerAgg   time.Duration
	PeakAllocBytes  uint64
	PeakTrainBytes  uint64
	PeakAggBytes    uint64
	DefenseBytes    uint64
}

// Costs returns the run's cost metrics.
func (s *System) Costs() CostReport {
	r := s.sys.Meter.Report()
	return CostReport{
		MeanClientTrain: r.MeanClientTrain,
		MeanServerAgg:   r.MeanServerAgg,
		PeakAllocBytes:  r.PeakAllocBytes,
		PeakTrainBytes:  r.PeakTrainBytes,
		PeakAggBytes:    r.PeakAggBytes,
		DefenseBytes:    r.DefenseBytes,
	}
}

// RunExperiment regenerates one paper artifact ("table1", "fig1", "fig3",
// "fig4", "fig5", "fig6", "fig7", "table3", "fig8", "fig9", "fig10",
// "fig11") and returns its rendered table. quick selects a reduced
// smoke-scale configuration.
func RunExperiment(ctx context.Context, id string, quick bool) (string, error) {
	o := experiment.DefaultOptions()
	if quick {
		o = experiment.QuickOptions()
	}
	tbl, err := experiment.Run(ctx, id, o)
	if err != nil {
		return "", err
	}
	return tbl.String(), nil
}
