package dinar

import (
	"math/rand"

	"repro/internal/data"
	"repro/internal/defense"
	"repro/internal/fl"
	"repro/internal/model"
	"repro/internal/service"
)

// JobBuilder adapts this package's model/defense construction to the
// multi-tenant control plane: given a job spec it builds the dataset's
// model, seeds and binds the configured defense, and returns the initial
// global state — exactly the construction a single-tenant
// NewMiddlewareServer performs, so a job's federation is bit-identical
// to a standalone server with the same configuration. The spec is
// normalized in place (defense/dataset/aggregator defaults) so the job's
// flnet server and its clients derive the same configuration.
func JobBuilder() service.Builder {
	return func(spec *service.JobSpec) (fl.Defense, []float64, error) {
		cfg := Config{
			Dataset:      spec.Dataset,
			Defense:      spec.Defense,
			Clients:      spec.Clients,
			Rounds:       spec.Rounds,
			Seed:         spec.Seed,
			Records:      spec.Records,
			Aggregator:   spec.Aggregator,
			MaxByzantine: spec.MaxByzantine,
		}.withDefaults()
		spec.Dataset = cfg.Dataset
		spec.Defense = cfg.Defense
		spec.Aggregator = cfg.Aggregator

		dspec, err := data.Lookup(cfg.Dataset)
		if err != nil {
			return nil, nil, err
		}
		m, err := model.Build(dspec, rand.New(rand.NewSource(cfg.Seed+2)))
		if err != nil {
			return nil, nil, err
		}
		def, err := defense.New(cfg.Defense, cfg.Seed+7, cfg.Clients)
		if err != nil {
			return nil, nil, err
		}
		def, err = fl.WithAggregator(def, cfg.Aggregator, cfg.MaxByzantine)
		if err != nil {
			return nil, nil, err
		}
		if err := def.Bind(fl.InfoOf(m)); err != nil {
			return nil, nil, err
		}
		return def, m.StateVector(), nil
	}
}
