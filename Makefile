# Tier-1 verification plus the stricter gates (vet, race detector).
#
#   make verify   - tier-1: build + full test suite
#   make vet      - static analysis
#   make race     - full suite under the race detector (slow)
#   make check    - everything above
#   make fuzz     - short fuzz pass over the wire-protocol decoder

GO ?= go

.PHONY: verify vet race check fuzz

verify:
	$(GO) build ./...
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

check: verify vet race

fuzz:
	$(GO) test -run=NONE -fuzz=FuzzReadMessage -fuzztime=30s ./internal/flnet/
