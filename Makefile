# Tier-1 verification plus the stricter gates (vet, race detector).
#
#   make verify     - tier-1: build + full test suite
#   make vet        - static analysis
#   make race       - full suite under the race detector (slow)
#   make adversary  - Byzantine defense matrix (screen, aggregators,
#                     poisoning suite, networked quarantine) under -race
#   make alloc      - allocation-regression guard: the training hot path
#                     must stay zero-allocation in steady state
#   make parallel   - compute-pool guards: pool invariants plus the
#                     serial-vs-parallel bit-identity property tests,
#                     under -race
#   make telemetry  - observability guards: registry/event-log/admin tests
#                     under -race (including the rejoin log-serialization
#                     hammer), the /metrics golden test, the instrument
#                     zero-alloc guard, and the /healthz e2e
#   make chaos      - crash-safe lifecycle acceptance under -race: the
#                     seeded chaos soak (server crash/resume, checkpoint
#                     corruption, client restarts, partitions), the drain
#                     lifecycle, the private-store restart test, and the
#                     checkpoint corruption/retention table
#   make soak       - overload-resilience soak at short scale under -race:
#                     the in-memory fleet harness, the sampled streaming /
#                     partitioned-memory / async scale soaks, and the
#                     sampling crash-resume + quarantine property tests
#                     (make chaos runs the same soaks at full 10k scale)
#   make service    - multi-tenant control-plane acceptance under -race:
#                     the concurrent-job soak (3 named federations in one
#                     process on fleetsim listeners), rolling restart with
#                     bit-identical resume, the job-churn leak hammer, the
#                     admin REST validation matrix, front-door rate
#                     limiting, pause/resume, and the pipelined-vs-
#                     sequential identity property tests
#   make wirebench  - wire-protocol benchmarks (binary frame encode/decode
#                     throughput, bytes per federation round with the full
#                     codec stack), merged into BENCH_hotpath.json
#   make bench-check - perf regression gate: rerun the benchmarks recorded
#                     in BENCH_hotpath.json and fail past +15% ns/op (or if
#                     a 0-alloc entry starts allocating); failing entries
#                     are retried and the minimum kept, so the gate trips
#                     on real regressions rather than scheduler noise
#   make check      - everything above
#   make fuzz       - short fuzz pass over the wire-protocol decoders (gob
#                     and binary frames), the update screen, the /healthz
#                     JSON round trip, the checkpoint envelope (CRC +
#                     corruption invariants), the blocked-GEMM shape
#                     dispatch (arbitrary shapes vs the naive reference),
#                     and the service-mode job-spec decoder/validator
#   make bench      - kernel + per-layer hot-path microbenchmarks
#   make bench-json - rerun the tracked hot-path suite, updating
#                     BENCH_hotpath.json (baseline section is preserved)
#   make bench-scaling - GOMAXPROCS sweep: ns/op, speedup, and scaling
#                     efficiency per CPU count, recorded in the same file;
#                     fails if any parallel path diverges from serial

GO ?= go

.PHONY: verify vet race adversary alloc parallel telemetry chaos soak service wirebench bench-check check fuzz bench bench-json bench-scaling

verify:
	$(GO) build ./...
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race -timeout 30m ./...

adversary:
	$(GO) test -race ./internal/adversary/ ./internal/fl/ -run 'TestScreen|TestServerAggregate|TestKrum|TestMultiKrum|TestNormBounded|TestWithAggregator|TestMedian|TestTrimmedMean|Test.*Adversary|TestWrap|TestSignFlip|TestBoost|TestNoise|TestNaNBomb|TestReplay|TestStopAfter|TestFirstF|TestKinds|TestBenign'
	$(GO) test -race ./internal/flnet/ -run TestQuarantineSurvivesReconnect

alloc:
	$(GO) test ./internal/nn/ -run 'TestSteadyStateZeroAllocs|TestMatMulSteadyStateZeroAllocs' -v
	$(GO) test ./internal/tensor/ -run TestWorkspaceSteadyStateAllocs -v

parallel:
	$(GO) test -race ./internal/parallel/
	$(GO) test -race ./internal/tensor/ ./internal/nn/ ./internal/fl/ ./internal/bench/ -run 'BitIdentical|TestFinalizeClientsFirstErrorWins|TestCheckParallelDeterminism'

telemetry:
	$(GO) test -race ./internal/telemetry/
	$(GO) test -race ./internal/flnet/ -run 'TestLogfSerializedUnderRejoinHammer|TestServerHealthSnapshot'
	$(GO) test ./internal/telemetry/ -run TestHotPathAllocFree -v
	$(GO) test . -run TestObservabilityEndToEnd -v

chaos:
	$(GO) test -race -timeout 15m ./internal/chaos/
	$(GO) test -race ./internal/checkpoint/ ./internal/faultnet/

soak:
	$(GO) test -race ./internal/fleetsim/
	$(GO) test -race -short ./internal/chaos/ -run 'TestScaleSoak|TestSampledCohortResumeIdentity|TestQuarantinedClientNeverResampled'

service:
	$(GO) test -race -count=1 ./internal/service/
	$(GO) test -race ./internal/chaos/ -run 'TestPipelinedMatchesSequential|TestPipelinedDrainResumeIdentity'

wirebench:
	$(GO) run ./cmd/dinar-bench -only wire_encode,wire_decode,bytes_per_round -json BENCH_hotpath.json

bench-check:
	$(GO) run ./cmd/dinar-bench -compare -json BENCH_hotpath.json

check: verify vet race adversary alloc parallel telemetry chaos soak service wirebench bench-check

bench:
	$(GO) test -run=NONE -bench=. -benchmem ./internal/tensor/ ./internal/nn/

bench-json:
	$(GO) run ./cmd/dinar-bench -json BENCH_hotpath.json

bench-scaling:
	$(GO) run ./cmd/dinar-bench -scaling -json BENCH_hotpath.json

fuzz:
	$(GO) test -run=NONE -fuzz=FuzzReadMessage -fuzztime=30s ./internal/flnet/
	$(GO) test -run=NONE -fuzz=FuzzFrame -fuzztime=30s ./internal/flnet/
	$(GO) test -run=NONE -fuzz=FuzzScreen -fuzztime=30s ./internal/fl/
	$(GO) test -run=NONE -fuzz=FuzzHealthJSON -fuzztime=30s ./internal/telemetry/
	$(GO) test -run=NONE -fuzz=FuzzEnvelope$$ -fuzztime=30s ./internal/checkpoint/
	$(GO) test -run=NONE -fuzz=FuzzEnvelopeCorruption -fuzztime=30s ./internal/checkpoint/
	$(GO) test -run=NONE -fuzz=FuzzBlockedGEMM -fuzztime=30s ./internal/tensor/
	$(GO) test -run=NONE -fuzz=FuzzJobSpec -fuzztime=30s ./internal/service/
