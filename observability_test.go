package dinar

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// TestObservabilityEndToEnd is the PR's acceptance scenario: a live
// 3-client federation with -admin-addr enabled answers /healthz with round
// progression, /metrics with the federation's counters, and /debug/pprof/,
// while the per-round reports carry the per-phase timing breakdown.
func TestObservabilityEndToEnd(t *testing.T) {
	cfg := Config{
		Dataset:     "purchase100",
		Defense:     "dinar",
		Clients:     3,
		Rounds:      2,
		LocalEpochs: 1,
		Records:     300,
		BatchSize:   32,
		Seed:        17,
	}
	srv, err := NewMiddlewareServer(ServerOptions{
		Addr:      "127.0.0.1:0",
		AdminAddr: "127.0.0.1:0",
		Config:    cfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	adminAddr := srv.AdminAddr()
	if adminAddr == "" {
		t.Fatal("AdminAddr empty with AdminAddr option set")
	}
	base := "http://" + adminAddr

	getHealth := func() telemetry.Health {
		t.Helper()
		resp, err := http.Get(base + "/healthz")
		if err != nil {
			t.Fatalf("GET /healthz: %v", err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		h, err := telemetry.DecodeHealth(body)
		if err != nil {
			t.Fatalf("decode /healthz %s: %v", body, err)
		}
		return h
	}

	// Before any client registers the federation is waiting at round 0.
	if h := getHealth(); h.Status != "waiting" || h.Round != 0 || h.Rounds != cfg.Rounds ||
		h.NumClients != cfg.Clients || h.CheckpointRound != -1 {
		t.Fatalf("pre-run health = %+v", h)
	}

	ctx := context.Background()
	done := make(chan error, 1)
	go func() {
		_, err := srv.Serve(ctx)
		done <- err
	}()
	results := make(chan error, cfg.Clients)
	for i := 0; i < cfg.Clients; i++ {
		go func(id int) {
			_, err := RunMiddlewareClient(ctx, ClientOptions{
				Addr:     srv.Addr(),
				Config:   cfg,
				ClientID: id,
			})
			results <- err
		}(i)
	}

	// The /healthz snapshot must progress out of "waiting" while the
	// federation runs: poll until registered clients appear and the status
	// advances.
	sawProgress := false
	deadline := time.Now().Add(time.Minute)
	for time.Now().Before(deadline) {
		h := getHealth()
		if h.Status != "waiting" && h.RegisteredClients > 0 {
			sawProgress = true
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !sawProgress {
		t.Error("/healthz never reported a running federation")
	}

	for i := 0; i < cfg.Clients; i++ {
		if err := <-results; err != nil {
			t.Fatal(err)
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	// Final health: done, at the terminal round.
	if h := getHealth(); h.Status != "done" || h.Round != cfg.Rounds {
		t.Errorf("final health = %+v", h)
	}

	// /metrics carries the federation's counters in Prometheus text format.
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	metricsOut := string(body)
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("/metrics content type %q", ct)
	}
	for _, name := range []string{
		"dinar_flnet_rounds_started_total",
		"dinar_flnet_rounds_completed_total",
		"dinar_flnet_live_clients",
		"dinar_wire_tx_bytes_total",
		"dinar_wire_rx_frames_total",
		"dinar_fl_aggregate_seconds_count",
		"dinar_flnet_round_wait_seconds_bucket",
	} {
		if !strings.Contains(metricsOut, name) {
			t.Errorf("/metrics missing %s", name)
		}
	}
	// This process ran at least cfg.Rounds full rounds (other tests in the
	// binary may add more — counters are process-global).
	var started int64
	for _, line := range strings.Split(metricsOut, "\n") {
		if strings.HasPrefix(line, "dinar_flnet_rounds_started_total ") {
			fmt.Sscanf(line, "dinar_flnet_rounds_started_total %d", &started)
		}
	}
	if started < int64(cfg.Rounds) {
		t.Errorf("rounds_started_total = %d, want >= %d", started, cfg.Rounds)
	}

	// pprof answers under /debug/.
	resp, err = http.Get(base + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/debug/pprof/ status %d", resp.StatusCode)
	}

	// Every aggregated round reports its per-phase timing.
	reports := srv.Reports()
	if len(reports) != cfg.Rounds {
		t.Fatalf("got %d round reports, want %d", len(reports), cfg.Rounds)
	}
	for _, rep := range reports {
		if rep.Timing.Broadcast <= 0 || rep.Timing.Wait <= 0 || rep.Timing.Aggregate <= 0 {
			t.Errorf("round %d timing incomplete: %+v", rep.Round, rep.Timing)
		}
		if rep.Timing.Wait < rep.Timing.Broadcast {
			t.Errorf("round %d: wait %s < broadcast %s (wait spans the whole collection)",
				rep.Round, rep.Timing.Wait, rep.Timing.Broadcast)
		}
	}
}
