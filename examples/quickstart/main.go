// Quickstart: train a DINAR-protected federation on the Purchase100-like
// dataset, then measure what the paper measures — membership-inference
// attack AUC (50% is optimal) and personalized model utility.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	dinar "repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx := context.Background()
	cfg := dinar.Config{
		Dataset:     "purchase100",
		Defense:     "dinar",
		Clients:     5,
		Rounds:      8,
		LocalEpochs: 3,
		Records:     1200,
		Seed:        1,
		Parallel:    true,
	}

	fmt.Printf("Training %d clients on %q with defense %q...\n", cfg.Clients, cfg.Dataset, cfg.Defense)
	start := time.Now()
	sys, err := dinar.New(cfg)
	if err != nil {
		return err
	}
	if err := sys.Train(ctx); err != nil {
		return err
	}
	fmt.Printf("Completed %d rounds in %s.\n\n", sys.Rounds(), time.Since(start).Round(time.Millisecond))

	acc, err := sys.Utility()
	if err != nil {
		return err
	}
	fmt.Printf("Mean personalized model accuracy: %.1f%%\n", acc*100)

	fmt.Println("Mounting the shadow-model membership inference attack...")
	priv, err := sys.EvaluatePrivacy(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("Attack AUC against the global model:  %.1f%% (optimal: 50%%)\n", priv.GlobalAUC*100)
	fmt.Printf("Attack AUC against client uploads:    %.1f%% (optimal: 50%%)\n", priv.LocalAUC*100)

	costs := sys.Costs()
	fmt.Printf("\nCosts: %.0f ms/round client training, %.2f ms server aggregation\n",
		float64(costs.MeanClientTrain.Microseconds())/1000,
		float64(costs.MeanServerAgg.Microseconds())/1000)
	return nil
}
