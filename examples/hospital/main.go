// Hospital: a cross-silo federation of hospitals training a diagnosis
// classifier on Texas100-like discharge records — the paper's motivating
// scenario for membership privacy (knowing a record was in the training set
// reveals that the person was a patient).
//
// The example demonstrates DINAR's full pipeline:
//
//  1. Initialization (§4.1): hospitals locally measure which model layer
//     leaks most membership information and agree via the
//     Byzantine-tolerant broadcast vote — here with one malicious hospital.
//  2. An undefended federation is attacked to show the leak.
//  3. The same federation protected by DINAR is attacked again.
//
// Run with: go run ./examples/hospital
package main

import (
	"context"
	"fmt"
	"log"

	dinar "repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx := context.Background()
	base := dinar.Config{
		Dataset:     "texas100",
		Clients:     5,
		Rounds:      6,
		LocalEpochs: 3,
		Records:     1200,
		Seed:        7,
		Parallel:    true,
	}

	fmt.Println("Step 1 - DINAR initialization: hospitals vote on the most privacy-sensitive layer")
	fmt.Println("         (hospital #4 is Byzantine and votes arbitrarily)")
	layer, err := dinar.ChoosePrivateLayer(ctx, base, []int{4})
	if err != nil {
		return err
	}
	fmt.Printf("         consensus: obfuscate layer %d\n\n", layer)

	type outcome struct {
		acc  float64
		priv *dinar.PrivacyReport
	}
	runOne := func(defense string) (*outcome, error) {
		cfg := base
		cfg.Defense = defense
		sys, err := dinar.New(cfg)
		if err != nil {
			return nil, err
		}
		if err := sys.Train(ctx); err != nil {
			return nil, err
		}
		acc, err := sys.Utility()
		if err != nil {
			return nil, err
		}
		priv, err := sys.EvaluatePrivacy(ctx)
		if err != nil {
			return nil, err
		}
		return &outcome{acc: acc, priv: priv}, nil
	}

	fmt.Println("Step 2 - undefended federation")
	plain, err := runOne("none")
	if err != nil {
		return err
	}
	fmt.Printf("         accuracy %.1f%%  |  attack AUC: global %.1f%%, hospital uploads %.1f%%\n\n",
		plain.acc*100, plain.priv.GlobalAUC*100, plain.priv.LocalAUC*100)

	fmt.Println("Step 3 - DINAR-protected federation")
	prot, err := runOne("dinar")
	if err != nil {
		return err
	}
	fmt.Printf("         accuracy %.1f%%  |  attack AUC: global %.1f%%, hospital uploads %.1f%%\n\n",
		prot.acc*100, prot.priv.GlobalAUC*100, prot.priv.LocalAUC*100)

	fmt.Printf("Summary: DINAR moved the attack from %.1f%% toward the 50%% optimum while keeping accuracy (%.1f%% vs %.1f%%).\n",
		plain.priv.GlobalAUC*100, prot.acc*100, plain.acc*100)
	return nil
}
