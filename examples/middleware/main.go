// Middleware: deploy the DINAR federation over real TCP sockets — one
// middleware server plus N client participants, here run as goroutines of a
// single process for convenience (the cmd/dinar-server and cmd/dinar-client
// tools run the same code as separate processes).
//
// Every client personalizes the received global model (restoring its private
// layer), trains locally with adaptive gradient descent, obfuscates the
// private layer, and uploads — exactly Algorithm 1, over the wire.
//
// Run with: go run ./examples/middleware
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	dinar "repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cfg := dinar.Config{
		Dataset:     "texas100",
		Defense:     "dinar",
		Clients:     3,
		Rounds:      4,
		LocalEpochs: 2,
		Records:     800,
		Seed:        11,
	}

	srv, err := dinar.NewMiddlewareServer(dinar.ServerOptions{Addr: "127.0.0.1:0", Config: cfg})
	if err != nil {
		return err
	}
	fmt.Printf("middleware server listening on %s\n", srv.Addr())

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	serverDone := make(chan error, 1)
	go func() {
		_, err := srv.Serve(ctx)
		serverDone <- err
	}()

	var wg sync.WaitGroup
	results := make([]*dinar.ParticipantResult, cfg.Clients)
	errs := make([]error, cfg.Clients)
	for i := 0; i < cfg.Clients; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			res, err := dinar.RunMiddlewareClient(ctx, dinar.ClientOptions{
				Addr:     srv.Addr(),
				Config:   cfg,
				ClientID: id,
			})
			results[id], errs[id] = res, err
		}(i)
	}
	wg.Wait()
	if err := <-serverDone; err != nil {
		return fmt.Errorf("server: %w", err)
	}
	for id, err := range errs {
		if err != nil {
			return fmt.Errorf("client %d: %w", id, err)
		}
	}
	fmt.Printf("federation of %d clients finished %d rounds over TCP\n", cfg.Clients, cfg.Rounds)
	for id, res := range results {
		fmt.Printf("client %d: personalized model accuracy %.1f%%\n", id, res.Accuracy*100)
	}
	return nil
}
