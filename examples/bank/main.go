// Bank: a consortium of banks trains a shared customer-classification model
// on Purchase100-like transaction indicators — the paper's cross-silo
// banking scenario (§1, §2.1). The consortium's compliance team compares
// every available privacy defense on three axes at once: privacy (attack
// AUC), utility (model accuracy), and cost (training/aggregation time) —
// i.e. a miniature of the paper's Figures 6/7 and Table 3 on one dataset.
//
// Run with: go run ./examples/bank
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	dinar "repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx := context.Background()
	fmt.Println("Bank consortium defense comparison (purchase100, 5 banks)")
	fmt.Println()
	fmt.Printf("%-8s %12s %12s %14s %14s\n", "defense", "localAUC(%)", "accuracy(%)", "train/round", "aggregation")

	for _, def := range dinar.Defenses() {
		cfg := dinar.Config{
			Dataset:     "purchase100",
			Defense:     def,
			Clients:     5,
			Rounds:      6,
			LocalEpochs: 3,
			Records:     1000,
			Seed:        3,
			Parallel:    true,
		}
		sys, err := dinar.New(cfg)
		if err != nil {
			return err
		}
		if err := sys.Train(ctx); err != nil {
			return err
		}
		acc, err := sys.Utility()
		if err != nil {
			return err
		}
		priv, err := sys.EvaluatePrivacy(ctx)
		if err != nil {
			return err
		}
		costs := sys.Costs()
		fmt.Printf("%-8s %12.1f %12.1f %14s %14s\n",
			def, priv.LocalAUC*100, acc*100,
			costs.MeanClientTrain.Round(time.Millisecond),
			costs.MeanServerAgg.Round(10*time.Microsecond))
	}
	fmt.Println()
	fmt.Println("Reading: optimal privacy is 50% AUC; DINAR should reach it without the")
	fmt.Println("accuracy loss of the DP baselines or the aggregation cost of CDP.")
	return nil
}
