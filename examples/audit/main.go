// Audit: the complete DINAR initialization story (§3 + §4.1) on one screen.
//
//  1. Train an undefended federation and measure each layer's membership
//     leakage (the Jensen–Shannon generalization gap of §3) — the evidence
//     behind the paper's Figure 1.
//  2. Have every client run the same measurement locally and vote; reach the
//     Byzantine-tolerant consensus of §4.1 on the layer DINAR must protect.
//  3. Verify the choice: attack the unprotected uploads, then attack uploads
//     with only the agreed layer obfuscated.
//
// Run with: go run ./examples/audit
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	dinar "repro"
	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/plot"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx := context.Background()
	o := experiment.DefaultOptions()
	o.Records = 1000
	o.Rounds = 6
	o.Seed = 5

	fmt.Println("Step 1 - layer-leakage analysis (§3) on an undefended federation")
	fig1, err := experiment.Fig1(ctx, o, "purchase100")
	if err != nil {
		return err
	}
	series := fig1.Series[0]
	fmt.Print(plot.Series("  per-layer JS divergence:", map[string][]float64{
		"purchase100": series.Divergences,
	}))
	fmt.Println()

	fmt.Println("Step 2 - clients vote; Byzantine-tolerant consensus (§4.1)")
	layer, err := dinar.ChoosePrivateLayer(ctx, dinar.Config{
		Dataset:   "purchase100",
		Clients:   5,
		Records:   1000,
		BatchSize: 32,
		Seed:      5,
	}, []int{4}) // client 4 lies
	if err != nil {
		return err
	}
	fmt.Printf("  agreed private layer: %d\n\n", layer)

	fmt.Println("Step 3 - verify: attack uploads without and with that layer obfuscated")
	runFL, err := experiment.RunFL(ctx, o, "purchase100", "none")
	if err != nil {
		return err
	}
	atk := attack.NewLossAttack()
	before, err := experiment.LocalAUC(runFL, atk)
	if err != nil {
		return err
	}
	// Obfuscate exactly the agreed layer in every final upload and re-attack.
	spec := runFL.Sys.Spec()
	sum := 0.0
	for _, u := range runFL.Updates {
		state := append([]float64(nil), u.State...)
		m, err := experiment.ModelFromState(spec, state, 42)
		if err != nil {
			return err
		}
		sp := m.Spans()[layer]
		if err := core.Obfuscate(state, sp, core.ObfuscateGaussian, rand.New(rand.NewSource(int64(u.ClientID)))); err != nil {
			return err
		}
		m2, err := experiment.ModelFromState(spec, state, 43)
		if err != nil {
			return err
		}
		auc, err := atk.AUC(m2, runFL.Sys.Shards[u.ClientID], runFL.Sys.Split.Test)
		if err != nil {
			return err
		}
		sum += auc
	}
	after := sum / float64(len(runFL.Updates))
	fmt.Printf("  attack AUC on raw uploads:        %.1f%%\n", before*100)
	fmt.Printf("  attack AUC with layer %d obfuscated: %.1f%% (optimal: 50%%)\n", layer, after*100)
	return nil
}
