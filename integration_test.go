package dinar

// Cross-cutting integration tests: checkpoint/resume of a federation,
// DINAR personalization across participation gaps, and wire-format fuzzing.

import (
	"bytes"
	"context"
	"math/rand"
	"path/filepath"
	"testing"
	"testing/quick"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/fl"
	"repro/internal/flnet"
	"repro/internal/model"
)

// TestCheckpointResume saves the global model mid-run, builds a fresh server
// from the checkpoint, and verifies the federation continues from exactly
// the saved state.
func TestCheckpointResume(t *testing.T) {
	cfg := fl.Config{
		Dataset:      "purchase100",
		Records:      400,
		Clients:      3,
		Rounds:       2,
		LocalEpochs:  1,
		BatchSize:    32,
		LearningRate: 0.1,
		Optimizer:    "sgd",
		Seed:         3,
	}
	sys, err := fl.NewSystem(cfg, noneForTest{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := sys.RunRound(ctx); err != nil {
		t.Fatal(err)
	}

	// Save mid-run.
	dir := t.TempDir()
	path := filepath.Join(dir, "global.ckpt")
	snap := &checkpoint.Snapshot{
		Dataset: "purchase100",
		Round:   sys.Server.Round(),
		State:   sys.Server.GlobalState(),
	}
	if err := checkpoint.SaveFile(path, snap); err != nil {
		t.Fatal(err)
	}

	// Resume: a new server starts from the checkpointed state.
	loaded, err := checkpoint.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Round != 1 {
		t.Fatalf("round = %d", loaded.Round)
	}
	resumed, err := fl.NewServer(loaded.State, noneForTest{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	a, b := sys.Server.GlobalState(), resumed.GlobalState()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("resumed state diverges from the checkpoint")
		}
	}
}

// noneForTest is a minimal identity defense for integration tests.
type noneForTest struct{}

func (noneForTest) Name() string            { return "none" }
func (noneForTest) Bind(fl.ModelInfo) error { return nil }
func (noneForTest) OnGlobalModel(_, _ int, g []float64) []float64 {
	return append([]float64(nil), g...)
}
func (noneForTest) BeforeUpload(int, []float64, *fl.Update) {}
func (noneForTest) Aggregate(_ int, _ []float64, u []*fl.Update) ([]float64, error) {
	return fl.FedAvg(u)
}

// TestDINARPrivateStoreSurvivesCheckpoint exports a client's private store,
// persists it, and restores it into a fresh DINAR instance — the crash
// recovery path for θᵖ*, which exists nowhere but the client.
func TestDINARPrivateStoreSurvivesCheckpoint(t *testing.T) {
	spec, err := data.Lookup("purchase100")
	if err != nil {
		t.Fatal(err)
	}
	m, err := model.Build(spec, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	d := core.New(7)
	if err := d.Bind(fl.InfoOf(m)); err != nil {
		t.Fatal(err)
	}
	u := &fl.Update{ClientID: 2, State: m.StateVector(), NumSamples: 10}
	d.BeforeUpload(0, nil, u)

	exported := d.ExportStore(2)
	if exported == nil {
		t.Fatal("nothing to export")
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "private.ckpt")
	if err := checkpoint.SavePrivateFile(path, &checkpoint.PrivateLayers{
		ClientID: 2,
		Layers:   exported,
	}); err != nil {
		t.Fatal(err)
	}
	loaded, err := checkpoint.LoadPrivateFile(path)
	if err != nil {
		t.Fatal(err)
	}

	fresh := core.New(7)
	if err := fresh.Bind(fl.InfoOf(m)); err != nil {
		t.Fatal(err)
	}
	if err := fresh.ImportStore(loaded.ClientID, loaded.Layers); err != nil {
		t.Fatal(err)
	}
	// Personalization must restore the recovered layer.
	global := make([]float64, m.NumState())
	personalized := fresh.OnGlobalModel(2, 1, global)
	p := fresh.PrivateLayers()[0]
	sp := m.Spans()[p]
	for i := 0; i < sp.Len; i++ {
		if personalized[sp.Offset+i] != exported[p][i] {
			t.Fatal("recovered private layer not restored")
		}
	}
}

// TestDINARPersonalizationAcrossParticipationGaps verifies a client that
// skips rounds keeps its private layer: the store is keyed per client and
// only overwritten when that client uploads.
func TestDINARPersonalizationAcrossParticipationGaps(t *testing.T) {
	spec, err := data.Lookup("purchase100")
	if err != nil {
		t.Fatal(err)
	}
	m, err := model.Build(spec, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	d := core.New(7)
	if err := d.Bind(fl.InfoOf(m)); err != nil {
		t.Fatal(err)
	}
	p := d.PrivateLayers()[0]

	// Round 0: client 0 participates.
	u0 := &fl.Update{ClientID: 0, State: m.StateVector(), NumSamples: 10}
	d.BeforeUpload(0, nil, u0)
	saved := d.StoredPrivate(0, p)

	// Rounds 1..3: only client 1 participates.
	for r := 1; r <= 3; r++ {
		u := &fl.Update{ClientID: 1, State: m.StateVector(), NumSamples: 10}
		d.BeforeUpload(r, nil, u)
	}

	// Round 4: client 0 returns — its stored layer is untouched.
	after := d.StoredPrivate(0, p)
	for i := range saved {
		if saved[i] != after[i] {
			t.Fatal("private layer changed while the client was absent")
		}
	}
	global := make([]float64, m.NumState())
	personalized := d.OnGlobalModel(0, 4, global)
	sp := m.Spans()[p]
	for i := 0; i < sp.Len; i++ {
		if personalized[sp.Offset+i] != saved[i] {
			t.Fatal("personalization after a gap did not restore the stored layer")
		}
	}
}

// TestQuickWireFuzz round-trips randomized protocol messages through the
// wire codec.
func TestQuickWireFuzz(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		msg := &flnet.Message{
			Kind:       flnet.Kind(1 + rng.Intn(5)),
			ClientID:   rng.Intn(1000),
			Round:      rng.Intn(1000),
			NumSamples: rng.Intn(100000),
			Err:        "",
		}
		n := rng.Intn(256)
		msg.State = make([]float64, n)
		for i := range msg.State {
			msg.State[i] = rng.NormFloat64()
		}
		var buf bytes.Buffer
		if err := flnet.WriteMessage(&buf, msg); err != nil {
			return false
		}
		got, err := flnet.ReadMessage(&buf)
		if err != nil {
			return false
		}
		if got.Kind != msg.Kind || got.ClientID != msg.ClientID ||
			got.Round != msg.Round || got.NumSamples != msg.NumSamples {
			return false
		}
		if len(got.State) != len(msg.State) {
			return false
		}
		for i := range msg.State {
			if got.State[i] != msg.State[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
