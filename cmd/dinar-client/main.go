// Command dinar-client runs one FL participant of the DINAR middleware over
// TCP: it derives its deterministic data shard from the shared seed, trains
// locally each round (personalizing and obfuscating when the defense is
// DINAR), and reports its personalized model's accuracy at the end.
//
// Usage (one process per client, against a running dinar-server):
//
//	dinar-client -addr 127.0.0.1:7070 -id 0 -dataset purchase100 -defense dinar -clients 3 -rounds 5
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	dinar "repro"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "dinar-client:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("dinar-client", flag.ContinueOnError)
	var (
		addr    = fs.String("addr", "127.0.0.1:7070", "server TCP address")
		id      = fs.Int("id", 0, "client id in [0, clients)")
		dataset = fs.String("dataset", "purchase100", "dataset name")
		def     = fs.String("defense", "dinar", "defense name")
		clients = fs.Int("clients", 3, "number of FL clients")
		rounds  = fs.Int("rounds", 5, "number of FL rounds")
		seed    = fs.Int64("seed", 1, "federation seed (must match server)")
		records = fs.Int("records", 1000, "dataset record count")

		maxRetries = fs.Int("max-retries", 0, "reconnection attempts after a network fault (0 = default 5, negative disables)")
		backoff    = fs.Duration("base-backoff", 0, "first reconnection delay, doubled per failure with jitter (0 = default 100ms)")
		wire       = fs.String("wire", "binary", "transport framing: binary (advertise v3 codecs, server picks the intersection) or gob (pin the legacy encoding)")
		job        = fs.String("job", "", "federation job name when the server runs in multi-tenant service mode (empty is fine against single-job servers)")
		privCkpt   = fs.String("private-checkpoint", "", "file persisting the DINAR private-layer store after every round; restarting with the same path restores the personalization state")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	fmt.Printf("dinar-client %d: joining %s\n", *id, *addr)
	res, err := dinar.RunMiddlewareClient(ctx, dinar.ClientOptions{
		Addr:     *addr,
		ClientID: *id,
		Config: dinar.Config{
			Dataset: *dataset,
			Defense: *def,
			Clients: *clients,
			Rounds:  *rounds,
			Seed:    *seed,
			Records: *records,
		},
		MaxRetries:            *maxRetries,
		BaseBackoff:           *backoff,
		Wire:                  *wire,
		Job:                   *job,
		PrivateCheckpointPath: *privCkpt,
		Logf: func(format string, args ...any) {
			fmt.Printf(format+"\n", args...)
		},
	})
	if err != nil {
		return err
	}
	fmt.Printf("dinar-client %d: done; personalized model accuracy %.1f%%\n", *id, res.Accuracy*100)
	return nil
}
