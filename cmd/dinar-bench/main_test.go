package main

import "testing"

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunMissingExperiment(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("missing -exp should fail")
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-exp", "nope"}); err == nil {
		t.Fatal("unknown experiment should fail")
	}
}

func TestRunTable1(t *testing.T) {
	// table1 is static and fast; exercises the full output path.
	if err := run([]string{"-exp", "table1", "-quick"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Fatal("bad flag should fail")
	}
}
