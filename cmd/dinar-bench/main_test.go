package main

import "testing"

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunMissingExperiment(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("missing -exp should fail")
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-exp", "nope"}); err == nil {
		t.Fatal("unknown experiment should fail")
	}
}

func TestRunTable1(t *testing.T) {
	// table1 is static and fast; exercises the full output path.
	if err := run([]string{"-exp", "table1", "-quick"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Fatal("bad flag should fail")
	}
}

func TestRunBadCPUs(t *testing.T) {
	for _, bad := range []string{"0", "two", "1,,4", "-1"} {
		if err := run([]string{"-scaling", "-cpus", bad}); err == nil {
			t.Fatalf("-cpus %q should fail", bad)
		}
	}
}

func TestParseCPUs(t *testing.T) {
	counts, err := parseCPUs("1, 2,4")
	if err != nil {
		t.Fatal(err)
	}
	if len(counts) != 3 || counts[0] != 1 || counts[1] != 2 || counts[2] != 4 {
		t.Fatalf("parsed %v, want [1 2 4]", counts)
	}
	if counts, err := parseCPUs(""); err != nil || counts != nil {
		t.Fatalf("empty -cpus should mean default sweep, got %v, %v", counts, err)
	}
}
