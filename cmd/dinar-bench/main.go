// Command dinar-bench regenerates the paper's evaluation artifacts: every
// table and figure of §5 maps to an experiment ID.
//
// Usage:
//
//	dinar-bench -exp fig6                # one experiment at full scale
//	dinar-bench -exp fig6 -quick         # reduced smoke scale
//	dinar-bench -exp all                 # everything (long)
//	dinar-bench -list                    # list experiment IDs
//	dinar-bench -json BENCH_hotpath.json # run the hot-path benchmark suite
//	dinar-bench -scaling -json BENCH_hotpath.json
//	                                     # GOMAXPROCS sweep: ns/op, speedup,
//	                                     # and efficiency per CPU count, with
//	                                     # a serial-vs-parallel bit-identity
//	                                     # gate before any timing
//	dinar-bench -compare -json BENCH_hotpath.json
//	                                     # perf gate: rerun the recorded
//	                                     # benchmarks, exit non-zero past
//	                                     # +15% ns/op (see -threshold)
//
// The rows printed correspond to the bars/curves/cells of the paper's
// artifact; EXPERIMENTS.md records paper-vs-measured values. Beyond the
// paper, "ablation-obf"/"ablation-robust" sweep design choices and
// "byzantine" runs the poisoning-attack × robust-aggregator matrix.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/experiment"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "dinar-bench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("dinar-bench", flag.ContinueOnError)
	var (
		exp      = fs.String("exp", "", "experiment ID (or 'all')")
		list     = fs.Bool("list", false, "list experiment IDs and exit")
		quick    = fs.Bool("quick", false, "reduced smoke-scale configuration")
		seed     = fs.Int64("seed", 1, "experiment seed")
		records  = fs.Int("records", 0, "override dataset record count")
		rounds   = fs.Int("rounds", 0, "override FL rounds")
		clients  = fs.Int("clients", 0, "override FL client count")
		jsonPath = fs.String("json", "", "run the hot-path benchmark suite and write results to this JSON file (preserving any recorded baseline)")
		only     = fs.String("only", "", "comma-separated benchmark names to run instead of the whole suite; with -json, named entries are merged into the file and the rest preserved")
		scaling  = fs.Bool("scaling", false, "sweep the suite over GOMAXPROCS settings, verify parallel paths stay bit-identical to serial, and record speedup/efficiency (use with -json)")
		cpus     = fs.String("cpus", "", "comma-separated GOMAXPROCS settings for -scaling (default 1,2,4,NumCPU)")
		compare  = fs.Bool("compare", false, "rerun the benchmarks recorded in the -json file and exit non-zero on ns/op regression beyond -threshold (perf gate; does not rewrite the file)")
		thresh   = fs.Float64("threshold", bench.DefaultCompareThreshold, "regression budget for -compare as a fraction (0.15 = fail beyond +15% ns/op)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, id := range experiment.IDs() {
			fmt.Println(id)
		}
		return nil
	}
	if *compare {
		path := *jsonPath
		if path == "" {
			path = "BENCH_hotpath.json"
		}
		fmt.Printf("comparing against %s (threshold +%.0f%%)...\n", path, *thresh*100)
		entries, ok, err := bench.RunCompare(path, *thresh, func(format string, a ...any) {
			fmt.Printf(format, a...)
		})
		if err != nil {
			return err
		}
		fmt.Println()
		for _, e := range entries {
			fmt.Println(e)
		}
		if !ok {
			return fmt.Errorf("performance regression beyond +%.0f%%", *thresh*100)
		}
		fmt.Println("bench-check: no regressions")
		return nil
	}
	if *scaling {
		counts, err := parseCPUs(*cpus)
		if err != nil {
			return err
		}
		fmt.Println("running GOMAXPROCS scaling sweep...")
		rep, err := bench.RunScaling(counts, func(format string, a ...any) {
			fmt.Printf(format, a...)
		})
		if err != nil {
			return err
		}
		if rep.Note != "" {
			fmt.Println("note:", rep.Note)
		}
		fmt.Println()
		fmt.Print(rep.MarkdownTable())
		if *jsonPath != "" {
			if err := bench.WriteScaling(*jsonPath, rep); err != nil {
				return err
			}
			fmt.Printf("wrote scaling section to %s\n", *jsonPath)
		}
		return nil
	}
	if *jsonPath != "" || *only != "" {
		names := splitNames(*only)
		if len(names) > 0 {
			fmt.Printf("running hot-path benchmarks: %s\n", strings.Join(names, ", "))
		} else {
			fmt.Println("running hot-path benchmark suite...")
		}
		snap, err := bench.RunOnly(names, func(format string, a ...any) {
			fmt.Printf(format, a...)
		})
		if err != nil {
			return err
		}
		if *jsonPath == "" {
			return nil
		}
		if len(names) > 0 {
			err = bench.MergeResults(*jsonPath, snap)
		} else {
			err = bench.WriteFile(*jsonPath, snap)
		}
		if err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *jsonPath)
		return nil
	}
	if *exp == "" {
		fs.Usage()
		return fmt.Errorf("missing -exp (try -list)")
	}

	o := experiment.DefaultOptions()
	if *quick {
		o = experiment.QuickOptions()
	}
	o.Seed = *seed
	if *records > 0 {
		o.Records = *records
	}
	if *rounds > 0 {
		o.Rounds = *rounds
	}
	if *clients > 0 {
		o.Clients = *clients
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	ids := []string{*exp}
	if *exp == "all" {
		ids = experiment.IDs()
	}
	for _, id := range ids {
		start := time.Now()
		tbl, err := experiment.Run(ctx, id, o)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		fmt.Println(tbl.String())
		fmt.Printf("[%s completed in %s]\n\n", id, time.Since(start).Round(time.Millisecond))
	}
	return nil
}

// splitNames parses the -only flag ("a,b") into benchmark names; empty
// means the whole suite.
func splitNames(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	names := make([]string, 0, len(parts))
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			names = append(names, p)
		}
	}
	return names
}

// parseCPUs parses the -cpus flag ("1,2,4") into CPU counts; empty means the
// default sweep.
func parseCPUs(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	counts := make([]int, 0, len(parts))
	for _, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("invalid -cpus entry %q (want positive integers, e.g. 1,2,4)", p)
		}
		counts = append(counts, n)
	}
	return counts, nil
}
