// Command dinar-audit runs the paper's §3 layer-leakage analysis as a
// standalone tool: it trains an undefended FL model on the chosen dataset,
// measures each layer's membership leakage (Jensen–Shannon divergence
// between member and non-member gradients), and prints the per-layer report
// with the recommended obfuscation target — the measurement each DINAR
// client performs before the §4.1 consensus vote.
//
// Usage:
//
//	dinar-audit -dataset purchase100
//	dinar-audit -dataset celeba -records 800 -rounds 6
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"repro/internal/experiment"
	"repro/internal/metrics"
	"repro/internal/plot"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "dinar-audit:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("dinar-audit", flag.ContinueOnError)
	var (
		dataset = fs.String("dataset", "purchase100", "dataset to audit")
		records = fs.Int("records", 1000, "dataset record count")
		rounds  = fs.Int("rounds", 6, "FL rounds before the audit")
		seed    = fs.Int64("seed", 1, "seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	o := experiment.DefaultOptions()
	o.Seed = *seed
	o.Records = *records
	o.Rounds = *rounds

	fmt.Printf("dinar-audit: training undefended FL model on %q and measuring per-layer leakage...\n", *dataset)
	res, err := experiment.Fig1(ctx, o, *dataset)
	if err != nil {
		return err
	}
	s := res.Series[0]
	t := metrics.NewTable("Layer-leakage audit — "+*dataset, "Layer", "JS divergence", "")
	for l, d := range s.Divergences {
		mark := ""
		if l == s.MostSensitive {
			mark = "<== most privacy-sensitive: obfuscate this layer"
		}
		t.AddRow(l, d, mark)
	}
	fmt.Println(t.String())
	fmt.Println(plot.Series("leakage profile (low..high per layer):",
		map[string][]float64{*dataset: s.Divergences}))
	fmt.Printf("recommendation: run DINAR with private layer %d (of %d layers)\n",
		s.MostSensitive, len(s.Divergences))
	return nil
}
