// Command dinar-server runs the DINAR FL middleware server over TCP: it
// waits for the configured number of clients, orchestrates the federated
// rounds (applying the server-side part of the chosen defense), and prints
// progress.
//
// Usage:
//
//	dinar-server -addr :7070 -dataset purchase100 -defense dinar -clients 3 -rounds 5
//
// Pair with cmd/dinar-client processes sharing the same -dataset, -defense,
// -clients, -rounds, and -seed flags.
//
// Byzantine robustness: -aggregator selects a poisoning-tolerant aggregation
// rule (krum, multi-krum, norm-bound, median, trimmed-mean) with -max-byzantine
// as the assumed attacker count; the update screen (on by default, disable with
// -no-screen) rejects malformed/NaN updates and quarantines offenders for
// -quarantine-rounds rounds, optionally clipping oversized deltas (-clip-norms).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	dinar "repro"
	"repro/internal/service"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "dinar-server:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("dinar-server", flag.ContinueOnError)
	var (
		addr    = fs.String("addr", "127.0.0.1:7070", "TCP listen address")
		dataset = fs.String("dataset", "purchase100", "dataset name")
		def     = fs.String("defense", "dinar", "defense name")
		clients = fs.Int("clients", 3, "number of FL clients")
		rounds  = fs.Int("rounds", 5, "number of FL rounds")
		seed    = fs.Int64("seed", 1, "federation seed (must match clients)")
		records = fs.Int("records", 1000, "dataset record count")

		minClients = fs.Int("min-clients", 0, "round quorum; after -round-deadline a round aggregates with this many updates (0 = full cohort)")
		deadline   = fs.Duration("round-deadline", 0, "per-round collection deadline; stragglers past it are evicted (0 = wait forever)")
		ckpt       = fs.String("checkpoint", "", "snapshot file persisted every round; restarting with the same path resumes the federation")

		sampleSize = fs.Int("sample-size", 0, "clients sampled into each round's cohort, deterministic per (seed, round); failed members are replaced from the same draw (0 = every client)")
		sampleSeed = fs.Int64("sample-seed", 0, "cohort-draw seed (0 = checkpoint's seed when resuming, else -seed)")
		asyncStale = fs.Int("async-staleness", 0, "buffer stragglers' updates and fold them into later rounds weighted by age, up to this many rounds old; rounds then never block on stragglers (0 = synchronous)")
		streaming  = fs.Bool("streaming", false, "fold each arriving update into an O(model) accumulator instead of materializing the whole cohort (falls back with a warning when the aggregation rule cannot stream)")

		aggregator = fs.String("aggregator", "fedavg", "aggregation rule: fedavg, median, trimmed-mean, krum, multi-krum, norm-bound")
		maxByz     = fs.Int("max-byzantine", 0, "assumed number of malicious clients the robust aggregator tolerates")
		noScreen   = fs.Bool("no-screen", false, "disable the Byzantine update screen (shape/NaN validation, rejection, quarantine)")
		clipNorms  = fs.Bool("clip-norms", false, "additionally clip oversized update deltas to a running median-of-norms bound")
		quarantine = fs.Int("quarantine-rounds", 0, "rounds a poisoning client stays excluded after rejection (0 = default 3, negative disables)")

		wire      = fs.String("wire", "binary", "transport framing: binary (v3 frames, clients negotiate down to gob transparently) or gob (legacy encoding, rejects the codec flags below)")
		compress  = fs.Bool("compress", false, "offer per-frame flate compression to binary clients")
		quantize  = fs.String("quantize", "none", "stochastically quantize client uploads: none, int8, or int16 (incompatible with secure-aggregation defenses)")
		topK      = fs.Float64("topk", 0, "sparsify quantized uploads to this top fraction of coordinates by magnitude, in (0,1) (0 = dense; requires -quantize)")
		delta     = fs.Bool("delta", false, "delta-encode global broadcasts against each client's last completed round")
		quantSeed = fs.Int64("quant-seed", 0, "stochastic-quantizer seed (0 = checkpoint's seed when resuming, else -seed)")

		pipeline = fs.Bool("pipeline", false, "overlap each round's checkpoint write with the next round's broadcast (the persisted chain stays bit-identical)")

		adminAddr = fs.String("admin-addr", "", "HTTP observability listen address serving /metrics, /healthz, and /debug/pprof/ (empty disables; \":0\" for an ephemeral port)")

		svcMode  = fs.Bool("service", false, "multi-tenant service mode: host many named federation jobs in one process, managed via the admin API (POST /jobs etc.); the per-federation flags above are ignored")
		stateDir = fs.String("state-dir", "", "service-mode state directory holding the job manifest and every job's checkpoint chain (required with -service)")

		drainTimeout = fs.Duration("drain-timeout", 30*time.Second, "graceful shutdown budget after SIGINT/SIGTERM: the in-flight round may finish within it before the final checkpoint is written (a second signal aborts immediately)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *svcMode {
		return runService(*addr, *stateDir, *adminAddr, *drainTimeout)
	}

	srv, err := dinar.NewMiddlewareServer(dinar.ServerOptions{
		Addr: *addr,
		Config: dinar.Config{
			Dataset:      *dataset,
			Defense:      *def,
			Clients:      *clients,
			Rounds:       *rounds,
			Seed:         *seed,
			Records:      *records,
			Aggregator:   *aggregator,
			MaxByzantine: *maxByz,
		},
		MinClients:       *minClients,
		RoundDeadline:    *deadline,
		SampleSize:       *sampleSize,
		SampleSeed:       *sampleSeed,
		AsyncStaleness:   *asyncStale,
		Streaming:        *streaming,
		Wire:             *wire,
		Compress:         *compress,
		Quantize:         *quantize,
		TopK:             *topK,
		Delta:            *delta,
		QuantSeed:        *quantSeed,
		Pipeline:         *pipeline,
		CheckpointPath:   *ckpt,
		NoScreen:         *noScreen,
		ClipNorms:        *clipNorms,
		QuarantineRounds: *quarantine,
		AdminAddr:        *adminAddr,
		Logf: func(format string, args ...any) {
			fmt.Printf(format+"\n", args...)
		},
	})
	if err != nil {
		return err
	}
	fmt.Printf("dinar-server: listening on %s (dataset=%s defense=%s clients=%d rounds=%d)\n",
		srv.Addr(), *dataset, *def, *clients, *rounds)
	if a := srv.AdminAddr(); a != "" {
		fmt.Printf("dinar-server: observability on http://%s (/metrics /healthz /debug/pprof/)\n", a)
	}

	// First SIGINT/SIGTERM: drain gracefully (finish the in-flight round
	// within -drain-timeout, checkpoint, notify clients). A second signal
	// aborts the drain.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigCh)
	go func() {
		select {
		case <-sigCh:
		case <-ctx.Done():
			return
		}
		fmt.Printf("dinar-server: signal received; draining (up to %s; signal again to abort)\n", *drainTimeout)
		drainCtx, drainCancel := context.WithTimeout(ctx, *drainTimeout)
		defer drainCancel()
		go func() {
			select {
			case <-sigCh:
				fmt.Println("dinar-server: second signal; aborting drain")
				cancel()
			case <-drainCtx.Done():
			}
		}()
		if err := srv.Shutdown(drainCtx); err != nil {
			fmt.Fprintf(os.Stderr, "dinar-server: drain: %v\n", err)
		}
	}()

	start := time.Now()
	final, err := srv.Serve(ctx)
	if errors.Is(err, dinar.ErrDraining) {
		fmt.Printf("dinar-server: drained after %s; state checkpointed at round %d — restart with the same -checkpoint to resume\n",
			time.Since(start).Round(time.Millisecond), srv.Health().CheckpointRound)
		return nil
	}
	if err != nil {
		return err
	}
	dropped := 0
	for _, r := range srv.Reports() {
		dropped += len(r.Dropped)
	}
	fmt.Printf("dinar-server: federation finished in %s; final global state has %d values (%d client drops across %d rounds)\n",
		time.Since(start).Round(time.Millisecond), len(final), dropped, len(srv.Reports()))
	return nil
}

// runService hosts the multi-tenant control plane: jobs are created and
// managed through the admin API, clients are routed by the job name in
// their Hello, and a SIGTERM drains every job (checkpointing each) so
// the next process generation re-adopts them from -state-dir.
func runService(addr, stateDir, adminAddr string, drainTimeout time.Duration) error {
	if stateDir == "" {
		return errors.New("-service requires -state-dir")
	}
	svc, err := service.New(service.Options{
		Addr:     addr,
		StateDir: stateDir,
		Builder:  dinar.JobBuilder(),
		Logf: func(format string, args ...any) {
			fmt.Printf(format+"\n", args...)
		},
	})
	if err != nil {
		return err
	}
	if adminAddr == "" {
		// The admin API is the only way to create jobs; service mode
		// without it would be inert.
		adminAddr = "127.0.0.1:0"
	}
	admin, err := svc.ServeAdmin(adminAddr)
	if err != nil {
		svc.Close()
		return err
	}
	fmt.Printf("dinar-server: service mode on %s (state dir %s)\n", svc.Addr(), stateDir)
	fmt.Printf("dinar-server: admin API on http://%s (POST /jobs, /metrics, /healthz)\n", admin.Addr())

	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigCh)
	<-sigCh
	fmt.Printf("dinar-server: signal received; draining all jobs (up to %s; signal again to abort)\n", drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	go func() {
		select {
		case <-sigCh:
			fmt.Println("dinar-server: second signal; aborting drain")
			cancel()
		case <-drainCtx.Done():
		}
	}()
	err = svc.Shutdown(drainCtx)
	admin.Close()
	if err != nil && !errors.Is(err, dinar.ErrDraining) {
		return fmt.Errorf("drain: %w", err)
	}
	fmt.Println("dinar-server: all jobs drained and checkpointed; restart with the same -state-dir to resume")
	return nil
}
