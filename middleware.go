package dinar

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"os"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/consensus"
	"repro/internal/data"
	"repro/internal/defense"
	"repro/internal/fl"
	"repro/internal/flnet"
	"repro/internal/leakage"
	"repro/internal/model"
	"repro/internal/optim"
	"repro/internal/telemetry"
)

// ServerOptions configures a TCP middleware server process.
type ServerOptions struct {
	// Addr is the listen address, e.g. "127.0.0.1:7070" (":0" for an
	// ephemeral port).
	Addr string
	// Config describes the federation; Dataset/Defense/Clients/Rounds/Seed
	// must match the client processes.
	Config Config
	// MinClients is the per-round quorum: after RoundDeadline a round
	// aggregates with any set of at least MinClients updates instead of
	// waiting for the full cohort. 0 means Config.Clients (no partial
	// rounds).
	MinClients int
	// RoundDeadline bounds one round's update collection; stragglers past
	// it are evicted (they may reconnect and rejoin). 0 means no deadline.
	RoundDeadline time.Duration
	// CheckpointPath, if non-empty, persists a global-model snapshot after
	// every round and resumes from it when the server restarts.
	CheckpointPath string
	// NoScreen disables the Byzantine update screen (validation, rejection
	// and quarantine of poisoned updates). On by default.
	NoScreen bool
	// ClipNorms additionally enables delta-norm clipping against a running
	// median-of-norms bound.
	ClipNorms bool
	// QuarantineRounds overrides how many rounds a poisoning client stays
	// excluded after rejection (0 = default 3, negative disables).
	QuarantineRounds int
	// SampleSize, when positive, samples that many of the registered
	// clients into each round's cohort (deterministic given the seed;
	// quarantined clients are never drawn; failed cohort members are
	// replaced from the same draw). 0 means every client, every round.
	SampleSize int
	// SampleSeed seeds the cohort draw; 0 adopts the checkpoint's
	// recorded seed when resuming, else Config.Seed.
	SampleSeed int64
	// AsyncStaleness, when positive, buffers stragglers' updates across
	// round boundaries and folds them into a later round weighted down by
	// age, up to this many rounds; rounds then never block on stragglers.
	AsyncStaleness int
	// Streaming folds each arriving update straight into an O(model)
	// accumulator instead of materializing the cohort (requires a
	// streaming-capable aggregation rule; otherwise the server logs a
	// warning and materializes).
	Streaming bool
	// Wire selects the transport framing: "" or "binary" offers the v3
	// binary frame format (clients negotiate down to gob transparently),
	// "gob" pins the legacy encoding and rejects the codec options below.
	Wire string
	// Compress offers per-frame flate compression to binary clients.
	Compress bool
	// Quantize offers stochastic quantization of client uploads: "",
	// "none", "int8", or "int16". Incompatible with secure-aggregation
	// (cohort-aware) defenses.
	Quantize string
	// TopK, in (0, 1), additionally sparsifies quantized uploads to the
	// top fraction of coordinates by magnitude. Requires Quantize.
	TopK float64
	// Delta offers delta-encoded global broadcasts against the client's
	// last completed round.
	Delta bool
	// QuantSeed seeds the stochastic quantizer; 0 adopts the checkpoint's
	// recorded seed when resuming, else Config.Seed.
	QuantSeed int64
	// Pipeline overlaps each round's checkpoint write with the next
	// round's broadcast. The persisted chain is bit-identical to the
	// sequential one; only the round tail latency changes.
	Pipeline bool
	// Logf receives fault-tolerance progress lines (optional).
	Logf func(format string, args ...any)
	// AdminAddr, if non-empty, starts an HTTP observability listener
	// serving /metrics (Prometheus text), /healthz (JSON federation
	// status), and /debug/pprof/. Use ":0" for an ephemeral port.
	AdminAddr string
}

// ErrDraining is returned by Serve after a graceful Shutdown: the
// federation stopped cleanly with its state checkpointed, not because of a
// failure.
var ErrDraining = flnet.ErrDraining

// MiddlewareServer is a running TCP FL server.
type MiddlewareServer struct {
	inner *flnet.Server
	admin *telemetry.AdminServer
}

// NewMiddlewareServer builds the initial global model for the configured
// dataset and starts listening.
func NewMiddlewareServer(opts ServerOptions) (*MiddlewareServer, error) {
	cfg := opts.Config.withDefaults()
	spec, err := data.Lookup(cfg.Dataset)
	if err != nil {
		return nil, err
	}
	m, err := model.Build(spec, rand.New(rand.NewSource(cfg.Seed+2)))
	if err != nil {
		return nil, err
	}
	def, err := defense.New(cfg.Defense, cfg.Seed+7, cfg.Clients)
	if err != nil {
		return nil, err
	}
	def, err = fl.WithAggregator(def, cfg.Aggregator, cfg.MaxByzantine)
	if err != nil {
		return nil, err
	}
	if err := def.Bind(fl.InfoOf(m)); err != nil {
		return nil, err
	}
	srv, err := flnet.NewServer(flnet.ServerConfig{
		Addr:          opts.Addr,
		NumClients:    cfg.Clients,
		MinClients:    opts.MinClients,
		Rounds:        cfg.Rounds,
		RoundDeadline: opts.RoundDeadline,
		SampleSize:    opts.SampleSize,
		// Passed through verbatim: 0 must reach flnet so a resumed
		// federation adopts the checkpoint's recorded draw seed.
		SampleSeed:        opts.SampleSeed,
		SampleSeedDefault: cfg.Seed,
		AsyncStaleness:    opts.AsyncStaleness,
		Streaming:         opts.Streaming,
		Wire:              opts.Wire,
		Compress:          opts.Compress,
		Quantize:          opts.Quantize,
		TopK:              opts.TopK,
		Delta:             opts.Delta,
		// Same pass-through contract as SampleSeed: 0 must reach flnet so
		// a resumed federation adopts the checkpoint's quantizer seed.
		QuantSeed:        opts.QuantSeed,
		QuantSeedDefault: cfg.Seed,
		Pipeline:         opts.Pipeline,
		Defense:           def,
		InitialState:      m.StateVector(),
		CheckpointPath:    opts.CheckpointPath,
		Dataset:           cfg.Dataset,
		NoScreen:          opts.NoScreen,
		Screen: fl.ScreenConfig{
			ClipNorms:        opts.ClipNorms,
			QuarantineRounds: opts.QuarantineRounds,
		},
		Logf: opts.Logf,
	})
	if err != nil {
		return nil, err
	}
	s := &MiddlewareServer{inner: srv}
	if opts.AdminAddr != "" {
		s.admin, err = telemetry.ServeAdmin(opts.AdminAddr, srv.Health, nil)
		if err != nil {
			srv.Close()
			return nil, err
		}
	}
	return s, nil
}

// Addr returns the bound address (connect clients here).
func (s *MiddlewareServer) Addr() string { return s.inner.Addr().String() }

// AdminAddr returns the observability listener's address, or "" when
// ServerOptions.AdminAddr was empty.
func (s *MiddlewareServer) AdminAddr() string {
	if s.admin == nil {
		return ""
	}
	return s.admin.Addr().String()
}

// Serve orchestrates all rounds and returns the final global state vector.
// After a Shutdown, the error is flnet.ErrDraining and the state is the
// last checkpointed global model.
func (s *MiddlewareServer) Serve(ctx context.Context) ([]float64, error) {
	return s.inner.Run(ctx)
}

// Shutdown drains the federation gracefully: no new registrants are
// admitted, the in-flight round finishes (or is abandoned when ctx
// expires), the final state is checkpointed, and live clients receive a
// drain notice telling them to reconnect after the restart. Serve returns
// flnet.ErrDraining. Call only while Serve is running.
func (s *MiddlewareServer) Shutdown(ctx context.Context) error {
	return s.inner.Shutdown(ctx)
}

// Close stops the server's listener (and the admin listener, if any).
func (s *MiddlewareServer) Close() error {
	err := s.inner.Close()
	if s.admin != nil {
		if aerr := s.admin.Close(); err == nil {
			err = aerr
		}
	}
	return err
}

// Health returns the server's current /healthz snapshot (status, round
// progress, live clients, last checkpointed round).
func (s *MiddlewareServer) Health() telemetry.Health { return s.inner.Health() }

// Reports returns the per-round cohort reports (participants, dropped
// clients, joined client errors) recorded so far.
func (s *MiddlewareServer) Reports() []flnet.RoundReport { return s.inner.Reports() }

// StartRound returns the round the federation (re)starts from: 0 for a
// fresh run, the checkpointed round after a resume.
func (s *MiddlewareServer) StartRound() int { return s.inner.StartRound() }

// ClientOptions configures a TCP middleware client process.
type ClientOptions struct {
	// Addr is the server's address.
	Addr string
	// Config must match the server's configuration.
	Config Config
	// ClientID is this participant's index in [0, Config.Clients).
	ClientID int
	// MaxRetries is the number of reconnection attempts after a network
	// fault before the client gives up. 0 means the default (5); negative
	// disables retry.
	MaxRetries int
	// BaseBackoff is the delay before the first reconnection attempt;
	// consecutive failures double it with jitter. 0 means the default
	// (100ms).
	BaseBackoff time.Duration
	// Wire selects the transport framing: "" or "binary" advertises the
	// v3 binary codecs in the Hello (the server picks the intersection),
	// "gob" pins the legacy encoding.
	Wire string
	// Job names the federation job this client belongs to when the server
	// runs in multi-tenant service mode; empty is fine against single-job
	// servers.
	Job string
	// PrivateCheckpointPath, if non-empty, persists the client's DINAR
	// private-layer store after every round and restores it on startup
	// from the newest intact generation. Losing this store costs the
	// client its personalization (θᵖ* never leaves the client, by
	// design), so crash safety here is the client-side half of the
	// durable-checkpoint story. Ignored for defenses without a private
	// store.
	PrivateCheckpointPath string
	// Logf receives reconnection progress lines (optional).
	Logf func(format string, args ...any)
}

// ParticipantResult reports a finished client's outcome.
type ParticipantResult struct {
	// FinalGlobalState is the last broadcast global model.
	FinalGlobalState []float64
	// Accuracy is the personalized model's test accuracy.
	Accuracy float64
}

// RunMiddlewareClient builds the client's deterministic data shard and local
// model (all processes derive the identical partition from Config.Seed),
// then participates in the federation until the server finishes.
func RunMiddlewareClient(ctx context.Context, opts ClientOptions) (*ParticipantResult, error) {
	cfg := opts.Config.withDefaults()
	if opts.ClientID < 0 || opts.ClientID >= cfg.Clients {
		return nil, fmt.Errorf("dinar: client id %d out of range [0,%d)", opts.ClientID, cfg.Clients)
	}
	spec, err := data.Lookup(cfg.Dataset)
	if err != nil {
		return nil, err
	}
	if cfg.Records > 0 {
		spec.Records = cfg.Records
	}
	ds, err := data.Generate(spec, cfg.Seed)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	split := data.NewFLSplit(ds, rng)
	var shards []*data.Dataset
	if math.IsInf(cfg.DirichletAlpha, 1) {
		shards, err = data.PartitionIID(split.Train, cfg.Clients, rng)
	} else {
		shards, err = data.PartitionDirichlet(split.Train, cfg.Clients, cfg.DirichletAlpha, rng)
	}
	if err != nil {
		return nil, err
	}

	m, err := model.Build(spec, rand.New(rand.NewSource(cfg.Seed+2)))
	if err != nil {
		return nil, err
	}
	opt := optim.New(cfg.Optimizer, cfg.LearningRate)
	if opt == nil {
		return nil, fmt.Errorf("dinar: unknown optimizer %q", cfg.Optimizer)
	}
	trainer, err := fl.NewClient(opts.ClientID, m, shards[opts.ClientID], opt,
		cfg.BatchSize, cfg.LocalEpochs, rand.New(rand.NewSource(cfg.Seed+100+int64(opts.ClientID))))
	if err != nil {
		return nil, err
	}
	def, err := defense.New(cfg.Defense, cfg.Seed+7, cfg.Clients)
	if err != nil {
		return nil, err
	}
	if err := def.Bind(fl.InfoOf(m)); err != nil {
		return nil, err
	}

	clientCfg := flnet.ClientConfig{
		Addr:        opts.Addr,
		Trainer:     trainer,
		Defense:     def,
		MaxRetries:  opts.MaxRetries,
		BaseBackoff: opts.BaseBackoff,
		Wire:        opts.Wire,
		Job:         opts.Job,
		Logf:        opts.Logf,
	}
	if opts.PrivateCheckpointPath != "" {
		if err := wirePrivateCheckpoints(&clientCfg, def, opts); err != nil {
			return nil, err
		}
	}
	final, err := flnet.RunClient(ctx, clientCfg)
	if err != nil {
		return nil, err
	}
	acc, _, err := trainer.Evaluate(split.Test)
	if err != nil {
		return nil, err
	}
	return &ParticipantResult{FinalGlobalState: final, Accuracy: acc}, nil
}

// privateStore is the store surface a defense must expose for private-layer
// checkpointing (the DINAR defense does; others simply skip checkpointing).
type privateStore interface {
	ExportStore(clientID int) map[int][]float64
	ImportStore(clientID int, layers map[int][]float64) error
}

// wirePrivateCheckpoints restores the defense's private-layer store from the
// newest intact checkpoint generation and hooks a durable save after every
// completed round.
func wirePrivateCheckpoints(cfg *flnet.ClientConfig, def fl.Defense, opts ClientOptions) error {
	store, ok := def.(privateStore)
	if !ok {
		return nil // nothing private to persist for this defense
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	loaded, skipped, err := checkpoint.LoadLatestValidPrivate(opts.PrivateCheckpointPath)
	switch {
	case errors.Is(err, os.ErrNotExist):
		// Fresh client: nothing to restore.
	case err != nil:
		return fmt.Errorf("dinar: restore private store: %w", err)
	default:
		for _, path := range skipped {
			logf("dinar: skipping corrupt private checkpoint generation %s", path)
		}
		if loaded.ClientID != opts.ClientID {
			return fmt.Errorf("dinar: private checkpoint belongs to client %d, not %d", loaded.ClientID, opts.ClientID)
		}
		if err := store.ImportStore(opts.ClientID, loaded.Layers); err != nil {
			return fmt.Errorf("dinar: restore private store: %w", err)
		}
		logf("dinar: restored private store from round %d (generation %d)", loaded.Round, loaded.Generation)
	}
	cfg.AfterRound = func(round int) {
		err := checkpoint.SavePrivateFile(opts.PrivateCheckpointPath, &checkpoint.PrivateLayers{
			ClientID: opts.ClientID,
			Round:    round,
			Layers:   store.ExportStore(opts.ClientID),
		})
		if err != nil {
			// A failed save must not kill the round; the previous
			// generation is still durable.
			logf("dinar: private checkpoint after round %d: %v", round, err)
		}
	}
	return nil
}

// ChoosePrivateLayer runs DINAR's initialization phase (§4.1): every client
// trains a local probe model on its own shard, measures per-layer
// membership leakage (Jensen–Shannon generalization gap), votes for the most
// sensitive layer, and the federation agrees via the Byzantine-tolerant
// broadcast vote. It returns the agreed layer index.
//
// byzantine, if non-empty, marks client indices that vote arbitrarily.
func ChoosePrivateLayer(ctx context.Context, cfg Config, byzantine []int) (int, error) {
	cfg = cfg.withDefaults()
	spec, err := data.Lookup(cfg.Dataset)
	if err != nil {
		return -1, err
	}
	if cfg.Records > 0 {
		spec.Records = cfg.Records
	}
	ds, err := data.Generate(spec, cfg.Seed)
	if err != nil {
		return -1, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	split := data.NewFLSplit(ds, rng)
	shards, err := data.PartitionIID(split.Train, cfg.Clients, rng)
	if err != nil {
		return -1, err
	}

	byz := make(map[int]bool, len(byzantine))
	for _, id := range byzantine {
		byz[id] = true
	}

	analyzer := leakage.NewAnalyzer()
	nodes := make([]consensus.Node, cfg.Clients)
	numLayers := 0
	for i := 0; i < cfg.Clients; i++ {
		if err := ctx.Err(); err != nil {
			return -1, err
		}
		m, err := model.Build(spec, rand.New(rand.NewSource(cfg.Seed+2)))
		if err != nil {
			return -1, err
		}
		numLayers = m.NumLayers()
		if byz[i] {
			nodes[i] = consensus.Node{ID: i, Byzantine: true}
			continue
		}
		// Local probe training on the client's own members (Dᵢᵐ). The probe
		// uses moderate SGD for a handful of epochs: enough overfitting to
		// develop the member/non-member gradient gap, not so much that the
		// leakage measurement degenerates — probed so every honest client's
		// vote lands on the same layer.
		// Probe hyper-parameters are fixed (not taken from cfg): the vote's
		// stability was validated at this exact configuration, and the probe
		// model is discarded afterwards.
		const (
			probeEpochs = 8
			probeBatch  = 32
		)
		probeLR := fl.DefaultLearningRate(cfg.Dataset, "sgd")
		if probeLR > 0.2 {
			probeLR = 0.2
		}
		opt := optim.New("sgd", probeLR)
		trainer, err := fl.NewClient(i, m, shards[i], opt, probeBatch, probeEpochs,
			rand.New(rand.NewSource(cfg.Seed+200+int64(i))))
		if err != nil {
			return -1, err
		}
		if _, err := trainer.TrainLocal(); err != nil {
			return -1, err
		}
		// Divergence between the client's members Dᵢᵐ and non-members Dᵢⁿ.
		div, err := analyzer.LayerDivergence(m, shards[i], split.Test)
		if err != nil {
			return -1, err
		}
		nodes[i] = consensus.Node{ID: i, Vote: leakage.MostSensitiveLayer(div)}
	}
	res, err := consensus.Run(ctx, nodes, numLayers, rand.New(rand.NewSource(cfg.Seed+300)))
	if err != nil {
		return -1, err
	}
	return res.Value, nil
}
