package dinar

// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation (§5). Each benchmark regenerates the experiment's
// rows/series at a reduced, CPU-friendly scale and reports the wall-clock
// cost of one full regeneration.
//
//	go test -bench=. -benchmem
//
// Full-scale regeneration (larger datasets/rounds, shadow-model attack) is
// available through cmd/dinar-bench. EXPERIMENTS.md records paper-vs-measured
// values from full-scale runs.

import (
	"context"
	"testing"

	"repro/internal/experiment"
)

// benchOptions is the reduced configuration used by the benchmarks so a full
// `go test -bench=.` pass stays tractable.
func benchOptions() experiment.Options {
	o := experiment.QuickOptions()
	o.UseShadowAttack = false
	return o
}

func benchmarkExperiment(b *testing.B, id string) {
	b.Helper()
	o := benchOptions()
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl, err := experiment.Run(ctx, id, o)
		if err != nil {
			b.Fatal(err)
		}
		if tbl.NumRows() == 0 {
			b.Fatalf("%s produced no rows", id)
		}
	}
}

// BenchmarkTable1Taxonomy regenerates Table 1 (defense taxonomy).
func BenchmarkTable1Taxonomy(b *testing.B) { benchmarkExperiment(b, "table1") }

// BenchmarkFig1LayerDivergence regenerates Figure 1 (per-layer JS divergence
// of member vs non-member gradients) on one tabular and one image dataset.
func BenchmarkFig1LayerDivergence(b *testing.B) {
	o := benchOptions()
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiment.Fig1(ctx, o, "purchase100", "gtsrb")
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Series) != 2 {
			b.Fatal("missing series")
		}
	}
}

// BenchmarkFig3LossDistribution regenerates Figure 3 (member vs non-member
// loss distributions across defenses).
func BenchmarkFig3LossDistribution(b *testing.B) {
	o := benchOptions()
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiment.Fig3(ctx, o, "purchase100"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4PerLayerProtection regenerates Figure 4 (per-layer divergence
// and single-layer obfuscation sweep).
func BenchmarkFig4PerLayerProtection(b *testing.B) {
	o := benchOptions()
	o.Records = 400
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiment.Fig4(ctx, o, "purchase100"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5MultiLayer regenerates Figure 5 (obfuscating growing layer
// sets: privacy stays optimal, utility degrades).
func BenchmarkFig5MultiLayer(b *testing.B) {
	o := benchOptions()
	o.Records = 400
	o.Rounds = 2
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiment.Fig5(ctx, o, "purchase100"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6Privacy regenerates Figure 6 (attack AUC per defense, global
// and local models) on one dataset with the full defense suite.
func BenchmarkFig6Privacy(b *testing.B) {
	o := benchOptions()
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiment.Fig6(ctx, o, []string{"purchase100"}, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7Tradeoff regenerates Figure 7 (privacy vs utility scatter),
// which shares Figure 6's runs.
func BenchmarkFig7Tradeoff(b *testing.B) {
	o := benchOptions()
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiment.Fig6(ctx, o, []string{"purchase100"}, []string{"none", "ldp", "dinar"})
		if err != nil {
			b.Fatal(err)
		}
		if res.Fig7Table().NumRows() == 0 {
			b.Fatal("no scatter points")
		}
	}
}

// BenchmarkTable3Cost regenerates Table 3 (client/server/memory overheads per
// defense).
func BenchmarkTable3Cost(b *testing.B) {
	o := benchOptions()
	o.Records = 400
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiment.Table3(ctx, o, "purchase100", nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig8NonIID regenerates Figure 8 (non-IID Dirichlet sweep).
func BenchmarkFig8NonIID(b *testing.B) {
	o := benchOptions()
	o.Records = 600
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiment.Fig8(ctx, o, "purchase100", []float64{0.8, 5}, []string{"none", "dinar"}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig9Clients regenerates Figure 9 (client-count sweep).
func BenchmarkFig9Clients(b *testing.B) {
	o := benchOptions()
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiment.Fig9(ctx, o, "purchase100", []int{3, 5}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig10Budgets regenerates Figure 10 (LDP privacy-budget sweep).
func BenchmarkFig10Budgets(b *testing.B) {
	o := benchOptions()
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiment.Fig10(ctx, o, "purchase100", []float64{0.2, 2.2}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig11Ablation regenerates Figure 11 (optimizer ablation inside
// DINAR).
func BenchmarkFig11Ablation(b *testing.B) {
	o := benchOptions()
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiment.Fig11(ctx, o, "purchase100", []string{"adagrad", "adam"}); err != nil {
			b.Fatal(err)
		}
	}
}
