package dinar

import (
	"context"
	"strings"
	"testing"
)

func TestListings(t *testing.T) {
	if len(Defenses()) != 7 {
		t.Fatalf("Defenses = %v", Defenses())
	}
	if len(Datasets()) != 7 {
		t.Fatalf("Datasets = %v", Datasets())
	}
	if len(Experiments()) != 15 {
		t.Fatalf("Experiments = %v", Experiments())
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Dataset != "purchase100" || c.Defense != "dinar" || c.Optimizer != "adagrad" {
		t.Fatalf("defaults: %+v", c)
	}
	if c.LearningRate != 0.01 {
		t.Fatalf("dinar default lr = %v", c.LearningRate)
	}
	c = Config{Defense: "ldp"}.withDefaults()
	if c.Optimizer != "sgd" || c.LearningRate != 0.8 {
		t.Fatalf("ldp defaults: %+v", c)
	}
}

func TestDefaultLearningRate(t *testing.T) {
	if DefaultLearningRate("purchase100", "sgd") != 0.8 {
		t.Fatal("purchase100 sgd rate")
	}
	if DefaultLearningRate("cifar10", "adam") != 0.01 {
		t.Fatal("adaptive rate")
	}
	if DefaultLearningRate("unknown", "sgd") != 0.2 {
		t.Fatal("fallback rate")
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	if _, err := New(Config{Dataset: "nope"}); err == nil {
		t.Fatal("accepted unknown dataset")
	}
	if _, err := New(Config{Defense: "nope"}); err == nil {
		t.Fatal("accepted unknown defense")
	}
}

func TestTrainUtilityPrivacyLifecycle(t *testing.T) {
	sys, err := New(Config{
		Dataset:     "purchase100",
		Defense:     "dinar",
		Clients:     3,
		Rounds:      2,
		LocalEpochs: 1,
		Records:     400,
		BatchSize:   32,
		Seed:        5,
		Parallel:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Utility(); err == nil {
		t.Fatal("Utility before Train should fail")
	}
	ctx := context.Background()
	if _, err := sys.EvaluatePrivacy(ctx); err == nil {
		t.Fatal("EvaluatePrivacy before Train should fail")
	}
	if err := sys.Train(ctx); err != nil {
		t.Fatal(err)
	}
	if sys.Rounds() != 2 {
		t.Fatalf("Rounds = %d", sys.Rounds())
	}
	acc, err := sys.Utility()
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0 || acc > 1 {
		t.Fatalf("accuracy = %v", acc)
	}
	costs := sys.Costs()
	if costs.MeanClientTrain == 0 || costs.MeanServerAgg == 0 {
		t.Fatal("costs not recorded")
	}
}

func TestEvaluatePrivacyRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("shadow attack is slow")
	}
	sys, err := New(Config{
		Dataset:     "purchase100",
		Defense:     "none",
		Clients:     3,
		Rounds:      3,
		LocalEpochs: 2,
		Records:     600,
		BatchSize:   32,
		Seed:        5,
		Parallel:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := sys.Train(ctx); err != nil {
		t.Fatal(err)
	}
	priv, err := sys.EvaluatePrivacy(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if priv.GlobalAUC < 0.5 || priv.GlobalAUC > 1 {
		t.Fatalf("global AUC = %v", priv.GlobalAUC)
	}
	if priv.LocalAUC < 0.5 || priv.LocalAUC > 1 {
		t.Fatalf("local AUC = %v", priv.LocalAUC)
	}
}

func TestRunExperimentTable1(t *testing.T) {
	out, err := RunExperiment(context.Background(), "table1", true)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "DINAR") {
		t.Fatalf("missing DINAR in output:\n%s", out)
	}
	if _, err := RunExperiment(context.Background(), "nope", true); err == nil {
		t.Fatal("accepted unknown experiment")
	}
}

func TestChoosePrivateLayerConsensus(t *testing.T) {
	if testing.Short() {
		t.Skip("local probe training is slow")
	}
	layer, err := ChoosePrivateLayer(context.Background(), Config{
		Dataset:     "purchase100",
		Clients:     5,
		LocalEpochs: 3,
		Records:     1000,
		BatchSize:   32,
		Seed:        5,
	}, []int{4}) // one Byzantine client
	if err != nil {
		t.Fatal(err)
	}
	if layer < 0 || layer >= 6 {
		t.Fatalf("layer = %d", layer)
	}
	// The vote should land in the deep half of the 6-layer FCNN.
	if layer < 3 {
		t.Fatalf("consensus layer %d unexpectedly shallow", layer)
	}
}

func TestMiddlewareOverTCP(t *testing.T) {
	cfg := Config{
		Dataset:     "purchase100",
		Defense:     "dinar",
		Clients:     2,
		Rounds:      2,
		LocalEpochs: 1,
		Records:     300,
		BatchSize:   32,
		Seed:        9,
	}
	srv, err := NewMiddlewareServer(ServerOptions{Addr: "127.0.0.1:0", Config: cfg})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	done := make(chan error, 1)
	go func() {
		_, err := srv.Serve(ctx)
		done <- err
	}()
	results := make(chan error, cfg.Clients)
	for i := 0; i < cfg.Clients; i++ {
		go func(id int) {
			_, err := RunMiddlewareClient(ctx, ClientOptions{
				Addr:     srv.Addr(),
				Config:   cfg,
				ClientID: id,
			})
			results <- err
		}(i)
	}
	for i := 0; i < cfg.Clients; i++ {
		if err := <-results; err != nil {
			t.Fatal(err)
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestMiddlewareClientValidation(t *testing.T) {
	_, err := RunMiddlewareClient(context.Background(), ClientOptions{
		Addr:     "127.0.0.1:1",
		Config:   Config{Clients: 2},
		ClientID: 5,
	})
	if err == nil {
		t.Fatal("accepted out-of-range client id")
	}
}

func TestChoosePrivateLayerValidation(t *testing.T) {
	if _, err := ChoosePrivateLayer(context.Background(), Config{Dataset: "nope"}, nil); err == nil {
		t.Fatal("accepted unknown dataset")
	}
}

func TestNewMiddlewareServerValidation(t *testing.T) {
	if _, err := NewMiddlewareServer(ServerOptions{Addr: "127.0.0.1:0", Config: Config{Dataset: "nope"}}); err == nil {
		t.Fatal("accepted unknown dataset")
	}
	if _, err := NewMiddlewareServer(ServerOptions{Addr: "127.0.0.1:0", Config: Config{Defense: "nope"}}); err == nil {
		t.Fatal("accepted unknown defense")
	}
}
