package dinar

// Lifecycle integration: graceful Shutdown through the public middleware
// API, and client private-store checkpointing via
// ClientOptions.PrivateCheckpointPath — the end-to-end surface the
// dinar-server/-client binaries wire to flags.

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/checkpoint"
)

func TestMiddlewareGracefulShutdownAndResume(t *testing.T) {
	cfg := Config{
		Dataset: "purchase100",
		Defense: "dinar",
		Clients: 2,
		Rounds:  6,
		Seed:    5,
		Records: 400,
	}
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "global.ckpt")
	priv := filepath.Join(dir, "client1.ckpt")

	srv, err := NewMiddlewareServer(ServerOptions{
		Addr:           "127.0.0.1:0",
		Config:         cfg,
		CheckpointPath: ckpt,
	})
	if err != nil {
		t.Fatal(err)
	}
	srvOut := make(chan error, 1)
	go func() {
		_, err := srv.Serve(context.Background())
		srvOut <- err
	}()

	var logMu sync.Mutex
	var logLines []string
	logf := func(format string, args ...any) {
		logMu.Lock()
		defer logMu.Unlock()
		logLines = append(logLines, fmt.Sprintf(format, args...))
	}
	runClients := func(ctx context.Context, addr string) chan error {
		out := make(chan error, cfg.Clients)
		for id := 0; id < cfg.Clients; id++ {
			opts := ClientOptions{
				Addr:        addr,
				Config:      cfg,
				ClientID:    id,
				MaxRetries:  8,
				BaseBackoff: 20 * time.Millisecond,
			}
			if id == 1 {
				opts.PrivateCheckpointPath = priv
				opts.Logf = logf
			}
			go func(opts ClientOptions) {
				_, err := RunMiddlewareClient(ctx, opts)
				out <- err
			}(opts)
		}
		return out
	}

	ctx1, cancel1 := context.WithCancel(context.Background())
	defer cancel1()
	clientOut := runClients(ctx1, srv.Addr())

	// Let at least one round checkpoint, then drain.
	deadline := time.Now().Add(2 * time.Minute)
	for srv.Health().CheckpointRound < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("no checkpoint after 2 minutes (health %+v)", srv.Health())
		}
		time.Sleep(5 * time.Millisecond)
	}
	shutdownCtx, shutdownCancel := context.WithTimeout(context.Background(), time.Minute)
	defer shutdownCancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := <-srvOut; !errors.Is(err, ErrDraining) {
		t.Fatalf("Serve after Shutdown returned %v, want ErrDraining", err)
	}
	drainedAt := srv.Health().CheckpointRound
	if drainedAt < 1 {
		t.Fatalf("drain left checkpoint round %d, want >= 1", drainedAt)
	}
	cancel1()
	for id := 0; id < cfg.Clients; id++ {
		<-clientOut // interrupted mid-federation; errors expected
	}

	// Client 1 persisted its private store up to the drained progress.
	saved, _, err := checkpoint.LoadLatestValidPrivate(priv)
	if err != nil {
		t.Fatalf("private store after drain: %v", err)
	}
	if saved.ClientID != 1 {
		t.Fatalf("private store belongs to client %d, want 1", saved.ClientID)
	}

	// Restart everything from the checkpoints and finish the federation.
	srv2, err := NewMiddlewareServer(ServerOptions{
		Addr:           "127.0.0.1:0",
		Config:         cfg,
		CheckpointPath: ckpt,
	})
	if err != nil {
		t.Fatal(err)
	}
	if srv2.StartRound() < 1 {
		t.Fatalf("resumed server starts at round %d, want >= 1", srv2.StartRound())
	}
	go func() {
		_, err := srv2.Serve(context.Background())
		srvOut <- err
	}()
	ctx2, cancel2 := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel2()
	clientOut = runClients(ctx2, srv2.Addr())
	for id := 0; id < cfg.Clients; id++ {
		if err := <-clientOut; err != nil {
			t.Fatalf("resumed client: %v", err)
		}
	}
	if err := <-srvOut; err != nil {
		t.Fatalf("resumed federation: %v", err)
	}

	// The restarted client restored its store instead of starting cold.
	logMu.Lock()
	defer logMu.Unlock()
	restored := false
	for _, line := range logLines {
		if strings.Contains(line, "restored private store") {
			restored = true
		}
	}
	if !restored {
		t.Fatalf("restarted client never restored its private store; log: %q", logLines)
	}
}
