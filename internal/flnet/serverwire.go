package flnet

import (
	"fmt"
	"sync"

	"repro/internal/fl"
)

// Server-side wire-codec state: the capability offer computed from
// ServerConfig, the ring of recent canonical broadcast states that delta
// and quantized payloads anchor against, and the per-round canonical
// broadcast preparation.

// wireOffer validates the codec portion of a ServerConfig and computes the
// capability mask the server offers at negotiation (0 = gob only).
func wireOffer(cfg *ServerConfig, cohortAware fl.CohortAware) (uint32, fl.QuantKind, error) {
	wire := cfg.Wire
	if wire == "" {
		wire = "binary"
	}
	if wire != "binary" && wire != "gob" {
		return 0, 0, fmt.Errorf("flnet: unknown wire format %q (want binary or gob)", cfg.Wire)
	}
	quant, err := fl.ParseQuantKind(cfg.Quantize)
	if err != nil {
		return 0, 0, err
	}
	if cfg.TopK < 0 || cfg.TopK >= 1 {
		return 0, 0, fmt.Errorf("flnet: TopK %g outside [0,1)", cfg.TopK)
	}
	if cfg.TopK > 0 && quant == fl.QuantNone {
		return 0, 0, fmt.Errorf("flnet: TopK sparsification requires quantization (set Quantize)")
	}
	if wire == "gob" {
		if cfg.Compress || quant != fl.QuantNone || cfg.Delta {
			return 0, 0, fmt.Errorf("flnet: payload codecs (Compress/Quantize/Delta) require the binary wire format")
		}
		return 0, fl.QuantNone, nil
	}
	if quant != fl.QuantNone && cohortAware != nil {
		return 0, 0, fmt.Errorf("flnet: defense is cohort-aware (secure aggregation): quantized uploads would corrupt the pairwise mask cancellation; disable Quantize or the masking defense")
	}
	caps := CapBinary
	if cfg.Compress {
		caps |= CapFlate
	}
	switch quant {
	case fl.QuantInt8:
		caps |= CapQuantInt8
	case fl.QuantInt16:
		caps |= CapQuantInt16
	}
	if cfg.TopK > 0 {
		caps |= CapTopK
	}
	if cfg.Delta {
		caps |= CapDelta
	}
	return caps, quant, nil
}

// bcastRing holds the last few rounds' canonical broadcast states so
// per-session codecs can anchor deltas and quantized uploads against them.
// Entries older than size rounds behind the newest are evicted; get returns
// a read-only slice (sessions only ever read it).
type bcastRing struct {
	mu      sync.Mutex
	size    int
	entries map[int][]float64
	newest  int
}

func newBcastRing(size int) *bcastRing {
	if size < 2 {
		size = 2
	}
	return &bcastRing{size: size, entries: make(map[int][]float64, size), newest: -1}
}

// put stores a copy of state as round's canonical broadcast and evicts
// entries that fell out of the window.
func (r *bcastRing) put(round int, state []float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.entries[round] = append([]float64(nil), state...)
	if round > r.newest {
		r.newest = round
	}
	for old := range r.entries {
		if old <= r.newest-r.size {
			delete(r.entries, old)
		}
	}
}

// get returns round's canonical broadcast, or nil when it aged out (or
// the ring is off — a hostile delta frame on a plain binary session must
// fail its anchor lookup, not panic).
func (r *bcastRing) get(round int) []float64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.entries[round]
}

// latest returns the newest entry (round, state), or (-1, nil) when empty.
func (r *bcastRing) latest() (int, []float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.newest, r.entries[r.newest]
}

// broadcast is one round's outbound global model: the full canonical state
// every client must hold after the round, plus — when quantized delta
// broadcasts are on — the round's canonical quantized delta against the
// previous broadcast, encoded once and shipped verbatim to every anchored
// peer.
type broadcast struct {
	round int
	state []float64
	canon *fl.DeltaPayload
}

// prepareBroadcast computes round's canonical broadcast. With quantized
// delta broadcasts negotiable, the canonical chain is
//
//	B_r = B_{r-1} + dq(q(g_r − B_{r-1}))
//
// — the aggregate g_r is quantized against the previous broadcast and the
// broadcast state is the *dequantized* reconstruction, so every client
// (and the server's own upload anchors) hold bit-identical states, and the
// quantization error of round r is folded back into round r+1's delta
// (error feedback) instead of accumulating. Without quantization, or when
// the previous broadcast is unavailable (round 0, post-resume gap), the
// broadcast is the aggregate itself.
func (s *Server) prepareBroadcast(round int) broadcast {
	g := s.core.GlobalState()
	if s.ring == nil {
		return broadcast{round: round, state: g}
	}
	bc := broadcast{round: round, state: g}
	if s.quantKind != fl.QuantNone && s.offerCaps&CapDelta != 0 {
		if prev := s.ring.get(round - 1); len(prev) == len(g) {
			// Stream -1 marks the server's canonical broadcast draw — shared
			// by every receiver, unlike per-client upload streams.
			p, err := fl.EncodeDelta(s.quantKind, s.cfg.QuantSeed, -1, round, round-1, prev, g, 0)
			if err == nil {
				if state, aerr := p.Apply(prev, nil); aerr == nil {
					bc.state, bc.canon = state, p
				}
			}
			if bc.canon == nil {
				s.logf(round, -1, "flnet: round %d: broadcasting full state (canonical delta unavailable: %v)", round, err)
			}
		}
	}
	s.ring.put(round, bc.state)
	return bc
}

// sessionBase builds sess's codec anchor resolver: the only state the
// server knows the peer holds is the broadcast of sess.anchor (the last
// round successfully sent to it, or its Hello LastRound), served from the
// ring.
func (s *Server) sessionBase(sess *session) func(round int) []float64 {
	return func(round int) []float64 {
		if round != sess.anchor {
			return nil
		}
		return s.ring.get(round)
	}
}
