package flnet

import (
	"repro/internal/telemetry"
)

// Network-layer telemetry: round lifecycle counters, per-phase round
// timing, and registration/rejoin accounting. The wire byte/frame
// counters live in wire.go next to the codec.
var (
	telRoundsStarted = telemetry.NewCounter("dinar_flnet_rounds_started_total",
		"FL rounds the server began orchestrating")
	telRoundsCompleted = telemetry.NewCounter("dinar_flnet_rounds_completed_total",
		"FL rounds that aggregated successfully")
	telStragglersEvicted = telemetry.NewCounter("dinar_flnet_stragglers_evicted_total",
		"clients evicted for missing the round deadline")
	telClientsEvicted = telemetry.NewCounter("dinar_flnet_clients_evicted_total",
		"clients evicted for any reason (stragglers, dead connections, screen rejections)")
	telRejoins = telemetry.NewCounter("dinar_flnet_rejoins_total",
		"clients re-registered after the initial cohort formed")
	telRegistrationsRejected = telemetry.NewCounter("dinar_flnet_registrations_rejected_total",
		"registration attempts rejected (malformed hello, version mismatch, duplicate id)")
	telLiveClients = telemetry.NewGauge("dinar_flnet_live_clients",
		"currently registered client sessions")
	telClientReconnects = telemetry.NewCounter("dinar_flnet_client_reconnects_total",
		"reconnection attempts made by flnet clients in this process")
	telDrainNotices = telemetry.NewCounter("dinar_flnet_drain_notices_total",
		"drain frames sent to clients (shutdown broadcast, draining registrants)")
	telAdmissionShed = telemetry.NewCounter("dinar_flnet_admission_shed_total",
		"registration attempts shed by accept-path admission control (token bucket or in-flight cap)")
	telClientDrainWaits = telemetry.NewCounter("dinar_flnet_client_drain_waits_total",
		"drain back-off waits performed by flnet clients in this process")

	telRoundBroadcastSeconds = telemetry.NewHistogram("dinar_flnet_round_broadcast_seconds",
		"slowest global-state send of the round (the broadcast critical path)", nil)
	telRoundWaitSeconds = telemetry.NewHistogram("dinar_flnet_round_wait_seconds",
		"round start to quorum decision (training + collection wall time)", nil)

	// Sampling, streaming, and async-mode instruments.
	telSampledCohort = telemetry.NewGauge("dinar_flnet_sampled_cohort",
		"clients sampled into the current round's cohort")
	telSampleReplacements = telemetry.NewCounter("dinar_flnet_sample_replacements_total",
		"replacement clients drawn after a sampled cohort member failed or straggled")
	telStreamingFallback = telemetry.NewCounter("dinar_flnet_streaming_fallback_total",
		"servers that requested streaming aggregation but fell back to materialized (non-streaming defense rule)")
	telAsyncStaleAccepted = telemetry.NewCounter("dinar_flnet_async_stale_accepted_total",
		"staleness-weighted updates from earlier rounds folded into a later round")
	telAsyncStaleDropped = telemetry.NewCounter("dinar_flnet_async_stale_dropped_total",
		"buffered updates dropped for exceeding the async staleness bound")
	telAsyncBuffered = telemetry.NewGauge("dinar_flnet_async_buffered",
		"late updates currently buffered for a future round's staleness-weighted fold")
)
