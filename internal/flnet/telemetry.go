package flnet

import (
	"repro/internal/telemetry"
)

// Metrics bundles the network-layer server instruments: round lifecycle
// counters, per-phase round timing, registration/rejoin accounting, and
// the pipelined-checkpoint overlap histograms. Each federation registers
// one bundle into its own registry — service mode labels each job's
// registry with job="name" — so two servers in one process never merge
// counters. The wire byte/frame counters (wire.go) and the client-side
// counters below stay process-global: they are per-process I/O totals,
// not per-federation state.
type Metrics struct {
	RoundsStarted         *telemetry.Counter
	RoundsCompleted       *telemetry.Counter
	StragglersEvicted     *telemetry.Counter
	ClientsEvicted        *telemetry.Counter
	Rejoins               *telemetry.Counter
	RegistrationsRejected *telemetry.Counter
	LiveClients           *telemetry.Gauge
	DrainNotices          *telemetry.Counter
	AdmissionShed         *telemetry.Counter

	RoundBroadcastSeconds *telemetry.Histogram
	RoundWaitSeconds      *telemetry.Histogram

	// Sampling, streaming, and async-mode instruments.
	SampledCohort      *telemetry.Gauge
	SampleReplacements *telemetry.Counter
	StreamingFallback  *telemetry.Counter
	AsyncStaleAccepted *telemetry.Counter
	AsyncStaleDropped  *telemetry.Counter
	AsyncBuffered      *telemetry.Gauge

	// Round-pipelining instruments: the tail is the per-round work that
	// does not need the next round's cohort (checkpoint encode + fsync);
	// pipelined mode overlaps it with the next round's broadcast/collect
	// and these histograms prove the overlap wins.
	RoundTailSeconds       *telemetry.Histogram
	PipelineOverlapSeconds *telemetry.Histogram
	PipelineStallSeconds   *telemetry.Histogram
}

// NewMetrics registers (or, when a resumed job reuses its registry,
// re-looks-up) the network-layer instrument bundle in r. nil r means the
// process-wide default bundle.
func NewMetrics(r *telemetry.Registry) *Metrics {
	if r == nil {
		return defaultMetrics
	}
	return newMetricsIn(r)
}

func newMetricsIn(r *telemetry.Registry) *Metrics {
	return &Metrics{
		RoundsStarted: r.Counter("dinar_flnet_rounds_started_total",
			"FL rounds the server began orchestrating"),
		RoundsCompleted: r.Counter("dinar_flnet_rounds_completed_total",
			"FL rounds that aggregated successfully"),
		StragglersEvicted: r.Counter("dinar_flnet_stragglers_evicted_total",
			"clients evicted for missing the round deadline"),
		ClientsEvicted: r.Counter("dinar_flnet_clients_evicted_total",
			"clients evicted for any reason (stragglers, dead connections, screen rejections)"),
		Rejoins: r.Counter("dinar_flnet_rejoins_total",
			"clients re-registered after the initial cohort formed"),
		RegistrationsRejected: r.Counter("dinar_flnet_registrations_rejected_total",
			"registration attempts rejected (malformed hello, version mismatch, duplicate id)"),
		LiveClients: r.Gauge("dinar_flnet_live_clients",
			"currently registered client sessions"),
		DrainNotices: r.Counter("dinar_flnet_drain_notices_total",
			"drain frames sent to clients (shutdown broadcast, draining registrants)"),
		AdmissionShed: r.Counter("dinar_flnet_admission_shed_total",
			"registration attempts shed by accept-path admission control (token bucket or in-flight cap)"),

		RoundBroadcastSeconds: r.Histogram("dinar_flnet_round_broadcast_seconds",
			"slowest global-state send of the round (the broadcast critical path)", nil),
		RoundWaitSeconds: r.Histogram("dinar_flnet_round_wait_seconds",
			"round start to quorum decision (training + collection wall time)", nil),

		SampledCohort: r.Gauge("dinar_flnet_sampled_cohort",
			"clients sampled into the current round's cohort"),
		SampleReplacements: r.Counter("dinar_flnet_sample_replacements_total",
			"replacement clients drawn after a sampled cohort member failed or straggled"),
		StreamingFallback: r.Counter("dinar_flnet_streaming_fallback_total",
			"servers that requested streaming aggregation but fell back to materialized (non-streaming defense rule)"),
		AsyncStaleAccepted: r.Counter("dinar_flnet_async_stale_accepted_total",
			"staleness-weighted updates from earlier rounds folded into a later round"),
		AsyncStaleDropped: r.Counter("dinar_flnet_async_stale_dropped_total",
			"buffered updates dropped for exceeding the async staleness bound"),
		AsyncBuffered: r.Gauge("dinar_flnet_async_buffered",
			"late updates currently buffered for a future round's staleness-weighted fold"),

		RoundTailSeconds: r.Histogram("dinar_flnet_round_tail_seconds",
			"checkpoint encode+fsync duration per round (the round tail the pipeline overlaps)", nil),
		PipelineOverlapSeconds: r.Histogram("dinar_flnet_pipeline_overlap_seconds",
			"per round, how much checkpoint-tail time ran concurrently with the next round's broadcast/collect", nil),
		PipelineStallSeconds: r.Histogram("dinar_flnet_pipeline_stall_seconds",
			"per round, how long the round loop blocked waiting for the previous round's checkpoint write", nil),
	}
}

// defaultMetrics is the process-wide bundle in telemetry.Default():
// single-federation binaries and servers constructed without an explicit
// Registry keep their original metric names and accumulation behavior.
var defaultMetrics = newMetricsIn(telemetry.Default())

// Client-side counters stay process-global: a client process dials
// exactly one federation and has no job-scoped registry.
var (
	telClientReconnects = telemetry.NewCounter("dinar_flnet_client_reconnects_total",
		"reconnection attempts made by flnet clients in this process")
	telClientDrainWaits = telemetry.NewCounter("dinar_flnet_client_drain_waits_total",
		"drain back-off waits performed by flnet clients in this process")
)
