package flnet

import (
	"math/rand"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/defense"
	"repro/internal/fl"
)

// TestSampleOrderDeterministic: the draw is a pure function of
// (seed, round, membership set) — input order and process state are
// irrelevant, which is what makes crash/resume cohorts replayable.
func TestSampleOrderDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(200)
		ids := rng.Perm(1000)[:n]
		seed := rng.Int63()
		round := rng.Intn(500)

		a := SampleOrder(seed, round, ids)

		// Same set, different input order: same draw.
		shuffled := append([]int(nil), ids...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		b := SampleOrder(seed, round, shuffled)

		if len(a) != n || len(b) != n {
			t.Fatalf("draw changed cardinality: %d/%d of %d", len(a), len(b), n)
		}
		seen := make(map[int]bool, n)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("trial %d: draw depends on input order at %d: %d vs %d", trial, i, a[i], b[i])
			}
			seen[a[i]] = true
		}
		if len(seen) != n {
			t.Fatalf("trial %d: draw is not a permutation (%d distinct of %d)", trial, len(seen), n)
		}
	}
}

// TestSampleOrderVariesByRoundAndSeed: different rounds (and different
// seeds) give independent draws, so cohort rotation actually happens.
func TestSampleOrderVariesByRoundAndSeed(t *testing.T) {
	ids := make([]int, 64)
	for i := range ids {
		ids[i] = i
	}
	same := func(a, b []int) bool {
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	base := SampleOrder(5, 0, ids)
	if same(base, SampleOrder(5, 1, ids)) {
		t.Fatal("round 0 and round 1 drew the same order")
	}
	if same(base, SampleOrder(6, 0, ids)) {
		t.Fatal("seeds 5 and 6 drew the same order")
	}
	if !same(base, SampleOrder(5, 0, ids)) {
		t.Fatal("same inputs drew different orders")
	}
}

// TestSampleOrderDoesNotMutateInput guards the pure-function contract.
func TestSampleOrderDoesNotMutateInput(t *testing.T) {
	ids := []int{9, 4, 7, 1}
	SampleOrder(1, 1, ids)
	if ids[0] != 9 || ids[1] != 4 || ids[2] != 7 || ids[3] != 1 {
		t.Fatalf("input slice mutated: %v", ids)
	}
}

// boundDefense returns a defense bound to a dim-sized synthetic layout.
func boundDefense(t *testing.T, dim int) fl.Defense {
	t.Helper()
	def := defense.NewNone()
	if err := def.Bind(fl.ModelInfo{NumParams: dim, NumState: dim}); err != nil {
		t.Fatal(err)
	}
	return def
}

// TestSamplingConfigValidation covers the startup rejections added with
// sampling and async mode: an unreachable quorum, a negative staleness
// bound, and a cohort-aware defense in async mode must all fail fast with
// an explanatory error instead of stalling (or corrupting) rounds later.
func TestSamplingConfigValidation(t *testing.T) {
	dim := 4
	base := func() ServerConfig {
		return ServerConfig{
			Addr:         "127.0.0.1:0",
			NumClients:   8,
			Rounds:       2,
			Defense:      boundDefense(t, dim),
			InitialState: make([]float64, dim),
		}
	}

	t.Run("quorum exceeds sample size", func(t *testing.T) {
		cfg := base()
		cfg.SampleSize = 3
		cfg.MinClients = 5
		_, err := NewServer(cfg)
		if err == nil || !strings.Contains(err.Error(), "exceeds sample size") {
			t.Fatalf("want quorum/sample-size error, got %v", err)
		}
	})
	t.Run("sample size out of range", func(t *testing.T) {
		cfg := base()
		cfg.SampleSize = 9
		if _, err := NewServer(cfg); err == nil {
			t.Fatal("accepted SampleSize > NumClients")
		}
		cfg.SampleSize = -1
		if _, err := NewServer(cfg); err == nil {
			t.Fatal("accepted negative SampleSize")
		}
	})
	t.Run("negative staleness", func(t *testing.T) {
		cfg := base()
		cfg.AsyncStaleness = -1
		if _, err := NewServer(cfg); err == nil {
			t.Fatal("accepted negative AsyncStaleness")
		}
	})
	t.Run("cohort-aware defense in async mode", func(t *testing.T) {
		cfg := base()
		sa := defense.NewSA(1, cfg.NumClients)
		if err := sa.Bind(fl.ModelInfo{NumParams: dim, NumState: dim}); err != nil {
			t.Fatal(err)
		}
		cfg.Defense = sa
		cfg.AsyncStaleness = 2
		cfg.MinClients = 8
		_, err := NewServer(cfg)
		if err == nil || !strings.Contains(err.Error(), "cohort-aware") {
			t.Fatalf("want cohort-aware/async error, got %v", err)
		}
	})
}

// TestCheckpointSampleSeedAdoption: a resume adopts the checkpoint's
// sampling seed when the config leaves it unset, and refuses a conflicting
// one — a silently different draw would break cohort replayability.
func TestCheckpointSampleSeedAdoption(t *testing.T) {
	dim := 4
	path := filepath.Join(t.TempDir(), "global.ckpt")
	snap := &checkpoint.Snapshot{
		Round:      3,
		State:      make([]float64, dim),
		SampleSeed: 77,
		SampleSize: 4,
	}
	if err := checkpoint.SaveFile(path, snap); err != nil {
		t.Fatal(err)
	}

	mk := func(seed int64, size int) (*Server, error) {
		return NewServer(ServerConfig{
			Addr:           "127.0.0.1:0",
			NumClients:     8,
			MinClients:     2,
			SampleSize:     size,
			SampleSeed:     seed,
			Rounds:         5,
			Defense:        boundDefense(t, dim),
			InitialState:   make([]float64, dim),
			CheckpointPath: path,
			IOTimeout:      time.Second,
		})
	}

	// Conflicting seed: refused.
	if _, err := mk(78, 4); err == nil || !strings.Contains(err.Error(), "seed") {
		t.Fatalf("want seed-conflict error, got %v", err)
	}
	// Conflicting sample size: refused.
	if _, err := mk(77, 5); err == nil || !strings.Contains(err.Error(), "sampled") {
		t.Fatalf("want sample-size-conflict error, got %v", err)
	}
	// Unset seed: adopted from the checkpoint.
	srv, err := mk(0, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if got := srv.cfg.SampleSeed; got != 77 {
		t.Fatalf("resumed server uses seed %d, want the checkpointed 77", got)
	}
	if srv.StartRound() != 3 {
		t.Fatalf("resumed at round %d, want 3", srv.StartRound())
	}
	// Matching explicit seed: accepted.
	srv2, err := mk(77, 4)
	if err != nil {
		t.Fatal(err)
	}
	srv2.Close()
}
