package flnet

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"strings"
	"sync"

	"repro/internal/fl"
	"repro/internal/telemetry"
)

// Version 3 frame format. After the gob Hello/KindWire handshake a binary
// session frames every message as a 4-byte little-endian payload length
// followed by:
//
//	off  0  u8    magic (0xD3)
//	off  1  u8    kind
//	off  2  u8    flags (state / flate / delta / quant)
//	off  3  u8    reserved (0)
//	off  4  i64le ClientID     off 12  i64le Round     off 20  i64le NumSamples
//	off 28  i64le Version      off 36  i64le LastRound off 44  i64le RetryAfterMs
//	off 52  i64le AnchorRound  (delta base round; -1 when not a delta)
//	off 60  u32le errLen,    errLen bytes   (KindError text)
//	        u32le cohortN,   cohortN × i32le (sampled cohort ids)
//	        u32le rawLen     (state section length before compression; 0 = no state)
//	        u32le storedLen, storedLen bytes (flate-compressed iff flagFlate)
//
// The state section is either rawLen/8 little-endian float64s (absolute
// values, or deltas against AnchorRound when flagDelta is set) or, with
// flagQuant, a serialized fl.DeltaPayload:
//
//	u8 quantKind  u8 sparse  u32le dim  u32le count  f64le lo  f64le hi
//	[count × u32le indices when sparse]  count × (u8 | u16le) levels
//
// Everything is written and parsed with fixed offsets — no reflection —
// and the decoder grows its buffer only as bytes actually arrive, so a
// corrupt length prefix cannot force a giant allocation.

// Codec telemetry: compression and delta-broadcast effectiveness, counted
// at the codec like the frame/byte counters in wire.go.
var (
	telWireCompressedBytes = telemetry.NewCounter("dinar_wire_compressed_bytes_total",
		"flate-compressed state-section bytes written (post-compression size)")
	telWireDeltaHits = telemetry.NewCounter("dinar_wire_delta_hits_total",
		"global broadcasts sent as deltas against the peer's anchor round")
	telWireDeltaMisses = telemetry.NewCounter("dinar_wire_delta_misses_total",
		"global broadcasts sent in full on a delta-capable session (anchor missing or too old)")
)

// frameMagic guards binary frames against a peer that fell out of codec
// sync (e.g. a gob frame read as binary): the first payload byte of every
// v3 frame.
const frameMagic = 0xD3

// Frame flags.
const (
	flagState byte = 1 << iota // the state section is present
	flagFlate                  // the state section is flate-compressed
	flagDelta                  // state values are deltas against AnchorRound
	flagQuant                  // the state section is an fl.DeltaPayload
)

// fixedHeaderLen is the byte length of the fixed-offset frame header, and
// minFrameLen the smallest well-formed payload (header plus the four empty
// section length prefixes).
const (
	fixedHeaderLen = 60
	minFrameLen    = fixedHeaderLen + 4 + 4 + 4 + 4
)

// Codec is one session's negotiated wire configuration. A nil Codec (or
// one without CapBinary) means the unchanged gob protocol. Base, when
// delta or quantized payloads are negotiated, resolves an anchor round to
// the broadcast state both ends share for it (the server answers from its
// recent-broadcast ring, the client from its anchor buffers); returning
// nil means "not shared", which downgrades sends to full state and fails
// decodes of frames that need the anchor.
type Codec struct {
	caps      uint32
	quantSeed int64
	topK      float64
	base      func(round int) []float64
}

// NewCodec builds a session codec from negotiated capabilities. base may
// be nil when neither delta nor quantized payloads were negotiated.
func NewCodec(caps uint32, quantSeed int64, topK float64, base func(round int) []float64) *Codec {
	if caps&CapBinary == 0 {
		return nil
	}
	if caps&CapTopK == 0 {
		topK = 0
	}
	return &Codec{caps: caps, quantSeed: quantSeed, topK: topK, base: base}
}

// Binary reports whether the session speaks binary frames.
func (c *Codec) Binary() bool { return c != nil && c.caps&CapBinary != 0 }

// Caps returns the negotiated capability bitmask (0 for a gob session).
func (c *Codec) Caps() uint32 {
	if c == nil {
		return 0
	}
	return c.caps
}

func (c *Codec) has(cap uint32) bool { return c != nil && c.caps&cap != 0 }

// QuantKind returns the negotiated upload quantization width (QuantNone on
// gob or unquantized sessions).
func (c *Codec) QuantKind() fl.QuantKind {
	switch {
	case c.has(CapQuantInt16):
		return fl.QuantInt16
	case c.has(CapQuantInt8):
		return fl.QuantInt8
	default:
		return fl.QuantNone
	}
}

// lookup resolves an anchor round, tolerating a nil Base.
func (c *Codec) lookup(round int) []float64 {
	if c == nil || c.base == nil || round < 0 {
		return nil
	}
	return c.base(round)
}

// CapsLabel renders a capability bitmask as the human-readable codec label
// used on /healthz ("gob", "binary", "binary+flate+int8+topk+delta", ...).
func CapsLabel(caps uint32) string {
	if caps&CapBinary == 0 {
		return "gob"
	}
	parts := []string{"binary"}
	if caps&CapFlate != 0 {
		parts = append(parts, "flate")
	}
	if caps&CapQuantInt16 != 0 {
		parts = append(parts, "int16")
	} else if caps&CapQuantInt8 != 0 {
		parts = append(parts, "int8")
	}
	if caps&CapTopK != 0 {
		parts = append(parts, "topk")
	}
	if caps&CapDelta != 0 {
		parts = append(parts, "delta")
	}
	return strings.Join(parts, "+")
}

// negotiateCaps intersects the server's offered capabilities with a
// client's advertised ones. Without CapBinary nothing else can apply (the
// session stays gob), and top-k is meaningful only with quantization.
func negotiateCaps(offer, advertised uint32) uint32 {
	caps := offer & advertised
	if caps&CapBinary == 0 {
		return 0
	}
	if caps&(CapQuantInt8|CapQuantInt16) == 0 {
		caps &^= CapTopK
	}
	return caps
}

// WriteMessageWith encodes msg with the session codec: binary frames after
// a v3 negotiation, the classic gob frames otherwise.
func WriteMessageWith(w io.Writer, msg *Message, c *Codec) error {
	if !c.Binary() {
		return WriteMessage(w, msg)
	}
	return writeBinary(w, msg, c)
}

// ReadMessageWith decodes one frame with the session codec into msg,
// reusing msg's State backing array like ReadMessageInto. Delta and
// quantized payloads are reconstructed against the codec's anchor states,
// so msg.State always carries the full absolute vector on return.
func ReadMessageWith(r io.Reader, msg *Message, c *Codec) error {
	if !c.Binary() {
		return ReadMessageInto(r, msg)
	}
	return readBinary(r, msg, c)
}

// flate writer/reader pools: Reset-able instances so steady-state rounds
// compress without re-allocating the (large) flate state.
var (
	flateWriterPool = sync.Pool{New: func() any {
		zw, err := flate.NewWriter(io.Discard, flate.BestSpeed)
		if err != nil {
			panic(err) // BestSpeed is a valid level
		}
		return zw
	}}
	flateReaderPool = sync.Pool{New: func() any {
		return flate.NewReader(bytes.NewReader(nil))
	}}
)

// deflate compresses src into dst (reset first), returning dst's bytes.
func deflate(dst *bytes.Buffer, src []byte) ([]byte, error) {
	dst.Reset()
	zw := flateWriterPool.Get().(*flate.Writer)
	defer flateWriterPool.Put(zw)
	zw.Reset(dst)
	if _, err := zw.Write(src); err != nil {
		return nil, err
	}
	if err := zw.Close(); err != nil {
		return nil, err
	}
	return dst.Bytes(), nil
}

// inflate decompresses exactly rawLen bytes of stored into a pooled buffer;
// the caller returns the handle via putReadBuf.
func inflate(stored []byte, rawLen int) ([]byte, *[]byte, error) {
	zr := flateReaderPool.Get().(io.ReadCloser)
	defer flateReaderPool.Put(zr)
	if err := zr.(flate.Resetter).Reset(bytes.NewReader(stored), nil); err != nil {
		return nil, nil, err
	}
	raw, bp, err := readPayload(zr, rawLen)
	if err != nil {
		return nil, nil, fmt.Errorf("inflate: %w", err)
	}
	return raw, bp, nil
}

// appendU32 / appendU64 are little-endian fixed-width appends.
func appendU32(b []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(b, v) }
func appendU64(b []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(b, v) }

// encodeQuantSection serializes a validated fl.DeltaPayload as the frame's
// state section.
func encodeQuantSection(sec []byte, p *fl.DeltaPayload) []byte {
	sparse := byte(0)
	if p.Indices != nil {
		sparse = 1
	}
	sec = append(sec, byte(p.Kind), sparse)
	sec = appendU32(sec, uint32(p.Dim))
	sec = appendU32(sec, uint32(len(p.Q)))
	sec = appendU64(sec, math.Float64bits(p.Lo))
	sec = appendU64(sec, math.Float64bits(p.Hi))
	for _, ix := range p.Indices {
		sec = appendU32(sec, ix)
	}
	if p.Kind == fl.QuantInt8 {
		for _, q := range p.Q {
			sec = append(sec, byte(q))
		}
	} else {
		for _, q := range p.Q {
			sec = append(sec, byte(q), byte(q>>8))
		}
	}
	return sec
}

// decodeQuantSection parses a quantized state section back into a payload.
// The payload copies nothing out of sec for Q/Indices — it allocates — so
// callers may recycle sec afterwards.
func decodeQuantSection(sec []byte, anchorRound int) (*fl.DeltaPayload, error) {
	const head = 2 + 4 + 4 + 8 + 8
	if len(sec) < head {
		return nil, fmt.Errorf("quant section truncated at %d bytes", len(sec))
	}
	p := &fl.DeltaPayload{
		Kind:      fl.QuantKind(sec[0]),
		BaseRound: anchorRound,
		Dim:       int(binary.LittleEndian.Uint32(sec[2:])),
		Lo:        math.Float64frombits(binary.LittleEndian.Uint64(sec[10:])),
		Hi:        math.Float64frombits(binary.LittleEndian.Uint64(sec[18:])),
	}
	sparse := sec[1]
	count := int(binary.LittleEndian.Uint32(sec[6:]))
	if count <= 0 || count > maxFrameBytes/2 {
		return nil, fmt.Errorf("quant section carries %d coordinates", count)
	}
	rest := sec[head:]
	if sparse != 0 {
		if len(rest) < 4*count {
			return nil, fmt.Errorf("quant section truncated in indices")
		}
		p.Indices = make([]uint32, count)
		for j := range p.Indices {
			p.Indices[j] = binary.LittleEndian.Uint32(rest[4*j:])
		}
		rest = rest[4*count:]
	}
	width := 1
	if p.Kind == fl.QuantInt16 {
		width = 2
	}
	if len(rest) != width*count {
		return nil, fmt.Errorf("quant section has %d level bytes, want %d", len(rest), width*count)
	}
	p.Q = make([]uint16, count)
	if width == 1 {
		for j := range p.Q {
			p.Q[j] = uint16(rest[j])
		}
	} else {
		for j := range p.Q {
			p.Q[j] = binary.LittleEndian.Uint16(rest[2*j:])
		}
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// encodeStateSection chooses the state encoding for msg under the codec and
// appends it to sec, returning the section, its flags, and the anchor
// round (-1 when the section is absolute).
func encodeStateSection(sec []byte, msg *Message, c *Codec) ([]byte, byte, int, error) {
	if len(msg.State) == 0 {
		return sec, 0, -1, nil
	}
	flags := flagState
	switch {
	case msg.Kind == KindUpdate && c.QuantKind() != fl.QuantNone:
		// Quantized upload: delta against the round's broadcast, which the
		// client just decoded and the server holds in its ring. Without a
		// shared base the upload falls back to raw floats.
		if base := c.lookup(msg.Round); len(base) == len(msg.State) {
			p, err := fl.EncodeDelta(c.QuantKind(), c.quantSeed, msg.ClientID, msg.Round, msg.Round, base, msg.State, c.topK)
			if err != nil {
				return sec, 0, -1, err
			}
			return encodeQuantSection(sec, p), flags | flagQuant | flagDelta, msg.Round, nil
		}
	case msg.Kind == KindGlobal && c.has(CapDelta) && msg.Round > 0:
		prev := c.lookup(msg.Round - 1)
		if msg.Canon != nil && len(prev) == len(msg.State) &&
			msg.Canon.BaseRound == msg.Round-1 && msg.Canon.Dim == len(msg.State) {
			// Quantized delta broadcast: the round's canonical payload, the
			// same bytes for every anchored peer, so every reconstruction
			// lands on the identical broadcast state.
			telWireDeltaHits.Inc()
			return encodeQuantSection(sec, msg.Canon), flags | flagQuant | flagDelta, msg.Round - 1, nil
		}
		if c.QuantKind() == fl.QuantNone && len(prev) == len(msg.State) {
			// Lossless delta broadcast: XOR of the IEEE bit patterns, not an
			// arithmetic difference — exactly invertible (prev + (v−prev)
			// loses the last ulp), and slowly-evolving coordinates share
			// sign/exponent/mantissa prefixes that XOR to zero runs flate
			// squeezes well below the full state.
			telWireDeltaHits.Inc()
			for i, v := range msg.State {
				sec = appendU64(sec, math.Float64bits(v)^math.Float64bits(prev[i]))
			}
			return sec, flags | flagDelta, msg.Round - 1, nil
		}
		telWireDeltaMisses.Inc()
	}
	for _, v := range msg.State {
		sec = appendU64(sec, math.Float64bits(v))
	}
	return sec, flags, -1, nil
}

// writeBinary encodes msg as one v3 binary frame (single Write, like the
// gob path).
func writeBinary(w io.Writer, msg *Message, c *Codec) error {
	secBP := readBufPool.Get().(*[]byte)
	defer putReadBuf(secBP)
	sec, flags, anchorRound, err := encodeStateSection((*secBP)[:0], msg, c)
	*secBP = sec[:0]
	if err != nil {
		return fmt.Errorf("flnet: encode %v: %w", msg.Kind, err)
	}
	stored := sec
	rawLen := len(sec)
	cb := writeBufPool.Get().(*bytes.Buffer)
	defer putWriteBuf(cb)
	if c.has(CapFlate) && len(sec) > 64 {
		if z, err := deflate(cb, sec); err == nil && len(z) < len(sec) {
			stored = z
			flags |= flagFlate
			telWireCompressedBytes.Add(int64(len(z)))
		}
	}

	buf := writeBufPool.Get().(*bytes.Buffer)
	defer putWriteBuf(buf)
	buf.Reset()
	need := 4 + minFrameLen + len(msg.Err) + 4*len(msg.Cohort) + len(stored)
	buf.Grow(need)
	b := buf.Bytes()[:0]
	b = append(b, 0, 0, 0, 0) // length prefix, patched below
	b = append(b, frameMagic, byte(msg.Kind), flags, 0)
	b = appendU64(b, uint64(int64(msg.ClientID)))
	b = appendU64(b, uint64(int64(msg.Round)))
	b = appendU64(b, uint64(int64(msg.NumSamples)))
	b = appendU64(b, uint64(int64(msg.Version)))
	b = appendU64(b, uint64(int64(msg.LastRound)))
	b = appendU64(b, uint64(int64(msg.RetryAfterMs)))
	b = appendU64(b, uint64(int64(anchorRound)))
	b = appendU32(b, uint32(len(msg.Err)))
	b = append(b, msg.Err...)
	b = appendU32(b, uint32(len(msg.Cohort)))
	for _, id := range msg.Cohort {
		if id < 0 || id > math.MaxInt32 {
			return fmt.Errorf("flnet: encode %v: cohort id %d does not fit int32", msg.Kind, id)
		}
		b = appendU32(b, uint32(id))
	}
	b = appendU32(b, uint32(rawLen))
	b = appendU32(b, uint32(len(stored)))
	b = append(b, stored...)
	if len(b)-4 > maxFrameBytes {
		return fmt.Errorf("flnet: encode %v: frame length %d exceeds %d", msg.Kind, len(b)-4, maxFrameBytes)
	}
	binary.LittleEndian.PutUint32(b[:4], uint32(len(b)-4))
	if _, err := w.Write(b); err != nil {
		return fmt.Errorf("flnet: write payload: %w", err)
	}
	telTxFrames.Inc()
	telTxBytes.Add(int64(len(b)))
	return nil
}

// readBinary decodes one v3 binary frame into msg, reconstructing delta
// and quantized payloads against the codec's anchors. Every length is
// bounds-checked before it is believed, and the payload buffer grows only
// as bytes arrive (readPayload), so corrupt frames fail cheaply.
func readBinary(r io.Reader, msg *Message, c *Codec) error {
	var header [4]byte
	if _, err := io.ReadFull(r, header[:]); err != nil {
		return fmt.Errorf("flnet: read header: %w", err)
	}
	n := binary.LittleEndian.Uint32(header[:])
	if n < minFrameLen || n > maxFrameBytes {
		return fmt.Errorf("flnet: frame length %d out of range", n)
	}
	payload, bp, err := readPayload(r, int(n))
	if err != nil {
		return fmt.Errorf("flnet: read payload: %w", err)
	}
	defer putReadBuf(bp)
	if payload[0] != frameMagic {
		return fmt.Errorf("flnet: bad frame magic 0x%02x", payload[0])
	}
	kind := Kind(payload[1])
	if kind < KindHello || kind > KindWire {
		return fmt.Errorf("flnet: unknown frame kind %d", payload[1])
	}
	flags := payload[2]

	state := msg.State
	*msg = Message{State: state[:0], Kind: kind}
	msg.ClientID = int(int64(binary.LittleEndian.Uint64(payload[4:])))
	msg.Round = int(int64(binary.LittleEndian.Uint64(payload[12:])))
	msg.NumSamples = int(int64(binary.LittleEndian.Uint64(payload[20:])))
	msg.Version = int(int64(binary.LittleEndian.Uint64(payload[28:])))
	msg.LastRound = int(int64(binary.LittleEndian.Uint64(payload[36:])))
	msg.RetryAfterMs = int(int64(binary.LittleEndian.Uint64(payload[44:])))
	anchorRound := int(int64(binary.LittleEndian.Uint64(payload[52:])))

	rest := payload[fixedHeaderLen:]
	errLen := int(binary.LittleEndian.Uint32(rest[:4]))
	rest = rest[4:]
	if errLen < 0 || errLen > len(rest) {
		return fmt.Errorf("flnet: error text length %d out of range", errLen)
	}
	if errLen > 0 {
		msg.Err = string(rest[:errLen])
		rest = rest[errLen:]
	}
	if len(rest) < 4 {
		return fmt.Errorf("flnet: frame truncated before cohort")
	}
	cohortN := int(binary.LittleEndian.Uint32(rest[:4]))
	rest = rest[4:]
	if cohortN < 0 || cohortN > len(rest)/4 {
		return fmt.Errorf("flnet: cohort count %d out of range", cohortN)
	}
	if cohortN > 0 {
		msg.Cohort = make([]int, cohortN)
		for i := range msg.Cohort {
			id := binary.LittleEndian.Uint32(rest[4*i:])
			if id > math.MaxInt32 {
				return fmt.Errorf("flnet: cohort id %d does not fit int32", id)
			}
			msg.Cohort[i] = int(id)
		}
		rest = rest[4*cohortN:]
	}
	if len(rest) < 8 {
		return fmt.Errorf("flnet: frame truncated before state section")
	}
	rawLen := int(binary.LittleEndian.Uint32(rest[:4]))
	storedLen := int(binary.LittleEndian.Uint32(rest[4:8]))
	rest = rest[8:]
	if storedLen != len(rest) {
		return fmt.Errorf("flnet: state section has %d stored bytes, frame carries %d", storedLen, len(rest))
	}
	if rawLen < 0 || rawLen > maxFrameBytes {
		return fmt.Errorf("flnet: state section length %d out of range", rawLen)
	}

	if flags&flagState != 0 {
		sec := rest
		if flags&flagFlate != 0 {
			raw, rbp, err := inflate(rest, rawLen)
			if err != nil {
				return fmt.Errorf("flnet: decode %v: %w", kind, err)
			}
			defer putReadBuf(rbp)
			sec = raw
		} else if rawLen != storedLen {
			return fmt.Errorf("flnet: uncompressed state section stored %d bytes, declared %d", storedLen, rawLen)
		}
		if err := decodeStateSection(msg, sec, flags, anchorRound, c); err != nil {
			return fmt.Errorf("flnet: decode %v: %w", kind, err)
		}
	} else if storedLen != 0 || rawLen != 0 {
		return fmt.Errorf("flnet: stateless frame carries a %d-byte state section", storedLen)
	}
	telRxFrames.Inc()
	telRxBytes.Add(int64(n) + 4)
	return nil
}

// decodeStateSection reconstructs msg.State from a frame's (decompressed)
// state section.
func decodeStateSection(msg *Message, sec []byte, flags byte, anchorRound int, c *Codec) error {
	if flags&flagQuant != 0 {
		p, err := decodeQuantSection(sec, anchorRound)
		if err != nil {
			return err
		}
		base := c.lookup(anchorRound)
		if len(base) != p.Dim {
			return fmt.Errorf("no shared anchor state for round %d (dimension %d)", anchorRound, p.Dim)
		}
		msg.State, err = p.Apply(base, msg.State)
		return err
	}
	if len(sec)%8 != 0 {
		return fmt.Errorf("state section length %d is not a float64 multiple", len(sec))
	}
	dim := len(sec) / 8
	if cap(msg.State) < dim {
		msg.State = make([]float64, dim)
	}
	msg.State = msg.State[:dim]
	if flags&flagDelta != 0 {
		base := c.lookup(anchorRound)
		if len(base) != dim {
			return fmt.Errorf("no shared anchor state for round %d (dimension %d)", anchorRound, dim)
		}
		for i := range msg.State {
			msg.State[i] = math.Float64frombits(math.Float64bits(base[i]) ^ binary.LittleEndian.Uint64(sec[8*i:]))
		}
		return nil
	}
	for i := range msg.State {
		msg.State[i] = math.Float64frombits(binary.LittleEndian.Uint64(sec[8*i:]))
	}
	return nil
}

// WireBytesTotals returns the process-lifetime wire byte counters
// (headers included, both codecs); the wire bench and the byte-drop
// acceptance test difference them around a federation.
func WireBytesTotals() (tx, rx int64) {
	return telTxBytes.Value(), telRxBytes.Value()
}
