package flnet

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"
)

// TestMessageRoundTrip encodes and decodes a representative Message for
// every Kind, covering all fields including the v2 additions (Version,
// LastRound) and the KindError payload.
func TestMessageRoundTrip(t *testing.T) {
	msgs := []Message{
		{Kind: KindHello, ClientID: 3, Version: ProtocolVersion, LastRound: -1},
		{Kind: KindHello, ClientID: 0, Version: ProtocolVersion, LastRound: 7},
		{Kind: KindGlobal, Round: 4, State: []float64{0.25, -1.5, 3}},
		{Kind: KindUpdate, ClientID: 1, Round: 4, State: []float64{1, 2}, NumSamples: 128},
		{Kind: KindDone, State: []float64{0.5}},
		{Kind: KindError, Err: "flnet: version mismatch"},
	}
	for _, want := range msgs {
		t.Run(want.Kind.String(), func(t *testing.T) {
			var buf bytes.Buffer
			if err := WriteMessage(&buf, &want); err != nil {
				t.Fatal(err)
			}
			got, err := ReadMessage(&buf)
			if err != nil {
				t.Fatal(err)
			}
			if got.Kind != want.Kind || got.ClientID != want.ClientID ||
				got.Round != want.Round || got.NumSamples != want.NumSamples ||
				got.Version != want.Version || got.LastRound != want.LastRound ||
				got.Err != want.Err {
				t.Fatalf("round trip mismatch: got %+v want %+v", *got, want)
			}
			if len(got.State) != len(want.State) {
				t.Fatalf("state length %d, want %d", len(got.State), len(want.State))
			}
			for i := range want.State {
				if got.State[i] != want.State[i] {
					t.Fatalf("state[%d] = %v, want %v", i, got.State[i], want.State[i])
				}
			}
		})
	}
}

// frame builds a raw frame with an arbitrary header length and payload,
// bypassing WriteMessage's consistency.
func frame(length uint32, payload []byte) []byte {
	var header [4]byte
	binary.BigEndian.PutUint32(header[:], length)
	return append(header[:], payload...)
}

// TestReadMessageMalformed table-drives the decoder's failure paths:
// truncated headers and payloads, out-of-range length prefixes, and
// payloads that are not valid gob.
func TestReadMessageMalformed(t *testing.T) {
	valid := func() []byte {
		var buf bytes.Buffer
		if err := WriteMessage(&buf, &Message{Kind: KindHello, Version: ProtocolVersion, LastRound: -1}); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}()

	cases := []struct {
		name    string
		raw     []byte
		wantErr string
	}{
		{"empty", nil, "read header"},
		{"truncated header", valid[:3], "read header"},
		{"zero length", frame(0, nil), "length 0 out of range"},
		{"over max length", frame(maxFrameBytes+1, nil), "out of range"},
		{"max uint32 length", frame(^uint32(0), nil), "out of range"},
		{"truncated payload", valid[:len(valid)-1], "read payload"},
		{"header only", valid[:4], "read payload"},
		{"garbage payload", frame(4, []byte{0xde, 0xad, 0xbe, 0xef}), "decode"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			msg, err := ReadMessage(bytes.NewReader(tc.raw))
			if err == nil {
				t.Fatalf("expected error, got message %+v", *msg)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

// TestReadMessageTrailingData ensures a decoder consumes exactly one
// frame, leaving subsequent frames intact on the stream.
func TestReadMessageTrailingData(t *testing.T) {
	var buf bytes.Buffer
	for i := 0; i < 3; i++ {
		if err := WriteMessage(&buf, &Message{Kind: KindGlobal, Round: i}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		msg, err := ReadMessage(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if msg.Round != i {
			t.Fatalf("frame %d decoded round %d", i, msg.Round)
		}
	}
	if _, err := ReadMessage(&buf); err == nil {
		t.Fatal("expected EOF error after last frame")
	}
}

// FuzzReadMessage throws arbitrary bytes at the decoder: it must either
// return a message or an error, never panic, and never read past one
// frame's worth of input.
func FuzzReadMessage(f *testing.F) {
	var buf bytes.Buffer
	if err := WriteMessage(&buf, &Message{Kind: KindUpdate, ClientID: 1, Round: 2, State: []float64{1.5}, NumSamples: 10}); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Add(frame(^uint32(0), []byte("x")))
	f.Add(frame(8, []byte{1, 2, 3}))

	f.Fuzz(func(t *testing.T, raw []byte) {
		r := bytes.NewReader(raw)
		msg, err := ReadMessage(r)
		if err != nil {
			return
		}
		// A successfully decoded message must survive a round trip.
		var out bytes.Buffer
		if err := WriteMessage(&out, msg); err != nil {
			t.Fatalf("re-encode of decoded message failed: %v", err)
		}
		again, err := ReadMessage(&out)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if again.Kind != msg.Kind || again.ClientID != msg.ClientID || again.Round != msg.Round {
			t.Fatalf("round trip changed message: %+v vs %+v", *again, *msg)
		}
	})
}

// TestPooledBuffersBigThenSmall round-trips a large frame followed by many
// small ones: the pooled write buffer and read payload keep their high-water
// capacity, so any stale-tail or length-accounting bug in the pooling shows
// up as corrupt small frames. It also checks decoded state never aliases the
// pooled payload (messages must stay valid after the pool buffer is reused).
func TestPooledBuffersBigThenSmall(t *testing.T) {
	big := make([]float64, 100_000)
	for i := range big {
		big[i] = float64(i) * 0.5
	}
	var buf bytes.Buffer
	if err := WriteMessage(&buf, &Message{Kind: KindGlobal, Round: 0, State: big}); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 8; i++ {
		msg := &Message{Kind: KindUpdate, ClientID: i, Round: i, State: []float64{float64(i)}, NumSamples: i}
		if err := WriteMessage(&buf, msg); err != nil {
			t.Fatal(err)
		}
	}

	first, err := ReadMessage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(first.State) != len(big) {
		t.Fatalf("big frame state length %d, want %d", len(first.State), len(big))
	}
	for i := 1; i <= 8; i++ {
		msg, err := ReadMessage(&buf)
		if err != nil {
			t.Fatalf("small frame %d after big: %v", i, err)
		}
		if msg.ClientID != i || msg.Round != i || msg.NumSamples != i ||
			len(msg.State) != 1 || msg.State[0] != float64(i) {
			t.Fatalf("small frame %d corrupted: %+v", i, *msg)
		}
	}
	// The big message must have survived the pool reuse above untouched.
	for i, v := range first.State {
		if v != float64(i)*0.5 {
			t.Fatalf("big state[%d] = %v after pool reuse, want %v", i, v, float64(i)*0.5)
		}
	}
}
