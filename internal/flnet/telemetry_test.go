package flnet

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faultnet"
)

// TestLogfSerializedUnderRejoinHammer reproduces the unsynchronized-Logf
// bug: the rejoin acceptor, per-client round goroutines, and the round
// loop all log during an active round with clients dropping and rejoining.
// Run under -race (`make telemetry`), the test asserts every Logf call is
// serialized — no two invocations overlap — and every line arrives whole.
func TestLogfSerializedUnderRejoinHammer(t *testing.T) {
	const rejoinID = 1
	bed := newFedBed(t, 2)
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	// Drop client 1's first connection right after its registration
	// handshake so the rejoin acceptor keeps logging while rounds are in
	// flight.
	handshake := v3HandshakeLen(t, rejoinID)
	schedule := func(i int) faultnet.Plan {
		if i == 0 {
			return faultnet.Plan{Kind: faultnet.DropAfter, Bytes: handshake}
		}
		return faultnet.Plan{}
	}

	// Concurrency detector: inFlight must never exceed 1 if the server
	// serializes Logf. The lines slice is mutated without its own lock on
	// purpose — under -race, any unserialized pair of Logf calls is a
	// reported data race even if the overlap counter misses the window.
	var inFlight, maxInFlight atomic.Int32
	var lines []string
	logf := func(format string, args ...any) {
		n := inFlight.Add(1)
		for {
			max := maxInFlight.Load()
			if n <= max || maxInFlight.CompareAndSwap(max, n) {
				break
			}
		}
		lines = append(lines, fmt.Sprintf(format, args...))
		inFlight.Add(-1)
	}

	srv, ln, srvOut := startServer(t, ctx, ServerConfig{
		NumClients:    2,
		MinClients:    2,
		Rounds:        3,
		RoundDeadline: 30 * time.Second,
		Defense:       bed.defense("none"),
		InitialState:  bed.initialState(),
		IOTimeout:     30 * time.Second,
		Logf:          logf,
		EventCapacity: 64,
	}, schedule)

	var wg sync.WaitGroup
	errCh := make(chan error, 2)
	runClient := func(id int) {
		defer wg.Done()
		_, err := RunClient(ctx, ClientConfig{
			Addr:        srv.Addr().String(),
			Trainer:     bed.trainer(id),
			Defense:     bed.defense("none"),
			MaxRetries:  5,
			BaseBackoff: 20 * time.Millisecond,
		})
		if err != nil {
			errCh <- err
		}
	}
	wg.Add(1)
	go runClient(rejoinID)
	for ln.Accepted() == 0 {
		time.Sleep(5 * time.Millisecond)
	}
	wg.Add(1)
	go runClient(0)
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	out := <-srvOut
	if out.err != nil {
		t.Fatalf("federation failed: %v", out.err)
	}

	if got := maxInFlight.Load(); got > 1 {
		t.Fatalf("Logf entered concurrently (%d overlapping calls)", got)
	}
	if len(lines) == 0 {
		t.Fatal("no log lines recorded")
	}
	var sawRejoin, sawRound bool
	for _, line := range lines {
		if strings.Contains(line, "\n") {
			t.Errorf("log line contains embedded newline: %q", line)
		}
		if !strings.HasPrefix(line, "flnet: ") {
			t.Errorf("torn log line (missing prefix): %q", line)
		}
		if strings.Contains(line, "rejoined") {
			sawRejoin = true
		}
		if strings.Contains(line, "aggregated") {
			sawRound = true
		}
	}
	if !sawRejoin || !sawRound {
		t.Fatalf("hammer did not exercise both log paths (rejoin=%v round=%v):\n%s",
			sawRejoin, sawRound, strings.Join(lines, "\n"))
	}

	// The structured event ring retains the same events with round/client
	// attribution.
	events := srv.Events()
	if len(events) == 0 {
		t.Fatal("no structured events retained")
	}
	var attributed bool
	for _, ev := range events {
		if strings.Contains(ev.Msg, "rejoined") && ev.Client == rejoinID {
			attributed = true
		}
	}
	if !attributed {
		t.Fatalf("rejoin event lacks client attribution: %+v", events)
	}

	// Per-phase round timing is populated on every aggregated round.
	for _, rep := range srv.Reports() {
		if rep.Timing.Broadcast <= 0 || rep.Timing.Wait <= 0 {
			t.Errorf("round %d missing broadcast/wait timing: %+v", rep.Round, rep.Timing)
		}
		if rep.Timing.Aggregate <= 0 {
			t.Errorf("round %d missing aggregate timing: %+v", rep.Round, rep.Timing)
		}
		if rep.Timing.Screen <= 0 {
			t.Errorf("round %d missing screen timing (screen is on by default): %+v", rep.Round, rep.Timing)
		}
	}
}

// TestServerHealthSnapshot checks the Health transitions a round trip
// through a complete federation.
func TestServerHealthSnapshot(t *testing.T) {
	bed := newFedBed(t, 2)
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	srv, _, srvOut := startServer(t, ctx, ServerConfig{
		NumClients:   2,
		Rounds:       2,
		Defense:      bed.defense("none"),
		InitialState: bed.initialState(),
		IOTimeout:    30 * time.Second,
	}, nil)

	h := srv.Health()
	if h.Status != "waiting" || h.Round != 0 || h.Rounds != 2 || h.CheckpointRound != -1 {
		t.Fatalf("pre-registration health = %+v", h)
	}
	if h.NumClients != 2 || h.MinClients != 2 {
		t.Fatalf("health cohort config = %+v", h)
	}

	var wg sync.WaitGroup
	for id := 0; id < 2; id++ {
		id := id
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := RunClient(ctx, ClientConfig{
				Addr:    srv.Addr().String(),
				Trainer: bed.trainer(id),
				Defense: bed.defense("none"),
			}); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	out := <-srvOut
	if out.err != nil {
		t.Fatalf("federation failed: %v", out.err)
	}
	h = srv.Health()
	if h.Status != "done" || h.Round != 2 {
		t.Fatalf("post-run health = %+v", h)
	}
}
