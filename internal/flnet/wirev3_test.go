package flnet

import (
	"bytes"
	"encoding/binary"
	"math"
	"strings"
	"testing"

	"repro/internal/fl"
)

// testState builds a deterministic dim-length state vector.
func testState(seed int64, dim int) []float64 {
	s := make([]float64, dim)
	for i := range s {
		z := uint64(seed)*0x9e3779b97f4a7c15 + uint64(i)*0xbf58476d1ce4e5b9
		z ^= z >> 29
		s[i] = float64(z%2048)/1024 - 1
	}
	return s
}

// ringBase adapts a round→state map to a codec base function.
func ringBase(m map[int][]float64) func(int) []float64 {
	return func(round int) []float64 { return m[round] }
}

// TestBinaryRoundTrip drives every message kind through every codec
// configuration the negotiation can produce: plain binary frames, flate
// compression, raw delta broadcasts, quantized uploads (dense int8, sparse
// top-k int16), and quantized delta broadcasts with a canonical payload.
// Lossless paths must round-trip exactly; quantized paths must reconstruct
// the exact state fl.EncodeDelta+Apply defines (the decoder runs the same
// deterministic pipeline, so equality is bitwise, not approximate).
func TestBinaryRoundTrip(t *testing.T) {
	const dim = 512
	const seed = 42
	prev := testState(7, dim)
	cur := testState(8, dim)
	bases := map[int][]float64{3: prev, 4: cur}

	lossless := []struct {
		name string
		caps uint32
		msg  Message
	}{
		{"global/plain", CapBinary, Message{Kind: KindGlobal, Round: 4, State: testState(9, dim), Cohort: []int{0, 2, 5}}},
		{"global/flate", CapBinary | CapFlate, Message{Kind: KindGlobal, Round: 4, State: make([]float64, dim)}},
		{"update/plain", CapBinary, Message{Kind: KindUpdate, ClientID: 3, Round: 4, State: testState(10, dim), NumSamples: 128}},
		{"done", CapBinary, Message{Kind: KindDone, State: testState(11, 8)}},
		{"error", CapBinary, Message{Kind: KindError, Err: "flnet: you are quarantined"}},
		{"drain", CapBinary, Message{Kind: KindDrain, RetryAfterMs: 750}},
		{"hello", CapBinary, Message{Kind: KindHello, ClientID: 6, Version: ProtocolVersion, LastRound: -1}},
		{"global/delta-raw", CapBinary | CapDelta, Message{Kind: KindGlobal, Round: 4, State: cur}},
		{"global/delta-raw-flate", CapBinary | CapDelta | CapFlate, Message{Kind: KindGlobal, Round: 4, State: cur}},
	}
	for _, tc := range lossless {
		t.Run(tc.name, func(t *testing.T) {
			enc := NewCodec(tc.caps, seed, 0, ringBase(map[int][]float64{3: prev}))
			dec := NewCodec(tc.caps, seed, 0, ringBase(map[int][]float64{3: prev}))
			var buf bytes.Buffer
			if err := WriteMessageWith(&buf, &tc.msg, enc); err != nil {
				t.Fatal(err)
			}
			var got Message
			if err := ReadMessageWith(&buf, &got, dec); err != nil {
				t.Fatal(err)
			}
			assertMessageEqual(t, &got, &tc.msg)
			if buf.Len() != 0 {
				t.Fatalf("decoder left %d bytes on the stream", buf.Len())
			}
		})
	}

	quantCases := []struct {
		name string
		caps uint32
		topK float64
	}{
		{"update/int8", CapBinary | CapQuantInt8, 0},
		{"update/int8-flate", CapBinary | CapQuantInt8 | CapFlate, 0},
		{"update/int16-topk", CapBinary | CapQuantInt16 | CapTopK, 0.25},
	}
	for _, tc := range quantCases {
		t.Run(tc.name, func(t *testing.T) {
			enc := NewCodec(tc.caps, seed, tc.topK, ringBase(bases))
			dec := NewCodec(tc.caps, seed, tc.topK, ringBase(bases))
			msg := Message{Kind: KindUpdate, ClientID: 5, Round: 4, State: testState(13, dim), NumSamples: 64}
			var buf bytes.Buffer
			if err := WriteMessageWith(&buf, &msg, enc); err != nil {
				t.Fatal(err)
			}
			// The decoder must land on exactly what the deterministic
			// encode+apply pipeline defines, not merely "close".
			p, err := fl.EncodeDelta(enc.QuantKind(), seed, msg.ClientID, msg.Round, msg.Round, cur, msg.State, enc.topK)
			if err != nil {
				t.Fatal(err)
			}
			want, err := p.Apply(cur, nil)
			if err != nil {
				t.Fatal(err)
			}
			var got Message
			if err := ReadMessageWith(&buf, &got, dec); err != nil {
				t.Fatal(err)
			}
			if len(got.State) != dim {
				t.Fatalf("decoded state has %d values, want %d", len(got.State), dim)
			}
			for i := range want {
				if got.State[i] != want[i] {
					t.Fatalf("state[%d] = %v, want %v (quantized reconstruction must be bit-exact)", i, got.State[i], want[i])
				}
			}
		})
	}

	t.Run("global/quant-delta-canonical", func(t *testing.T) {
		caps := uint32(CapBinary | CapQuantInt8 | CapDelta)
		canon, err := fl.EncodeDelta(fl.QuantInt8, seed, -1, 4, 3, prev, cur, 0)
		if err != nil {
			t.Fatal(err)
		}
		canonical, err := canon.Apply(prev, nil)
		if err != nil {
			t.Fatal(err)
		}
		enc := NewCodec(caps, seed, 0, ringBase(bases))
		dec := NewCodec(caps, seed, 0, ringBase(bases))
		msg := Message{Kind: KindGlobal, Round: 4, State: canonical, Canon: canon}
		var buf bytes.Buffer
		if err := WriteMessageWith(&buf, &msg, enc); err != nil {
			t.Fatal(err)
		}
		var got Message
		if err := ReadMessageWith(&buf, &got, dec); err != nil {
			t.Fatal(err)
		}
		for i := range canonical {
			if got.State[i] != canonical[i] {
				t.Fatalf("state[%d] = %v, want canonical %v", i, got.State[i], canonical[i])
			}
		}
	})

	t.Run("update/quant-fallback-without-anchor", func(t *testing.T) {
		// A quant-capable session whose base lookup misses (e.g. first
		// exchange after a rejoin) must fall back to a raw lossless upload.
		enc := NewCodec(CapBinary|CapQuantInt8, seed, 0, nil)
		dec := NewCodec(CapBinary|CapQuantInt8, seed, 0, nil)
		msg := Message{Kind: KindUpdate, ClientID: 1, Round: 9, State: testState(21, dim), NumSamples: 8}
		var buf bytes.Buffer
		if err := WriteMessageWith(&buf, &msg, enc); err != nil {
			t.Fatal(err)
		}
		var got Message
		if err := ReadMessageWith(&buf, &got, dec); err != nil {
			t.Fatal(err)
		}
		assertMessageEqual(t, &got, &msg)
	})

	t.Run("global/delta-without-anchor-fails-decode", func(t *testing.T) {
		enc := NewCodec(CapBinary|CapDelta, seed, 0, ringBase(bases))
		dec := NewCodec(CapBinary|CapDelta, seed, 0, nil) // peer lost its anchor
		var buf bytes.Buffer
		if err := WriteMessageWith(&buf, &Message{Kind: KindGlobal, Round: 4, State: cur}, enc); err != nil {
			t.Fatal(err)
		}
		var got Message
		err := ReadMessageWith(&buf, &got, dec)
		if err == nil || !strings.Contains(err.Error(), "no shared anchor") {
			t.Fatalf("decode without anchor = %v, want anchor error", err)
		}
	})
}

// assertMessageEqual compares every wire-carried field exactly.
func assertMessageEqual(t *testing.T, got, want *Message) {
	t.Helper()
	if got.Kind != want.Kind || got.ClientID != want.ClientID ||
		got.Round != want.Round || got.NumSamples != want.NumSamples ||
		got.Version != want.Version || got.LastRound != want.LastRound ||
		got.RetryAfterMs != want.RetryAfterMs || got.Err != want.Err {
		t.Fatalf("round trip mismatch: got %+v want %+v", *got, *want)
	}
	if len(got.Cohort) != len(want.Cohort) {
		t.Fatalf("cohort %v, want %v", got.Cohort, want.Cohort)
	}
	for i := range want.Cohort {
		if got.Cohort[i] != want.Cohort[i] {
			t.Fatalf("cohort %v, want %v", got.Cohort, want.Cohort)
		}
	}
	if len(got.State) != len(want.State) {
		t.Fatalf("state length %d, want %d", len(got.State), len(want.State))
	}
	for i := range want.State {
		if got.State[i] != want.State[i] {
			t.Fatalf("state[%d] = %v, want %v", i, got.State[i], want.State[i])
		}
	}
}

// TestFlateActuallyCompresses pins down that a compressible broadcast goes
// out smaller than its raw encoding and still round-trips exactly.
func TestFlateActuallyCompresses(t *testing.T) {
	const dim = 4096
	state := make([]float64, dim) // all zeros: maximally compressible
	plain := NewCodec(CapBinary, 0, 0, nil)
	flated := NewCodec(CapBinary|CapFlate, 0, 0, nil)
	var rawBuf, zBuf bytes.Buffer
	if err := WriteMessageWith(&rawBuf, &Message{Kind: KindGlobal, Round: 1, State: state}, plain); err != nil {
		t.Fatal(err)
	}
	if err := WriteMessageWith(&zBuf, &Message{Kind: KindGlobal, Round: 1, State: state}, flated); err != nil {
		t.Fatal(err)
	}
	if zBuf.Len() >= rawBuf.Len()/10 {
		t.Fatalf("flate frame is %d bytes vs %d raw; expected at least 10x on a zero state", zBuf.Len(), rawBuf.Len())
	}
	var got Message
	if err := ReadMessageWith(&zBuf, &got, flated); err != nil {
		t.Fatal(err)
	}
	if len(got.State) != dim {
		t.Fatalf("decoded %d values, want %d", len(got.State), dim)
	}
	for i, v := range got.State {
		if v != 0 {
			t.Fatalf("state[%d] = %v, want 0", i, v)
		}
	}
}

// binaryFrame encodes one message as a v3 frame and returns the raw bytes.
func binaryFrame(t *testing.T, msg *Message, c *Codec) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteMessageWith(&buf, msg, c); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestBinaryFrameMalformed table-drives the binary decoder's failure paths:
// every length field is lied about in turn, and every lie must produce an
// error (never a panic, never a giant allocation, never trailing-garbage
// acceptance).
func TestBinaryFrameMalformed(t *testing.T) {
	codec := NewCodec(CapBinary, 0, 0, nil)
	valid := binaryFrame(t, &Message{Kind: KindUpdate, ClientID: 2, Round: 3, State: []float64{1, 2, 3}, NumSamples: 5}, codec)

	mutate := func(mut func(b []byte)) []byte {
		b := append([]byte(nil), valid...)
		mut(b)
		return b
	}
	le32 := binary.LittleEndian.PutUint32

	cases := []struct {
		name    string
		raw     []byte
		wantErr string
	}{
		{"empty", nil, "read header"},
		{"short length", mutate(func(b []byte) { le32(b, minFrameLen-1) }), "out of range"},
		{"over max length", mutate(func(b []byte) { le32(b, maxFrameBytes+1) }), "out of range"},
		{"huge length truncated stream", mutate(func(b []byte) { le32(b, maxFrameBytes) }), "read payload"},
		{"bad magic", mutate(func(b []byte) { b[4] = 0x99 }), "bad frame magic"},
		{"gob frame on binary session", func() []byte {
			var buf bytes.Buffer
			if err := WriteMessage(&buf, &Message{Kind: KindHello, Version: ProtocolVersion}); err != nil {
				t.Fatal(err)
			}
			return buf.Bytes()
		}(), "out of range"}, // big-endian gob length parses as a huge little-endian value
		{"unknown kind", mutate(func(b []byte) { b[5] = 0xEE }), "unknown frame kind"},
		{"error text overruns", mutate(func(b []byte) { le32(b[4+fixedHeaderLen:], 1 << 20) }), "out of range"},
		{"cohort count overruns", mutate(func(b []byte) { le32(b[4+fixedHeaderLen+4:], 1 << 24) }), "cohort count"},
		{"stored length mismatch", mutate(func(b []byte) { le32(b[len(b)-3*8-4:], 7) }), "stored"},
		{"truncated payload", valid[:len(valid)-2], "read payload"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var msg Message
			err := ReadMessageWith(bytes.NewReader(tc.raw), &msg, codec)
			if err == nil {
				t.Fatalf("expected error, decoded %+v", msg)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

// TestNegotiateCaps pins the capability-intersection rules.
func TestNegotiateCaps(t *testing.T) {
	cases := []struct {
		name              string
		offer, advertised uint32
		want              uint32
	}{
		{"full match", ClientCaps, ClientCaps, ClientCaps},
		{"gob client", ClientCaps, 0, 0},
		{"gob server", 0, ClientCaps, 0},
		{"flate only", CapBinary | CapFlate, ClientCaps, CapBinary | CapFlate},
		{"no binary no extras", CapFlate | CapDelta, ClientCaps, 0},
		{"topk without quant cleared", CapBinary | CapTopK, ClientCaps, CapBinary},
		{"topk with quant kept", CapBinary | CapQuantInt8 | CapTopK, ClientCaps, CapBinary | CapQuantInt8 | CapTopK},
		{"client subset", CapBinary | CapFlate | CapQuantInt16 | CapDelta, CapBinary | CapDelta, CapBinary | CapDelta},
	}
	for _, tc := range cases {
		if got := negotiateCaps(tc.offer, tc.advertised); got != tc.want {
			t.Errorf("%s: negotiateCaps(%#x, %#x) = %#x, want %#x", tc.name, tc.offer, tc.advertised, got, tc.want)
		}
	}
}

// TestCapsLabel pins the /healthz codec labels.
func TestCapsLabel(t *testing.T) {
	cases := []struct {
		caps uint32
		want string
	}{
		{0, "gob"},
		{CapBinary, "binary"},
		{CapBinary | CapFlate, "binary+flate"},
		{CapBinary | CapQuantInt8 | CapTopK | CapDelta, "binary+int8+topk+delta"},
		{ClientCaps, "binary+flate+int16+topk+delta"},
	}
	for _, tc := range cases {
		if got := CapsLabel(tc.caps); got != tc.want {
			t.Errorf("CapsLabel(%#x) = %q, want %q", tc.caps, got, tc.want)
		}
	}
}

// TestPoolsDropOversizedBuffers is the bounded-pooling guard: a buffer past
// maxPooledBytes must never be re-issued by its pool (one hostile-but-valid
// giant frame must not pin tens of megabytes for the process lifetime).
func TestPoolsDropOversizedBuffers(t *testing.T) {
	big := make([]byte, maxPooledBytes+1)
	bp := &big
	putReadBuf(bp)
	if got := readBufPool.Get().(*[]byte); cap(*got) > 0 && &(*got)[:1][0] == &big[0] {
		t.Fatal("putReadBuf pooled a buffer beyond maxPooledBytes")
	}

	var wb bytes.Buffer
	wb.Grow(maxPooledBytes + 1)
	marker := wb.Bytes()[:1]
	putWriteBuf(&wb)
	if got := writeBufPool.Get().(*bytes.Buffer); got.Cap() > 0 && &got.Bytes()[:1][0] == &marker[0] {
		t.Fatal("putWriteBuf pooled a buffer beyond maxPooledBytes")
	}

	state := make([]float64, maxPooledBytes/8+1)
	PutState(state)
	if got := GetState(); cap(got) > 0 && &got[:1][0] == &state[0] {
		t.Fatal("PutState pooled a state buffer beyond maxPooledBytes")
	}
}

// FuzzFrame throws arbitrary bytes at the binary decoder: it must return a
// message or an error, never panic, and anything it accepts must survive a
// re-encode/re-decode round trip.
func FuzzFrame(f *testing.F) {
	codec := NewCodec(CapBinary, 0, 0, nil)
	seedMsgs := []*Message{
		{Kind: KindGlobal, Round: 2, State: []float64{1, -2, 3.5}, Cohort: []int{0, 1}},
		{Kind: KindUpdate, ClientID: 1, Round: 2, State: []float64{0.25}, NumSamples: 9},
		{Kind: KindError, Err: "nope"},
		{Kind: KindDrain, RetryAfterMs: 10},
	}
	for _, m := range seedMsgs {
		var buf bytes.Buffer
		if err := WriteMessageWith(&buf, m, codec); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	zc := NewCodec(CapBinary|CapFlate, 0, 0, nil)
	var zbuf bytes.Buffer
	if err := WriteMessageWith(&zbuf, &Message{Kind: KindGlobal, Round: 1, State: make([]float64, 256)}, zc); err != nil {
		f.Fatal(err)
	}
	f.Add(zbuf.Bytes())
	f.Add([]byte{})
	f.Add([]byte{76, 0, 0, 0, frameMagic})
	f.Add(func() []byte {
		var b [8]byte
		binary.LittleEndian.PutUint32(b[:4], maxFrameBytes)
		b[4] = frameMagic
		return b[:]
	}())

	full := NewCodec(ClientCaps, 3, 0.5, nil)
	f.Fuzz(func(t *testing.T, raw []byte) {
		var msg Message
		if err := ReadMessageWith(bytes.NewReader(raw), &msg, full); err != nil {
			return
		}
		if msg.Kind < KindHello || msg.Kind > KindWire {
			t.Fatalf("decoder accepted invalid kind %d", msg.Kind)
		}
		// Re-encode with a plain binary codec (no lossy transforms) and
		// decode again: the wire fields must be stable.
		var out bytes.Buffer
		if err := WriteMessageWith(&out, &msg, codec); err != nil {
			t.Fatalf("re-encode of accepted frame failed: %v", err)
		}
		var again Message
		if err := ReadMessageWith(&out, &again, codec); err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if again.Kind != msg.Kind || again.ClientID != msg.ClientID || again.Round != msg.Round ||
			again.NumSamples != msg.NumSamples || again.Err != msg.Err || len(again.State) != len(msg.State) {
			t.Fatalf("round trip changed message: %+v vs %+v", again, msg)
		}
		for i := range msg.State {
			if again.State[i] != msg.State[i] && !(math.IsNaN(again.State[i]) && math.IsNaN(msg.State[i])) {
				t.Fatalf("state[%d] changed: %v vs %v", i, again.State[i], msg.State[i])
			}
		}
	})
}
