package flnet

import (
	"context"
	"math"
	"sync"
	"testing"
	"time"
)

// runFedWithWire runs one complete federation on the shared fedBed fixtures
// with the given server codec config and per-client wire pins, returning
// the final global state.
func runFedWithWire(t *testing.T, bed *fedBed, rounds int, mutate func(*ServerConfig), clientWire []string) []float64 {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	cfg := ServerConfig{
		NumClients:   bed.numClients,
		Rounds:       rounds,
		Defense:      bed.defense("none"),
		InitialState: bed.initialState(),
		IOTimeout:    30 * time.Second,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	srv, _, srvOut := startServer(t, ctx, cfg, nil)

	var wg sync.WaitGroup
	errCh := make(chan error, bed.numClients)
	for id := 0; id < bed.numClients; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			_, err := RunClient(ctx, ClientConfig{
				Addr:    srv.Addr().String(),
				Trainer: bed.trainer(id),
				Defense: bed.defense("none"),
				Wire:    clientWire[id],
			})
			if err != nil {
				errCh <- err
			}
		}(id)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	out := <-srvOut
	if out.err != nil {
		t.Fatal(out.err)
	}
	return out.state
}

// relL2 is ‖a−b‖ / ‖b‖.
func relL2(a, b []float64) float64 {
	var diff, norm float64
	for i := range a {
		d := a[i] - b[i]
		diff += d * d
		norm += b[i] * b[i]
	}
	return math.Sqrt(diff) / math.Sqrt(norm)
}

// TestQuantizedFederationConverges is the lossy-codec tolerance acceptance:
// the same seeded federation run over int8-quantized, delta-encoded,
// compressed frames must land within a small relative distance of the
// lossless run's final global model — quantization noise perturbs, it must
// not derail.
func TestQuantizedFederationConverges(t *testing.T) {
	const rounds = 3
	bed := newFedBed(t, 2)
	gobWire := []string{"gob", "gob"}
	baseline := runFedWithWire(t, bed, rounds, func(cfg *ServerConfig) { cfg.Wire = "gob" }, gobWire)
	if len(baseline) == 0 {
		t.Fatal("baseline federation produced no state")
	}

	binWire := []string{"binary", "binary"}
	quantized := runFedWithWire(t, bed, rounds, func(cfg *ServerConfig) {
		cfg.Wire = "binary"
		cfg.Compress = true
		cfg.Quantize = "int8"
		cfg.Delta = true
		cfg.QuantSeed = 5
	}, binWire)
	if len(quantized) != len(baseline) {
		t.Fatalf("quantized run produced %d values, baseline %d", len(quantized), len(baseline))
	}
	for i, v := range quantized {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("quantized state[%d] is %v", i, v)
		}
	}
	rel := relL2(quantized, baseline)
	t.Logf("relative L2 distance to lossless run: %.4f", rel)
	if rel > 0.05 {
		t.Fatalf("quantized federation drifted %.4f relative L2 from baseline; tolerance is 0.05", rel)
	}

	// A lossless binary run (no quantization) must match the gob baseline
	// exactly: framing alone changes no bits.
	lossless := runFedWithWire(t, bed, rounds, func(cfg *ServerConfig) {
		cfg.Wire = "binary"
		cfg.Compress = true
		cfg.Delta = true
	}, binWire)
	for i := range baseline {
		if lossless[i] != baseline[i] {
			t.Fatalf("lossless binary state[%d] = %x, gob baseline %x; framing must be bit-transparent",
				i, math.Float64bits(lossless[i]), math.Float64bits(baseline[i]))
		}
	}
}

// TestMixedWireFederation pins a heterogeneous cohort: one client pinned to
// gob and one speaking the full binary stack complete the same quantized
// federation side by side.
func TestMixedWireFederation(t *testing.T) {
	bed := newFedBed(t, 2)
	state := runFedWithWire(t, bed, 2, func(cfg *ServerConfig) {
		cfg.Wire = "binary"
		cfg.Compress = true
		cfg.Quantize = "int8"
		cfg.Delta = true
		cfg.QuantSeed = 7
	}, []string{"gob", "binary"})
	if len(state) == 0 {
		t.Fatal("mixed federation produced no state")
	}
	for i, v := range state {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("state[%d] is %v", i, v)
		}
	}
}
