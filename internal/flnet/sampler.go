package flnet

import (
	"math/rand"
	"sort"
)

// Per-round client sampling. At production scale only a fraction of the
// registered fleet participates in each round (K of N); the draw must be
// deterministic given (seed, round, membership) so that a server resumed
// from a checkpoint re-draws the exact cohort it would have drawn before
// the crash, and so that tests and incident forensics can replay a round's
// cohort offline.
//
// SampleOrder is that draw as a pure function: it returns ALL eligible ids
// in a seeded shuffled order. The caller takes the first K as the round's
// cohort and keeps the remainder as an ordered replacement queue — when a
// sampled client is partitioned or times out, the next id in the order
// steps in instead of stalling the round (quorum fallback). Because the
// order is a permutation of the whole eligible set, cohort and replacement
// queue come from one deterministic draw.

// samplerMix is the SplitMix64 finalizer, the same mixing the repo's other
// seeded components use.
func samplerMix(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// SampleOrder returns the eligible client ids in the deterministic sampling
// order for (seed, round). The result depends only on seed, round, and the
// *set* of ids (the input order is normalized away and the input slice is
// not modified). Same inputs, same order — across processes and across
// crash/resume.
func SampleOrder(seed int64, round int, ids []int) []int {
	order := append([]int(nil), ids...)
	sort.Ints(order)
	// Mix round into the seed so per-round orders are independent draws,
	// then drive a seeded Fisher-Yates shuffle.
	mixed := samplerMix(uint64(seed) ^ samplerMix(uint64(round)+0x51a4ed55))
	rng := rand.New(rand.NewSource(int64(mixed)))
	rng.Shuffle(len(order), func(i, j int) {
		order[i], order[j] = order[j], order[i]
	})
	return order
}
