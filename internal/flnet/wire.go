// Package flnet is the network layer of the DINAR middleware: a TCP
// client/server protocol that runs the same federated rounds as the
// in-process fl.System, but across real sockets. Examples and the
// cmd/dinar-server / cmd/dinar-client tools deploy it; experiments default to
// the in-process system for determinism and speed.
//
// The wire protocol is length-prefixed gob: every frame is a 4-byte
// big-endian payload length followed by a gob-encoded Message. The round
// flow is:
//
//	client -> server  Hello{ClientID}
//	server -> client  Global{Round, State}          (per round)
//	client -> server  Update{Round, State, NumSamples}
//	server -> client  Done{State: final global}
package flnet

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
)

// Kind discriminates protocol messages.
type Kind int

// Message kinds.
const (
	KindHello Kind = iota + 1
	KindGlobal
	KindUpdate
	KindDone
	KindError
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindHello:
		return "hello"
	case KindGlobal:
		return "global"
	case KindUpdate:
		return "update"
	case KindDone:
		return "done"
	case KindError:
		return "error"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Message is the single frame type of the protocol; fields are used
// depending on Kind.
type Message struct {
	Kind       Kind
	ClientID   int
	Round      int
	State      []float64
	NumSamples int
	// Err carries a human-readable error for KindError frames.
	Err string
}

// maxFrameBytes bounds a frame to protect against corrupt length prefixes
// (128 MiB is far above any scaled model's state vector).
const maxFrameBytes = 128 << 20

// WriteMessage encodes msg as a length-prefixed gob frame.
func WriteMessage(w io.Writer, msg *Message) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(msg); err != nil {
		return fmt.Errorf("flnet: encode %v: %w", msg.Kind, err)
	}
	var header [4]byte
	binary.BigEndian.PutUint32(header[:], uint32(buf.Len()))
	if _, err := w.Write(header[:]); err != nil {
		return fmt.Errorf("flnet: write header: %w", err)
	}
	if _, err := w.Write(buf.Bytes()); err != nil {
		return fmt.Errorf("flnet: write payload: %w", err)
	}
	return nil
}

// ReadMessage decodes one length-prefixed gob frame.
func ReadMessage(r io.Reader) (*Message, error) {
	var header [4]byte
	if _, err := io.ReadFull(r, header[:]); err != nil {
		return nil, fmt.Errorf("flnet: read header: %w", err)
	}
	n := binary.BigEndian.Uint32(header[:])
	if n == 0 || n > maxFrameBytes {
		return nil, fmt.Errorf("flnet: frame length %d out of range", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("flnet: read payload: %w", err)
	}
	var msg Message
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&msg); err != nil {
		return nil, fmt.Errorf("flnet: decode: %w", err)
	}
	return &msg, nil
}
