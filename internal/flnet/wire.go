// Package flnet is the network layer of the DINAR middleware: a TCP
// client/server protocol that runs the same federated rounds as the
// in-process fl.System, but across real sockets. Examples and the
// cmd/dinar-server / cmd/dinar-client tools deploy it; experiments default to
// the in-process system for determinism and speed.
//
// The wire protocol is length-prefixed gob: every frame is a 4-byte
// big-endian payload length followed by a gob-encoded Message. The round
// flow is:
//
//	client -> server  Hello{ClientID, Version, LastRound}
//	server -> client  Global{Round, State}          (per round)
//	client -> server  Update{Round, State, NumSamples}
//	server -> client  Done{State: final global}
//	server -> client  Drain{RetryAfterMs}           (graceful shutdown / load shed)
//
// A client may disconnect and re-register at any time; the Hello frame's
// LastRound (the last round the client completed, -1 for a fresh client)
// lets the server resync a rejoining client by resending the current
// round's global state. Version is validated at Hello time so mismatched
// deployments fail fast with a KindError frame instead of mid-round.
package flnet

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"sync"

	"repro/internal/fl"
	"repro/internal/telemetry"
)

// Wire telemetry: frames and bytes in each direction, counted at the
// codec so every caller (server, client, tests) is covered.
var (
	telTxFrames = telemetry.NewCounter("dinar_wire_tx_frames_total", "protocol frames written")
	telRxFrames = telemetry.NewCounter("dinar_wire_rx_frames_total", "protocol frames read")
	telTxBytes  = telemetry.NewCounter("dinar_wire_tx_bytes_total", "bytes written to the wire (headers included)")
	telRxBytes  = telemetry.NewCounter("dinar_wire_rx_bytes_total", "bytes read from the wire (headers included)")
)

// ProtocolVersion is the wire protocol version carried in every Hello
// frame. Version 2 added the Version and LastRound fields (reconnect
// support). Version 3 adds the Hello capability bitmask and the binary
// frame negotiation (see wirev3.go); servers accept Hellos from
// [MinProtocolVersion, ProtocolVersion], and a v2 Hello — or a v3 Hello
// advertising no capabilities — simply gets an unchanged gob session, so
// old peers interoperate without redeploying.
const (
	ProtocolVersion    = 3
	MinProtocolVersion = 2
)

// Capability bits a v3 client advertises in Hello.WireCaps and the server
// answers (intersected with its own configuration) in the KindWire ack.
// Every codec requires CapBinary; a session without it is pure gob.
const (
	// CapBinary switches the session to length-prefixed little-endian
	// binary frames after the gob Hello/ack handshake.
	CapBinary uint32 = 1 << iota
	// CapFlate enables per-frame flate compression of state payloads
	// (skipped frame-by-frame when it does not shrink the payload).
	CapFlate
	// CapQuantInt8 / CapQuantInt16 enable seeded stochastic quantization of
	// client uploads (the levels' width differs; at most one is negotiated).
	CapQuantInt8
	CapQuantInt16
	// CapTopK additionally sparsifies quantized uploads to the negotiated
	// top-k fraction of coordinates.
	CapTopK
	// CapDelta enables delta-encoded global broadcasts against the
	// client's last completed round.
	CapDelta
)

// ClientCaps is everything a current client can speak; the server's ack
// narrows it to the deployment's configuration.
const ClientCaps = CapBinary | CapFlate | CapQuantInt8 | CapQuantInt16 | CapTopK | CapDelta

// Kind discriminates protocol messages.
type Kind int

// Message kinds.
const (
	KindHello Kind = iota + 1
	KindGlobal
	KindUpdate
	KindDone
	KindError
	// KindDrain tells a client the server is draining (graceful shutdown)
	// or shedding load: back off for RetryAfterMs milliseconds and redial,
	// without burning the reconnect retry budget. Sent to live clients
	// when Shutdown begins, to registrants arriving during a drain, and to
	// connections shed by accept-path admission control.
	KindDrain
	// KindWire is the server's gob-encoded answer to a capability-bearing
	// Hello: WireCaps carries the negotiated intersection, QuantSeed and
	// TopK the quantization parameters. It is the last gob frame of a
	// binary session; both ends switch codecs immediately after it.
	KindWire
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindHello:
		return "hello"
	case KindGlobal:
		return "global"
	case KindUpdate:
		return "update"
	case KindDone:
		return "done"
	case KindError:
		return "error"
	case KindDrain:
		return "drain"
	case KindWire:
		return "wire"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Message is the single frame type of the protocol; fields are used
// depending on Kind.
type Message struct {
	Kind       Kind
	ClientID   int
	Round      int
	State      []float64
	NumSamples int
	// Version is the sender's ProtocolVersion; only meaningful on Hello.
	Version int
	// LastRound is the last round the client completed, -1 for a fresh
	// client; only meaningful on Hello. The server uses it to resync a
	// rejoining client.
	LastRound int
	// Err carries a human-readable error for KindError frames.
	Err string
	// RetryAfterMs is the suggested client back-off in milliseconds; only
	// meaningful on KindDrain (0 means the client-side default). Gob omits
	// zero fields, so pre-drain peers interoperate unchanged.
	RetryAfterMs int
	// Cohort lists the round's sampled client ids; only sent on KindGlobal,
	// and only when the defense is cohort-aware (secure aggregation needs
	// each client to know its round's mask peers — see fl.CohortAware). Gob
	// omits empty slices, so cohort-free deployments interoperate
	// unchanged.
	Cohort []int
	// Job names the federation job this client wants to join; only
	// meaningful on Hello, and only when dialing a multi-job service-mode
	// server, which routes the connection to the named job before the
	// job's own registration logic ever sees it. Hello frames are always
	// gob (negotiation happens after them) and gob omits empty strings,
	// so single-job deployments interoperate unchanged.
	Job string
	// WireCaps is the capability bitmask: on Hello the sender's supported
	// codecs, on KindWire the server's negotiated subset. Gob omits zero
	// fields, so capability-free peers interoperate unchanged.
	WireCaps uint32
	// QuantSeed and TopK ride the KindWire ack: the stochastic-rounding
	// seed every quantized payload of the session must use, and the top-k
	// sparsification fraction (0 = dense).
	QuantSeed int64
	TopK      float64
	// Canon, set by the server on KindGlobal sends when quantized delta
	// broadcasts are configured, is the round's canonical quantized delta
	// against the previous round's broadcast. A binary codec ships it to
	// peers anchored at round-1 instead of State; the gob path and full
	// resends ignore it, and it is never populated on received messages
	// (ReadMessage reconstructs State instead).
	Canon *fl.DeltaPayload
}

// maxFrameBytes bounds a frame to protect against corrupt length prefixes
// (128 MiB is far above any scaled model's state vector).
const maxFrameBytes = 128 << 20

// maxPooledBytes caps the capacity a buffer may retire to a pool with: one
// outlier frame (a giant model, a hostile-but-valid length) must not pin a
// near-maxFrameBytes backing array in the pool for the process lifetime.
// Buffers above the cap are dropped and fall back to the allocator.
const maxPooledBytes = 16 << 20

// Frame buffers are pooled: state vectors make frames multi-megabyte, and
// without pooling every round re-allocates them on both ends of every
// connection. Pooled buffers keep their high-water capacity up to
// maxPooledBytes, so steady-state rounds reuse the same backing arrays.
var (
	writeBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}
	readBufPool  = sync.Pool{New: func() any { return new([]byte) }}
)

// putWriteBuf recycles a frame-encode buffer, dropping oversized ones.
func putWriteBuf(buf *bytes.Buffer) {
	if buf.Cap() > maxPooledBytes {
		return
	}
	writeBufPool.Put(buf)
}

// putReadBuf recycles a frame-payload buffer, dropping oversized ones.
func putReadBuf(bp *[]byte) {
	if cap(*bp) > maxPooledBytes {
		return
	}
	readBufPool.Put(bp)
}

// readPayload reads an n-byte frame payload into a pooled buffer with the
// checkpoint envelope's incremental-read discipline: capacity grows as
// bytes actually arrive (doubling from a small start), so a corrupt or
// hostile length prefix on a short stream costs a short read, not an
// n-byte allocation. Callers must return the pool handle via putReadBuf.
func readPayload(r io.Reader, n int) ([]byte, *[]byte, error) {
	bp := readBufPool.Get().(*[]byte)
	if cap(*bp) < n {
		start := cap(*bp)
		if start < 64<<10 {
			start = 64 << 10
		}
		if start > n {
			start = n
		}
		buf := (*bp)[:0:cap(*bp)]
		if cap(buf) < start {
			buf = make([]byte, 0, start)
		}
		for len(buf) < n {
			chunk := cap(buf) - len(buf)
			if chunk == 0 {
				grow := cap(buf) * 2
				if grow > n {
					grow = n
				}
				next := make([]byte, len(buf), grow)
				copy(next, buf)
				buf = next
				chunk = cap(buf) - len(buf)
			}
			if chunk > n-len(buf) {
				chunk = n - len(buf)
			}
			m, err := io.ReadFull(r, buf[len(buf):len(buf)+chunk])
			buf = buf[:len(buf)+m]
			if err != nil {
				*bp = buf
				putReadBuf(bp)
				return nil, nil, err
			}
		}
		*bp = buf
		return buf, bp, nil
	}
	payload := (*bp)[:n]
	if _, err := io.ReadFull(r, payload); err != nil {
		putReadBuf(bp)
		return nil, nil, err
	}
	return payload, bp, nil
}

// WriteMessage encodes msg as a length-prefixed gob frame. The header and
// payload go out in a single Write so a frame is never split across
// syscalls (and fault injectors that act on whole writes see whole
// frames).
func WriteMessage(w io.Writer, msg *Message) error {
	if msg.Canon != nil {
		// Canon is a binary-codec send hint, never wire data on a gob
		// session; strip it so gob peers see byte-identical frames.
		stripped := *msg
		stripped.Canon = nil
		msg = &stripped
	}
	buf := writeBufPool.Get().(*bytes.Buffer)
	defer putWriteBuf(buf)
	buf.Reset()
	var header [4]byte
	buf.Write(header[:]) // placeholder, patched below
	if err := gob.NewEncoder(buf).Encode(msg); err != nil {
		return fmt.Errorf("flnet: encode %v: %w", msg.Kind, err)
	}
	frame := buf.Bytes()
	binary.BigEndian.PutUint32(frame[:4], uint32(len(frame)-4))
	if _, err := w.Write(frame); err != nil {
		return fmt.Errorf("flnet: write payload: %w", err)
	}
	telTxFrames.Inc()
	telTxBytes.Add(int64(len(frame)))
	return nil
}

// ReadMessage decodes one length-prefixed gob frame. The payload buffer is
// pooled; gob decoding copies all data out of it, so the returned Message
// never aliases pool memory.
func ReadMessage(r io.Reader) (*Message, error) {
	var msg Message
	if err := ReadMessageInto(r, &msg); err != nil {
		return nil, err
	}
	return &msg, nil
}

// ReadMessageInto decodes one frame into msg, reusing msg's existing State
// backing array when its capacity suffices (gob decodes a slice into the
// destination's backing array if it fits, allocating otherwise). Pair it
// with GetState/PutState so a server folding thousands of updates per round
// recycles a handful of state buffers instead of allocating one per update.
// msg is reset first, so leftover fields from a previous frame never leak
// through.
func ReadMessageInto(r io.Reader, msg *Message) error {
	var header [4]byte
	if _, err := io.ReadFull(r, header[:]); err != nil {
		return fmt.Errorf("flnet: read header: %w", err)
	}
	n := binary.BigEndian.Uint32(header[:])
	if n == 0 || n > maxFrameBytes {
		return fmt.Errorf("flnet: frame length %d out of range", n)
	}
	payload, bp, err := readPayload(r, int(n))
	if err != nil {
		return fmt.Errorf("flnet: read payload: %w", err)
	}
	defer putReadBuf(bp)
	state := msg.State
	*msg = Message{State: state[:0]}
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(msg); err != nil {
		return fmt.Errorf("flnet: decode: %w", err)
	}
	telRxFrames.Inc()
	telRxBytes.Add(int64(n) + 4)
	return nil
}

// statePool recycles state-vector buffers between rounds. Updates released
// after aggregation return here; the next round's reads decode into them.
var statePool = sync.Pool{New: func() any { return new([]float64) }}

// GetState returns a pooled state buffer (length 0, whatever capacity it
// retired with).
func GetState() []float64 {
	sp := statePool.Get().(*[]float64)
	s := *sp
	*sp = nil
	statePool.Put(sp)
	return s[:0]
}

// PutState returns a state buffer to the pool. Callers must not retain any
// alias past the call. Oversized buffers (beyond maxPooledBytes) are
// dropped, mirroring the frame-buffer pools.
func PutState(s []float64) {
	if cap(s) == 0 || cap(s)*8 > maxPooledBytes {
		return
	}
	sp := statePool.Get().(*[]float64)
	*sp = s
	statePool.Put(sp)
}
