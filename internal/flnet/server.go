package flnet

import (
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/fl"
	"repro/internal/metrics"
	"repro/internal/telemetry"
)

// ServerConfig configures the middleware server.
type ServerConfig struct {
	// Addr is the TCP listen address, e.g. "127.0.0.1:7070". Use ":0" for an
	// ephemeral port (tests).
	Addr string
	// NumClients is the cohort size; the server waits up to IOTimeout for
	// this many registrations before round 1 (MinClients suffice after the
	// deadline).
	NumClients int
	// MinClients is the round quorum: a round aggregates as soon as every
	// live client has reported or, once RoundDeadline has passed, with any
	// set of at least MinClients updates (FedAvg sample-weights partial
	// cohorts). 0 means NumClients, i.e. no partial rounds.
	MinClients int
	// Rounds is the number of FL rounds to run.
	Rounds int
	// RoundDeadline bounds one round's update collection; after it expires
	// the round proceeds with a quorum and evicts stragglers. 0 means no
	// deadline: the round ends only when every live client has reported or
	// failed.
	RoundDeadline time.Duration
	// Defense is the server-side defense instance (its Aggregate hook runs
	// here). It must already be Bound to the model layout.
	Defense fl.Defense
	// InitialState is the initial global model state vector.
	InitialState []float64
	// IOTimeout bounds individual reads/writes per connection (default 2
	// minutes).
	IOTimeout time.Duration
	// RegisterTimeout bounds the whole registration phase: once it
	// expires the federation starts with whatever quorum has registered
	// (or fails below MinClients). 0 means IOTimeout.
	RegisterTimeout time.Duration
	// MaxRejects caps rejected registration attempts (malformed hellos,
	// protocol version mismatches, duplicate ids) before the server gives
	// up, so a misbehaving peer cannot keep the accept loop spinning
	// forever. 0 means 2*NumClients+8.
	MaxRejects int
	// CheckpointPath, if non-empty, persists a global-model snapshot after
	// every aggregated round; if the file already exists at startup the
	// federation resumes from the snapshot's round instead of round 0.
	CheckpointPath string
	// Dataset tags checkpoints; resuming from a snapshot recorded for a
	// different dataset is an error. Optional.
	Dataset string
	// NoScreen disables the Byzantine update screen. By default every
	// round's updates are validated (shape, NaN/Inf) before aggregation,
	// rejected senders are evicted, and repeat offenders are quarantined.
	NoScreen bool
	// Screen configures the update screen when screening is enabled; the
	// zero value selects the fl.ScreenConfig defaults.
	Screen fl.ScreenConfig
	// Listener, if non-nil, is used instead of listening on Addr — tests
	// inject faultnet wrappers here. It should support SetDeadline.
	Listener net.Listener
	// Meter records aggregation costs (optional).
	Meter *metrics.CostMeter
	// Logf receives progress lines (optional). Every call site is routed
	// through one serialized event log, so Logf is never invoked
	// concurrently and always receives one whole line per call — the
	// rejoin acceptor, per-client round goroutines, and the round loop
	// can no longer interleave output mid-line.
	Logf func(format string, args ...any)
	// EventCapacity bounds the in-memory ring of recent structured
	// events (Events method). 0 means 256.
	EventCapacity int
}

// RoundTiming is the per-phase wall-time breakdown of one round.
type RoundTiming struct {
	// Broadcast is the slowest single global-state send of the round —
	// the broadcast phase's critical path (sends run per client,
	// concurrently).
	Broadcast time.Duration
	// Wait spans the round's start to its quorum decision: client
	// training plus update collection.
	Wait time.Duration
	// Screen is the server-side update-screen duration (zero when
	// screening is disabled).
	Screen time.Duration
	// Aggregate is the defense's aggregation-rule duration.
	Aggregate time.Duration
}

// RoundReport records one round's cohort outcome.
type RoundReport struct {
	// Round is the 0-based round index.
	Round int
	// Participants lists the client ids whose updates were aggregated.
	Participants []int
	// Dropped lists the client ids evicted during the round (stragglers
	// past the deadline, dead connections, protocol violations, poisoners
	// rejected by the screen). A dropped client may rejoin in a later
	// round.
	Dropped []int
	// Rejected lists the client ids whose updates the screen rejected this
	// round (NaN/Inf payloads, shape mismatches, over-norm deltas).
	// Rejected clients are evicted; they may rejoin, but stay quarantined.
	Rejected []int
	// Quarantined lists the client ids whose updates were excluded because
	// the client is serving a quarantine penalty from an earlier offense.
	Quarantined []int
	// Clipped lists the client ids whose update deltas were norm-clipped
	// before aggregation.
	Clipped []int
	// Err joins the errors of every failed client in the round; it may be
	// non-nil even when the round aggregated successfully with a quorum.
	Err error
	// Timing is the round's per-phase wall-time breakdown.
	Timing RoundTiming
}

// Server is the TCP federated-learning middleware server.
type Server struct {
	cfg ServerConfig
	ln  net.Listener

	core       *fl.Server
	startRound int

	// events serializes every log line and retains recent structured
	// events; all former cfg.Logf call sites route through it.
	events *telemetry.EventLog

	mu      sync.Mutex
	live    map[int]*session
	rejects int
	reports []RoundReport
	// curRound is the round currently being orchestrated; ckptRound the
	// last persisted checkpoint (-1 before the first); status the
	// /healthz lifecycle phase.
	curRound  int
	ckptRound int
	status    string

	// joinCh delivers sessions registered by the background acceptor to
	// the round loop; runDone unblocks the acceptor when Run returns.
	joinCh  chan *session
	runDone chan struct{}
}

// NewServer validates the configuration, loads a checkpoint when one is
// configured and present, and starts listening.
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.NumClients <= 0 || cfg.Rounds <= 0 {
		return nil, fmt.Errorf("flnet: need positive NumClients/Rounds, got %d/%d", cfg.NumClients, cfg.Rounds)
	}
	if cfg.MinClients == 0 {
		cfg.MinClients = cfg.NumClients
	}
	if cfg.MinClients < 1 || cfg.MinClients > cfg.NumClients {
		return nil, fmt.Errorf("flnet: MinClients %d outside [1,%d]", cfg.MinClients, cfg.NumClients)
	}
	if cfg.Defense == nil {
		return nil, fmt.Errorf("flnet: nil defense")
	}
	if cfg.IOTimeout == 0 {
		cfg.IOTimeout = 2 * time.Minute
	}
	if cfg.RegisterTimeout == 0 {
		cfg.RegisterTimeout = cfg.IOTimeout
	}
	if cfg.MaxRejects == 0 {
		cfg.MaxRejects = 2*cfg.NumClients + 8
	}
	if cfg.EventCapacity == 0 {
		cfg.EventCapacity = 256
	}
	// Every log line funnels through one serialized event log; the
	// user-supplied sink (if any) is invoked under its mutex and always
	// receives complete lines.
	var sink func(line string)
	if logf := cfg.Logf; logf != nil {
		sink = func(line string) { logf("%s", line) }
	}
	events := telemetry.NewEventLog(cfg.EventCapacity, sink)

	state := cfg.InitialState
	startRound := 0
	if cfg.CheckpointPath != "" {
		snap, err := checkpoint.LoadFile(cfg.CheckpointPath)
		switch {
		case errors.Is(err, os.ErrNotExist):
			// Fresh federation; the first round writes the file.
		case err != nil:
			return nil, fmt.Errorf("flnet: resume: %w", err)
		default:
			if cfg.Dataset != "" && snap.Dataset != "" && snap.Dataset != cfg.Dataset {
				return nil, fmt.Errorf("flnet: checkpoint is for dataset %q, server runs %q", snap.Dataset, cfg.Dataset)
			}
			if len(snap.State) != len(cfg.InitialState) {
				return nil, fmt.Errorf("flnet: checkpoint state has %d values, model needs %d", len(snap.State), len(cfg.InitialState))
			}
			state = snap.State
			startRound = snap.Round
			events.Eventf(startRound, -1, "flnet: resuming from checkpoint %s at round %d", cfg.CheckpointPath, startRound)
		}
	}

	core, err := fl.NewServer(state, cfg.Defense, cfg.Meter)
	if err != nil {
		return nil, err
	}
	core.SetRound(startRound)
	if !cfg.NoScreen {
		core.SetScreen(fl.NewScreen(cfg.Screen))
	}

	ln := cfg.Listener
	if ln == nil {
		ln, err = net.Listen("tcp", cfg.Addr)
		if err != nil {
			return nil, fmt.Errorf("flnet: listen %s: %w", cfg.Addr, err)
		}
	}
	return &Server{
		cfg:        cfg,
		ln:         ln,
		core:       core,
		startRound: startRound,
		events:     events,
		live:       make(map[int]*session, cfg.NumClients),
		curRound:   startRound,
		ckptRound:  -1,
		status:     "waiting",
		joinCh:     make(chan *session, cfg.NumClients),
		runDone:    make(chan struct{}),
	}, nil
}

// logf records one structured, serialized log event; round/client are -1
// when not applicable.
func (s *Server) logf(round, client int, format string, args ...any) {
	s.events.Eventf(round, client, format, args...)
}

// Events returns the most recent structured log events, oldest first.
func (s *Server) Events() []telemetry.Event { return s.events.Events() }

// Health returns the server's /healthz snapshot: lifecycle status, the
// round being orchestrated, live vs configured client counts, and the
// last checkpointed round.
func (s *Server) Health() telemetry.Health {
	s.mu.Lock()
	defer s.mu.Unlock()
	return telemetry.Health{
		Status:            s.status,
		Round:             s.curRound,
		Rounds:            s.cfg.Rounds,
		RegisteredClients: len(s.live),
		NumClients:        s.cfg.NumClients,
		MinClients:        s.cfg.MinClients,
		StartRound:        s.startRound,
		CheckpointRound:   s.ckptRound,
	}
}

// Addr returns the bound listen address.
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Close stops the listener.
func (s *Server) Close() error { return s.ln.Close() }

// StartRound returns the round the federation (re)starts from: 0 for a
// fresh run, the checkpointed round after a resume.
func (s *Server) StartRound() int { return s.startRound }

// Reports returns a copy of the per-round cohort reports recorded so far.
func (s *Server) Reports() []RoundReport {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]RoundReport(nil), s.reports...)
}

// session is one connected client.
type session struct {
	conn     net.Conn
	clientID int
	// lastRound is the last round the client reported completing in its
	// Hello (-1 for a fresh client).
	lastRound int
}

// Run accepts registrations, orchestrates all rounds (tolerating client
// failure per MinClients/RoundDeadline), sends the final model, and
// returns the final global state.
func (s *Server) Run(ctx context.Context) ([]float64, error) {
	defer s.ln.Close()
	defer close(s.runDone)

	// Cancel blocking Accept/Read calls when ctx ends.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-ctx.Done():
			s.ln.Close()
		case <-stop:
		}
	}()

	if err := s.acceptCohort(ctx); err != nil {
		return nil, err
	}
	defer func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		for _, sess := range s.live {
			sess.conn.Close()
		}
	}()

	// Keep accepting for the rest of the run so evicted clients can
	// rejoin and resync.
	go s.acceptRejoins(ctx)

	for round := s.startRound; round < s.cfg.Rounds; round++ {
		s.mu.Lock()
		s.curRound = round
		s.status = "running"
		s.mu.Unlock()
		telRoundsStarted.Inc()
		updates, report, err := s.runRound(ctx, round)
		if err != nil {
			s.mu.Lock()
			s.reports = append(s.reports, report)
			s.mu.Unlock()
			return nil, fmt.Errorf("flnet: round %d: %w", round, err)
		}
		// Arrival order is nondeterministic; aggregate in client order so a
		// federation's result is reproducible run-to-run (and across a
		// checkpoint resume).
		sort.Slice(updates, func(i, j int) bool { return updates[i].ClientID < updates[j].ClientID })
		aggErr := s.core.Aggregate(updates)
		agg := s.core.LastAggTiming()
		report.Timing.Screen = agg.Screen
		report.Timing.Aggregate = agg.Aggregate
		s.applyScreenOutcome(round, &report)
		s.mu.Lock()
		s.reports = append(s.reports, report)
		s.mu.Unlock()
		if aggErr != nil {
			return nil, aggErr
		}
		telRoundsCompleted.Inc()
		if s.cfg.CheckpointPath != "" {
			snap := &checkpoint.Snapshot{
				Dataset: s.cfg.Dataset,
				Round:   s.core.Round(),
				State:   s.core.GlobalState(),
			}
			if err := checkpoint.SaveFile(s.cfg.CheckpointPath, snap); err != nil {
				return nil, fmt.Errorf("flnet: round %d: %w", round, err)
			}
			s.mu.Lock()
			s.ckptRound = s.core.Round()
			s.mu.Unlock()
		}
		s.logf(round, -1, "flnet: round %d aggregated %d updates (dropped %d) [broadcast %s wait %s screen %s aggregate %s]",
			round, len(report.Participants), len(report.Dropped),
			report.Timing.Broadcast.Round(time.Microsecond), report.Timing.Wait.Round(time.Microsecond),
			report.Timing.Screen.Round(time.Microsecond), report.Timing.Aggregate.Round(time.Microsecond))
	}
	s.mu.Lock()
	s.curRound = s.cfg.Rounds
	s.status = "done"
	s.mu.Unlock()

	final := s.core.GlobalState()
	s.mu.Lock()
	finalSessions := make([]*session, 0, len(s.live))
	for _, sess := range s.live {
		finalSessions = append(finalSessions, sess)
	}
	s.mu.Unlock()
	var doneErrs []error
	for _, sess := range finalSessions {
		msg := &Message{Kind: KindDone, Round: s.cfg.Rounds, State: final}
		if err := s.send(sess, msg); err != nil {
			// The federation already converged; a client that cannot
			// receive Done lost only its own final install.
			doneErrs = append(doneErrs, fmt.Errorf("client %d: %w", sess.clientID, err))
		}
	}
	if len(doneErrs) > 0 {
		s.logf(s.cfg.Rounds, -1, "flnet: done broadcast: %v", errors.Join(doneErrs...))
	}
	return final, nil
}

// acceptCohort waits for NumClients hello frames, bounded by an overall
// RegisterTimeout deadline: once the deadline passes, a quorum of
// MinClients suffices to start the federation.
func (s *Server) acceptCohort(ctx context.Context) error {
	type deadliner interface{ SetDeadline(time.Time) error }
	if d, ok := s.ln.(deadliner); ok {
		d.SetDeadline(time.Now().Add(s.cfg.RegisterTimeout)) //nolint:errcheck // best effort
		defer d.SetDeadline(time.Time{})                     //nolint:errcheck
	}
	for {
		s.mu.Lock()
		registered := len(s.live)
		s.mu.Unlock()
		if registered >= s.cfg.NumClients {
			return nil
		}
		conn, err := s.ln.Accept()
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				if registered >= s.cfg.MinClients {
					s.logf(-1, -1, "flnet: registration deadline passed; starting with %d/%d clients", registered, s.cfg.NumClients)
					return nil
				}
				return fmt.Errorf("flnet: only %d/%d clients registered within %s (quorum %d)",
					registered, s.cfg.NumClients, s.cfg.RegisterTimeout, s.cfg.MinClients)
			}
			return fmt.Errorf("flnet: accept: %w", err)
		}
		if _, err := s.register(conn); err != nil {
			if errors.Is(err, errTooManyRejects) {
				return err
			}
		}
	}
}

// errTooManyRejects aborts registration once MaxRejects attempts failed.
var errTooManyRejects = errors.New("flnet: too many rejected registration attempts")

// register reads and validates one Hello frame. On success the session is
// added to the live set; on failure the registrant gets a KindError frame,
// the connection is closed, and the reject counter advances.
func (s *Server) register(conn net.Conn) (*session, error) {
	reject := func(reason string) error {
		s.sendError(conn, reason)
		conn.Close()
		s.mu.Lock()
		s.rejects++
		tooMany := s.rejects > s.cfg.MaxRejects
		s.mu.Unlock()
		telRegistrationsRejected.Inc()
		s.logf(-1, -1, "flnet: rejected registrant from %v: %s", conn.RemoteAddr(), reason)
		if tooMany {
			return fmt.Errorf("%w (%d)", errTooManyRejects, s.cfg.MaxRejects)
		}
		return fmt.Errorf("flnet: rejected registrant: %s", reason)
	}

	conn.SetReadDeadline(time.Now().Add(s.cfg.IOTimeout))
	msg, err := ReadMessage(conn)
	if err != nil || msg.Kind != KindHello {
		return nil, reject("malformed registration: want a hello frame")
	}
	if msg.Version != ProtocolVersion {
		return nil, reject(fmt.Sprintf("protocol version %d not supported, server speaks %d", msg.Version, ProtocolVersion))
	}
	if msg.ClientID < 0 || msg.ClientID >= s.cfg.NumClients {
		return nil, reject(fmt.Sprintf("client id %d outside [0,%d)", msg.ClientID, s.cfg.NumClients))
	}
	s.mu.Lock()
	if _, dup := s.live[msg.ClientID]; dup {
		s.mu.Unlock()
		return nil, reject(fmt.Sprintf("client id %d already registered", msg.ClientID))
	}
	sess := &session{conn: conn, clientID: msg.ClientID, lastRound: msg.LastRound}
	s.live[msg.ClientID] = sess
	telLiveClients.Set(int64(len(s.live)))
	s.mu.Unlock()
	return sess, nil
}

// acceptRejoins keeps registering clients after the initial cohort formed,
// so an evicted client can reconnect and be resynced into the current
// round. It stops when the listener closes or the reject cap is hit.
func (s *Server) acceptRejoins(ctx context.Context) {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed (run finished or ctx canceled)
		}
		sess, err := s.register(conn)
		if err != nil {
			if errors.Is(err, errTooManyRejects) {
				s.logf(-1, -1, "flnet: rejoin acceptor stopping: %v", err)
				return
			}
			continue
		}
		telRejoins.Inc()
		s.logf(-1, sess.clientID, "flnet: client %d rejoined (last completed round %d)", sess.clientID, sess.lastRound)
		select {
		case s.joinCh <- sess:
		case <-s.runDone:
			sess.conn.Close()
			return
		case <-ctx.Done():
			sess.conn.Close()
			return
		}
	}
}

// result is one finished exchange.
type result struct {
	sess *session
	u    *fl.Update
	err  error
	// sendDur is how long the global-state send took; the round's
	// broadcast critical path is the max over its cohort.
	sendDur time.Duration
}

// runRound broadcasts the global state and collects updates until every
// live client reported, or — after RoundDeadline — a quorum of MinClients
// did. Failed or straggling clients are evicted (they may rejoin later);
// every client error of the round is joined into the report.
func (s *Server) runRound(ctx context.Context, round int) ([]*fl.Update, RoundReport, error) {
	global := s.core.GlobalState()
	report := RoundReport{Round: round}
	roundStart := time.Now()

	results := make(chan result, s.cfg.NumClients)
	included := make(map[*session]bool)
	pending := 0

	launch := func(sess *session) {
		included[sess] = true
		pending++
		go func() {
			u, sendDur, err := s.exchange(sess, round, global)
			results <- result{sess: sess, u: u, err: err, sendDur: sendDur}
		}()
	}

	s.mu.Lock()
	cohort := make([]*session, 0, len(s.live))
	for _, sess := range s.live {
		cohort = append(cohort, sess)
	}
	s.mu.Unlock()
	for _, sess := range cohort {
		launch(sess)
	}

	var deadlineCh <-chan time.Time
	if s.cfg.RoundDeadline > 0 {
		t := time.NewTimer(s.cfg.RoundDeadline)
		defer t.Stop()
		deadlineCh = t.C
	}

	var (
		updates     []*fl.Update
		errs        []error
		deadlineHit bool
	)
	evict := func(sess *session, err error) {
		s.mu.Lock()
		if s.live[sess.clientID] == sess {
			delete(s.live, sess.clientID)
			telLiveClients.Set(int64(len(s.live)))
		}
		s.mu.Unlock()
		sess.conn.Close()
		telClientsEvicted.Inc()
		report.Dropped = append(report.Dropped, sess.clientID)
		if err != nil {
			errs = append(errs, fmt.Errorf("client %d: %w", sess.clientID, err))
		}
	}
	// reap consumes the n results still owed to the channel so abandoned
	// exchange goroutines can always complete their send and exit.
	reap := func(n int) {
		if n > 0 {
			go func() {
				for i := 0; i < n; i++ {
					<-results
				}
			}()
		}
	}
	// finish drains the exchanges still in flight after a quorum decision:
	// their sessions are evicted (closing the conn unblocks the exchange
	// goroutine) and a reaper consumes their results so nothing leaks.
	finish := func() ([]*fl.Update, RoundReport, error) {
		if pending > 0 {
			s.mu.Lock()
			stragglers := make([]*session, 0, pending)
			for sess := range included {
				if s.live[sess.clientID] == sess {
					stragglers = append(stragglers, sess)
				}
			}
			s.mu.Unlock()
			for _, sess := range stragglers {
				done := false
				for _, u := range updates {
					if u.ClientID == sess.clientID {
						done = true
						break
					}
				}
				if !done {
					telStragglersEvicted.Inc()
					evict(sess, fmt.Errorf("no update within round deadline %s", s.cfg.RoundDeadline))
				}
			}
			reap(pending)
		}
		report.Timing.Wait = time.Since(roundStart)
		telRoundBroadcastSeconds.Observe(report.Timing.Broadcast.Seconds())
		telRoundWaitSeconds.Observe(report.Timing.Wait.Seconds())
		report.Err = errors.Join(errs...)
		return updates, report, nil
	}

	for {
		if pending == 0 {
			if len(updates) >= s.cfg.MinClients {
				return finish()
			}
			// Below quorum with nothing in flight: without a deadline the
			// round can never recover; with one, a rejoining client may
			// still push the round to quorum before the deadline.
			if deadlineCh == nil || deadlineHit {
				report.Err = errors.Join(errs...)
				return nil, report, fmt.Errorf("quorum not met: %d/%d updates: %w", len(updates), s.cfg.MinClients, report.Err)
			}
		}
		select {
		case <-ctx.Done():
			reap(pending)
			report.Err = errors.Join(errs...)
			return nil, report, ctx.Err()
		case res := <-results:
			pending--
			if res.sendDur > report.Timing.Broadcast {
				report.Timing.Broadcast = res.sendDur
			}
			if res.err != nil {
				evict(res.sess, res.err)
			} else {
				updates = append(updates, res.u)
				report.Participants = append(report.Participants, res.sess.clientID)
			}
			if deadlineHit && len(updates) >= s.cfg.MinClients {
				return finish()
			}
			if pending == 0 && len(updates) >= s.cfg.MinClients {
				return finish()
			}
		case sess := <-s.joinCh:
			if included[sess] {
				break // already part of this round's cohort
			}
			launch(sess)
		case <-deadlineCh:
			deadlineHit = true
			deadlineCh = nil
			if len(updates) >= s.cfg.MinClients {
				return finish()
			}
		}
	}
}

// applyScreenOutcome merges the round's screening report (if any) into the
// cohort report and evicts the sessions of rejected clients: a poisoner is
// disconnected like any other protocol violator. It may rejoin via the
// resync path, but while its quarantine penalty lasts its updates keep
// being excluded from aggregation.
func (s *Server) applyScreenOutcome(round int, report *RoundReport) {
	rep, ok := s.core.LastScreenReport()
	if !ok || rep.Round != round {
		return
	}
	report.Rejected = rep.RejectedIDs()
	report.Quarantined = append([]int(nil), rep.Quarantined...)
	report.Clipped = append([]int(nil), rep.Clipped...)
	excluded := make(map[int]bool, len(report.Rejected)+len(report.Quarantined))
	for _, id := range report.Rejected {
		excluded[id] = true
	}
	for _, id := range report.Quarantined {
		excluded[id] = true
	}
	if len(excluded) == 0 {
		return
	}
	participants := report.Participants[:0]
	for _, id := range report.Participants {
		if !excluded[id] {
			participants = append(participants, id)
		}
	}
	report.Participants = participants
	for _, v := range rep.Rejected {
		s.mu.Lock()
		sess := s.live[v.ClientID]
		if sess != nil {
			delete(s.live, v.ClientID)
			telLiveClients.Set(int64(len(s.live)))
		}
		s.mu.Unlock()
		if sess != nil {
			sess.conn.Close()
			telClientsEvicted.Inc()
			report.Dropped = append(report.Dropped, v.ClientID)
			s.logf(round, v.ClientID, "flnet: round %d: evicted client %d: %s", round, v.ClientID, v.Reason)
		}
	}
	if len(rep.NewlyQuarantined) > 0 {
		s.logf(round, -1, "flnet: round %d: quarantined clients %v", round, rep.NewlyQuarantined)
	}
}

// exchange sends the round's global state and reads the client's update.
// sendDur is how long the send took (valid even on a failed exchange, as
// long as the send itself completed).
func (s *Server) exchange(sess *session, round int, global []float64) (u *fl.Update, sendDur time.Duration, err error) {
	sendStart := time.Now()
	if err := s.send(sess, &Message{Kind: KindGlobal, Round: round, State: global}); err != nil {
		return nil, 0, err
	}
	sendDur = time.Since(sendStart)
	sess.conn.SetReadDeadline(time.Now().Add(s.cfg.IOTimeout))
	msg, err := ReadMessage(sess.conn)
	if err != nil {
		return nil, sendDur, err
	}
	switch msg.Kind {
	case KindUpdate:
	case KindError:
		return nil, sendDur, fmt.Errorf("client reported: %s", msg.Err)
	default:
		return nil, sendDur, fmt.Errorf("unexpected %v frame", msg.Kind)
	}
	if msg.Round != round {
		return nil, sendDur, fmt.Errorf("update for round %d during round %d", msg.Round, round)
	}
	// Structural wire validation: a mis-sized vector or negative weight can
	// only come from a broken or malicious peer; fail the exchange (and
	// evict) instead of letting it reach the aggregation path.
	if len(msg.State) != len(global) {
		return nil, sendDur, fmt.Errorf("update state has %d values, want %d", len(msg.State), len(global))
	}
	if msg.NumSamples < 0 {
		return nil, sendDur, fmt.Errorf("update carries negative sample count %d", msg.NumSamples)
	}
	return &fl.Update{
		ClientID:   sess.clientID,
		Round:      msg.Round,
		State:      msg.State,
		NumSamples: msg.NumSamples,
	}, sendDur, nil
}

func (s *Server) send(sess *session, msg *Message) error {
	sess.conn.SetWriteDeadline(time.Now().Add(s.cfg.IOTimeout))
	return WriteMessage(sess.conn, msg)
}

func (s *Server) sendError(conn net.Conn, text string) {
	conn.SetWriteDeadline(time.Now().Add(s.cfg.IOTimeout))
	// Best effort: the registrant is being rejected anyway.
	_ = WriteMessage(conn, &Message{Kind: KindError, Err: text})
}
