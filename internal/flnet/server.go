package flnet

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/fl"
	"repro/internal/metrics"
)

// ServerConfig configures the middleware server.
type ServerConfig struct {
	// Addr is the TCP listen address, e.g. "127.0.0.1:7070". Use ":0" for an
	// ephemeral port (tests).
	Addr string
	// NumClients is the cohort size; the server waits for exactly this many
	// registrations before round 1.
	NumClients int
	// Rounds is the number of FL rounds to run.
	Rounds int
	// Defense is the server-side defense instance (its Aggregate hook runs
	// here). It must already be Bound to the model layout.
	Defense fl.Defense
	// InitialState is the initial global model state vector.
	InitialState []float64
	// IOTimeout bounds individual reads/writes per connection (default 2
	// minutes).
	IOTimeout time.Duration
	// Meter records aggregation costs (optional).
	Meter *metrics.CostMeter
}

// Server is the TCP federated-learning middleware server.
type Server struct {
	cfg ServerConfig
	ln  net.Listener

	core *fl.Server
}

// NewServer validates the configuration and starts listening.
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.NumClients <= 0 || cfg.Rounds <= 0 {
		return nil, fmt.Errorf("flnet: need positive NumClients/Rounds, got %d/%d", cfg.NumClients, cfg.Rounds)
	}
	if cfg.Defense == nil {
		return nil, fmt.Errorf("flnet: nil defense")
	}
	if cfg.IOTimeout == 0 {
		cfg.IOTimeout = 2 * time.Minute
	}
	core, err := fl.NewServer(cfg.InitialState, cfg.Defense, cfg.Meter)
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("flnet: listen %s: %w", cfg.Addr, err)
	}
	return &Server{cfg: cfg, ln: ln, core: core}, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Close stops the listener.
func (s *Server) Close() error { return s.ln.Close() }

// session is one connected client.
type session struct {
	conn     net.Conn
	clientID int
}

// Run accepts NumClients registrations, orchestrates all rounds, sends the
// final model, and returns the final global state.
func (s *Server) Run(ctx context.Context) ([]float64, error) {
	defer s.ln.Close()

	// Cancel blocking Accept/Read calls when ctx ends.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-ctx.Done():
			s.ln.Close()
		case <-stop:
		}
	}()

	sessions, err := s.accept(ctx)
	if err != nil {
		return nil, err
	}
	defer func() {
		for _, sess := range sessions {
			sess.conn.Close()
		}
	}()

	for round := 0; round < s.cfg.Rounds; round++ {
		updates, err := s.runRound(ctx, round, sessions)
		if err != nil {
			return nil, fmt.Errorf("flnet: round %d: %w", round, err)
		}
		if err := s.core.Aggregate(updates); err != nil {
			return nil, err
		}
	}
	final := s.core.GlobalState()
	for _, sess := range sessions {
		msg := &Message{Kind: KindDone, Round: s.cfg.Rounds, State: final}
		if err := s.send(sess, msg); err != nil {
			return nil, fmt.Errorf("flnet: send done to client %d: %w", sess.clientID, err)
		}
	}
	return final, nil
}

// accept waits for NumClients hello frames.
func (s *Server) accept(ctx context.Context) ([]*session, error) {
	sessions := make([]*session, 0, s.cfg.NumClients)
	seen := make(map[int]bool, s.cfg.NumClients)
	for len(sessions) < s.cfg.NumClients {
		conn, err := s.ln.Accept()
		if err != nil {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			return nil, fmt.Errorf("flnet: accept: %w", err)
		}
		conn.SetReadDeadline(time.Now().Add(s.cfg.IOTimeout))
		msg, err := ReadMessage(conn)
		if err != nil || msg.Kind != KindHello {
			conn.Close()
			continue // ignore malformed registrants
		}
		if seen[msg.ClientID] {
			s.sendError(conn, fmt.Sprintf("client id %d already registered", msg.ClientID))
			conn.Close()
			continue
		}
		seen[msg.ClientID] = true
		sessions = append(sessions, &session{conn: conn, clientID: msg.ClientID})
	}
	return sessions, nil
}

// runRound broadcasts the global state and collects one update per client.
func (s *Server) runRound(ctx context.Context, round int, sessions []*session) ([]*fl.Update, error) {
	global := s.core.GlobalState()
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	updates := make([]*fl.Update, len(sessions))
	for i, sess := range sessions {
		wg.Add(1)
		go func(i int, sess *session) {
			defer wg.Done()
			u, err := s.exchange(sess, round, global)
			mu.Lock()
			defer mu.Unlock()
			if err != nil && firstErr == nil {
				firstErr = fmt.Errorf("client %d: %w", sess.clientID, err)
				return
			}
			updates[i] = u
		}(i, sess)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return updates, nil
}

// exchange sends the round's global state and reads the client's update.
func (s *Server) exchange(sess *session, round int, global []float64) (*fl.Update, error) {
	if err := s.send(sess, &Message{Kind: KindGlobal, Round: round, State: global}); err != nil {
		return nil, err
	}
	sess.conn.SetReadDeadline(time.Now().Add(s.cfg.IOTimeout))
	msg, err := ReadMessage(sess.conn)
	if err != nil {
		return nil, err
	}
	switch msg.Kind {
	case KindUpdate:
	case KindError:
		return nil, fmt.Errorf("client reported: %s", msg.Err)
	default:
		return nil, fmt.Errorf("unexpected %v frame", msg.Kind)
	}
	if msg.Round != round {
		return nil, fmt.Errorf("update for round %d during round %d", msg.Round, round)
	}
	return &fl.Update{
		ClientID:   sess.clientID,
		Round:      msg.Round,
		State:      msg.State,
		NumSamples: msg.NumSamples,
	}, nil
}

func (s *Server) send(sess *session, msg *Message) error {
	sess.conn.SetWriteDeadline(time.Now().Add(s.cfg.IOTimeout))
	return WriteMessage(sess.conn, msg)
}

func (s *Server) sendError(conn net.Conn, text string) {
	conn.SetWriteDeadline(time.Now().Add(s.cfg.IOTimeout))
	// Best effort: the registrant is being rejected anyway.
	_ = WriteMessage(conn, &Message{Kind: KindError, Err: text})
}
