package flnet

import (
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/fl"
	"repro/internal/metrics"
	"repro/internal/telemetry"
)

// ServerConfig configures the middleware server.
type ServerConfig struct {
	// Addr is the TCP listen address, e.g. "127.0.0.1:7070". Use ":0" for an
	// ephemeral port (tests).
	Addr string
	// NumClients is the cohort size; the server waits up to IOTimeout for
	// this many registrations before round 1 (MinClients suffice after the
	// deadline).
	NumClients int
	// MinClients is the round quorum: a round aggregates as soon as every
	// live client has reported or, once RoundDeadline has passed, with any
	// set of at least MinClients updates (FedAvg sample-weights partial
	// cohorts). 0 means NumClients, i.e. no partial rounds.
	MinClients int
	// SampleSize, when positive, samples K = SampleSize of the eligible
	// (live, non-quarantined) clients into each round's cohort instead of
	// broadcasting to everyone. The draw is deterministic given
	// (SampleSeed, round, membership) — see SampleOrder — so a resumed
	// server re-draws identical cohorts. Sampled clients that fail or
	// time out are replaced from the remainder of the same deterministic
	// order (quorum fallback), unless the defense is cohort-aware (secure
	// aggregation's mask graph cannot absorb substitutes mid-round). 0
	// means every live client participates in every round.
	SampleSize int
	// SampleSeed seeds the per-round cohort draw. 0 means "unset": a
	// checkpoint resume adopts the recorded seed, otherwise
	// SampleSeedDefault applies.
	SampleSeed int64
	// SampleSeedDefault is the seed used when SampleSeed is 0 and no
	// checkpoint seed was adopted (fresh federation, or a checkpoint
	// recorded without sampling). 0 means 1. Lets callers map "unset =
	// the experiment seed" without defeating checkpoint adoption.
	SampleSeedDefault int64
	// AsyncStaleness, when positive, switches rounds to buffered async
	// collection: a straggler's update is not discarded at the round
	// boundary but buffered and folded into a later round — weighted down
	// by its age via fl.StalenessWeight — as long as it is at most
	// AsyncStaleness rounds old. Rounds complete as soon as MinClients
	// updates are accepted and never block on stragglers. 0 means
	// synchronous rounds. Incompatible with cohort-aware defenses (stale
	// updates' pairwise masks cannot cancel across cohorts).
	AsyncStaleness int
	// Streaming folds each update into an O(model) running accumulator as
	// it arrives instead of materializing the whole cohort's updates
	// (O(clients × model)). Requires a defense whose aggregation rule can
	// stream (fl.StreamingCapable); otherwise the server logs a warning,
	// increments dinar_flnet_streaming_fallback_total, and falls back to
	// materialized aggregation.
	Streaming bool
	// Rounds is the number of FL rounds to run.
	Rounds int
	// RoundDeadline bounds one round's update collection; after it expires
	// the round proceeds with a quorum and evicts stragglers. 0 means no
	// deadline: the round ends only when every live client has reported or
	// failed.
	RoundDeadline time.Duration
	// Defense is the server-side defense instance (its Aggregate hook runs
	// here). It must already be Bound to the model layout.
	Defense fl.Defense
	// InitialState is the initial global model state vector.
	InitialState []float64
	// IOTimeout bounds individual reads/writes per connection (default 2
	// minutes).
	IOTimeout time.Duration
	// RegisterTimeout bounds the whole registration phase: once it
	// expires the federation starts with whatever quorum has registered
	// (or fails below MinClients). 0 means IOTimeout.
	RegisterTimeout time.Duration
	// MaxRejects caps rejected registration attempts (malformed hellos,
	// protocol version mismatches, duplicate ids) before the server gives
	// up, so a misbehaving peer cannot keep the accept loop spinning
	// forever. 0 means 2*NumClients+8. Connections shed by admission
	// control or turned away during a drain do not count.
	MaxRejects int
	// DrainRetryAfter is the back-off suggested to clients in drain frames
	// (Shutdown broadcast, draining registrants, admission-control sheds).
	// 0 means 1s.
	DrainRetryAfter time.Duration
	// MaxInflightRegistrations bounds how many rejoin registrations may be
	// mid-validation concurrently; connections past the bound are shed with
	// a drain frame instead of queueing behind a slow (or stalled) hello.
	// 0 means 4*NumClients+16.
	MaxInflightRegistrations int
	// RegisterRate and RegisterBurst form a token bucket over post-cohort
	// registration attempts: up to RegisterBurst immediately, refilled at
	// RegisterRate per second. Connections arriving without a token are
	// shed with a drain frame (retry later), bounding the hello-validation
	// work a reconnect storm can impose. RegisterRate 0 disables the
	// bucket; RegisterBurst 0 means 2*NumClients+8.
	RegisterRate  float64
	RegisterBurst int
	// CheckpointPath, if non-empty, persists a global-model snapshot after
	// every aggregated round; if the file already exists at startup the
	// federation resumes from the snapshot's round instead of round 0.
	CheckpointPath string
	// Pipeline overlaps each round's checkpoint encode+fsync (the round
	// "tail") with the next round's broadcast and collection instead of
	// blocking the round loop on it. The snapshot is deep-copied at the
	// same sequential point the blocking save would run, so the persisted
	// chain — and the federation's arithmetic — is bit-identical to the
	// sequential mode; only the wall-clock overlap changes. The round
	// loop stalls only when a round finishes before the previous write
	// does (PipelineStallSeconds measures that).
	Pipeline bool
	// Dataset tags checkpoints; resuming from a snapshot recorded for a
	// different dataset is an error. Optional.
	Dataset string
	// NoScreen disables the Byzantine update screen. By default every
	// round's updates are validated (shape, NaN/Inf) before aggregation,
	// rejected senders are evicted, and repeat offenders are quarantined.
	NoScreen bool
	// Screen configures the update screen when screening is enabled; the
	// zero value selects the fl.ScreenConfig defaults.
	Screen fl.ScreenConfig
	// Listener, if non-nil, is used instead of listening on Addr — tests
	// inject faultnet wrappers here. It should support SetDeadline.
	Listener net.Listener
	// Meter records aggregation costs (optional).
	Meter *metrics.CostMeter
	// Registry is the telemetry registry the server's instruments (and
	// its fl core's) register into. nil means the process-wide default
	// registry — fine for single-federation binaries, but two servers in
	// one process would merge their counters indistinguishably, so
	// service mode gives every job its own labeled registry.
	Registry *telemetry.Registry
	// Logf receives progress lines (optional). Every call site is routed
	// through one serialized event log, so Logf is never invoked
	// concurrently and always receives one whole line per call — the
	// rejoin acceptor, per-client round goroutines, and the round loop
	// can no longer interleave output mid-line.
	Logf func(format string, args ...any)
	// EventCapacity bounds the in-memory ring of recent structured
	// events (Events method). 0 means 256.
	EventCapacity int
	// Wire selects the transport framing offered to clients: "binary"
	// (the default, "" means binary) negotiates v3 zero-reflection binary
	// frames with capable peers and falls back to gob for v2 peers or
	// clients that decline; "gob" pins the legacy gob framing for every
	// session.
	Wire string
	// Compress offers flate compression of binary frame payloads; each
	// frame stores whichever encoding is smaller.
	Compress bool
	// Quantize ("", "none", "int8", "int16") offers seeded stochastic
	// quantization of client uploads (and, with Delta, of the broadcast
	// itself). Dequantization is a pure function of the payload bytes, so
	// the exact streaming fold stays bit-deterministic for a fixed
	// QuantSeed. Requires the binary wire format; incompatible with
	// cohort-aware (secure-aggregation) defenses, whose pairwise masks do
	// not survive lossy encoding.
	Quantize string
	// TopK in (0,1) sparsifies quantized uploads to that fraction of
	// coordinates (largest |delta| first). 0 means dense uploads.
	TopK float64
	// Delta offers delta-encoded global broadcasts against the previous
	// round's broadcast (full state whenever a session's anchor is stale).
	Delta bool
	// QuantSeed seeds stochastic quantization. 0 means "unset": a
	// checkpoint resume adopts the recorded seed, otherwise
	// QuantSeedDefault applies (0 means 1), mirroring SampleSeed.
	QuantSeed        int64
	QuantSeedDefault int64
}

// RoundTiming is the per-phase wall-time breakdown of one round.
type RoundTiming struct {
	// Broadcast is the slowest single global-state send of the round —
	// the broadcast phase's critical path (sends run per client,
	// concurrently).
	Broadcast time.Duration
	// Wait spans the round's start to its quorum decision: client
	// training plus update collection.
	Wait time.Duration
	// Screen is the server-side update-screen duration (zero when
	// screening is disabled).
	Screen time.Duration
	// Aggregate is the defense's aggregation-rule duration.
	Aggregate time.Duration
}

// RoundReport records one round's cohort outcome.
type RoundReport struct {
	// Round is the 0-based round index.
	Round int
	// Participants lists the client ids whose updates were aggregated.
	Participants []int
	// Dropped lists the client ids evicted during the round (stragglers
	// past the deadline, dead connections, protocol violations, poisoners
	// rejected by the screen). A dropped client may rejoin in a later
	// round.
	Dropped []int
	// Rejected lists the client ids whose updates the screen rejected this
	// round (NaN/Inf payloads, shape mismatches, over-norm deltas).
	// Rejected clients are evicted; they may rejoin, but stay quarantined.
	Rejected []int
	// Quarantined lists the client ids whose updates were excluded because
	// the client is serving a quarantine penalty from an earlier offense.
	Quarantined []int
	// Clipped lists the client ids whose update deltas were norm-clipped
	// before aggregation.
	Clipped []int
	// Sampled lists the round's sampled cohort ids in draw order (nil when
	// sampling is off); replacements drawn after evictions are appended.
	Sampled []int
	// Stale counts staleness-weighted updates from earlier rounds folded
	// into this round (async mode only).
	Stale int
	// Err joins the errors of every failed client in the round; it may be
	// non-nil even when the round aggregated successfully with a quorum.
	Err error
	// Timing is the round's per-phase wall-time breakdown.
	Timing RoundTiming
}

// ErrDraining is returned by Run (and reported by Shutdown callers) when
// the federation was stopped early by a graceful drain: the last completed
// round is checkpointed and the partial global state is returned alongside
// this sentinel.
var ErrDraining = errors.New("flnet: server draining")

// Server is the TCP federated-learning middleware server.
type Server struct {
	cfg ServerConfig
	ln  net.Listener

	core       *fl.Server
	screen     *fl.Screen
	startRound int
	tel        *Metrics

	// events serializes every log line and retains recent structured
	// events; all former cfg.Logf call sites route through it.
	events *telemetry.EventLog

	mu      sync.Mutex
	live    map[int]*session
	rejects int
	reports []RoundReport
	// curRound is the round currently being orchestrated; ckptRound the
	// last persisted checkpoint (-1 before the first); status the
	// /healthz lifecycle phase ("waiting", "running", "draining",
	// "drained", "done").
	curRound  int
	ckptRound int
	status    string

	// joinCh delivers sessions registered by the background acceptor to
	// the round loop; runDone unblocks the acceptor when Run returns.
	joinCh  chan *session
	runDone chan struct{}

	// ckptPending is the in-flight background checkpoint write in
	// pipelined mode (nil when none). Owned by the round-loop goroutine:
	// submitted after each aggregate, joined before the next submit, in
	// drainExit, and before Run returns.
	ckptPending *ckptPending

	// Drain state machine: drainCh closes when Shutdown begins (the round
	// loop exits at the next round boundary); drainKill closes when the
	// Shutdown context expires (the in-flight round aborts immediately).
	drainCh   chan struct{}
	drainKill chan struct{}
	drainOnce sync.Once
	killOnce  sync.Once

	// Accept-path admission control for the rejoin phase.
	admit  *tokenBucket
	regSem chan struct{}

	// streamAgg is the defense's streaming aggregator (nil means
	// materialized aggregation); cohortAware is non-nil when the defense
	// needs each round's sampled cohort announced (secure aggregation's
	// mask graph).
	streamAgg   fl.StreamingAggregator
	cohortAware fl.CohortAware

	// Async-mode state, owned by the round loop: asyncCh receives every
	// exchange result (buffered to NumClients so exchange goroutines never
	// block, whichever round consumes them), busy tracks in-flight
	// exchanges across round boundaries, and asyncBuf holds accepted late
	// updates awaiting a staleness-weighted fold.
	asyncCh  chan result
	busy     map[int]*session
	asyncBuf []*fl.Update

	// Wire-codec state: offerCaps is the capability mask offered at
	// negotiation (0 = gob only), quantKind the configured upload
	// quantization, wireLabel the /healthz codec label, and ring the
	// recent canonical broadcasts that delta/quantized payloads anchor
	// against (nil unless quantization or delta broadcasts are offered).
	offerCaps uint32
	quantKind fl.QuantKind
	wireLabel string
	ring      *bcastRing
}

// tokenBucket is a minimal mutex-guarded token bucket (stdlib only): allow
// spends one token when available, tokens refill at rate per second up to
// burst. A nil bucket allows everything.
type tokenBucket struct {
	mu     sync.Mutex
	rate   float64
	burst  float64
	tokens float64
	last   time.Time
}

func newTokenBucket(rate float64, burst int) *tokenBucket {
	if rate <= 0 {
		return nil
	}
	return &tokenBucket{rate: rate, burst: float64(burst), tokens: float64(burst)}
}

func (b *tokenBucket) allow(now time.Time) bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.last.IsZero() {
		b.tokens += now.Sub(b.last).Seconds() * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
	}
	b.last = now
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// NewServer validates the configuration, loads a checkpoint when one is
// configured and present, and starts listening.
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.NumClients <= 0 || cfg.Rounds <= 0 {
		return nil, fmt.Errorf("flnet: need positive NumClients/Rounds, got %d/%d", cfg.NumClients, cfg.Rounds)
	}
	if cfg.MinClients == 0 {
		cfg.MinClients = cfg.NumClients
	}
	if cfg.MinClients < 1 || cfg.MinClients > cfg.NumClients {
		return nil, fmt.Errorf("flnet: MinClients %d outside [1,%d]", cfg.MinClients, cfg.NumClients)
	}
	if cfg.SampleSize < 0 || cfg.SampleSize > cfg.NumClients {
		return nil, fmt.Errorf("flnet: SampleSize %d outside [0,%d]", cfg.SampleSize, cfg.NumClients)
	}
	if cfg.SampleSize > 0 && cfg.MinClients > cfg.SampleSize {
		return nil, fmt.Errorf("flnet: quorum MinClients %d exceeds sample size %d: no round could ever reach quorum; lower MinClients or raise SampleSize",
			cfg.MinClients, cfg.SampleSize)
	}
	if cfg.AsyncStaleness < 0 {
		return nil, fmt.Errorf("flnet: negative AsyncStaleness %d", cfg.AsyncStaleness)
	}
	if cfg.Defense == nil {
		return nil, fmt.Errorf("flnet: nil defense")
	}
	cohortAware, _ := cfg.Defense.(fl.CohortAware)
	if cohortAware != nil && cfg.AsyncStaleness > 0 {
		return nil, fmt.Errorf("flnet: defense %q is cohort-aware (secure aggregation): staleness-buffered updates would carry pairwise masks from an older cohort that cannot cancel; run it synchronously",
			cfg.Defense.Name())
	}
	offerCaps, quantKind, err := wireOffer(&cfg, cohortAware)
	if err != nil {
		return nil, err
	}
	if cfg.IOTimeout == 0 {
		cfg.IOTimeout = 2 * time.Minute
	}
	if cfg.RegisterTimeout == 0 {
		cfg.RegisterTimeout = cfg.IOTimeout
	}
	if cfg.MaxRejects == 0 {
		cfg.MaxRejects = 2*cfg.NumClients + 8
	}
	if cfg.DrainRetryAfter == 0 {
		cfg.DrainRetryAfter = time.Second
	}
	if cfg.MaxInflightRegistrations == 0 {
		cfg.MaxInflightRegistrations = 4*cfg.NumClients + 16
	}
	if cfg.RegisterBurst == 0 {
		cfg.RegisterBurst = 2*cfg.NumClients + 8
	}
	if cfg.EventCapacity == 0 {
		cfg.EventCapacity = 256
	}
	// Every log line funnels through one serialized event log; the
	// user-supplied sink (if any) is invoked under its mutex and always
	// receives complete lines.
	var sink func(line string)
	if logf := cfg.Logf; logf != nil {
		sink = func(line string) { logf("%s", line) }
	}
	events := telemetry.NewEventLog(cfg.EventCapacity, sink)

	// One instrument bundle per registry: single-federation binaries keep
	// the process-wide default; service-mode jobs each bring their own
	// labeled registry so concurrent federations never merge counters.
	tel := NewMetrics(cfg.Registry)
	flTel := fl.NewMetrics(cfg.Registry)

	var screen *fl.Screen
	if !cfg.NoScreen {
		screen = fl.NewScreen(cfg.Screen)
		screen.SetMetrics(flTel)
	}

	state := cfg.InitialState
	startRound := 0
	var (
		resumeAsync []checkpoint.AsyncUpdate
		streamNorms []float64
		resumeWire  *checkpoint.WireState
	)
	if cfg.CheckpointPath != "" {
		snap, skipped, err := checkpoint.LoadLatestValid(cfg.CheckpointPath)
		for _, p := range skipped {
			events.Eventf(-1, -1, "flnet: skipping corrupt checkpoint generation %s", p)
		}
		switch {
		case errors.Is(err, os.ErrNotExist):
			// Fresh federation; the first round writes the file.
		case err != nil:
			return nil, fmt.Errorf("flnet: resume: %w", err)
		default:
			if cfg.Dataset != "" && snap.Dataset != "" && snap.Dataset != cfg.Dataset {
				return nil, fmt.Errorf("flnet: checkpoint is for dataset %q, server runs %q", snap.Dataset, cfg.Dataset)
			}
			if len(snap.State) != len(cfg.InitialState) {
				return nil, fmt.Errorf("flnet: checkpoint state has %d values, model needs %d", len(snap.State), len(cfg.InitialState))
			}
			state = snap.State
			startRound = snap.Round
			// Restore the screen's reputation state so quarantine penalties
			// survive the restart — a poisoner must not be paroled by a
			// server crash.
			if screen != nil && snap.Quarantine != nil {
				screen.ImportState(fl.ScreenState{
					Offenses:     snap.Quarantine.Offenses,
					BlockedUntil: snap.Quarantine.BlockedUntil,
					Norms:        snap.Quarantine.Norms,
				})
			}
			// Re-drawing bit-identical cohorts after a crash needs the
			// original sampling draw: adopt the recorded seed when the
			// config left it unset, and refuse a conflicting one — a
			// silently different draw would break replayability.
			if snap.SampleSeed != 0 {
				switch {
				case cfg.SampleSeed == 0:
					cfg.SampleSeed = snap.SampleSeed
				case cfg.SampleSeed != snap.SampleSeed:
					return nil, fmt.Errorf("flnet: checkpoint sampled with seed %d, config says %d", snap.SampleSeed, cfg.SampleSeed)
				}
			}
			if snap.SampleSize != 0 && cfg.SampleSize != 0 && snap.SampleSize != cfg.SampleSize {
				return nil, fmt.Errorf("flnet: checkpoint sampled %d clients per round, config says %d", snap.SampleSize, cfg.SampleSize)
			}
			// Clients reconstruct quantized payloads with the federation's
			// quantization seed: adopt the recorded one like SampleSeed, and
			// refuse a conflicting configuration — reconstructions would
			// silently diverge from the recorded broadcast chain.
			if snap.Wire != nil {
				if snap.Wire.QuantSeed != 0 {
					switch {
					case cfg.QuantSeed == 0:
						cfg.QuantSeed = snap.Wire.QuantSeed
					case cfg.QuantSeed != snap.Wire.QuantSeed:
						return nil, fmt.Errorf("flnet: checkpoint quantized with seed %d, config says %d", snap.Wire.QuantSeed, cfg.QuantSeed)
					}
				}
				resumeWire = snap.Wire
			}
			resumeAsync = snap.Async
			streamNorms = snap.StreamNorms
			events.Eventf(startRound, -1, "flnet: resuming from checkpoint %s at round %d (generation %d)",
				cfg.CheckpointPath, startRound, snap.Generation)
		}
	}
	// Normalized after checkpoint adoption so 0 stays the "unset" marker
	// until the recorded seed has had its chance.
	if cfg.SampleSize > 0 && cfg.SampleSeed == 0 {
		if cfg.SampleSeed = cfg.SampleSeedDefault; cfg.SampleSeed == 0 {
			cfg.SampleSeed = 1
		}
	}
	if quantKind != fl.QuantNone && cfg.QuantSeed == 0 {
		if cfg.QuantSeed = cfg.QuantSeedDefault; cfg.QuantSeed == 0 {
			cfg.QuantSeed = 1
		}
	}

	core, err := fl.NewServer(state, cfg.Defense, cfg.Meter)
	if err != nil {
		return nil, err
	}
	core.SetMetrics(flTel)
	core.SetRound(startRound)
	if screen != nil {
		core.SetScreen(screen)
	}

	var streamAgg fl.StreamingAggregator
	if cfg.Streaming {
		streamAgg = fl.StreamingOf(cfg.Defense)
		if streamAgg == nil {
			tel.StreamingFallback.Inc()
			events.Eventf(-1, -1, "flnet: defense %q has no streaming aggregation rule; falling back to materialized aggregation",
				cfg.Defense.Name())
		} else if nc, ok := streamAgg.(fl.NormCarrier); ok && len(streamNorms) > 0 {
			// The streaming norm bound calibrates against a trailing
			// cross-round window; restore it so the resumed server clips
			// with the same bound the crashed one would have.
			nc.ImportNorms(streamNorms)
		}
	}

	ln := cfg.Listener
	if ln == nil {
		ln, err = net.Listen("tcp", cfg.Addr)
		if err != nil {
			return nil, fmt.Errorf("flnet: listen %s: %w", cfg.Addr, err)
		}
	}
	srv := &Server{
		cfg:         cfg,
		ln:          ln,
		core:        core,
		screen:      screen,
		startRound:  startRound,
		tel:         tel,
		events:      events,
		live:        make(map[int]*session, cfg.NumClients),
		curRound:    startRound,
		ckptRound:   -1,
		status:      "waiting",
		joinCh:      make(chan *session, cfg.NumClients),
		runDone:     make(chan struct{}),
		drainCh:     make(chan struct{}),
		drainKill:   make(chan struct{}),
		admit:       newTokenBucket(cfg.RegisterRate, cfg.RegisterBurst),
		regSem:      make(chan struct{}, cfg.MaxInflightRegistrations),
		streamAgg:   streamAgg,
		cohortAware: cohortAware,
		offerCaps:   offerCaps,
		quantKind:   quantKind,
		wireLabel:   CapsLabel(offerCaps),
	}
	if offerCaps&(CapQuantInt8|CapQuantInt16|CapDelta) != 0 {
		// The ring must cover every round a live anchor can lag behind:
		// synchronous sessions lag at most a round or two, async exchanges
		// up to AsyncStaleness rounds.
		srv.ring = newBcastRing(max(8, cfg.AsyncStaleness+2))
		if resumeWire != nil && len(resumeWire.Bcast) == len(state) && resumeWire.BcastRound >= 0 {
			// Resume the canonical broadcast chain from the recorded anchor:
			// reconnecting clients whose LastRound matches get deltas against
			// the exact state they hold.
			srv.ring.put(resumeWire.BcastRound, resumeWire.Bcast)
		}
	}
	if cfg.AsyncStaleness > 0 {
		srv.asyncCh = make(chan result, cfg.NumClients)
		srv.busy = make(map[int]*session, cfg.NumClients)
		for _, au := range resumeAsync {
			srv.asyncBuf = append(srv.asyncBuf, &fl.Update{
				ClientID:   au.ClientID,
				Round:      au.Round,
				State:      au.State,
				NumSamples: au.NumSamples,
			})
		}
	}
	return srv, nil
}

// Shutdown gracefully drains the server: registration stops admitting new
// clients (they get drain frames), the round loop exits at the next round
// boundary with the last completed round checkpointed, and every live
// client is notified with a drain frame. If ctx expires before the
// in-flight round completes, the round is aborted instead of awaited.
// Shutdown returns once Run has returned (Run reports ErrDraining);
// calling it again is a no-op that waits the same way. Shutdown must not
// be called before Run — with no round loop to drain, it blocks until ctx
// expires.
func (s *Server) Shutdown(ctx context.Context) error {
	s.drainOnce.Do(func() {
		s.mu.Lock()
		wasWaiting := s.status == "waiting"
		if wasWaiting || s.status == "running" {
			s.status = "draining"
		}
		s.mu.Unlock()
		s.logf(-1, -1, "flnet: drain requested")
		close(s.drainCh)
		// Unblock a registration-phase Accept so a server draining before
		// its cohort formed exits promptly. Mid-run the rejoin acceptor
		// keeps running (it sheds registrants with drain frames) until
		// Run's deferred listener close stops it.
		if wasWaiting {
			type deadliner interface{ SetDeadline(time.Time) error }
			if d, ok := s.ln.(deadliner); ok {
				d.SetDeadline(time.Now()) //nolint:errcheck // best effort
			}
		}
	})
	select {
	case <-s.runDone:
		return nil
	case <-ctx.Done():
		s.killOnce.Do(func() {
			s.logf(-1, -1, "flnet: drain deadline expired; aborting in-flight round")
			close(s.drainKill)
		})
		<-s.runDone
		return ctx.Err()
	}
}

// draining reports whether Shutdown has begun.
func (s *Server) draining() bool {
	select {
	case <-s.drainCh:
		return true
	default:
		return false
	}
}

// logf records one structured, serialized log event; round/client are -1
// when not applicable.
func (s *Server) logf(round, client int, format string, args ...any) {
	s.events.Eventf(round, client, format, args...)
}

// Events returns the most recent structured log events, oldest first.
func (s *Server) Events() []telemetry.Event { return s.events.Events() }

// Health returns the server's /healthz snapshot: lifecycle status, the
// round being orchestrated, live vs configured client counts, and the
// last checkpointed round.
func (s *Server) Health() telemetry.Health {
	s.mu.Lock()
	defer s.mu.Unlock()
	return telemetry.Health{
		Status:            s.status,
		Round:             s.curRound,
		Rounds:            s.cfg.Rounds,
		RegisteredClients: len(s.live),
		NumClients:        s.cfg.NumClients,
		MinClients:        s.cfg.MinClients,
		StartRound:        s.startRound,
		CheckpointRound:   s.ckptRound,
		Wire:              s.wireLabel,
	}
}

// Addr returns the bound listen address.
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Close stops the listener.
func (s *Server) Close() error { return s.ln.Close() }

// StartRound returns the round the federation (re)starts from: 0 for a
// fresh run, the checkpointed round after a resume.
func (s *Server) StartRound() int { return s.startRound }

// Reports returns a copy of the per-round cohort reports recorded so far.
func (s *Server) Reports() []RoundReport {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]RoundReport(nil), s.reports...)
}

// session is one connected client.
type session struct {
	conn     net.Conn
	clientID int
	// lastRound is the last round the client reported completing in its
	// Hello (-1 for a fresh client).
	lastRound int
	// codec is the session's negotiated wire codec (nil for gob peers).
	codec *Codec
	// anchor is the round whose canonical broadcast the peer is known to
	// hold — its Hello LastRound until the first Global goes out, then the
	// round of the last successfully sent Global. Only the session's
	// single in-flight exchange (serialized by the round loop) touches it.
	anchor int
}

// Run accepts registrations, orchestrates all rounds (tolerating client
// failure per MinClients/RoundDeadline), sends the final model, and
// returns the final global state.
func (s *Server) Run(ctx context.Context) ([]float64, error) {
	defer s.ln.Close()
	defer close(s.runDone)

	// Cancel blocking Accept/Read calls when ctx ends.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-ctx.Done():
			s.ln.Close()
		case <-stop:
		}
	}()

	if err := s.acceptCohort(ctx); err != nil {
		if errors.Is(err, ErrDraining) {
			// Drained while waiting for the cohort: no round ran, so the
			// resumed (or initial) state is already the latest checkpoint.
			state, derr := s.drainExit(s.startRound)
			s.closeLive()
			return state, derr
		}
		return nil, err
	}
	defer s.closeLive()

	// Keep accepting for the rest of the run so evicted clients can
	// rejoin and resync. Run joins the acceptor before returning: a
	// registration still holding an accepted socket after Run returns
	// would keep the port busy and break an immediate same-address
	// restart (Linux only rebinds over TIME_WAIT, not ESTABLISHED).
	quit := make(chan struct{})
	rejoinDone := make(chan struct{})
	go func() {
		defer close(rejoinDone)
		s.acceptRejoins(ctx, quit)
	}()
	defer func() {
		s.ln.Close() // unblock Accept; Run's outer defer close is then a no-op
		close(quit)  // abort in-flight registrations
		<-rejoinDone
	}()
	// Backstop for error exits: never leave a background checkpoint write
	// running past Run (the success and drain paths join explicitly and
	// surface the write's error; this re-join is then a no-op).
	defer s.joinCheckpoint() //nolint:errcheck // error surfaced on non-backstop paths

	for round := s.startRound; round < s.cfg.Rounds; round++ {
		if s.draining() {
			return s.drainExit(round)
		}
		s.mu.Lock()
		s.curRound = round
		s.status = "running"
		s.mu.Unlock()
		s.tel.RoundsStarted.Inc()
		streaming := s.streamAgg != nil
		if streaming {
			if err := s.core.BeginRound(s.streamAgg); err != nil {
				return nil, fmt.Errorf("flnet: round %d: %w", round, err)
			}
		}
		var (
			updates []*fl.Update
			report  RoundReport
			err     error
		)
		if s.cfg.AsyncStaleness > 0 {
			updates, report, err = s.runRoundAsync(ctx, round)
		} else {
			updates, report, err = s.runRound(ctx, round)
		}
		if err != nil {
			if streaming {
				// Abandon the armed streaming round; screen offenses booked
				// during it stick.
				s.core.AbortRound()
			}
			s.mu.Lock()
			s.reports = append(s.reports, report)
			s.mu.Unlock()
			if errors.Is(err, ErrDraining) {
				// The drain deadline expired mid-round: abandon the round
				// (its updates were never aggregated — the checkpoint chain
				// ends at the last completed round) and exit the drain path.
				_, derr := s.drainExit(round)
				return s.core.GlobalState(), derr
			}
			return nil, fmt.Errorf("flnet: round %d: %w", round, err)
		}
		var aggErr error
		if streaming {
			// The round's updates were folded one at a time as they arrived
			// (runRound → core.Offer); finalize the accumulator.
			aggErr = s.core.FinishRound()
		} else {
			// Arrival order is nondeterministic; aggregate in client order so a
			// federation's result is reproducible run-to-run (and across a
			// checkpoint resume).
			sort.Slice(updates, func(i, j int) bool { return updates[i].ClientID < updates[j].ClientID })
			aggErr = s.core.Aggregate(updates)
			// The cohort's update payloads are dead once aggregated (every
			// aggregation rule returns freshly allocated state): recycle
			// their buffers so the next round's reads reuse them instead of
			// re-allocating O(cohort × model).
			for _, u := range updates {
				PutState(u.State)
				u.State = nil
			}
		}
		agg := s.core.LastAggTiming()
		report.Timing.Screen = agg.Screen
		report.Timing.Aggregate = agg.Aggregate
		s.applyScreenOutcome(round, &report)
		s.mu.Lock()
		s.reports = append(s.reports, report)
		s.mu.Unlock()
		if aggErr != nil {
			return nil, aggErr
		}
		s.tel.RoundsCompleted.Inc()
		if s.cfg.CheckpointPath != "" {
			if s.cfg.Pipeline {
				// Join the previous round's background write (its error
				// surfaces here, one round late), then hand this round's
				// snapshot to the writer and move straight on to the next
				// round's broadcast.
				if err := s.joinCheckpoint(); err != nil {
					return nil, fmt.Errorf("flnet: round %d: checkpoint: %w", round, err)
				}
				s.submitCheckpoint()
			} else if err := s.saveCheckpoint(); err != nil {
				return nil, fmt.Errorf("flnet: round %d: %w", round, err)
			}
		}
		s.logf(round, -1, "flnet: round %d aggregated %d updates (dropped %d) [broadcast %s wait %s screen %s aggregate %s]",
			round, len(report.Participants), len(report.Dropped),
			report.Timing.Broadcast.Round(time.Microsecond), report.Timing.Wait.Round(time.Microsecond),
			report.Timing.Screen.Round(time.Microsecond), report.Timing.Aggregate.Round(time.Microsecond))
	}
	// The final round's pipelined write must land before Run reports
	// success — callers restart from this checkpoint.
	if err := s.joinCheckpoint(); err != nil {
		return nil, fmt.Errorf("flnet: final checkpoint: %w", err)
	}
	s.mu.Lock()
	s.curRound = s.cfg.Rounds
	s.status = "done"
	s.mu.Unlock()

	final := s.core.GlobalState()
	s.mu.Lock()
	finalSessions := make([]*session, 0, len(s.live))
	for _, sess := range s.live {
		finalSessions = append(finalSessions, sess)
	}
	s.mu.Unlock()
	var doneErrs []error
	for _, sess := range finalSessions {
		msg := &Message{Kind: KindDone, Round: s.cfg.Rounds, State: final}
		if err := s.send(sess, msg); err != nil {
			// The federation already converged; a client that cannot
			// receive Done lost only its own final install.
			doneErrs = append(doneErrs, fmt.Errorf("client %d: %w", sess.clientID, err))
		}
	}
	if len(doneErrs) > 0 {
		s.logf(s.cfg.Rounds, -1, "flnet: done broadcast: %v", errors.Join(doneErrs...))
	}
	return final, nil
}

// closeLive closes every live session's connection and empties the live
// set (keeping the live-clients gauge truthful after Run returns).
func (s *Server) closeLive() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for id, sess := range s.live {
		sess.conn.Close()
		delete(s.live, id)
	}
	s.tel.LiveClients.Set(0)
}

// saveCheckpoint persists the current global state and screen reputation as
// a new checkpoint generation, blocking until the write is durable.
func (s *Server) saveCheckpoint() error {
	return s.writeSnapshot(s.buildSnapshot())
}

// buildSnapshot deep-copies the federation's persistent state into a
// checkpoint snapshot. Every buffer the snapshot references is owned by
// the snapshot alone — the async-buffer update states in particular are
// copied, because the round loop recycles those buffers (PutState) when
// a buffered update folds into a later round, and pipelined mode encodes
// the snapshot concurrently with that loop.
func (s *Server) buildSnapshot() *checkpoint.Snapshot {
	snap := &checkpoint.Snapshot{
		Dataset: s.cfg.Dataset,
		Round:   s.core.Round(),
		State:   s.core.GlobalState(),
	}
	if s.screen != nil {
		st := s.screen.ExportState()
		snap.Quarantine = &checkpoint.QuarantineState{
			Offenses:     st.Offenses,
			BlockedUntil: st.BlockedUntil,
			Norms:        st.Norms,
		}
	}
	// Sampling and async state ride along so a resumed server re-draws the
	// same cohorts and replays buffered stragglers: exact across a graceful
	// drain; across a hard crash the buffer reflects the last completed
	// round's save (in-flight exchanges are lost either way — the clients
	// redial and re-train).
	snap.SampleSeed = s.cfg.SampleSeed
	snap.SampleSize = s.cfg.SampleSize
	for _, u := range s.asyncBuf {
		snap.Async = append(snap.Async, checkpoint.AsyncUpdate{
			ClientID:   u.ClientID,
			Round:      u.Round,
			NumSamples: u.NumSamples,
			State:      append([]float64(nil), u.State...),
		})
	}
	if nc, ok := s.streamAgg.(fl.NormCarrier); ok {
		snap.StreamNorms = nc.ExportNorms()
	}
	// The codec configuration (and the broadcast-chain anchor, when deltas
	// or quantization are live) rides along so a resumed server honors
	// in-flight negotiations — see checkpoint.WireState.
	if s.offerCaps != 0 {
		ws := &checkpoint.WireState{
			Compress:  s.cfg.Compress,
			Quantize:  s.quantKind.String(),
			TopK:      s.cfg.TopK,
			Delta:     s.cfg.Delta,
			QuantSeed: s.cfg.QuantSeed,
		}
		if s.ring != nil {
			if round, bcast := s.ring.latest(); bcast != nil {
				ws.BcastRound = round
				ws.Bcast = append([]float64(nil), bcast...)
			}
		}
		snap.Wire = ws
	}
	return snap
}

// writeSnapshot persists snap as a new checkpoint generation and advances
// the checkpointed-round watermark. Safe to call off the round loop: it
// touches only the snapshot and mu-guarded fields.
func (s *Server) writeSnapshot(snap *checkpoint.Snapshot) error {
	start := time.Now()
	if err := checkpoint.SaveFile(s.cfg.CheckpointPath, snap); err != nil {
		return err
	}
	s.tel.RoundTailSeconds.Observe(time.Since(start).Seconds())
	s.mu.Lock()
	if snap.Round > s.ckptRound {
		s.ckptRound = snap.Round
	}
	s.mu.Unlock()
	return nil
}

// ckptPending is one in-flight background checkpoint write.
type ckptPending struct {
	done     chan struct{}
	err      error
	writeDur time.Duration
}

// submitCheckpoint starts a background write of the current state's
// snapshot. The snapshot is built synchronously — at the exact point the
// blocking save would have run, so the persisted chain is bit-identical
// to sequential mode — and only the encode+fsync overlaps the next
// round. At most one write is in flight: callers join the previous one
// first (Run's round loop, drainExit).
func (s *Server) submitCheckpoint() {
	snap := s.buildSnapshot()
	p := &ckptPending{done: make(chan struct{})}
	s.ckptPending = p
	go func() {
		start := time.Now()
		p.err = s.writeSnapshot(snap)
		p.writeDur = time.Since(start)
		close(p.done)
	}()
}

// joinCheckpoint blocks until the in-flight background checkpoint write
// (if any) completes, records the pipeline's stall/overlap histograms,
// and returns the write's error. The overlap — how much of the write ran
// while the round loop was doing useful work — is the write duration
// minus the time this join spent blocked.
func (s *Server) joinCheckpoint() error {
	p := s.ckptPending
	if p == nil {
		return nil
	}
	s.ckptPending = nil
	stallStart := time.Now()
	<-p.done
	stall := time.Since(stallStart)
	overlap := p.writeDur - stall
	if overlap < 0 {
		overlap = 0
	}
	s.tel.PipelineStallSeconds.Observe(stall.Seconds())
	s.tel.PipelineOverlapSeconds.Observe(overlap.Seconds())
	return p.err
}

// drainExit finishes a graceful drain: the final checkpoint is written (a
// no-op when the per-round save already covers the current round), every
// live client gets a drain frame telling it to come back after the restart,
// and Run returns the partial global state alongside ErrDraining.
func (s *Server) drainExit(round int) ([]float64, error) {
	var errs []error
	// Sweep results that arrived since the last round closed into the async
	// buffer so the final checkpoint carries them; exchanges still in flight
	// are lost (their clients redial after the restart).
	if s.asyncCh != nil {
	sweep:
		for {
			select {
			case res := <-s.asyncCh:
				if s.busy[res.sess.clientID] == res.sess {
					delete(s.busy, res.sess.clientID)
				}
				if res.err == nil {
					s.asyncBuf = append(s.asyncBuf, res.u)
				}
			default:
				break sweep
			}
		}
		s.tel.AsyncBuffered.Set(int64(len(s.asyncBuf)))
	}
	// A pipelined write may still be in flight; land it before deciding
	// whether a final save is needed (it usually already covers the last
	// completed round).
	if err := s.joinCheckpoint(); err != nil {
		errs = append(errs, err)
	}
	if s.cfg.CheckpointPath != "" {
		s.mu.Lock()
		behind := s.ckptRound < s.core.Round()
		s.mu.Unlock()
		if behind {
			if err := s.saveCheckpoint(); err != nil {
				errs = append(errs, err)
			}
		}
	}
	s.mu.Lock()
	s.curRound = round
	s.status = "drained"
	sessions := make([]*session, 0, len(s.live))
	for _, sess := range s.live {
		sessions = append(sessions, sess)
	}
	s.mu.Unlock()
	retryAfter := int(s.cfg.DrainRetryAfter / time.Millisecond)
	for _, sess := range sessions {
		// Best effort: the client's read will fail when the conn closes
		// anyway; the drain frame just turns that into a polite back-off.
		_ = s.send(sess, &Message{Kind: KindDrain, RetryAfterMs: retryAfter})
		s.tel.DrainNotices.Inc()
	}
	s.logf(round, -1, "flnet: drained before round %d (%d clients notified, checkpoint at round %d)",
		round, len(sessions), s.ckptRound)
	if len(errs) > 0 {
		return s.core.GlobalState(), fmt.Errorf("%w: final checkpoint: %v", ErrDraining, errors.Join(errs...))
	}
	return s.core.GlobalState(), ErrDraining
}

// acceptCohort waits for NumClients hello frames, bounded by an overall
// RegisterTimeout deadline: once the deadline passes, a quorum of
// MinClients suffices to start the federation.
func (s *Server) acceptCohort(ctx context.Context) error {
	type deadliner interface{ SetDeadline(time.Time) error }
	if d, ok := s.ln.(deadliner); ok {
		d.SetDeadline(time.Now().Add(s.cfg.RegisterTimeout)) //nolint:errcheck // best effort
		defer d.SetDeadline(time.Time{})                     //nolint:errcheck
	}
	for {
		if s.draining() {
			return ErrDraining
		}
		s.mu.Lock()
		registered := len(s.live)
		s.mu.Unlock()
		if registered >= s.cfg.NumClients {
			return nil
		}
		conn, err := s.ln.Accept()
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			if s.draining() {
				return ErrDraining
			}
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				if registered >= s.cfg.MinClients {
					s.logf(-1, -1, "flnet: registration deadline passed; starting with %d/%d clients", registered, s.cfg.NumClients)
					return nil
				}
				return fmt.Errorf("flnet: only %d/%d clients registered within %s (quorum %d)",
					registered, s.cfg.NumClients, s.cfg.RegisterTimeout, s.cfg.MinClients)
			}
			return fmt.Errorf("flnet: accept: %w", err)
		}
		if _, err := s.register(conn); err != nil {
			if errors.Is(err, errTooManyRejects) {
				return err
			}
		}
	}
}

// errTooManyRejects aborts registration once MaxRejects attempts failed.
var errTooManyRejects = errors.New("flnet: too many rejected registration attempts")

// register reads and validates one Hello frame. On success the session is
// added to the live set; on failure the registrant gets a KindError frame,
// the connection is closed, and the reject counter advances.
func (s *Server) register(conn net.Conn) (*session, error) {
	reject := func(reason string) error {
		s.sendError(conn, reason)
		conn.Close()
		s.mu.Lock()
		s.rejects++
		tooMany := s.rejects > s.cfg.MaxRejects
		s.mu.Unlock()
		s.tel.RegistrationsRejected.Inc()
		s.logf(-1, -1, "flnet: rejected registrant from %v: %s", conn.RemoteAddr(), reason)
		if tooMany {
			return fmt.Errorf("%w (%d)", errTooManyRejects, s.cfg.MaxRejects)
		}
		return fmt.Errorf("flnet: rejected registrant: %s", reason)
	}

	conn.SetReadDeadline(time.Now().Add(s.cfg.IOTimeout))
	msg, err := ReadMessage(conn)
	if err != nil || msg.Kind != KindHello {
		return nil, reject("malformed registration: want a hello frame")
	}
	if msg.Version < MinProtocolVersion || msg.Version > ProtocolVersion {
		return nil, reject(fmt.Sprintf("protocol version %d not supported, server speaks %d (minimum %d)",
			msg.Version, ProtocolVersion, MinProtocolVersion))
	}
	if msg.ClientID < 0 || msg.ClientID >= s.cfg.NumClients {
		return nil, reject(fmt.Sprintf("client id %d outside [0,%d)", msg.ClientID, s.cfg.NumClients))
	}
	s.mu.Lock()
	_, dup := s.live[msg.ClientID]
	s.mu.Unlock()
	if dup {
		return nil, reject(fmt.Sprintf("client id %d already registered", msg.ClientID))
	}
	sess := &session{conn: conn, clientID: msg.ClientID, lastRound: msg.LastRound, anchor: msg.LastRound}
	// Codec negotiation: the intersection of the server's offer and the
	// client's advertised capabilities. A v2 peer (or a v3 peer pinned to
	// gob) advertises nothing and the session simply stays gob. The ack is
	// the session's last gob frame, and it MUST be written before the
	// session becomes visible to the round loop — a concurrently sampled
	// cohort could otherwise race a binary Global ahead of the ack.
	if caps := negotiateCaps(s.offerCaps, msg.WireCaps); caps != 0 {
		ack := &Message{Kind: KindWire, Version: ProtocolVersion, WireCaps: caps,
			QuantSeed: s.cfg.QuantSeed, TopK: s.cfg.TopK}
		conn.SetWriteDeadline(time.Now().Add(s.cfg.IOTimeout))
		if err := WriteMessage(conn, ack); err != nil {
			conn.Close()
			return nil, fmt.Errorf("flnet: wire ack to client %d: %w", msg.ClientID, err)
		}
		sess.codec = NewCodec(caps, s.cfg.QuantSeed, s.cfg.TopK, s.sessionBase(sess))
	}
	s.mu.Lock()
	if _, dup := s.live[msg.ClientID]; dup {
		s.mu.Unlock()
		// Lost the insert race against a concurrent registration for the
		// same id; the rejection must speak whatever codec was just acked.
		conn.SetWriteDeadline(time.Now().Add(s.cfg.IOTimeout))
		_ = WriteMessageWith(conn, &Message{Kind: KindError,
			Err: fmt.Sprintf("client id %d already registered", msg.ClientID)}, sess.codec)
		conn.Close()
		s.mu.Lock()
		s.rejects++
		tooMany := s.rejects > s.cfg.MaxRejects
		s.mu.Unlock()
		s.tel.RegistrationsRejected.Inc()
		s.logf(-1, msg.ClientID, "flnet: rejected registrant from %v: duplicate client id %d", conn.RemoteAddr(), msg.ClientID)
		if tooMany {
			return nil, fmt.Errorf("%w (%d)", errTooManyRejects, s.cfg.MaxRejects)
		}
		return nil, fmt.Errorf("flnet: rejected registrant: duplicate client id %d", msg.ClientID)
	}
	s.live[msg.ClientID] = sess
	s.tel.LiveClients.Set(int64(len(s.live)))
	s.mu.Unlock()
	return sess, nil
}

// acceptRejoins keeps registering clients after the initial cohort formed,
// so an evicted client can reconnect and be resynced into the current
// round. Registrations are validated concurrently (bounded by
// MaxInflightRegistrations) so one stalled hello cannot head-of-line-block
// every other reconnect; the token bucket sheds reconnect storms before
// they cost validation work. It stops when the listener closes or the
// reject cap is hit.
func (s *Server) acceptRejoins(ctx context.Context, quit <-chan struct{}) {
	var wg sync.WaitGroup
	defer wg.Wait()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed (run finished or ctx canceled)
		}
		s.mu.Lock()
		tooMany := s.rejects > s.cfg.MaxRejects
		s.mu.Unlock()
		if tooMany {
			conn.Close()
			s.logf(-1, -1, "flnet: rejoin acceptor stopping: %v", errTooManyRejects)
			return
		}
		if s.draining() {
			// Shed politely: the registrant should come back after the
			// restart, not burn its retry budget on us.
			s.sendDrain(conn)
			conn.Close()
			continue
		}
		if !s.admit.allow(time.Now()) {
			s.sendDrain(conn)
			conn.Close()
			s.tel.AdmissionShed.Inc()
			continue
		}
		select {
		case s.regSem <- struct{}{}:
		default:
			// Validation capacity exhausted (a storm of half-open
			// registrants); shed instead of queueing behind them.
			s.sendDrain(conn)
			conn.Close()
			s.tel.AdmissionShed.Inc()
			continue
		}
		wg.Add(1)
		go func(conn net.Conn) {
			defer wg.Done()
			defer func() { <-s.regSem }()
			// Abort a half-open registration the moment the run winds
			// down: closing the conn unblocks register's reads so the
			// acceptor join in Run never waits out an IO timeout.
			regDone := make(chan struct{})
			defer close(regDone)
			go func() {
				select {
				case <-quit:
					conn.Close()
				case <-regDone:
				}
			}()
			sess, err := s.register(conn)
			if err != nil {
				return
			}
			s.tel.Rejoins.Inc()
			s.logf(-1, sess.clientID, "flnet: client %d rejoined (last completed round %d)", sess.clientID, sess.lastRound)
			select {
			case s.joinCh <- sess:
			case <-quit:
				sess.conn.Close()
			case <-ctx.Done():
				sess.conn.Close()
			}
		}(conn)
	}
}

// sendDrain tells one connection the server is draining or shedding load.
func (s *Server) sendDrain(conn net.Conn) {
	conn.SetWriteDeadline(time.Now().Add(s.cfg.IOTimeout))
	// Best effort: the connection is being turned away either way.
	_ = WriteMessage(conn, &Message{Kind: KindDrain, RetryAfterMs: int(s.cfg.DrainRetryAfter / time.Millisecond)})
	s.tel.DrainNotices.Inc()
}

// result is one finished exchange.
type result struct {
	sess *session
	u    *fl.Update
	err  error
	// sendDur is how long the global-state send took; the round's
	// broadcast critical path is the max over its cohort.
	sendDur time.Duration
}

// sampleCohort draws the round's cohort. Without sampling every live
// session participates (nil queue). With sampling, the eligible set is the
// live, non-quarantined membership; the first SampleSize ids of the
// deterministic draw form the cohort and the remainder — in draw order — is
// the replacement queue for the quorum fallback. exclude (optional) removes
// ids from eligibility (async mode's in-flight and already-counted
// clients).
func (s *Server) sampleCohort(round int, exclude map[int]bool) (cohort, queue []*session, cohortIDs []int) {
	s.mu.Lock()
	liveSessions := make(map[int]*session, len(s.live))
	for id, sess := range s.live {
		liveSessions[id] = sess
	}
	s.mu.Unlock()

	if s.cfg.SampleSize <= 0 {
		for id, sess := range liveSessions {
			if exclude[id] {
				continue
			}
			cohort = append(cohort, sess)
		}
		return cohort, nil, nil
	}
	ids := make([]int, 0, len(liveSessions))
	for id := range liveSessions {
		if exclude[id] {
			continue
		}
		if s.screen != nil && s.screen.Quarantined(id, round) {
			continue // quarantined clients are never sampled
		}
		ids = append(ids, id)
	}
	order := SampleOrder(s.cfg.SampleSeed, round, ids)
	k := s.cfg.SampleSize
	if k > len(order) {
		k = len(order)
	}
	for _, id := range order[:k] {
		cohort = append(cohort, liveSessions[id])
		cohortIDs = append(cohortIDs, id)
	}
	for _, id := range order[k:] {
		queue = append(queue, liveSessions[id])
	}
	s.tel.SampledCohort.Set(int64(len(cohort)))
	return cohort, queue, cohortIDs
}

// runRound broadcasts the global state and collects updates until every
// launched client reported, or — after RoundDeadline — a quorum of
// MinClients did. Failed or straggling clients are evicted (they may rejoin
// later); with sampling on, evicted cohort members are replaced from the
// deterministic draw's remainder so a partitioned cohort slice doesn't
// stall the round; every client error of the round is joined into the
// report. With streaming aggregation armed, each update is screened and
// folded the moment it arrives and its buffer recycled — the returned
// updates slice stays nil and the caller finalizes via core.FinishRound.
func (s *Server) runRound(ctx context.Context, round int) ([]*fl.Update, RoundReport, error) {
	bc := s.prepareBroadcast(round)
	report := RoundReport{Round: round}
	roundStart := time.Now()
	streaming := s.streamAgg != nil
	sampling := s.cfg.SampleSize > 0

	results := make(chan result, s.cfg.NumClients)
	included := make(map[*session]bool)
	pending := 0

	cohort, queue, cohortIDs := s.sampleCohort(round, nil)
	if sampling {
		report.Sampled = append([]int(nil), cohortIDs...)
	}

	// A cohort-aware defense (secure aggregation) needs the mask graph
	// restricted to the sampled cohort on both ends: announce it to the
	// server-side defense and ship it in the round's broadcast.
	// Replacements are disabled for it — a substitute's pairwise masks
	// could not cancel against the cohort the others already masked for.
	var announce []int
	if s.cohortAware != nil && sampling {
		announce = cohortIDs
		s.cohortAware.SetRoundCohort(round, cohortIDs)
	}
	refill := sampling && s.cohortAware == nil

	launch := func(sess *session) {
		included[sess] = true
		pending++
		go func() {
			u, sendDur, err := s.exchange(sess, round, bc, announce)
			results <- result{sess: sess, u: u, err: err, sendDur: sendDur}
		}()
	}
	for _, sess := range cohort {
		launch(sess)
	}

	var deadlineTimer *time.Timer
	var deadlineCh <-chan time.Time
	if s.cfg.RoundDeadline > 0 {
		deadlineTimer = time.NewTimer(s.cfg.RoundDeadline)
		defer deadlineTimer.Stop()
		deadlineCh = deadlineTimer.C
	}

	var (
		updates     []*fl.Update
		errs        []error
		got         int // updates counted toward quorum
		deadlineHit bool
	)
	evict := func(sess *session, err error) {
		s.mu.Lock()
		if s.live[sess.clientID] == sess {
			delete(s.live, sess.clientID)
			s.tel.LiveClients.Set(int64(len(s.live)))
		}
		s.mu.Unlock()
		sess.conn.Close()
		s.tel.ClientsEvicted.Inc()
		report.Dropped = append(report.Dropped, sess.clientID)
		if err != nil {
			errs = append(errs, fmt.Errorf("client %d: %w", sess.clientID, err))
		}
	}
	// refillOne replaces an evicted or straggling cohort member with the
	// next id in the deterministic draw, keeping the round on course for
	// quorum instead of stalling.
	refillOne := func() bool {
		if !refill || len(queue) == 0 {
			return false
		}
		next := queue[0]
		queue = queue[1:]
		report.Sampled = append(report.Sampled, next.clientID)
		s.tel.SampleReplacements.Inc()
		launch(next)
		return true
	}
	// restartDeadline gives freshly launched replacements their own
	// collection window; safe to Reset because the timer has fired and its
	// channel was drained whenever deadlineHit is true.
	restartDeadline := func() {
		if deadlineTimer == nil || !deadlineHit {
			return
		}
		deadlineHit = false
		deadlineTimer.Reset(s.cfg.RoundDeadline)
		deadlineCh = deadlineTimer.C
	}
	// reap consumes the n results still owed to the channel so abandoned
	// exchange goroutines can always complete their send and exit.
	reap := func(n int) {
		if n > 0 {
			go func() {
				for i := 0; i < n; i++ {
					<-results
				}
			}()
		}
	}
	// finish drains the exchanges still in flight after a quorum decision:
	// their sessions are evicted (closing the conn unblocks the exchange
	// goroutine) and a reaper consumes their results so nothing leaks.
	finish := func() ([]*fl.Update, RoundReport, error) {
		if pending > 0 {
			s.mu.Lock()
			stragglers := make([]*session, 0, pending)
			for sess := range included {
				if s.live[sess.clientID] == sess {
					stragglers = append(stragglers, sess)
				}
			}
			s.mu.Unlock()
			for _, sess := range stragglers {
				done := false
				for _, id := range report.Participants {
					if id == sess.clientID {
						done = true
						break
					}
				}
				if !done {
					s.tel.StragglersEvicted.Inc()
					evict(sess, fmt.Errorf("no update within round deadline %s", s.cfg.RoundDeadline))
				}
			}
			reap(pending)
		}
		report.Timing.Wait = time.Since(roundStart)
		s.tel.RoundBroadcastSeconds.Observe(report.Timing.Broadcast.Seconds())
		s.tel.RoundWaitSeconds.Observe(report.Timing.Wait.Seconds())
		report.Err = errors.Join(errs...)
		return updates, report, nil
	}

	for {
		if pending == 0 {
			if got >= s.cfg.MinClients {
				return finish()
			}
			// Below quorum with nothing in flight: resample a replacement
			// when the draw has any left; otherwise, without a deadline the
			// round can never recover — with one, a rejoining client may
			// still push the round to quorum before the deadline.
			if !refillOne() && (deadlineCh == nil || deadlineHit) {
				report.Err = errors.Join(errs...)
				return nil, report, fmt.Errorf("quorum not met: %d/%d updates: %w", got, s.cfg.MinClients, report.Err)
			}
		}
		select {
		case <-ctx.Done():
			reap(pending)
			report.Err = errors.Join(errs...)
			return nil, report, ctx.Err()
		case <-s.drainKill:
			// The drain deadline expired: abort the round. In-flight
			// exchanges are reaped; their sessions close with the rest of
			// the live set when Run returns.
			reap(pending)
			report.Err = errors.Join(errs...)
			return nil, report, ErrDraining
		case res := <-results:
			pending--
			if res.sendDur > report.Timing.Broadcast {
				report.Timing.Broadcast = res.sendDur
			}
			switch {
			case res.err != nil:
				evict(res.sess, res.err)
				if refillOne() {
					restartDeadline()
				}
			case streaming:
				// Screen and fold immediately, then recycle the buffer. The
				// screen's verdicts land in the post-round report exactly
				// like the materialized path (applyScreenOutcome); a fold
				// error is structural, so the sender is evicted.
				_, err := s.core.Offer(res.u)
				PutState(res.u.State)
				res.u.State = nil
				if err != nil {
					evict(res.sess, err)
					if refillOne() {
						restartDeadline()
					}
					break
				}
				got++
				report.Participants = append(report.Participants, res.sess.clientID)
			default:
				updates = append(updates, res.u)
				got++
				report.Participants = append(report.Participants, res.sess.clientID)
			}
			if deadlineHit && got >= s.cfg.MinClients {
				return finish()
			}
			if pending == 0 && got >= s.cfg.MinClients {
				return finish()
			}
		case sess := <-s.joinCh:
			if sampling || included[sess] {
				// Sampled rounds take rejoiners from the next round's draw;
				// the session is already in the live set.
				break
			}
			launch(sess)
		case <-deadlineCh:
			deadlineHit = true
			deadlineCh = nil
			if got >= s.cfg.MinClients {
				return finish()
			}
			// Below quorum at the deadline: pessimistically assume the
			// stragglers never report and resample enough replacements to
			// reach quorum, with a fresh collection window.
			launched := 0
			for got+launched < s.cfg.MinClients && refillOne() {
				launched++
			}
			if launched > 0 {
				s.logf(round, -1, "flnet: round %d: deadline passed below quorum (%d/%d); resampled %d replacements",
					round, got, s.cfg.MinClients, launched)
				restartDeadline()
			}
		}
	}
}

// runRoundAsync is the buffered asynchronous variant of runRound: exchange
// results flow through the server-lifetime asyncCh, and stragglers are
// never evicted at a round boundary — their updates surface in a later
// round, weighted down by age (fl.StalenessWeight), until they exceed
// AsyncStaleness rounds and are dropped. The round completes as soon as
// MinClients updates (buffered or fresh) are accepted.
func (s *Server) runRoundAsync(ctx context.Context, round int) ([]*fl.Update, RoundReport, error) {
	bc := s.prepareBroadcast(round)
	report := RoundReport{Round: round}
	roundStart := time.Now()
	streaming := s.streamAgg != nil
	sampling := s.cfg.SampleSize > 0

	var (
		updates []*fl.Update
		errs    []error
		got     int
	)
	evict := func(sess *session, err error) {
		s.mu.Lock()
		if s.live[sess.clientID] == sess {
			delete(s.live, sess.clientID)
			s.tel.LiveClients.Set(int64(len(s.live)))
		}
		s.mu.Unlock()
		sess.conn.Close()
		s.tel.ClientsEvicted.Inc()
		report.Dropped = append(report.Dropped, sess.clientID)
		if err != nil {
			errs = append(errs, fmt.Errorf("client %d: %w", sess.clientID, err))
		}
	}
	// accept folds one update into the round, weighted by its age in
	// rounds; too-stale updates are dropped. sess is nil for updates
	// restored from a checkpoint.
	accept := func(u *fl.Update, sess *session) {
		staleness := round - u.Round
		if staleness > s.cfg.AsyncStaleness {
			PutState(u.State)
			u.State = nil
			s.tel.AsyncStaleDropped.Inc()
			s.logf(round, u.ClientID, "flnet: round %d: dropped update from client %d: %d rounds stale (max %d)",
				round, u.ClientID, staleness, s.cfg.AsyncStaleness)
			return
		}
		u.Staleness = staleness
		if streaming {
			_, err := s.core.Offer(u)
			PutState(u.State)
			u.State = nil
			if err != nil {
				if sess != nil {
					evict(sess, err)
				}
				return
			}
		} else {
			updates = append(updates, u)
		}
		got++
		report.Participants = append(report.Participants, u.ClientID)
		if staleness > 0 {
			report.Stale++
			s.tel.AsyncStaleAccepted.Inc()
		}
	}

	// Sweep results that arrived since the last round closed into the
	// buffer, then fold the whole buffer (each entry either counts toward
	// this round's quorum or ages out).
	consumeResult := func(res result) {
		if s.busy[res.sess.clientID] == res.sess {
			delete(s.busy, res.sess.clientID)
		}
		if res.sendDur > report.Timing.Broadcast {
			report.Timing.Broadcast = res.sendDur
		}
		if res.err != nil {
			evict(res.sess, res.err)
			return
		}
		s.asyncBuf = append(s.asyncBuf, res.u)
	}
sweep:
	for {
		select {
		case res := <-s.asyncCh:
			consumeResult(res)
		default:
			break sweep
		}
	}
	counted := make(map[int]bool, len(s.asyncBuf))
	for _, u := range s.asyncBuf {
		counted[u.ClientID] = true
		accept(u, nil)
	}
	s.asyncBuf = s.asyncBuf[:0]

	// Launch this round's cohort among clients with no exchange in flight
	// and no update already counted this round. The broadcast always goes
	// out — even when the buffer alone met quorum — so the fleet keeps
	// training; fresh results that miss this round's close are buffered
	// for the next.
	exclude := make(map[int]bool, len(s.busy)+len(counted))
	for id := range s.busy {
		exclude[id] = true
	}
	for id := range counted {
		exclude[id] = true
	}
	cohort, queue, cohortIDs := s.sampleCohort(round, exclude)
	if sampling {
		report.Sampled = append([]int(nil), cohortIDs...)
	}
	launch := func(sess *session) {
		s.busy[sess.clientID] = sess
		go func() {
			u, sendDur, err := s.exchange(sess, round, bc, nil)
			s.asyncCh <- result{sess: sess, u: u, err: err, sendDur: sendDur}
		}()
	}
	for _, sess := range cohort {
		launch(sess)
	}

	refill := sampling
	refillOne := func() bool {
		if !refill || len(queue) == 0 {
			return false
		}
		next := queue[0]
		queue = queue[1:]
		report.Sampled = append(report.Sampled, next.clientID)
		s.tel.SampleReplacements.Inc()
		launch(next)
		return true
	}

	var deadlineTimer *time.Timer
	var deadlineCh <-chan time.Time
	deadlineHit := false
	if s.cfg.RoundDeadline > 0 {
		deadlineTimer = time.NewTimer(s.cfg.RoundDeadline)
		defer deadlineTimer.Stop()
		deadlineCh = deadlineTimer.C
	}
	restartDeadline := func() {
		if deadlineTimer == nil || !deadlineHit {
			return
		}
		deadlineHit = false
		deadlineTimer.Reset(s.cfg.RoundDeadline)
		deadlineCh = deadlineTimer.C
	}

	finish := func() ([]*fl.Update, RoundReport, error) {
		report.Timing.Wait = time.Since(roundStart)
		s.tel.RoundBroadcastSeconds.Observe(report.Timing.Broadcast.Seconds())
		s.tel.RoundWaitSeconds.Observe(report.Timing.Wait.Seconds())
		s.tel.AsyncBuffered.Set(int64(len(s.asyncBuf)))
		report.Err = errors.Join(errs...)
		return updates, report, nil
	}

	for {
		if got >= s.cfg.MinClients {
			return finish()
		}
		// Below quorum with no exchange in flight anywhere: resample if the
		// draw has anyone left, otherwise nothing can ever arrive.
		if len(s.busy) == 0 && !refillOne() {
			report.Err = errors.Join(errs...)
			return nil, report, fmt.Errorf("quorum not met: %d/%d updates: %w", got, s.cfg.MinClients, report.Err)
		}
		select {
		case <-ctx.Done():
			report.Err = errors.Join(errs...)
			return nil, report, ctx.Err()
		case <-s.drainKill:
			report.Err = errors.Join(errs...)
			return nil, report, ErrDraining
		case res := <-s.asyncCh:
			if s.busy[res.sess.clientID] == res.sess {
				delete(s.busy, res.sess.clientID)
			}
			if res.sendDur > report.Timing.Broadcast {
				report.Timing.Broadcast = res.sendDur
			}
			if res.err != nil {
				evict(res.sess, res.err)
				if refillOne() {
					restartDeadline()
				}
				break
			}
			accept(res.u, res.sess)
		case <-s.joinCh:
			// Rejoiners become eligible at the next round's draw; the
			// session is already in the live set.
		case <-deadlineCh:
			deadlineHit = true
			deadlineCh = nil
			// Stragglers are not evicted in async mode — their updates are
			// still welcome later — but below quorum the round resamples
			// replacements rather than waiting on them.
			launched := 0
			for got+launched < s.cfg.MinClients && refillOne() {
				launched++
			}
			if launched > 0 {
				s.logf(round, -1, "flnet: round %d: deadline passed below quorum (%d/%d); resampled %d replacements",
					round, got, s.cfg.MinClients, launched)
				restartDeadline()
			}
		}
	}
}

// applyScreenOutcome merges the round's screening report (if any) into the
// cohort report and evicts the sessions of rejected clients: a poisoner is
// disconnected like any other protocol violator. It may rejoin via the
// resync path, but while its quarantine penalty lasts its updates keep
// being excluded from aggregation.
func (s *Server) applyScreenOutcome(round int, report *RoundReport) {
	rep, ok := s.core.LastScreenReport()
	if !ok || rep.Round != round {
		return
	}
	report.Rejected = rep.RejectedIDs()
	report.Quarantined = append([]int(nil), rep.Quarantined...)
	report.Clipped = append([]int(nil), rep.Clipped...)
	excluded := make(map[int]bool, len(report.Rejected)+len(report.Quarantined))
	for _, id := range report.Rejected {
		excluded[id] = true
	}
	for _, id := range report.Quarantined {
		excluded[id] = true
	}
	if len(excluded) == 0 {
		return
	}
	participants := report.Participants[:0]
	for _, id := range report.Participants {
		if !excluded[id] {
			participants = append(participants, id)
		}
	}
	report.Participants = participants
	for _, v := range rep.Rejected {
		s.mu.Lock()
		sess := s.live[v.ClientID]
		if sess != nil {
			delete(s.live, v.ClientID)
			s.tel.LiveClients.Set(int64(len(s.live)))
		}
		s.mu.Unlock()
		if sess != nil {
			sess.conn.Close()
			s.tel.ClientsEvicted.Inc()
			report.Dropped = append(report.Dropped, v.ClientID)
			s.logf(round, v.ClientID, "flnet: round %d: evicted client %d: %s", round, v.ClientID, v.Reason)
		}
	}
	if len(rep.NewlyQuarantined) > 0 {
		s.logf(round, -1, "flnet: round %d: quarantined clients %v", round, rep.NewlyQuarantined)
	}
}

// exchange sends the round's global state (with the sampled cohort attached
// when the defense needs it) and reads the client's update into a pooled
// state buffer — ownership of the buffer passes to the returned Update and
// back to the pool once the server is done with it. sendDur is how long the
// send took (valid even on a failed exchange, as long as the send itself
// completed).
func (s *Server) exchange(sess *session, round int, bc broadcast, cohort []int) (u *fl.Update, sendDur time.Duration, err error) {
	global := bc.state
	sendStart := time.Now()
	if err := s.send(sess, &Message{Kind: KindGlobal, Round: round, State: global, Cohort: cohort, Canon: bc.canon}); err != nil {
		return nil, 0, err
	}
	// The peer now holds (or will decode) round's canonical broadcast:
	// advance its anchor so its quantized upload resolves this round's base
	// and the next Global can delta against it. A peer that failed to
	// process the send errors the read below and is evicted either way.
	sess.anchor = round
	sendDur = time.Since(sendStart)
	sess.conn.SetReadDeadline(time.Now().Add(s.cfg.IOTimeout))
	msg := &Message{State: GetState()}
	if err := ReadMessageWith(sess.conn, msg, sess.codec); err != nil {
		PutState(msg.State)
		return nil, sendDur, err
	}
	fail := func(format string, args ...any) (*fl.Update, time.Duration, error) {
		PutState(msg.State)
		return nil, sendDur, fmt.Errorf(format, args...)
	}
	switch msg.Kind {
	case KindUpdate:
	case KindError:
		return fail("client reported: %s", msg.Err)
	default:
		return fail("unexpected %v frame", msg.Kind)
	}
	if msg.Round != round {
		return fail("update for round %d during round %d", msg.Round, round)
	}
	// Structural wire validation: a mis-sized vector or negative weight can
	// only come from a broken or malicious peer; fail the exchange (and
	// evict) instead of letting it reach the aggregation path.
	if len(msg.State) != len(global) {
		return fail("update state has %d values, want %d", len(msg.State), len(global))
	}
	if msg.NumSamples < 0 {
		return fail("update carries negative sample count %d", msg.NumSamples)
	}
	return &fl.Update{
		ClientID:   sess.clientID,
		Round:      msg.Round,
		State:      msg.State,
		NumSamples: msg.NumSamples,
	}, sendDur, nil
}

func (s *Server) send(sess *session, msg *Message) error {
	sess.conn.SetWriteDeadline(time.Now().Add(s.cfg.IOTimeout))
	return WriteMessageWith(sess.conn, msg, sess.codec)
}

func (s *Server) sendError(conn net.Conn, text string) {
	conn.SetWriteDeadline(time.Now().Add(s.cfg.IOTimeout))
	// Best effort: the registrant is being rejected anyway.
	_ = WriteMessage(conn, &Message{Kind: KindError, Err: text})
}
