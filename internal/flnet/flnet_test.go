package flnet

import (
	"bytes"
	"context"
	"math"
	"math/rand"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/defense"
	"repro/internal/fl"
	"repro/internal/model"
	"repro/internal/optim"
)

func TestWireRoundTrip(t *testing.T) {
	msg := &Message{
		Kind:       KindUpdate,
		ClientID:   3,
		Round:      7,
		State:      []float64{1.5, -2.25, 0},
		NumSamples: 42,
	}
	var buf bytes.Buffer
	if err := WriteMessage(&buf, msg); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMessage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != msg.Kind || got.ClientID != 3 || got.Round != 7 || got.NumSamples != 42 {
		t.Fatalf("round trip: %+v", got)
	}
	for i := range msg.State {
		if got.State[i] != msg.State[i] {
			t.Fatal("state corrupted")
		}
	}
}

func TestWireRejectsBadFrames(t *testing.T) {
	// Truncated header.
	if _, err := ReadMessage(bytes.NewReader([]byte{0, 0})); err == nil {
		t.Fatal("accepted truncated header")
	}
	// Zero-length frame.
	if _, err := ReadMessage(bytes.NewReader([]byte{0, 0, 0, 0})); err == nil {
		t.Fatal("accepted zero-length frame")
	}
	// Oversized frame.
	if _, err := ReadMessage(bytes.NewReader([]byte{0xFF, 0xFF, 0xFF, 0xFF})); err == nil {
		t.Fatal("accepted oversized frame")
	}
	// Garbage payload.
	if _, err := ReadMessage(bytes.NewReader([]byte{0, 0, 0, 3, 1, 2, 3})); err == nil {
		t.Fatal("accepted garbage payload")
	}
}

func TestKindString(t *testing.T) {
	for _, k := range []Kind{KindHello, KindGlobal, KindUpdate, KindDone, KindError} {
		if k.String() == "" {
			t.Fatal("empty kind string")
		}
	}
	if Kind(99).String() == "" {
		t.Fatal("unknown kind should render")
	}
}

// federation spins up a real TCP server plus numClients goroutine clients
// and runs the complete protocol.
func federation(t *testing.T, defenseName string, numClients, rounds int) ([]float64, []*fl.Client) {
	chaos.GuardTest(t, 10*time.Second)
	t.Helper()
	const seed = 5
	spec, err := data.Lookup("purchase100")
	if err != nil {
		t.Fatal(err)
	}
	spec.Records = 400
	ds, err := data.Generate(spec, seed)
	if err != nil {
		t.Fatal(err)
	}
	split := data.NewFLSplit(ds, rand.New(rand.NewSource(seed)))
	shards, err := data.PartitionIID(split.Train, numClients, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}

	newDef := func() fl.Defense {
		d, err := defense.New(defenseName, seed, numClients)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	m0, err := model.Build(spec, rand.New(rand.NewSource(seed+2)))
	if err != nil {
		t.Fatal(err)
	}
	serverDef := newDef()
	if err := serverDef.Bind(fl.InfoOf(m0)); err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(ServerConfig{
		Addr:         "127.0.0.1:0",
		NumClients:   numClients,
		Rounds:       rounds,
		Defense:      serverDef,
		InitialState: m0.StateVector(),
		IOTimeout:    30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	type serverOut struct {
		state []float64
		err   error
	}
	srvCh := make(chan serverOut, 1)
	go func() {
		state, err := srv.Run(ctx)
		srvCh <- serverOut{state: state, err: err}
	}()

	trainers := make([]*fl.Client, numClients)
	var wg sync.WaitGroup
	errCh := make(chan error, numClients)
	for i := 0; i < numClients; i++ {
		m, err := model.Build(spec, rand.New(rand.NewSource(seed+2)))
		if err != nil {
			t.Fatal(err)
		}
		trainer, err := fl.NewClient(i, m, shards[i], optim.NewSGD(0.1, 0), 32, 1,
			rand.New(rand.NewSource(seed+100+int64(i))))
		if err != nil {
			t.Fatal(err)
		}
		trainers[i] = trainer
		clientDef := newDef()
		if err := clientDef.Bind(fl.InfoOf(m)); err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(trainer *fl.Client, def fl.Defense) {
			defer wg.Done()
			_, err := RunClient(ctx, ClientConfig{
				Addr:    srv.Addr().String(),
				Trainer: trainer,
				Defense: def,
			})
			if err != nil {
				errCh <- err
			}
		}(trainer, clientDef)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	out := <-srvCh
	if out.err != nil {
		t.Fatal(out.err)
	}
	return out.state, trainers
}

func TestFederationOverTCPNoDefense(t *testing.T) {
	state, trainers := federation(t, "none", 3, 2)
	if len(state) == 0 {
		t.Fatal("empty final state")
	}
	// Final state must differ from a fresh model (training happened).
	fresh, _ := model.Build(data.Registry["purchase100"], rand.New(rand.NewSource(7)))
	if len(state) != fresh.NumState() {
		t.Fatalf("state length %d, want %d", len(state), fresh.NumState())
	}
	for _, trainer := range trainers {
		if trainer.Model == nil {
			t.Fatal("trainer lost its model")
		}
	}
}

func TestFederationOverTCPDINAR(t *testing.T) {
	state, trainers := federation(t, "dinar", 3, 3)
	// With DINAR the final models of clients differ from the global state at
	// the private layer: each trainer restored its own private copy.
	spec := data.Registry["purchase100"]
	m, err := model.Build(spec, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	spans := m.Spans()
	sp := spans[len(spans)-2]
	for i, trainer := range trainers {
		local := trainer.Model.StateVector()
		same := 0
		for j := sp.Offset; j < sp.Offset+sp.Len; j++ {
			if local[j] == state[j] {
				same++
			}
		}
		if same > sp.Len/10 {
			t.Fatalf("client %d private layer matches obfuscated global (%d/%d)", i, same, sp.Len)
		}
	}
}

func TestFederationOverTCPMatchesInProcess(t *testing.T) {
	// The TCP federation and the in-process system implement the same
	// pipeline; with identical seeds and defense "none" they must produce
	// the same number of state values and both train to a changed state.
	state, _ := federation(t, "none", 2, 2)
	if math.IsNaN(state[0]) {
		t.Fatal("NaN in final state")
	}
}

func TestServerConfigValidation(t *testing.T) {
	if _, err := NewServer(ServerConfig{NumClients: 0, Rounds: 1, Defense: defense.NewNone(), InitialState: []float64{1}}); err == nil {
		t.Fatal("accepted zero clients")
	}
	if _, err := NewServer(ServerConfig{NumClients: 1, Rounds: 0, Defense: defense.NewNone(), InitialState: []float64{1}}); err == nil {
		t.Fatal("accepted zero rounds")
	}
	if _, err := NewServer(ServerConfig{Addr: "127.0.0.1:0", NumClients: 1, Rounds: 1, InitialState: []float64{1}}); err == nil {
		t.Fatal("accepted nil defense")
	}
	if _, err := NewServer(ServerConfig{Addr: "127.0.0.1:0", NumClients: 1, Rounds: 1, Defense: defense.NewNone()}); err == nil {
		t.Fatal("accepted empty state")
	}
}

func TestClientConfigValidation(t *testing.T) {
	ctx := context.Background()
	if _, err := RunClient(ctx, ClientConfig{Addr: "127.0.0.1:1"}); err == nil {
		t.Fatal("accepted nil trainer/defense")
	}
}

func TestClientDialFailure(t *testing.T) {
	spec := data.Registry["purchase100"]
	spec.Records = 50
	ds, _ := data.Generate(spec, 1)
	m, _ := model.Build(spec, rand.New(rand.NewSource(1)))
	trainer, err := fl.NewClient(0, m, ds, optim.NewSGD(0.1, 0), 16, 1, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	d := core.New(1)
	if err := d.Bind(fl.InfoOf(m)); err != nil {
		t.Fatal(err)
	}
	// Dial a port that is almost certainly closed.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := RunClient(ctx, ClientConfig{Addr: addr, Trainer: trainer, Defense: d, MaxRetries: -1}); err == nil {
		t.Fatal("connected to a closed port")
	}
}

func TestServerRejectsDuplicateClientIDs(t *testing.T) {
	chaos.GuardTest(t, 10*time.Second)
	m0, _ := model.Build(data.Registry["purchase100"], rand.New(rand.NewSource(1)))
	def := defense.NewNone()
	if err := def.Bind(fl.InfoOf(m0)); err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(ServerConfig{
		Addr:         "127.0.0.1:0",
		NumClients:   2,
		Rounds:       1,
		Defense:      def,
		InitialState: m0.StateVector(),
		IOTimeout:    10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	go srv.Run(ctx) //nolint:errcheck // failure surfaces through the dials below

	dial := func(id int) net.Conn {
		conn, err := net.Dial("tcp", srv.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		if err := WriteMessage(conn, &Message{Kind: KindHello, ClientID: id, Version: ProtocolVersion}); err != nil {
			t.Fatal(err)
		}
		return conn
	}
	c1 := dial(0)
	defer c1.Close()
	c2 := dial(0) // duplicate id: must be rejected with an error frame
	defer c2.Close()
	c2.SetReadDeadline(time.Now().Add(10 * time.Second))
	msg, err := ReadMessage(c2)
	if err != nil {
		t.Fatalf("expected error frame, got %v", err)
	}
	if msg.Kind != KindError {
		t.Fatalf("expected KindError, got %v", msg.Kind)
	}
	cancel()
}

func TestServerSurfacesClientFailureMidRound(t *testing.T) {
	chaos.GuardTest(t, 10*time.Second)
	m0, _ := model.Build(data.Registry["purchase100"], rand.New(rand.NewSource(1)))
	def := defense.NewNone()
	if err := def.Bind(fl.InfoOf(m0)); err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(ServerConfig{
		Addr:         "127.0.0.1:0",
		NumClients:   1,
		Rounds:       3,
		Defense:      def,
		InitialState: m0.StateVector(),
		IOTimeout:    5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	done := make(chan error, 1)
	go func() {
		_, err := srv.Run(ctx)
		done <- err
	}()
	// Register, receive the first global model, then vanish.
	conn, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteMessage(conn, &Message{Kind: KindHello, ClientID: 0, Version: ProtocolVersion}); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadMessage(conn); err != nil {
		t.Fatal(err)
	}
	conn.Close()
	if err := <-done; err == nil {
		t.Fatal("server should fail when its only client disconnects mid-round")
	}
}

func TestServerSurfacesClientErrorFrame(t *testing.T) {
	chaos.GuardTest(t, 10*time.Second)
	m0, _ := model.Build(data.Registry["purchase100"], rand.New(rand.NewSource(1)))
	def := defense.NewNone()
	if err := def.Bind(fl.InfoOf(m0)); err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(ServerConfig{
		Addr:         "127.0.0.1:0",
		NumClients:   1,
		Rounds:       1,
		Defense:      def,
		InitialState: m0.StateVector(),
		IOTimeout:    5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	done := make(chan error, 1)
	go func() {
		_, err := srv.Run(ctx)
		done <- err
	}()
	conn, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := WriteMessage(conn, &Message{Kind: KindHello, ClientID: 0, Version: ProtocolVersion}); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadMessage(conn); err != nil {
		t.Fatal(err)
	}
	if err := WriteMessage(conn, &Message{Kind: KindError, Err: "local training exploded"}); err != nil {
		t.Fatal(err)
	}
	err = <-done
	if err == nil || !strings.Contains(err.Error(), "exploded") {
		t.Fatalf("server error = %v, want the client's message", err)
	}
}
