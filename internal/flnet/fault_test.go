package flnet

import (
	"bytes"
	"context"
	"math"
	"math/rand"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/adversary"
	"repro/internal/chaos"
	"repro/internal/data"
	"repro/internal/defense"
	"repro/internal/faultnet"
	"repro/internal/fl"
	"repro/internal/model"
	"repro/internal/optim"
)

// The fault tests prove the federation's tolerance guarantees end to end:
// quorum rounds survive killed clients, stragglers are evicted at the
// round deadline and can rejoin, reset connections reconnect with backoff
// without changing the result, and a server restarted from a checkpoint
// converges to the same state as an uninterrupted run.

const fbSeed = 11

// fedBed holds the deterministic data/model fixtures shared by one
// federation test (fresh trainer instances are built per run).
type fedBed struct {
	t          *testing.T
	spec       data.Spec
	shards     []*data.Dataset
	split      *data.FLSplit
	numClients int
}

func newFedBed(t *testing.T, numClients int) *fedBed {
	t.Helper()
	spec, err := data.Lookup("purchase100")
	if err != nil {
		t.Fatal(err)
	}
	spec.Records = 400
	ds, err := data.Generate(spec, fbSeed)
	if err != nil {
		t.Fatal(err)
	}
	split := data.NewFLSplit(ds, rand.New(rand.NewSource(fbSeed)))
	shards, err := data.PartitionIID(split.Train, numClients, rand.New(rand.NewSource(fbSeed)))
	if err != nil {
		t.Fatal(err)
	}
	return &fedBed{t: t, spec: spec, shards: shards, split: split, numClients: numClients}
}

// trainer builds a fresh trainer for client id, identical across runs.
func (b *fedBed) trainer(id int) *fl.Client {
	b.t.Helper()
	m, err := model.Build(b.spec, rand.New(rand.NewSource(fbSeed+2)))
	if err != nil {
		b.t.Fatal(err)
	}
	tr, err := fl.NewClient(id, m, b.shards[id], optim.NewSGD(0.1, 0), 32, 1,
		rand.New(rand.NewSource(fbSeed+100+int64(id))))
	if err != nil {
		b.t.Fatal(err)
	}
	return tr
}

// defense builds and binds a fresh defense instance, identical across runs.
func (b *fedBed) defense(name string) fl.Defense {
	b.t.Helper()
	d, err := defense.New(name, fbSeed, b.numClients)
	if err != nil {
		b.t.Fatal(err)
	}
	m, err := model.Build(b.spec, rand.New(rand.NewSource(fbSeed+2)))
	if err != nil {
		b.t.Fatal(err)
	}
	if err := d.Bind(fl.InfoOf(m)); err != nil {
		b.t.Fatal(err)
	}
	return d
}

// initialState is the federation's round-0 global model.
func (b *fedBed) initialState() []float64 {
	b.t.Helper()
	m, err := model.Build(b.spec, rand.New(rand.NewSource(fbSeed+2)))
	if err != nil {
		b.t.Fatal(err)
	}
	return m.StateVector()
}

// startServer launches cfg's server on a fault-injecting listener and
// returns the server plus a channel carrying Run's outcome.
type serverOutcome struct {
	state []float64
	err   error
}

func startServer(t *testing.T, ctx context.Context, cfg ServerConfig, schedule faultnet.Schedule) (*Server, *faultnet.Listener, chan serverOutcome) {
	t.Helper()
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln := faultnet.Listen(inner, schedule)
	cfg.Listener = ln
	srv, err := NewServer(cfg)
	if err != nil {
		inner.Close()
		t.Fatal(err)
	}
	out := make(chan serverOutcome, 1)
	go func() {
		state, err := srv.Run(ctx)
		out <- serverOutcome{state: state, err: err}
	}()
	return srv, ln, out
}

func containsID(ids []int, id int) bool {
	for _, v := range ids {
		if v == id {
			return true
		}
	}
	return false
}

// TestQuorumSurvivesKilledClient is the acceptance scenario: a federation
// of 4 clients with MinClients=3 completes every round even though one
// client dies mid-training in round 0.
func TestQuorumSurvivesKilledClient(t *testing.T) {
	const (
		numClients = 4
		rounds     = 3
		killedID   = 3
	)
	bed := newFedBed(t, numClients)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	srv, _, srvOut := startServer(t, ctx, ServerConfig{
		NumClients:    numClients,
		MinClients:    3,
		Rounds:        rounds,
		RoundDeadline: 10 * time.Second,
		Defense:       bed.defense("none"),
		InitialState:  bed.initialState(),
		IOTimeout:     30 * time.Second,
	}, nil)

	// The doomed client registers, receives the round-0 global model, and
	// dies while "training" (it never sends an update).
	killed := make(chan struct{})
	go func() {
		defer close(killed)
		conn, err := net.Dial("tcp", srv.Addr().String())
		if err != nil {
			t.Error(err)
			return
		}
		defer conn.Close()
		if err := WriteMessage(conn, &Message{Kind: KindHello, ClientID: killedID, Version: ProtocolVersion, LastRound: -1}); err != nil {
			t.Error(err)
			return
		}
		conn.SetReadDeadline(time.Now().Add(20 * time.Second))
		if _, err := ReadMessage(conn); err != nil {
			t.Errorf("killed client never saw round 0: %v", err)
		}
	}()

	var wg sync.WaitGroup
	errCh := make(chan error, numClients)
	for id := 0; id < numClients-1; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			_, err := RunClient(ctx, ClientConfig{
				Addr:    srv.Addr().String(),
				Trainer: bed.trainer(id),
				Defense: bed.defense("none"),
			})
			if err != nil {
				errCh <- err
			}
		}(id)
	}
	wg.Wait()
	<-killed
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	out := <-srvOut
	if out.err != nil {
		t.Fatalf("federation failed: %v", out.err)
	}
	reports := srv.Reports()
	if len(reports) != rounds {
		t.Fatalf("got %d round reports, want %d", len(reports), rounds)
	}
	if !containsID(reports[0].Dropped, killedID) {
		t.Fatalf("round 0 report should record client %d as dropped: %+v", killedID, reports[0])
	}
	if reports[0].Err == nil {
		t.Fatal("round 0 report should join the killed client's error")
	}
	for _, r := range reports {
		if len(r.Participants) < 3 {
			t.Fatalf("round %d aggregated %d updates, want >= quorum 3", r.Round, len(r.Participants))
		}
	}
}

// TestRoundDeadlineEvictsStraggler proves deadline-based eviction: a
// client whose connection is artificially slow misses the round deadline,
// the round aggregates with the quorum, and the straggler is dropped.
func TestRoundDeadlineEvictsStraggler(t *testing.T) {
	const stragglerID = 1
	bed := newFedBed(t, 2)
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	// The first accepted connection (the straggler registers first, see
	// below) delays every server-side read by 2s, far past the deadline.
	schedule := func(i int) faultnet.Plan {
		if i == 0 {
			return faultnet.Plan{Kind: faultnet.Delay, Delay: 2 * time.Second}
		}
		return faultnet.Plan{}
	}
	srv, ln, srvOut := startServer(t, ctx, ServerConfig{
		NumClients:    2,
		MinClients:    1,
		Rounds:        1,
		RoundDeadline: 400 * time.Millisecond,
		Defense:       bed.defense("none"),
		InitialState:  bed.initialState(),
		IOTimeout:     30 * time.Second,
	}, schedule)

	var wg sync.WaitGroup
	runClient := func(id int) {
		defer wg.Done()
		// The straggler's outcome is timing-dependent (it may rejoin just
		// in time for Done or give up against the closed listener), so
		// only the fast client's error is asserted.
		_, err := RunClient(ctx, ClientConfig{
			Addr:        srv.Addr().String(),
			Trainer:     bed.trainer(id),
			Defense:     bed.defense("none"),
			MaxRetries:  2,
			BaseBackoff: 20 * time.Millisecond,
		})
		if id != stragglerID && err != nil {
			t.Errorf("client %d: %v", id, err)
		}
	}
	wg.Add(1)
	go runClient(stragglerID)
	for ln.Accepted() == 0 {
		time.Sleep(5 * time.Millisecond)
	}
	wg.Add(1)
	go runClient(0)

	out := <-srvOut
	if out.err != nil {
		t.Fatalf("federation failed: %v", out.err)
	}
	reports := srv.Reports()
	if len(reports) != 1 {
		t.Fatalf("got %d reports, want 1", len(reports))
	}
	if !containsID(reports[0].Dropped, stragglerID) {
		t.Fatalf("straggler should be dropped at the deadline: %+v", reports[0])
	}
	if !containsID(reports[0].Participants, 0) {
		t.Fatalf("fast client should have participated: %+v", reports[0])
	}
	wg.Wait()
}

// TestDroppedClientRejoinsMidRound proves reconnect-and-resync: client 1's
// first connection dies right after registration, the round blocks below
// v3HandshakeLen returns the exact byte count a default RunClient
// registration crosses on the wire — the capability-advertising hello plus
// the server's KindWire ack (a default server offers CapBinary alone) — so
// DropAfter plans can kill a connection on the first post-registration
// byte.
func v3HandshakeLen(t *testing.T, clientID int) int {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteMessage(&buf, &Message{Kind: KindHello, ClientID: clientID, Version: ProtocolVersion, LastRound: -1, WireCaps: ClientCaps}); err != nil {
		t.Fatal(err)
	}
	if err := WriteMessage(&buf, &Message{Kind: KindWire, Version: ProtocolVersion, WireCaps: CapBinary}); err != nil {
		t.Fatal(err)
	}
	return buf.Len()
}

// quorum, and the client's reconnection (with backoff) is resynced into
// the *current* round, which then completes with the full cohort.
func TestDroppedClientRejoinsMidRound(t *testing.T) {
	const rejoinID = 1
	// The rejoin machinery spawns acceptor and registration goroutines;
	// the guard proves the run winds all of them down.
	chaos.GuardTest(t, 10*time.Second)
	bed := newFedBed(t, 2)
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	// Compute the exact wire size of client 1's registration handshake so
	// its first connection dies on the very next byte after it.
	handshake := v3HandshakeLen(t, rejoinID)
	schedule := func(i int) faultnet.Plan {
		if i == 0 {
			return faultnet.Plan{Kind: faultnet.DropAfter, Bytes: handshake}
		}
		return faultnet.Plan{}
	}
	srv, ln, srvOut := startServer(t, ctx, ServerConfig{
		NumClients:    2,
		MinClients:    2, // full quorum: the round must wait for the rejoin
		Rounds:        2,
		RoundDeadline: 30 * time.Second,
		Defense:       bed.defense("none"),
		InitialState:  bed.initialState(),
		IOTimeout:     30 * time.Second,
	}, schedule)

	var retries atomic.Int32
	var wg sync.WaitGroup
	errCh := make(chan error, 2)
	runClient := func(id int) {
		defer wg.Done()
		_, err := RunClient(ctx, ClientConfig{
			Addr:        srv.Addr().String(),
			Trainer:     bed.trainer(id),
			Defense:     bed.defense("none"),
			MaxRetries:  5,
			BaseBackoff: 20 * time.Millisecond,
			Logf: func(string, ...any) {
				retries.Add(1)
			},
		})
		if err != nil {
			errCh <- err
		}
	}
	wg.Add(1)
	go runClient(rejoinID)
	for ln.Accepted() == 0 {
		time.Sleep(5 * time.Millisecond)
	}
	wg.Add(1)
	go runClient(0)
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	out := <-srvOut
	if out.err != nil {
		t.Fatalf("federation failed: %v", out.err)
	}
	if retries.Load() == 0 {
		t.Fatal("the dropped client should have logged at least one retry")
	}
	reports := srv.Reports()
	if len(reports) != 2 {
		t.Fatalf("got %d reports, want 2", len(reports))
	}
	if !containsID(reports[0].Dropped, rejoinID) {
		t.Fatalf("round 0 should record the dead first connection: %+v", reports[0])
	}
	if !containsID(reports[0].Participants, rejoinID) {
		t.Fatalf("round 0 should include the rejoined client's update: %+v", reports[0])
	}
	if len(reports[1].Dropped) != 0 {
		t.Fatalf("round 1 should be clean: %+v", reports[1])
	}
}

// resettableRun runs a complete 2-client DINAR federation with the given
// fault schedule and returns the final global state plus each client's
// personalized accuracy.
func resettableRun(t *testing.T, bed *fedBed, schedule faultnet.Schedule, retries *atomic.Int32) ([]float64, [2]float64) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	srv, _, srvOut := startServer(t, ctx, ServerConfig{
		NumClients:   2,
		Rounds:       2,
		Defense:      bed.defense("dinar"),
		InitialState: bed.initialState(),
		IOTimeout:    30 * time.Second,
	}, schedule)

	trainers := [2]*fl.Client{bed.trainer(0), bed.trainer(1)}
	var wg sync.WaitGroup
	errCh := make(chan error, 2)
	for id := 0; id < 2; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			_, err := RunClient(ctx, ClientConfig{
				Addr:        srv.Addr().String(),
				Trainer:     trainers[id],
				Defense:     bed.defense("dinar"),
				MaxRetries:  5,
				BaseBackoff: 20 * time.Millisecond,
				Logf: func(string, ...any) {
					if retries != nil {
						retries.Add(1)
					}
				},
			})
			if err != nil {
				errCh <- err
			}
		}(id)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	out := <-srvOut
	if out.err != nil {
		t.Fatalf("federation failed: %v", out.err)
	}
	var accs [2]float64
	for id, tr := range trainers {
		acc, _, err := tr.Evaluate(bed.split.Test)
		if err != nil {
			t.Fatal(err)
		}
		accs[id] = acc
	}
	return out.state, accs
}

// TestResetClientReconnectsWithSameResult is the acceptance scenario: a
// client whose connection is reset reconnects with backoff and the
// federation finishes with exactly the personalized accuracy (and global
// state) of an undisturbed run.
func TestResetClientReconnectsWithSameResult(t *testing.T) {
	bed := newFedBed(t, 2)

	wantState, wantAccs := resettableRun(t, bed, nil, nil)

	// Fault run: the first accepted connection is reset before the server
	// can even read its hello, so one client must redial with backoff.
	var retries atomic.Int32
	schedule := func(i int) faultnet.Plan {
		if i == 0 {
			return faultnet.Plan{Kind: faultnet.Reset}
		}
		return faultnet.Plan{}
	}
	gotState, gotAccs := resettableRun(t, bed, schedule, &retries)

	if retries.Load() == 0 {
		t.Fatal("the reset client should have logged at least one retry")
	}
	if len(gotState) != len(wantState) {
		t.Fatalf("state lengths differ: %d vs %d", len(gotState), len(wantState))
	}
	for i := range wantState {
		if gotState[i] != wantState[i] {
			t.Fatalf("global state diverged at %d: %g vs %g", i, gotState[i], wantState[i])
		}
	}
	for id := range wantAccs {
		if gotAccs[id] != wantAccs[id] {
			t.Fatalf("client %d personalized accuracy diverged: %g vs %g", id, gotAccs[id], wantAccs[id])
		}
	}
}

// checkpointRun runs a 2-client defense-"none" federation for the given
// number of rounds against trainers, optionally checkpointing.
func checkpointRun(t *testing.T, bed *fedBed, trainers [2]*fl.Client, rounds int, ckptPath string) (*Server, []float64) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	srv, _, srvOut := startServer(t, ctx, ServerConfig{
		NumClients:     2,
		Rounds:         rounds,
		Defense:        bed.defense("none"),
		InitialState:   bed.initialState(),
		IOTimeout:      30 * time.Second,
		CheckpointPath: ckptPath,
		Dataset:        "purchase100",
	}, nil)
	var wg sync.WaitGroup
	errCh := make(chan error, 2)
	for id := 0; id < 2; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			_, err := RunClient(ctx, ClientConfig{
				Addr:    srv.Addr().String(),
				Trainer: trainers[id],
				Defense: bed.defense("none"),
			})
			if err != nil {
				errCh <- err
			}
		}(id)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	out := <-srvOut
	if out.err != nil {
		t.Fatalf("federation failed: %v", out.err)
	}
	return srv, out.state
}

// TestCheckpointResumeMatchesUninterruptedRun is the acceptance scenario:
// a server restarted from its checkpoint resumes at the next round and
// converges to the same final state as an uninterrupted run with the same
// seed.
func TestCheckpointResumeMatchesUninterruptedRun(t *testing.T) {
	const totalRounds = 3
	bed := newFedBed(t, 2)

	// Reference: one uninterrupted federation.
	refTrainers := [2]*fl.Client{bed.trainer(0), bed.trainer(1)}
	_, wantState := checkpointRun(t, bed, refTrainers, totalRounds, "")

	// Interrupted: the server "crashes" after round 1 (it runs a 1-round
	// federation with checkpointing), then a new server process resumes
	// from the snapshot and the same clients reconnect.
	ckpt := t.TempDir() + "/global.ckpt"
	trainers := [2]*fl.Client{bed.trainer(0), bed.trainer(1)}
	first, _ := checkpointRun(t, bed, trainers, 1, ckpt)
	if first.StartRound() != 0 {
		t.Fatalf("fresh server should start at round 0, got %d", first.StartRound())
	}
	resumed, gotState := checkpointRun(t, bed, trainers, totalRounds, ckpt)
	if resumed.StartRound() != 1 {
		t.Fatalf("resumed server should start at round 1, got %d", resumed.StartRound())
	}
	if len(resumed.Reports()) != totalRounds-1 {
		t.Fatalf("resumed server ran %d rounds, want %d", len(resumed.Reports()), totalRounds-1)
	}

	if len(gotState) != len(wantState) {
		t.Fatalf("state lengths differ: %d vs %d", len(gotState), len(wantState))
	}
	for i := range wantState {
		if gotState[i] != wantState[i] {
			t.Fatalf("resumed federation diverged at %d: %g vs %g", i, gotState[i], wantState[i])
		}
	}
	// The personalized models must match too.
	for id := range refTrainers {
		want, _, err := refTrainers[id].Evaluate(bed.split.Test)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := trainers[id].Evaluate(bed.split.Test)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("client %d accuracy diverged after resume: %g vs %g", id, got, want)
		}
	}
}

// TestDuplicateHelloPeerIsEvicted proves the server survives a protocol
// violator: a peer whose hello frame is duplicated registers fine but is
// evicted when the duplicate arrives in place of its round-0 update.
func TestDuplicateHelloPeerIsEvicted(t *testing.T) {
	const dupID = 1
	bed := newFedBed(t, 2)
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	srv, _, srvOut := startServer(t, ctx, ServerConfig{
		NumClients:    2,
		MinClients:    1,
		Rounds:        1,
		RoundDeadline: 10 * time.Second,
		Defense:       bed.defense("none"),
		InitialState:  bed.initialState(),
		IOTimeout:     20 * time.Second,
	}, nil)

	// The violator: its first write (the hello frame) is sent twice.
	done := make(chan struct{})
	go func() {
		defer close(done)
		raw, err := net.Dial("tcp", srv.Addr().String())
		if err != nil {
			t.Error(err)
			return
		}
		defer raw.Close()
		conn := faultnet.WrapConn(raw, faultnet.Plan{Kind: faultnet.Duplicate})
		if err := WriteMessage(conn, &Message{Kind: KindHello, ClientID: dupID, Version: ProtocolVersion, LastRound: -1}); err != nil {
			t.Error(err)
			return
		}
		conn.SetReadDeadline(time.Now().Add(20 * time.Second))
		ReadMessage(conn) //nolint:errcheck // round-0 global; the eviction closes the conn afterwards
		ReadMessage(conn) //nolint:errcheck
	}()

	if _, err := RunClient(ctx, ClientConfig{
		Addr:    srv.Addr().String(),
		Trainer: bed.trainer(0),
		Defense: bed.defense("none"),
	}); err != nil {
		t.Fatal(err)
	}
	out := <-srvOut
	if out.err != nil {
		t.Fatalf("federation failed: %v", out.err)
	}
	reports := srv.Reports()
	if !containsID(reports[0].Dropped, dupID) {
		t.Fatalf("duplicate-hello peer should be evicted: %+v", reports[0])
	}
	if reports[0].Err == nil || !strings.Contains(reports[0].Err.Error(), "unexpected") {
		t.Fatalf("report should explain the protocol violation, got %v", reports[0].Err)
	}
	cancel()
	<-done
}

// TestMalformedRegistrantGetsErrorFrame covers the hardened accept loop:
// garbage registrations receive a KindError frame and count toward the
// reject cap, which aborts registration when exceeded.
func TestMalformedRegistrantGetsErrorFrame(t *testing.T) {
	bed := newFedBed(t, 1)
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	srv, _, srvOut := startServer(t, ctx, ServerConfig{
		NumClients:   1,
		Rounds:       1,
		MaxRejects:   2,
		Defense:      bed.defense("none"),
		InitialState: bed.initialState(),
		IOTimeout:    20 * time.Second,
	}, nil)

	for i := 0; i < 3; i++ {
		conn, err := net.Dial("tcp", srv.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := conn.Write([]byte{0, 0, 0, 3, 1, 2, 3}); err != nil {
			t.Fatal(err)
		}
		conn.SetReadDeadline(time.Now().Add(10 * time.Second))
		msg, err := ReadMessage(conn)
		if err != nil {
			t.Fatalf("malformed registrant %d should receive an error frame, got %v", i, err)
		}
		if msg.Kind != KindError {
			t.Fatalf("want KindError, got %v", msg.Kind)
		}
		conn.Close()
	}
	out := <-srvOut
	if out.err == nil || !strings.Contains(out.err.Error(), "too many rejected") {
		t.Fatalf("server should abort after the reject cap, got %v", out.err)
	}
}

// TestHelloVersionValidated covers the protocol version bump: a v1 hello
// is rejected with an explanatory error frame.
func TestHelloVersionValidated(t *testing.T) {
	bed := newFedBed(t, 1)
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	srv, _, _ := startServer(t, ctx, ServerConfig{
		NumClients:   1,
		Rounds:       1,
		Defense:      bed.defense("none"),
		InitialState: bed.initialState(),
		IOTimeout:    20 * time.Second,
	}, nil)

	conn, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := WriteMessage(conn, &Message{Kind: KindHello, ClientID: 0, Version: 1}); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	msg, err := ReadMessage(conn)
	if err != nil {
		t.Fatal(err)
	}
	if msg.Kind != KindError || !strings.Contains(msg.Err, "version") {
		t.Fatalf("want a version-mismatch error frame, got %+v", msg)
	}
	cancel()
}

// TestQuarantineSurvivesReconnect is the Byzantine acceptance scenario: a
// client that uploads a NaN bomb in round 0 is rejected by the screen,
// evicted, and quarantined. Its automatic reconnection (the PR-1 fault
// tolerance path) resyncs it into the federation, but its updates — now
// honest — stay excluded until the penalty expires; only then does it
// participate again.
func TestQuarantineSurvivesReconnect(t *testing.T) {
	const (
		numClients = 3
		rounds     = 4
		poisonerID = 2
	)
	chaos.GuardTest(t, 10*time.Second)
	bed := newFedBed(t, numClients)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	srv, _, srvOut := startServer(t, ctx, ServerConfig{
		NumClients: numClients,
		MinClients: numClients, // full quorum: every round waits for the rejoin
		Rounds:     rounds,
		// The deadline only backstops a failed rejoin; quorum rounds
		// normally proceed the moment the rejoined client reports.
		RoundDeadline: 30 * time.Second,
		Defense:       bed.defense("none"),
		InitialState:  bed.initialState(),
		IOTimeout:     30 * time.Second,
		Screen:        fl.ScreenConfig{QuarantineRounds: 2},
	}, nil)

	var wg sync.WaitGroup
	errCh := make(chan error, numClients)
	for id := 0; id < numClients; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			def := bed.defense("none")
			if id == poisonerID {
				// Poison round 0 only: the later exclusions prove the
				// quarantine penalty, not continued misbehavior.
				def = adversary.Wrap(def, fbSeed, adversary.Mark(
					adversary.Plan{Kind: adversary.NaNBomb, StopAfter: 1}, poisonerID))
			}
			_, err := RunClient(ctx, ClientConfig{
				Addr:        srv.Addr().String(),
				Trainer:     bed.trainer(id),
				Defense:     def,
				MaxRetries:  5,
				BaseBackoff: 20 * time.Millisecond,
			})
			if err != nil {
				errCh <- err
			}
		}(id)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	out := <-srvOut
	if out.err != nil {
		t.Fatalf("federation failed: %v", out.err)
	}
	for i, v := range out.state {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("NaN bomb reached the global state at coordinate %d: %g", i, v)
		}
	}

	reports := srv.Reports()
	if len(reports) != rounds {
		t.Fatalf("got %d reports, want %d", len(reports), rounds)
	}
	// Round 0: the poisoned update is rejected, the client evicted.
	if !containsID(reports[0].Rejected, poisonerID) {
		t.Fatalf("round 0 should reject the poisoner: %+v", reports[0])
	}
	if !containsID(reports[0].Dropped, poisonerID) {
		t.Fatalf("round 0 should evict the poisoner: %+v", reports[0])
	}
	if containsID(reports[0].Participants, poisonerID) {
		t.Fatalf("round 0 must not count the poisoner as a participant: %+v", reports[0])
	}
	// Rounds 1-2: the reconnected client reports honest updates but stays
	// excluded while the quarantine penalty lasts.
	for _, r := range reports[1:3] {
		if !containsID(r.Quarantined, poisonerID) {
			t.Fatalf("round %d should quarantine the rejoined poisoner: %+v", r.Round, r)
		}
		if containsID(r.Participants, poisonerID) {
			t.Fatalf("round %d must exclude the quarantined client: %+v", r.Round, r)
		}
		if len(r.Rejected) != 0 {
			t.Fatalf("round %d: honest updates must not count as offenses: %+v", r.Round, r)
		}
	}
	// Round 3: the penalty expired; the client is a full participant again.
	last := reports[rounds-1]
	if !containsID(last.Participants, poisonerID) {
		t.Fatalf("round %d should readmit the client: %+v", last.Round, last)
	}
	if len(last.Quarantined) != 0 || len(last.Rejected) != 0 {
		t.Fatalf("round %d should be clean: %+v", last.Round, last)
	}
}

// TestRegistrationDeadline covers the bounded accept loop: with a short
// RegisterTimeout the server starts once the quorum registered (instead
// of waiting forever for the full cohort), and fails cleanly below
// quorum.
func TestRegistrationDeadline(t *testing.T) {
	bed := newFedBed(t, 2)

	t.Run("quorum starts degraded", func(t *testing.T) {
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		srv, _, srvOut := startServer(t, ctx, ServerConfig{
			NumClients:      2,
			MinClients:      1,
			Rounds:          1,
			Defense:         bed.defense("none"),
			InitialState:    bed.initialState(),
			IOTimeout:       30 * time.Second,
			RegisterTimeout: 700 * time.Millisecond,
		}, nil)
		// Only client 0 ever shows up.
		if _, err := RunClient(ctx, ClientConfig{
			Addr:      srv.Addr().String(),
			Trainer:   bed.trainer(0),
			Defense:   bed.defense("none"),
			IOTimeout: 20 * time.Second,
		}); err != nil {
			t.Fatal(err)
		}
		out := <-srvOut
		if out.err != nil {
			t.Fatalf("server should run degraded after the registration deadline: %v", out.err)
		}
	})

	t.Run("below quorum fails", func(t *testing.T) {
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		_, _, srvOut := startServer(t, ctx, ServerConfig{
			NumClients:      2,
			Rounds:          1,
			Defense:         bed.defense("none"),
			InitialState:    bed.initialState(),
			IOTimeout:       30 * time.Second,
			RegisterTimeout: 500 * time.Millisecond,
		}, nil)
		out := <-srvOut
		if out.err == nil || !strings.Contains(out.err.Error(), "registered") {
			t.Fatalf("server should fail when no quorum registers, got %v", out.err)
		}
	})
}
