package flnet

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"time"

	"repro/internal/fl"
	"repro/internal/telemetry"
)

// ClientConfig configures a middleware client process.
type ClientConfig struct {
	// Addr is the server's TCP address.
	Addr string
	// Trainer is the local FL client (model, data shard, optimizer).
	Trainer *fl.Client
	// Defense is the client-side defense instance (OnGlobalModel and
	// BeforeUpload hooks run here). It must already be Bound.
	Defense fl.Defense
	// DialTimeout bounds the initial connection (default 30s); IOTimeout
	// bounds each read/write (default 2 minutes).
	DialTimeout time.Duration
	IOTimeout   time.Duration
	// MaxRetries is the number of reconnection attempts after a dial or
	// per-round I/O failure. Each successfully completed round resets the
	// consecutive-failure count. 0 means the default (5); negative
	// disables retry entirely.
	MaxRetries int
	// BaseBackoff is the delay before the first retry; consecutive
	// failures double it (with jitter in [0.5x, 1.5x)) up to a 10s cap.
	// 0 means the default (100ms).
	BaseBackoff time.Duration
	// Logf receives reconnection progress lines (optional).
	Logf func(format string, args ...any)
}

// defaultMaxBackoff caps the exponential backoff between reconnects.
const defaultMaxBackoff = 10 * time.Second

// RunClient connects to the server, participates in every round until the
// server sends Done, installs the final (personalized) model into the
// trainer, and returns the final global state.
//
// Network faults — a failed dial, a dropped or reset connection, a
// timed-out read — are retried with exponential backoff and jitter up to
// MaxRetries consecutive failures. On reconnect the Hello frame carries
// the last round this client completed, and the server resyncs the client
// by resending the current round's global state. Local training errors
// and server rejections are not retried.
func RunClient(ctx context.Context, cfg ClientConfig) ([]float64, error) {
	if cfg.Trainer == nil || cfg.Defense == nil {
		return nil, fmt.Errorf("flnet: client needs Trainer and Defense")
	}
	if cfg.DialTimeout == 0 {
		cfg.DialTimeout = 30 * time.Second
	}
	if cfg.IOTimeout == 0 {
		cfg.IOTimeout = 2 * time.Minute
	}
	if cfg.MaxRetries == 0 {
		cfg.MaxRetries = 5
	}
	if cfg.MaxRetries < 0 {
		cfg.MaxRetries = 0
	}
	if cfg.BaseBackoff == 0 {
		cfg.BaseBackoff = 100 * time.Millisecond
	}
	// Route progress lines through a serialized event log so clients
	// sharing one process (tests, simulations) never interleave output.
	logf := cfg.Logf
	var sink func(line string)
	if logf != nil {
		sink = func(line string) { logf("%s", line) }
	}
	events := telemetry.NewEventLog(16, sink)
	// Deterministic per-client jitter keeps test runs reproducible while
	// still decorrelating real clients' retry storms.
	rng := rand.New(rand.NewSource(int64(cfg.Trainer.ID)*2654435761 + 1))

	lastCompleted := -1
	failures := 0
	for {
		before := lastCompleted
		final, err := runSession(ctx, cfg, &lastCompleted)
		if err == nil {
			return final, nil
		}
		if !err.retryable || ctx.Err() != nil {
			return nil, err.err
		}
		if lastCompleted > before {
			failures = 0 // the session made progress; restart the budget
		}
		failures++
		if failures > cfg.MaxRetries {
			return nil, fmt.Errorf("flnet: client %d giving up after %d consecutive failures: %w",
				cfg.Trainer.ID, failures, err.err)
		}
		backoff := cfg.BaseBackoff << (failures - 1)
		if backoff > defaultMaxBackoff {
			backoff = defaultMaxBackoff
		}
		sleep := backoff/2 + time.Duration(rng.Int63n(int64(backoff)))
		telClientReconnects.Inc()
		events.Eventf(-1, cfg.Trainer.ID, "flnet: client %d retry %d/%d in %s after: %v",
			cfg.Trainer.ID, failures, cfg.MaxRetries, sleep, err.err)
		timer := time.NewTimer(sleep)
		select {
		case <-ctx.Done():
			timer.Stop()
			return nil, ctx.Err()
		case <-timer.C:
		}
	}
}

// sessionError classifies a failed session: retryable errors are network
// faults worth a reconnect; the rest (training failures, server
// rejections) abort the client.
type sessionError struct {
	err       error
	retryable bool
}

func retryableErr(err error) *sessionError { return &sessionError{err: err, retryable: true} }
func permanentErr(err error) *sessionError { return &sessionError{err: err, retryable: false} }

// runSession runs one connection's worth of the protocol: dial, hello,
// rounds, done. lastCompleted is advanced after every update the server
// received in full, so a later session's Hello tells the server where
// this client left off.
func runSession(ctx context.Context, cfg ClientConfig, lastCompleted *int) ([]float64, *sessionError) {
	dialer := net.Dialer{Timeout: cfg.DialTimeout}
	conn, err := dialer.DialContext(ctx, "tcp", cfg.Addr)
	if err != nil {
		return nil, retryableErr(fmt.Errorf("flnet: dial %s: %w", cfg.Addr, err))
	}
	defer conn.Close()

	// Cancel blocking reads when ctx ends.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-ctx.Done():
			conn.Close()
		case <-stop:
		}
	}()

	conn.SetWriteDeadline(time.Now().Add(cfg.IOTimeout))
	hello := &Message{
		Kind:      KindHello,
		ClientID:  cfg.Trainer.ID,
		Version:   ProtocolVersion,
		LastRound: *lastCompleted,
	}
	if err := WriteMessage(conn, hello); err != nil {
		return nil, retryableErr(err)
	}

	for {
		conn.SetReadDeadline(time.Now().Add(cfg.IOTimeout))
		msg, err := ReadMessage(conn)
		if err != nil {
			if ctx.Err() != nil {
				return nil, permanentErr(ctx.Err())
			}
			return nil, retryableErr(err)
		}
		switch msg.Kind {
		case KindGlobal:
			u, err := cfg.Trainer.RunRound(msg.Round, msg.State, cfg.Defense, nil)
			if err != nil {
				conn.SetWriteDeadline(time.Now().Add(cfg.IOTimeout))
				_ = WriteMessage(conn, &Message{Kind: KindError, Err: err.Error()})
				return nil, permanentErr(err)
			}
			conn.SetWriteDeadline(time.Now().Add(cfg.IOTimeout))
			err = WriteMessage(conn, &Message{
				Kind:       KindUpdate,
				ClientID:   u.ClientID,
				Round:      u.Round,
				State:      u.State,
				NumSamples: u.NumSamples,
			})
			if err != nil {
				return nil, retryableErr(err)
			}
			*lastCompleted = msg.Round
		case KindDone:
			// Final personalization: install the last global model through
			// the defense's download path.
			state := cfg.Defense.OnGlobalModel(cfg.Trainer.ID, msg.Round, msg.State)
			if err := cfg.Trainer.Install(state); err != nil {
				return nil, permanentErr(err)
			}
			return msg.State, nil
		case KindError:
			// A rejection can be transient (e.g. "already registered"
			// while the server is still evicting this client's previous
			// connection), so rejections share the retry budget.
			return nil, retryableErr(fmt.Errorf("flnet: server reported: %s", msg.Err))
		default:
			return nil, retryableErr(fmt.Errorf("flnet: unexpected %v frame", msg.Kind))
		}
	}
}
