package flnet

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"time"

	"repro/internal/fl"
	"repro/internal/telemetry"
)

// ClientConfig configures a middleware client process.
type ClientConfig struct {
	// Addr is the server's TCP address.
	Addr string
	// Trainer is the local FL client (model, data shard, optimizer).
	Trainer *fl.Client
	// Defense is the client-side defense instance (OnGlobalModel and
	// BeforeUpload hooks run here). It must already be Bound.
	Defense fl.Defense
	// DialTimeout bounds the initial connection (default 30s); IOTimeout
	// bounds each read/write (default 2 minutes).
	DialTimeout time.Duration
	IOTimeout   time.Duration
	// MaxRetries is the number of reconnection attempts after a dial or
	// per-round I/O failure. Each successfully completed round resets the
	// consecutive-failure count. 0 means the default (5); negative
	// disables retry entirely.
	MaxRetries int
	// BaseBackoff is the delay before the first retry; consecutive
	// failures double it (with jitter in [0.5x, 1.5x)) up to a 10s cap.
	// 0 means the default (100ms).
	BaseBackoff time.Duration
	// Logf receives reconnection progress lines (optional).
	Logf func(format string, args ...any)
	// AfterRound, if non-nil, runs after each round's update has been
	// written to the server in full — the hook middleware uses to persist
	// the client's private-layer store so personalization state survives a
	// client restart. It runs on the session goroutine; a slow hook delays
	// the next round's read.
	AfterRound func(round int)
	// Wire selects the transport framing: "binary" (the default, ""
	// means binary) advertises the full v3 capability set at Hello and
	// speaks whatever the server negotiates; "gob" advertises nothing and
	// pins the legacy gob framing.
	Wire string
	// Job names the federation job to join on a multi-job service-mode
	// server; it rides every Hello so reconnects route back to the same
	// job. Empty is fine against a single-federation server.
	Job string
}

// defaultMaxBackoff caps the exponential backoff between reconnects.
const defaultMaxBackoff = 10 * time.Second

// defaultDrainRetryAfter is how long a client backs off after a drain
// frame whose RetryAfterMs is zero.
const defaultDrainRetryAfter = time.Second

// backoffFor computes the clamped exponential backoff before retry number
// failures (1-based). The shift is bounded before it is applied: a naive
// base << (failures-1) overflows time.Duration once failures reaches ~33,
// producing a negative (i.e. instant) backoff — exactly the retry storm
// the backoff exists to prevent.
func backoffFor(base time.Duration, failures int, max time.Duration) time.Duration {
	if base <= 0 {
		return max
	}
	shift := failures - 1
	if shift < 0 {
		shift = 0
	}
	// 2^shift would exceed max for any shift past log2(max/base); also
	// guards the Duration overflow at shift >= 63.
	if shift >= 63 || base > max>>shift {
		return max
	}
	return base << shift
}

// RunClient connects to the server, participates in every round until the
// server sends Done, installs the final (personalized) model into the
// trainer, and returns the final global state.
//
// Network faults — a failed dial, a dropped or reset connection, a
// timed-out read — are retried with exponential backoff and jitter up to
// MaxRetries consecutive failures. On reconnect the Hello frame carries
// the last round this client completed, and the server resyncs the client
// by resending the current round's global state. Local training errors
// and server rejections are not retried.
func RunClient(ctx context.Context, cfg ClientConfig) ([]float64, error) {
	if cfg.Trainer == nil || cfg.Defense == nil {
		return nil, fmt.Errorf("flnet: client needs Trainer and Defense")
	}
	if cfg.Wire != "" && cfg.Wire != "binary" && cfg.Wire != "gob" {
		return nil, fmt.Errorf("flnet: unknown wire format %q (want binary or gob)", cfg.Wire)
	}
	if cfg.DialTimeout == 0 {
		cfg.DialTimeout = 30 * time.Second
	}
	if cfg.IOTimeout == 0 {
		cfg.IOTimeout = 2 * time.Minute
	}
	if cfg.MaxRetries == 0 {
		cfg.MaxRetries = 5
	}
	if cfg.MaxRetries < 0 {
		cfg.MaxRetries = 0
	}
	if cfg.BaseBackoff == 0 {
		cfg.BaseBackoff = 100 * time.Millisecond
	}
	// Route progress lines through a serialized event log so clients
	// sharing one process (tests, simulations) never interleave output.
	logf := cfg.Logf
	var sink func(line string)
	if logf != nil {
		sink = func(line string) { logf("%s", line) }
	}
	events := telemetry.NewEventLog(16, sink)
	// Deterministic per-client jitter keeps test runs reproducible while
	// still decorrelating real clients' retry storms.
	rng := rand.New(rand.NewSource(int64(cfg.Trainer.ID)*2654435761 + 1))

	lastCompleted := -1
	// Broadcast anchors survive reconnects: a redialing client still holds
	// the broadcast of its last completed round, so a v3 server whose ring
	// still covers it can resume delta encoding immediately.
	anchors := &wireAnchors{round: -1, pendRound: -1}
	failures := 0
	drainWaits := 0
	// A drain notice is an orderly "come back later", not a fault: it does
	// not consume the retry budget, but it is capped so a server that
	// drains forever cannot pin the client in a redial loop.
	maxDrainWaits := 4*cfg.MaxRetries + 8
	for {
		before := lastCompleted
		final, err := runSession(ctx, cfg, &lastCompleted, anchors)
		if err == nil {
			return final, nil
		}
		if !err.retryable || ctx.Err() != nil {
			return nil, err.err
		}
		if lastCompleted > before {
			failures = 0 // the session made progress; restart the budget
			drainWaits = 0
		}
		var sleep time.Duration
		if err.drain {
			drainWaits++
			if drainWaits > maxDrainWaits {
				return nil, fmt.Errorf("flnet: client %d giving up after %d drain notices: %w",
					cfg.Trainer.ID, drainWaits, err.err)
			}
			retryAfter := err.retryAfter
			if retryAfter <= 0 {
				retryAfter = defaultDrainRetryAfter
			}
			sleep = retryAfter/2 + time.Duration(rng.Int63n(int64(retryAfter)))
			telClientDrainWaits.Inc()
			events.Eventf(-1, cfg.Trainer.ID, "flnet: client %d draining server; redialing in %s (notice %d/%d)",
				cfg.Trainer.ID, sleep, drainWaits, maxDrainWaits)
		} else {
			failures++
			if failures > cfg.MaxRetries {
				return nil, fmt.Errorf("flnet: client %d giving up after %d consecutive failures: %w",
					cfg.Trainer.ID, failures, err.err)
			}
			backoff := backoffFor(cfg.BaseBackoff, failures, defaultMaxBackoff)
			sleep = backoff/2 + time.Duration(rng.Int63n(int64(backoff)))
			telClientReconnects.Inc()
			events.Eventf(-1, cfg.Trainer.ID, "flnet: client %d retry %d/%d in %s after: %v",
				cfg.Trainer.ID, failures, cfg.MaxRetries, sleep, err.err)
		}
		timer := time.NewTimer(sleep)
		select {
		case <-ctx.Done():
			timer.Stop()
			return nil, ctx.Err()
		case <-timer.C:
		}
	}
}

// sessionError classifies a failed session: retryable errors are network
// faults worth a reconnect; the rest (training failures, server
// rejections) abort the client.
type sessionError struct {
	err       error
	retryable bool
	// drain marks an orderly server drain notice: retryable, outside the
	// failure budget, with a server-suggested back-off.
	drain      bool
	retryAfter time.Duration
}

func retryableErr(err error) *sessionError { return &sessionError{err: err, retryable: true} }
func permanentErr(err error) *sessionError { return &sessionError{err: err, retryable: false} }

func drainErr(err error, retryAfter time.Duration) *sessionError {
	return &sessionError{err: err, retryable: true, drain: true, retryAfter: retryAfter}
}

// wireAnchors is the client's side of the delta/quantization anchor
// protocol: state is the broadcast of the last *completed* round (what
// Hello's LastRound promises the server the client holds), and pendState
// the broadcast most recently received but not yet answered. The anchor
// only advances when an upload has been written in full — a crash mid-round
// can therefore never desync the client from what its next Hello claims.
type wireAnchors struct {
	round     int
	state     []float64
	pendRound int
	pendState []float64
}

// base resolves an anchor round for the session codec.
func (a *wireAnchors) base(round int) []float64 {
	if round == a.pendRound && a.pendState != nil {
		return a.pendState
	}
	if round == a.round && a.state != nil {
		return a.state
	}
	return nil
}

// received records a freshly decoded broadcast as the pending anchor.
func (a *wireAnchors) received(round int, state []float64) {
	a.pendRound = round
	a.pendState = append(a.pendState[:0], state...)
}

// completed promotes the pending anchor after the round's upload was
// written in full (buffer swap: the old anchor's backing array becomes the
// next pend buffer).
func (a *wireAnchors) completed(round int) {
	if a.pendRound != round {
		return
	}
	a.round = round
	a.state, a.pendState = a.pendState, a.state
	a.pendRound = -1
}

// runSession runs one connection's worth of the protocol: dial, hello,
// rounds, done. lastCompleted is advanced after every update the server
// received in full, so a later session's Hello tells the server where
// this client left off.
func runSession(ctx context.Context, cfg ClientConfig, lastCompleted *int, anchors *wireAnchors) ([]float64, *sessionError) {
	dialer := net.Dialer{Timeout: cfg.DialTimeout}
	conn, err := dialer.DialContext(ctx, "tcp", cfg.Addr)
	if err != nil {
		return nil, retryableErr(fmt.Errorf("flnet: dial %s: %w", cfg.Addr, err))
	}
	defer conn.Close()

	// Cancel blocking reads when ctx ends.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-ctx.Done():
			conn.Close()
		case <-stop:
		}
	}()

	conn.SetWriteDeadline(time.Now().Add(cfg.IOTimeout))
	hello := &Message{
		Kind:      KindHello,
		ClientID:  cfg.Trainer.ID,
		Version:   ProtocolVersion,
		LastRound: *lastCompleted,
		Job:       cfg.Job,
	}
	if cfg.Wire != "gob" {
		hello.WireCaps = ClientCaps
	}
	if err := WriteMessage(conn, hello); err != nil {
		return nil, retryableErr(err)
	}

	// codec stays nil (gob) until the server's KindWire ack negotiates the
	// binary session; the ack itself is the session's last gob frame.
	var codec *Codec
	msg := &Message{}
	for {
		conn.SetReadDeadline(time.Now().Add(cfg.IOTimeout))
		if err := ReadMessageWith(conn, msg, codec); err != nil {
			if ctx.Err() != nil {
				return nil, permanentErr(ctx.Err())
			}
			return nil, retryableErr(err)
		}
		switch msg.Kind {
		case KindWire:
			caps := negotiateCaps(hello.WireCaps, msg.WireCaps)
			if caps == 0 {
				return nil, permanentErr(fmt.Errorf("flnet: server negotiated unsupported wire capabilities %#x", msg.WireCaps))
			}
			codec = NewCodec(caps, msg.QuantSeed, msg.TopK, anchors.base)
		case KindGlobal:
			if codec.Binary() {
				// Remember the broadcast just decoded: the upload diffs
				// against it, and the next delta broadcast may anchor on it.
				anchors.received(msg.Round, msg.State)
			}
			// A cohort-aware defense (secure aggregation) masks against the
			// round's sampled cohort, which the server attaches to the
			// broadcast; without the announcement the mask graph defaults to
			// the full registered fleet.
			if ca, ok := cfg.Defense.(fl.CohortAware); ok && len(msg.Cohort) > 0 {
				ca.SetRoundCohort(msg.Round, msg.Cohort)
			}
			u, err := cfg.Trainer.RunRound(msg.Round, msg.State, cfg.Defense, nil)
			if err != nil {
				conn.SetWriteDeadline(time.Now().Add(cfg.IOTimeout))
				_ = WriteMessageWith(conn, &Message{Kind: KindError, Err: err.Error()}, codec)
				return nil, permanentErr(err)
			}
			conn.SetWriteDeadline(time.Now().Add(cfg.IOTimeout))
			err = WriteMessageWith(conn, &Message{
				Kind:       KindUpdate,
				ClientID:   u.ClientID,
				Round:      u.Round,
				State:      u.State,
				NumSamples: u.NumSamples,
			}, codec)
			if err != nil {
				return nil, retryableErr(err)
			}
			*lastCompleted = msg.Round
			anchors.completed(msg.Round)
			if cfg.AfterRound != nil {
				cfg.AfterRound(msg.Round)
			}
		case KindDone:
			// Final personalization: install the last global model through
			// the defense's download path.
			state := cfg.Defense.OnGlobalModel(cfg.Trainer.ID, msg.Round, msg.State)
			if err := cfg.Trainer.Install(state); err != nil {
				return nil, permanentErr(err)
			}
			return msg.State, nil
		case KindDrain:
			// The server is draining for shutdown (or shedding load):
			// back off politely and redial instead of burning retries.
			return nil, drainErr(fmt.Errorf("flnet: server draining"),
				time.Duration(msg.RetryAfterMs)*time.Millisecond)
		case KindError:
			// A rejection can be transient (e.g. "already registered"
			// while the server is still evicting this client's previous
			// connection), so rejections share the retry budget.
			return nil, retryableErr(fmt.Errorf("flnet: server reported: %s", msg.Err))
		default:
			return nil, retryableErr(fmt.Errorf("flnet: unexpected %v frame", msg.Kind))
		}
	}
}
