package flnet

import (
	"context"
	"fmt"
	"net"
	"time"

	"repro/internal/fl"
)

// ClientConfig configures a middleware client process.
type ClientConfig struct {
	// Addr is the server's TCP address.
	Addr string
	// Trainer is the local FL client (model, data shard, optimizer).
	Trainer *fl.Client
	// Defense is the client-side defense instance (OnGlobalModel and
	// BeforeUpload hooks run here). It must already be Bound.
	Defense fl.Defense
	// DialTimeout bounds the initial connection (default 30s); IOTimeout
	// bounds each read/write (default 2 minutes).
	DialTimeout time.Duration
	IOTimeout   time.Duration
}

// RunClient connects to the server, participates in every round until the
// server sends Done, installs the final (personalized) model into the
// trainer, and returns the final global state.
func RunClient(ctx context.Context, cfg ClientConfig) ([]float64, error) {
	if cfg.Trainer == nil || cfg.Defense == nil {
		return nil, fmt.Errorf("flnet: client needs Trainer and Defense")
	}
	if cfg.DialTimeout == 0 {
		cfg.DialTimeout = 30 * time.Second
	}
	if cfg.IOTimeout == 0 {
		cfg.IOTimeout = 2 * time.Minute
	}
	dialer := net.Dialer{Timeout: cfg.DialTimeout}
	conn, err := dialer.DialContext(ctx, "tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("flnet: dial %s: %w", cfg.Addr, err)
	}
	defer conn.Close()

	// Cancel blocking reads when ctx ends.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-ctx.Done():
			conn.Close()
		case <-stop:
		}
	}()

	conn.SetWriteDeadline(time.Now().Add(cfg.IOTimeout))
	if err := WriteMessage(conn, &Message{Kind: KindHello, ClientID: cfg.Trainer.ID}); err != nil {
		return nil, err
	}

	for {
		conn.SetReadDeadline(time.Now().Add(cfg.IOTimeout))
		msg, err := ReadMessage(conn)
		if err != nil {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			return nil, err
		}
		switch msg.Kind {
		case KindGlobal:
			u, err := cfg.Trainer.RunRound(msg.Round, msg.State, cfg.Defense, nil)
			if err != nil {
				conn.SetWriteDeadline(time.Now().Add(cfg.IOTimeout))
				_ = WriteMessage(conn, &Message{Kind: KindError, Err: err.Error()})
				return nil, err
			}
			conn.SetWriteDeadline(time.Now().Add(cfg.IOTimeout))
			err = WriteMessage(conn, &Message{
				Kind:       KindUpdate,
				ClientID:   u.ClientID,
				Round:      u.Round,
				State:      u.State,
				NumSamples: u.NumSamples,
			})
			if err != nil {
				return nil, err
			}
		case KindDone:
			// Final personalization: install the last global model through
			// the defense's download path.
			state := cfg.Defense.OnGlobalModel(cfg.Trainer.ID, msg.Round, msg.State)
			if err := cfg.Trainer.Install(state); err != nil {
				return nil, err
			}
			return msg.State, nil
		case KindError:
			return nil, fmt.Errorf("flnet: server reported: %s", msg.Err)
		default:
			return nil, fmt.Errorf("flnet: unexpected %v frame", msg.Kind)
		}
	}
}
