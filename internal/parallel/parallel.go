// Package parallel is the process-wide bounded compute pool under every
// data-parallel kernel in the repository (matmul, im2col, activations,
// batch-norm statistics, pooling, and client-level federation loops).
//
// Before this package existed, each kernel independently fanned out to
// GOMAXPROCS goroutines, so N concurrent FL clients scheduled N×GOMAXPROCS
// compute goroutines that thrashed each other. The pool replaces those
// ad-hoc fan-outs with a single token bucket holding Workers()-1 tokens: a
// call to For runs one chunk on the calling goroutine and offloads the rest
// only while tokens are available, falling back to inline execution the
// moment the process-wide compute budget is spent. Nested For calls
// therefore degrade gracefully to serial execution instead of
// oversubscribing the scheduler, and total extra compute goroutines never
// exceed Workers()-1 regardless of how many callers race.
//
// # Determinism
//
// For partitions [0, n) into contiguous ranges whose boundaries depend only
// on (n, grain, Workers()) — never on token availability or execution
// order. Callers that write disjoint outputs per index (every kernel in
// this repository) are therefore bit-identical to their serial
// counterparts: the same fn invocations happen with the same [lo, hi)
// arguments, only their placement (caller vs pooled goroutine) varies.
// Reductions stay bit-identical by reducing along the serial axis inside
// each parallel index (e.g. batch-norm sums per channel, parallelized
// across channels).
//
// # Allocation discipline
//
// For's fn escapes to goroutines, so the closure literal heap-allocates at
// its creation site even when For ends up running serially. Hot paths that
// must stay zero-allocation in steady state guard with Chunks first and
// only build the closure on the parallel path:
//
//	if parallel.Chunks(n, g) <= 1 {
//		kernelRange(0, n, ...)
//		return
//	}
//	parallel.For(n, g, func(lo, hi int) { kernelRange(lo, hi, ...) })
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/telemetry"
)

// Pool telemetry: all three instruments are plain atomic operations, so
// the instrumented For keeps its zero-allocation steady state (guarded by
// the alloc tests in internal/nn and internal/telemetry).
var (
	telTokensInUse = telemetry.NewGauge("dinar_pool_tokens_in_use",
		"compute-pool tokens currently held by pooled goroutines")
	telInlineFallback = telemetry.NewCounter("dinar_pool_inline_fallback_total",
		"chunks run inline on the caller because the pool was saturated")
	telChunks = telemetry.NewCounter("dinar_pool_chunks_total",
		"chunks executed by parallel.For (serial calls count as one chunk)")
)

// DefaultMinWork is the default minimum number of scalar operations a chunk
// must amortize before For splits work across the pool. It matches the
// threshold the matmul and im2col kernels used before the pool existed.
const DefaultMinWork = 1 << 16

// state is one immutable pool configuration; SetWorkers swaps the whole
// struct so in-flight For calls keep releasing tokens to the bucket they
// acquired from.
type state struct {
	workers int
	tokens  chan struct{} // capacity workers-1: extra goroutines beyond callers
}

var (
	pool    atomic.Pointer[state]
	minWork atomic.Int64
)

func init() {
	minWork.Store(DefaultMinWork)
	pool.Store(newState(runtime.GOMAXPROCS(0)))
}

func newState(n int) *state {
	if n < 1 {
		n = 1
	}
	return &state{workers: n, tokens: make(chan struct{}, n-1)}
}

// Workers returns the pool size: the maximum number of goroutines
// (including the caller) a single For call will use, and one more than the
// process-wide cap on pooled compute goroutines.
func Workers() int { return pool.Load().workers }

// SetWorkers resizes the pool and returns the previous size, for tests and
// the GOMAXPROCS scaling sweep. n < 1 is clamped to 1 (serial). In-flight
// For calls finish against the configuration they started with.
func SetWorkers(n int) (prev int) {
	prev = pool.Swap(newState(n)).workers
	return prev
}

// MinWork returns the current split threshold used by Grain.
func MinWork() int { return int(minWork.Load()) }

// SetMinWork overrides the split threshold and returns the previous value.
// Tests use small values to exercise parallel paths on small shapes; v < 1
// is clamped to 1.
func SetMinWork(v int) (prev int) {
	if v < 1 {
		v = 1
	}
	return int(minWork.Swap(int64(v)))
}

// Grain returns the minimum chunk length (in items) such that one chunk
// carries at least MinWork scalar operations, given perItem operations per
// item. It is the single replacement for the per-kernel
// threshold/GOMAXPROCS guards: For(n, Grain(perItem), fn) stays serial
// exactly when n*perItem falls below the threshold or the pool is sized 1.
func Grain(perItem int) int {
	if perItem < 1 {
		perItem = 1
	}
	g := (MinWork() + perItem - 1) / perItem
	if g < 1 {
		g = 1
	}
	return g
}

// Chunks returns the number of ranges For(n, grain, fn) will invoke fn
// with: ceil(n/grain) capped at Workers(), at least 1 for n > 0, and 0 for
// n <= 0. Hot paths call it to take an allocation-free serial path before
// building the parallel closure.
func Chunks(n, grain int) int {
	if n <= 0 {
		return 0
	}
	if grain < 1 {
		grain = 1
	}
	c := (n + grain - 1) / grain
	if w := Workers(); c > w {
		c = w
	}
	return c
}

// For partitions [0, n) into Chunks(n, grain) contiguous ranges and invokes
// fn(lo, hi) exactly once per range, returning when all invocations have
// completed. Range boundaries are a pure function of (n, grain, Workers());
// token availability only decides whether a range runs on a pooled
// goroutine or inline on the caller, so callers writing disjoint outputs
// per index are bit-identical to a serial loop. fn must not block on other
// fn invocations of the same For call (ranges may run sequentially on the
// caller when the pool is saturated).
func For(n, grain int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	p := pool.Load()
	if grain < 1 {
		grain = 1
	}
	chunks := (n + grain - 1) / grain
	if chunks > p.workers {
		chunks = p.workers
	}
	if chunks <= 1 {
		telChunks.Inc()
		fn(0, n)
		return
	}
	telChunks.Add(int64(chunks))
	per := (n + chunks - 1) / chunks
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += per {
		hi := lo + per
		if hi >= n {
			// The caller always works the final range itself.
			fn(lo, n)
			break
		}
		select {
		case p.tokens <- struct{}{}:
			telTokensInUse.Add(1)
			wg.Add(1)
			go func(lo, hi int) {
				defer func() {
					<-p.tokens
					telTokensInUse.Add(-1)
					wg.Done()
				}()
				fn(lo, hi)
			}(lo, hi)
		default:
			// Pool saturated (e.g. by other concurrent clients): run the
			// range inline instead of adding a runnable goroutine.
			telInlineFallback.Inc()
			fn(lo, hi)
		}
	}
	wg.Wait()
}
