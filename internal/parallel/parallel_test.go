package parallel

import (
	"sync"
	"sync/atomic"
	"testing"
)

// restore resets pool configuration mutated by a test.
func restore(t *testing.T) {
	t.Helper()
	prevW, prevM := Workers(), MinWork()
	t.Cleanup(func() {
		SetWorkers(prevW)
		SetMinWork(prevM)
	})
}

// TestForCoversEveryIndexOnce checks that For touches each index exactly
// once across odd sizes: n < grain, n == workers, prime n, and sizes that
// don't divide evenly.
func TestForCoversEveryIndexOnce(t *testing.T) {
	restore(t)
	SetWorkers(4)
	for _, tc := range []struct{ n, grain int }{
		{1, 1}, {3, 7}, {4, 1}, {7, 1}, {13, 3}, {97, 10}, {100, 1}, {1000, 64},
	} {
		counts := make([]int32, tc.n)
		For(tc.n, tc.grain, func(lo, hi int) {
			if lo < 0 || hi > tc.n || lo >= hi {
				t.Errorf("n=%d grain=%d: bad range [%d,%d)", tc.n, tc.grain, lo, hi)
			}
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&counts[i], 1)
			}
		})
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("n=%d grain=%d: index %d visited %d times", tc.n, tc.grain, i, c)
			}
		}
	}
}

// TestForBoundariesDeterministic checks that chunk boundaries depend only
// on (n, grain, Workers()), not on scheduling: repeated runs must produce
// the identical boundary set.
func TestForBoundariesDeterministic(t *testing.T) {
	restore(t)
	SetWorkers(4)
	collect := func() map[[2]int]bool {
		var mu sync.Mutex
		set := make(map[[2]int]bool)
		For(101, 7, func(lo, hi int) {
			mu.Lock()
			set[[2]int{lo, hi}] = true
			mu.Unlock()
		})
		return set
	}
	first := collect()
	for run := 0; run < 20; run++ {
		got := collect()
		if len(got) != len(first) {
			t.Fatalf("run %d: %d ranges, first run had %d", run, len(got), len(first))
		}
		for r := range got {
			if !first[r] {
				t.Fatalf("run %d: range %v not in first run's partition", run, r)
			}
		}
	}
}

// TestChunksMatchesFor checks the Chunks guard agrees with the number of fn
// invocations For makes.
func TestChunksMatchesFor(t *testing.T) {
	restore(t)
	for _, workers := range []int{1, 2, 3, 4, 8} {
		SetWorkers(workers)
		for _, tc := range []struct{ n, grain int }{
			{0, 1}, {1, 1}, {5, 2}, {16, 1}, {17, 4}, {97, 13},
		} {
			var calls int32
			For(tc.n, tc.grain, func(lo, hi int) { atomic.AddInt32(&calls, 1) })
			if got, want := int(calls), Chunks(tc.n, tc.grain); got != want {
				t.Errorf("workers=%d n=%d grain=%d: For made %d calls, Chunks says %d",
					workers, tc.n, tc.grain, got, want)
			}
		}
	}
}

// TestSerialPathZeroAlloc checks the documented guard idiom allocates
// nothing when Chunks stays at 1.
func TestSerialPathZeroAlloc(t *testing.T) {
	restore(t)
	SetWorkers(4)
	sum := 0.0
	data := make([]float64, 64)
	g := Grain(1) // default MinWork: 64 items of work 1 stays serial
	allocs := testing.AllocsPerRun(100, func() {
		if Chunks(len(data), g) <= 1 {
			for _, v := range data {
				sum += v
			}
			return
		}
		t.Fatal("guard should have stayed serial")
	})
	if allocs != 0 {
		t.Errorf("serial guard path allocates %v times, want 0", allocs)
	}
}

// TestGrain checks the threshold arithmetic.
func TestGrain(t *testing.T) {
	restore(t)
	SetMinWork(100)
	if g := Grain(1); g != 100 {
		t.Errorf("Grain(1) = %d, want 100", g)
	}
	if g := Grain(7); g != 15 { // ceil(100/7)
		t.Errorf("Grain(7) = %d, want 15", g)
	}
	if g := Grain(1000); g != 1 {
		t.Errorf("Grain(1000) = %d, want 1", g)
	}
	if g := Grain(0); g != 100 { // clamped perItem
		t.Errorf("Grain(0) = %d, want 100", g)
	}
}

// TestSetWorkersClamp checks SetWorkers clamps to 1 and reports the
// previous size.
func TestSetWorkersClamp(t *testing.T) {
	restore(t)
	SetWorkers(3)
	if prev := SetWorkers(0); prev != 3 {
		t.Errorf("SetWorkers(0) returned prev %d, want 3", prev)
	}
	if w := Workers(); w != 1 {
		t.Errorf("Workers() = %d after clamp, want 1", w)
	}
	For(10, 1, func(lo, hi int) {
		if lo != 0 || hi != 10 {
			t.Errorf("workers=1 should run one inline range, got [%d,%d)", lo, hi)
		}
	})
}

// TestForNestedHammer drives many concurrent callers, each running nested
// For calls (the FL shape: client-level For over clients, matmul-level For
// inside), under -race. Every index must still be visited exactly once and
// the token bucket must never leak.
func TestForNestedHammer(t *testing.T) {
	restore(t)
	SetWorkers(4)
	SetMinWork(1) // force parallel paths even on tiny ranges
	const (
		callers = 16
		outer   = 8
		inner   = 57 // prime
		rounds  = 25
	)
	var wg sync.WaitGroup
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				counts := make([]int32, outer*inner)
				For(outer, 1, func(lo, hi int) {
					for o := lo; o < hi; o++ {
						For(inner, 1, func(ilo, ihi int) {
							for i := ilo; i < ihi; i++ {
								atomic.AddInt32(&counts[o*inner+i], 1)
							}
						})
					}
				})
				for i, n := range counts {
					if n != 1 {
						t.Errorf("caller %d round %d: index %d visited %d times", c, r, i, n)
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
	// The bucket must be fully drained once all For calls return.
	if in := len(pool.Load().tokens); in != 0 {
		t.Errorf("token bucket holds %d tokens after quiescence, want 0", in)
	}
}

// TestPoolBoundsGoroutines checks that even with many concurrent callers
// the pool never lends more than Workers()-1 tokens, i.e. extra compute
// goroutines stay bounded process-wide.
func TestPoolBoundsGoroutines(t *testing.T) {
	restore(t)
	SetWorkers(4)
	SetMinWork(1)
	var inPool, peak int64
	var mu sync.Mutex
	track := func() {
		n := atomic.AddInt64(&inPool, 1)
		mu.Lock()
		if n > peak {
			peak = n
		}
		mu.Unlock()
	}
	var wg sync.WaitGroup
	for c := 0; c < 32; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < 50; r++ {
				base := make(chan struct{})
				close(base)
				For(64, 1, func(lo, hi int) {
					// Count only pooled goroutines: the caller's inline
					// ranges run on the caller's stack. We can't observe
					// placement directly, so count every range entry and
					// subtract the callers below via the bound check.
					track()
					<-base
					atomic.AddInt64(&inPool, -1)
				})
			}
		}()
	}
	wg.Wait()
	// 32 callers + at most Workers()-1 pooled goroutines may be inside fn
	// simultaneously.
	if max := int64(32 + 4 - 1); peak > max {
		t.Errorf("observed %d concurrent fn entries, bound is %d", peak, max)
	}
}
