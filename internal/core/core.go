// Package core implements DINAR, the paper's primary contribution
// (Algorithm 1): fine-grained privacy protection of federated-learning
// models against membership inference attacks.
//
// DINAR runs on the client side. Each round:
//
//   - Model personalization (lines 1–6): the client takes the received
//     global model but replaces the parameters of the privacy-sensitive
//     layer p with its own stored, non-obfuscated copy θᵖ*.
//   - Adaptive model training (lines 7–14): local training with Adagrad
//     (implemented in internal/optim; selected via the system config).
//   - Model obfuscation (lines 15–17): before upload, the client stores the
//     trained layer-p parameters as θᵖ* and replaces them in the upload with
//     random values.
//
// The privacy-sensitive layer index is chosen by the Byzantine-tolerant
// distributed vote of §4.1 (internal/consensus over the per-layer
// generalization gaps of internal/leakage); it "typically converges to the
// penultimate layer", which is this package's default.
package core

import (
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/fl"
	"repro/internal/nn"
)

// ObfuscationMode selects the distribution of the random replacement values.
type ObfuscationMode int

// Obfuscation modes.
const (
	// ObfuscateGaussian draws replacements from N(0, InitScale²) of the
	// obfuscated layer, so obfuscated parameters are statistically
	// indistinguishable from a freshly initialized layer (default).
	ObfuscateGaussian ObfuscationMode = iota + 1
	// ObfuscateUniform draws replacements uniformly from
	// [-2·InitScale, 2·InitScale] (ablation alternative).
	ObfuscateUniform
)

// DINAR is the fl.Defense implementing the paper's Algorithm 1. It is safe
// for concurrent use by parallel clients.
type DINAR struct {
	// Layers lists the logical layer indices to obfuscate. Empty means
	// "penultimate layer", the consensus outcome reported by the paper.
	// Negative indices count from the end (-2 = penultimate).
	Layers []int
	// Mode selects the replacement distribution (default ObfuscateGaussian).
	Mode ObfuscationMode
	// Seed drives the obfuscation randomness deterministically per
	// (round, client).
	Seed int64

	mu     sync.Mutex
	info   fl.ModelInfo
	layers []int // resolved, sorted span indices
	store  map[int]map[int][]float64
	bound  bool
}

var _ fl.Defense = (*DINAR)(nil)

// New returns a DINAR defense that obfuscates the penultimate layer.
func New(seed int64) *DINAR {
	return &DINAR{Mode: ObfuscateGaussian, Seed: seed}
}

// NewWithLayers returns a DINAR defense obfuscating the given logical layer
// indices (negative = from the end).
func NewWithLayers(seed int64, layers ...int) *DINAR {
	return &DINAR{Mode: ObfuscateGaussian, Seed: seed, Layers: layers}
}

// Name implements fl.Defense.
func (d *DINAR) Name() string { return "dinar" }

// Bind implements fl.Defense: it resolves layer indices against the model
// layout.
func (d *DINAR) Bind(info fl.ModelInfo) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := len(info.Spans)
	if n == 0 {
		return fmt.Errorf("core: model has no layers")
	}
	want := d.Layers
	if len(want) == 0 {
		// Default: the penultimate layer (§4.1's typical consensus outcome).
		// If that layer sits on a residual main path, a skip connection
		// carries the real signal around the obfuscation and the upload
		// stays attackable — in such architectures the leakage measurement
		// votes for the classifier instead, so fall back to the last layer.
		p := n - 2
		if p < 0 {
			p = 0
		}
		if info.Spans[p].Bypassable {
			p = n - 1
		}
		want = []int{p}
	}
	resolved := make([]int, 0, len(want))
	seen := make(map[int]bool, len(want))
	for _, l := range want {
		idx := l
		if idx < 0 {
			idx = n + idx
		}
		if idx < 0 || idx >= n {
			return fmt.Errorf("core: layer %d out of range for %d-layer model", l, n)
		}
		if !seen[idx] {
			seen[idx] = true
			resolved = append(resolved, idx)
		}
	}
	d.info = info
	d.layers = resolved
	d.store = make(map[int]map[int][]float64)
	d.bound = true
	return nil
}

// PrivateLayers returns the resolved obfuscated layer indices (valid after
// Bind).
func (d *DINAR) PrivateLayers() []int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]int(nil), d.layers...)
}

// OnGlobalModel implements fl.Defense: model personalization (Algorithm 1,
// lines 1–6). For each protected layer the client's stored private
// parameters replace the (obfuscated) global values. On the first round no
// private copy exists yet and the global values pass through unchanged.
func (d *DINAR) OnGlobalModel(clientID, round int, state []float64) []float64 {
	out := append([]float64(nil), state...)
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.bound {
		return out
	}
	saved := d.store[clientID]
	if saved == nil {
		return out
	}
	for _, li := range d.layers {
		sp := d.info.Spans[li]
		if priv, ok := saved[li]; ok {
			copy(out[sp.Offset:sp.Offset+sp.Len], priv)
		}
	}
	return out
}

// BeforeUpload implements fl.Defense: model obfuscation (Algorithm 1, lines
// 15–17). The trained layer-p parameters are stored privately (θᵖ* ← θᵖ) and
// replaced in the upload by random values.
func (d *DINAR) BeforeUpload(round int, _ []float64, u *fl.Update) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.bound {
		return
	}
	saved := d.store[u.ClientID]
	if saved == nil {
		saved = make(map[int][]float64, len(d.layers))
		d.store[u.ClientID] = saved
	}
	rng := rand.New(rand.NewSource(d.Seed ^ int64(round)<<20 ^ int64(u.ClientID)<<4 ^ 0x1d))
	for _, li := range d.layers {
		sp := d.info.Spans[li]
		segment := u.State[sp.Offset : sp.Offset+sp.Len]
		saved[li] = append(saved[li][:0], segment...)
		fillRandom(segment, sp, d.Mode, rng)
	}
}

// Aggregate implements fl.Defense with plain FedAvg; DINAR adds no
// server-side work (Table 3: +0% aggregation overhead).
func (d *DINAR) Aggregate(_ int, _ []float64, updates []*fl.Update) ([]float64, error) {
	return fl.FedAvg(updates)
}

// StreamingAggregator implements fl.StreamingCapable: DINAR's server side is
// plain FedAvg, so updates fold into an O(model) accumulator as they arrive.
// Sampled-out clients keep obfuscating with a stale private layer until the
// next broadcast they see re-personalizes it (OnGlobalModel).
func (d *DINAR) StreamingAggregator() fl.StreamingAggregator { return fl.NewStreamingFedAvg() }

// StoredPrivate returns a copy of the stored private parameters of the given
// client and logical layer, or nil if none exist. Intended for tests and the
// middleware's crash-recovery path.
func (d *DINAR) StoredPrivate(clientID, layer int) []float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	saved := d.store[clientID]
	if saved == nil {
		return nil
	}
	priv, ok := saved[layer]
	if !ok {
		return nil
	}
	return append([]float64(nil), priv...)
}

// ExportStore returns a deep copy of a client's full private-layer store
// (layer index → parameters), for checkpointing. Nil when the client has no
// stored layers yet.
func (d *DINAR) ExportStore(clientID int) map[int][]float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	saved := d.store[clientID]
	if len(saved) == 0 {
		return nil
	}
	out := make(map[int][]float64, len(saved))
	for li, vals := range saved {
		out[li] = append([]float64(nil), vals...)
	}
	return out
}

// ImportStore replaces a client's private-layer store with the given layers
// (crash recovery from a checkpoint). Layer lengths are validated against
// the bound model layout.
func (d *DINAR) ImportStore(clientID int, layers map[int][]float64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.bound {
		return fmt.Errorf("core: ImportStore before Bind")
	}
	saved := make(map[int][]float64, len(layers))
	for li, vals := range layers {
		if li < 0 || li >= len(d.info.Spans) {
			return fmt.Errorf("core: imported layer %d out of range", li)
		}
		if len(vals) != d.info.Spans[li].Len {
			return fmt.Errorf("core: imported layer %d has %d values, want %d", li, len(vals), d.info.Spans[li].Len)
		}
		saved[li] = append([]float64(nil), vals...)
	}
	d.store[clientID] = saved
	return nil
}

// fillRandom overwrites segment with random values matching the layer's
// initialization distribution.
func fillRandom(segment []float64, sp nn.Span, mode ObfuscationMode, rng *rand.Rand) {
	switch mode {
	case ObfuscateUniform:
		bound := 2 * sp.InitScale
		for i := range segment {
			segment[i] = -bound + 2*bound*rng.Float64()
		}
	default: // ObfuscateGaussian
		for i := range segment {
			segment[i] = rng.NormFloat64() * sp.InitScale
		}
	}
}

// Obfuscate replaces the given logical layer's values in state with random
// draws, standalone (used by the per-layer protection sweep of Fig. 4b/5
// without running the full defense pipeline).
func Obfuscate(state []float64, sp nn.Span, mode ObfuscationMode, rng *rand.Rand) error {
	if sp.Offset < 0 || sp.Offset+sp.Len > len(state) {
		return fmt.Errorf("core: span [%d,%d) out of state length %d", sp.Offset, sp.Offset+sp.Len, len(state))
	}
	fillRandom(state[sp.Offset:sp.Offset+sp.Len], sp, mode, rng)
	return nil
}
