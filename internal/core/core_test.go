package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/fl"
	"repro/internal/model"
	"repro/internal/nn"
)

func testInfo(t *testing.T) fl.ModelInfo {
	t.Helper()
	m := model.FCNN6(40, 10, rand.New(rand.NewSource(1)))
	return fl.InfoOf(m)
}

func testModel() *nn.Model {
	return model.FCNN6(40, 10, rand.New(rand.NewSource(1)))
}

func TestBindDefaultsToPenultimate(t *testing.T) {
	d := New(7)
	info := testInfo(t)
	if err := d.Bind(info); err != nil {
		t.Fatal(err)
	}
	layers := d.PrivateLayers()
	if len(layers) != 1 || layers[0] != len(info.Spans)-2 {
		t.Fatalf("private layers = %v, want [%d]", layers, len(info.Spans)-2)
	}
}

func TestBindExplicitAndNegativeLayers(t *testing.T) {
	d := NewWithLayers(7, 1, -1, 1) // duplicate 1 should collapse
	info := testInfo(t)
	if err := d.Bind(info); err != nil {
		t.Fatal(err)
	}
	layers := d.PrivateLayers()
	if len(layers) != 2 || layers[0] != 1 || layers[1] != len(info.Spans)-1 {
		t.Fatalf("private layers = %v", layers)
	}
}

func TestBindRejectsOutOfRange(t *testing.T) {
	info := testInfo(t)
	if err := NewWithLayers(7, 99).Bind(info); err == nil {
		t.Fatal("accepted layer 99")
	}
	if err := NewWithLayers(7, -99).Bind(info); err == nil {
		t.Fatal("accepted layer -99")
	}
	if err := New(7).Bind(fl.ModelInfo{}); err == nil {
		t.Fatal("accepted empty model")
	}
}

func TestObfuscationReplacesOnlyPrivateLayer(t *testing.T) {
	d := New(7)
	info := testInfo(t)
	if err := d.Bind(info); err != nil {
		t.Fatal(err)
	}
	m := testModel()
	original := m.StateVector()
	u := &fl.Update{ClientID: 0, Round: 0, State: append([]float64(nil), original...), NumSamples: 10}
	d.BeforeUpload(0, nil, u)

	sp := info.Spans[len(info.Spans)-2]
	changedInside, changedOutside := 0, 0
	for i := range original {
		if u.State[i] != original[i] {
			if i >= sp.Offset && i < sp.Offset+sp.Len {
				changedInside++
			} else {
				changedOutside++
			}
		}
	}
	if changedOutside != 0 {
		t.Fatalf("%d values outside the private layer changed", changedOutside)
	}
	if changedInside < sp.Len/2 {
		t.Fatalf("only %d of %d private-layer values changed", changedInside, sp.Len)
	}
}

func TestPersonalizationRestoresPrivateLayer(t *testing.T) {
	d := New(7)
	info := testInfo(t)
	if err := d.Bind(info); err != nil {
		t.Fatal(err)
	}
	m := testModel()
	trained := m.StateVector()
	sp := info.Spans[len(info.Spans)-2]

	// Client 0 uploads: private layer gets stored and obfuscated.
	u := &fl.Update{ClientID: 0, Round: 0, State: append([]float64(nil), trained...), NumSamples: 10}
	d.BeforeUpload(0, nil, u)

	// Server aggregates (here: just the one update) and broadcasts.
	global, err := d.Aggregate(0, nil, []*fl.Update{u})
	if err != nil {
		t.Fatal(err)
	}

	// Client 0 personalizes: private layer must match the trained one again.
	personalized := d.OnGlobalModel(0, 1, global)
	for i := sp.Offset; i < sp.Offset+sp.Len; i++ {
		if personalized[i] != trained[i] {
			t.Fatalf("private layer not restored at %d: %v != %v", i, personalized[i], trained[i])
		}
	}

	// A different client has no stored copy: it keeps the obfuscated values.
	other := d.OnGlobalModel(1, 1, global)
	same := 0
	for i := sp.Offset; i < sp.Offset+sp.Len; i++ {
		if other[i] == trained[i] {
			same++
		}
	}
	if same > sp.Len/10 {
		t.Fatalf("client 1 unexpectedly sees %d/%d of client 0's private values", same, sp.Len)
	}
}

func TestOnGlobalModelBeforeBindIsIdentity(t *testing.T) {
	d := New(7)
	in := []float64{1, 2, 3}
	out := d.OnGlobalModel(0, 0, in)
	for i := range in {
		if out[i] != in[i] {
			t.Fatal("unbound defense should be identity")
		}
	}
	// Must be a copy, not an alias.
	out[0] = 99
	if in[0] == 99 {
		t.Fatal("OnGlobalModel aliased its input")
	}
	u := &fl.Update{State: []float64{1, 2, 3}}
	d.BeforeUpload(0, nil, u) // must not panic before Bind
}

func TestStoredPrivate(t *testing.T) {
	d := New(7)
	info := testInfo(t)
	if err := d.Bind(info); err != nil {
		t.Fatal(err)
	}
	p := len(info.Spans) - 2
	if d.StoredPrivate(0, p) != nil {
		t.Fatal("store should start empty")
	}
	m := testModel()
	u := &fl.Update{ClientID: 3, State: m.StateVector(), NumSamples: 1}
	d.BeforeUpload(0, nil, u)
	priv := d.StoredPrivate(3, p)
	if priv == nil {
		t.Fatal("private layer not stored")
	}
	sp := info.Spans[p]
	if len(priv) != sp.Len {
		t.Fatalf("stored %d values, want %d", len(priv), sp.Len)
	}
	if d.StoredPrivate(3, 0) != nil {
		t.Fatal("unprotected layer should not be stored")
	}
}

func TestObfuscationDeterministicPerRoundClient(t *testing.T) {
	run := func() []float64 {
		d := New(42)
		info := testInfo(t)
		if err := d.Bind(info); err != nil {
			t.Fatal(err)
		}
		m := testModel()
		u := &fl.Update{ClientID: 2, Round: 5, State: m.StateVector(), NumSamples: 1}
		d.BeforeUpload(5, nil, u)
		return u.State
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("obfuscation not deterministic for fixed seed/round/client")
		}
	}
}

func TestObfuscationDiffersAcrossRounds(t *testing.T) {
	d := New(42)
	info := testInfo(t)
	if err := d.Bind(info); err != nil {
		t.Fatal(err)
	}
	sp := info.Spans[len(info.Spans)-2]
	m := testModel()
	u1 := &fl.Update{ClientID: 0, Round: 0, State: m.StateVector(), NumSamples: 1}
	u2 := &fl.Update{ClientID: 0, Round: 1, State: m.StateVector(), NumSamples: 1}
	d.BeforeUpload(0, nil, u1)
	d.BeforeUpload(1, nil, u2)
	same := 0
	for i := sp.Offset; i < sp.Offset+sp.Len; i++ {
		if u1.State[i] == u2.State[i] {
			same++
		}
	}
	if same > sp.Len/10 {
		t.Fatalf("rounds share %d/%d obfuscated values", same, sp.Len)
	}
}

func TestObfuscateGaussianMatchesInitScale(t *testing.T) {
	sp := nn.Span{Offset: 0, Len: 20000, InitScale: 0.3}
	state := make([]float64, 20000)
	rng := rand.New(rand.NewSource(1))
	if err := Obfuscate(state, sp, ObfuscateGaussian, rng); err != nil {
		t.Fatal(err)
	}
	var sum, sumSq float64
	for _, v := range state {
		sum += v
		sumSq += v * v
	}
	mean := sum / float64(len(state))
	std := math.Sqrt(sumSq/float64(len(state)) - mean*mean)
	if math.Abs(mean) > 0.01 {
		t.Fatalf("obfuscated mean = %v", mean)
	}
	if math.Abs(std-0.3) > 0.01 {
		t.Fatalf("obfuscated std = %v, want 0.3", std)
	}
}

func TestObfuscateUniformBounds(t *testing.T) {
	sp := nn.Span{Offset: 2, Len: 1000, InitScale: 0.5}
	state := make([]float64, 1004)
	rng := rand.New(rand.NewSource(1))
	if err := Obfuscate(state, sp, ObfuscateUniform, rng); err != nil {
		t.Fatal(err)
	}
	if state[0] != 0 || state[1] != 0 || state[1002] != 0 {
		t.Fatal("Obfuscate touched values outside the span")
	}
	for i := 2; i < 1002; i++ {
		if state[i] < -1 || state[i] > 1 {
			t.Fatalf("uniform value %v outside [-2·0.5, 2·0.5]", state[i])
		}
	}
}

func TestObfuscateSpanBounds(t *testing.T) {
	state := make([]float64, 10)
	rng := rand.New(rand.NewSource(1))
	if err := Obfuscate(state, nn.Span{Offset: 8, Len: 5}, ObfuscateGaussian, rng); err == nil {
		t.Fatal("accepted out-of-range span")
	}
	if err := Obfuscate(state, nn.Span{Offset: -1, Len: 2}, ObfuscateGaussian, rng); err == nil {
		t.Fatal("accepted negative offset")
	}
}

func TestAggregateIsFedAvg(t *testing.T) {
	d := New(1)
	updates := []*fl.Update{
		{ClientID: 0, State: []float64{2}, NumSamples: 1},
		{ClientID: 1, State: []float64{4}, NumSamples: 1},
	}
	got, err := d.Aggregate(0, nil, updates)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 3 {
		t.Fatalf("aggregate = %v", got)
	}
}

func TestExportImportStore(t *testing.T) {
	d := New(7)
	info := testInfo(t)
	if err := d.Bind(info); err != nil {
		t.Fatal(err)
	}
	if d.ExportStore(0) != nil {
		t.Fatal("empty store should export nil")
	}
	m := testModel()
	u := &fl.Update{ClientID: 0, State: m.StateVector(), NumSamples: 1}
	d.BeforeUpload(0, nil, u)
	exported := d.ExportStore(0)
	if exported == nil {
		t.Fatal("nothing exported after upload")
	}
	p := len(info.Spans) - 2
	if len(exported[p]) != info.Spans[p].Len {
		t.Fatalf("exported layer %d has %d values", p, len(exported[p]))
	}
	// Import into a fresh defense (crash recovery) and verify
	// personalization picks the imported values up.
	d2 := New(7)
	if err := d2.Bind(info); err != nil {
		t.Fatal(err)
	}
	if err := d2.ImportStore(0, exported); err != nil {
		t.Fatal(err)
	}
	global := make([]float64, info.NumState)
	personalized := d2.OnGlobalModel(0, 1, global)
	sp := info.Spans[p]
	for i := 0; i < sp.Len; i++ {
		if personalized[sp.Offset+i] != exported[p][i] {
			t.Fatal("imported private layer not restored")
		}
	}
}

func TestImportStoreValidation(t *testing.T) {
	d := New(7)
	if err := d.ImportStore(0, map[int][]float64{0: {1}}); err == nil {
		t.Fatal("ImportStore before Bind should fail")
	}
	info := testInfo(t)
	if err := d.Bind(info); err != nil {
		t.Fatal(err)
	}
	if err := d.ImportStore(0, map[int][]float64{99: {1}}); err == nil {
		t.Fatal("accepted out-of-range layer")
	}
	if err := d.ImportStore(0, map[int][]float64{0: {1, 2}}); err == nil {
		t.Fatal("accepted wrong-length layer")
	}
}

func TestBindSkipsBypassablePenultimate(t *testing.T) {
	// ResNet20's penultimate span sits inside a residual block; a skip
	// connection would carry the signal around the obfuscation, so the
	// default must fall back to the classifier.
	m := model.ResNet20(3, 10, rand.New(rand.NewSource(1)))
	info := fl.InfoOf(m)
	if !info.Spans[len(info.Spans)-2].Bypassable {
		t.Fatal("ResNet20 penultimate span should be bypassable")
	}
	if info.Spans[len(info.Spans)-1].Bypassable {
		t.Fatal("ResNet20 classifier should not be bypassable")
	}
	d := New(7)
	if err := d.Bind(info); err != nil {
		t.Fatal(err)
	}
	layers := d.PrivateLayers()
	if len(layers) != 1 || layers[0] != len(info.Spans)-1 {
		t.Fatalf("private layers = %v, want classifier %d", layers, len(info.Spans)-1)
	}
}
