package service

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

func validSpec() JobSpec {
	return JobSpec{Name: "job-a", Dataset: "synth", Clients: 4, Rounds: 3, Seed: 1}
}

func TestValidateAcceptsValidSpec(t *testing.T) {
	s := validSpec()
	if err := s.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*JobSpec)
		field  string
		code   string
	}{
		{"empty name", func(s *JobSpec) { s.Name = "" }, "name", "missing"},
		{"bad name charset", func(s *JobSpec) { s.Name = "a/b" }, "name", "invalid"},
		{"path traversal name", func(s *JobSpec) { s.Name = ".." }, "", ""}, // dots alone are charset-legal; must NOT hit the files of another job — covered below
		{"missing dataset", func(s *JobSpec) { s.Dataset = "" }, "dataset", "missing"},
		{"zero clients", func(s *JobSpec) { s.Clients = 0 }, "clients", "invalid"},
		{"negative rounds", func(s *JobSpec) { s.Rounds = -3 }, "rounds", "invalid"},
		{"zero rounds", func(s *JobSpec) { s.Rounds = 0 }, "rounds", "invalid"},
		{"negative records", func(s *JobSpec) { s.Records = -1 }, "records", "invalid"},
		{"min_clients beyond clients", func(s *JobSpec) { s.MinClients = 9 }, "min_clients", "invalid"},
		{"min_clients beyond sample_size", func(s *JobSpec) { s.SampleSize = 2; s.MinClients = 3 }, "min_clients", "conflict"},
		{"negative deadline", func(s *JobSpec) { s.RoundDeadlineMs = -1 }, "round_deadline_ms", "invalid"},
		{"negative staleness", func(s *JobSpec) { s.AsyncStaleness = -1 }, "async_staleness", "invalid"},
		{"unknown wire", func(s *JobSpec) { s.Wire = "carrier-pigeon" }, "wire", "invalid"},
		{"gob with codecs", func(s *JobSpec) { s.Wire = "gob"; s.Compress = true }, "wire", "conflict"},
		{"unknown quantize", func(s *JobSpec) { s.Quantize = "int4" }, "quantize", "invalid"},
		{"topk out of range", func(s *JobSpec) { s.Quantize = "int8"; s.TopK = 1.5 }, "topk", "invalid"},
		{"topk without quantize", func(s *JobSpec) { s.TopK = 0.1 }, "topk", "conflict"},
		{"conflicting quant seed", func(s *JobSpec) { s.QuantSeed = 99 }, "quant_seed", "conflict"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := validSpec()
			tc.mutate(&s)
			err := s.Validate()
			if tc.field == "" {
				return // charset-legal; the checkpoint stem is still confined to the state dir
			}
			if err == nil {
				t.Fatalf("mutation accepted: %+v", s)
			}
			var errs SpecErrors
			if !errors.As(err, &errs) {
				t.Fatalf("error is not SpecErrors: %T %v", err, err)
			}
			found := false
			for _, e := range errs {
				if e.Field == tc.field && e.Code == tc.code {
					found = true
				}
			}
			if !found {
				t.Fatalf("want a %s/%s error, got %v", tc.field, tc.code, errs)
			}
		})
	}
}

func TestValidateCollectsAllFailures(t *testing.T) {
	s := JobSpec{Name: "", Clients: -1, Rounds: -1}
	err := s.Validate()
	var errs SpecErrors
	if !errors.As(err, &errs) || len(errs) < 4 {
		t.Fatalf("want >=4 collected failures (name, dataset, clients, rounds), got %v", err)
	}
}

func TestDecodeJobSpecStrict(t *testing.T) {
	if _, err := DecodeJobSpec(strings.NewReader(`{"name":"a","dataset":"d","clients":2,"rounds":1,"bogus":true}`)); err == nil {
		t.Fatal("unknown field accepted")
	} else if !strings.Contains(err.Error(), "unknown_field") {
		t.Fatalf("unknown field not typed as unknown_field: %v", err)
	}
	if _, err := DecodeJobSpec(strings.NewReader(`{"name":"a"} {"name":"b"}`)); err == nil {
		t.Fatal("trailing document accepted")
	}
	if _, err := DecodeJobSpec(strings.NewReader(`{"name": 7}`)); err == nil {
		t.Fatal("type mismatch accepted")
	}
	spec, err := DecodeJobSpec(strings.NewReader(`{"name":"a","dataset":"d","clients":2,"rounds":1}`))
	if err != nil {
		t.Fatal(err)
	}
	if spec.Name != "a" || spec.Clients != 2 {
		t.Fatalf("decoded spec wrong: %+v", spec)
	}
}

// FuzzJobSpec throws arbitrary documents at the strict decoder and the
// validator: neither may panic, a decodable document must survive a
// marshal/decode round trip, and a spec that validates must keep
// validating after the round trip (no hidden state in validation).
func FuzzJobSpec(f *testing.F) {
	f.Add(`{"name":"a","dataset":"d","clients":2,"rounds":1}`)
	f.Add(`{"name":"a","dataset":"d","clients":2,"rounds":-5}`)
	f.Add(`{"name":"../evil","dataset":"d","clients":2,"rounds":1}`)
	f.Add(`{"name":"a","dataset":"d","clients":4,"rounds":2,"min_clients":3,"sample_size":2}`)
	f.Add(`{"name":"a","dataset":"d","clients":2,"rounds":1,"quant_seed":7}`)
	f.Add(`{"name":"a","dataset":"d","clients":2,"rounds":1,"wire":"gob","delta":true}`)
	f.Add(`{"unknown":"field"}`)
	f.Add(`not json at all`)
	f.Add(`{"name":"a"} trailing`)
	f.Add(`{"clients":9223372036854775807,"rounds":-9223372036854775808}`)
	f.Fuzz(func(t *testing.T, doc string) {
		spec, err := DecodeJobSpec(strings.NewReader(doc))
		if err != nil {
			return
		}
		verr := spec.Validate()
		data, merr := json.Marshal(spec)
		if merr != nil {
			t.Fatalf("decoded spec unmarshalable: %v", merr)
		}
		again, err := DecodeJobSpec(strings.NewReader(string(data)))
		if err != nil {
			t.Fatalf("round-tripped spec rejected: %v\ndoc: %s", err, data)
		}
		if *again != *spec {
			t.Fatalf("round trip changed the spec:\n before %+v\n after  %+v", spec, again)
		}
		if (verr == nil) != (again.Validate() == nil) {
			t.Fatalf("validation verdict changed across round trip for %+v", spec)
		}
	})
}
