package service

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/flnet"
	"repro/internal/telemetry"
)

// Service-level metrics live in the process-global registry (they
// describe the shared front door, not any one job; job-scoped metrics
// carry the job label via each job's own registry).
var (
	telRouted = telemetry.NewCounter("dinar_service_routed_total",
		"client connections routed to a job by the service front door")
	telRouteRejected = telemetry.NewCounter("dinar_service_route_rejected_total",
		"client connections rejected at the front door (bad hello, unknown or stopped job)")
	telRouteShed = telemetry.NewCounter("dinar_service_route_shed_total",
		"client connections shed with a retry notice (job backlog full)")
	telRateLimited = telemetry.NewCounter("dinar_service_rate_limited_total",
		"client connections shed by the per-client hello rate limit")
	telJobs = telemetry.NewGauge("dinar_service_jobs",
		"jobs currently registered in the service control plane")
)

// ErrJobNotFound is returned for operations on a job name the registry
// does not hold.
var ErrJobNotFound = errors.New("service: job not found")

// ErrJobExists is returned by CreateJob for a duplicate job name.
var ErrJobExists = errors.New("service: job already exists")

// maxHelloBytes bounds the first frame the front door will buffer while
// routing. A Hello carries no model state; 64 KiB is generous.
const maxHelloBytes = 64 << 10

// Options configures a Service.
type Options struct {
	// Listener is the shared client-facing listener. When nil, Addr is
	// listened on via TCP.
	Listener net.Listener
	// Addr is the TCP listen address used when Listener is nil.
	Addr string
	// StateDir holds the service manifest and every job's checkpoint
	// chain; it is the unit of state a rolling restart re-adopts.
	StateDir string
	// Builder constructs each job's defense and initial model state.
	Builder Builder
	// Backlog bounds each job's pending-connection queue; a full backlog
	// sheds new clients with a retry notice instead of stalling the
	// shared accept path. 0 means 16.
	Backlog int
	// ClientRate is the sustained per-(job, client) hello admission rate
	// per second; ClientBurst is the burst allowance. 0 means 10 and 20.
	// Reconnect storms from one client are absorbed here, before they
	// can occupy a job's backlog.
	ClientRate  float64
	ClientBurst int
	// HelloTimeout bounds how long the front door waits for a
	// connection's first frame before dropping it. 0 means 5s.
	HelloTimeout time.Duration
	// RetryAfter is the back-off suggested to shed clients. 0 means
	// 500ms.
	RetryAfter time.Duration
	// Logf receives control-plane progress lines (optional).
	Logf func(format string, args ...any)
}

// Service is the multi-tenant control plane: a registry of named
// federation jobs behind one shared client listener and one admin API.
type Service struct {
	opts    Options
	ln      net.Listener
	logf    func(format string, args ...any)
	limiter *rateLimiter

	mu     sync.Mutex
	jobs   map[string]*Job
	order  []string // creation order, for stable listings and exposition
	closed bool

	acceptDone chan struct{}
	routeWG    sync.WaitGroup
}

// New starts a Service: it re-adopts every job recorded in the state
// directory's manifest (restarting federations that were running when the
// previous process generation exited — each resumes from its checkpoint
// chain), then begins accepting clients.
func New(opts Options) (*Service, error) {
	if opts.Builder == nil {
		return nil, errors.New("service: Options.Builder is required")
	}
	if opts.StateDir == "" {
		return nil, errors.New("service: Options.StateDir is required")
	}
	if err := os.MkdirAll(opts.StateDir, 0o755); err != nil {
		return nil, fmt.Errorf("service: state dir: %w", err)
	}
	if opts.Backlog <= 0 {
		opts.Backlog = 16
	}
	if opts.ClientRate <= 0 {
		opts.ClientRate = 10
	}
	if opts.ClientBurst <= 0 {
		opts.ClientBurst = 20
	}
	if opts.HelloTimeout <= 0 {
		opts.HelloTimeout = 5 * time.Second
	}
	if opts.RetryAfter <= 0 {
		opts.RetryAfter = 500 * time.Millisecond
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	ln := opts.Listener
	if ln == nil {
		var err error
		ln, err = net.Listen("tcp", opts.Addr)
		if err != nil {
			return nil, fmt.Errorf("service: listen: %w", err)
		}
	}
	s := &Service{
		opts:       opts,
		ln:         ln,
		logf:       logf,
		limiter:    newRateLimiter(opts.ClientRate, opts.ClientBurst),
		jobs:       make(map[string]*Job),
		acceptDone: make(chan struct{}),
	}
	if err := s.adoptManifest(); err != nil {
		// The accept loop never started; release its waiters before the
		// teardown path blocks on them.
		close(s.acceptDone)
		s.Close()
		return nil, err
	}
	go s.acceptLoop()
	return s, nil
}

// Addr returns the shared client listener's address.
func (s *Service) Addr() net.Addr { return s.ln.Addr() }

// ---------------------------------------------------------------------------
// Manifest: the durable job registry a rolling restart re-adopts.

type manifestJob struct {
	Spec  JobSpec  `json:"spec"`
	State JobState `json:"state"`
}

type manifestDoc struct {
	Jobs []manifestJob `json:"jobs"`
}

func (s *Service) manifestPath() string {
	return filepath.Join(s.opts.StateDir, "manifest.json")
}

// persistManifest writes the current job registry atomically
// (temp + rename), so a crash mid-write leaves the previous manifest
// intact.
func (s *Service) persistManifest() {
	s.mu.Lock()
	doc := manifestDoc{Jobs: make([]manifestJob, 0, len(s.order))}
	for _, name := range s.order {
		j := s.jobs[name]
		doc.Jobs = append(doc.Jobs, manifestJob{Spec: j.spec, State: j.currentState()})
	}
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		s.logf("service: manifest encode: %v", err)
		return
	}
	tmp, err := os.CreateTemp(s.opts.StateDir, ".manifest-*")
	if err != nil {
		s.logf("service: manifest write: %v", err)
		return
	}
	_, werr := tmp.Write(data)
	serr := tmp.Sync()
	cerr := tmp.Close()
	if werr != nil || serr != nil || cerr != nil {
		os.Remove(tmp.Name())
		s.logf("service: manifest write: %v", errors.Join(werr, serr, cerr))
		return
	}
	if err := os.Rename(tmp.Name(), s.manifestPath()); err != nil {
		os.Remove(tmp.Name())
		s.logf("service: manifest write: %v", err)
	}
}

// adoptManifest loads the manifest and rebuilds the registry: jobs that
// were running (or mid-drain) when the previous process exited are
// started again and resume from their checkpoint chains; paused and
// terminal jobs are re-registered in their recorded states.
func (s *Service) adoptManifest() error {
	data, err := os.ReadFile(s.manifestPath())
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("service: manifest read: %w", err)
	}
	var doc manifestDoc
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&doc); err != nil {
		return fmt.Errorf("service: manifest decode: %w", err)
	}
	for _, entry := range doc.Jobs {
		if err := entry.Spec.Validate(); err != nil {
			s.logf("service: manifest: skipping invalid job %q: %v", entry.Spec.Name, err)
			continue
		}
		j := newJob(entry.Spec, s.opts.Builder, s.opts.StateDir, s.opts.Backlog, s.logf, s.persistManifest)
		s.mu.Lock()
		s.jobs[j.Name()] = j
		s.order = append(s.order, j.Name())
		telJobs.Set(int64(len(s.jobs)))
		s.mu.Unlock()
		switch entry.State {
		case JobRunning, JobDraining, JobCreated:
			if err := j.start(); err != nil {
				s.logf("service: re-adopt job %q: %v", j.Name(), err)
				j.mu.Lock()
				j.state = JobFailed
				j.detail = err.Error()
				j.mu.Unlock()
			} else {
				s.logf("service: re-adopted job %q from its checkpoint chain", j.Name())
			}
		case JobPaused, JobDone, JobFailed:
			j.mu.Lock()
			j.state = entry.State
			j.mu.Unlock()
		default:
			s.logf("service: manifest: job %q has unknown state %q, parking as paused", j.Name(), entry.State)
			j.mu.Lock()
			j.state = JobPaused
			j.mu.Unlock()
		}
	}
	s.persistManifest()
	return nil
}

// ---------------------------------------------------------------------------
// Job registry operations (the admin API calls these).

// CreateJob validates the spec, constructs the federation, and registers
// and starts the job. The name is reserved before the (slow) build and
// released on failure, so a failed build never leaves a half-constructed
// job and concurrent creates of the same name cannot both win.
func (s *Service) CreateJob(spec JobSpec) (JobStatus, error) {
	if err := spec.Validate(); err != nil {
		return JobStatus{}, err
	}
	j := newJob(spec, s.opts.Builder, s.opts.StateDir, s.opts.Backlog, s.logf, s.persistManifest)
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return JobStatus{}, errors.New("service: closed")
	}
	if _, ok := s.jobs[spec.Name]; ok {
		s.mu.Unlock()
		return JobStatus{}, fmt.Errorf("%w: %q", ErrJobExists, spec.Name)
	}
	s.jobs[spec.Name] = j
	s.order = append(s.order, spec.Name)
	telJobs.Set(int64(len(s.jobs)))
	s.mu.Unlock()

	if err := j.start(); err != nil {
		s.unregister(spec.Name)
		return JobStatus{}, err
	}
	s.persistManifest()
	return j.status(), nil
}

// unregister removes a job from the registry (its checkpoint files are
// untouched; DeleteJob removes those).
func (s *Service) unregister(name string) {
	s.mu.Lock()
	delete(s.jobs, name)
	for i, n := range s.order {
		if n == name {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
	telJobs.Set(int64(len(s.jobs)))
	s.mu.Unlock()
}

// job looks up a registered job.
func (s *Service) job(name string) (*Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrJobNotFound, name)
	}
	return j, nil
}

// JobStatus returns one job's status.
func (s *Service) JobStatus(name string) (JobStatus, error) {
	j, err := s.job(name)
	if err != nil {
		return JobStatus{}, err
	}
	return j.status(), nil
}

// ListJobs returns every job's status in creation order.
func (s *Service) ListJobs() []JobStatus {
	s.mu.Lock()
	jobs := make([]*Job, 0, len(s.order))
	for _, name := range s.order {
		jobs = append(jobs, s.jobs[name])
	}
	s.mu.Unlock()
	out := make([]JobStatus, len(jobs))
	for i, j := range jobs {
		out[i] = j.status()
	}
	return out
}

// DrainJob gracefully stops a running job (terminal state "done").
func (s *Service) DrainJob(ctx context.Context, name string) error {
	j, err := s.job(name)
	if err != nil {
		return err
	}
	if err := j.drain(ctx, false, false); err != nil {
		return err
	}
	s.persistManifest()
	return nil
}

// PauseJob drains a running job into the resumable paused state.
func (s *Service) PauseJob(ctx context.Context, name string) error {
	j, err := s.job(name)
	if err != nil {
		return err
	}
	if err := j.drain(ctx, true, false); err != nil {
		return err
	}
	s.persistManifest()
	return nil
}

// ResumeJob restarts a paused job; it re-adopts its checkpoint chain and
// continues from the last completed round.
func (s *Service) ResumeJob(name string) error {
	j, err := s.job(name)
	if err != nil {
		return err
	}
	if err := j.start(); err != nil {
		return err
	}
	s.persistManifest()
	return nil
}

// DeleteJob stops a job (hard-cancelling any live federation), removes
// it from the registry, and deletes its checkpoint chain.
func (s *Service) DeleteJob(name string) error {
	j, err := s.job(name)
	if err != nil {
		return err
	}
	j.stop()
	s.unregister(name)
	s.persistManifest()
	// The checkpoint chain keeps multiple generations under the same
	// stem; remove them all so a recreated job starts fresh.
	if matches, err := filepath.Glob(j.ckptPath + "*"); err == nil {
		for _, path := range matches {
			os.Remove(path)
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Front door: demultiplexing the shared listener by Hello job name.

func (s *Service) acceptLoop() {
	defer close(s.acceptDone)
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				continue
			}
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if !closed && !errors.Is(err, net.ErrClosed) {
				s.logf("service: accept: %v", err)
			}
			return
		}
		s.routeWG.Add(1)
		go s.route(conn)
	}
}

// readHelloFrame buffers the connection's first frame verbatim (the
// framing is length-prefixed, so exactly 4+N bytes are consumed — no
// decoder over-read) and decodes it. The raw bytes are replayed to the
// job so its flnet server sees an untouched stream.
func readHelloFrame(conn net.Conn) (raw []byte, msg *flnet.Message, err error) {
	var header [4]byte
	if _, err := io.ReadFull(conn, header[:]); err != nil {
		return nil, nil, err
	}
	n := binary.BigEndian.Uint32(header[:])
	if n == 0 || n > maxHelloBytes {
		return nil, nil, fmt.Errorf("service: hello frame of %d bytes", n)
	}
	raw = make([]byte, 4+int(n))
	copy(raw, header[:])
	if _, err := io.ReadFull(conn, raw[4:]); err != nil {
		return nil, nil, err
	}
	msg, err = flnet.ReadMessage(bytes.NewReader(raw))
	if err != nil {
		return nil, nil, err
	}
	return raw, msg, nil
}

// reject answers a connection the service will not route and closes it.
func (s *Service) reject(conn net.Conn, msg *flnet.Message) {
	conn.SetWriteDeadline(time.Now().Add(2 * time.Second))
	flnet.WriteMessage(conn, msg) //nolint:errcheck // best-effort courtesy reply
	conn.Close()
}

// route reads one connection's Hello and hands the connection — Hello
// bytes replayed — to the named job. Shedding decisions (rate limit,
// full backlog) answer with a drain notice so well-behaved clients back
// off and redial instead of hammering.
func (s *Service) route(conn net.Conn) {
	defer s.routeWG.Done()
	conn.SetReadDeadline(time.Now().Add(s.opts.HelloTimeout)) //nolint:errcheck
	raw, hello, err := readHelloFrame(conn)
	if err != nil {
		telRouteRejected.Inc()
		conn.Close()
		return
	}
	conn.SetReadDeadline(time.Time{}) //nolint:errcheck
	if hello.Kind != flnet.KindHello {
		telRouteRejected.Inc()
		s.reject(conn, &flnet.Message{Kind: flnet.KindError, Err: "service: expected hello"})
		return
	}

	name := hello.Job
	if name == "" {
		// Back-compat: a job-unaware client is routed iff exactly one job
		// is registered, so single-tenant deployments keep working.
		s.mu.Lock()
		if len(s.order) == 1 {
			name = s.order[0]
		}
		s.mu.Unlock()
		if name == "" {
			telRouteRejected.Inc()
			s.reject(conn, &flnet.Message{Kind: flnet.KindError, Err: "service: hello names no job"})
			return
		}
	}

	if !s.limiter.allow(name+"/"+strconv.Itoa(hello.ClientID), time.Now()) {
		telRateLimited.Inc()
		s.reject(conn, &flnet.Message{Kind: flnet.KindDrain, RetryAfterMs: int(s.opts.RetryAfter / time.Millisecond)})
		return
	}

	j, err := s.job(name)
	if err != nil {
		telRouteRejected.Inc()
		s.reject(conn, &flnet.Message{Kind: flnet.KindError, Err: "service: unknown job " + name})
		return
	}
	err = j.push(&prefixConn{Conn: conn, prefix: raw})
	switch {
	case err == nil:
		telRouted.Inc()
	case errors.Is(err, ErrBacklogFull):
		telRouteShed.Inc()
		s.reject(conn, &flnet.Message{Kind: flnet.KindDrain, RetryAfterMs: int(s.opts.RetryAfter / time.Millisecond)})
	default:
		telRouteRejected.Inc()
		s.reject(conn, &flnet.Message{Kind: flnet.KindError, Err: "service: job " + name + " not accepting clients"})
	}
}

// ---------------------------------------------------------------------------
// Telemetry and lifecycle.

// WriteMetrics writes the merged Prometheus exposition: the process
// registry (service + wire + client counters) plus every job's labeled
// registry, grouped per metric name.
func (s *Service) WriteMetrics(w io.Writer) error {
	s.mu.Lock()
	regs := make([]*telemetry.Registry, 0, len(s.order)+1)
	regs = append(regs, telemetry.Default())
	for _, name := range s.order {
		regs = append(regs, s.jobs[name].Registry())
	}
	s.mu.Unlock()
	return telemetry.WritePrometheusMerged(w, regs...)
}

// Health summarizes the control plane for /healthz: Status is "service",
// NumClients counts registered jobs, RegisteredClients counts jobs whose
// federations are live. Per-job detail lives under /jobs.
func (s *Service) Health() telemetry.Health {
	statuses := s.ListJobs()
	live := 0
	for _, st := range statuses {
		if st.State == JobRunning || st.State == JobDraining {
			live++
		}
	}
	return telemetry.Health{
		Status:            "service",
		NumClients:        len(statuses),
		RegisteredClients: live,
	}
}

// Shutdown is the rolling-restart exit: every running job is drained
// concurrently (finishing its in-flight round and checkpointing), the
// manifest records them as running so the next process generation
// re-adopts them, and the shared listener closes. Blocks until every
// route goroutine and job supervisor has exited.
func (s *Service) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	jobs := make([]*Job, 0, len(s.order))
	for _, name := range s.order {
		jobs = append(jobs, s.jobs[name])
	}
	s.mu.Unlock()

	var wg sync.WaitGroup
	errCh := make(chan error, len(jobs))
	for _, j := range jobs {
		if j.currentState() != JobRunning && j.currentState() != JobDraining {
			continue
		}
		wg.Add(1)
		go func(j *Job) {
			defer wg.Done()
			if err := j.drain(ctx, false, true); err != nil {
				errCh <- err
			}
		}(j)
	}
	wg.Wait()
	close(errCh)
	var errs []error
	for err := range errCh {
		errs = append(errs, err)
	}
	s.persistManifest()
	s.markClosed()
	s.ln.Close()
	<-s.acceptDone
	s.routeWG.Wait()
	// Anything still alive (a drain that timed out) is cut hard so the
	// process can exit goroutine-clean.
	for _, j := range jobs {
		j.stop()
	}
	return errors.Join(errs...)
}

// Close stops everything immediately: the shared listener, every route
// goroutine, and every job (hard cancel, no graceful round completion).
func (s *Service) Close() error {
	s.markClosed()
	err := s.ln.Close()
	<-s.acceptDone
	s.routeWG.Wait()
	s.mu.Lock()
	jobs := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	for _, j := range jobs {
		j.stop()
	}
	return err
}

func (s *Service) markClosed() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
}

// ---------------------------------------------------------------------------
// Per-client admission rate limiting.

// rateLimiter is a token-bucket table keyed by job/clientID. The table
// is bounded: at maxBuckets the stalest half is evicted, trading
// momentary over-admission for a hard memory ceiling under client-ID
// churn.
type rateLimiter struct {
	rate  float64
	burst float64

	mu      sync.Mutex
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

const maxBuckets = 8192

func newRateLimiter(rate float64, burst int) *rateLimiter {
	return &rateLimiter{
		rate:    rate,
		burst:   float64(burst),
		buckets: make(map[string]*bucket),
	}
}

func (l *rateLimiter) allow(key string, now time.Time) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	b, ok := l.buckets[key]
	if !ok {
		if len(l.buckets) >= maxBuckets {
			l.evictStalest(now)
		}
		b = &bucket{tokens: l.burst, last: now}
		l.buckets[key] = b
	}
	b.tokens += now.Sub(b.last).Seconds() * l.rate
	if b.tokens > l.burst {
		b.tokens = l.burst
	}
	b.last = now
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// evictStalest drops the half of the buckets with the oldest activity.
// Called with mu held.
func (l *rateLimiter) evictStalest(now time.Time) {
	type aged struct {
		key  string
		last time.Time
	}
	all := make([]aged, 0, len(l.buckets))
	for k, b := range l.buckets {
		all = append(all, aged{k, b.last})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].last.Before(all[j].last) })
	for _, a := range all[:len(all)/2] {
		delete(l.buckets, a.key)
	}
}
