package service

import (
	"context"
	"errors"
	"fmt"
	"net"
	"path/filepath"
	"sync"

	"repro/internal/fl"
	"repro/internal/flnet"
	"repro/internal/telemetry"
)

// Builder constructs the model-and-defense half of a job from its spec:
// the bound defense and the initial global state vector. The control
// plane stays ignorant of datasets and model architectures — the binary
// wires in a builder backed by the dinar package. The builder may
// normalize the spec in place (fill defaulted fields such as the seed)
// before the job's flnet server is configured from it.
type Builder func(spec *JobSpec) (fl.Defense, []float64, error)

// JobState is one stop in a job's lifecycle:
// created → running → draining → done, with pause/resume as a detour
// (running → draining → paused → running) and failed as the terminal
// state of a job whose federation returned an error.
type JobState string

const (
	JobCreated  JobState = "created"
	JobRunning  JobState = "running"
	JobDraining JobState = "draining"
	JobPaused   JobState = "paused"
	JobDone     JobState = "done"
	JobFailed   JobState = "failed"
)

// terminal reports whether the state admits no further transitions.
func (s JobState) terminal() bool { return s == JobDone || s == JobFailed }

// JobStatus is the admin API's view of one job.
type JobStatus struct {
	Name  string   `json:"name"`
	State JobState `json:"state"`
	// Detail carries the failure message for a failed job and "drained"
	// for a job stopped early by an operator drain.
	Detail string `json:"detail,omitempty"`
	// StartRound is the round the current (or last) run resumed from —
	// nonzero after a checkpoint re-adoption.
	StartRound int `json:"start_round"`
	// Health is the live federation's /healthz snapshot; nil when the
	// job has no running server.
	Health *telemetry.Health `json:"health,omitempty"`
	Spec   JobSpec           `json:"spec"`
}

// Job supervises one federation: the flnet server, its connListener fed
// by the front door, its job-labeled telemetry registry, and the
// lifecycle state machine. All mutable fields are guarded by mu; the run
// goroutine owns srv.Run and reports back through runExit.
type Job struct {
	spec     JobSpec
	reg      *telemetry.Registry
	builder  Builder
	ckptPath string
	backlog  int
	logf     func(format string, args ...any)
	// onChange is called (without mu held) after every state
	// transition so the service can persist the manifest.
	onChange func()

	mu     sync.Mutex
	state  JobState
	detail string
	ln     *connListener
	srv    *flnet.Server
	cancel context.CancelFunc
	done   chan struct{} // closed when the run goroutine exits; nil when idle
	final  []float64
	// pausing marks an in-flight drain as a pause (ErrDraining lands in
	// JobPaused, resumable); suspending marks it as a process-level
	// shutdown (the state stays JobRunning so a restarted service
	// re-adopts the job).
	pausing    bool
	suspending bool
}

func newJob(spec JobSpec, builder Builder, stateDir string, backlog int, logf func(string, ...any), onChange func()) *Job {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	if onChange == nil {
		onChange = func() {}
	}
	return &Job{
		spec:     spec,
		reg:      telemetry.NewLabeledRegistry("job", spec.Name),
		builder:  builder,
		ckptPath: filepath.Join(stateDir, spec.Name+".ckpt"),
		backlog:  backlog,
		logf:     logf,
		onChange: onChange,
		state:    JobCreated,
	}
}

// Name returns the job's routing key.
func (j *Job) Name() string { return j.spec.Name }

// Registry returns the job's labeled telemetry registry (for merged
// exposition).
func (j *Job) Registry() *telemetry.Registry { return j.reg }

// start builds the federation and launches the run goroutine. Legal from
// created (first start) and paused (resume: the flnet server is rebuilt
// and re-adopts the checkpoint chain; the labeled registry is reused, so
// counters continue rather than reset). Construction happens entirely
// before the state flips to running — a failed build leaves the job
// exactly as it was, never half-constructed.
func (j *Job) start() error {
	j.mu.Lock()
	if j.state != JobCreated && j.state != JobPaused {
		state := j.state
		j.mu.Unlock()
		return fmt.Errorf("service: job %q is %s, not startable", j.spec.Name, state)
	}
	j.mu.Unlock()

	// Build outside the lock: model construction can be slow and touches
	// nothing of the job's mutable state.
	spec := j.spec
	def, initial, err := j.builder(&spec)
	if err != nil {
		return fmt.Errorf("service: job %q: %w", j.spec.Name, err)
	}
	ln := newConnListener(spec.Name, j.backlog)
	name := spec.Name
	logf := j.logf
	srv, err := flnet.NewServer(flnet.ServerConfig{
		NumClients:        spec.Clients,
		MinClients:        spec.MinClients,
		Rounds:            spec.Rounds,
		RoundDeadline:     spec.RoundDeadline(),
		SampleSize:        spec.SampleSize,
		SampleSeed:        spec.SampleSeed,
		SampleSeedDefault: spec.Seed,
		AsyncStaleness:    spec.AsyncStaleness,
		Streaming:         spec.Streaming,
		Wire:              spec.Wire,
		Compress:          spec.Compress,
		Quantize:          spec.Quantize,
		TopK:              spec.TopK,
		Delta:             spec.Delta,
		QuantSeed:         spec.QuantSeed,
		QuantSeedDefault:  spec.Seed,
		Defense:           def,
		InitialState:      initial,
		CheckpointPath:    j.ckptPath,
		Pipeline:          spec.Pipeline,
		Dataset:           spec.Dataset,
		NoScreen:          spec.NoScreen,
		Screen: fl.ScreenConfig{
			ClipNorms:        spec.ClipNorms,
			QuarantineRounds: spec.QuarantineRounds,
		},
		Listener: ln,
		Registry: j.reg,
		Logf: func(format string, args ...any) {
			logf("job %s: "+format, append([]any{name}, args...)...)
		},
	})
	if err != nil {
		ln.Close()
		return fmt.Errorf("service: job %q: %w", j.spec.Name, err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})

	j.mu.Lock()
	if j.state != JobCreated && j.state != JobPaused {
		// Lost a race with delete/close between the check and the build.
		state := j.state
		j.mu.Unlock()
		cancel()
		srv.Close()
		return fmt.Errorf("service: job %q is %s, not startable", j.spec.Name, state)
	}
	j.spec = spec // builder-normalized
	j.state = JobRunning
	j.detail = ""
	j.ln = ln
	j.srv = srv
	j.cancel = cancel
	j.done = done
	j.pausing = false
	j.suspending = false
	j.mu.Unlock()

	go j.run(ctx, srv, done)
	j.onChange()
	return nil
}

// run is the job's supervision goroutine: it owns srv.Run and translates
// its outcome into the lifecycle state. Everything the server holds —
// listener, rejoin acceptor, per-connection goroutines — is torn down
// before done closes, so a waiter observes a LeakGuard-clean job.
func (j *Job) run(ctx context.Context, srv *flnet.Server, done chan struct{}) {
	final, err := srv.Run(ctx)
	srv.Close() // idempotent; guarantees the listener is gone

	j.mu.Lock()
	j.final = final
	switch {
	case err == nil:
		j.state = JobDone
		j.detail = ""
	case errors.Is(err, flnet.ErrDraining):
		switch {
		case j.pausing:
			j.state = JobPaused
			j.detail = ""
		case j.suspending:
			// Process-level shutdown: keep JobRunning so the manifest
			// records a job the next process generation must re-adopt.
			j.state = JobRunning
			j.detail = ""
		default:
			j.state = JobDone
			j.detail = "drained"
		}
	default:
		j.state = JobFailed
		j.detail = err.Error()
	}
	j.srv = nil
	j.ln = nil
	j.cancel = nil
	j.mu.Unlock()

	close(done)
	j.onChange()
}

// push routes one demultiplexed client connection into the job.
func (j *Job) push(conn net.Conn) error {
	j.mu.Lock()
	ln := j.ln
	state := j.state
	j.mu.Unlock()
	if ln == nil || (state != JobRunning && state != JobDraining) {
		return fmt.Errorf("service: job %q is %s, not accepting clients", j.spec.Name, state)
	}
	return ln.Push(conn)
}

// drain stops the federation gracefully: the in-flight round finishes
// (or ctx expires), the final state is checkpointed, clients get drain
// notices. pause=true parks the job as paused (resumable); suspend=true
// is the process-level variant that leaves the state running for the
// manifest. Returns once the run goroutine has exited.
func (j *Job) drain(ctx context.Context, pause, suspend bool) error {
	j.mu.Lock()
	if j.state != JobRunning && j.state != JobDraining {
		state := j.state
		j.mu.Unlock()
		return fmt.Errorf("service: job %q is %s, not drainable", j.spec.Name, state)
	}
	srv := j.srv
	done := j.done
	j.state = JobDraining
	j.pausing = j.pausing || pause
	j.suspending = j.suspending || suspend
	j.mu.Unlock()
	j.onChange()

	if err := srv.Shutdown(ctx); err != nil && !errors.Is(err, flnet.ErrDraining) {
		return fmt.Errorf("service: job %q: drain: %w", j.spec.Name, err)
	}
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// stop hard-cancels the federation (no graceful round completion) and
// waits for the run goroutine. Used by delete and service Close; safe in
// any state.
func (j *Job) stop() {
	j.mu.Lock()
	cancel := j.cancel
	done := j.done
	j.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	if done != nil {
		<-done
	}
}

// status snapshots the job for the admin API.
func (j *Job) status() JobStatus {
	j.mu.Lock()
	st := JobStatus{
		Name:   j.spec.Name,
		State:  j.state,
		Detail: j.detail,
		Spec:   j.spec,
	}
	srv := j.srv
	j.mu.Unlock()
	if srv != nil {
		h := srv.Health()
		st.Health = &h
		st.StartRound = srv.StartRound()
	}
	return st
}

// currentState returns the job's lifecycle state.
func (j *Job) currentState() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// FinalState returns the job's last known global model (nil until the
// first run exits).
func (j *Job) FinalState() []float64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.final
}

// Reports returns the live server's per-round reports (nil when idle).
func (j *Job) Reports() []flnet.RoundReport {
	j.mu.Lock()
	srv := j.srv
	j.mu.Unlock()
	if srv == nil {
		return nil
	}
	return srv.Reports()
}
