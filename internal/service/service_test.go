package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/defense"
	"repro/internal/fl"
	"repro/internal/fleetsim"
	"repro/internal/flnet"
)

// testBuilder is the control-plane seam without the full dinar model
// stack: a "none" defense over a dim-sized synthetic model, where dim
// rides in spec.Records. The real binary plugs in dinar.JobBuilder here.
func testBuilder() Builder {
	return func(spec *JobSpec) (fl.Defense, []float64, error) {
		dim := spec.Records
		if dim <= 0 {
			dim = 8
		}
		def := defense.NewNone()
		if err := def.Bind(fl.ModelInfo{NumParams: dim, NumState: dim}); err != nil {
			return nil, nil, err
		}
		return def, make([]float64, dim), nil
	}
}

func newTestService(t *testing.T, stateDir string, front net.Listener) *Service {
	t.Helper()
	svc, err := New(Options{
		Listener: front,
		StateDir: stateDir,
		Builder:  testBuilder(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { svc.Close() })
	return svc
}

func jobDim(spec JobSpec) int {
	if spec.Records > 0 {
		return spec.Records
	}
	return 8
}

// runFleet drives spec.Clients simulated clients for the named job.
func runFleet(ctx context.Context, spec JobSpec, dial func() (net.Conn, error)) *fleetsim.Stats {
	fleet := &fleetsim.Fleet{
		N:    spec.Clients,
		Dim:  jobDim(spec),
		Seed: spec.Seed,
		Job:  spec.Name,
		Dial: dial,
	}
	return fleet.Run(ctx)
}

// referenceFinal runs the same federation single-tenant (a bare flnet
// server, no control plane) and returns its final global state — the
// bit-identical baseline every service-mode assertion compares against.
func referenceFinal(t *testing.T, spec JobSpec) []float64 {
	t.Helper()
	ref := spec
	def, initial, err := testBuilder()(&ref)
	if err != nil {
		t.Fatal(err)
	}
	mem := fleetsim.Listen(ref.Clients)
	srv, err := flnet.NewServer(flnet.ServerConfig{
		NumClients:        ref.Clients,
		MinClients:        ref.MinClients,
		Rounds:            ref.Rounds,
		RoundDeadline:     ref.RoundDeadline(),
		SampleSize:        ref.SampleSize,
		SampleSeed:        ref.SampleSeed,
		SampleSeedDefault: ref.Seed,
		AsyncStaleness:    ref.AsyncStaleness,
		Streaming:         ref.Streaming,
		Defense:           def,
		InitialState:      initial,
		Listener:          mem,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	finalCh := make(chan []float64, 1)
	go func() {
		final, err := srv.Run(ctx)
		if err != nil {
			t.Errorf("reference run: %v", err)
		}
		finalCh <- final
	}()
	refSpec := ref
	refSpec.Name = "" // single-tenant server: no routing, plain hellos
	runFleet(ctx, refSpec, mem.Dial)
	return <-finalCh
}

// waitState polls until the job reaches the wanted lifecycle state.
func waitState(t *testing.T, svc *Service, name string, want JobState, timeout time.Duration) JobStatus {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		st, err := svc.JobStatus(name)
		if err == nil && st.State == want {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %q never reached %s (last: %+v, err %v)", name, want, st, err)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func postJob(t *testing.T, api string, spec JobSpec) *http.Response {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(api+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func equalVec(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestServiceConcurrentJobs is the acceptance soak: one service process
// hosts three named jobs with different shapes (one pipelined, one
// cohort-sampled) over a shared in-memory listener; every job must
// finish and its final global model must be bit-identical to a
// single-tenant run of the same federation.
func TestServiceConcurrentJobs(t *testing.T) {
	chaos.GuardTest(t, 5*time.Second)
	mem := fleetsim.Listen(64)
	svc := newTestService(t, t.TempDir(), mem)
	api := httptest.NewServer(svc.AdminMux())
	defer api.Close()

	specs := []JobSpec{
		{Name: "alpha", Dataset: "synth", Clients: 6, Rounds: 4, Seed: 11, Records: 16},
		{Name: "beta", Dataset: "synth", Clients: 4, Rounds: 3, Seed: 22, Records: 8, SampleSize: 3, MinClients: 3},
		{Name: "gamma", Dataset: "synth", Clients: 5, Rounds: 5, Seed: 33, Records: 12, Pipeline: true},
	}
	for _, spec := range specs {
		resp := postJob(t, api.URL, spec)
		if resp.StatusCode != http.StatusCreated {
			body, _ := io.ReadAll(resp.Body)
			t.Fatalf("create %s: status %d: %s", spec.Name, resp.StatusCode, body)
		}
		resp.Body.Close()
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	var wg sync.WaitGroup
	for _, spec := range specs {
		wg.Add(1)
		go func(spec JobSpec) {
			defer wg.Done()
			stats := runFleet(ctx, spec, mem.Dial)
			if got := stats.Done.Load(); got != int64(spec.Clients) {
				t.Errorf("job %s: %d/%d clients finished (gaveUp=%d)", spec.Name, got, spec.Clients, stats.GaveUp.Load())
			}
		}(spec)
	}
	wg.Wait()

	for _, spec := range specs {
		waitState(t, svc, spec.Name, JobDone, 30*time.Second)
		j, err := svc.job(spec.Name)
		if err != nil {
			t.Fatal(err)
		}
		want := referenceFinal(t, spec)
		if !equalVec(j.FinalState(), want) {
			t.Errorf("job %s: service-mode final state differs from single-tenant run", spec.Name)
		}
	}

	// The merged exposition must label every job's samples and emit one
	// header per metric name.
	resp, err := http.Get(api.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	out := string(metrics)
	for _, spec := range specs {
		want := fmt.Sprintf("dinar_flnet_rounds_completed_total{job=%q} %d", spec.Name, spec.Rounds)
		if !strings.Contains(out, want) {
			t.Errorf("merged /metrics missing %q", want)
		}
	}
	if n := strings.Count(out, "# TYPE dinar_flnet_rounds_completed_total"); n != 1 {
		t.Errorf("merged /metrics has %d headers for one metric name", n)
	}
	// The pipelined job must have recorded its overlap histogram.
	if !strings.Contains(out, `dinar_flnet_pipeline_overlap_seconds_count{job="gamma"}`) {
		t.Error("pipelined job recorded no overlap histogram samples")
	}
}

// TestServiceRollingRestart proves the re-adoption path: jobs progress,
// the whole service drains (rolling restart), a new service generation
// on the same state dir re-adopts every job from its checkpoint chain,
// and the final models are still bit-identical to uninterrupted
// single-tenant runs.
func TestServiceRollingRestart(t *testing.T) {
	chaos.GuardTest(t, 5*time.Second)
	stateDir := t.TempDir()
	specs := []JobSpec{
		{Name: "jobx", Dataset: "synth", Clients: 4, Rounds: 8, Seed: 5, Records: 8},
		{Name: "joby", Dataset: "synth", Clients: 3, Rounds: 8, Seed: 6, Records: 8, Pipeline: true},
	}

	var front atomic.Pointer[fleetsim.MemListener]
	front.Store(fleetsim.Listen(32))
	// dial survives the restart gap: a closed front door is retried until
	// the next generation's listener is swapped in.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	dial := func() (net.Conn, error) {
		for {
			conn, err := front.Load().Dial()
			if err == nil {
				return conn, nil
			}
			if ctx.Err() != nil {
				return nil, err
			}
			time.Sleep(2 * time.Millisecond)
		}
	}

	svc1 := newTestService(t, stateDir, front.Load())
	for _, spec := range specs {
		if _, err := svc1.CreateJob(spec); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for _, spec := range specs {
		wg.Add(1)
		go func(spec JobSpec) {
			defer wg.Done()
			// The restart gap burns retries without progress ("not
			// accepting" rejections while the job re-adopts), so the
			// budget is far above the default.
			fleet := &fleetsim.Fleet{
				N: spec.Clients, Dim: jobDim(spec), Seed: spec.Seed, Job: spec.Name,
				Dial: dial, MaxRetries: 500,
			}
			stats := fleet.Run(ctx)
			if got := stats.Done.Load(); got != int64(spec.Clients) {
				t.Errorf("job %s: %d/%d clients finished (gaveUp=%d)", spec.Name, got, spec.Clients, stats.GaveUp.Load())
			}
		}(spec)
	}

	// Let both federations make real progress before the restart.
	for _, spec := range specs {
		deadline := time.Now().Add(time.Minute)
		for {
			st, err := svc1.JobStatus(spec.Name)
			if err == nil && st.Health != nil && st.Health.CheckpointRound >= 2 {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("job %s never checkpointed round 2", spec.Name)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	drainCtx, drainCancel := context.WithTimeout(context.Background(), time.Minute)
	if err := svc1.Shutdown(drainCtx); err != nil {
		t.Fatalf("rolling-restart drain: %v", err)
	}
	drainCancel()

	// Next process generation: same state dir, fresh front door.
	front.Store(fleetsim.Listen(32))
	svc2 := newTestService(t, stateDir, front.Load())
	for _, spec := range specs {
		st := waitState(t, svc2, spec.Name, JobRunning, 30*time.Second)
		if st.StartRound < 2 {
			t.Errorf("job %s re-adopted from round %d, want >= 2", spec.Name, st.StartRound)
		}
	}

	wg.Wait()
	for _, spec := range specs {
		waitState(t, svc2, spec.Name, JobDone, 30*time.Second)
		j, err := svc2.job(spec.Name)
		if err != nil {
			t.Fatal(err)
		}
		want := referenceFinal(t, spec)
		if !equalVec(j.FinalState(), want) {
			t.Errorf("job %s: resumed final state differs from uninterrupted single-tenant run", spec.Name)
		}
	}
}

// TestJobChurnLeakHammer is the satellite leak check: create → run →
// delete (some deleted mid-run, hard-cancelled) many times over one
// service; the goroutine count must return to baseline.
func TestJobChurnLeakHammer(t *testing.T) {
	chaos.GuardTest(t, 10*time.Second)
	mem := fleetsim.Listen(32)
	svc := newTestService(t, t.TempDir(), mem)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	for i := 0; i < 9; i++ {
		spec := JobSpec{
			Name: fmt.Sprintf("churn-%d", i), Dataset: "synth",
			Clients: 3, Rounds: 2, Seed: int64(100 + i), Records: 4,
		}
		if _, err := svc.CreateJob(spec); err != nil {
			t.Fatal(err)
		}
		if i%3 == 2 {
			// Delete mid-run: the fleet is still dialing when the job is
			// hard-cancelled; clients must fail fast, not hang.
			fleetDone := make(chan *fleetsim.Stats, 1)
			go func() { fleetDone <- runFleet(ctx, spec, mem.Dial) }()
			time.Sleep(2 * time.Millisecond)
			if err := svc.DeleteJob(spec.Name); err != nil {
				t.Fatal(err)
			}
			select {
			case <-fleetDone:
			case <-time.After(time.Minute):
				t.Fatalf("fleet for deleted job %s hung", spec.Name)
			}
		} else {
			stats := runFleet(ctx, spec, mem.Dial)
			if got := stats.Done.Load(); got != int64(spec.Clients) {
				t.Fatalf("job %s: %d/%d clients finished", spec.Name, got, spec.Clients)
			}
			waitState(t, svc, spec.Name, JobDone, 30*time.Second)
			if err := svc.DeleteJob(spec.Name); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := svc.JobStatus(spec.Name); err == nil {
			t.Fatalf("job %s still registered after delete", spec.Name)
		}
	}
}

// TestAdminAPIValidation is the satellite input-validation check: bad
// specs are refused with typed 400 bodies before any job state exists.
func TestAdminAPIValidation(t *testing.T) {
	chaos.GuardTest(t, 5*time.Second)
	mem := fleetsim.Listen(8)
	svc := newTestService(t, t.TempDir(), mem)
	api := httptest.NewServer(svc.AdminMux())
	defer api.Close()

	expectSpecError := func(t *testing.T, resp *http.Response, field, code string) {
		t.Helper()
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			body, _ := io.ReadAll(resp.Body)
			t.Fatalf("status %d, want 400: %s", resp.StatusCode, body)
		}
		var body errorBody
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatalf("undecodable error body: %v", err)
		}
		for _, f := range body.Fields {
			if f.Field == field && f.Code == code {
				return
			}
		}
		t.Fatalf("400 body lacks %s/%s: %+v", field, code, body)
	}

	resp := postJob(t, api.URL, JobSpec{Name: "bad", Dataset: "synth", Clients: 4, Rounds: -1})
	expectSpecError(t, resp, "rounds", "invalid")
	resp = postJob(t, api.URL, JobSpec{Name: "bad", Dataset: "synth", Clients: 4, Rounds: 2, SampleSize: 2, MinClients: 3})
	expectSpecError(t, resp, "min_clients", "conflict")
	resp = postJob(t, api.URL, JobSpec{Name: "bad", Dataset: "synth", Clients: 4, Rounds: 2, QuantSeed: 9})
	expectSpecError(t, resp, "quant_seed", "conflict")

	rawPost := func(doc string) *http.Response {
		resp, err := http.Post(api.URL+"/jobs", "application/json", strings.NewReader(doc))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	resp = rawPost(`{"name":"bad","dataset":"synth","clients":2,"rounds":1,"surprise":1}`)
	expectSpecError(t, resp, "", "unknown_field")
	resp = rawPost(`{{{`)
	expectSpecError(t, resp, "", "malformed")

	// None of the refused specs may have left a job behind.
	listResp, err := http.Get(api.URL + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var list []JobStatus
	if err := json.NewDecoder(listResp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	listResp.Body.Close()
	if len(list) != 0 {
		t.Fatalf("rejected specs left jobs behind: %+v", list)
	}

	// Lifecycle status codes.
	resp = postJob(t, api.URL, JobSpec{Name: "ok", Dataset: "synth", Clients: 2, Rounds: 1, Records: 4})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("valid create: status %d", resp.StatusCode)
	}
	resp.Body.Close()
	resp = postJob(t, api.URL, JobSpec{Name: "ok", Dataset: "synth", Clients: 2, Rounds: 1, Records: 4})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate create: status %d, want 409", resp.StatusCode)
	}
	resp.Body.Close()
	resp, err = http.Get(api.URL + "/jobs/nope")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: status %d, want 404", resp.StatusCode)
	}
	resp.Body.Close()
	req, _ := http.NewRequest(http.MethodDelete, api.URL+"/jobs/ok", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete: status %d", resp.StatusCode)
	}
	resp.Body.Close()
	resp, err = http.Get(api.URL + "/jobs/ok")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("deleted job still listed: status %d", resp.StatusCode)
	}
	resp.Body.Close()
}

// TestFrontDoorRateLimitAndRouting covers the shared accept path:
// per-client token buckets shed hello storms with drain notices, unknown
// jobs are refused with typed errors, and a job-unaware client is routed
// iff exactly one job exists.
func TestFrontDoorRateLimitAndRouting(t *testing.T) {
	chaos.GuardTest(t, 5*time.Second)
	mem := fleetsim.Listen(16)
	svc, err := New(Options{
		Listener:    mem,
		StateDir:    t.TempDir(),
		Builder:     testBuilder(),
		ClientRate:  0.001,
		ClientBurst: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	hello := func(job string, id int) *flnet.Message {
		t.Helper()
		conn, err := mem.Dial()
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		conn.SetDeadline(time.Now().Add(10 * time.Second))
		err = flnet.WriteMessage(conn, &flnet.Message{
			Kind: flnet.KindHello, ClientID: id, Version: flnet.ProtocolVersion, LastRound: -1, Job: job,
		})
		if err != nil {
			t.Fatal(err)
		}
		reply, err := flnet.ReadMessage(conn)
		if err != nil {
			t.Fatal(err)
		}
		return reply
	}

	// Burst of 2 admitted (as unknown-job errors), then rate limited.
	for i := 0; i < 2; i++ {
		if reply := hello("ghost", 7); reply.Kind != flnet.KindError {
			t.Fatalf("hello %d: got %v frame, want error (unknown job)", i, reply.Kind)
		}
	}
	if reply := hello("ghost", 7); reply.Kind != flnet.KindDrain {
		t.Fatalf("third hello: got %v frame, want drain (rate limited)", reply.Kind)
	} else if reply.RetryAfterMs <= 0 {
		t.Fatalf("rate-limit drain carries no RetryAfterMs")
	}
	// A different client id has its own bucket.
	if reply := hello("ghost", 8); reply.Kind != flnet.KindError {
		t.Fatalf("other client: got %v frame, want error", reply.Kind)
	}

	// With no jobs, an empty hello is refused; with exactly one job it is
	// routed (back-compat for job-unaware clients).
	if reply := hello("", 1); reply.Kind != flnet.KindError {
		t.Fatalf("empty hello with no jobs: got %v, want error", reply.Kind)
	}
	spec := JobSpec{Name: "solo", Dataset: "synth", Clients: 2, Rounds: 1, Seed: 3, Records: 4}
	if _, err := svc.CreateJob(spec); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	unnamed := spec
	unnamed.Name = "" // clients send no job; the front door routes to the sole job
	stats := runFleet(ctx, unnamed, mem.Dial)
	if got := stats.Done.Load(); got != int64(spec.Clients) {
		t.Fatalf("job-unaware fleet: %d/%d finished", got, spec.Clients)
	}
	waitState(t, svc, "solo", JobDone, 30*time.Second)
}

// TestPauseResume exercises the lifecycle detour: a paused job parks
// with its checkpoints, refuses clients, and resumes bit-identically.
func TestPauseResume(t *testing.T) {
	chaos.GuardTest(t, 5*time.Second)
	mem := fleetsim.Listen(16)
	svc := newTestService(t, t.TempDir(), mem)
	spec := JobSpec{Name: "parky", Dataset: "synth", Clients: 3, Rounds: 6, Seed: 9, Records: 8}
	if _, err := svc.CreateJob(spec); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		// The fleet keeps redialing across the pause window; drain notices
		// and unknown-state rejections both end sessions without progress,
		// so give it a generous retry budget.
		fleet := &fleetsim.Fleet{
			N: spec.Clients, Dim: jobDim(spec), Seed: spec.Seed, Job: spec.Name,
			Dial: mem.Dial, MaxRetries: 200,
		}
		stats := fleet.Run(ctx)
		if got := stats.Done.Load(); got != int64(spec.Clients) {
			t.Errorf("fleet across pause: %d/%d finished (gaveUp=%d)", got, spec.Clients, stats.GaveUp.Load())
		}
	}()

	deadline := time.Now().Add(time.Minute)
	for {
		st, err := svc.JobStatus(spec.Name)
		if err == nil && st.Health != nil && st.Health.CheckpointRound >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never checkpointed round 1")
		}
		time.Sleep(5 * time.Millisecond)
	}
	pauseCtx, pauseCancel := context.WithTimeout(context.Background(), time.Minute)
	if err := svc.PauseJob(pauseCtx, spec.Name); err != nil {
		t.Fatalf("pause: %v", err)
	}
	pauseCancel()
	waitState(t, svc, spec.Name, JobPaused, 10*time.Second)
	if err := svc.ResumeJob(spec.Name); err != nil {
		t.Fatalf("resume: %v", err)
	}
	st := waitState(t, svc, spec.Name, JobRunning, 10*time.Second)
	if st.StartRound < 1 {
		t.Errorf("resume re-adopted from round %d, want >= 1", st.StartRound)
	}
	wg.Wait()
	waitState(t, svc, spec.Name, JobDone, 30*time.Second)
	j, err := svc.job(spec.Name)
	if err != nil {
		t.Fatal(err)
	}
	if want := referenceFinal(t, spec); !equalVec(j.FinalState(), want) {
		t.Error("pause/resume final state differs from uninterrupted run")
	}
}
