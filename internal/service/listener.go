package service

import (
	"errors"
	"net"
	"sync"
	"time"
)

// ErrJobListenerClosed is returned by connListener.Accept and Push after
// Close.
var ErrJobListenerClosed = errors.New("service: job listener closed")

// ErrBacklogFull is returned by Push when the job's pending-connection
// backlog is full — the front door turns this into backpressure (a drain
// notice telling the client to retry) instead of queueing unboundedly.
var ErrBacklogFull = errors.New("service: job connection backlog full")

// acceptTimeoutError satisfies net.Error with Timeout() true so flnet's
// registration loop treats a deadline expiry on a job listener exactly
// like one on a *net.TCPListener.
type acceptTimeoutError struct{}

func (acceptTimeoutError) Error() string   { return "service: accept deadline exceeded" }
func (acceptTimeoutError) Timeout() bool   { return true }
func (acceptTimeoutError) Temporary() bool { return true }

type jobAddr struct{ job string }

func (jobAddr) Network() string  { return "svc" }
func (a jobAddr) String() string { return "job:" + a.job }

// connListener is the net.Listener a job's flnet server accepts from.
// The service front door demultiplexes the shared listener by Hello job
// name and Pushes each routed connection here; the bounded backlog is the
// per-job backpressure boundary. Deadline semantics mirror
// fleetsim.MemListener so flnet's registration/drain wakeups work
// unchanged.
type connListener struct {
	job    string
	conns  chan net.Conn
	closed chan struct{}
	once   sync.Once

	mu       sync.Mutex
	deadline time.Time
	dlCh     chan struct{} // closed and replaced on every SetDeadline
	// pushClosed gates Push under mu: without it a Push racing Close
	// could enqueue into the buffered channel after Close has drained
	// it, stranding that client until its IO timeout.
	pushClosed bool
}

var _ net.Listener = (*connListener)(nil)

func newConnListener(job string, backlog int) *connListener {
	if backlog < 1 {
		backlog = 1
	}
	return &connListener{
		job:    job,
		conns:  make(chan net.Conn, backlog),
		closed: make(chan struct{}),
		dlCh:   make(chan struct{}),
	}
}

// Push hands a routed connection to the job without blocking: a full
// backlog is the caller's signal to shed the client rather than stall the
// shared accept path behind one slow job.
func (l *connListener) Push(conn net.Conn) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.pushClosed {
		return ErrJobListenerClosed
	}
	select {
	case l.conns <- conn:
		return nil
	default:
		return ErrBacklogFull
	}
}

// Accept implements net.Listener, honoring the deadline set via
// SetDeadline (expiry returns a net.Error with Timeout() true).
func (l *connListener) Accept() (net.Conn, error) {
	for {
		select {
		case <-l.closed:
			return nil, ErrJobListenerClosed
		default:
		}
		l.mu.Lock()
		deadline := l.deadline
		changed := l.dlCh
		l.mu.Unlock()

		var timeout <-chan time.Time
		var timer *time.Timer
		if !deadline.IsZero() {
			wait := time.Until(deadline)
			if wait <= 0 {
				return nil, acceptTimeoutError{}
			}
			timer = time.NewTimer(wait)
			timeout = timer.C
		}
		select {
		case conn := <-l.conns:
			if timer != nil {
				timer.Stop()
			}
			return conn, nil
		case <-l.closed:
			if timer != nil {
				timer.Stop()
			}
			return nil, ErrJobListenerClosed
		case <-timeout:
			return nil, acceptTimeoutError{}
		case <-changed:
			// Deadline replaced (possibly with "now" to force a wakeup, as
			// flnet's drain path does); recompute and wait again.
			if timer != nil {
				timer.Stop()
			}
		}
	}
}

// SetDeadline implements the optional listener-deadline interface flnet's
// registration phase relies on, waking any blocked Accept.
func (l *connListener) SetDeadline(t time.Time) error {
	l.mu.Lock()
	l.deadline = t
	close(l.dlCh)
	l.dlCh = make(chan struct{})
	l.mu.Unlock()
	return nil
}

// Close implements net.Listener. Queued-but-unaccepted connections are
// closed so their clients' reads fail fast instead of timing out.
func (l *connListener) Close() error {
	l.mu.Lock()
	l.pushClosed = true
	l.mu.Unlock()
	l.once.Do(func() { close(l.closed) })
	for {
		select {
		case conn := <-l.conns:
			conn.Close()
		default:
			return nil
		}
	}
}

// Addr implements net.Listener.
func (l *connListener) Addr() net.Addr { return jobAddr{job: l.job} }

// prefixConn replays the bytes the front door already consumed (the
// client's Hello frame) before reading from the underlying connection, so
// the job's flnet server sees the byte stream exactly as the client sent
// it. flnet reads each connection from a single goroutine, so Read needs
// no locking.
type prefixConn struct {
	net.Conn
	prefix []byte
}

func (c *prefixConn) Read(p []byte) (int, error) {
	if len(c.prefix) > 0 {
		n := copy(p, c.prefix)
		c.prefix = c.prefix[n:]
		return n, nil
	}
	return c.Conn.Read(p)
}
