package service

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"time"

	"repro/internal/telemetry"
)

// errorBody is the JSON document every non-2xx admin response carries.
// Fields is populated for validation failures so callers can
// machine-match the offending spec fields.
type errorBody struct {
	Error  string     `json:"error"`
	Fields SpecErrors `json:"fields,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v) //nolint:errcheck // response writer
}

// writeError maps a control-plane error onto an HTTP status: validation
// failures are 400 with the typed field list, unknown jobs 404, lifecycle
// conflicts (wrong state, duplicate name) 409.
func writeError(w http.ResponseWriter, err error) {
	var specErrs SpecErrors
	switch {
	case errors.As(err, &specErrs):
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "invalid job spec", Fields: specErrs})
	case errors.Is(err, ErrJobNotFound):
		writeJSON(w, http.StatusNotFound, errorBody{Error: err.Error()})
	case errors.Is(err, ErrJobExists):
		writeJSON(w, http.StatusConflict, errorBody{Error: err.Error()})
	default:
		writeJSON(w, http.StatusConflict, errorBody{Error: err.Error()})
	}
}

// drainTimeout bounds how long an admin drain/pause request waits for the
// in-flight round before answering; the drain keeps progressing
// server-side either way.
const drainTimeout = 2 * time.Minute

// AdminMux returns the service's admin API combined with the standard
// observability routes (/metrics merged across all job registries,
// /healthz, /debug/pprof/):
//
//	POST   /jobs             create + start a job (400 typed spec errors, 409 duplicate)
//	GET    /jobs             list every job's status
//	GET    /jobs/{name}      one job's status
//	POST   /jobs/{name}/drain   graceful stop (terminal "done")
//	POST   /jobs/{name}/pause   graceful stop into resumable "paused"
//	POST   /jobs/{name}/resume  restart a paused job from its checkpoints
//	DELETE /jobs/{name}      stop, unregister, delete checkpoint chain
func (s *Service) AdminMux() *http.ServeMux {
	mux := telemetry.AdminMux(s.Health, s.WriteMetrics)

	mux.HandleFunc("POST /jobs", func(w http.ResponseWriter, r *http.Request) {
		spec, err := DecodeJobSpec(r.Body)
		if err != nil {
			writeError(w, err)
			return
		}
		// A builder or server-construction failure is a bad request too
		// (unknown dataset, seed/checkpoint mismatch): the job was never
		// registered, so nothing is half-constructed.
		st, err := s.CreateJob(*spec)
		if err != nil {
			var specErrs SpecErrors
			if errors.As(err, &specErrs) || errors.Is(err, ErrJobExists) {
				writeError(w, err)
				return
			}
			writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
			return
		}
		writeJSON(w, http.StatusCreated, st)
	})

	mux.HandleFunc("GET /jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.ListJobs())
	})

	mux.HandleFunc("GET /jobs/{name}", func(w http.ResponseWriter, r *http.Request) {
		st, err := s.JobStatus(r.PathValue("name"))
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, st)
	})

	lifecycle := func(op func(ctx context.Context, name string) error) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			ctx, cancel := context.WithTimeout(r.Context(), drainTimeout)
			defer cancel()
			name := r.PathValue("name")
			if err := op(ctx, name); err != nil {
				writeError(w, err)
				return
			}
			st, err := s.JobStatus(name)
			if err != nil {
				writeError(w, err)
				return
			}
			writeJSON(w, http.StatusOK, st)
		}
	}

	mux.HandleFunc("POST /jobs/{name}/drain", lifecycle(s.DrainJob))
	mux.HandleFunc("POST /jobs/{name}/pause", lifecycle(s.PauseJob))
	mux.HandleFunc("POST /jobs/{name}/resume", lifecycle(func(_ context.Context, name string) error {
		return s.ResumeJob(name)
	}))
	mux.HandleFunc("DELETE /jobs/{name}", func(w http.ResponseWriter, r *http.Request) {
		if err := s.DeleteJob(r.PathValue("name")); err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"deleted": r.PathValue("name")})
	})

	return mux
}

// ServeAdmin starts the admin API on addr (":0" for ephemeral).
func (s *Service) ServeAdmin(addr string) (*telemetry.AdminServer, error) {
	return telemetry.ServeHandler(addr, s.AdminMux())
}
