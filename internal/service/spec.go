// Package service is the multi-tenant federation control plane: one
// dinar-server process hosts many concurrent named federation jobs, each
// a full flnet server with its own config, checkpoint chain, quarantine
// state, wire-codec negotiation, and job-labeled telemetry registry. The
// pieces: a job registry with a created→running→draining→done lifecycle
// (plus pause/resume through the checkpoint chain), an admin REST API
// (POST /jobs, status, drain/pause/resume/delete), a shared front-door
// listener that routes each client Hello to its job with per-client rate
// limiting and bounded-backlog backpressure, and a rolling-restart path
// that re-adopts every job's latest valid checkpoint from the state
// directory's manifest.
package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strings"
	"time"
)

// JobSpec is the wire form of one federation job's configuration — the
// body of POST /jobs and the unit persisted in the service manifest.
// Semantics mirror the dinar-server flags / flnet.ServerConfig fields of
// the same names; zero values mean the same defaults.
type JobSpec struct {
	// Name identifies the job: the routing key clients put in their
	// Hello, the telemetry label, and the checkpoint-file stem. Letters,
	// digits, dots, underscores, and dashes only.
	Name string `json:"name"`
	// Dataset names the registered dataset the job trains on (decides
	// the model architecture and the initial global state).
	Dataset string `json:"dataset"`
	// Defense selects the privacy defense ("none", "dinar", ...).
	Defense string `json:"defense,omitempty"`
	// Aggregator selects the aggregation rule (fedavg, krum, ...).
	Aggregator string `json:"aggregator,omitempty"`
	// MaxByzantine is the attacker count robust aggregators tolerate.
	MaxByzantine int `json:"max_byzantine,omitempty"`
	// Clients is the federation size (Hello ids live in [0, Clients)).
	Clients int `json:"clients"`
	// Rounds is the number of federated rounds.
	Rounds int `json:"rounds"`
	// Seed is the federation seed shared with the job's clients.
	Seed int64 `json:"seed,omitempty"`
	// Records overrides the dataset record count (0 = dataset default).
	Records int `json:"records,omitempty"`

	MinClients      int   `json:"min_clients,omitempty"`
	RoundDeadlineMs int   `json:"round_deadline_ms,omitempty"`
	SampleSize      int   `json:"sample_size,omitempty"`
	SampleSeed      int64 `json:"sample_seed,omitempty"`
	AsyncStaleness  int   `json:"async_staleness,omitempty"`
	Streaming       bool  `json:"streaming,omitempty"`

	NoScreen         bool `json:"no_screen,omitempty"`
	ClipNorms        bool `json:"clip_norms,omitempty"`
	QuarantineRounds int  `json:"quarantine_rounds,omitempty"`

	Wire      string  `json:"wire,omitempty"`
	Compress  bool    `json:"compress,omitempty"`
	Quantize  string  `json:"quantize,omitempty"`
	TopK      float64 `json:"topk,omitempty"`
	Delta     bool    `json:"delta,omitempty"`
	QuantSeed int64   `json:"quant_seed,omitempty"`

	// Pipeline overlaps each round's checkpoint write with the next
	// round's broadcast (see flnet.ServerConfig.Pipeline).
	Pipeline bool `json:"pipeline,omitempty"`
}

// RoundDeadline returns the spec's per-round collection deadline.
func (s *JobSpec) RoundDeadline() time.Duration {
	return time.Duration(s.RoundDeadlineMs) * time.Millisecond
}

// SpecError is one typed validation failure of a JobSpec field — the
// admin API returns these in a 400 body so callers can machine-match the
// offending field instead of parsing prose.
type SpecError struct {
	// Field is the JSON field name ("" for document-level failures).
	Field string `json:"field,omitempty"`
	// Code classifies the failure: "malformed" (undecodable document),
	// "unknown_field", "missing", "invalid", or "conflict".
	Code string `json:"code"`
	// Message is the human-readable explanation.
	Message string `json:"message"`
}

// Error implements error.
func (e *SpecError) Error() string {
	if e.Field == "" {
		return fmt.Sprintf("spec: %s: %s", e.Code, e.Message)
	}
	return fmt.Sprintf("spec: field %q: %s: %s", e.Field, e.Code, e.Message)
}

// SpecErrors is the full validation verdict for one JobSpec.
type SpecErrors []*SpecError

// Error implements error.
func (es SpecErrors) Error() string {
	msgs := make([]string, len(es))
	for i, e := range es {
		msgs[i] = e.Error()
	}
	return strings.Join(msgs, "; ")
}

// maxSpecBytes bounds a POST /jobs body; a job spec is a small JSON
// document, never megabytes.
const maxSpecBytes = 1 << 20

// DecodeJobSpec strictly decodes one JobSpec document: unknown fields,
// trailing data, and oversized bodies are errors (never a silently
// half-read spec). The decoded spec is NOT yet validated — callers pair
// this with Validate before a job is constructed.
func DecodeJobSpec(r io.Reader) (*JobSpec, error) {
	dec := json.NewDecoder(io.LimitReader(r, maxSpecBytes))
	dec.DisallowUnknownFields()
	spec := &JobSpec{}
	if err := dec.Decode(spec); err != nil {
		code := "malformed"
		if strings.Contains(err.Error(), "unknown field") {
			code = "unknown_field"
		}
		return nil, SpecErrors{{Code: code, Message: err.Error()}}
	}
	// A second document (or any trailing token) is a malformed request,
	// not an ignorable tail.
	if err := dec.Decode(&struct{}{}); !errors.Is(err, io.EOF) {
		return nil, SpecErrors{{Code: "malformed", Message: "trailing data after the job spec document"}}
	}
	return spec, nil
}

// nameOK reports whether every byte of a job name is in the safe charset
// — the name becomes a file-path stem and a Prometheus label value, so
// separators and quotes are rejected outright.
func nameOK(name string) bool {
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '.', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}

// Validate checks every cross-field invariant the job's flnet server
// would refuse (and the path/label constraints only the control plane
// knows about), returning the full list of typed failures. A spec that
// passes can still fail job construction for environmental reasons (an
// unknown dataset name, a checkpoint recorded with a different seed) —
// but never with a half-constructed job: construction happens before the
// job is registered or its supervisor starts.
func (s *JobSpec) Validate() error {
	var errs SpecErrors
	add := func(field, code, msg string) { errs = append(errs, &SpecError{Field: field, Code: code, Message: msg}) }

	switch {
	case s.Name == "":
		add("name", "missing", "job name is required")
	case len(s.Name) > 64:
		add("name", "invalid", "job name longer than 64 bytes")
	case !nameOK(s.Name):
		add("name", "invalid", "job name may contain only letters, digits, '.', '_', and '-'")
	}
	if s.Dataset == "" {
		add("dataset", "missing", "dataset is required")
	}
	if s.Clients <= 0 {
		add("clients", "invalid", fmt.Sprintf("clients must be positive, got %d", s.Clients))
	}
	if s.Rounds <= 0 {
		add("rounds", "invalid", fmt.Sprintf("rounds must be positive, got %d", s.Rounds))
	}
	if s.Seed < 0 {
		add("seed", "invalid", fmt.Sprintf("seed must be non-negative, got %d", s.Seed))
	}
	if s.Records < 0 {
		add("records", "invalid", fmt.Sprintf("records must be non-negative, got %d", s.Records))
	}
	if s.MinClients < 0 || (s.Clients > 0 && s.MinClients > s.Clients) {
		add("min_clients", "invalid", fmt.Sprintf("min_clients must be in [0, clients], got %d", s.MinClients))
	}
	if s.SampleSize < 0 || (s.Clients > 0 && s.SampleSize > s.Clients) {
		add("sample_size", "invalid", fmt.Sprintf("sample_size must be in [0, clients], got %d", s.SampleSize))
	}
	if s.SampleSize > 0 && s.MinClients > s.SampleSize {
		add("min_clients", "conflict", fmt.Sprintf("min_clients %d exceeds sample_size %d: the quorum could never be met", s.MinClients, s.SampleSize))
	}
	if s.RoundDeadlineMs < 0 {
		add("round_deadline_ms", "invalid", fmt.Sprintf("round_deadline_ms must be non-negative, got %d", s.RoundDeadlineMs))
	}
	if s.AsyncStaleness < 0 {
		add("async_staleness", "invalid", fmt.Sprintf("async_staleness must be non-negative, got %d", s.AsyncStaleness))
	}
	switch s.Wire {
	case "", "binary", "gob":
	default:
		add("wire", "invalid", fmt.Sprintf("wire must be \"binary\" or \"gob\", got %q", s.Wire))
	}
	quantized := false
	switch s.Quantize {
	case "", "none":
	case "int8", "int16":
		quantized = true
	default:
		add("quantize", "invalid", fmt.Sprintf("quantize must be \"none\", \"int8\", or \"int16\", got %q", s.Quantize))
	}
	if s.Wire == "gob" && (s.Compress || quantized || s.TopK != 0 || s.Delta) {
		add("wire", "conflict", "gob framing cannot carry the binary codecs (compress/quantize/topk/delta)")
	}
	if s.TopK != 0 && (s.TopK < 0 || s.TopK >= 1) {
		add("topk", "invalid", fmt.Sprintf("topk must be in (0,1), got %g", s.TopK))
	}
	if s.TopK != 0 && !quantized {
		add("topk", "conflict", "topk requires quantize")
	}
	if s.QuantSeed != 0 && !quantized {
		add("quant_seed", "conflict", "quant_seed is set but quantization is disabled; a resumed quantized federation would silently diverge")
	}
	if len(errs) == 0 {
		return nil
	}
	return errs
}
