package defense

import (
	"repro/internal/fl"
)

// DPFedSAM reproduces the mechanism of DP-FedSAM (Shi et al., CVPR 2023;
// Table 1): clients train with sharpness-aware minimization — which flattens
// the loss landscape and makes clipped, noised updates hurt utility less —
// and upload norm-clipped updates perturbed with Gaussian noise.
//
// The SAM part is an optimizer property: run the system with the "sam"
// optimizer (fl.Client performs the two-pass SAM update when the optimizer
// implements optim.TwoPhase). This defense contributes the DP part of the
// pipeline: clip + noise on the upload, identical in structure to LDP but
// with the milder noise DP-FedSAM's flat minima tolerate.
type DPFedSAM struct {
	Base

	// Clip is the update L2 bound; Sigma the Gaussian noise deviation.
	Clip, Sigma float64
	// Seed drives the noise deterministically per (round, client).
	Seed int64
}

var _ fl.Defense = (*DPFedSAM)(nil)

// NewDPFedSAM returns a DP-FedSAM defense with moderate noise.
func NewDPFedSAM(seed int64) *DPFedSAM {
	return &DPFedSAM{Clip: 1, Sigma: 0.05, Seed: seed}
}

// Name implements fl.Defense.
func (d *DPFedSAM) Name() string { return "dpfedsam" }

// StreamingAggregator implements fl.StreamingCapable: DP-FedSAM perturbs on
// the client and aggregates with plain FedAvg, so updates fold as they
// arrive.
func (d *DPFedSAM) StreamingAggregator() fl.StreamingAggregator { return fl.NewStreamingFedAvg() }

// BeforeUpload implements fl.Defense: clip-and-noise on the client update.
func (d *DPFedSAM) BeforeUpload(round int, global []float64, u *fl.Update) {
	n := d.Info().NumParams
	delta, err := deltaOf(u.State, global, n)
	if err != nil {
		return
	}
	clipNorm(delta, d.Clip)
	rng := seededRNG(d.Seed, round, u.ClientID)
	addGaussian(delta, d.Sigma, rng)
	for i := 0; i < n; i++ {
		u.State[i] = global[i] + delta[i]
	}
	d.addBytes(n)
}
