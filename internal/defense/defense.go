// Package defense implements the five state-of-the-art FL privacy baselines
// the paper compares DINAR against (§5.2): local and central differential
// privacy (LDP, CDP), weak differential privacy (WDP), gradient compression
// (GC), and secure aggregation (SA) — plus the no-defense baseline.
//
// All defenses implement fl.Defense. Perturbation mechanisms operate on the
// trainable-parameter prefix of the state vector (normalization running
// statistics are aggregated but not perturbed, matching how DP-FL frameworks
// exclude buffers from the privacy mechanism).
package defense

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/fl"
	"repro/internal/metrics"
)

// Base provides identity hooks and FedAvg aggregation; concrete defenses
// embed it and override what they need.
type Base struct {
	info  fl.ModelInfo
	meter *metrics.CostMeter
}

// Bind implements fl.Defense.
func (b *Base) Bind(info fl.ModelInfo) error {
	b.info = info
	return nil
}

// Info returns the bound model layout.
func (b *Base) Info() fl.ModelInfo { return b.info }

// SetMeter attaches a cost meter for defense-attributed memory accounting.
func (b *Base) SetMeter(m *metrics.CostMeter) { b.meter = m }

func (b *Base) addBytes(n int) {
	if b.meter != nil {
		b.meter.AddDefenseBytes(uint64(n) * 8)
	}
}

// OnGlobalModel implements fl.Defense (identity).
func (b *Base) OnGlobalModel(_, _ int, global []float64) []float64 {
	return append([]float64(nil), global...)
}

// BeforeUpload implements fl.Defense (identity).
func (b *Base) BeforeUpload(_ int, _ []float64, _ *fl.Update) {}

// Aggregate implements fl.Defense (FedAvg).
func (b *Base) Aggregate(_ int, _ []float64, updates []*fl.Update) ([]float64, error) {
	return fl.FedAvg(updates)
}

// None is the undefended FL baseline.
type None struct{ Base }

var _ fl.Defense = (*None)(nil)

// NewNone returns the no-defense baseline.
func NewNone() *None { return &None{} }

// Name implements fl.Defense.
func (*None) Name() string { return "none" }

// StreamingAggregator implements fl.StreamingCapable: the baseline
// aggregates with FedAvg, which folds one update at a time.
//
// The capability is declared per concrete defense rather than on Base:
// several defenses embed Base but override Aggregate (CDP post-noises the
// aggregate, SA needs the full masked cohort), and a method on Base would
// wrongly advertise streaming for them too.
func (*None) StreamingAggregator() fl.StreamingAggregator { return fl.NewStreamingFedAvg() }

// gaussianSigma returns the Gaussian-mechanism noise multiplier
// σ = clip·sqrt(2·ln(1.25/δ))/ε.
func gaussianSigma(clip, epsilon, delta float64) float64 {
	return clip * math.Sqrt(2*math.Log(1.25/delta)) / epsilon
}

// clipNorm scales vec in place so its L2 norm is at most bound, returning the
// pre-clip norm.
func clipNorm(vec []float64, bound float64) float64 {
	s := 0.0
	for _, v := range vec {
		s += v * v
	}
	norm := math.Sqrt(s)
	if norm > bound && norm > 0 {
		scale := bound / norm
		for i := range vec {
			vec[i] *= scale
		}
	}
	return norm
}

// addGaussian adds N(0, sigma²) noise to vec using rng.
func addGaussian(vec []float64, sigma float64, rng *rand.Rand) {
	for i := range vec {
		vec[i] += rng.NormFloat64() * sigma
	}
}

// deltaOf returns state − global over the first n entries.
func deltaOf(state, global []float64, n int) ([]float64, error) {
	if len(state) < n || len(global) < n {
		return nil, fmt.Errorf("defense: state %d / global %d shorter than params %d", len(state), len(global), n)
	}
	d := make([]float64, n)
	for i := range d {
		d[i] = state[i] - global[i]
	}
	return d, nil
}

// seededRNG derives a deterministic RNG for (seed, round, client).
func seededRNG(seed int64, round, client int) *rand.Rand {
	return rand.New(rand.NewSource(seed ^ int64(round+1)<<24 ^ int64(client+1)<<8))
}
