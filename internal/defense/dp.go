package defense

import (
	"fmt"

	"repro/internal/fl"
)

// LDP is local differential privacy (§5.2): each client clips its model
// update (state − global over the parameter prefix) to L2 norm Clip and adds
// Gaussian noise calibrated to (Epsilon, Delta) before upload. The paper uses
// ε = 2.2, δ = 1e-5 following Naseri et al.
type LDP struct {
	Base

	// Epsilon and Delta are the privacy budget; Clip is the L2 sensitivity
	// bound.
	Epsilon, Delta, Clip float64
	// Seed drives the noise deterministically per (round, client).
	Seed int64
}

var _ fl.Defense = (*LDP)(nil)

// NewLDP returns an LDP defense with the paper's ε=2.2, δ=1e-5 defaults.
func NewLDP(seed int64) *LDP {
	return &LDP{Epsilon: 2.2, Delta: 1e-5, Clip: 1, Seed: seed}
}

// NewLDPWithBudget returns an LDP defense with an explicit ε (for the §5.10
// budget sweep).
func NewLDPWithBudget(seed int64, epsilon float64) *LDP {
	d := NewLDP(seed)
	d.Epsilon = epsilon
	return d
}

// Name implements fl.Defense.
func (d *LDP) Name() string { return "ldp" }

// StreamingAggregator implements fl.StreamingCapable: LDP perturbs on the
// client and aggregates with plain FedAvg, so updates fold as they arrive.
func (d *LDP) StreamingAggregator() fl.StreamingAggregator { return fl.NewStreamingFedAvg() }

// BeforeUpload implements fl.Defense: clip-and-noise on the client update.
func (d *LDP) BeforeUpload(round int, global []float64, u *fl.Update) {
	n := d.Info().NumParams
	delta, err := deltaOf(u.State, global, n)
	if err != nil {
		return // layout mismatch: leave update unprotected rather than corrupt it
	}
	clipNorm(delta, d.Clip)
	sigma := gaussianSigma(d.Clip, d.Epsilon, d.Delta)
	rng := seededRNG(d.Seed, round, u.ClientID)
	addGaussian(delta, sigma, rng)
	for i := 0; i < n; i++ {
		u.State[i] = global[i] + delta[i]
	}
	d.addBytes(n) // noise buffer
}

// CDP is central differential privacy (§5.2): the server clips every client
// update, averages them, and perturbs the aggregate with Gaussian noise of
// scale σ/N before broadcasting. Client-side cost is zero; all extra work —
// and Table 3's +3,000% aggregation overhead — lands on the server.
type CDP struct {
	Base

	Epsilon, Delta, Clip float64
	Seed                 int64
}

var _ fl.Defense = (*CDP)(nil)

// NewCDP returns a CDP defense with the paper's ε=2.2, δ=1e-5 defaults.
func NewCDP(seed int64) *CDP {
	return &CDP{Epsilon: 2.2, Delta: 1e-5, Clip: 1, Seed: seed}
}

// Name implements fl.Defense.
func (d *CDP) Name() string { return "cdp" }

// Aggregate implements fl.Defense: per-update clipping, FedAvg, then
// Gaussian perturbation of the aggregate parameters.
func (d *CDP) Aggregate(round int, prevGlobal []float64, updates []*fl.Update) ([]float64, error) {
	n := d.Info().NumParams
	clipped := make([]*fl.Update, len(updates))
	for i, u := range updates {
		delta, err := deltaOf(u.State, prevGlobal, n)
		if err != nil {
			return nil, fmt.Errorf("cdp: %w", err)
		}
		clipNorm(delta, d.Clip)
		state := append([]float64(nil), u.State...)
		for j := 0; j < n; j++ {
			state[j] = prevGlobal[j] + delta[j]
		}
		clipped[i] = &fl.Update{
			ClientID:   u.ClientID,
			Round:      u.Round,
			State:      state,
			NumSamples: u.NumSamples,
		}
	}
	agg, err := fl.FedAvg(clipped)
	if err != nil {
		return nil, err
	}
	sigma := gaussianSigma(d.Clip, d.Epsilon, d.Delta) / float64(len(updates))
	rng := seededRNG(d.Seed, round, -1)
	addGaussian(agg[:n], sigma, rng)
	d.addBytes(n)
	return agg, nil
}

// WDP is weak differential privacy (Sun et al., §5.2): client-side norm
// bounding with a loose bound plus low-magnitude Gaussian noise
// (paper settings: bound 5, σ = 0.025) — better utility, weaker privacy.
type WDP struct {
	Base

	Bound, Sigma float64
	Seed         int64
}

var _ fl.Defense = (*WDP)(nil)

// NewWDP returns a WDP defense with the paper's bound=5, σ=0.025 settings.
func NewWDP(seed int64) *WDP {
	return &WDP{Bound: 5, Sigma: 0.025, Seed: seed}
}

// Name implements fl.Defense.
func (d *WDP) Name() string { return "wdp" }

// StreamingAggregator implements fl.StreamingCapable: WDP perturbs on the
// client and aggregates with plain FedAvg, so updates fold as they arrive.
func (d *WDP) StreamingAggregator() fl.StreamingAggregator { return fl.NewStreamingFedAvg() }

// BeforeUpload implements fl.Defense.
func (d *WDP) BeforeUpload(round int, global []float64, u *fl.Update) {
	n := d.Info().NumParams
	delta, err := deltaOf(u.State, global, n)
	if err != nil {
		return
	}
	clipNorm(delta, d.Bound)
	rng := seededRNG(d.Seed, round, u.ClientID)
	addGaussian(delta, d.Sigma, rng)
	for i := 0; i < n; i++ {
		u.State[i] = global[i] + delta[i]
	}
	d.addBytes(n)
}
