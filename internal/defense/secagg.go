package defense

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"repro/internal/fl"
)

// SA is secure aggregation (Bonawitz-style pairwise additive masking,
// §5.2 [54]): every ordered client pair (i, j), i < j, shares a
// pseudo-random mask m_ij derived from a common seed; client i uploads
// state·nᵢ + Σ_{j>i} m_ij − Σ_{j<i} m_ji, so individual uploads are
// uniformly masked (the server learns nothing about any single local model)
// while the masks cancel exactly in the sum, which — divided by Σnᵢ —
// reproduces the FedAvg aggregate.
//
// As the paper's Fig. 6 shows, SA protects local models (attack AUC 50%) but
// does NOT protect the global model: the aggregate itself is exact and leaks
// exactly as much membership information as undefended FedAvg.
//
// Under client sampling SA is CohortAware: masks only cancel when both
// endpoints of every mask edge aggregate in the same round, so the mask
// graph is restricted to the round's sampled cohort (Fig. 6 semantics).
// The flnet layer announces each round's cohort to the server-side defense
// and ships it to the sampled clients in the global broadcast; with no
// cohort announced, masks span the full [0, NumClients) as before.
type SA struct {
	Base

	// NumClients is the (fixed) registered cohort size; with no per-round
	// cohort announced, masks are generated for all pairs in
	// [0, NumClients).
	NumClients int
	// Seed is the shared PRG seed (in a real deployment this comes from a
	// pairwise key agreement; here it is provided by the experiment).
	Seed int64

	mu sync.Mutex
	// cohorts maps a round to its sampled cohort; pruned to the most
	// recent few rounds.
	cohorts map[int][]int
}

var (
	_ fl.Defense     = (*SA)(nil)
	_ fl.CohortAware = (*SA)(nil)
)

// NewSA returns a secure-aggregation defense for a fixed cohort.
func NewSA(seed int64, numClients int) *SA {
	return &SA{NumClients: numClients, Seed: seed}
}

// Name implements fl.Defense.
func (d *SA) Name() string { return "sa" }

// Bind implements fl.Defense.
func (d *SA) Bind(info fl.ModelInfo) error {
	if d.NumClients < 2 {
		return fmt.Errorf("defense: SA needs at least 2 clients, got %d", d.NumClients)
	}
	return d.Base.Bind(info)
}

// SetRoundCohort implements fl.CohortAware: it restricts round's mask
// graph to the sampled cohort. Only the last few rounds are retained.
func (d *SA) SetRoundCohort(round int, cohort []int) {
	sorted := append([]int(nil), cohort...)
	sort.Ints(sorted)
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.cohorts == nil {
		d.cohorts = make(map[int][]int)
	}
	d.cohorts[round] = sorted
	for r := range d.cohorts {
		if r < round-4 {
			delete(d.cohorts, r)
		}
	}
}

// roundCohort returns round's mask endpoints: the announced cohort, or nil
// meaning the full [0, NumClients) range.
func (d *SA) roundCohort(round int) []int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.cohorts[round]
}

// BeforeUpload implements fl.Defense: scale by the sample count and apply
// the pairwise masks — against every peer in the round's cohort (or every
// registered client when no cohort was announced).
func (d *SA) BeforeUpload(round int, _ []float64, u *fl.Update) {
	n := len(u.State)
	scale := float64(u.NumSamples)
	for i := range u.State {
		u.State[i] *= scale
	}
	cohort := d.roundCohort(round)
	peers := d.NumClients
	if cohort != nil {
		peers = len(cohort)
	}
	for p := 0; p < peers; p++ {
		other := p
		if cohort != nil {
			other = cohort[p]
		}
		if other == u.ClientID {
			continue
		}
		lo, hi := u.ClientID, other
		sign := 1.0
		if lo > hi {
			lo, hi = hi, lo
			sign = -1
		}
		rng := d.pairRNG(round, lo, hi)
		for i := 0; i < n; i++ {
			u.State[i] += sign * rng.NormFloat64() * maskScale
		}
	}
	d.addBytes(n)
}

// maskScale is the standard deviation of mask entries. It only needs to be
// large relative to parameter values so that masked uploads look random.
const maskScale = 10.0

// pairRNG derives the shared mask PRG for the pair (lo, hi) at round.
func (d *SA) pairRNG(round, lo, hi int) *rand.Rand {
	return rand.New(rand.NewSource(d.Seed ^ int64(round+1)<<32 ^ int64(lo+1)<<16 ^ int64(hi+1)))
}

// Aggregate implements fl.Defense with the masked sum (see fl.MaskedSum).
// Masks only cancel when exactly the round's cohort aggregates: a missing
// or extra member leaves unbalanced mask terms, so the round fails loudly
// instead of publishing a garbage aggregate.
func (d *SA) Aggregate(round int, _ []float64, updates []*fl.Update) ([]float64, error) {
	cohort := d.roundCohort(round)
	want := d.NumClients
	if cohort != nil {
		want = len(cohort)
	}
	if len(updates) != want {
		return nil, fmt.Errorf("defense: SA round with %d of %d clients (dropouts unsupported)", len(updates), want)
	}
	if cohort != nil {
		inCohort := make(map[int]bool, len(cohort))
		for _, id := range cohort {
			inCohort[id] = true
		}
		for _, u := range updates {
			if !inCohort[u.ClientID] {
				return nil, fmt.Errorf("defense: SA round %d update from client %d outside the sampled cohort %v", round, u.ClientID, cohort)
			}
		}
	}
	return fl.MaskedSum(updates)
}
