package defense

import (
	"fmt"
	"math/rand"

	"repro/internal/fl"
)

// SA is secure aggregation (Bonawitz-style pairwise additive masking,
// §5.2 [54]): every ordered client pair (i, j), i < j, shares a
// pseudo-random mask m_ij derived from a common seed; client i uploads
// state·nᵢ + Σ_{j>i} m_ij − Σ_{j<i} m_ji, so individual uploads are
// uniformly masked (the server learns nothing about any single local model)
// while the masks cancel exactly in the sum, which — divided by Σnᵢ —
// reproduces the FedAvg aggregate.
//
// As the paper's Fig. 6 shows, SA protects local models (attack AUC 50%) but
// does NOT protect the global model: the aggregate itself is exact and leaks
// exactly as much membership information as undefended FedAvg.
type SA struct {
	Base

	// NumClients is the (fixed) cohort size; masks are generated for all
	// pairs in [0, NumClients).
	NumClients int
	// Seed is the shared PRG seed (in a real deployment this comes from a
	// pairwise key agreement; here it is provided by the experiment).
	Seed int64
}

var _ fl.Defense = (*SA)(nil)

// NewSA returns a secure-aggregation defense for a fixed cohort.
func NewSA(seed int64, numClients int) *SA {
	return &SA{NumClients: numClients, Seed: seed}
}

// Name implements fl.Defense.
func (d *SA) Name() string { return "sa" }

// Bind implements fl.Defense.
func (d *SA) Bind(info fl.ModelInfo) error {
	if d.NumClients < 2 {
		return fmt.Errorf("defense: SA needs at least 2 clients, got %d", d.NumClients)
	}
	return d.Base.Bind(info)
}

// BeforeUpload implements fl.Defense: scale by the sample count and apply
// the pairwise masks.
func (d *SA) BeforeUpload(round int, _ []float64, u *fl.Update) {
	n := len(u.State)
	scale := float64(u.NumSamples)
	for i := range u.State {
		u.State[i] *= scale
	}
	for other := 0; other < d.NumClients; other++ {
		if other == u.ClientID {
			continue
		}
		lo, hi := u.ClientID, other
		sign := 1.0
		if lo > hi {
			lo, hi = hi, lo
			sign = -1
		}
		rng := d.pairRNG(round, lo, hi)
		for i := 0; i < n; i++ {
			u.State[i] += sign * rng.NormFloat64() * maskScale
		}
	}
	d.addBytes(n)
}

// maskScale is the standard deviation of mask entries. It only needs to be
// large relative to parameter values so that masked uploads look random.
const maskScale = 10.0

// pairRNG derives the shared mask PRG for the pair (lo, hi) at round.
func (d *SA) pairRNG(round, lo, hi int) *rand.Rand {
	return rand.New(rand.NewSource(d.Seed ^ int64(round+1)<<32 ^ int64(lo+1)<<16 ^ int64(hi+1)))
}

// Aggregate implements fl.Defense with the masked sum (see fl.MaskedSum).
func (d *SA) Aggregate(_ int, _ []float64, updates []*fl.Update) ([]float64, error) {
	if len(updates) != d.NumClients {
		return nil, fmt.Errorf("defense: SA round with %d of %d clients (dropouts unsupported)", len(updates), d.NumClients)
	}
	return fl.MaskedSum(updates)
}
