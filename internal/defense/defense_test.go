package defense

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/fl"
	"repro/internal/metrics"
	"repro/internal/model"
)

func testInfoAndState(t *testing.T) (fl.ModelInfo, []float64) {
	t.Helper()
	m := model.FCNN6(30, 8, rand.New(rand.NewSource(1)))
	return fl.InfoOf(m), m.StateVector()
}

func trainedLike(global []float64, shift float64) []float64 {
	out := append([]float64(nil), global...)
	for i := range out {
		out[i] += shift * math.Sin(float64(i))
	}
	return out
}

func TestRegistry(t *testing.T) {
	for _, name := range StandardNames {
		d, err := New(name, 1, 4)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if d.Name() != name {
			t.Fatalf("New(%q).Name() = %q", name, d.Name())
		}
	}
	if _, err := New("bogus", 1, 4); err == nil {
		t.Fatal("accepted unknown defense")
	}
}

func TestNoneIsIdentity(t *testing.T) {
	d := NewNone()
	info, state := testInfoAndState(t)
	if err := d.Bind(info); err != nil {
		t.Fatal(err)
	}
	out := d.OnGlobalModel(0, 0, state)
	for i := range state {
		if out[i] != state[i] {
			t.Fatal("OnGlobalModel not identity")
		}
	}
	out[0] = 42
	if state[0] == 42 {
		t.Fatal("OnGlobalModel aliased input")
	}
	u := &fl.Update{ClientID: 0, State: append([]float64(nil), state...), NumSamples: 1}
	d.BeforeUpload(0, state, u)
	for i := range state {
		if u.State[i] != state[i] {
			t.Fatal("BeforeUpload not identity")
		}
	}
}

func TestLDPPerturbsWithinCoverage(t *testing.T) {
	d := NewLDP(7)
	info, global := testInfoAndState(t)
	if err := d.Bind(info); err != nil {
		t.Fatal(err)
	}
	trained := trainedLike(global, 0.01)
	u := &fl.Update{ClientID: 0, State: append([]float64(nil), trained...), NumSamples: 1}
	d.BeforeUpload(0, global, u)

	// Parameter prefix must change; the buffer suffix must not.
	changed := 0
	for i := 0; i < info.NumParams; i++ {
		if u.State[i] != trained[i] {
			changed++
		}
	}
	if changed < info.NumParams/2 {
		t.Fatalf("LDP changed only %d/%d params", changed, info.NumParams)
	}
	for i := info.NumParams; i < info.NumState; i++ {
		if u.State[i] != trained[i] {
			t.Fatal("LDP touched normalization buffers")
		}
	}
}

func TestLDPNoiseScalesWithBudget(t *testing.T) {
	info, global := testInfoAndState(t)
	trained := trainedLike(global, 0.01)

	dist := func(eps float64) float64 {
		d := NewLDPWithBudget(7, eps)
		if err := d.Bind(info); err != nil {
			t.Fatal(err)
		}
		u := &fl.Update{ClientID: 0, State: append([]float64(nil), trained...), NumSamples: 1}
		d.BeforeUpload(0, global, u)
		s := 0.0
		for i := 0; i < info.NumParams; i++ {
			diff := u.State[i] - global[i]
			s += diff * diff
		}
		return math.Sqrt(s)
	}
	small := dist(0.05) // tight budget -> huge noise
	large := dist(10)   // loose budget -> small noise
	if small <= large {
		t.Fatalf("eps=0.05 perturbation %v should exceed eps=10 perturbation %v", small, large)
	}
}

func TestWDPNoiseSmallerThanLDP(t *testing.T) {
	info, global := testInfoAndState(t)
	trained := trainedLike(global, 0.01)

	apply := func(d fl.Defense) float64 {
		if err := d.Bind(info); err != nil {
			t.Fatal(err)
		}
		u := &fl.Update{ClientID: 0, State: append([]float64(nil), trained...), NumSamples: 1}
		d.BeforeUpload(0, global, u)
		s := 0.0
		for i := 0; i < info.NumParams; i++ {
			diff := u.State[i] - trained[i]
			s += diff * diff
		}
		return math.Sqrt(s)
	}
	wdp := apply(NewWDP(7))
	ldp := apply(NewLDP(7))
	if wdp >= ldp {
		t.Fatalf("WDP perturbation %v should be below LDP %v", wdp, ldp)
	}
}

func TestCDPPerturbsAggregateOnly(t *testing.T) {
	d := NewCDP(7)
	info, global := testInfoAndState(t)
	if err := d.Bind(info); err != nil {
		t.Fatal(err)
	}
	// Client side is untouched.
	trained := trainedLike(global, 0.01)
	u := &fl.Update{ClientID: 0, State: append([]float64(nil), trained...), NumSamples: 1}
	d.BeforeUpload(0, global, u)
	for i := range trained {
		if u.State[i] != trained[i] {
			t.Fatal("CDP should not modify client uploads")
		}
	}
	// Server side perturbs the FedAvg result.
	u2 := &fl.Update{ClientID: 1, State: trainedLike(global, 0.02), NumSamples: 1}
	agg, err := d.Aggregate(0, global, []*fl.Update{u, u2})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := fl.FedAvg([]*fl.Update{u, u2})
	if err != nil {
		t.Fatal(err)
	}
	diff := 0
	for i := 0; i < info.NumParams; i++ {
		if agg[i] != plain[i] {
			diff++
		}
	}
	if diff < info.NumParams/2 {
		t.Fatalf("CDP aggregate changed only %d/%d params", diff, info.NumParams)
	}
	for i := info.NumParams; i < info.NumState; i++ {
		if math.Abs(agg[i]-plain[i]) > 1e-12 {
			t.Fatal("CDP touched buffer aggregate")
		}
	}
}

func TestGCSparsifiesUpdate(t *testing.T) {
	d := NewGC()
	info, global := testInfoAndState(t)
	if err := d.Bind(info); err != nil {
		t.Fatal(err)
	}
	trained := trainedLike(global, 0.01)
	u := &fl.Update{ClientID: 0, State: append([]float64(nil), trained...), NumSamples: 1}
	d.BeforeUpload(0, global, u)

	nonZero := 0
	for i := 0; i < info.NumParams; i++ {
		if u.State[i] != global[i] {
			nonZero++
		}
	}
	want := int(float64(info.NumParams) * d.Ratio)
	// Allow slack for ties at the threshold.
	if nonZero > want+want/10+1 {
		t.Fatalf("GC kept %d coordinates, want <= ~%d", nonZero, want)
	}
	if nonZero == 0 {
		t.Fatal("GC zeroed the whole update")
	}
}

func TestGCKeepsLargestCoordinates(t *testing.T) {
	d := NewGC()
	d.Ratio = 1e-9 // keep is clamped to exactly one coordinate
	m := model.FCNN6(4, 2, rand.New(rand.NewSource(1)))
	info := fl.InfoOf(m)
	if err := d.Bind(info); err != nil {
		t.Fatal(err)
	}
	global := make([]float64, info.NumState)
	state := make([]float64, info.NumState)
	// Put one dominant coordinate in the params prefix.
	state[3] = 100
	state[5] = 0.001
	u := &fl.Update{ClientID: 0, State: state, NumSamples: 1}
	d.BeforeUpload(0, global, u)
	if u.State[3] != 100 {
		t.Fatal("GC dropped the largest coordinate")
	}
	if u.State[5] != 0 {
		t.Fatal("GC kept a tiny coordinate over larger ones")
	}
}

func TestSAMasksCancelInAggregate(t *testing.T) {
	const clients = 4
	d := NewSA(7, clients)
	info, global := testInfoAndState(t)
	if err := d.Bind(info); err != nil {
		t.Fatal(err)
	}
	var updates []*fl.Update
	var plain []*fl.Update
	for c := 0; c < clients; c++ {
		trained := trainedLike(global, 0.01*float64(c+1))
		plain = append(plain, &fl.Update{ClientID: c, State: append([]float64(nil), trained...), NumSamples: 10 + c})
		u := &fl.Update{ClientID: c, State: append([]float64(nil), trained...), NumSamples: 10 + c}
		d.BeforeUpload(0, global, u)
		updates = append(updates, u)
	}
	agg, err := d.Aggregate(0, global, updates)
	if err != nil {
		t.Fatal(err)
	}
	want, err := fl.FedAvg(plain)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(agg[i]-want[i]) > 1e-6 {
			t.Fatalf("masked aggregate diverges at %d: %v vs %v", i, agg[i], want[i])
		}
	}
}

func TestSAUploadsLookRandom(t *testing.T) {
	const clients = 3
	d := NewSA(7, clients)
	info, global := testInfoAndState(t)
	if err := d.Bind(info); err != nil {
		t.Fatal(err)
	}
	trained := trainedLike(global, 0.01)
	u := &fl.Update{ClientID: 0, State: append([]float64(nil), trained...), NumSamples: 10}
	d.BeforeUpload(0, global, u)
	// Masked upload should be far from the raw state (masks have sigma 10).
	var dist float64
	for i := range trained {
		diff := u.State[i] - trained[i]
		dist += diff * diff
	}
	rms := math.Sqrt(dist / float64(len(trained)))
	if rms < 1 {
		t.Fatalf("masked upload too close to the raw state (rms %v)", rms)
	}
}

func TestSAErrors(t *testing.T) {
	info, _ := testInfoAndState(t)
	if err := NewSA(7, 1).Bind(info); err == nil {
		t.Fatal("SA accepted a single-client cohort")
	}
	d := NewSA(7, 3)
	if err := d.Bind(info); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Aggregate(0, nil, []*fl.Update{{State: []float64{1}, NumSamples: 1}}); err == nil {
		t.Fatal("SA accepted a partial cohort (dropout)")
	}
}

func TestMeterAccounting(t *testing.T) {
	d := NewLDP(7)
	meter := metrics.NewCostMeter()
	d.SetMeter(meter)
	info, global := testInfoAndState(t)
	if err := d.Bind(info); err != nil {
		t.Fatal(err)
	}
	u := &fl.Update{ClientID: 0, State: trainedLike(global, 0.01), NumSamples: 1}
	d.BeforeUpload(0, global, u)
	if meter.Report().DefenseBytes == 0 {
		t.Fatal("LDP did not account defense memory")
	}
}

func TestClipNorm(t *testing.T) {
	v := []float64{3, 4}
	norm := clipNorm(v, 2.5)
	if norm != 5 {
		t.Fatalf("pre-clip norm = %v", norm)
	}
	if math.Abs(math.Hypot(v[0], v[1])-2.5) > 1e-12 {
		t.Fatalf("post-clip norm = %v", math.Hypot(v[0], v[1]))
	}
	w := []float64{0.3, 0.4}
	clipNorm(w, 2.5)
	if w[0] != 0.3 || w[1] != 0.4 {
		t.Fatal("clipNorm modified an in-bound vector")
	}
}

func TestGaussianSigmaFormula(t *testing.T) {
	got := gaussianSigma(1, 2.2, 1e-5)
	want := math.Sqrt(2*math.Log(1.25/1e-5)) / 2.2
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("sigma = %v, want %v", got, want)
	}
}

func TestDeltaOfErrors(t *testing.T) {
	if _, err := deltaOf([]float64{1}, []float64{1, 2}, 2); err == nil {
		t.Fatal("accepted short state")
	}
	d, err := deltaOf([]float64{3, 5}, []float64{1, 2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if d[0] != 2 || d[1] != 3 {
		t.Fatalf("delta = %v", d)
	}
}

func TestKthLargestAbs(t *testing.T) {
	v := []float64{-5, 1, 3, -2}
	if got := kthLargestAbs(v, 1); got != 5 {
		t.Fatalf("k=1: %v", got)
	}
	if got := kthLargestAbs(v, 2); got != 3 {
		t.Fatalf("k=2: %v", got)
	}
	if got := kthLargestAbs(v, 4); got != 1 {
		t.Fatalf("k=4: %v", got)
	}
}

func TestDPFedSAMPerturbsUpdate(t *testing.T) {
	d := NewDPFedSAM(7)
	info, global := testInfoAndState(t)
	if err := d.Bind(info); err != nil {
		t.Fatal(err)
	}
	trained := trainedLike(global, 0.01)
	u := &fl.Update{ClientID: 0, State: append([]float64(nil), trained...), NumSamples: 1}
	d.BeforeUpload(0, global, u)
	changed := 0
	for i := 0; i < info.NumParams; i++ {
		if u.State[i] != trained[i] {
			changed++
		}
	}
	if changed < info.NumParams/2 {
		t.Fatalf("dpfedsam changed only %d/%d params", changed, info.NumParams)
	}
	// Milder than LDP.
	dist := func(state []float64) float64 {
		s := 0.0
		for i := 0; i < info.NumParams; i++ {
			diff := state[i] - trained[i]
			s += diff * diff
		}
		return math.Sqrt(s)
	}
	sam := dist(u.State)
	ldp := NewLDP(7)
	if err := ldp.Bind(info); err != nil {
		t.Fatal(err)
	}
	u2 := &fl.Update{ClientID: 0, State: append([]float64(nil), trained...), NumSamples: 1}
	ldp.BeforeUpload(0, global, u2)
	if sam >= dist(u2.State) {
		t.Fatalf("dpfedsam noise %v should be below LDP %v", sam, dist(u2.State))
	}
}

func TestExtendedRegistry(t *testing.T) {
	d, err := New("dpfedsam", 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if d.Name() != "dpfedsam" {
		t.Fatalf("name = %q", d.Name())
	}
	if len(ExtendedNames) != len(StandardNames)+1 {
		t.Fatalf("ExtendedNames = %v", ExtendedNames)
	}
}
