package defense

import (
	"sort"

	"repro/internal/fl"
)

// GC is the gradient-compression defense (§5.2, Fu et al.): each client
// sparsifies its update, keeping only the Ratio fraction of parameters with
// the largest absolute change and zeroing the rest, which reduces the
// information available to a membership attacker.
type GC struct {
	Base

	// Ratio is the kept fraction in (0, 1]; the default 0.1 keeps the top
	// 10% of update coordinates.
	Ratio float64
}

var _ fl.Defense = (*GC)(nil)

// NewGC returns a gradient-compression defense keeping the top 10% of each
// update.
func NewGC() *GC { return &GC{Ratio: 0.1} }

// Name implements fl.Defense.
func (d *GC) Name() string { return "gc" }

// StreamingAggregator implements fl.StreamingCapable: GC sparsifies on the
// client and aggregates with plain FedAvg, so updates fold as they arrive.
func (d *GC) StreamingAggregator() fl.StreamingAggregator { return fl.NewStreamingFedAvg() }

// BeforeUpload implements fl.Defense: top-k sparsification of the update.
func (d *GC) BeforeUpload(_ int, global []float64, u *fl.Update) {
	n := d.Info().NumParams
	delta, err := deltaOf(u.State, global, n)
	if err != nil {
		return
	}
	keep := int(float64(n) * d.Ratio)
	if keep < 1 {
		keep = 1
	}
	if keep < n {
		threshold := kthLargestAbs(delta, keep)
		// Keep everything strictly above the threshold, then admit values
		// equal to the threshold until exactly `keep` survive (exact top-k
		// even with ties, e.g. many zero coordinates).
		kept := 0
		for _, v := range delta {
			if abs(v) > threshold {
				kept++
			}
		}
		atThreshold := keep - kept
		for i, v := range delta {
			switch {
			case abs(v) > threshold:
				// keep
			case abs(v) == threshold && atThreshold > 0:
				atThreshold--
			default:
				delta[i] = 0
			}
		}
	}
	for i := 0; i < n; i++ {
		u.State[i] = global[i] + delta[i]
	}
	// GC stores the residual between original and compressed gradients
	// (Table 3 attributes its +252% memory to exactly that buffer).
	d.addBytes(2 * n)
}

// kthLargestAbs returns the magnitude of the k-th largest |v| in vec
// (1-based), i.e. the sparsification threshold.
func kthLargestAbs(vec []float64, k int) float64 {
	mags := make([]float64, len(vec))
	for i, v := range vec {
		mags[i] = abs(v)
	}
	sort.Float64s(mags)
	return mags[len(mags)-k]
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
