package defense

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/fl"
)

// StandardNames lists the defenses of the paper's Fig. 6 in presentation
// order: the no-defense baseline, the five state-of-the-art mechanisms, and
// DINAR. ExtendedNames adds defenses from the paper's Table 1 implemented as
// extensions (DP-FedSAM).
var (
	StandardNames = []string{"none", "wdp", "ldp", "cdp", "gc", "sa", "dinar"}
	ExtendedNames = append(append([]string(nil), StandardNames...), "dpfedsam")
)

// New constructs a defense by name. seed drives all defense randomness;
// numClients is required by secure aggregation and ignored otherwise.
func New(name string, seed int64, numClients int) (fl.Defense, error) {
	switch name {
	case "none":
		return NewNone(), nil
	case "ldp":
		return NewLDP(seed), nil
	case "cdp":
		return NewCDP(seed), nil
	case "wdp":
		return NewWDP(seed), nil
	case "gc":
		return NewGC(), nil
	case "sa":
		return NewSA(seed, numClients), nil
	case "dpfedsam":
		return NewDPFedSAM(seed), nil
	case "dinar":
		return core.New(seed), nil
	default:
		return nil, fmt.Errorf("defense: unknown defense %q (have %v)", name, StandardNames)
	}
}
