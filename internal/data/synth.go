package data

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/tensor"
)

// Generate synthesizes a dataset of spec.Records samples. Samples are drawn
// class-conditionally: each class owns a fixed prototype (drawn from the
// class seed) and each sample is the prototype perturbed with per-sample
// noise. Given the same spec and seed, Generate is fully deterministic.
func Generate(spec Spec, seed int64) (*Dataset, error) {
	return GenerateN(spec, spec.Records, seed)
}

// GenerateN synthesizes n samples of the given spec (overriding
// spec.Records).
func GenerateN(spec Spec, n int, seed int64) (*Dataset, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if n <= 0 {
		return nil, fmt.Errorf("data: generate %d samples", n)
	}
	rng := rand.New(rand.NewSource(seed))
	protos := newPrototypes(spec, rand.New(rand.NewSource(seed^0x5f3759df)))

	shape := append([]int{n}, spec.InputShape()...)
	ds := &Dataset{Spec: spec, Y: make([]int, n)}
	ds.X = tensor.New(shape...)
	sample := spec.InputLen()
	xd := ds.X.Data()
	for i := 0; i < n; i++ {
		class := i % spec.Classes // balanced classes before shuffling
		ds.Y[i] = class
		protos.fill(xd[i*sample:(i+1)*sample], class, rng)
	}
	return ds.Shuffled(rng), nil
}

// prototypes holds the per-class generative parameters for one spec.
type prototypes struct {
	spec Spec
	// cont holds continuous prototypes (images: upsampled low-res grids;
	// audio: sinusoid mixtures), one flat vector per class.
	cont [][]float64
	// bern holds Bernoulli probabilities per feature for tabular data.
	bern [][]float64
}

func newPrototypes(spec Spec, rng *rand.Rand) *prototypes {
	p := &prototypes{spec: spec}
	switch spec.Modality {
	case Image:
		p.cont = make([][]float64, spec.Classes)
		for c := range p.cont {
			p.cont[c] = imagePrototype(spec, rng)
		}
	case Audio:
		p.cont = make([][]float64, spec.Classes)
		for c := range p.cont {
			p.cont[c] = audioPrototype(spec, rng)
		}
	case Tabular:
		p.bern = make([][]float64, spec.Classes)
		for c := range p.bern {
			probs := make([]float64, spec.Features)
			for f := range probs {
				// Sparse binary patterns: most features rare, a class-specific
				// subset common — mimicking purchase/diagnosis indicator data.
				if rng.Float64() < 0.15 {
					probs[f] = 0.6 + 0.35*rng.Float64()
				} else {
					probs[f] = 0.02 + 0.1*rng.Float64()
				}
			}
			p.bern[c] = probs
		}
	}
	return p
}

// imagePrototype draws a low-resolution class pattern and upsamples it with
// bilinear interpolation so images carry the local spatial correlation that
// convolutional layers exploit.
func imagePrototype(spec Spec, rng *rand.Rand) []float64 {
	res := spec.ProtoRes
	out := make([]float64, spec.Channels*spec.Height*spec.Width)
	for c := 0; c < spec.Channels; c++ {
		low := make([]float64, res*res)
		for i := range low {
			low[i] = rng.NormFloat64()
		}
		for y := 0; y < spec.Height; y++ {
			fy := float64(y) / float64(spec.Height) * float64(res-1)
			y0 := int(fy)
			y1 := y0 + 1
			if y1 >= res {
				y1 = res - 1
			}
			wy := fy - float64(y0)
			for x := 0; x < spec.Width; x++ {
				fx := float64(x) / float64(spec.Width) * float64(res-1)
				x0 := int(fx)
				x1 := x0 + 1
				if x1 >= res {
					x1 = res - 1
				}
				wx := fx - float64(x0)
				v := low[y0*res+x0]*(1-wy)*(1-wx) +
					low[y0*res+x1]*(1-wy)*wx +
					low[y1*res+x0]*wy*(1-wx) +
					low[y1*res+x1]*wy*wx
				out[(c*spec.Height+y)*spec.Width+x] = v
			}
		}
	}
	return out
}

// audioPrototype mixes a few class-specific sinusoids, standing in for the
// spectral structure of spoken words.
func audioPrototype(spec Spec, rng *rand.Rand) []float64 {
	out := make([]float64, spec.SeqLen)
	const tones = 3
	for t := 0; t < tones; t++ {
		freq := 1 + rng.Float64()*float64(spec.SeqLen)/8
		phase := rng.Float64() * 2 * math.Pi
		amp := 0.4 + rng.Float64()
		for i := range out {
			out[i] += amp * math.Sin(2*math.Pi*freq*float64(i)/float64(spec.SeqLen)+phase)
		}
	}
	return out
}

// fill writes one sample of the given class into dst.
func (p *prototypes) fill(dst []float64, class int, rng *rand.Rand) {
	switch p.spec.Modality {
	case Image, Audio:
		proto := p.cont[class]
		for i := range dst {
			dst[i] = proto[i] + rng.NormFloat64()*p.spec.Noise
		}
	case Tabular:
		probs := p.bern[class]
		flip := p.spec.Noise
		for i := range dst {
			prob := probs[i]
			// Label noise: flip the Bernoulli parameter with probability
			// Noise to make the task non-trivial.
			if rng.Float64() < flip {
				prob = 1 - prob
			}
			if rng.Float64() < prob {
				dst[i] = 1
			} else {
				dst[i] = 0
			}
		}
	}
}
