package data

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func TestRegistryValid(t *testing.T) {
	if len(Registry) != 7 {
		t.Fatalf("registry has %d datasets, want 7 (Table 2)", len(Registry))
	}
	for name, spec := range Registry {
		if err := spec.Validate(); err != nil {
			t.Fatalf("spec %q invalid: %v", name, err)
		}
		if spec.Name != name {
			t.Fatalf("spec %q has Name %q", name, spec.Name)
		}
	}
}

func TestLookup(t *testing.T) {
	s, err := Lookup("cifar10")
	if err != nil {
		t.Fatal(err)
	}
	if s.Classes != 10 {
		t.Fatalf("cifar10 classes = %d", s.Classes)
	}
	if _, err := Lookup("nope"); err == nil {
		t.Fatal("Lookup should fail for unknown dataset")
	}
}

func TestNamesSorted(t *testing.T) {
	names := Names()
	if len(names) != len(Registry) {
		t.Fatalf("Names() returned %d, want %d", len(names), len(Registry))
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Names not sorted: %v", names)
		}
	}
}

func TestSpecInputShapes(t *testing.T) {
	tests := []struct {
		name    string
		wantLen int
	}{
		{"cifar10", 3 * 16 * 16},
		{"speechcommands", 256},
		{"purchase100", 600},
	}
	for _, tt := range tests {
		s, err := Lookup(tt.name)
		if err != nil {
			t.Fatal(err)
		}
		if s.InputLen() != tt.wantLen {
			t.Fatalf("%s InputLen = %d, want %d", tt.name, s.InputLen(), tt.wantLen)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	spec, _ := Lookup("purchase100")
	a, err := GenerateN(spec, 200, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateN(spec, 200, 42)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.X.Data() {
		if a.X.Data()[i] != b.X.Data()[i] {
			t.Fatal("same seed should generate identical data")
		}
	}
	for i := range a.Y {
		if a.Y[i] != b.Y[i] {
			t.Fatal("same seed should generate identical labels")
		}
	}
	c, err := GenerateN(spec, 200, 43)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.X.Data() {
		if a.X.Data()[i] != c.X.Data()[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds should generate different data")
	}
}

func TestGenerateBalancedClasses(t *testing.T) {
	spec, _ := Lookup("cifar10")
	ds, err := GenerateN(spec, 500, 1)
	if err != nil {
		t.Fatal(err)
	}
	counts := ds.ClassCounts()
	for c, n := range counts {
		if n != 50 {
			t.Fatalf("class %d has %d samples, want 50", c, n)
		}
	}
}

func TestGenerateTabularBinary(t *testing.T) {
	spec, _ := Lookup("texas100")
	ds, err := GenerateN(spec, 200, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range ds.X.Data() {
		if v != 0 && v != 1 {
			t.Fatalf("tabular feature %v not binary", v)
		}
	}
}

func TestGenerateClassesSeparable(t *testing.T) {
	// Same-class samples should be closer than cross-class samples on
	// average (otherwise no model could learn).
	spec, _ := Lookup("cifar10")
	ds, err := GenerateN(spec, 300, 3)
	if err != nil {
		t.Fatal(err)
	}
	n := ds.Spec.InputLen()
	dist := func(i, j int) float64 {
		xi := ds.X.Data()[i*n : (i+1)*n]
		xj := ds.X.Data()[j*n : (j+1)*n]
		s := 0.0
		for k := range xi {
			d := xi[k] - xj[k]
			s += d * d
		}
		return s
	}
	var same, diff, sameN, diffN float64
	for i := 0; i < 100; i++ {
		for j := i + 1; j < 100; j++ {
			if ds.Y[i] == ds.Y[j] {
				same += dist(i, j)
				sameN++
			} else {
				diff += dist(i, j)
				diffN++
			}
		}
	}
	if sameN == 0 || diffN == 0 {
		t.Skip("degenerate sample")
	}
	if same/sameN >= diff/diffN {
		t.Fatalf("same-class dist %v >= cross-class dist %v", same/sameN, diff/diffN)
	}
}

func TestGenerateErrors(t *testing.T) {
	spec, _ := Lookup("cifar10")
	if _, err := GenerateN(spec, 0, 1); err == nil {
		t.Fatal("accepted zero samples")
	}
	bad := spec
	bad.Channels = 0
	if _, err := GenerateN(bad, 10, 1); err == nil {
		t.Fatal("accepted invalid spec")
	}
}

func TestSubsetAndBatch(t *testing.T) {
	spec, _ := Lookup("purchase100")
	ds, err := GenerateN(spec, 50, 4)
	if err != nil {
		t.Fatal(err)
	}
	sub := ds.Subset([]int{1, 3, 5})
	if sub.Len() != 3 {
		t.Fatalf("subset len = %d", sub.Len())
	}
	if sub.Y[1] != ds.Y[3] {
		t.Fatal("subset labels misaligned")
	}
	x, y := ds.Batch(10, 20)
	if x.Dim(0) != 10 || len(y) != 10 {
		t.Fatalf("batch shape %v, labels %d", x.Shape(), len(y))
	}
	if y[0] != ds.Y[10] {
		t.Fatal("batch labels misaligned")
	}
}

func TestBatchesCoverAll(t *testing.T) {
	spec, _ := Lookup("purchase100")
	ds, err := GenerateN(spec, 53, 5)
	if err != nil {
		t.Fatal(err)
	}
	seen := 0
	err = ds.Batches(8, nil, func(x *tensor.Tensor, y []int) error {
		seen += len(y)
		if x.Dim(0) != len(y) {
			t.Fatal("batch tensor/label mismatch")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if seen != 53 {
		t.Fatalf("batches covered %d samples, want 53", seen)
	}
	if err := ds.Batches(0, nil, func(_ *tensor.Tensor, _ []int) error { return nil }); err == nil {
		t.Fatal("accepted zero batch size")
	}
	wantErr := errors.New("boom")
	err = ds.Batches(8, nil, func(_ *tensor.Tensor, _ []int) error { return wantErr })
	if !errors.Is(err, wantErr) {
		t.Fatalf("Batches should propagate fn error, got %v", err)
	}
}

func TestSplit(t *testing.T) {
	spec, _ := Lookup("purchase100")
	ds, err := GenerateN(spec, 100, 6)
	if err != nil {
		t.Fatal(err)
	}
	a, b := ds.Split(0.8)
	if a.Len() != 80 || b.Len() != 20 {
		t.Fatalf("split = %d/%d", a.Len(), b.Len())
	}
}

func TestFLSplitProtocol(t *testing.T) {
	spec, _ := Lookup("purchase100")
	ds, err := GenerateN(spec, 1000, 7)
	if err != nil {
		t.Fatal(err)
	}
	fs := NewFLSplit(ds, rand.New(rand.NewSource(7)))
	if fs.Attacker.Len() != 500 {
		t.Fatalf("attacker pool = %d, want 500", fs.Attacker.Len())
	}
	if fs.Train.Len() != 400 {
		t.Fatalf("train pool = %d, want 400", fs.Train.Len())
	}
	if fs.Test.Len() != 100 {
		t.Fatalf("test pool = %d, want 100", fs.Test.Len())
	}
}

func TestConcat(t *testing.T) {
	spec, _ := Lookup("purchase100")
	a, _ := GenerateN(spec, 30, 8)
	b, _ := GenerateN(spec, 20, 9)
	all, err := Concat(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if all.Len() != 50 {
		t.Fatalf("concat len = %d", all.Len())
	}
	if all.Y[30] != b.Y[0] {
		t.Fatal("concat label misaligned")
	}
	other, _ := GenerateN(Registry["cifar10"], 10, 1)
	if _, err := Concat(a, other); err == nil {
		t.Fatal("concat should reject mixed specs")
	}
	if _, err := Concat(); err == nil {
		t.Fatal("concat should reject empty input")
	}
}

func TestPartitionIID(t *testing.T) {
	spec, _ := Lookup("cifar10")
	ds, _ := GenerateN(spec, 100, 10)
	parts, err := PartitionIID(ds, 4, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 4 {
		t.Fatalf("parts = %d", len(parts))
	}
	total := 0
	for _, p := range parts {
		total += p.Len()
	}
	if total != 100 {
		t.Fatalf("parts cover %d samples", total)
	}
	if _, err := PartitionIID(ds, 0, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("accepted zero clients")
	}
	if _, err := PartitionIID(ds, 1000, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("accepted more clients than samples")
	}
}

func TestPartitionDirichletSkewOrdering(t *testing.T) {
	spec, _ := Lookup("gtsrb")
	ds, _ := GenerateN(spec, 860, 11)
	rng := rand.New(rand.NewSource(2))

	skewAt := func(alpha float64) float64 {
		parts, err := PartitionDirichlet(ds, 5, alpha, rng)
		if err != nil {
			t.Fatalf("alpha=%v: %v", alpha, err)
		}
		total := 0
		for _, p := range parts {
			if p.Len() == 0 {
				t.Fatalf("alpha=%v produced empty client", alpha)
			}
			total += p.Len()
		}
		if total != ds.Len() {
			t.Fatalf("alpha=%v covers %d of %d", alpha, total, ds.Len())
		}
		return SkewMetric(ds, parts)
	}

	low := skewAt(0.2)
	high := skewAt(50)
	iid := skewAt(math.Inf(1))
	if !(low > high) {
		t.Fatalf("skew(0.2)=%v should exceed skew(50)=%v", low, high)
	}
	if iid >= low {
		t.Fatalf("IID skew %v should be below alpha=0.2 skew %v", iid, low)
	}
}

func TestPartitionDirichletErrors(t *testing.T) {
	spec, _ := Lookup("cifar10")
	ds, _ := GenerateN(spec, 100, 12)
	rng := rand.New(rand.NewSource(3))
	if _, err := PartitionDirichlet(ds, 0, 1, rng); err == nil {
		t.Fatal("accepted zero clients")
	}
	if _, err := PartitionDirichlet(ds, 5, 0, rng); err == nil {
		t.Fatal("accepted alpha=0")
	}
	if _, err := PartitionDirichlet(ds, 5, -1, rng); err == nil {
		t.Fatal("accepted negative alpha")
	}
}

// Property: dirichlet samples form a probability vector.
func TestQuickDirichletSimplex(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		alpha := 0.1 + rng.Float64()*5
		k := 2 + rng.Intn(10)
		p := dirichlet(rng, alpha, k)
		sum := 0.0
		for _, v := range p {
			if v < 0 {
				return false
			}
			sum += v
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: gamma samples are positive and have roughly the right mean for
// moderate shapes.
func TestGammaSampleMean(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, shape := range []float64{0.5, 1, 2, 5} {
		sum := 0.0
		const n = 20000
		for i := 0; i < n; i++ {
			v := gammaSample(rng, shape)
			if v <= 0 {
				t.Fatalf("gamma(%v) sample %v <= 0", shape, v)
			}
			sum += v
		}
		mean := sum / n
		if math.Abs(mean-shape) > 0.1*shape+0.05 {
			t.Fatalf("gamma(%v) mean = %v", shape, mean)
		}
	}
}

func TestShuffledPreservesMultiset(t *testing.T) {
	spec, _ := Lookup("purchase100")
	ds, _ := GenerateN(spec, 40, 13)
	sh := ds.Shuffled(rand.New(rand.NewSource(5)))
	a, b := ds.ClassCounts(), sh.ClassCounts()
	for c := range a {
		if a[c] != b[c] {
			t.Fatal("shuffle changed class counts")
		}
	}
}

func TestModalityString(t *testing.T) {
	if Image.String() != "image" || Audio.String() != "audio" || Tabular.String() != "tabular" {
		t.Fatal("modality strings wrong")
	}
	if Modality(99).String() == "" {
		t.Fatal("unknown modality should still render")
	}
}
