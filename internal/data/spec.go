// Package data provides the dataset substrate for the DINAR reproduction.
//
// The paper evaluates on seven real datasets (Table 2): Cifar-10, Cifar-100,
// GTSRB, CelebA, Speech Commands, Purchase100 and Texas100. Those datasets
// (and the GPU-scale models they feed) are not available in this offline,
// CPU-only environment, so this package generates synthetic stand-ins that
// preserve what membership-inference experiments need:
//
//   - the modality and tensor shape of each dataset (image / raw audio /
//     binary tabular), scaled down to CPU-friendly sizes;
//   - the class count and a learnable class-conditional structure
//     (per-class prototypes plus per-sample noise) so models genuinely learn
//     and — with small per-client datasets — genuinely overfit, which is the
//     signal MIAs exploit;
//   - the paper's split protocol (§5.1): half of the data is attacker prior
//     knowledge, the other half is split 80%/20% into train/test.
//
// All generation is deterministic given a seed.
package data

import (
	"fmt"
	"sort"
)

// Modality identifies the tensor layout of a dataset.
type Modality int

// Supported modalities.
const (
	Image   Modality = iota + 1 // [C, H, W] inputs
	Audio                       // [1, L] raw waveform inputs
	Tabular                     // [F] flat binary-feature inputs
)

// String implements fmt.Stringer.
func (m Modality) String() string {
	switch m {
	case Image:
		return "image"
	case Audio:
		return "audio"
	case Tabular:
		return "tabular"
	default:
		return fmt.Sprintf("modality(%d)", int(m))
	}
}

// Spec describes a synthetic dataset. The canonical specs in Registry mirror
// the paper's Table 2 with scaled-down record counts and input sizes
// (documented per spec).
type Spec struct {
	// Name is the dataset identifier, e.g. "cifar10".
	Name string
	// Records is the default total number of records to generate.
	Records int
	// Classes is the number of target classes.
	Classes int
	// Modality selects the input layout.
	Modality Modality

	// Channels, Height, Width describe Image inputs.
	Channels, Height, Width int
	// SeqLen describes Audio inputs (single channel).
	SeqLen int
	// Features describes Tabular inputs.
	Features int

	// Noise is the per-sample noise standard deviation (images/audio) or the
	// bit-flip probability (tabular). Higher noise makes the task harder and
	// increases the generalization gap of overfit models.
	Noise float64
	// ProtoRes is the low-resolution prototype grid size for images; class
	// prototypes are drawn at ProtoRes×ProtoRes and upsampled so that images
	// have the local spatial correlation convolutions exploit.
	ProtoRes int
}

// InputShape returns the per-sample tensor shape (without the batch
// dimension).
func (s Spec) InputShape() []int {
	switch s.Modality {
	case Image:
		return []int{s.Channels, s.Height, s.Width}
	case Audio:
		return []int{1, s.SeqLen}
	case Tabular:
		return []int{s.Features}
	default:
		return nil
	}
}

// InputLen returns the flattened per-sample input length.
func (s Spec) InputLen() int {
	n := 1
	for _, d := range s.InputShape() {
		n *= d
	}
	return n
}

// Validate reports configuration errors.
func (s Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("data: spec has empty name")
	}
	if s.Records <= 0 || s.Classes <= 0 {
		return fmt.Errorf("data: spec %q needs positive records/classes", s.Name)
	}
	switch s.Modality {
	case Image:
		if s.Channels <= 0 || s.Height <= 0 || s.Width <= 0 {
			return fmt.Errorf("data: image spec %q has invalid shape", s.Name)
		}
		if s.ProtoRes <= 0 || s.ProtoRes > s.Height || s.ProtoRes > s.Width {
			return fmt.Errorf("data: image spec %q has invalid ProtoRes %d", s.Name, s.ProtoRes)
		}
	case Audio:
		if s.SeqLen <= 0 {
			return fmt.Errorf("data: audio spec %q has invalid SeqLen", s.Name)
		}
	case Tabular:
		if s.Features <= 0 {
			return fmt.Errorf("data: tabular spec %q has invalid Features", s.Name)
		}
	default:
		return fmt.Errorf("data: spec %q has unknown modality", s.Name)
	}
	return nil
}

// Registry holds the canonical dataset specs keyed by name. Record counts and
// input sizes are scaled from the paper's Table 2 (noted per entry) so that
// full FL experiments run on CPU; class counts and modality are faithful.
var Registry = map[string]Spec{
	// Cifar-10: paper 50,000 × 3×32×32, ResNet20. Scaled to 16×16 images.
	"cifar10": {
		Name: "cifar10", Records: 4000, Classes: 10, Modality: Image,
		Channels: 3, Height: 16, Width: 16, Noise: 2.2, ProtoRes: 4,
	},
	// Cifar-100: paper 50,000 × 3×32×32 with 100 classes, ResNet20.
	"cifar100": {
		Name: "cifar100", Records: 6000, Classes: 100, Modality: Image,
		Channels: 3, Height: 16, Width: 16, Noise: 2.2, ProtoRes: 4,
	},
	// GTSRB: paper 51,389 × 3×48×48 (6,912 features) with 43 classes, VGG11.
	"gtsrb": {
		Name: "gtsrb", Records: 4300, Classes: 43, Modality: Image,
		Channels: 3, Height: 16, Width: 16, Noise: 0.8, ProtoRes: 4,
	},
	// CelebA: paper 40,000 subset × 64×64 with 32 attribute-combination
	// classes, VGG11.
	"celeba": {
		Name: "celeba", Records: 4000, Classes: 32, Modality: Image,
		Channels: 3, Height: 16, Width: 16, Noise: 1.5, ProtoRes: 4,
	},
	// Speech Commands: paper 64,727 × 16,000-sample waveforms, 35/36 classes,
	// M18. Scaled to 256-sample waveforms.
	"speechcommands": {
		Name: "speechcommands", Records: 3600, Classes: 36, Modality: Audio,
		SeqLen: 256, Noise: 0.5,
	},
	// Purchase100: paper 97,324 × 600 binary features, 100 classes, FCNN-6.
	"purchase100": {
		Name: "purchase100", Records: 6000, Classes: 100, Modality: Tabular,
		Features: 600, Noise: 0.18,
	},
	// Texas100: paper 67,330 × 6,170 binary features, 100 classes, FCNN-6.
	// Feature count scaled to 1,024.
	"texas100": {
		Name: "texas100", Records: 6000, Classes: 100, Modality: Tabular,
		Features: 1024, Noise: 0.18,
	},
}

// Names returns the registered dataset names in sorted order.
func Names() []string {
	names := make([]string, 0, len(Registry))
	for n := range Registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Lookup returns the spec registered under name.
func Lookup(name string) (Spec, error) {
	s, ok := Registry[name]
	if !ok {
		return Spec{}, fmt.Errorf("data: unknown dataset %q (have %v)", name, Names())
	}
	return s, nil
}
