package data

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"
)

const sampleCSV = `1,0,1,0
0,1,0,1
1,1,1,0
0,0,0,1
`

func TestFromCSV(t *testing.T) {
	ds, err := FromCSV(strings.NewReader(sampleCSV), "mydata", 0)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 4 {
		t.Fatalf("len = %d", ds.Len())
	}
	if ds.Spec.Features != 3 {
		t.Fatalf("features = %d", ds.Spec.Features)
	}
	if ds.Spec.Classes != 2 { // labels 0 and 1 -> inferred 2 classes
		t.Fatalf("classes = %d", ds.Spec.Classes)
	}
	if ds.Y[0] != 0 || ds.Y[1] != 1 {
		t.Fatalf("labels = %v", ds.Y)
	}
	if ds.X.At(0, 0) != 1 || ds.X.At(0, 1) != 0 {
		t.Fatalf("row 0 = %v", ds.X.Data()[:3])
	}
	if ds.Spec.Validate() != nil {
		t.Fatal("CSV spec should validate")
	}
}

func TestFromCSVExplicitClasses(t *testing.T) {
	ds, err := FromCSV(strings.NewReader(sampleCSV), "d", 10)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Spec.Classes != 10 {
		t.Fatalf("classes = %d", ds.Spec.Classes)
	}
	if _, err := FromCSV(strings.NewReader(sampleCSV), "d", 1); err == nil {
		t.Fatal("accepted label exceeding class count")
	}
}

func TestFromCSVErrors(t *testing.T) {
	tests := []struct {
		name string
		csv  string
	}{
		{"empty", ""},
		{"one column", "5\n"},
		{"ragged", "1,2,0\n1,0\n"},
		{"bad feature", "x,2,0\n"},
		{"bad label", "1,2,z\n"},
		{"negative label", "1,2,-3\n"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := FromCSV(strings.NewReader(tt.csv), "d", 0); err == nil {
				t.Fatalf("accepted %s", tt.name)
			}
		})
	}
}

func TestCSVRoundTrip(t *testing.T) {
	spec, _ := Lookup("purchase100")
	orig, err := GenerateN(spec, 30, 5)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ToCSV(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := FromCSV(&buf, "roundtrip", spec.Classes)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != orig.Len() || back.Spec.Features != orig.Spec.Features {
		t.Fatalf("round trip shape: %d/%d", back.Len(), back.Spec.Features)
	}
	for i := range orig.X.Data() {
		if back.X.Data()[i] != orig.X.Data()[i] {
			t.Fatal("features corrupted")
		}
	}
	for i := range orig.Y {
		if back.Y[i] != orig.Y[i] {
			t.Fatal("labels corrupted")
		}
	}
}

func TestToCSVRejectsNonTabular(t *testing.T) {
	spec, _ := Lookup("cifar10")
	ds, _ := GenerateN(spec, 5, 1)
	var buf bytes.Buffer
	if err := ToCSV(&buf, ds); err == nil {
		t.Fatal("accepted image dataset")
	}
}

func TestFromCSVFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "data.csv")
	spec, _ := Lookup("texas100")
	orig, _ := GenerateN(spec, 20, 3)
	var buf bytes.Buffer
	if err := ToCSV(&buf, orig); err != nil {
		t.Fatal(err)
	}
	if err := writeFile(path, buf.Bytes()); err != nil {
		t.Fatal(err)
	}
	ds, err := FromCSVFile(path, "file", spec.Classes)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 20 {
		t.Fatalf("len = %d", ds.Len())
	}
	if _, err := FromCSVFile(filepath.Join(dir, "missing.csv"), "x", 0); err == nil {
		t.Fatal("loaded missing file")
	}
}

// TestCSVDatasetTrainsInFL exercises a CSV-loaded dataset through splitting
// and batching, proving the adoption path composes with the FL machinery.
func TestCSVDatasetComposes(t *testing.T) {
	spec, _ := Lookup("purchase100")
	orig, _ := GenerateN(spec, 60, 4)
	var buf bytes.Buffer
	if err := ToCSV(&buf, orig); err != nil {
		t.Fatal(err)
	}
	ds, err := FromCSV(&buf, "csvset", spec.Classes)
	if err != nil {
		t.Fatal(err)
	}
	split := NewFLSplit(ds, rand.New(rand.NewSource(1)))
	if split.Train.Len() == 0 || split.Test.Len() == 0 || split.Attacker.Len() == 0 {
		t.Fatal("FL split failed on CSV dataset")
	}
	parts, err := PartitionIID(split.Train, 3, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 3 {
		t.Fatalf("parts = %d", len(parts))
	}
}
