package data

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strconv"

	"repro/internal/tensor"
)

// FromCSV reads a tabular dataset from CSV: every row is one sample, the
// last column is the integer class label, and all other columns are float
// features. It is the adoption path for users with real tabular data
// (Purchase100/Texas100-style): the resulting Dataset plugs into the same
// FL systems, defenses, and attacks as the synthetic generators.
//
// name labels the resulting spec; classes, when > 0, fixes the class count
// (otherwise it is inferred as max(label)+1).
func FromCSV(r io.Reader, name string, classes int) (*Dataset, error) {
	reader := csv.NewReader(r)
	reader.FieldsPerRecord = -1 // validated manually for better errors

	var rows [][]float64
	var labels []int
	features := -1
	line := 0
	for {
		record, err := reader.Read()
		if err == io.EOF {
			break
		}
		line++
		if err != nil {
			return nil, fmt.Errorf("data: csv line %d: %w", line, err)
		}
		if len(record) < 2 {
			return nil, fmt.Errorf("data: csv line %d has %d columns, need >= 2", line, len(record))
		}
		if features == -1 {
			features = len(record) - 1
		} else if len(record)-1 != features {
			return nil, fmt.Errorf("data: csv line %d has %d features, want %d", line, len(record)-1, features)
		}
		row := make([]float64, features)
		for i := 0; i < features; i++ {
			v, err := strconv.ParseFloat(record[i], 64)
			if err != nil {
				return nil, fmt.Errorf("data: csv line %d column %d: %w", line, i+1, err)
			}
			row[i] = v
		}
		label, err := strconv.Atoi(record[features])
		if err != nil {
			return nil, fmt.Errorf("data: csv line %d label: %w", line, err)
		}
		if label < 0 {
			return nil, fmt.Errorf("data: csv line %d has negative label %d", line, label)
		}
		rows = append(rows, row)
		labels = append(labels, label)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("data: csv has no rows")
	}
	maxLabel := 0
	for _, l := range labels {
		if l > maxLabel {
			maxLabel = l
		}
	}
	if classes <= 0 {
		classes = maxLabel + 1
	} else if maxLabel >= classes {
		return nil, fmt.Errorf("data: csv label %d exceeds %d classes", maxLabel, classes)
	}

	spec := Spec{
		Name:     name,
		Records:  len(rows),
		Classes:  classes,
		Modality: Tabular,
		Features: features,
	}
	x := tensor.New(len(rows), features)
	for i, row := range rows {
		copy(x.Data()[i*features:(i+1)*features], row)
	}
	return &Dataset{Spec: spec, X: x, Y: labels}, nil
}

// FromCSVFile is FromCSV over a file path.
func FromCSVFile(path, name string, classes int) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("data: %w", err)
	}
	defer f.Close()
	return FromCSV(f, name, classes)
}

// ToCSV writes a tabular dataset as CSV (features..., label), the inverse of
// FromCSV.
func ToCSV(w io.Writer, ds *Dataset) error {
	if ds.Spec.Modality != Tabular {
		return fmt.Errorf("data: ToCSV supports tabular datasets, got %v", ds.Spec.Modality)
	}
	writer := csv.NewWriter(w)
	features := ds.Spec.Features
	record := make([]string, features+1)
	for i := 0; i < ds.Len(); i++ {
		row := ds.X.Data()[i*features : (i+1)*features]
		for j, v := range row {
			record[j] = strconv.FormatFloat(v, 'g', -1, 64)
		}
		record[features] = strconv.Itoa(ds.Y[i])
		if err := writer.Write(record); err != nil {
			return fmt.Errorf("data: csv write row %d: %w", i, err)
		}
	}
	writer.Flush()
	return writer.Error()
}

// writeFile is a small helper for tests and tools.
func writeFile(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}
