package data

import (
	"fmt"
	"math"
	"math/rand"
)

// PartitionIID divides the dataset into k disjoint, nearly-equal parts with
// an IID class distribution (samples are assigned round-robin after a
// shuffle).
func PartitionIID(ds *Dataset, k int, rng *rand.Rand) ([]*Dataset, error) {
	if k <= 0 {
		return nil, fmt.Errorf("data: partition into %d parts", k)
	}
	if ds.Len() < k {
		return nil, fmt.Errorf("data: %d samples for %d clients", ds.Len(), k)
	}
	perm := rng.Perm(ds.Len())
	buckets := make([][]int, k)
	for i, idx := range perm {
		buckets[i%k] = append(buckets[i%k], idx)
	}
	parts := make([]*Dataset, k)
	for i, b := range buckets {
		parts[i] = ds.Subset(b)
	}
	return parts, nil
}

// PartitionDirichlet divides the dataset into k parts with non-IID class
// proportions sampled from a symmetric Dirichlet(alpha) distribution, the
// standard non-IID FL benchmark protocol used by the paper's §5.8. Smaller
// alpha yields more skewed (more non-IID) partitions; alpha = +Inf degrades
// to the IID partition.
func PartitionDirichlet(ds *Dataset, k int, alpha float64, rng *rand.Rand) ([]*Dataset, error) {
	if k <= 0 {
		return nil, fmt.Errorf("data: partition into %d parts", k)
	}
	if math.IsInf(alpha, 1) {
		return PartitionIID(ds, k, rng)
	}
	if alpha <= 0 {
		return nil, fmt.Errorf("data: dirichlet alpha %v", alpha)
	}
	// Group sample indices by class.
	byClass := make([][]int, ds.Spec.Classes)
	for i, y := range ds.Y {
		byClass[y] = append(byClass[y], i)
	}
	buckets := make([][]int, k)
	for _, idxs := range byClass {
		if len(idxs) == 0 {
			continue
		}
		rng.Shuffle(len(idxs), func(i, j int) { idxs[i], idxs[j] = idxs[j], idxs[i] })
		props := dirichlet(rng, alpha, k)
		// Convert proportions to cumulative cut points.
		start := 0
		cum := 0.0
		for c := 0; c < k; c++ {
			cum += props[c]
			end := int(cum*float64(len(idxs)) + 0.5)
			if c == k-1 {
				end = len(idxs)
			}
			if end > len(idxs) {
				end = len(idxs)
			}
			if end > start {
				buckets[c] = append(buckets[c], idxs[start:end]...)
			}
			start = end
		}
	}
	parts := make([]*Dataset, k)
	for i, b := range buckets {
		if len(b) == 0 {
			// Guarantee every client at least one sample by stealing from the
			// largest bucket; FL clients with empty datasets cannot train.
			big := largestBucket(buckets)
			if big == -1 || len(buckets[big]) < 2 {
				return nil, fmt.Errorf("data: dirichlet partition produced empty client %d", i)
			}
			b = []int{buckets[big][len(buckets[big])-1]}
			buckets[big] = buckets[big][:len(buckets[big])-1]
			buckets[i] = b
		}
		parts[i] = ds.Subset(b)
	}
	return parts, nil
}

func largestBucket(buckets [][]int) int {
	best, bestLen := -1, 1
	for i, b := range buckets {
		if len(b) > bestLen {
			best, bestLen = i, len(b)
		}
	}
	return best
}

// dirichlet samples a point from a symmetric Dirichlet(alpha) distribution on
// the k-simplex using normalized Gamma(alpha, 1) draws.
func dirichlet(rng *rand.Rand, alpha float64, k int) []float64 {
	out := make([]float64, k)
	sum := 0.0
	for i := range out {
		out[i] = gammaSample(rng, alpha)
		sum += out[i]
	}
	if sum == 0 {
		// Degenerate draw; fall back to uniform.
		for i := range out {
			out[i] = 1 / float64(k)
		}
		return out
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// gammaSample draws from Gamma(shape, 1) via Marsaglia–Tsang, with the
// standard boost for shape < 1.
func gammaSample(rng *rand.Rand, shape float64) float64 {
	if shape < 1 {
		// Gamma(a) = Gamma(a+1) * U^(1/a)
		u := rng.Float64()
		for u == 0 {
			u = rng.Float64()
		}
		return gammaSample(rng, shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// SkewMetric quantifies how non-IID a partition is: the mean total-variation
// distance between each part's class distribution and the global class
// distribution. 0 means perfectly IID; values near 1 mean fully disjoint
// class assignments.
func SkewMetric(global *Dataset, parts []*Dataset) float64 {
	if len(parts) == 0 {
		return 0
	}
	gCounts := global.ClassCounts()
	gTotal := float64(global.Len())
	sum := 0.0
	for _, p := range parts {
		pCounts := p.ClassCounts()
		pTotal := float64(p.Len())
		tv := 0.0
		for c := range gCounts {
			gp := float64(gCounts[c]) / gTotal
			pp := 0.0
			if pTotal > 0 {
				pp = float64(pCounts[c]) / pTotal
			}
			tv += math.Abs(gp - pp)
		}
		sum += tv / 2
	}
	return sum / float64(len(parts))
}
