package data

import (
	"fmt"
	"math/rand"

	"repro/internal/tensor"
)

// Dataset is an in-memory labeled dataset. X holds one sample per row of the
// first dimension; Y holds the class labels.
type Dataset struct {
	Spec Spec
	X    *tensor.Tensor
	Y    []int
}

// Len returns the number of samples.
func (d *Dataset) Len() int { return len(d.Y) }

// sampleLen returns the flattened per-sample length.
func (d *Dataset) sampleLen() int {
	if d.Len() == 0 {
		return 0
	}
	return d.X.Len() / d.Len()
}

// Subset returns a new dataset containing the samples at the given indices
// (copied).
func (d *Dataset) Subset(indices []int) *Dataset {
	shape := append([]int{len(indices)}, d.Spec.InputShape()...)
	x := tensor.New(shape...)
	y := make([]int, len(indices))
	n := d.sampleLen()
	xd, src := x.Data(), d.X.Data()
	for i, idx := range indices {
		copy(xd[i*n:(i+1)*n], src[idx*n:(idx+1)*n])
		y[i] = d.Y[idx]
	}
	return &Dataset{Spec: d.Spec, X: x, Y: y}
}

// Split partitions the dataset into two parts with the first containing
// round(frac*N) samples, preserving order.
func (d *Dataset) Split(frac float64) (*Dataset, *Dataset) {
	n := d.Len()
	cut := int(float64(n)*frac + 0.5)
	if cut > n {
		cut = n
	}
	first := make([]int, cut)
	second := make([]int, n-cut)
	for i := range first {
		first[i] = i
	}
	for i := range second {
		second[i] = cut + i
	}
	return d.Subset(first), d.Subset(second)
}

// Shuffled returns a copy of the dataset with rows permuted by rng.
func (d *Dataset) Shuffled(rng *rand.Rand) *Dataset {
	idx := rng.Perm(d.Len())
	return d.Subset(idx)
}

// Batch extracts rows [lo, hi) as a batch tensor plus labels.
func (d *Dataset) Batch(lo, hi int) (*tensor.Tensor, []int) {
	if lo < 0 || hi > d.Len() || lo >= hi {
		panic(fmt.Sprintf("data: batch [%d,%d) of %d samples", lo, hi, d.Len()))
	}
	shape := append([]int{hi - lo}, d.Spec.InputShape()...)
	x := tensor.New(shape...)
	n := d.sampleLen()
	copy(x.Data(), d.X.Data()[lo*n:hi*n])
	return x, append([]int(nil), d.Y[lo:hi]...)
}

// Batches invokes fn for every mini-batch of size batchSize (the final batch
// may be smaller). If rng is non-nil the sample order is shuffled first.
func (d *Dataset) Batches(batchSize int, rng *rand.Rand, fn func(x *tensor.Tensor, y []int) error) error {
	if batchSize <= 0 {
		return fmt.Errorf("data: batch size %d", batchSize)
	}
	ds := d
	if rng != nil {
		ds = d.Shuffled(rng)
	}
	for lo := 0; lo < ds.Len(); lo += batchSize {
		hi := lo + batchSize
		if hi > ds.Len() {
			hi = ds.Len()
		}
		x, y := ds.Batch(lo, hi)
		if err := fn(x, y); err != nil {
			return err
		}
	}
	return nil
}

// ClassCounts returns the number of samples per class.
func (d *Dataset) ClassCounts() []int {
	counts := make([]int, d.Spec.Classes)
	for _, y := range d.Y {
		if y >= 0 && y < len(counts) {
			counts[y]++
		}
	}
	return counts
}

// Concat returns a dataset containing all samples of the arguments, which
// must share a spec.
func Concat(parts ...*Dataset) (*Dataset, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("data: concat of zero datasets")
	}
	total := 0
	for _, p := range parts {
		if p.Spec.Name != parts[0].Spec.Name {
			return nil, fmt.Errorf("data: concat mixes %q and %q", parts[0].Spec.Name, p.Spec.Name)
		}
		total += p.Len()
	}
	shape := append([]int{total}, parts[0].Spec.InputShape()...)
	x := tensor.New(shape...)
	y := make([]int, 0, total)
	off := 0
	for _, p := range parts {
		copy(x.Data()[off:], p.X.Data())
		off += p.X.Len()
		y = append(y, p.Y...)
	}
	return &Dataset{Spec: parts[0].Spec, X: x, Y: y}, nil
}

// FLSplit is the paper's data layout (§5.1): half of all records form the
// attacker's prior knowledge; the remaining half is divided into train (80%)
// and test (20%).
type FLSplit struct {
	// Attacker is the MIA adversary's prior-knowledge pool.
	Attacker *Dataset
	// Train is the member pool, to be partitioned across FL clients.
	Train *Dataset
	// Test is the held-out non-member evaluation pool.
	Test *Dataset
}

// NewFLSplit shuffles ds and applies the paper's ½ attacker + 80/20
// train/test protocol.
func NewFLSplit(ds *Dataset, rng *rand.Rand) *FLSplit {
	shuffled := ds.Shuffled(rng)
	attacker, rest := shuffled.Split(0.5)
	train, test := rest.Split(0.8)
	return &FLSplit{Attacker: attacker, Train: train, Test: test}
}
