package attack

import (
	"math"

	"repro/internal/data"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// ConfidenceAttack is the Yeom-style confidence MIA: membership score = the
// model's softmax probability for the true class. Overfit models are more
// confident on members.
type ConfidenceAttack struct {
	// BatchSize for evaluation passes.
	BatchSize int
}

// NewConfidenceAttack returns a confidence-threshold attack.
func NewConfidenceAttack() *ConfidenceAttack { return &ConfidenceAttack{BatchSize: 64} }

// AUC scores by true-class confidence and returns the attack AUC in [0.5, 1].
func (a *ConfidenceAttack) AUC(m *nn.Model, members, nonMembers *data.Dataset) (float64, error) {
	bs := a.BatchSize
	if bs <= 0 {
		bs = 64
	}
	ms, err := trueClassConfidences(m, members, bs)
	if err != nil {
		return 0, err
	}
	ns, err := trueClassConfidences(m, nonMembers, bs)
	if err != nil {
		return 0, err
	}
	return scoreAUC(ms, ns)
}

// EntropyAttack is the Song & Mittal prediction-entropy MIA: membership
// score = negative prediction entropy (members receive sharper, lower-entropy
// predictions from overfit models).
type EntropyAttack struct {
	// BatchSize for evaluation passes.
	BatchSize int
}

// NewEntropyAttack returns an entropy-based attack.
func NewEntropyAttack() *EntropyAttack { return &EntropyAttack{BatchSize: 64} }

// AUC scores by negative prediction entropy and returns the attack AUC in
// [0.5, 1].
func (a *EntropyAttack) AUC(m *nn.Model, members, nonMembers *data.Dataset) (float64, error) {
	bs := a.BatchSize
	if bs <= 0 {
		bs = 64
	}
	ms, err := predictionEntropies(m, members, bs)
	if err != nil {
		return 0, err
	}
	ns, err := predictionEntropies(m, nonMembers, bs)
	if err != nil {
		return 0, err
	}
	negate(ms)
	negate(ns)
	return scoreAUC(ms, ns)
}

// trueClassConfidences evaluates the model's softmax probability of each
// sample's true class.
func trueClassConfidences(m *nn.Model, ds *data.Dataset, batchSize int) ([]float64, error) {
	out := make([]float64, 0, ds.Len())
	err := ds.Batches(batchSize, nil, func(x *tensor.Tensor, y []int) error {
		probs := nn.Softmax(m.Forward(x, false))
		for i, label := range y {
			row, err := probs.Row(i)
			if err != nil {
				return err
			}
			out = append(out, row[label])
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// predictionEntropies evaluates the Shannon entropy of each prediction.
func predictionEntropies(m *nn.Model, ds *data.Dataset, batchSize int) ([]float64, error) {
	out := make([]float64, 0, ds.Len())
	err := ds.Batches(batchSize, nil, func(x *tensor.Tensor, y []int) error {
		probs := nn.Softmax(m.Forward(x, false))
		for i := range y {
			row, err := probs.Row(i)
			if err != nil {
				return err
			}
			ent := 0.0
			for _, p := range row {
				if p > 1e-12 {
					ent -= p * math.Log(p)
				}
			}
			out = append(out, ent)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
