package attack

import (
	"fmt"
	"math"

	"repro/internal/data"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// GradientAttack is a white-box MIA in the spirit of Nasr et al. ("Comprehensive
// Privacy Analysis of Deep Learning"): the attacker, holding the model
// parameters (which every FL participant does), backpropagates each target
// sample and scores membership by the magnitude of the loss gradient —
// members of an overfit model produce systematically smaller gradients.
//
// The per-layer variant scores by the gradient norm of a single layer, which
// makes it the attack-side counterpart of the paper's layer-leakage analysis
// (§3): it quantifies how much an individual layer's gradient betrays
// membership, and shows that DINAR's obfuscated uploads deny the attacker
// exactly the layer that matters.
type GradientAttack struct {
	// Layer selects a single logical layer to score by; -1 (default) uses
	// the whole-model gradient norm.
	Layer int
	// BatchSize is the probe batch size (small batches sharpen per-sample
	// signal; default 1).
	BatchSize int
	// MaxSamples caps the number of samples scored per population (default
	// 256) to bound the cost of per-sample backpropagation.
	MaxSamples int
}

// NewGradientAttack returns a whole-model white-box gradient attack.
func NewGradientAttack() *GradientAttack {
	return &GradientAttack{Layer: -1, BatchSize: 1, MaxSamples: 256}
}

// NewLayerGradientAttack returns a white-box attack scoring by one layer's
// gradient norm.
func NewLayerGradientAttack(layer int) *GradientAttack {
	return &GradientAttack{Layer: layer, BatchSize: 1, MaxSamples: 256}
}

// AUC scores members and non-members by negative gradient norm and returns
// the attack AUC in [0.5, 1].
func (a *GradientAttack) AUC(m *nn.Model, members, nonMembers *data.Dataset) (float64, error) {
	if a.Layer >= m.NumLayers() {
		return 0, fmt.Errorf("attack: layer %d of %d-layer model", a.Layer, m.NumLayers())
	}
	ms, err := a.gradNorms(m, members)
	if err != nil {
		return 0, err
	}
	ns, err := a.gradNorms(m, nonMembers)
	if err != nil {
		return 0, err
	}
	negate(ms)
	negate(ns)
	return scoreAUC(ms, ns)
}

// gradNorms backpropagates probe batches and collects gradient norms.
func (a *GradientAttack) gradNorms(m *nn.Model, ds *data.Dataset) ([]float64, error) {
	bs := a.BatchSize
	if bs <= 0 {
		bs = 1
	}
	maxSamples := a.MaxSamples
	if maxSamples <= 0 {
		maxSamples = 256
	}
	var loss nn.SoftmaxCrossEntropy
	out := make([]float64, 0, maxSamples)
	seen := 0
	err := ds.Batches(bs, nil, func(x *tensor.Tensor, y []int) error {
		if seen >= maxSamples {
			return nil
		}
		seen += len(y)
		logits := m.Forward(x, true)
		res, lerr := loss.Eval(logits, y)
		if lerr != nil {
			return lerr
		}
		m.ZeroGrads()
		m.Backward(res.Grad)
		out = append(out, a.normOf(m))
		return nil
	})
	if err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("attack: no gradient probes collected")
	}
	return out, nil
}

func (a *GradientAttack) normOf(m *nn.Model) float64 {
	if a.Layer < 0 {
		s := 0.0
		for _, g := range m.GradVector() {
			s += g * g
		}
		return math.Sqrt(s)
	}
	g := m.LayerGradVectors()[a.Layer]
	s := 0.0
	for _, v := range g {
		s += v * v
	}
	return math.Sqrt(s)
}
