package attack

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/data"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// The attacks below implement the paper's §6 future-work threats as
// extensions: model inversion (reconstructing class-representative inputs
// from a model) and property inference (inferring distribution properties
// of a client's data from its update).

// Inverter performs gradient-ascent model inversion (Fredrikson-style): it
// synthesizes an input that maximizes the model's confidence for a target
// class. Against FL, an attacker inverts a received model to recover what a
// class's training data "looks like".
type Inverter struct {
	// Steps and LR configure the gradient ascent.
	Steps int
	LR    float64
	// Seed drives the initialization.
	Seed int64
}

// NewInverter returns an inverter with defaults tuned for the scaled
// models.
func NewInverter(seed int64) *Inverter {
	return &Inverter{Steps: 120, LR: 0.5, Seed: seed}
}

// Invert reconstructs an input of the given class from the model. inputShape
// is the per-sample shape (spec.InputShape()). It returns the synthesized
// input and the model's final confidence for the target class.
func (inv *Inverter) Invert(m *nn.Model, inputShape []int, class int) (*tensor.Tensor, float64, error) {
	shape := append([]int{1}, inputShape...)
	rng := rand.New(rand.NewSource(inv.Seed))
	x := tensor.Randn(rng, 0, 0.1, shape...)
	var loss nn.SoftmaxCrossEntropy
	labels := []int{class}
	conf := 0.0
	for step := 0; step < inv.Steps; step++ {
		logits := m.Forward(x, false)
		if class < 0 || class >= logits.Dim(1) {
			return nil, 0, fmt.Errorf("attack: class %d out of range [0,%d)", class, logits.Dim(1))
		}
		res, err := loss.Eval(logits, labels)
		if err != nil {
			return nil, 0, err
		}
		row, _ := res.Probs.Row(0)
		conf = row[class]
		// Gradient of the loss with respect to the *input*.
		gradIn := m.Backward(res.Grad)
		if err := x.AXPY(-inv.LR, gradIn); err != nil {
			return nil, 0, err
		}
	}
	return x, conf, nil
}

// ReconstructionScore measures how close a synthesized input is to the true
// class prototype via normalized cosine similarity against the class mean of
// reference samples. 1 = perfect direction match, 0 = orthogonal.
func ReconstructionScore(synth *tensor.Tensor, reference *data.Dataset, class int) (float64, error) {
	n := reference.Spec.InputLen()
	mean := make([]float64, n)
	count := 0
	for i, y := range reference.Y {
		if y != class {
			continue
		}
		row := reference.X.Data()[i*n : (i+1)*n]
		for j, v := range row {
			mean[j] += v
		}
		count++
	}
	if count == 0 {
		return 0, fmt.Errorf("attack: no reference samples of class %d", class)
	}
	for j := range mean {
		mean[j] /= float64(count)
	}
	sd := synth.Data()
	if len(sd) != n {
		return 0, fmt.Errorf("attack: synthesized input has %d values, want %d", len(sd), n)
	}
	var dot, ns, nm float64
	for j := range mean {
		dot += sd[j] * mean[j]
		ns += sd[j] * sd[j]
		nm += mean[j] * mean[j]
	}
	if ns == 0 || nm == 0 {
		return 0, nil
	}
	return dot / math.Sqrt(ns*nm), nil
}

// PropertyAttack infers a distribution property of a client's training data
// from its model update — here, the client's dominant class share, inferred
// from the classifier-bias drift. In FL, updates reveal whether a client's
// data over-represents a class (e.g. one hospital treating mostly one
// condition), even when individual records stay private.
type PropertyAttack struct{}

// InferClassSkew estimates the per-class emphasis of the data behind an
// update: the softmax of the final-layer bias drift (update − global) over
// classes. Returns a probability-like vector summing to 1; a uniform vector
// means no inferred skew.
func (PropertyAttack) InferClassSkew(update, global []float64, spans []nn.Span, classes int) ([]float64, error) {
	if len(spans) == 0 {
		return nil, fmt.Errorf("attack: no spans")
	}
	last := spans[len(spans)-1]
	if last.Len < classes {
		return nil, fmt.Errorf("attack: final layer too small for %d classes", classes)
	}
	if len(update) < last.Offset+last.Len || len(global) < last.Offset+last.Len {
		return nil, fmt.Errorf("attack: state shorter than final span")
	}
	// The final dense layer stores weights then biases; the last `classes`
	// values of its span are the biases.
	biasOff := last.Offset + last.Len - classes
	drift := make([]float64, classes)
	maxDrift := math.Inf(-1)
	for c := 0; c < classes; c++ {
		drift[c] = update[biasOff+c] - global[biasOff+c]
		if drift[c] > maxDrift {
			maxDrift = drift[c]
		}
	}
	// Softmax over drifts: classes whose bias grew the most are the classes
	// the client's data emphasized.
	sum := 0.0
	for c := range drift {
		drift[c] = math.Exp((drift[c] - maxDrift) * 50) // sharpen
		sum += drift[c]
	}
	for c := range drift {
		drift[c] /= sum
	}
	return drift, nil
}
