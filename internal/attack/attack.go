// Package attack implements the membership inference attacks (MIAs) used to
// evaluate every defense, following the standard Shokri et al. setting the
// paper adopts (§2.2, §5.5 [41]):
//
//   - ShadowAttack: the attacker trains shadow models on its prior-knowledge
//     data pool (half of the dataset, §5.1), harvests prediction features for
//     known members and non-members of the shadows, trains a binary attack
//     classifier on them, and applies it to the target model's predictions.
//   - LossAttack: the classic loss-threshold attack — members have lower
//     loss on an overfit model — used where the cheap signal suffices (the
//     per-layer sweeps of Figs. 4 and 5).
//
// Attack success is reported as attack AUC in [50%, 100%] (Appendix A).
package attack

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/data"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// numFeatures is the size of the per-sample attack feature vector:
// top-3 sorted softmax probabilities, probability of the true class,
// per-sample loss, and prediction entropy.
const numFeatures = 6

// Features extracts the attack feature matrix for every sample of ds under
// model m (evaluation mode). One row per sample.
func Features(m *nn.Model, ds *data.Dataset, batchSize int) ([][]float64, error) {
	var loss nn.SoftmaxCrossEntropy
	out := make([][]float64, 0, ds.Len())
	err := ds.Batches(batchSize, nil, func(x *tensor.Tensor, y []int) error {
		logits := m.Forward(x, false)
		res, lerr := loss.Eval(logits, y)
		if lerr != nil {
			return lerr
		}
		classes := logits.Dim(1)
		for i := range y {
			row, _ := res.Probs.Row(i)
			f := make([]float64, numFeatures)
			top := append([]float64(nil), row...)
			sort.Sort(sort.Reverse(sort.Float64Slice(top)))
			for k := 0; k < 3 && k < classes; k++ {
				f[k] = top[k]
			}
			f[3] = row[y[i]]
			f[4] = math.Min(res.PerSample[i], 20) / 20 // bounded loss
			ent := 0.0
			for _, p := range row {
				if p > 1e-12 {
					ent -= p * math.Log(p)
				}
			}
			f[5] = ent / math.Log(float64(classes)+1e-12)
			out = append(out, f)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// logistic is a tiny logistic-regression binary classifier over attack
// features, trained with SGD. It is the attack model of the shadow attack.
type logistic struct {
	w []float64
	b float64
}

func trainLogistic(features [][]float64, labels []bool, epochs int, lr float64, rng *rand.Rand) *logistic {
	clf := &logistic{w: make([]float64, numFeatures)}
	idx := make([]int, len(features))
	for i := range idx {
		idx[i] = i
	}
	for e := 0; e < epochs; e++ {
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		for _, i := range idx {
			p := clf.prob(features[i])
			t := 0.0
			if labels[i] {
				t = 1
			}
			g := p - t
			for k, f := range features[i] {
				clf.w[k] -= lr * g * f
			}
			clf.b -= lr * g
		}
	}
	return clf
}

func (c *logistic) prob(f []float64) float64 {
	z := c.b
	for k, v := range f {
		z += c.w[k] * v
	}
	return 1 / (1 + math.Exp(-z))
}

// ShadowAttack is the Shokri-style shadow-model MIA.
type ShadowAttack struct {
	// NumShadows is the number of shadow models (default 2).
	NumShadows int
	// Epochs, BatchSize, LR configure shadow-model training.
	Epochs    int
	BatchSize int
	LR        float64
	// AttackEpochs configures the attack-classifier training.
	AttackEpochs int
	// Seed drives all attack randomness.
	Seed int64

	clf *logistic
}

// NewShadowAttack returns a shadow attack with sensible scaled defaults.
func NewShadowAttack(seed int64) *ShadowAttack {
	return &ShadowAttack{
		NumShadows:   2,
		Epochs:       15,
		BatchSize:    32,
		LR:           0.05,
		AttackEpochs: 30,
		Seed:         seed,
	}
}

// Fit trains the shadow models on the attacker's prior-knowledge pool and
// fits the attack classifier. build must construct the target architecture.
func (a *ShadowAttack) Fit(pool *data.Dataset, build func(rng *rand.Rand) (*nn.Model, error)) error {
	if a.NumShadows < 1 {
		return fmt.Errorf("attack: NumShadows = %d", a.NumShadows)
	}
	if pool.Len() < 4*a.NumShadows {
		return fmt.Errorf("attack: pool of %d too small for %d shadows", pool.Len(), a.NumShadows)
	}
	rng := rand.New(rand.NewSource(a.Seed))
	var feats [][]float64
	var labels []bool
	shards, err := data.PartitionIID(pool, a.NumShadows, rng)
	if err != nil {
		return fmt.Errorf("attack: shard pool: %w", err)
	}
	for s, shard := range shards {
		inSet, outSet := shard.Shuffled(rng).Split(0.5)
		shadow, err := build(rand.New(rand.NewSource(a.Seed + int64(s) + 1)))
		if err != nil {
			return fmt.Errorf("attack: build shadow %d: %w", s, err)
		}
		if err := trainModel(shadow, inSet, a.Epochs, a.BatchSize, a.LR, rng); err != nil {
			return fmt.Errorf("attack: train shadow %d: %w", s, err)
		}
		inF, err := Features(shadow, inSet, a.BatchSize)
		if err != nil {
			return err
		}
		outF, err := Features(shadow, outSet, a.BatchSize)
		if err != nil {
			return err
		}
		for _, f := range inF {
			feats = append(feats, f)
			labels = append(labels, true)
		}
		for _, f := range outF {
			feats = append(feats, f)
			labels = append(labels, false)
		}
	}
	a.clf = trainLogistic(feats, labels, a.AttackEpochs, 0.1, rng)
	return nil
}

// Fitted reports whether Fit has run.
func (a *ShadowAttack) Fitted() bool { return a.clf != nil }

// Scores returns per-sample membership scores (higher = more likely member)
// for ds under the target model m.
func (a *ShadowAttack) Scores(m *nn.Model, ds *data.Dataset) ([]float64, error) {
	if a.clf == nil {
		return nil, fmt.Errorf("attack: Scores before Fit")
	}
	feats, err := Features(m, ds, a.BatchSize)
	if err != nil {
		return nil, err
	}
	scores := make([]float64, len(feats))
	for i, f := range feats {
		scores[i] = a.clf.prob(f)
	}
	return scores, nil
}

// AUC runs the fitted attack against the target model, scoring the given
// member and non-member sets, and returns the attack AUC in [0.5, 1].
func (a *ShadowAttack) AUC(m *nn.Model, members, nonMembers *data.Dataset) (float64, error) {
	ms, err := a.Scores(m, members)
	if err != nil {
		return 0, err
	}
	ns, err := a.Scores(m, nonMembers)
	if err != nil {
		return 0, err
	}
	return scoreAUC(ms, ns)
}

// LossAttack is the loss-threshold MIA: membership score = −loss. On an
// overfit model, members exhibit systematically lower loss.
type LossAttack struct {
	// BatchSize for evaluation passes.
	BatchSize int
}

// NewLossAttack returns a loss-threshold attack.
func NewLossAttack() *LossAttack { return &LossAttack{BatchSize: 64} }

// AUC scores members and non-members by negative loss and returns the attack
// AUC in [0.5, 1].
func (a *LossAttack) AUC(m *nn.Model, members, nonMembers *data.Dataset) (float64, error) {
	bs := a.BatchSize
	if bs <= 0 {
		bs = 64
	}
	ml, err := perSampleLosses(m, members, bs)
	if err != nil {
		return 0, err
	}
	nl, err := perSampleLosses(m, nonMembers, bs)
	if err != nil {
		return 0, err
	}
	negate(ml)
	negate(nl)
	return scoreAUC(ml, nl)
}

func negate(xs []float64) {
	for i := range xs {
		xs[i] = -xs[i]
	}
}

// scoreAUC merges member and non-member score slices and computes the raw
// attack AUC, floored at 0.5.
//
// The floor matches the paper's attacker model (Appendix A: attack AUC lives
// in [50%, 100%]): the attacker fixes its score direction a priori (shadow
// training or "members have lower loss") and cannot calibrate the sign
// against ground-truth membership of the target. An attack that performs
// below chance is therefore no better than random — 50%. (A hypothetical
// calibrated attacker corresponds to metrics.AttackAUC, which folds instead
// of flooring.)
func scoreAUC(memberScores, nonMemberScores []float64) (float64, error) {
	scores := make([]float64, 0, len(memberScores)+len(nonMemberScores))
	labels := make([]bool, 0, cap(scores))
	for _, s := range memberScores {
		scores = append(scores, s)
		labels = append(labels, true)
	}
	for _, s := range nonMemberScores {
		scores = append(scores, s)
		labels = append(labels, false)
	}
	auc, err := metrics.AUC(scores, labels)
	if err != nil {
		return 0, err
	}
	if auc < 0.5 {
		auc = 0.5
	}
	return auc, nil
}

// perSampleLosses evaluates eval-mode per-sample losses.
func perSampleLosses(m *nn.Model, ds *data.Dataset, batchSize int) ([]float64, error) {
	var loss nn.SoftmaxCrossEntropy
	out := make([]float64, 0, ds.Len())
	err := ds.Batches(batchSize, nil, func(x *tensor.Tensor, y []int) error {
		logits := m.Forward(x, false)
		res, lerr := loss.Eval(logits, y)
		if lerr != nil {
			return lerr
		}
		out = append(out, res.PerSample...)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// trainModel is plain centralized SGD training used for shadow models.
func trainModel(m *nn.Model, ds *data.Dataset, epochs, batchSize int, lr float64, rng *rand.Rand) error {
	var loss nn.SoftmaxCrossEntropy
	params, grads := m.Params(), m.Grads()
	for e := 0; e < epochs; e++ {
		err := ds.Batches(batchSize, rng, func(x *tensor.Tensor, y []int) error {
			out := m.Forward(x, true)
			res, lerr := loss.Eval(out, y)
			if lerr != nil {
				return lerr
			}
			m.Backward(res.Grad)
			for i, p := range params {
				pd, gd := p.Data(), grads[i].Data()
				for j := range pd {
					pd[j] -= lr * gd[j]
				}
			}
			return nil
		})
		if err != nil {
			return err
		}
	}
	return nil
}
