package attack

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/data"
	"repro/internal/model"
	"repro/internal/nn"
)

// setup generates a dataset, splits it per the paper's protocol, and overfits
// a target model on the member pool.
func setup(t *testing.T, epochs int) (*nn.Model, *data.FLSplit, data.Spec) {
	t.Helper()
	spec, err := data.Lookup("purchase100")
	if err != nil {
		t.Fatal(err)
	}
	spec.Records = 800
	ds, err := data.Generate(spec, 21)
	if err != nil {
		t.Fatal(err)
	}
	split := data.NewFLSplit(ds, rand.New(rand.NewSource(21)))
	m := model.FCNN6(spec.Features, spec.Classes, rand.New(rand.NewSource(1)))
	if epochs > 0 {
		if err := trainModel(m, split.Train, epochs, 32, 0.1, rand.New(rand.NewSource(2))); err != nil {
			t.Fatal(err)
		}
	}
	return m, split, spec
}

func TestLossAttackOnOverfitModel(t *testing.T) {
	m, split, _ := setup(t, 25)
	auc, err := NewLossAttack().AUC(m, split.Train, split.Test)
	if err != nil {
		t.Fatal(err)
	}
	if auc < 0.60 {
		t.Fatalf("loss attack AUC %v on overfit model, want > 0.60", auc)
	}
}

func TestLossAttackOnFreshModelIsChance(t *testing.T) {
	m, split, _ := setup(t, 0)
	auc, err := NewLossAttack().AUC(m, split.Train, split.Test)
	if err != nil {
		t.Fatal(err)
	}
	if auc > 0.58 {
		t.Fatalf("loss attack AUC %v on untrained model, want ~0.5", auc)
	}
}

func TestShadowAttackOnOverfitModel(t *testing.T) {
	m, split, spec := setup(t, 25)
	atk := NewShadowAttack(31)
	atk.Epochs = 20
	build := func(rng *rand.Rand) (*nn.Model, error) {
		return model.FCNN6(spec.Features, spec.Classes, rng), nil
	}
	if err := atk.Fit(split.Attacker, build); err != nil {
		t.Fatal(err)
	}
	if !atk.Fitted() {
		t.Fatal("Fitted() false after Fit")
	}
	auc, err := atk.AUC(m, split.Train, split.Test)
	if err != nil {
		t.Fatal(err)
	}
	if auc < 0.58 {
		t.Fatalf("shadow attack AUC %v on overfit model, want > 0.58", auc)
	}
}

func TestShadowAttackBeforeFitErrors(t *testing.T) {
	m, split, _ := setup(t, 0)
	atk := NewShadowAttack(1)
	if _, err := atk.Scores(m, split.Test); err == nil {
		t.Fatal("Scores before Fit should fail")
	}
}

func TestShadowAttackValidation(t *testing.T) {
	_, split, spec := setup(t, 0)
	build := func(rng *rand.Rand) (*nn.Model, error) {
		return model.FCNN6(spec.Features, spec.Classes, rng), nil
	}
	atk := NewShadowAttack(1)
	atk.NumShadows = 0
	if err := atk.Fit(split.Attacker, build); err == nil {
		t.Fatal("accepted zero shadows")
	}
	atk = NewShadowAttack(1)
	tiny := split.Attacker.Subset([]int{0, 1, 2})
	if err := atk.Fit(tiny, build); err == nil {
		t.Fatal("accepted tiny pool")
	}
}

func TestFeaturesShape(t *testing.T) {
	m, split, _ := setup(t, 0)
	feats, err := Features(m, split.Test, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(feats) != split.Test.Len() {
		t.Fatalf("features rows = %d, want %d", len(feats), split.Test.Len())
	}
	for _, f := range feats {
		if len(f) != numFeatures {
			t.Fatalf("feature width = %d", len(f))
		}
		// Sorted top-3 probabilities must be descending and within [0,1].
		if f[0] < f[1] || f[1] < f[2] {
			t.Fatalf("top-3 not sorted: %v", f[:3])
		}
		for _, v := range f {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("non-finite feature: %v", f)
			}
		}
		if f[5] < 0 || f[5] > 1.001 {
			t.Fatalf("normalized entropy %v out of range", f[5])
		}
	}
}

func TestLogisticSeparatesLinearlySeparableData(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var feats [][]float64
	var labels []bool
	for i := 0; i < 400; i++ {
		f := make([]float64, numFeatures)
		pos := i%2 == 0
		for k := range f {
			f[k] = rng.NormFloat64() * 0.1
		}
		if pos {
			f[0] += 1
		} else {
			f[0] -= 1
		}
		feats = append(feats, f)
		labels = append(labels, pos)
	}
	clf := trainLogistic(feats, labels, 20, 0.5, rng)
	correct := 0
	for i, f := range feats {
		if (clf.prob(f) > 0.5) == labels[i] {
			correct++
		}
	}
	if float64(correct)/float64(len(feats)) < 0.95 {
		t.Fatalf("logistic accuracy %d/%d on separable data", correct, len(feats))
	}
}

func TestScoreAUCFloorsAtChance(t *testing.T) {
	// Perfectly inverted scores are a below-chance attack: the uncalibrated
	// attacker gains nothing, so the reported AUC floors at 0.5.
	auc, err := scoreAUC([]float64{0.1, 0.2}, []float64{0.8, 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if auc != 0.5 {
		t.Fatalf("floored AUC = %v, want 0.5", auc)
	}
	// Correctly ordered scores pass through unchanged.
	auc, err = scoreAUC([]float64{0.8, 0.9}, []float64{0.1, 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if auc != 1 {
		t.Fatalf("AUC = %v, want 1", auc)
	}
}
