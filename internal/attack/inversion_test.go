package attack

import (
	"math/rand"
	"testing"

	"repro/internal/data"
	"repro/internal/model"
	"repro/internal/nn"
)

func TestInverterRecoversClassDirection(t *testing.T) {
	// Train a small model well, invert class 0, and require the synthesized
	// input to align with class 0's prototype direction far better than with
	// other classes'.
	spec := data.Spec{
		Name: "inv", Records: 200, Classes: 4,
		Modality: data.Tabular, Features: 32, Noise: 0.05,
	}
	ds, err := data.GenerateN(spec, 200, 3)
	if err != nil {
		t.Fatal(err)
	}
	m := model.FCNN6(spec.Features, spec.Classes, rand.New(rand.NewSource(1)))
	if err := trainModel(m, ds, 30, 32, 0.1, rand.New(rand.NewSource(2))); err != nil {
		t.Fatal(err)
	}
	inv := NewInverter(7)
	synth, conf, err := inv.Invert(m, spec.InputShape(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if conf < 0.8 {
		t.Fatalf("inversion confidence %v, want > 0.8", conf)
	}
	own, err := ReconstructionScore(synth, ds, 0)
	if err != nil {
		t.Fatal(err)
	}
	other, err := ReconstructionScore(synth, ds, 1)
	if err != nil {
		t.Fatal(err)
	}
	if own <= other {
		t.Fatalf("reconstruction: own-class %v <= other-class %v", own, other)
	}
}

func TestInverterValidation(t *testing.T) {
	m := model.FCNN6(8, 3, rand.New(rand.NewSource(1)))
	inv := NewInverter(1)
	inv.Steps = 1
	if _, _, err := inv.Invert(m, []int{8}, 99); err == nil {
		t.Fatal("accepted out-of-range class")
	}
}

func TestReconstructionScoreErrors(t *testing.T) {
	spec := data.Spec{
		Name: "r", Records: 10, Classes: 2,
		Modality: data.Tabular, Features: 4, Noise: 0.1,
	}
	ds, err := data.GenerateN(spec, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	inv := NewInverter(1)
	inv.Steps = 1
	m := model.FCNN6(4, 2, rand.New(rand.NewSource(1)))
	synth, _, err := inv.Invert(m, spec.InputShape(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReconstructionScore(synth, ds, 99); err == nil {
		t.Fatal("accepted class with no reference samples")
	}
}

func TestPropertyAttackDetectsSkew(t *testing.T) {
	// Build a model, simulate a client whose data is all class 2 by training
	// on a skewed shard, and check the inferred skew peaks at class 2.
	spec := data.Spec{
		Name: "p", Records: 300, Classes: 5,
		Modality: data.Tabular, Features: 24, Noise: 0.05,
	}
	ds, err := data.GenerateN(spec, 300, 9)
	if err != nil {
		t.Fatal(err)
	}
	// Shard containing only class 2.
	var idx []int
	for i, y := range ds.Y {
		if y == 2 {
			idx = append(idx, i)
		}
	}
	skewed := ds.Subset(idx)

	m := model.FCNN6(spec.Features, spec.Classes, rand.New(rand.NewSource(1)))
	global := m.StateVector()
	if err := trainModel(m, skewed, 10, 16, 0.1, rand.New(rand.NewSource(2))); err != nil {
		t.Fatal(err)
	}
	update := m.StateVector()

	var pa PropertyAttack
	skew, err := pa.InferClassSkew(update, global, m.Spans(), spec.Classes)
	if err != nil {
		t.Fatal(err)
	}
	best, bestClass := -1.0, -1
	sum := 0.0
	for c, v := range skew {
		sum += v
		if v > best {
			best, bestClass = v, c
		}
	}
	if bestClass != 2 {
		t.Fatalf("inferred dominant class %d, want 2 (skew %v)", bestClass, skew)
	}
	if sum < 0.99 || sum > 1.01 {
		t.Fatalf("skew sums to %v", sum)
	}
}

func TestPropertyAttackValidation(t *testing.T) {
	var pa PropertyAttack
	if _, err := pa.InferClassSkew(nil, nil, nil, 3); err == nil {
		t.Fatal("accepted empty spans")
	}
	spans := []nn.Span{{Offset: 0, Len: 2}}
	if _, err := pa.InferClassSkew([]float64{1, 2}, []float64{1, 2}, spans, 5); err == nil {
		t.Fatal("accepted final layer smaller than class count")
	}
	spans = []nn.Span{{Offset: 0, Len: 10}}
	if _, err := pa.InferClassSkew([]float64{1}, []float64{1}, spans, 5); err == nil {
		t.Fatal("accepted short state")
	}
}
