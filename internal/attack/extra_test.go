package attack

import (
	"testing"
)

func TestConfidenceAttackOnOverfitModel(t *testing.T) {
	m, split, _ := setup(t, 25)
	auc, err := NewConfidenceAttack().AUC(m, split.Train, split.Test)
	if err != nil {
		t.Fatal(err)
	}
	if auc < 0.60 {
		t.Fatalf("confidence attack AUC %v on overfit model", auc)
	}
}

func TestConfidenceAttackOnFreshModelIsChance(t *testing.T) {
	m, split, _ := setup(t, 0)
	auc, err := NewConfidenceAttack().AUC(m, split.Train, split.Test)
	if err != nil {
		t.Fatal(err)
	}
	if auc > 0.58 {
		t.Fatalf("confidence attack AUC %v on fresh model", auc)
	}
}

func TestEntropyAttackOnOverfitModel(t *testing.T) {
	m, split, _ := setup(t, 25)
	auc, err := NewEntropyAttack().AUC(m, split.Train, split.Test)
	if err != nil {
		t.Fatal(err)
	}
	if auc < 0.58 {
		t.Fatalf("entropy attack AUC %v on overfit model", auc)
	}
}

func TestGradientAttackOnOverfitModel(t *testing.T) {
	m, split, _ := setup(t, 25)
	atk := NewGradientAttack()
	atk.MaxSamples = 128
	auc, err := atk.AUC(m, split.Train, split.Test)
	if err != nil {
		t.Fatal(err)
	}
	if auc < 0.60 {
		t.Fatalf("white-box gradient attack AUC %v on overfit model", auc)
	}
}

func TestGradientAttackPerLayer(t *testing.T) {
	m, split, _ := setup(t, 25)
	// The deepest layers must individually leak membership on an overfit
	// model (the paper's §3 premise, attacked rather than analyzed).
	atk := NewLayerGradientAttack(m.NumLayers() - 1)
	atk.MaxSamples = 128
	auc, err := atk.AUC(m, split.Train, split.Test)
	if err != nil {
		t.Fatal(err)
	}
	if auc < 0.58 {
		t.Fatalf("last-layer gradient attack AUC %v", auc)
	}
}

func TestGradientAttackValidation(t *testing.T) {
	m, split, _ := setup(t, 0)
	atk := NewLayerGradientAttack(99)
	if _, err := atk.AUC(m, split.Train, split.Test); err == nil {
		t.Fatal("accepted out-of-range layer")
	}
}

func TestGradientAttackOnFreshModelIsNearChance(t *testing.T) {
	m, split, _ := setup(t, 0)
	atk := NewGradientAttack()
	atk.MaxSamples = 128
	auc, err := atk.AUC(m, split.Train, split.Test)
	if err != nil {
		t.Fatal(err)
	}
	if auc > 0.60 {
		t.Fatalf("white-box attack AUC %v on fresh model", auc)
	}
}
