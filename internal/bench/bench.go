// Package bench measures the training hot path — per-layer forward/backward
// steps, the matmul kernels under them, and one end-to-end quick experiment —
// and records the results in a JSON file (BENCH_hotpath.json at the repo
// root) alongside a preserved baseline snapshot, so performance regressions
// show up as a diff instead of an anecdote.
//
// The suite runs through testing.Benchmark, so each entry self-calibrates its
// iteration count and reports ns/op, B/op, and allocs/op exactly like
// `go test -bench`.
package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"strings"
	"testing"

	"repro/internal/experiment"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// SchemaVersion is the current BENCH_hotpath.json layout version. Version 1
// recorded a single top-level gomaxprocs per snapshot; version 2 stamps the
// CPU count on every result (so a GOMAXPROCS sweep and the single-core
// baseline coexist) and adds the optional "scaling" section. ReadFile
// migrates version-1 files in place.
const SchemaVersion = 2

// Result is one benchmark measurement.
type Result struct {
	NsPerOp     int64 `json:"ns_per_op"`
	BytesPerOp  int64 `json:"bytes_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
	Iterations  int   `json:"iterations"`
	// GOMAXPROCS is the CPU count the measurement ran at (schema v2).
	GOMAXPROCS int `json:"gomaxprocs,omitempty"`
	// Extra carries custom metrics published via b.ReportMetric (e.g. the
	// wire bench's "bytes/round"). Omitted for benchmarks without any.
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Snapshot is one full run of the hot-path suite.
type Snapshot struct {
	Commit string `json:"commit,omitempty"`
	Note   string `json:"note,omitempty"`
	// GOMAXPROCS is the setting the whole snapshot ran at; individual
	// results carry their own copy since schema v2.
	GOMAXPROCS int               `json:"gomaxprocs"`
	Results    map[string]Result `json:"results"`
}

// ScalingResult is one benchmark measured at one GOMAXPROCS setting during
// the multi-core scaling sweep.
type ScalingResult struct {
	GOMAXPROCS int   `json:"gomaxprocs"`
	NsPerOp    int64 `json:"ns_per_op"`
	Iterations int   `json:"iterations"`
	// Speedup is ns/op at the sweep's smallest CPU count divided by ns/op
	// at this one; Efficiency is Speedup divided by GOMAXPROCS (1.0 =
	// perfect linear scaling).
	Speedup    float64 `json:"speedup"`
	Efficiency float64 `json:"efficiency"`
	// Degenerate marks a measurement taken with GOMAXPROCS above the
	// host's CPU count (e.g. the whole default sweep on a 1-CPU host):
	// it measures scheduling overhead, not parallel speedup, and summary
	// tables skip it.
	Degenerate bool `json:"degenerate,omitempty"`
}

// ScalingReport records one GOMAXPROCS sweep of the hot-path suite.
type ScalingReport struct {
	// HostCPUs is runtime.NumCPU() on the measuring machine — the hard
	// ceiling on real parallel speedup regardless of the GOMAXPROCS
	// setting.
	HostCPUs  int    `json:"host_cpus"`
	CPUCounts []int  `json:"cpu_counts"`
	Note      string `json:"note,omitempty"`
	// Results maps benchmark name to its per-CPU-count measurements,
	// ordered as CPUCounts.
	Results map[string][]ScalingResult `json:"results"`
}

// MarkdownTable renders the sweep as a README-ready markdown table, one row
// per benchmark × CPU count. Degenerate rows (GOMAXPROCS above the host's
// CPU count) are skipped: their "speedup" is scheduling overhead, and on a
// 1-CPU host the entire default sweep beyond GOMAXPROCS=1 is degenerate. A
// trailing note reports how many rows were dropped so the omission is
// visible rather than silent.
func (r *ScalingReport) MarkdownTable() string {
	var b strings.Builder
	b.WriteString("| benchmark | GOMAXPROCS | ns/op | speedup | efficiency |\n")
	b.WriteString("| --- | ---: | ---: | ---: | ---: |\n")
	names := make([]string, 0, len(r.Results))
	for name := range r.Results {
		names = append(names, name)
	}
	sort.Strings(names)
	skipped := 0
	for _, name := range names {
		for _, res := range r.Results[name] {
			if res.Degenerate {
				skipped++
				continue
			}
			fmt.Fprintf(&b, "| %s | %d | %d | %.2fx | %.0f%% |\n",
				name, res.GOMAXPROCS, res.NsPerOp, res.Speedup, res.Efficiency*100)
		}
	}
	if skipped > 0 {
		fmt.Fprintf(&b, "\n%d oversubscribed measurement(s) (GOMAXPROCS > %d host CPUs) omitted — they measure scheduling overhead, not speedup.\n",
			skipped, r.HostCPUs)
	}
	return b.String()
}

// File is the on-disk layout of BENCH_hotpath.json: the current snapshot, a
// baseline that WriteFile preserves across regenerations, and the optional
// scaling sweep. The baseline is updated only deliberately (by editing the
// file), never by rerunning the suite.
type File struct {
	SchemaVersion int            `json:"schema_version,omitempty"`
	Baseline      *Snapshot      `json:"baseline,omitempty"`
	Current       Snapshot       `json:"current"`
	Scaling       *ScalingReport `json:"scaling,omitempty"`
}

// migrate upgrades a version-1 file in place: the snapshot-level gomaxprocs
// is stamped onto every result that lacks one, so per-result CPU counts are
// total after migration.
func (f *File) migrate() {
	if f.SchemaVersion >= SchemaVersion {
		return
	}
	stamp := func(s *Snapshot) {
		if s == nil {
			return
		}
		for name, r := range s.Results {
			if r.GOMAXPROCS == 0 {
				r.GOMAXPROCS = s.GOMAXPROCS
				s.Results[name] = r
			}
		}
	}
	stamp(f.Baseline)
	stamp(&f.Current)
	f.SchemaVersion = SchemaVersion
}

// suiteEntry names one benchmark of the hot-path suite.
type suiteEntry struct {
	name string
	fn   func(b *testing.B)
}

// layerStep benchmarks a steady-state Forward+Backward step: the warm-up
// outside the timer sizes the layer's workspaces so the measurement covers
// only the hot path.
func layerStep(b *testing.B, layer nn.Layer, x *tensor.Tensor) {
	out := layer.Forward(x, true)
	g := tensor.Randn(rand.New(rand.NewSource(92)), 0, 1, out.Shape()...)
	layer.Backward(g)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		layer.Forward(x, true)
		layer.Backward(g)
	}
}

// suite lists the tracked benchmarks. Shapes mirror the scaled models' hot
// layers; fig4_per_layer_protection is the end-to-end acceptance metric (one
// quick-scale regeneration of the paper's Figure 4).
var suite = []suiteEntry{
	{"dense_step", func(b *testing.B) {
		rng := rand.New(rand.NewSource(91))
		layerStep(b, nn.NewDense(256, 128, rng), tensor.Randn(rng, 0, 1, 32, 256))
	}},
	{"conv2d_step", func(b *testing.B) {
		rng := rand.New(rand.NewSource(91))
		layerStep(b, nn.NewConv2D(8, 16, 3, 1, 1, rng), tensor.Randn(rng, 0, 1, 8, 8, 16, 16))
	}},
	{"conv1d_step", func(b *testing.B) {
		rng := rand.New(rand.NewSource(91))
		layerStep(b, nn.NewConv1D(4, 8, 9, 4, 4, rng), tensor.Randn(rng, 0, 1, 8, 4, 256))
	}},
	{"batchnorm_step", func(b *testing.B) {
		rng := rand.New(rand.NewSource(91))
		layerStep(b, nn.NewBatchNorm(16), tensor.Randn(rng, 0, 1, 8, 16, 16, 16))
	}},
	{"residual_step", func(b *testing.B) {
		rng := rand.New(rand.NewSource(91))
		layerStep(b, nn.NewResidual(8, 16, 2, rng), tensor.Randn(rng, 0, 1, 4, 8, 16, 16))
	}},
	{"matmul", func(b *testing.B) {
		rng := rand.New(rand.NewSource(93))
		a := tensor.Randn(rng, 0, 1, 256, 128)
		bb := tensor.Randn(rng, 0, 1, 128, 64)
		out := tensor.New(256, 64)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := tensor.MatMulInto(out, a, bb); err != nil {
				b.Fatal(err)
			}
		}
	}},
	{"matmul_transb", func(b *testing.B) {
		rng := rand.New(rand.NewSource(93))
		a := tensor.Randn(rng, 0, 1, 256, 128)
		bt := tensor.Randn(rng, 0, 1, 64, 128)
		out := tensor.New(256, 64)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := tensor.MatMulTransBInto(out, a, bt); err != nil {
				b.Fatal(err)
			}
		}
	}},
	{"matmul_transa", func(b *testing.B) {
		rng := rand.New(rand.NewSource(93))
		at := tensor.Randn(rng, 0, 1, 128, 256)
		bb := tensor.Randn(rng, 0, 1, 128, 64)
		out := tensor.New(256, 64)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := tensor.MatMulTransAInto(out, at, bb); err != nil {
				b.Fatal(err)
			}
		}
	}},
	{"round_throughput", benchRoundThroughput},
	{"wire_encode", benchWireEncode},
	{"wire_decode", benchWireDecode},
	{"bytes_per_round", benchBytesPerRound},
	{"fig4_per_layer_protection", func(b *testing.B) {
		o := experiment.QuickOptions()
		o.UseShadowAttack = false
		o.Records = 400
		ctx := context.Background()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := experiment.Fig4(ctx, o, "purchase100"); err != nil {
				b.Fatal(err)
			}
		}
	}},
}

// Names lists the suite's benchmark names in run order.
func Names() []string {
	names := make([]string, len(suite))
	for i, e := range suite {
		names[i] = e.name
	}
	return names
}

// RunHotPath executes the suite and returns the snapshot. logf, when
// non-nil, receives one progress line per entry.
func RunHotPath(logf func(format string, args ...any)) Snapshot {
	snap, _ := RunOnly(nil, logf)
	return snap
}

// RunOnly executes the named subset of the suite (nil or empty means the
// whole suite) and returns the snapshot; an unknown name is an error before
// anything runs, so a typo doesn't cost a full measurement pass.
func RunOnly(only []string, logf func(format string, args ...any)) (Snapshot, error) {
	entries := suite
	if len(only) > 0 {
		byName := make(map[string]suiteEntry, len(suite))
		for _, e := range suite {
			byName[e.name] = e
		}
		entries = make([]suiteEntry, 0, len(only))
		for _, name := range only {
			e, ok := byName[name]
			if !ok {
				return Snapshot{}, fmt.Errorf("bench: unknown benchmark %q (known: %s)", name, strings.Join(Names(), ", "))
			}
			entries = append(entries, e)
		}
	}
	procs := runtime.GOMAXPROCS(0)
	results := make(map[string]Result, len(entries))
	for _, e := range entries {
		r := testing.Benchmark(e.fn)
		res := Result{
			NsPerOp:     r.NsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			Iterations:  r.N,
			GOMAXPROCS:  procs,
		}
		if len(r.Extra) > 0 {
			res.Extra = make(map[string]float64, len(r.Extra))
			for k, v := range r.Extra {
				res.Extra[k] = v
			}
		}
		results[e.name] = res
		if logf != nil {
			logf("%-28s %12d ns/op %12d B/op %8d allocs/op\n",
				e.name, res.NsPerOp, res.BytesPerOp, res.AllocsPerOp)
		}
	}
	return Snapshot{GOMAXPROCS: procs, Results: results}, nil
}

// ReadFile loads a benchmark file; a missing file returns an empty File.
func ReadFile(path string) (File, error) {
	var f File
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return f, nil
		}
		return f, fmt.Errorf("bench: read %s: %w", path, err)
	}
	if err := json.Unmarshal(data, &f); err != nil {
		return f, fmt.Errorf("bench: parse %s: %w", path, err)
	}
	f.migrate()
	return f, nil
}

// UpdateFile reads the file at path (migrating old schemas), applies mutate,
// and writes the result back. Sections mutate does not touch — notably the
// baseline — are preserved.
func UpdateFile(path string, mutate func(*File)) error {
	f, err := ReadFile(path)
	if err != nil {
		return err
	}
	mutate(&f)
	f.SchemaVersion = SchemaVersion
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return fmt.Errorf("bench: marshal: %w", err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("bench: write %s: %w", path, err)
	}
	return nil
}

// WriteFile records cur as the file's current snapshot, preserving the
// baseline and scaling sections already recorded at path (if any).
func WriteFile(path string, cur Snapshot) error {
	return UpdateFile(path, func(f *File) { f.Current = cur })
}

// MergeResults folds a partial snapshot (e.g. a -only rerun of a few
// entries) into the file's current section: named results are replaced,
// everything else — including results the partial run did not measure — is
// preserved.
func MergeResults(path string, partial Snapshot) error {
	return UpdateFile(path, func(f *File) {
		if f.Current.Results == nil {
			f.Current.Results = make(map[string]Result, len(partial.Results))
		}
		for name, r := range partial.Results {
			f.Current.Results[name] = r
		}
		if f.Current.GOMAXPROCS == 0 {
			f.Current.GOMAXPROCS = partial.GOMAXPROCS
		}
	})
}

// WriteScaling records rep as the file's scaling section, preserving the
// baseline and current sections.
func WriteScaling(path string, rep *ScalingReport) error {
	return UpdateFile(path, func(f *File) { f.Scaling = rep })
}
