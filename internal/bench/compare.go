package bench

import (
	"fmt"
	"runtime"
	"sort"
)

// DefaultCompareThreshold is the ns/op regression budget of the perf gate:
// a tracked benchmark may run at most 15% slower than its recorded snapshot
// before `dinar-bench -compare` fails.
const DefaultCompareThreshold = 0.15

// compareRetries is how many fresh measurements a failing entry gets before
// the regression is believed. Single benchmark runs on a loaded host
// routinely overshoot by far more than the threshold; the minimum of several
// runs is the stable statistic (the true cost of the code can only be
// approached from above by scheduling noise, never undercut).
const compareRetries = 2

// CompareEntry is one benchmark's verdict against the recorded snapshot.
type CompareEntry struct {
	Name       string
	RecordedNs int64
	MeasuredNs int64
	// Ratio is MeasuredNs / RecordedNs (1.0 = unchanged).
	Ratio float64
	// AllocsGrew flags an entry recorded at 0 allocs/op that now allocates —
	// a regression regardless of timing.
	AllocsGrew bool
	Regressed  bool
	// Skipped carries the reason an entry was not comparable (unknown to the
	// current suite, or recorded at a different GOMAXPROCS).
	Skipped string
}

func (e CompareEntry) String() string {
	if e.Skipped != "" {
		return fmt.Sprintf("%-28s skipped: %s", e.Name, e.Skipped)
	}
	verdict := "ok"
	if e.Regressed {
		verdict = "REGRESSED"
		if e.AllocsGrew {
			verdict = "REGRESSED (allocates)"
		}
	}
	return fmt.Sprintf("%-28s %12d -> %12d ns/op  (%+.1f%%)  %s",
		e.Name, e.RecordedNs, e.MeasuredNs, (e.Ratio-1)*100, verdict)
}

// compareResults applies the regression rule to a recorded and a measured
// result set: an entry regresses when its measured ns/op exceeds the record
// by more than threshold, or when it allocates where the record says zero.
// Entries the measured set lacks are skipped (with the given reason map),
// never silently dropped. Results are sorted by name for stable output.
func compareResults(rec, cur map[string]Result, threshold float64, skip map[string]string) []CompareEntry {
	names := make([]string, 0, len(rec))
	for name := range rec {
		names = append(names, name)
	}
	sort.Strings(names)
	entries := make([]CompareEntry, 0, len(names))
	for _, name := range names {
		r := rec[name]
		e := CompareEntry{Name: name, RecordedNs: r.NsPerOp}
		if reason, ok := skip[name]; ok {
			e.Skipped = reason
			entries = append(entries, e)
			continue
		}
		c, ok := cur[name]
		if !ok {
			e.Skipped = "not measured"
			entries = append(entries, e)
			continue
		}
		e.MeasuredNs = c.NsPerOp
		if r.NsPerOp > 0 {
			e.Ratio = float64(c.NsPerOp) / float64(r.NsPerOp)
		}
		e.AllocsGrew = r.AllocsPerOp == 0 && c.AllocsPerOp > 0
		e.Regressed = e.AllocsGrew || (r.NsPerOp > 0 && e.Ratio > 1+threshold)
		entries = append(entries, e)
	}
	return entries
}

// regressedNames lists the entries currently marked regressed.
func regressedNames(entries []CompareEntry) []string {
	var names []string
	for _, e := range entries {
		if e.Regressed {
			names = append(names, e.Name)
		}
	}
	return names
}

// mergeMin folds a remeasurement into cur, keeping the faster ns/op per entry
// (and the lower allocation count, so a one-off alloc blip doesn't stick).
func mergeMin(cur, retry map[string]Result) {
	for name, r := range retry {
		c, ok := cur[name]
		if !ok || r.NsPerOp < c.NsPerOp {
			c.NsPerOp = r.NsPerOp
			c.Iterations = r.Iterations
		}
		if !ok || r.AllocsPerOp < c.AllocsPerOp {
			c.AllocsPerOp = r.AllocsPerOp
			c.BytesPerOp = r.BytesPerOp
		}
		cur[name] = c
	}
}

// RunCompare is the perf regression gate behind `dinar-bench -compare` /
// `make bench-check`: it loads the recorded current snapshot at path, reruns
// every tracked benchmark it records, and reports entries slower than
// threshold (or newly allocating). Entries that fail the first measurement
// are rerun up to compareRetries more times keeping the minimum, so the gate
// trips on real regressions rather than scheduler noise. The returned ok is
// false when any entry stays regressed after retries.
func RunCompare(path string, threshold float64, logf func(format string, args ...any)) (entries []CompareEntry, ok bool, err error) {
	f, err := ReadFile(path)
	if err != nil {
		return nil, false, err
	}
	if len(f.Current.Results) == 0 {
		return nil, false, fmt.Errorf("bench: %s has no recorded current snapshot (run make bench-json first)", path)
	}

	known := make(map[string]bool, len(suite))
	for _, e := range suite {
		known[e.name] = true
	}
	procs := runtime.GOMAXPROCS(0)
	skip := make(map[string]string)
	var names []string
	for name, r := range f.Current.Results {
		switch {
		case !known[name]:
			skip[name] = "recorded benchmark unknown to this suite"
		case r.GOMAXPROCS != 0 && r.GOMAXPROCS != procs:
			skip[name] = fmt.Sprintf("recorded at GOMAXPROCS=%d, running at %d", r.GOMAXPROCS, procs)
		default:
			names = append(names, name)
		}
	}
	sort.Strings(names)

	snap, err := RunOnly(names, logf)
	if err != nil {
		return nil, false, err
	}
	entries = compareResults(f.Current.Results, snap.Results, threshold, skip)
	for retry := 0; retry < compareRetries; retry++ {
		failing := regressedNames(entries)
		if len(failing) == 0 {
			break
		}
		if logf != nil {
			logf("retrying %d regressed entries (attempt %d/%d)...\n", len(failing), retry+1, compareRetries)
		}
		again, err := RunOnly(failing, logf)
		if err != nil {
			return nil, false, err
		}
		mergeMin(snap.Results, again.Results)
		entries = compareResults(f.Current.Results, snap.Results, threshold, skip)
	}
	return entries, len(regressedNames(entries)) == 0, nil
}
