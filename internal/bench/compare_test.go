package bench

import (
	"strings"
	"testing"
)

func TestCompareResultsThreshold(t *testing.T) {
	rec := map[string]Result{
		"fast":    {NsPerOp: 1000, AllocsPerOp: 0},
		"edge":    {NsPerOp: 1000, AllocsPerOp: 0},
		"slow":    {NsPerOp: 1000, AllocsPerOp: 0},
		"allocs":  {NsPerOp: 1000, AllocsPerOp: 0},
		"hadheap": {NsPerOp: 1000, AllocsPerOp: 5},
		"missing": {NsPerOp: 1000},
	}
	cur := map[string]Result{
		"fast":    {NsPerOp: 900, AllocsPerOp: 0},
		"edge":    {NsPerOp: 1150, AllocsPerOp: 0}, // exactly +15%: within budget
		"slow":    {NsPerOp: 1151, AllocsPerOp: 0}, // past the budget
		"allocs":  {NsPerOp: 800, AllocsPerOp: 1},  // faster but newly allocating
		"hadheap": {NsPerOp: 1100, AllocsPerOp: 9}, // alloc growth only gates 0-alloc entries
	}
	entries := compareResults(rec, cur, 0.15, nil)
	verdict := make(map[string]CompareEntry, len(entries))
	for _, e := range entries {
		verdict[e.Name] = e
	}
	for name, wantRegressed := range map[string]bool{
		"fast": false, "edge": false, "slow": true, "allocs": true, "hadheap": false,
	} {
		if verdict[name].Regressed != wantRegressed {
			t.Errorf("%s: regressed = %v, want %v", name, verdict[name].Regressed, wantRegressed)
		}
	}
	if !verdict["allocs"].AllocsGrew {
		t.Error("allocs: AllocsGrew not flagged")
	}
	if verdict["missing"].Skipped != "not measured" {
		t.Errorf("missing: skipped = %q", verdict["missing"].Skipped)
	}
	// Entries must come back sorted by name for stable gate output.
	for i := 1; i < len(entries); i++ {
		if entries[i-1].Name > entries[i].Name {
			t.Fatalf("entries not sorted: %s before %s", entries[i-1].Name, entries[i].Name)
		}
	}
}

func TestCompareResultsSkipReasons(t *testing.T) {
	rec := map[string]Result{
		"gone":  {NsPerOp: 500},
		"other": {NsPerOp: 500},
	}
	cur := map[string]Result{"other": {NsPerOp: 500}}
	entries := compareResults(rec, cur, 0.15, map[string]string{"gone": "recorded benchmark unknown to this suite"})
	for _, e := range entries {
		switch e.Name {
		case "gone":
			if e.Skipped == "" || e.Regressed {
				t.Errorf("gone: skipped=%q regressed=%v", e.Skipped, e.Regressed)
			}
		case "other":
			if e.Skipped != "" || e.Regressed {
				t.Errorf("other: skipped=%q regressed=%v", e.Skipped, e.Regressed)
			}
		}
	}
}

func TestMergeMinKeepsFastest(t *testing.T) {
	cur := map[string]Result{
		"a": {NsPerOp: 2000, AllocsPerOp: 3, BytesPerOp: 96, Iterations: 10},
		"b": {NsPerOp: 1000, AllocsPerOp: 0, Iterations: 10},
	}
	mergeMin(cur, map[string]Result{
		"a": {NsPerOp: 1500, AllocsPerOp: 0, BytesPerOp: 0, Iterations: 20},
		"b": {NsPerOp: 3000, AllocsPerOp: 2, BytesPerOp: 64, Iterations: 5},
	})
	if cur["a"].NsPerOp != 1500 || cur["a"].AllocsPerOp != 0 {
		t.Errorf("a = %+v, want min ns 1500 and min allocs 0", cur["a"])
	}
	if cur["b"].NsPerOp != 1000 || cur["b"].AllocsPerOp != 0 {
		t.Errorf("b = %+v, want original min kept", cur["b"])
	}
}

func TestCompareEntryString(t *testing.T) {
	e := CompareEntry{Name: "matmul", RecordedNs: 1000, MeasuredNs: 1200, Ratio: 1.2, Regressed: true}
	if s := e.String(); !strings.Contains(s, "REGRESSED") || !strings.Contains(s, "+20.0%") {
		t.Errorf("regressed string = %q", s)
	}
	e = CompareEntry{Name: "matmul", Skipped: "not measured"}
	if s := e.String(); !strings.Contains(s, "skipped") {
		t.Errorf("skipped string = %q", s)
	}
}

// TestRunCompareDoctoredBaseline proves the gate end-to-end at the logic
// level without timing anything real: comparing a file whose recorded
// snapshot is impossibly fast must fail, since no rerun can undercut it.
// (The Makefile-level proof — make bench-check against a deliberately slowed
// kernel — is run manually; see README "Performance".)
func TestRunCompareDoctoredBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real benchmarks")
	}
	path := t.TempDir() + "/bench.json"
	err := UpdateFile(path, func(f *File) {
		f.Current = Snapshot{
			GOMAXPROCS: 0, // leave per-result stamps authoritative
			Results: map[string]Result{
				// 1 ns/op is unachievable: the gate must report a regression.
				"matmul": {NsPerOp: 1, AllocsPerOp: 0},
			},
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	entries, ok, err := RunCompare(path, 0.15, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("gate passed against an impossibly fast recorded snapshot")
	}
	if len(entries) != 1 || !entries[0].Regressed {
		t.Fatalf("entries = %+v", entries)
	}
}
