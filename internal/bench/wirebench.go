package bench

import (
	"bytes"
	"context"
	"io"
	"testing"
	"time"

	"repro/internal/defense"
	"repro/internal/fl"
	"repro/internal/fleetsim"
	"repro/internal/flnet"
)

// wireDim is the state-vector length the wire benches measure at, matching
// round_throughput's default model.
const wireDim = 4096

// wireGlobal builds a deterministic dim-sized Global message.
func wireGlobal(dim int) *flnet.Message {
	state := fleetsim.SynthState(17, 1, 1, dim, nil)
	return &flnet.Message{Kind: flnet.KindGlobal, Round: 3, State: state}
}

// benchWireEncode times the zero-reflection binary frame encoder on a full
// Global broadcast (the per-frame hot path every exchange pays twice).
func benchWireEncode(b *testing.B) {
	codec := flnet.NewCodec(flnet.CapBinary, 0, 0, nil)
	msg := wireGlobal(wireDim)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := flnet.WriteMessageWith(io.Discard, msg, codec); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(8 * wireDim))
}

// benchWireDecode times the matching decoder, reusing one state buffer the
// way the server's exchange path does.
func benchWireDecode(b *testing.B) {
	codec := flnet.NewCodec(flnet.CapBinary, 0, 0, nil)
	var frame bytes.Buffer
	if err := flnet.WriteMessageWith(&frame, wireGlobal(wireDim), codec); err != nil {
		b.Fatal(err)
	}
	raw := frame.Bytes()
	var msg flnet.Message
	r := bytes.NewReader(raw)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Reset(raw)
		if err := flnet.ReadMessageWith(r, &msg, codec); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(8 * wireDim))
}

// benchBytesPerRound measures bytes on the wire per federation round with
// the full codec stack on (flate + int8 quantized uploads + delta
// broadcasts): the same sampled streaming federation as round_throughput,
// with the tx+rx counter movement divided by the round count published as
// the "bytes/round" extra metric — the number EXPERIMENTS.md tracks
// against the gob transport.
func benchBytesPerRound(b *testing.B) {
	const (
		numClients = 64
		sampleSize = 16
		minClients = 8
	)
	def := defense.NewNone()
	if err := def.Bind(fl.ModelInfo{NumParams: wireDim, NumState: wireDim}); err != nil {
		b.Fatal(err)
	}
	mem := fleetsim.Listen(numClients)
	srv, err := flnet.NewServer(flnet.ServerConfig{
		NumClients:   numClients,
		MinClients:   minClients,
		SampleSize:   sampleSize,
		SampleSeed:   11,
		Streaming:    true,
		Rounds:       b.N,
		Defense:      def,
		InitialState: make([]float64, wireDim),
		Listener:     mem,
		IOTimeout:    2 * time.Minute,
		Wire:         "binary",
		Compress:     true,
		Quantize:     "int8",
		Delta:        true,
		QuantSeed:    7,
	})
	if err != nil {
		b.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()
	fleet := &fleetsim.Fleet{
		N: numClients, Dim: wireDim, Seed: 3,
		Caps: flnet.ClientCaps,
		Dial: mem.Dial, IOTimeout: 2 * time.Minute,
	}
	statsCh := make(chan *fleetsim.Stats, 1)
	txBefore, _ := flnet.WireBytesTotals()
	go func() { statsCh <- fleet.Run(ctx) }()

	b.ReportAllocs()
	b.ResetTimer()
	final, err := srv.Run(ctx)
	b.StopTimer()
	stats := <-statsCh
	if err != nil {
		b.Fatal(err)
	}
	if len(final) != wireDim {
		b.Fatalf("final state has %d values, want %d", len(final), wireDim)
	}
	if got := int(stats.Updates.Load()); got < b.N*minClients {
		b.Fatalf("fleet wrote %d updates over %d rounds, want at least %d", got, b.N, b.N*minClients)
	}
	// Both ends run in-process, so the tx counter movement alone is the
	// server's tx+rx: every frame either side writes is counted exactly
	// once (counting rx too would double every frame).
	txAfter, _ := flnet.WireBytesTotals()
	b.ReportMetric(float64(txAfter-txBefore)/float64(b.N), "bytes/round")
}
