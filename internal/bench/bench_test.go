package bench

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/parallel"
)

// TestReadFileMigratesV1 checks that a version-1 file (single snapshot-level
// gomaxprocs, no schema_version) comes back with the CPU count stamped on
// every result and the current schema version.
func TestReadFileMigratesV1(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	v1 := `{
  "baseline": {
    "commit": "abc1234",
    "gomaxprocs": 1,
    "results": {"matmul": {"ns_per_op": 100, "iterations": 5}}
  },
  "current": {
    "gomaxprocs": 2,
    "results": {"matmul": {"ns_per_op": 80, "iterations": 7}}
  }
}`
	if err := os.WriteFile(path, []byte(v1), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if f.SchemaVersion != SchemaVersion {
		t.Fatalf("schema version %d after migration, want %d", f.SchemaVersion, SchemaVersion)
	}
	if got := f.Baseline.Results["matmul"].GOMAXPROCS; got != 1 {
		t.Fatalf("baseline result gomaxprocs %d, want snapshot's 1", got)
	}
	if got := f.Current.Results["matmul"].GOMAXPROCS; got != 2 {
		t.Fatalf("current result gomaxprocs %d, want snapshot's 2", got)
	}
	// Migration must not invent measurements.
	if got := f.Current.Results["matmul"].NsPerOp; got != 80 {
		t.Fatalf("current ns/op %d, want 80", got)
	}
}

// TestUpdateFilePreservesSections checks the read-modify-write cycle keeps
// the baseline and scaling sections intact while replacing the current
// snapshot, and writes the schema version.
func TestUpdateFilePreservesSections(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := UpdateFile(path, func(f *File) {
		f.Baseline = &Snapshot{
			Commit:  "seed000",
			Results: map[string]Result{"matmul": {NsPerOp: 100, GOMAXPROCS: 1}},
		}
	}); err != nil {
		t.Fatal(err)
	}
	rep := &ScalingReport{
		HostCPUs:  1,
		CPUCounts: []int{1, 2},
		Results: map[string][]ScalingResult{
			"matmul": {
				{GOMAXPROCS: 1, NsPerOp: 100, Speedup: 1, Efficiency: 1},
				{GOMAXPROCS: 2, NsPerOp: 90, Speedup: 100.0 / 90.0, Efficiency: 100.0 / 180.0},
			},
		},
	}
	if err := WriteScaling(path, rep); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(path, Snapshot{
		GOMAXPROCS: 1,
		Results:    map[string]Result{"matmul": {NsPerOp: 95, GOMAXPROCS: 1}},
	}); err != nil {
		t.Fatal(err)
	}
	f, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if f.Baseline == nil || f.Baseline.Commit != "seed000" {
		t.Fatal("baseline lost across WriteScaling/WriteFile")
	}
	if f.Scaling == nil || len(f.Scaling.Results["matmul"]) != 2 {
		t.Fatal("scaling section lost across WriteFile")
	}
	if got := f.Current.Results["matmul"].NsPerOp; got != 95 {
		t.Fatalf("current ns/op %d, want 95", got)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), "\"schema_version\": 2") {
		t.Fatal("written file lacks schema_version 2")
	}
}

// TestCheckParallelDeterminism runs the scaling sweep's divergence gate at a
// pool size past the host CPU count; any non-bit-identical parallel kernel
// fails here before it could be benchmarked as correct.
func TestCheckParallelDeterminism(t *testing.T) {
	prev := parallel.Workers()
	defer parallel.SetWorkers(prev)
	for _, workers := range []int{2, 4} {
		if err := CheckParallelDeterminism(workers); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
	}
}

// TestDefaultCPUCounts checks the sweep settings are sorted, deduplicated,
// and start at 1.
func TestDefaultCPUCounts(t *testing.T) {
	counts := DefaultCPUCounts()
	if len(counts) == 0 || counts[0] != 1 {
		t.Fatalf("counts %v must start at 1", counts)
	}
	for i := 1; i < len(counts); i++ {
		if counts[i] <= counts[i-1] {
			t.Fatalf("counts %v not strictly increasing", counts)
		}
	}
}
