package bench

import (
	"strings"
	"testing"
)

// syntheticReport models a 4-CPU host sweep: near-linear scaling to 2 CPUs,
// saturating at 4, with an oversubscribed 8-CPU row.
func syntheticReport() *ScalingReport {
	return &ScalingReport{
		HostCPUs:  4,
		CPUCounts: []int{1, 2, 4, 8},
		Results: map[string][]ScalingResult{
			"matmul": {
				{GOMAXPROCS: 1, NsPerOp: 1000},
				{GOMAXPROCS: 2, NsPerOp: 520},
				{GOMAXPROCS: 4, NsPerOp: 300},
				{GOMAXPROCS: 8, NsPerOp: 310, Degenerate: true},
			},
		},
	}
}

func TestScalingFinalizeSpeedupEfficiency(t *testing.T) {
	rep := syntheticReport()
	rep.finalize()
	rs := rep.Results["matmul"]
	if rs[0].Speedup != 1.0 || rs[0].Efficiency != 1.0 {
		t.Errorf("base row: speedup=%v efficiency=%v, want 1.0/1.0", rs[0].Speedup, rs[0].Efficiency)
	}
	if got, want := rs[1].Speedup, 1000.0/520.0; got != want {
		t.Errorf("2-CPU speedup = %v, want %v", got, want)
	}
	if got, want := rs[1].Efficiency, (1000.0/520.0)/2; got != want {
		t.Errorf("2-CPU efficiency = %v, want %v", got, want)
	}
	if got, want := rs[2].Efficiency, (1000.0/300.0)/4; got != want {
		t.Errorf("4-CPU efficiency = %v, want %v", got, want)
	}
	// Degenerate rows still get numbers (the flag, not zeroing, hides them).
	if rs[3].Speedup == 0 {
		t.Error("degenerate row lost its measurement")
	}
}

func TestScalingFinalizeZeroNsGuard(t *testing.T) {
	rep := &ScalingReport{
		HostCPUs: 1,
		Results: map[string][]ScalingResult{
			"x": {{GOMAXPROCS: 1, NsPerOp: 1000}, {GOMAXPROCS: 2, NsPerOp: 0}},
		},
	}
	rep.finalize() // must not divide by zero
	if rep.Results["x"][1].Speedup != 0 {
		t.Errorf("zero-ns row got speedup %v", rep.Results["x"][1].Speedup)
	}
}

func TestScalingMarkdownTableSkipsDegenerate(t *testing.T) {
	rep := syntheticReport()
	rep.finalize()
	table := rep.MarkdownTable()
	if !strings.Contains(table, "| matmul | 1 |") || !strings.Contains(table, "| matmul | 4 |") {
		t.Fatalf("table missing in-budget rows:\n%s", table)
	}
	if strings.Contains(table, "| matmul | 8 |") {
		t.Fatalf("table shows oversubscribed row:\n%s", table)
	}
	if !strings.Contains(table, "1 oversubscribed measurement(s)") {
		t.Fatalf("table hides the omission:\n%s", table)
	}
}

func TestScalingMarkdownTableDegenerateHost(t *testing.T) {
	// On a 1-CPU host every row past GOMAXPROCS=1 is degenerate — the table
	// must say so rather than print misleading "speedups".
	rep := &ScalingReport{
		HostCPUs:  1,
		CPUCounts: []int{1, 2},
		Results: map[string][]ScalingResult{
			"x": {
				{GOMAXPROCS: 1, NsPerOp: 1000},
				{GOMAXPROCS: 2, NsPerOp: 1400, Degenerate: true},
			},
		},
	}
	rep.finalize()
	table := rep.MarkdownTable()
	if strings.Contains(table, "| x | 2 |") {
		t.Fatalf("1-CPU host table shows oversubscribed speedup:\n%s", table)
	}
	if !strings.Contains(table, "GOMAXPROCS > 1 host CPUs") {
		t.Fatalf("table missing host-CPU note:\n%s", table)
	}
}
