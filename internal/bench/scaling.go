package bench

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"testing"

	"repro/internal/experiment"
	"repro/internal/nn"
	"repro/internal/parallel"
	"repro/internal/tensor"
)

// DefaultCPUCounts returns the sweep's CPU settings: {1, 2, 4, NumCPU},
// deduplicated and sorted. Settings above runtime.NumCPU() are kept — they
// measure scheduling overhead honestly rather than pretending extra cores
// exist.
func DefaultCPUCounts() []int {
	counts := []int{1, 2, 4, runtime.NumCPU()}
	sort.Ints(counts)
	out := counts[:0]
	for i, c := range counts {
		if i == 0 || c != out[len(out)-1] {
			out = append(out, c)
		}
	}
	return out
}

// RunScaling sweeps the hot-path suite over the given GOMAXPROCS settings,
// sizing the compute pool to match at each step, and returns per-benchmark
// speedup and parallel-scaling efficiency relative to the sweep's smallest
// CPU count. Before timing anything at a setting, it verifies the parallel
// kernels against their serial outputs and a seeded quick-scale Figure 4
// run against the serial reference, returning an error (and timing nothing
// further) on the first bit-level divergence. GOMAXPROCS and the pool size
// are restored before returning.
func RunScaling(counts []int, logf func(format string, args ...any)) (*ScalingReport, error) {
	if len(counts) == 0 {
		counts = DefaultCPUCounts()
	}
	prevProcs := runtime.GOMAXPROCS(0)
	prevWorkers := parallel.Workers()
	defer func() {
		runtime.GOMAXPROCS(prevProcs)
		parallel.SetWorkers(prevWorkers)
	}()

	// Serial reference for the end-to-end determinism gate.
	runtime.GOMAXPROCS(1)
	parallel.SetWorkers(1)
	refFig4, err := quickFig4()
	if err != nil {
		return nil, fmt.Errorf("bench: serial fig4 reference: %w", err)
	}

	rep := &ScalingReport{
		HostCPUs:  runtime.NumCPU(),
		CPUCounts: append([]int(nil), counts...),
		Results:   make(map[string][]ScalingResult, len(suite)),
	}
	if rep.HostCPUs < counts[len(counts)-1] {
		rep.Note = fmt.Sprintf("host has %d CPU(s); settings above that measure scheduling overhead, not parallel speedup", rep.HostCPUs)
	}
	for _, p := range counts {
		if p < 1 {
			return nil, fmt.Errorf("bench: invalid CPU count %d", p)
		}
		runtime.GOMAXPROCS(p)
		parallel.SetWorkers(p)
		if err := CheckParallelDeterminism(p); err != nil {
			return nil, fmt.Errorf("bench: GOMAXPROCS=%d: %w", p, err)
		}
		got, err := quickFig4()
		if err != nil {
			return nil, fmt.Errorf("bench: fig4 at GOMAXPROCS=%d: %w", p, err)
		}
		if got != refFig4 {
			return nil, fmt.Errorf("bench: PARALLEL DIVERGENCE: seeded fig4 output at GOMAXPROCS=%d differs from the serial run:\n--- serial ---\n%s\n--- GOMAXPROCS=%d ---\n%s", p, refFig4, p, got)
		}
		if logf != nil {
			logf("GOMAXPROCS=%d: determinism checks passed, timing suite...\n", p)
		}
		for _, e := range suite {
			r := testing.Benchmark(e.fn)
			rep.Results[e.name] = append(rep.Results[e.name], ScalingResult{
				GOMAXPROCS: p,
				NsPerOp:    r.NsPerOp(),
				Iterations: r.N,
				Degenerate: p > rep.HostCPUs,
			})
			if logf != nil {
				logf("  %-28s %12d ns/op\n", e.name, r.NsPerOp())
			}
		}
	}
	rep.finalize()
	return rep, nil
}

// finalize computes each measurement's speedup and efficiency relative to
// the sweep's smallest CPU count. Exposed (package-internally) so the
// derivation is unit-testable on synthetic multi-CPU data independent of a
// real sweep.
func (r *ScalingReport) finalize() {
	for name, rs := range r.Results {
		if len(rs) == 0 {
			continue
		}
		base := float64(rs[0].NsPerOp)
		for i := range rs {
			if rs[i].NsPerOp > 0 {
				rs[i].Speedup = base / float64(rs[i].NsPerOp)
				rs[i].Efficiency = rs[i].Speedup * float64(rs[0].GOMAXPROCS) / float64(rs[i].GOMAXPROCS)
			}
		}
		r.Results[name] = rs
	}
}

// quickFig4 runs the seeded quick-scale Figure 4 experiment and returns a
// canonical string of every numeric output, the bit-level fingerprint the
// sweep compares across CPU counts.
func quickFig4() (string, error) {
	o := experiment.QuickOptions()
	o.UseShadowAttack = false
	o.Records = 400
	res, err := experiment.Fig4(context.Background(), o, "purchase100")
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("divergences=%v perLayerAUC=%v baselineAUC=%v mostSensitive=%d",
		res.Divergences, res.PerLayerAUC, res.BaselineAUC, res.MostSensitive), nil
}

// CheckParallelDeterminism recomputes seeded kernel and layer outputs with
// the pool sized 1 and sized at workers and returns an error naming the
// first divergent element. It is the loud failure path of the scaling
// sweep: a parallel kernel that is not bit-identical to its serial
// counterpart must never be timed as if it were correct.
func CheckParallelDeterminism(workers int) error {
	prev := parallel.SetWorkers(1)
	defer parallel.SetWorkers(prev)
	// Shrink the split threshold so even the check's small shapes exercise
	// the parallel paths.
	prevMin := parallel.SetMinWork(64)
	defer parallel.SetMinWork(prevMin)

	type variant struct {
		name string
		run  func() []float64
	}
	rng := rand.New(rand.NewSource(409))
	a := tensor.Randn(rng, 0, 1, 37, 23)
	b := tensor.Randn(rng, 0, 1, 23, 29)
	bt := tensor.Randn(rng, 0, 1, 29, 23)
	at := tensor.Randn(rng, 0, 1, 23, 37)
	x4 := tensor.Randn(rng, 0, 1, 5, 3, 9, 9)
	x2 := tensor.Randn(rng, 0, 1, 9, 13)

	variants := []variant{
		{"matmul", func() []float64 {
			out := tensor.New(37, 29)
			if err := tensor.MatMulInto(out, a, b); err != nil {
				panic(err)
			}
			return out.Data()
		}},
		{"matmul_transb", func() []float64 {
			out := tensor.New(37, 29)
			if err := tensor.MatMulTransBInto(out, a, bt); err != nil {
				panic(err)
			}
			return out.Data()
		}},
		{"matmul_transa", func() []float64 {
			out := tensor.New(37, 29)
			if err := tensor.MatMulTransAInto(out, at, b); err != nil {
				panic(err)
			}
			return out.Data()
		}},
		{"conv2d_step", func() []float64 {
			return layerFingerprint(nn.NewConv2D(3, 4, 3, 1, 1, rand.New(rand.NewSource(11))), x4)
		}},
		{"conv2d_infer_direct", func() []float64 {
			// Inference forwards dispatch to the direct (im2col-free) path;
			// its batch-parallel window walk must stay serial-identical.
			layer := nn.NewConv2D(3, 4, 3, 1, 1, rand.New(rand.NewSource(11)))
			return append([]float64(nil), layer.Forward(x4, false).Data()...)
		}},
		{"dense_act_step", func() []float64 {
			return layerFingerprint(nn.NewDenseAct(13, 7, nn.ActTanh, rand.New(rand.NewSource(13))), x2)
		}},
		{"batchnorm_step", func() []float64 { return layerFingerprint(nn.NewBatchNorm(3), x4) }},
		{"maxpool_step", func() []float64 { return layerFingerprint(nn.NewMaxPool2D(2), x4) }},
		{"relu_step", func() []float64 { return layerFingerprint(nn.NewReLU(), x4) }},
	}
	for _, v := range variants {
		parallel.SetWorkers(1)
		want := v.run()
		parallel.SetWorkers(workers)
		got := v.run()
		for i := range want {
			if got[i] != want[i] {
				return fmt.Errorf("PARALLEL DIVERGENCE: %s[%d] = %v with %d workers, %v serial", v.name, i, got[i], workers, want[i])
			}
		}
	}
	return nil
}

// layerFingerprint runs a Forward+Backward step and concatenates the
// output, input gradient, and parameter gradients into one comparable
// vector.
func layerFingerprint(layer nn.Layer, x *tensor.Tensor) []float64 {
	out := layer.Forward(x, true)
	fp := append([]float64(nil), out.Data()...)
	g := tensor.Randn(rand.New(rand.NewSource(12)), 0, 1, out.Shape()...)
	gin := layer.Backward(g)
	fp = append(fp, gin.Data()...)
	for _, pg := range layer.Grads() {
		fp = append(fp, pg.Data()...)
	}
	return fp
}
