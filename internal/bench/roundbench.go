package bench

import (
	"context"
	"testing"
	"time"

	"repro/internal/defense"
	"repro/internal/fl"
	"repro/internal/fleetsim"
	"repro/internal/flnet"
)

// benchRoundThroughput times the federation round loop end to end: a
// sampled, streaming flnet server over the in-memory listener with a
// synthetic fleetsim fleet answering every broadcast. One benchmark op is
// one full round (broadcast, cohort uploads, streamed aggregation), so
// ns/op is the server's round latency and 1e9/ns_per_op its round
// throughput. The federation runs b.N rounds in one piece; fleet
// registration happens once per calibration run and is amortized.
func benchRoundThroughput(b *testing.B) {
	const (
		numClients = 64
		sampleSize = 16
		minClients = 8
		dim        = 4096
	)
	def := defense.NewNone()
	if err := def.Bind(fl.ModelInfo{NumParams: dim, NumState: dim}); err != nil {
		b.Fatal(err)
	}
	mem := fleetsim.Listen(numClients)
	srv, err := flnet.NewServer(flnet.ServerConfig{
		NumClients:   numClients,
		MinClients:   minClients,
		SampleSize:   sampleSize,
		SampleSeed:   11,
		Streaming:    true,
		Rounds:       b.N,
		Defense:      def,
		InitialState: make([]float64, dim),
		Listener:     mem,
		IOTimeout:    2 * time.Minute,
	})
	if err != nil {
		b.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()
	fleet := &fleetsim.Fleet{
		N: numClients, Dim: dim, Seed: 3,
		Dial: mem.Dial, IOTimeout: 2 * time.Minute,
	}
	statsCh := make(chan *fleetsim.Stats, 1)
	go func() { statsCh <- fleet.Run(ctx) }()

	b.ReportAllocs()
	b.ResetTimer()
	final, err := srv.Run(ctx)
	b.StopTimer()
	stats := <-statsCh
	if err != nil {
		b.Fatal(err)
	}
	if len(final) != dim {
		b.Fatalf("final state has %d values, want %d", len(final), dim)
	}
	if got := int(stats.Updates.Load()); got < b.N*minClients {
		b.Fatalf("fleet wrote %d updates over %d rounds, want at least %d", got, b.N, b.N*minClients)
	}
}
