package checkpoint

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Format v2 wraps the gob payload in a binary envelope so torn or bit-rotted
// files are *detected* instead of half-decoded:
//
//	magic   [4]byte  "DNCK"
//	version uint8    (2)
//	kind    uint8    (1 = server snapshot, 2 = private-layer store)
//	gen     uint64   generation number, big-endian
//	length  uint32   payload byte count, big-endian
//	crc32   uint32   IEEE CRC of the payload, big-endian
//	payload []byte   gob-encoded Snapshot / PrivateLayers
//
// Files are written atomically (temp + rename) and durably (fsync on the
// file and its parent directory), and each save rotates the previous newest
// file into a ".g<generation>" sibling so LoadLatestValid can fall back to
// the newest intact generation when the head of the chain is corrupt.

// envelope constants.
const (
	envMagic      = "DNCK"
	envHeaderSize = 4 + 1 + 1 + 8 + 4 + 4

	kindSnapshot byte = 1
	kindPrivate  byte = 2

	// maxPayloadBytes bounds a payload against corrupt length fields
	// (1 GiB is far above any scaled model's state vector).
	maxPayloadBytes = 1 << 30
)

// DefaultRetain is how many checkpoint generations the chained file helpers
// keep on disk: the newest (at the configured path) plus DefaultRetain-1
// ".g<gen>" predecessors.
const DefaultRetain = 3

// ErrCorrupt wraps every integrity failure detected on a v2 envelope (bad
// magic, truncated header or payload, CRC mismatch), so callers can
// distinguish corruption from absence.
var ErrCorrupt = errors.New("checkpoint: corrupt envelope")

// writeEnvelope frames payload as a v2 envelope.
func writeEnvelope(w io.Writer, kind byte, gen uint64, payload []byte) error {
	if len(payload) == 0 || len(payload) > maxPayloadBytes {
		return fmt.Errorf("checkpoint: payload length %d out of range", len(payload))
	}
	var hdr [envHeaderSize]byte
	copy(hdr[:4], envMagic)
	hdr[4] = FormatVersion
	hdr[5] = kind
	binary.BigEndian.PutUint64(hdr[6:14], gen)
	binary.BigEndian.PutUint32(hdr[14:18], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[18:22], crc32.ChecksumIEEE(payload))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("checkpoint: write header: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("checkpoint: write payload: %w", err)
	}
	return nil
}

// readEnvelope parses one v2 envelope of the wanted kind, verifying the CRC
// before the payload reaches any decoder. head is the already-consumed
// 4-byte prefix (the magic), so callers can sniff legacy files first.
func readEnvelope(head [4]byte, r io.Reader, wantKind byte) (gen uint64, payload []byte, err error) {
	if string(head[:]) != envMagic {
		return 0, nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, head[:])
	}
	var rest [envHeaderSize - 4]byte
	if _, err := io.ReadFull(r, rest[:]); err != nil {
		return 0, nil, fmt.Errorf("%w: truncated header: %v", ErrCorrupt, err)
	}
	if rest[0] != FormatVersion {
		return 0, nil, fmt.Errorf("checkpoint: unsupported version %d", rest[0])
	}
	if rest[1] != wantKind {
		return 0, nil, fmt.Errorf("%w: kind %d, want %d", ErrCorrupt, rest[1], wantKind)
	}
	gen = binary.BigEndian.Uint64(rest[2:10])
	n := binary.BigEndian.Uint32(rest[10:14])
	if n == 0 || n > maxPayloadBytes {
		return 0, nil, fmt.Errorf("%w: payload length %d out of range", ErrCorrupt, n)
	}
	sum := binary.BigEndian.Uint32(rest[14:18])
	// Read incrementally instead of pre-allocating n bytes: a corrupt
	// length field must not cost a giant allocation when the file is
	// actually tiny.
	payload, err = io.ReadAll(io.LimitReader(r, int64(n)))
	if err != nil {
		return 0, nil, fmt.Errorf("%w: read payload: %v", ErrCorrupt, err)
	}
	if uint32(len(payload)) != n {
		return 0, nil, fmt.Errorf("%w: truncated payload: %d of %d bytes", ErrCorrupt, len(payload), n)
	}
	if got := crc32.ChecksumIEEE(payload); got != sum {
		return 0, nil, fmt.Errorf("%w: CRC mismatch (stored %08x, computed %08x)", ErrCorrupt, sum, got)
	}
	return gen, payload, nil
}

// sniffMagic reads the first 4 bytes of r and reports whether they are the
// v2 magic. The bytes are returned so legacy decoding can replay them.
func sniffMagic(r io.Reader) (head [4]byte, isV2 bool, err error) {
	if _, err := io.ReadFull(r, head[:]); err != nil {
		return head, false, fmt.Errorf("checkpoint: read: %w", err)
	}
	return head, string(head[:]) == envMagic, nil
}

// --- durable file plumbing ---------------------------------------------

// syncDir fsyncs a directory so a just-renamed file's directory entry is
// durable. Best effort on filesystems that reject directory fsync.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// writeDurable writes data to path atomically (temp + rename) and durably
// (fsync on the temp file, then on the parent directory after the rename).
func writeDurable(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: write: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: sync: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: close: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: rename: %w", err)
	}
	if err := syncDir(filepath.Dir(path)); err != nil {
		return fmt.Errorf("checkpoint: sync dir: %w", err)
	}
	return nil
}

// --- generation chain ---------------------------------------------------

// genPath names the retained copy of generation gen of the chain at path.
func genPath(path string, gen uint64) string {
	return fmt.Sprintf("%s.g%09d", path, gen)
}

// generationOf parses the generation from a ".g<gen>" sibling name; ok is
// false for the head file or unrelated names.
func generationOf(path, name string) (uint64, bool) {
	prefix := filepath.Base(path) + ".g"
	if !strings.HasPrefix(name, prefix) {
		return 0, false
	}
	gen, err := strconv.ParseUint(strings.TrimPrefix(name, prefix), 10, 64)
	if err != nil {
		return 0, false
	}
	return gen, true
}

// headerGen reads just the envelope header of path and returns its
// generation; ok is false for missing, legacy (v1), or corrupt-header files.
func headerGen(path string, wantKind byte) (uint64, bool) {
	f, err := os.Open(path)
	if err != nil {
		return 0, false
	}
	defer f.Close()
	if _, isV2, err := sniffMagic(f); err != nil || !isV2 {
		return 0, false
	}
	var rest [envHeaderSize - 4]byte
	if _, err := io.ReadFull(f, rest[:]); err != nil {
		return 0, false
	}
	if rest[0] != FormatVersion || rest[1] != wantKind {
		return 0, false
	}
	return binary.BigEndian.Uint64(rest[2:10]), true
}

// siblingGenerations lists the generation numbers of retained ".g<gen>"
// files of the chain at path, ascending.
func siblingGenerations(path string) []uint64 {
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		return nil
	}
	var gens []uint64
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if gen, ok := generationOf(path, e.Name()); ok {
			gens = append(gens, gen)
		}
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i] < gens[j] })
	return gens
}

// nextGeneration picks the generation for the next save: one past the
// newest generation visible anywhere in the chain (head or siblings).
func nextGeneration(path string, kind byte) uint64 {
	var newest uint64
	if gen, ok := headerGen(path, kind); ok && gen > newest {
		newest = gen
	}
	if gens := siblingGenerations(path); len(gens) > 0 {
		if g := gens[len(gens)-1]; g > newest {
			newest = g
		}
	}
	return newest + 1
}

// saveChain writes one new generation at the head of the chain: the
// previous head is rotated into its ".g<gen>" sibling, the new envelope is
// written durably, and generations beyond retain are pruned. encode
// receives the chosen generation so the payload can embed it.
func saveChain(path string, kind byte, retain int, encode func(gen uint64) ([]byte, error)) error {
	if retain < 1 {
		retain = DefaultRetain
	}
	gen := nextGeneration(path, kind)
	payload, err := encode(gen)
	if err != nil {
		return err
	}
	var buf bytes.Buffer
	if err := writeEnvelope(&buf, kind, gen, payload); err != nil {
		return err
	}
	// Rotate the previous head so it survives as a fallback generation. A
	// legacy or corrupt head (no readable generation) is preserved under
	// gen-1 rather than overwritten.
	if prevGen, ok := headerGen(path, kind); ok {
		if err := os.Rename(path, genPath(path, prevGen)); err != nil && !errors.Is(err, os.ErrNotExist) {
			return fmt.Errorf("checkpoint: rotate: %w", err)
		}
	} else if _, err := os.Stat(path); err == nil {
		if err := os.Rename(path, genPath(path, gen-1)); err != nil {
			return fmt.Errorf("checkpoint: rotate legacy: %w", err)
		}
	}
	if err := writeDurable(path, buf.Bytes()); err != nil {
		return err
	}
	pruneGenerations(path, retain)
	return nil
}

// pruneGenerations removes retained sibling files beyond retain-1 (the head
// file at path is the retain-th generation). Best effort: a failed unlink
// never fails a save.
func pruneGenerations(path string, retain int) {
	gens := siblingGenerations(path)
	keep := retain - 1
	if keep < 0 {
		keep = 0
	}
	if len(gens) <= keep {
		return
	}
	for _, gen := range gens[:len(gens)-keep] {
		os.Remove(genPath(path, gen)) //nolint:errcheck // best-effort prune
	}
}

// chainCandidates lists the files of the chain at path to try when
// loading, newest first: the head, then retained generations descending.
func chainCandidates(path string) []string {
	out := []string{path}
	gens := siblingGenerations(path)
	for i := len(gens) - 1; i >= 0; i-- {
		out = append(out, genPath(path, gens[i]))
	}
	return out
}

// loadLatestValid walks the chain newest-first and returns the first file
// that decodes and validates, plus the paths of the corrupt files it
// skipped. When no file of the chain exists at all the error wraps
// os.ErrNotExist; when files exist but none is intact the error reports
// every failure.
func loadLatestValid(path string, decode func(string) error) (skipped []string, err error) {
	var errs []error
	tried := 0
	for _, cand := range chainCandidates(path) {
		derr := decode(cand)
		if derr == nil {
			return skipped, nil
		}
		if errors.Is(derr, os.ErrNotExist) {
			continue
		}
		tried++
		skipped = append(skipped, cand)
		errs = append(errs, fmt.Errorf("%s: %w", cand, derr))
	}
	if tried == 0 {
		return nil, fmt.Errorf("checkpoint: no checkpoint at %s: %w", path, os.ErrNotExist)
	}
	return skipped, fmt.Errorf("checkpoint: no intact generation at %s: %w", path, errors.Join(errs...))
}
