package checkpoint

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"testing"
)

// FuzzEnvelope throws arbitrary bytes at the v2 envelope reader (via the
// snapshot Load path, which also exercises the legacy-gob sniffing). The
// invariants: no input panics the decoder; any input whose CRC does not
// match its payload is rejected; and a well-formed envelope around a valid
// payload round-trips.
func FuzzEnvelope(f *testing.F) {
	// Seed with a valid envelope, a legacy file, and assorted near-misses.
	var valid bytes.Buffer
	if err := Save(&valid, &Snapshot{Dataset: "purchase100", Round: 3, State: []float64{1, 2}}); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add([]byte(envMagic))
	f.Add([]byte("DNCKxxxxxxxxxxxxxxxxxxxxxx"))
	f.Add([]byte{})
	truncated := append([]byte(nil), valid.Bytes()...)
	f.Add(truncated[:len(truncated)/2])

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Load(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Whatever decoded must satisfy the snapshot invariants Load
		// enforces; re-saving it must produce a loadable envelope.
		if len(s.State) == 0 {
			t.Fatalf("Load accepted an invalid snapshot: %+v", s)
		}
		var buf bytes.Buffer
		if err := Save(&buf, s); err != nil {
			t.Fatalf("re-save of a loaded snapshot failed: %v", err)
		}
		if _, err := Load(&buf); err != nil {
			t.Fatalf("re-saved snapshot does not load: %v", err)
		}

		// If the input was a v2 envelope, independently verify the CRC
		// actually matched — Load accepting a mismatch would defeat the
		// whole point of the format.
		if len(data) >= envHeaderSize && string(data[:4]) == envMagic {
			n := binary.BigEndian.Uint32(data[14:18])
			sum := binary.BigEndian.Uint32(data[18:22])
			if int(n) <= len(data)-envHeaderSize {
				payload := data[envHeaderSize : envHeaderSize+int(n)]
				if crc32.ChecksumIEEE(payload) != sum {
					t.Fatalf("Load accepted an envelope whose CRC does not match")
				}
			}
		}
	})
}

// FuzzEnvelopeCorruption flips one byte of a valid envelope at a
// fuzzer-chosen offset: every single-byte corruption must either still be
// the identical snapshot (impossible — any flip lands in the header, the
// CRC, or the payload) or be rejected; none may panic or silently decode
// to different data.
func FuzzEnvelopeCorruption(f *testing.F) {
	var valid bytes.Buffer
	if err := Save(&valid, &Snapshot{Dataset: "purchase100", Round: 3, State: []float64{1, 2}}); err != nil {
		f.Fatal(err)
	}
	base := valid.Bytes()
	f.Add(uint(0), byte(0xff))
	f.Add(uint(len(base)-1), byte(0x01))

	f.Fuzz(func(t *testing.T, off uint, mask byte) {
		if mask == 0 {
			return // identity flip: not a corruption
		}
		data := append([]byte(nil), base...)
		data[int(off)%len(data)] ^= mask
		s, err := Load(bytes.NewReader(data))
		if err != nil {
			return
		}
		if s.Round != 3 || s.Dataset != "purchase100" || len(s.State) != 2 || s.State[0] != 1 || s.State[1] != 2 {
			t.Fatalf("a flipped byte at %d decoded to different data: %+v", int(off)%len(data), s)
		}
	})
}
