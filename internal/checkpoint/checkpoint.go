// Package checkpoint persists federated-learning state so middleware
// processes can stop and resume: the server's global model snapshot, and —
// specific to DINAR — each client's private-layer store, whose loss would
// otherwise cost the client its personalization (θᵖ* is never on the server,
// by design).
//
// The format is a versioned gob envelope; Load rejects unknown versions.
package checkpoint

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"
)

// FormatVersion is the current on-disk format version.
const FormatVersion = 1

// Snapshot is a server-side global-model checkpoint.
type Snapshot struct {
	// Version is the format version (set by Save).
	Version int
	// Dataset names the dataset/model configuration the state belongs to.
	Dataset string
	// Round is the number of completed FL rounds.
	Round int
	// State is the global model state vector.
	State []float64
}

// Save writes the snapshot to w.
func Save(w io.Writer, s *Snapshot) error {
	if s == nil || len(s.State) == 0 {
		return fmt.Errorf("checkpoint: empty snapshot")
	}
	out := *s
	out.Version = FormatVersion
	if err := gob.NewEncoder(w).Encode(&out); err != nil {
		return fmt.Errorf("checkpoint: encode: %w", err)
	}
	return nil
}

// Load reads a snapshot from r.
func Load(r io.Reader) (*Snapshot, error) {
	var s Snapshot
	if err := gob.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("checkpoint: decode: %w", err)
	}
	if s.Version != FormatVersion {
		return nil, fmt.Errorf("checkpoint: unsupported version %d", s.Version)
	}
	if len(s.State) == 0 {
		return nil, fmt.Errorf("checkpoint: snapshot has no state")
	}
	return &s, nil
}

// SaveFile writes the snapshot to path (atomically via a temp file rename).
func SaveFile(path string, s *Snapshot) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := Save(f, s); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: close: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: rename: %w", err)
	}
	return nil
}

// LoadFile reads a snapshot from path.
func LoadFile(path string) (*Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	defer f.Close()
	return Load(f)
}

// PrivateLayers is a client-side checkpoint of DINAR's private-layer store
// (θᵖ* per protected layer).
type PrivateLayers struct {
	// Version is the format version (set by SavePrivate).
	Version int
	// ClientID identifies the owning client.
	ClientID int
	// Layers maps logical layer index to the stored parameters.
	Layers map[int][]float64
}

// SavePrivate writes a private-layer store to w.
func SavePrivate(w io.Writer, p *PrivateLayers) error {
	if p == nil || len(p.Layers) == 0 {
		return fmt.Errorf("checkpoint: empty private store")
	}
	out := *p
	out.Version = FormatVersion
	if err := gob.NewEncoder(w).Encode(&out); err != nil {
		return fmt.Errorf("checkpoint: encode private store: %w", err)
	}
	return nil
}

// LoadPrivate reads a private-layer store from r.
func LoadPrivate(r io.Reader) (*PrivateLayers, error) {
	var p PrivateLayers
	if err := gob.NewDecoder(r).Decode(&p); err != nil {
		return nil, fmt.Errorf("checkpoint: decode private store: %w", err)
	}
	if p.Version != FormatVersion {
		return nil, fmt.Errorf("checkpoint: unsupported version %d", p.Version)
	}
	if len(p.Layers) == 0 {
		return nil, fmt.Errorf("checkpoint: private store has no layers")
	}
	return &p, nil
}

// SavePrivateFile writes a private-layer store to path atomically.
func SavePrivateFile(path string, p *PrivateLayers) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := SavePrivate(f, p); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: close: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: rename: %w", err)
	}
	return nil
}

// LoadPrivateFile reads a private-layer store from path.
func LoadPrivateFile(path string) (*PrivateLayers, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	defer f.Close()
	return LoadPrivate(f)
}

// encodeRaw gob-encodes v without normalizing the version field; it exists
// so tests can construct snapshots with arbitrary versions.
func encodeRaw(w io.Writer, v interface{}) error {
	return gob.NewEncoder(w).Encode(v)
}
