// Package checkpoint persists federated-learning state so middleware
// processes can stop and resume: the server's global model snapshot (plus
// the quarantine state of the Byzantine update screen), and — specific to
// DINAR — each client's private-layer store, whose loss would otherwise
// cost the client its personalization (θᵖ* is never on the server, by
// design).
//
// Format v2 (current) is a CRC32-checksummed binary envelope around a gob
// payload; v1 files (bare gob) are still readable. The file helpers write
// durably — fsync on the file and its parent directory around the atomic
// rename — and chain generations: every save rotates the previous newest
// file into a ".g<generation>" sibling, retaining the last DefaultRetain
// generations, so LoadLatestValid can detect a torn or corrupted head and
// fall back to the newest intact generation.
package checkpoint

import (
	"bufio"
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"os"
)

// FormatVersion is the current on-disk format version.
const FormatVersion = 2

// legacyVersion is the pre-envelope gob-only format, still readable.
const legacyVersion = 1

// QuarantineState checkpoints the Byzantine update screen so quarantine
// penalties and offense counts survive a server restart (a poisoner must
// not be paroled by crashing the server).
type QuarantineState struct {
	// Offenses counts rejected updates per client id.
	Offenses map[int]int
	// BlockedUntil maps a quarantined client id to the last round
	// (inclusive) its updates are excluded.
	BlockedUntil map[int]int
	// Norms is the running window of accepted delta norms backing the
	// clip/reject bound.
	Norms []float64
}

// Snapshot is a server-side global-model checkpoint.
type Snapshot struct {
	// Version is the format version (set by Save).
	Version int
	// Generation is the position in the checkpoint chain (set by SaveFile;
	// 0 for stream saves and legacy files).
	Generation uint64
	// Dataset names the dataset/model configuration the state belongs to.
	Dataset string
	// Round is the number of completed FL rounds.
	Round int
	// State is the global model state vector.
	State []float64
	// Quarantine is the update screen's reputation state at Round, nil
	// when screening is disabled (and in legacy v1 files).
	Quarantine *QuarantineState

	// SampleSeed and SampleSize record the per-round client-sampling
	// configuration, so a resumed server draws bit-identical cohorts for
	// the remaining rounds (zero when sampling is off or in older files;
	// gob leaves absent fields at their zero value, so the format version
	// is unchanged).
	SampleSeed int64
	SampleSize int
	// Async holds updates that arrived after their round closed and were
	// buffered for staleness-weighted aggregation in a later round. Saved
	// on graceful drain so crash-resume replays them; nil when async mode
	// is off.
	Async []AsyncUpdate
	// StreamNorms is the streaming norm-bound aggregator's trailing
	// accepted-norm window (nil unless that aggregator is active).
	StreamNorms []float64
	// Wire records the server's negotiated-codec configuration and the
	// last canonical broadcast state, so a resumed server keeps honoring
	// in-flight codec negotiations: the quantization seed stays stable
	// (clients reconstruct with it) and the broadcast delta chain resumes
	// from the exact state still-running clients hold. Nil when the server
	// runs the plain gob/binary transport (and in older files).
	Wire *WireState
}

// WireState is the wire-codec portion of a Snapshot.
type WireState struct {
	// Compress, Quantize, TopK, and Delta mirror the ServerConfig codec
	// offer the checkpoint was written under.
	Compress bool
	Quantize string
	TopK     float64
	Delta    bool
	// QuantSeed seeds stochastic quantization; a resumed server adopts it
	// (and refuses a conflicting configured seed) the way SampleSeed works.
	QuantSeed int64
	// BcastRound/Bcast are the round and full state of the last canonical
	// broadcast — the delta/quantization anchor clients hold — so the
	// resumed server's broadcast ring can diff against it.
	BcastRound int
	Bcast      []float64
}

// AsyncUpdate is one buffered late update in a Snapshot.
type AsyncUpdate struct {
	// ClientID is the sender.
	ClientID int
	// Round is the round the update was trained against.
	Round int
	// NumSamples is the sender's local-dataset weight.
	NumSamples int
	// State is the uploaded state vector.
	State []float64
}

// encodeSnapshot gob-encodes the normalized snapshot payload.
func encodeSnapshot(s *Snapshot, gen uint64) ([]byte, error) {
	if s == nil || len(s.State) == 0 {
		return nil, fmt.Errorf("checkpoint: empty snapshot")
	}
	out := *s
	out.Version = FormatVersion
	out.Generation = gen
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&out); err != nil {
		return nil, fmt.Errorf("checkpoint: encode: %w", err)
	}
	return buf.Bytes(), nil
}

// decodeSnapshot decodes and validates a gob snapshot payload.
func decodeSnapshot(r io.Reader, wantVersion int) (*Snapshot, error) {
	var s Snapshot
	if err := gob.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("checkpoint: decode: %w", err)
	}
	if s.Version != wantVersion {
		return nil, fmt.Errorf("checkpoint: unsupported version %d", s.Version)
	}
	if len(s.State) == 0 {
		return nil, fmt.Errorf("checkpoint: snapshot has no state")
	}
	return &s, nil
}

// Save writes the snapshot to w as a v2 envelope.
func Save(w io.Writer, s *Snapshot) error {
	var gen uint64
	if s != nil {
		gen = s.Generation
	}
	payload, err := encodeSnapshot(s, gen)
	if err != nil {
		return err
	}
	return writeEnvelope(w, kindSnapshot, gen, payload)
}

// Load reads a snapshot from r: a v2 envelope (CRC-verified) or a legacy
// v1 bare-gob stream.
func Load(r io.Reader) (*Snapshot, error) {
	br := bufio.NewReader(r)
	head, isV2, err := sniffMagic(br)
	if err != nil {
		return nil, err
	}
	if !isV2 {
		return decodeSnapshot(io.MultiReader(bytes.NewReader(head[:]), br), legacyVersion)
	}
	gen, payload, err := readEnvelope(head, br, kindSnapshot)
	if err != nil {
		return nil, err
	}
	s, err := decodeSnapshot(bytes.NewReader(payload), FormatVersion)
	if err != nil {
		return nil, err
	}
	s.Generation = gen
	return s, nil
}

// SaveFile writes the snapshot durably at the head of the checkpoint chain
// at path (atomic rename, fsync on file and directory), rotating the
// previous newest generation into a ".g<gen>" sibling and retaining the
// last DefaultRetain generations.
func SaveFile(path string, s *Snapshot) error {
	return SaveFileRetain(path, s, DefaultRetain)
}

// SaveFileRetain is SaveFile with an explicit generation-retention count
// (minimum 1: only the head file is kept).
func SaveFileRetain(path string, s *Snapshot, retain int) error {
	return saveChain(path, kindSnapshot, retain, func(gen uint64) ([]byte, error) {
		return encodeSnapshot(s, gen)
	})
}

// LoadFile reads the snapshot at path (either format).
func LoadFile(path string) (*Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	defer f.Close()
	return Load(f)
}

// LoadLatestValid walks the checkpoint chain at path newest-first and
// returns the first snapshot that decodes and CRC-verifies, plus the paths
// of corrupt files skipped on the way. A missing chain reports
// os.ErrNotExist; a chain with no intact generation reports every failure.
func LoadLatestValid(path string) (*Snapshot, []string, error) {
	var snap *Snapshot
	skipped, err := loadLatestValid(path, func(cand string) error {
		s, derr := LoadFile(cand)
		if derr != nil {
			return derr
		}
		snap = s
		return nil
	})
	if err != nil {
		return nil, skipped, err
	}
	return snap, skipped, nil
}

// PrivateLayers is a client-side checkpoint of DINAR's private-layer store
// (θᵖ* per protected layer).
type PrivateLayers struct {
	// Version is the format version (set by SavePrivate).
	Version int
	// Generation is the position in the checkpoint chain (set by
	// SavePrivateFile; 0 for stream saves and legacy files).
	Generation uint64
	// ClientID identifies the owning client.
	ClientID int
	// Round is the last round the stored layers belong to (0 in legacy
	// files).
	Round int
	// Layers maps logical layer index to the stored parameters.
	Layers map[int][]float64
}

// encodePrivate gob-encodes the normalized private-store payload.
func encodePrivate(p *PrivateLayers, gen uint64) ([]byte, error) {
	if p == nil || len(p.Layers) == 0 {
		return nil, fmt.Errorf("checkpoint: empty private store")
	}
	out := *p
	out.Version = FormatVersion
	out.Generation = gen
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&out); err != nil {
		return nil, fmt.Errorf("checkpoint: encode private store: %w", err)
	}
	return buf.Bytes(), nil
}

// decodePrivate decodes and validates a gob private-store payload.
func decodePrivate(r io.Reader, wantVersion int) (*PrivateLayers, error) {
	var p PrivateLayers
	if err := gob.NewDecoder(r).Decode(&p); err != nil {
		return nil, fmt.Errorf("checkpoint: decode private store: %w", err)
	}
	if p.Version != wantVersion {
		return nil, fmt.Errorf("checkpoint: unsupported version %d", p.Version)
	}
	if len(p.Layers) == 0 {
		return nil, fmt.Errorf("checkpoint: private store has no layers")
	}
	return &p, nil
}

// SavePrivate writes a private-layer store to w as a v2 envelope.
func SavePrivate(w io.Writer, p *PrivateLayers) error {
	var gen uint64
	if p != nil {
		gen = p.Generation
	}
	payload, err := encodePrivate(p, gen)
	if err != nil {
		return err
	}
	return writeEnvelope(w, kindPrivate, gen, payload)
}

// LoadPrivate reads a private-layer store from r (either format).
func LoadPrivate(r io.Reader) (*PrivateLayers, error) {
	br := bufio.NewReader(r)
	head, isV2, err := sniffMagic(br)
	if err != nil {
		return nil, err
	}
	if !isV2 {
		return decodePrivate(io.MultiReader(bytes.NewReader(head[:]), br), legacyVersion)
	}
	gen, payload, err := readEnvelope(head, br, kindPrivate)
	if err != nil {
		return nil, err
	}
	p, err := decodePrivate(bytes.NewReader(payload), FormatVersion)
	if err != nil {
		return nil, err
	}
	p.Generation = gen
	return p, nil
}

// SavePrivateFile writes a private-layer store durably at the head of the
// chain at path, like SaveFile.
func SavePrivateFile(path string, p *PrivateLayers) error {
	return SavePrivateFileRetain(path, p, DefaultRetain)
}

// SavePrivateFileRetain is SavePrivateFile with an explicit retention count.
func SavePrivateFileRetain(path string, p *PrivateLayers, retain int) error {
	return saveChain(path, kindPrivate, retain, func(gen uint64) ([]byte, error) {
		return encodePrivate(p, gen)
	})
}

// LoadPrivateFile reads the private-layer store at path (either format).
func LoadPrivateFile(path string) (*PrivateLayers, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	defer f.Close()
	return LoadPrivate(f)
}

// LoadLatestValidPrivate walks the private-store chain at path newest-first
// like LoadLatestValid.
func LoadLatestValidPrivate(path string) (*PrivateLayers, []string, error) {
	var priv *PrivateLayers
	skipped, err := loadLatestValid(path, func(cand string) error {
		p, derr := LoadPrivateFile(cand)
		if derr != nil {
			return derr
		}
		priv = p
		return nil
	})
	if err != nil {
		return nil, skipped, err
	}
	return priv, skipped, nil
}

// encodeRaw gob-encodes v without normalizing the version field; it exists
// so tests can construct snapshots with arbitrary versions.
func encodeRaw(w io.Writer, v interface{}) error {
	return gob.NewEncoder(w).Encode(v)
}
