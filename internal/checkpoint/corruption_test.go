package checkpoint

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// buildChain saves rounds 0..saves-1 into a fresh chain and returns the
// head path. With the default retention, the head holds round saves-1 and
// the newest sibling holds round saves-2.
func buildChain(t *testing.T, saves int) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "global.ckpt")
	for r := 0; r < saves; r++ {
		s := &Snapshot{Dataset: "purchase100", Round: r, State: []float64{float64(r), 1.5}}
		if err := SaveFile(path, s); err != nil {
			t.Fatal(err)
		}
	}
	return path
}

// TestLoadLatestValidFallback drives every corruption class through the
// chain loader: whatever happened to the head — zero-length file, truncated
// header, truncated payload, flipped payload byte (CRC mismatch), flipped
// kind byte, bad magic, or unrelated garbage — LoadLatestValid must skip it
// and return the newest intact generation.
func TestLoadLatestValidFallback(t *testing.T) {
	cases := []struct {
		name    string
		corrupt func(t *testing.T, path string, data []byte)
	}{
		{"zero-length", func(t *testing.T, path string, data []byte) {
			writeRaw(t, path, nil)
		}},
		{"truncated-header", func(t *testing.T, path string, data []byte) {
			writeRaw(t, path, data[:envHeaderSize/2])
		}},
		{"truncated-payload", func(t *testing.T, path string, data []byte) {
			writeRaw(t, path, data[:envHeaderSize+(len(data)-envHeaderSize)/2])
		}},
		{"payload-bit-flip", func(t *testing.T, path string, data []byte) {
			data[len(data)-1] ^= 0xff
			writeRaw(t, path, data)
		}},
		{"kind-flip", func(t *testing.T, path string, data []byte) {
			data[5] = kindPrivate
			writeRaw(t, path, data)
		}},
		{"bad-magic", func(t *testing.T, path string, data []byte) {
			data[0] = 'X'
			writeRaw(t, path, data)
		}},
		{"garbage", func(t *testing.T, path string, data []byte) {
			writeRaw(t, path, []byte("not a checkpoint at all, not even gob"))
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := buildChain(t, 3)
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			tc.corrupt(t, path, data)

			got, skipped, err := LoadLatestValid(path)
			if err != nil {
				t.Fatalf("LoadLatestValid: %v", err)
			}
			if got.Round != 1 {
				t.Fatalf("fell back to round %d, want 1 (the previous generation)", got.Round)
			}
			if len(skipped) != 1 || skipped[0] != path {
				t.Fatalf("skipped %v, want just the head %s", skipped, path)
			}
		})
	}
}

// writeRaw replaces path with data bytes (no envelope, no atomicity — this
// is the corruption, not a save).
func writeRaw(t *testing.T, path string, data []byte) {
	t.Helper()
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestLoadLatestValidAllCorrupt corrupts every generation of the chain:
// the loader must fail loudly (reporting each candidate) rather than
// half-load anything, and the error must not look like simple absence.
func TestLoadLatestValidAllCorrupt(t *testing.T) {
	path := buildChain(t, 3)
	cands, err := filepath.Glob(path + "*")
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cands {
		data, err := os.ReadFile(c)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)-1] ^= 0xff
		writeRaw(t, c, data)
	}
	_, skipped, err := LoadLatestValid(path)
	if err == nil {
		t.Fatal("a fully corrupt chain should not load")
	}
	if errors.Is(err, os.ErrNotExist) {
		t.Fatalf("corruption must not masquerade as absence: %v", err)
	}
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("error should wrap ErrCorrupt: %v", err)
	}
	if len(skipped) != len(cands) {
		t.Fatalf("skipped %d files, want all %d", len(skipped), len(cands))
	}
}

// TestLoadLatestValidMissing distinguishes "never checkpointed" from
// corruption: the error wraps os.ErrNotExist so resume paths can start
// fresh.
func TestLoadLatestValidMissing(t *testing.T) {
	_, _, err := LoadLatestValid(filepath.Join(t.TempDir(), "absent.ckpt"))
	if !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("want os.ErrNotExist, got %v", err)
	}
}

// TestChainRotationAndRetention saves past the retention horizon and
// asserts the chain keeps exactly DefaultRetain generations — the head plus
// DefaultRetain-1 siblings, newest surviving, oldest pruned.
func TestChainRotationAndRetention(t *testing.T) {
	const saves = 5
	path := buildChain(t, saves)

	head, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if head.Round != saves-1 || head.Generation != saves {
		t.Fatalf("head is round %d gen %d, want round %d gen %d", head.Round, head.Generation, saves-1, saves)
	}
	gens := siblingGenerations(path)
	if len(gens) != DefaultRetain-1 {
		t.Fatalf("retained %d siblings %v, want %d", len(gens), gens, DefaultRetain-1)
	}
	for i, gen := range gens {
		wantGen := uint64(saves - DefaultRetain + 1 + i)
		if gen != wantGen {
			t.Fatalf("sibling %d has generation %d, want %d (oldest generations must be pruned)", i, gen, wantGen)
		}
		s, err := LoadFile(genPath(path, gen))
		if err != nil {
			t.Fatal(err)
		}
		if s.Generation != gen || s.Round != int(gen)-1 {
			t.Fatalf("sibling gen %d decodes to gen %d round %d", gen, s.Generation, s.Round)
		}
	}
}

// TestLoadFileReportsCorruption asserts the non-fallback loader surfaces
// ErrCorrupt (callers that want the fallback must opt into
// LoadLatestValid).
func TestLoadFileReportsCorruption(t *testing.T) {
	path := buildChain(t, 1)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	writeRaw(t, path, data)
	if _, err := LoadFile(path); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("want ErrCorrupt, got %v", err)
	}
}

// TestPrivateChainFallback mirrors the fallback test for the client-side
// private-layer chain.
func TestPrivateChainFallback(t *testing.T) {
	path := filepath.Join(t.TempDir(), "private.ckpt")
	for r := 0; r < 3; r++ {
		p := &PrivateLayers{ClientID: 4, Round: r, Layers: map[int][]float64{0: {float64(r)}}}
		if err := SavePrivateFile(path, p); err != nil {
			t.Fatal(err)
		}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[envHeaderSize] ^= 0xff // first payload byte
	writeRaw(t, path, data)

	got, skipped, err := LoadLatestValidPrivate(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Round != 1 || got.ClientID != 4 {
		t.Fatalf("fallback loaded client %d round %d, want client 4 round 1", got.ClientID, got.Round)
	}
	if len(skipped) != 1 {
		t.Fatalf("skipped %v, want just the head", skipped)
	}
}
