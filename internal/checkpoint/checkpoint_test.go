package checkpoint

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func TestSnapshotRoundTrip(t *testing.T) {
	s := &Snapshot{Dataset: "purchase100", Round: 7, State: []float64{1, 2.5, -3}}
	var buf bytes.Buffer
	if err := Save(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Dataset != "purchase100" || got.Round != 7 || got.Version != FormatVersion {
		t.Fatalf("round trip: %+v", got)
	}
	for i, v := range s.State {
		if got.State[i] != v {
			t.Fatal("state corrupted")
		}
	}
}

func TestSnapshotValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := Save(&buf, nil); err == nil {
		t.Fatal("accepted nil snapshot")
	}
	if err := Save(&buf, &Snapshot{}); err == nil {
		t.Fatal("accepted empty state")
	}
	if _, err := Load(bytes.NewReader([]byte("garbage"))); err == nil {
		t.Fatal("accepted garbage")
	}
}

func TestSnapshotVersionCheck(t *testing.T) {
	s := &Snapshot{Dataset: "d", Round: 1, State: []float64{1}}
	var buf bytes.Buffer
	if err := Save(&buf, s); err != nil {
		t.Fatal(err)
	}
	// Re-encode with a bogus version by decoding and tweaking.
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	loaded.Version = 99
	var buf2 bytes.Buffer
	// Save overwrites Version, so hand-encode via a copy through gob is not
	// possible here; instead verify Load's guard using a manual envelope.
	type raw Snapshot
	r := raw(*loaded)
	if err := encodeRaw(&buf2, &r); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(&buf2); err == nil {
		t.Fatal("accepted unknown version")
	}
}

func TestSnapshotFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "global.ckpt")
	s := &Snapshot{Dataset: "texas100", Round: 3, State: []float64{9, 8}}
	if err := SaveFile(path, s); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Round != 3 || got.State[1] != 8 {
		t.Fatalf("file round trip: %+v", got)
	}
	// Temp file must not remain.
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatal("temp file left behind")
	}
	if _, err := LoadFile(filepath.Join(dir, "missing.ckpt")); err == nil {
		t.Fatal("loaded missing file")
	}
}

func TestPrivateLayersRoundTrip(t *testing.T) {
	p := &PrivateLayers{
		ClientID: 2,
		Layers:   map[int][]float64{4: {1, 2, 3}, 5: {4}},
	}
	var buf bytes.Buffer
	if err := SavePrivate(&buf, p); err != nil {
		t.Fatal(err)
	}
	got, err := LoadPrivate(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.ClientID != 2 || len(got.Layers) != 2 || got.Layers[4][2] != 3 {
		t.Fatalf("round trip: %+v", got)
	}
}

func TestPrivateLayersValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := SavePrivate(&buf, nil); err == nil {
		t.Fatal("accepted nil store")
	}
	if err := SavePrivate(&buf, &PrivateLayers{ClientID: 1}); err == nil {
		t.Fatal("accepted empty store")
	}
	if _, err := LoadPrivate(bytes.NewReader([]byte{1, 2})); err == nil {
		t.Fatal("accepted garbage")
	}
}

func TestPrivateLayersFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "private.ckpt")
	p := &PrivateLayers{ClientID: 0, Layers: map[int][]float64{4: {7, 7}}}
	if err := SavePrivateFile(path, p); err != nil {
		t.Fatal(err)
	}
	got, err := LoadPrivateFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Layers[4][0] != 7 {
		t.Fatalf("file round trip: %+v", got)
	}
	if _, err := LoadPrivateFile(filepath.Join(dir, "missing")); err == nil {
		t.Fatal("loaded missing file")
	}
}
