package optim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

// quadratic is a convex test problem: f(x) = ½ Σ c_i x_i² with minimum at 0.
type quadratic struct {
	c []float64
	x *tensor.Tensor
	g *tensor.Tensor
}

func newQuadratic(seed int64, n int) *quadratic {
	rng := rand.New(rand.NewSource(seed))
	q := &quadratic{
		c: make([]float64, n),
		x: tensor.Randn(rng, 0, 1, n),
		g: tensor.New(n),
	}
	for i := range q.c {
		q.c[i] = 0.5 + rng.Float64()*2
	}
	return q
}

func (q *quadratic) loss() float64 {
	s := 0.0
	for i, v := range q.x.Data() {
		s += 0.5 * q.c[i] * v * v
	}
	return s
}

func (q *quadratic) grad() {
	for i, v := range q.x.Data() {
		q.g.Data()[i] = q.c[i] * v
	}
}

func optimizeQuadratic(t *testing.T, opt Optimizer, steps int) (initial, final float64) {
	t.Helper()
	q := newQuadratic(11, 16)
	initial = q.loss()
	params := []*tensor.Tensor{q.x}
	grads := []*tensor.Tensor{q.g}
	for i := 0; i < steps; i++ {
		q.grad()
		opt.Step(params, grads)
	}
	return initial, q.loss()
}

func TestOptimizersReduceConvexLoss(t *testing.T) {
	tests := []struct {
		name  string
		opt   Optimizer
		steps int
	}{
		{"sgd", NewSGD(0.1, 0), 200},
		{"sgd-momentum", NewSGD(0.05, 0.9), 200},
		{"adagrad", NewAdagrad(0.5), 400},
		{"adam", NewAdam(0.05), 400},
		{"adamax", NewAdaMax(0.05), 400},
		{"rmsprop", NewRMSProp(0.01), 400},
		{"adgd", NewADGD(0.01), 200},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			initial, final := optimizeQuadratic(t, tt.opt, tt.steps)
			if final >= initial*0.01 {
				t.Fatalf("%s: loss %v -> %v, expected >99%% reduction", tt.name, initial, final)
			}
		})
	}
}

func TestAdagradMatchesAlgorithmOne(t *testing.T) {
	// Hand-computed: one parameter, g=2, lr=0.1.
	// Step 1: G=4, x -= 0.1*2/sqrt(4+1e-5).
	p := tensor.MustFromSlice([]float64{1}, 1)
	g := tensor.MustFromSlice([]float64{2}, 1)
	opt := NewAdagrad(0.1)
	opt.Step([]*tensor.Tensor{p}, []*tensor.Tensor{g})
	want := 1 - 0.1*2/math.Sqrt(4+1e-5)
	if math.Abs(p.At(0)-want) > 1e-12 {
		t.Fatalf("step 1: x = %v, want %v", p.At(0), want)
	}
	// Step 2 with g=1: G=5.
	g.Set(1, 0)
	opt.Step([]*tensor.Tensor{p}, []*tensor.Tensor{g})
	want -= 0.1 * 1 / math.Sqrt(5+1e-5)
	if math.Abs(p.At(0)-want) > 1e-12 {
		t.Fatalf("step 2: x = %v, want %v", p.At(0), want)
	}
}

func TestSGDKnownStep(t *testing.T) {
	p := tensor.MustFromSlice([]float64{1, 2}, 2)
	g := tensor.MustFromSlice([]float64{0.5, -0.5}, 2)
	NewSGD(0.1, 0).Step([]*tensor.Tensor{p}, []*tensor.Tensor{g})
	if math.Abs(p.At(0)-0.95) > 1e-12 || math.Abs(p.At(1)-2.05) > 1e-12 {
		t.Fatalf("sgd step: %v", p.Data())
	}
}

func TestSGDMomentumAccumulates(t *testing.T) {
	p := tensor.MustFromSlice([]float64{0}, 1)
	g := tensor.MustFromSlice([]float64{1}, 1)
	opt := NewSGD(1, 0.5)
	opt.Step([]*tensor.Tensor{p}, []*tensor.Tensor{g})
	// v=1, x=-1
	opt.Step([]*tensor.Tensor{p}, []*tensor.Tensor{g})
	// v=1.5, x=-2.5
	if math.Abs(p.At(0)+2.5) > 1e-12 {
		t.Fatalf("momentum: x = %v, want -2.5", p.At(0))
	}
}

func TestResetClearsState(t *testing.T) {
	p := tensor.MustFromSlice([]float64{1}, 1)
	g := tensor.MustFromSlice([]float64{1}, 1)
	opt := NewAdagrad(0.1)
	opt.Step([]*tensor.Tensor{p}, []*tensor.Tensor{g})
	opt.Reset()
	p.Set(1, 0)
	opt.Step([]*tensor.Tensor{p}, []*tensor.Tensor{g})
	want := 1 - 0.1*1/math.Sqrt(1+1e-5)
	if math.Abs(p.At(0)-want) > 1e-12 {
		t.Fatalf("after reset: x = %v, want %v (fresh accumulator)", p.At(0), want)
	}
}

func TestADGDLambdaStaysFinite(t *testing.T) {
	q := newQuadratic(3, 8)
	opt := NewADGD(0.05)
	params := []*tensor.Tensor{q.x}
	grads := []*tensor.Tensor{q.g}
	for i := 0; i < 100; i++ {
		q.grad()
		opt.Step(params, grads)
		if l := opt.Lambda(); math.IsNaN(l) || math.IsInf(l, 0) || l <= 0 {
			t.Fatalf("step %d: lambda = %v", i, l)
		}
	}
}

func TestNewRegistry(t *testing.T) {
	for _, name := range []string{"sgd", "adagrad", "adam", "adamax", "rmsprop", "adgd"} {
		opt := New(name, 0.01)
		if opt == nil {
			t.Fatalf("New(%q) = nil", name)
		}
		if opt.Name() != name {
			t.Fatalf("New(%q).Name() = %q", name, opt.Name())
		}
	}
	if New("nope", 0.01) != nil {
		t.Fatal("New should return nil for unknown optimizer")
	}
}

// Property: a zero gradient never changes parameters, for any optimizer.
func TestQuickZeroGradientFixedPoint(t *testing.T) {
	names := []string{"sgd", "adagrad", "adam", "adamax", "rmsprop", "adgd"}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		for _, name := range names {
			opt := New(name, 0.1)
			p := tensor.Randn(rng, 0, 1, 5)
			before := append([]float64(nil), p.Data()...)
			g := tensor.New(5)
			// Two steps to exercise stateful paths.
			opt.Step([]*tensor.Tensor{p}, []*tensor.Tensor{g})
			opt.Step([]*tensor.Tensor{p}, []*tensor.Tensor{g})
			for i := range before {
				if p.Data()[i] != before[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: SGD steps are homogeneous in the learning rate: stepping with
// lr and gradient g moves the parameter by exactly -lr*g.
func TestQuickSGDLinearity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		lr := 0.001 + rng.Float64()
		p := tensor.Randn(rng, 0, 1, 4)
		g := tensor.Randn(rng, 0, 1, 4)
		before := append([]float64(nil), p.Data()...)
		NewSGD(lr, 0).Step([]*tensor.Tensor{p}, []*tensor.Tensor{g})
		for i := range before {
			want := before[i] - lr*g.Data()[i]
			if math.Abs(p.Data()[i]-want) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
