// Package optim implements the stochastic optimizers used by the DINAR
// reproduction: plain SGD, Adagrad (the adaptive gradient descent of
// Algorithm 1 in the paper), and the ablation alternatives of §5.11 —
// Adam, AdaMax, RMSProp, and ADGD (adaptive gradient descent without
// descent).
//
// Optimizers update parameter tensors in place from gradient tensors of
// identical shapes. They hold their own per-parameter state and must be used
// with a fixed (params, grads) pairing for their whole lifetime.
package optim

import (
	"math"

	"repro/internal/tensor"
)

// Optimizer applies one update step from gradients to parameters.
type Optimizer interface {
	// Name returns the optimizer's identifier, e.g. "adagrad".
	Name() string
	// Step updates params in place using grads. Both slices must be aligned
	// and stable across calls.
	Step(params, grads []*tensor.Tensor)
	// Reset clears accumulated state (e.g. at the start of a new FL round if
	// desired; DINAR keeps Adagrad state across local epochs of one round but
	// resets between rounds, matching Algorithm 1 where G is initialized per
	// invocation).
	Reset()
}

// SGD is plain stochastic gradient descent with optional momentum.
type SGD struct {
	LR       float64
	Momentum float64

	velocity [][]float64
}

var _ Optimizer = (*SGD)(nil)

// NewSGD returns an SGD optimizer with the given learning rate and momentum.
func NewSGD(lr, momentum float64) *SGD { return &SGD{LR: lr, Momentum: momentum} }

// Name implements Optimizer.
func (s *SGD) Name() string { return "sgd" }

// Step implements Optimizer.
func (s *SGD) Step(params, grads []*tensor.Tensor) {
	if s.Momentum == 0 {
		for i, p := range params {
			pd, gd := p.Data(), grads[i].Data()
			for j := range pd {
				pd[j] -= s.LR * gd[j]
			}
		}
		return
	}
	s.ensureState(&s.velocity, params)
	for i, p := range params {
		pd, gd, v := p.Data(), grads[i].Data(), s.velocity[i]
		for j := range pd {
			v[j] = s.Momentum*v[j] + gd[j]
			pd[j] -= s.LR * v[j]
		}
	}
}

// Reset implements Optimizer.
func (s *SGD) Reset() { s.velocity = nil }

func (s *SGD) ensureState(state *[][]float64, params []*tensor.Tensor) {
	if len(*state) == len(params) {
		return
	}
	*state = makeState(params)
}

// Adagrad is the adaptive gradient descent of DINAR's Algorithm 1
// (lines 8–14): it accumulates squared gradients G and scales the step by
// 1/sqrt(G + eps) with eps = 1e-5, exactly as in the paper.
type Adagrad struct {
	LR  float64
	Eps float64

	accum [][]float64
}

var _ Optimizer = (*Adagrad)(nil)

// NewAdagrad returns an Adagrad optimizer with the paper's epsilon of 1e-5.
func NewAdagrad(lr float64) *Adagrad { return &Adagrad{LR: lr, Eps: 1e-5} }

// Name implements Optimizer.
func (a *Adagrad) Name() string { return "adagrad" }

// Step implements Optimizer.
func (a *Adagrad) Step(params, grads []*tensor.Tensor) {
	if len(a.accum) != len(params) {
		a.accum = makeState(params)
	}
	for i, p := range params {
		pd, gd, acc := p.Data(), grads[i].Data(), a.accum[i]
		for j := range pd {
			g := gd[j]
			acc[j] += g * g // G <- G + grad²  (Algorithm 1, line 13)
			pd[j] -= a.LR * g / math.Sqrt(acc[j]+a.Eps)
		}
	}
}

// Reset implements Optimizer.
func (a *Adagrad) Reset() { a.accum = nil }

// Adam is the Adam optimizer (Kingma & Ba, 2015).
type Adam struct {
	LR, Beta1, Beta2, Eps float64

	t    int
	m, v [][]float64
}

var _ Optimizer = (*Adam)(nil)

// NewAdam returns an Adam optimizer with standard hyper-parameters.
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}
}

// Name implements Optimizer.
func (a *Adam) Name() string { return "adam" }

// Step implements Optimizer.
func (a *Adam) Step(params, grads []*tensor.Tensor) {
	if len(a.m) != len(params) {
		a.m = makeState(params)
		a.v = makeState(params)
		a.t = 0
	}
	a.t++
	bc1 := 1 - math.Pow(a.Beta1, float64(a.t))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for i, p := range params {
		pd, gd, m, v := p.Data(), grads[i].Data(), a.m[i], a.v[i]
		for j := range pd {
			g := gd[j]
			m[j] = a.Beta1*m[j] + (1-a.Beta1)*g
			v[j] = a.Beta2*v[j] + (1-a.Beta2)*g*g
			mh := m[j] / bc1
			vh := v[j] / bc2
			pd[j] -= a.LR * mh / (math.Sqrt(vh) + a.Eps)
		}
	}
}

// Reset implements Optimizer.
func (a *Adam) Reset() { a.m, a.v, a.t = nil, nil, 0 }

// AdaMax is the infinity-norm variant of Adam (Kingma & Ba, 2015).
type AdaMax struct {
	LR, Beta1, Beta2, Eps float64

	t    int
	m, u [][]float64
}

var _ Optimizer = (*AdaMax)(nil)

// NewAdaMax returns an AdaMax optimizer with standard hyper-parameters.
func NewAdaMax(lr float64) *AdaMax {
	return &AdaMax{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}
}

// Name implements Optimizer.
func (a *AdaMax) Name() string { return "adamax" }

// Step implements Optimizer.
func (a *AdaMax) Step(params, grads []*tensor.Tensor) {
	if len(a.m) != len(params) {
		a.m = makeState(params)
		a.u = makeState(params)
		a.t = 0
	}
	a.t++
	bc1 := 1 - math.Pow(a.Beta1, float64(a.t))
	for i, p := range params {
		pd, gd, m, u := p.Data(), grads[i].Data(), a.m[i], a.u[i]
		for j := range pd {
			g := gd[j]
			m[j] = a.Beta1*m[j] + (1-a.Beta1)*g
			u[j] = math.Max(a.Beta2*u[j], math.Abs(g))
			pd[j] -= a.LR / bc1 * m[j] / (u[j] + a.Eps)
		}
	}
}

// Reset implements Optimizer.
func (a *AdaMax) Reset() { a.m, a.u, a.t = nil, nil, 0 }

// RMSProp is the RMSProp optimizer (Tieleman & Hinton).
type RMSProp struct {
	LR, Rho, Eps float64

	sq [][]float64
}

var _ Optimizer = (*RMSProp)(nil)

// NewRMSProp returns an RMSProp optimizer with decay 0.9.
func NewRMSProp(lr float64) *RMSProp { return &RMSProp{LR: lr, Rho: 0.9, Eps: 1e-8} }

// Name implements Optimizer.
func (r *RMSProp) Name() string { return "rmsprop" }

// Step implements Optimizer.
func (r *RMSProp) Step(params, grads []*tensor.Tensor) {
	if len(r.sq) != len(params) {
		r.sq = makeState(params)
	}
	for i, p := range params {
		pd, gd, sq := p.Data(), grads[i].Data(), r.sq[i]
		for j := range pd {
			g := gd[j]
			sq[j] = r.Rho*sq[j] + (1-r.Rho)*g*g
			pd[j] -= r.LR * g / (math.Sqrt(sq[j]) + r.Eps)
		}
	}
}

// Reset implements Optimizer.
func (r *RMSProp) Reset() { r.sq = nil }

// ADGD implements Adaptive Gradient Descent Without Descent
// (Malitsky & Mishchenko, ICML 2020): a parameter-free step size
//
//	λ_k = min( sqrt(1 + θ_{k-1}/2)·λ_{k-1},  ‖x_k − x_{k−1}‖ / (2‖∇f(x_k) − ∇f(x_{k−1})‖) )
//
// with θ_k = λ_k/λ_{k−1}. The first step uses LR0.
type ADGD struct {
	LR0 float64

	lambda, theta float64
	prevParams    [][]float64
	prevGrads     [][]float64
	started       bool
}

var _ Optimizer = (*ADGD)(nil)

// NewADGD returns an ADGD optimizer seeded with initial step size lr0.
func NewADGD(lr0 float64) *ADGD { return &ADGD{LR0: lr0} }

// Name implements Optimizer.
func (a *ADGD) Name() string { return "adgd" }

// Step implements Optimizer.
func (a *ADGD) Step(params, grads []*tensor.Tensor) {
	if !a.started || len(a.prevParams) != len(params) {
		a.prevParams = snapshot(params)
		a.prevGrads = snapshot(grads)
		a.lambda = a.LR0
		a.theta = math.Inf(1)
		for i, p := range params {
			pd, gd := p.Data(), grads[i].Data()
			for j := range pd {
				pd[j] -= a.lambda * gd[j]
			}
		}
		a.started = true
		return
	}
	// Compute ‖x_k − x_{k−1}‖ and ‖∇f(x_k) − ∇f(x_{k−1})‖.
	var dxSq, dgSq float64
	for i, p := range params {
		pd, gd := p.Data(), grads[i].Data()
		pp, pg := a.prevParams[i], a.prevGrads[i]
		for j := range pd {
			dx := pd[j] - pp[j]
			dg := gd[j] - pg[j]
			dxSq += dx * dx
			dgSq += dg * dg
		}
	}
	cand1 := math.Sqrt(1+a.theta/2) * a.lambda
	lambda := cand1
	if dgSq > 0 {
		cand2 := math.Sqrt(dxSq) / (2 * math.Sqrt(dgSq))
		if cand2 < lambda {
			lambda = cand2
		}
	}
	if lambda <= 0 || math.IsNaN(lambda) || math.IsInf(lambda, 0) {
		lambda = a.LR0
	}
	a.theta = lambda / a.lambda
	a.lambda = lambda

	a.prevParams = snapshot(params)
	a.prevGrads = snapshot(grads)
	for i, p := range params {
		pd, gd := p.Data(), grads[i].Data()
		for j := range pd {
			pd[j] -= lambda * gd[j]
		}
	}
}

// Reset implements Optimizer.
func (a *ADGD) Reset() {
	a.prevParams, a.prevGrads = nil, nil
	a.started = false
}

// Lambda returns the current adaptive step size (for tests and diagnostics).
func (a *ADGD) Lambda() float64 { return a.lambda }

func makeState(params []*tensor.Tensor) [][]float64 {
	state := make([][]float64, len(params))
	for i, p := range params {
		state[i] = make([]float64, p.Len())
	}
	return state
}

func snapshot(ts []*tensor.Tensor) [][]float64 {
	out := make([][]float64, len(ts))
	for i, t := range ts {
		out[i] = append([]float64(nil), t.Data()...)
	}
	return out
}

// New constructs an optimizer by name; it is the registry used by the §5.11
// ablation harness. Supported names: sgd, adagrad, adam, adamax, rmsprop,
// adgd. Unknown names return nil.
func New(name string, lr float64) Optimizer {
	switch name {
	case "sgd":
		return NewSGD(lr, 0)
	case "adagrad":
		return NewAdagrad(lr)
	case "adam":
		return NewAdam(lr)
	case "adamax":
		return NewAdaMax(lr)
	case "rmsprop":
		return NewRMSProp(lr)
	case "adgd":
		return NewADGD(lr)
	case "sam":
		return NewSAM(lr, 0.05)
	default:
		return nil
	}
}
