package optim

import (
	"math"
	"testing"

	"repro/internal/tensor"
)

func TestSAMReducesConvexLoss(t *testing.T) {
	q := newQuadratic(21, 16)
	opt := NewSAM(0.1, 0.01)
	params := []*tensor.Tensor{q.x}
	grads := []*tensor.Tensor{q.g}
	initial := q.loss()
	for i := 0; i < 200; i++ {
		q.grad()
		if opt.FirstStep(params, grads) {
			q.grad() // gradient at the perturbed point
		}
		opt.SecondStep(params, grads)
	}
	if final := q.loss(); final >= initial*0.01 {
		t.Fatalf("SAM loss %v -> %v", initial, final)
	}
}

func TestSAMFirstStepPerturbsByRho(t *testing.T) {
	p := tensor.MustFromSlice([]float64{1, 1}, 2)
	g := tensor.MustFromSlice([]float64{3, 4}, 2)
	opt := NewSAM(0.1, 0.5)
	if !opt.FirstStep([]*tensor.Tensor{p}, []*tensor.Tensor{g}) {
		t.Fatal("FirstStep should request a second pass")
	}
	// Perturbation = rho * g/||g|| = 0.5*[0.6, 0.8].
	if math.Abs(p.At(0)-1.3) > 1e-12 || math.Abs(p.At(1)-1.4) > 1e-12 {
		t.Fatalf("perturbed params = %v", p.Data())
	}
	// SecondStep restores and applies -lr*g'.
	g2 := tensor.MustFromSlice([]float64{1, 0}, 2)
	opt.SecondStep([]*tensor.Tensor{p}, []*tensor.Tensor{g2})
	if math.Abs(p.At(0)-0.9) > 1e-12 || math.Abs(p.At(1)-1.0) > 1e-12 {
		t.Fatalf("restored+updated params = %v", p.Data())
	}
}

func TestSAMZeroGradientSkipsSecondPass(t *testing.T) {
	p := tensor.MustFromSlice([]float64{1}, 1)
	g := tensor.New(1)
	opt := NewSAM(0.1, 0.5)
	if opt.FirstStep([]*tensor.Tensor{p}, []*tensor.Tensor{g}) {
		t.Fatal("zero gradient should not request a second pass")
	}
	if p.At(0) != 1 {
		t.Fatal("zero gradient perturbed params")
	}
	opt.SecondStep([]*tensor.Tensor{p}, []*tensor.Tensor{g})
	if p.At(0) != 1 {
		t.Fatal("zero gradient changed params")
	}
}

func TestSAMPlainStepFallback(t *testing.T) {
	p := tensor.MustFromSlice([]float64{1}, 1)
	g := tensor.MustFromSlice([]float64{2}, 1)
	opt := NewSAM(0.1, 0.5)
	opt.Step([]*tensor.Tensor{p}, []*tensor.Tensor{g})
	if math.Abs(p.At(0)-0.8) > 1e-12 {
		t.Fatalf("fallback step = %v", p.At(0))
	}
}

func TestSAMInRegistry(t *testing.T) {
	opt := New("sam", 0.1)
	if opt == nil || opt.Name() != "sam" {
		t.Fatal("sam not registered")
	}
	if _, ok := opt.(TwoPhase); !ok {
		t.Fatal("sam should implement TwoPhase")
	}
}
