package optim

import (
	"math"

	"repro/internal/tensor"
)

// TwoPhase is implemented by optimizers that need a second gradient
// evaluation per step (sharpness-aware minimization). The training loop
// calls FirstStep with the batch gradient, re-evaluates the loss gradient at
// the perturbed parameters, and calls SecondStep with the new gradient.
type TwoPhase interface {
	Optimizer
	// FirstStep perturbs params toward the local worst case and returns true
	// when a second gradient pass is required. Implementations must restore
	// params inside SecondStep.
	FirstStep(params, grads []*tensor.Tensor) bool
	// SecondStep restores the original parameters and applies the update
	// using the gradients measured at the perturbed point.
	SecondStep(params, grads []*tensor.Tensor)
}

// SAM is sharpness-aware minimization (Foret et al.), the optimizer inside
// DP-FedSAM (Shi et al., CVPR 2023 — one of the paper's Table 1 baselines):
//
//	ε = ρ · g / ‖g‖          (ascend to the local worst case)
//	w ← w + ε; g' = ∇L(w+ε)  (second pass)
//	w ← w − ε; base step with g'
//
// The base update is plain SGD with the configured learning rate.
type SAM struct {
	LR  float64
	Rho float64

	eps [][]float64 // the applied perturbation, undone in SecondStep
}

var _ TwoPhase = (*SAM)(nil)

// NewSAM returns a SAM optimizer with neighbourhood radius rho.
func NewSAM(lr, rho float64) *SAM { return &SAM{LR: lr, Rho: rho} }

// Name implements Optimizer.
func (s *SAM) Name() string { return "sam" }

// FirstStep implements TwoPhase: w ← w + ρ·g/‖g‖.
func (s *SAM) FirstStep(params, grads []*tensor.Tensor) bool {
	norm := 0.0
	for _, g := range grads {
		for _, v := range g.Data() {
			norm += v * v
		}
	}
	norm = math.Sqrt(norm)
	if norm == 0 {
		s.eps = nil
		return false
	}
	scale := s.Rho / norm
	s.eps = make([][]float64, len(params))
	for i, p := range params {
		pd, gd := p.Data(), grads[i].Data()
		e := make([]float64, len(pd))
		for j := range pd {
			e[j] = scale * gd[j]
			pd[j] += e[j]
		}
		s.eps[i] = e
	}
	return true
}

// SecondStep implements TwoPhase: restore w and descend with the perturbed
// gradient.
func (s *SAM) SecondStep(params, grads []*tensor.Tensor) {
	for i, p := range params {
		pd, gd := p.Data(), grads[i].Data()
		if s.eps != nil {
			e := s.eps[i]
			for j := range pd {
				pd[j] -= e[j]
			}
		}
		for j := range pd {
			pd[j] -= s.LR * gd[j]
		}
	}
	s.eps = nil
}

// Step implements Optimizer for callers that cannot provide a second pass:
// it degrades to plain SGD.
func (s *SAM) Step(params, grads []*tensor.Tensor) {
	for i, p := range params {
		pd, gd := p.Data(), grads[i].Data()
		for j := range pd {
			pd[j] -= s.LR * gd[j]
		}
	}
}

// Reset implements Optimizer.
func (s *SAM) Reset() { s.eps = nil }
