package faultnet

import (
	"bytes"
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

// pipe returns a wrapped server-side conn (per plan) and the raw client
// side of a real TCP connection.
func pipe(t *testing.T, plan Plan) (server net.Conn, client net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			done <- nil
			return
		}
		done <- c
	}()
	client, err = net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	raw := <-done
	if raw == nil {
		t.Fatal("accept failed")
	}
	t.Cleanup(func() { client.Close(); raw.Close() })
	return WrapConn(raw, plan), client
}

func TestNonePassesThrough(t *testing.T) {
	srv, cli := pipe(t, Plan{})
	if _, wrapped := srv.(*Conn); wrapped {
		t.Fatal("None plan should not wrap")
	}
	go cli.Write([]byte("hello")) //nolint:errcheck
	buf := make([]byte, 5)
	if _, err := io.ReadFull(srv, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "hello" {
		t.Fatalf("got %q", buf)
	}
}

func TestDelaySlowsReads(t *testing.T) {
	srv, cli := pipe(t, Plan{Kind: Delay, Delay: 50 * time.Millisecond})
	go cli.Write([]byte("x")) //nolint:errcheck
	start := time.Now()
	buf := make([]byte, 1)
	if _, err := srv.Read(buf); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 40*time.Millisecond {
		t.Fatalf("read returned after %v, want >= 50ms delay", d)
	}
}

func TestResetTripsOnFirstIO(t *testing.T) {
	srv, cli := pipe(t, Plan{Kind: Reset})
	if _, err := srv.Write([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("want ErrInjected, got %v", err)
	}
	// The peer observes the dead connection.
	cli.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := cli.Read(make([]byte, 1)); err == nil {
		t.Fatal("peer read should fail after reset")
	}
	// Subsequent IO on the tripped conn keeps failing.
	if _, err := srv.Read(make([]byte, 1)); !errors.Is(err, ErrInjected) {
		t.Fatalf("want ErrInjected on reuse, got %v", err)
	}
}

func TestDropAfterBudget(t *testing.T) {
	srv, cli := pipe(t, Plan{Kind: DropAfter, Bytes: 4})
	n, err := srv.Write([]byte("abcdef"))
	if err == nil {
		t.Fatal("write past budget should fail")
	}
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("want ErrInjected, got %v", err)
	}
	if n != 4 {
		t.Fatalf("wrote %d bytes, want the 4-byte budget", n)
	}
	buf := make([]byte, 8)
	cli.SetReadDeadline(time.Now().Add(2 * time.Second))
	got, _ := io.ReadFull(cli, buf[:4])
	if got != 4 || string(buf[:4]) != "abcd" {
		t.Fatalf("peer got %d bytes %q", got, buf[:got])
	}
}

func TestDuplicateRepeatsFirstWrite(t *testing.T) {
	srv, cli := pipe(t, Plan{Kind: Duplicate})
	if _, err := srv.Write([]byte("hi")); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Write([]byte("!")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 5)
	cli.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := io.ReadFull(cli, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, []byte("hihi!")) {
		t.Fatalf("peer got %q, want duplicated first write", buf)
	}
}

func TestRandomScheduleDeterministic(t *testing.T) {
	plans := []Plan{{Kind: None}, {Kind: Reset}, {Kind: Delay, Delay: time.Millisecond}}
	a := RandomSchedule(42, plans...)
	b := RandomSchedule(42, plans...)
	seenKinds := map[Kind]bool{}
	for i := 0; i < 64; i++ {
		if a(i) != b(i) {
			t.Fatalf("schedule not deterministic at %d", i)
		}
		seenKinds[a(i).Kind] = true
	}
	if len(seenKinds) < 2 {
		t.Fatal("schedule never varies")
	}
	if RandomSchedule(7)(0).Kind != None {
		t.Fatal("empty plan list should mean no faults")
	}
}

func TestListenerAppliesScheduleInAcceptOrder(t *testing.T) {
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln := Listen(inner, func(i int) Plan {
		if i == 0 {
			return Plan{Kind: Reset}
		}
		return Plan{}
	})
	defer ln.Close()
	if err := ln.SetDeadline(time.Now().Add(5 * time.Second)); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 2; i++ {
		cli, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		defer cli.Close()
		srv, err := ln.Accept()
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		_, err = srv.Write([]byte("x"))
		if i == 0 && !errors.Is(err, ErrInjected) {
			t.Fatalf("conn 0: want reset, got %v", err)
		}
		if i == 1 && err != nil {
			t.Fatalf("conn 1: want clean write, got %v", err)
		}
	}
	if ln.Accepted() != 2 {
		t.Fatalf("accepted %d, want 2", ln.Accepted())
	}
}

func TestKindString(t *testing.T) {
	for _, k := range []Kind{None, Delay, DropAfter, Reset, Duplicate, Kind(99)} {
		if k.String() == "" {
			t.Fatalf("kind %d renders empty", int(k))
		}
	}
}
