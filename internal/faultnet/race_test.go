package faultnet

import (
	"errors"
	"io"
	"sync"
	"testing"
	"time"
)

// These tests exist for the race detector: a faultnet.Conn sits between
// flnet's reader and writer goroutines, so its fault bookkeeping (trip
// flags, byte budgets, first-write detection) must hold up under
// concurrent Read/Write — `go test -race ./internal/faultnet/` is the
// assertion that matters as much as the explicit checks below.

// TestResetConcurrentReadWrite hammers a Reset conn from a reader and a
// writer goroutine at once: exactly one side trips the RST, every call
// fails with the injected-fault sentinel, and nothing races.
func TestResetConcurrentReadWrite(t *testing.T) {
	server, client := pipe(t, Plan{Kind: Reset})
	defer client.Close()

	var wg sync.WaitGroup
	errs := make([]error, 8)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var err error
			if i%2 == 0 {
				buf := make([]byte, 4)
				_, err = server.Read(buf)
			} else {
				_, err = server.Write([]byte("ping"))
			}
			errs[i] = err
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if !errors.Is(err, ErrInjected) {
			t.Fatalf("call %d on a reset conn returned %v, want ErrInjected", i, err)
		}
	}
}

// TestDropAfterConcurrentWriters races many writers against one byte
// budget: the budget accounting must never let more than Plan.Bytes cross
// the connection, no matter the interleaving.
func TestDropAfterConcurrentWriters(t *testing.T) {
	const budget = 64
	server, client := pipe(t, Plan{Kind: DropAfter, Bytes: budget})

	received := make(chan int, 1)
	go func() {
		n, _ := io.Copy(io.Discard, client)
		received <- int(n)
	}()

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			payload := make([]byte, 32)
			for {
				if _, err := server.Write(payload); err != nil {
					return
				}
			}
		}()
	}
	wg.Wait()
	client.Close()
	if n := <-received; n > budget {
		t.Fatalf("%d bytes crossed a conn budgeted for %d", n, budget)
	}
}

// TestDuplicateConcurrentWriters races writers through the first-write
// duplication: whichever write wins is duplicated exactly once, so the
// peer receives exactly one payload more than was written.
func TestDuplicateConcurrentWriters(t *testing.T) {
	const writers = 8
	server, client := pipe(t, Plan{Kind: Duplicate})

	received := make(chan int, 1)
	go func() {
		n, _ := io.Copy(io.Discard, client)
		received <- int(n)
	}()

	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := server.Write([]byte{0xAB}); err != nil {
				t.Errorf("duplicate write: %v", err)
			}
		}()
	}
	wg.Wait()
	server.Close()
	if n := <-received; n != writers+1 {
		t.Fatalf("received %d bytes from %d one-byte writes, want %d (first write duplicated once)", n, writers, writers+1)
	}
}

// TestDelayConcurrentIO overlaps delayed reads with writes; the plan only
// touches the read path, so writes must proceed unimpeded while a read
// sleeps.
func TestDelayConcurrentIO(t *testing.T) {
	server, client := pipe(t, Plan{Kind: Delay, Delay: 50 * time.Millisecond})

	go client.Write([]byte("data")) //nolint:errcheck // test peer

	done := make(chan struct{})
	go func() {
		defer close(done)
		buf := make([]byte, 4)
		if _, err := io.ReadFull(server, buf); err != nil {
			t.Errorf("delayed read: %v", err)
		}
	}()

	start := time.Now()
	if _, err := server.Write([]byte("pong")); err != nil {
		t.Fatalf("write during delayed read: %v", err)
	}
	if d := time.Since(start); d > 40*time.Millisecond {
		t.Fatalf("write blocked %s behind the read delay", d)
	}
	buf := make([]byte, 4)
	if _, err := io.ReadFull(client, buf); err != nil {
		t.Fatal(err)
	}
	<-done
}
