// Package faultnet wraps net.Listener and net.Conn with a deterministic,
// per-connection fault schedule so tests can prove that the flnet
// federation survives real network failure modes: slow links (Delay),
// connections that die mid-stream (DropAfter), peers that vanish with a
// hard reset (Reset), and protocol-violating peers that replay their first
// frame (Duplicate).
//
// A Schedule maps the index of each accepted connection (0-based, in
// accept order) to a Plan; the same schedule therefore injects the same
// faults on every run. RandomSchedule derives a deterministic schedule
// from a seed for soak-style tests.
package faultnet

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// ErrInjected is wrapped by every error returned from an injected fault,
// so tests can distinguish scheduled faults from real failures.
var ErrInjected = errors.New("faultnet: injected fault")

// Kind selects a fault behavior for one connection.
type Kind int

// Fault kinds.
const (
	// None passes traffic through untouched.
	None Kind = iota
	// Delay sleeps Plan.Delay before every Read, simulating a straggler.
	Delay
	// DropAfter closes the connection once Plan.Bytes total bytes have
	// crossed it (reads plus writes), simulating a mid-stream failure.
	DropAfter
	// Reset closes the connection with a TCP RST (when the underlying
	// conn supports SetLinger) on the first Read or Write.
	Reset
	// Duplicate writes the bytes of the first Write twice, simulating a
	// peer that replays its hello frame.
	Duplicate
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case Delay:
		return "delay"
	case DropAfter:
		return "drop-after"
	case Reset:
		return "reset"
	case Duplicate:
		return "duplicate"
	default:
		return fmt.Sprintf("faultkind(%d)", int(k))
	}
}

// Plan is the fault assigned to one connection.
type Plan struct {
	Kind Kind
	// Delay is the per-Read sleep for Kind Delay.
	Delay time.Duration
	// Bytes is the byte budget for Kind DropAfter.
	Bytes int
}

// Schedule returns the fault plan for the i-th accepted connection.
// Schedules must be pure functions of the index so runs are reproducible.
type Schedule func(conn int) Plan

// NoFaults is the identity schedule.
func NoFaults(int) Plan { return Plan{} }

// RandomSchedule derives a deterministic schedule from seed: connection i
// gets plans[h(seed,i) mod len(plans)]. With no plans it returns NoFaults.
func RandomSchedule(seed int64, plans ...Plan) Schedule {
	if len(plans) == 0 {
		return NoFaults
	}
	return func(conn int) Plan {
		// SplitMix64-style hash keeps the choice independent across
		// indices without shared rng state.
		z := uint64(seed) + uint64(conn)*0x9e3779b97f4a7c15
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		return plans[z%uint64(len(plans))]
	}
}

// Listener wraps an inner listener and applies schedule(i) to the i-th
// accepted connection.
type Listener struct {
	inner    net.Listener
	schedule Schedule

	mu sync.Mutex
	n  int
}

// Listen wraps inner. A nil schedule means NoFaults.
func Listen(inner net.Listener, schedule Schedule) *Listener {
	if schedule == nil {
		schedule = NoFaults
	}
	return &Listener{inner: inner, schedule: schedule}
}

// Accept accepts from the inner listener and wraps the connection with
// the next plan in the schedule.
func (l *Listener) Accept() (net.Conn, error) {
	conn, err := l.inner.Accept()
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	i := l.n
	l.n++
	l.mu.Unlock()
	return WrapConn(conn, l.schedule(i)), nil
}

// Accepted reports how many connections have been accepted so far.
func (l *Listener) Accepted() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.n
}

// Close closes the inner listener.
func (l *Listener) Close() error { return l.inner.Close() }

// Addr returns the inner listener's address.
func (l *Listener) Addr() net.Addr { return l.inner.Addr() }

// SetDeadline forwards to the inner listener when it supports deadlines
// (net.TCPListener does); flnet's accept loop relies on this.
func (l *Listener) SetDeadline(t time.Time) error {
	if d, ok := l.inner.(interface{ SetDeadline(time.Time) error }); ok {
		return d.SetDeadline(t)
	}
	return fmt.Errorf("faultnet: inner listener %T has no deadline support", l.inner)
}

// Conn applies one Plan to a wrapped connection. Safe for one concurrent
// reader plus one concurrent writer, like net.Conn itself.
type Conn struct {
	net.Conn
	plan Plan

	mu      sync.Mutex
	crossed int  // total bytes read + written
	dupDone bool // Duplicate already fired
	tripped bool // Reset/DropAfter already fired
}

// WrapConn applies plan to conn. Plans with Kind None return conn as-is.
func WrapConn(conn net.Conn, plan Plan) net.Conn {
	if plan.Kind == None {
		return conn
	}
	return &Conn{Conn: conn, plan: plan}
}

// trip hard-closes the connection, with a TCP RST when possible, and
// returns the injected error.
func (c *Conn) trip(op string) error {
	if tc, ok := c.Conn.(*net.TCPConn); ok {
		tc.SetLinger(0) //nolint:errcheck // best-effort RST
	}
	c.Conn.Close()
	return fmt.Errorf("faultnet: %s %s: %w", c.plan.Kind, op, ErrInjected)
}

// budget returns how many of n bytes may still cross a DropAfter conn and
// whether the budget is already exhausted.
func (c *Conn) budget(n int) (allowed int, exhausted bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.tripped {
		return 0, true
	}
	remaining := c.plan.Bytes - c.crossed
	if remaining <= 0 {
		c.tripped = true
		return 0, true
	}
	if n > remaining {
		n = remaining
	}
	c.crossed += n
	return n, false
}

// Read implements net.Conn.
func (c *Conn) Read(p []byte) (int, error) {
	switch c.plan.Kind {
	case Delay:
		time.Sleep(c.plan.Delay)
	case Reset:
		c.mu.Lock()
		tripped := c.tripped
		c.tripped = true
		c.mu.Unlock()
		if !tripped {
			return 0, c.trip("read")
		}
		return 0, fmt.Errorf("faultnet: read on reset conn: %w", ErrInjected)
	case DropAfter:
		allowed, exhausted := c.budget(len(p))
		if exhausted {
			return 0, c.trip("read")
		}
		return c.Conn.Read(p[:allowed])
	}
	return c.Conn.Read(p)
}

// Write implements net.Conn.
func (c *Conn) Write(p []byte) (int, error) {
	switch c.plan.Kind {
	case Reset:
		c.mu.Lock()
		tripped := c.tripped
		c.tripped = true
		c.mu.Unlock()
		if !tripped {
			return 0, c.trip("write")
		}
		return 0, fmt.Errorf("faultnet: write on reset conn: %w", ErrInjected)
	case DropAfter:
		allowed, exhausted := c.budget(len(p))
		if exhausted {
			return 0, c.trip("write")
		}
		n, err := c.Conn.Write(p[:allowed])
		if err == nil && allowed < len(p) {
			// The rest of the frame is dropped on the floor; kill the
			// conn so both sides observe the failure.
			return n, c.trip("write")
		}
		return n, err
	case Duplicate:
		c.mu.Lock()
		first := !c.dupDone
		c.dupDone = true
		c.mu.Unlock()
		if first {
			if n, err := c.Conn.Write(p); err != nil {
				return n, err
			}
		}
		return c.Conn.Write(p)
	}
	return c.Conn.Write(p)
}
