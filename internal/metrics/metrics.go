// Package metrics implements the evaluation metrics of the paper's
// Appendix A — attack AUC, model accuracy/utility aggregation, the
// Jensen–Shannon divergence used by the layer-leakage analysis — plus the
// cost meters (wall-clock time and memory) behind Table 3.
package metrics

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrBadInput is returned for degenerate metric inputs.
var ErrBadInput = errors.New("metrics: bad input")

// AUC computes the area under the ROC curve for binary classification given
// real-valued scores (higher = more likely positive) and boolean labels. Ties
// are handled with mid-ranks, making the result equal to the normalized
// Mann–Whitney U statistic. It returns an error when either class is absent.
func AUC(scores []float64, positives []bool) (float64, error) {
	if len(scores) != len(positives) {
		return 0, fmt.Errorf("%w: %d scores for %d labels", ErrBadInput, len(scores), len(positives))
	}
	type item struct {
		score float64
		pos   bool
	}
	items := make([]item, len(scores))
	nPos, nNeg := 0, 0
	for i, s := range scores {
		items[i] = item{score: s, pos: positives[i]}
		if positives[i] {
			nPos++
		} else {
			nNeg++
		}
	}
	if nPos == 0 || nNeg == 0 {
		return 0, fmt.Errorf("%w: need both classes (pos=%d neg=%d)", ErrBadInput, nPos, nNeg)
	}
	sort.Slice(items, func(i, j int) bool { return items[i].score < items[j].score })

	// Assign mid-ranks to ties.
	rankSumPos := 0.0
	i := 0
	for i < len(items) {
		j := i
		for j < len(items) && items[j].score == items[i].score {
			j++
		}
		// ranks i+1..j (1-based); mid-rank:
		mid := float64(i+1+j) / 2
		for k := i; k < j; k++ {
			if items[k].pos {
				rankSumPos += mid
			}
		}
		i = j
	}
	u := rankSumPos - float64(nPos)*float64(nPos+1)/2
	return u / (float64(nPos) * float64(nNeg)), nil
}

// AttackAUC folds an AUC below 0.5 to its mirror above 0.5, matching the
// paper's convention that attack AUC lives in [50%, 100%]: an attacker can
// always invert a classifier that is reliably wrong.
func AttackAUC(scores []float64, positives []bool) (float64, error) {
	auc, err := AUC(scores, positives)
	if err != nil {
		return 0, err
	}
	if auc < 0.5 {
		auc = 1 - auc
	}
	return auc, nil
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Stddev returns the population standard deviation.
func Stddev(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// Histogram bins samples into n equal-width bins over [lo, hi], returning
// normalized frequencies (a probability vector). Samples outside the range
// are clamped into the boundary bins.
func Histogram(samples []float64, lo, hi float64, n int) ([]float64, error) {
	if n <= 0 || hi <= lo {
		return nil, fmt.Errorf("%w: histogram range [%v,%v] bins %d", ErrBadInput, lo, hi, n)
	}
	if len(samples) == 0 {
		return nil, fmt.Errorf("%w: histogram of no samples", ErrBadInput)
	}
	h := make([]float64, n)
	width := (hi - lo) / float64(n)
	for _, s := range samples {
		b := int((s - lo) / width)
		if b < 0 {
			b = 0
		}
		if b >= n {
			b = n - 1
		}
		h[b]++
	}
	inv := 1 / float64(len(samples))
	for i := range h {
		h[i] *= inv
	}
	return h, nil
}

// KLDivergence computes D_KL(p ‖ q) in nats for probability vectors p, q.
// Bins where p is zero contribute nothing; bins where q is zero and p is not
// would be infinite, so q is smoothed by eps.
func KLDivergence(p, q []float64) (float64, error) {
	if len(p) != len(q) {
		return 0, fmt.Errorf("%w: KL of %d vs %d bins", ErrBadInput, len(p), len(q))
	}
	const eps = 1e-12
	d := 0.0
	for i := range p {
		if p[i] <= 0 {
			continue
		}
		d += p[i] * math.Log(p[i]/(q[i]+eps))
	}
	return d, nil
}

// JSDivergence computes the Jensen–Shannon divergence between probability
// vectors p and q in nats: JS = ½KL(p‖m) + ½KL(q‖m) with m = (p+q)/2.
// It is symmetric and bounded by ln 2.
func JSDivergence(p, q []float64) (float64, error) {
	if len(p) != len(q) {
		return 0, fmt.Errorf("%w: JS of %d vs %d bins", ErrBadInput, len(p), len(q))
	}
	m := make([]float64, len(p))
	for i := range p {
		m[i] = (p[i] + q[i]) / 2
	}
	kp, err := KLDivergence(p, m)
	if err != nil {
		return 0, err
	}
	kq, err := KLDivergence(q, m)
	if err != nil {
		return 0, err
	}
	return (kp + kq) / 2, nil
}

// JSDivergenceSamples estimates the Jensen–Shannon divergence between the
// distributions underlying two sample sets by histogramming both over their
// common range with the given number of bins. This is the generalization-gap
// measure of the paper's §3/§4.1: the divergence between member and
// non-member per-layer gradient magnitude distributions.
func JSDivergenceSamples(a, b []float64, bins int) (float64, error) {
	if len(a) == 0 || len(b) == 0 {
		return 0, fmt.Errorf("%w: JS of empty sample sets", ErrBadInput)
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range a {
		lo, hi = math.Min(lo, v), math.Max(hi, v)
	}
	for _, v := range b {
		lo, hi = math.Min(lo, v), math.Max(hi, v)
	}
	if hi <= lo {
		// All samples identical: distributions coincide.
		return 0, nil
	}
	pa, err := Histogram(a, lo, hi, bins)
	if err != nil {
		return 0, err
	}
	pb, err := Histogram(b, lo, hi, bins)
	if err != nil {
		return 0, err
	}
	return JSDivergence(pa, pb)
}

// ROCPoint is one (false-positive rate, true-positive rate) point.
type ROCPoint struct {
	FPR, TPR float64
}

// ROC computes the full ROC curve for binary classification, one point per
// distinct threshold, ordered from (0,0) to (1,1). Plotting front-ends use
// it to render the attack curves whose area is AUC.
func ROC(scores []float64, positives []bool) ([]ROCPoint, error) {
	if len(scores) != len(positives) {
		return nil, fmt.Errorf("%w: %d scores for %d labels", ErrBadInput, len(scores), len(positives))
	}
	type item struct {
		score float64
		pos   bool
	}
	items := make([]item, len(scores))
	nPos, nNeg := 0, 0
	for i, s := range scores {
		items[i] = item{score: s, pos: positives[i]}
		if positives[i] {
			nPos++
		} else {
			nNeg++
		}
	}
	if nPos == 0 || nNeg == 0 {
		return nil, fmt.Errorf("%w: need both classes (pos=%d neg=%d)", ErrBadInput, nPos, nNeg)
	}
	// Descending by score: thresholds sweep from strictest to loosest.
	sort.Slice(items, func(i, j int) bool { return items[i].score > items[j].score })
	curve := []ROCPoint{{FPR: 0, TPR: 0}}
	tp, fp := 0, 0
	for i := 0; i < len(items); {
		j := i
		for j < len(items) && items[j].score == items[i].score {
			if items[j].pos {
				tp++
			} else {
				fp++
			}
			j++
		}
		curve = append(curve, ROCPoint{
			FPR: float64(fp) / float64(nNeg),
			TPR: float64(tp) / float64(nPos),
		})
		i = j
	}
	return curve, nil
}
