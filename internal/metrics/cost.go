package metrics

import (
	"runtime"
	"sync"
	"time"
)

// CostMeter accumulates the cost metrics of the paper's Table 3: client-side
// training duration per FL round, server-side aggregation duration, and peak
// memory in use during client work. It is safe for concurrent use (clients
// train in parallel goroutines).
type CostMeter struct {
	mu sync.Mutex

	clientTrain []time.Duration
	serverAgg   []time.Duration
	peakAllocB  uint64
	extraBytes  uint64 // defense-attributed buffer bytes (noise, masks, ...)
}

// NewCostMeter returns an empty cost meter.
func NewCostMeter() *CostMeter { return &CostMeter{} }

// AddClientTrain records the duration of one client's local training for one
// round.
func (c *CostMeter) AddClientTrain(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.clientTrain = append(c.clientTrain, d)
}

// AddServerAgg records the duration of one server aggregation.
func (c *CostMeter) AddServerAgg(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.serverAgg = append(c.serverAgg, d)
}

// AddDefenseBytes attributes additional buffer memory to the active defense
// (e.g. per-parameter noise vectors, compression residuals, pairwise masks).
func (c *CostMeter) AddDefenseBytes(n uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.extraBytes += n
}

// SampleMemory reads the runtime heap-in-use size and keeps the maximum seen.
// Call it at memory-intensive points (after local training, after defense
// application).
func (c *CostMeter) SampleMemory() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	c.mu.Lock()
	defer c.mu.Unlock()
	if ms.HeapInuse > c.peakAllocB {
		c.peakAllocB = ms.HeapInuse
	}
}

// CostReport is an immutable snapshot of a CostMeter.
type CostReport struct {
	// MeanClientTrain is the mean per-round client training duration.
	MeanClientTrain time.Duration
	// MeanServerAgg is the mean server aggregation duration.
	MeanServerAgg time.Duration
	// PeakAllocBytes is the peak sampled heap-in-use.
	PeakAllocBytes uint64
	// DefenseBytes is the defense-attributed buffer memory.
	DefenseBytes uint64
}

// Report returns the current snapshot.
func (c *CostMeter) Report() CostReport {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CostReport{
		MeanClientTrain: meanDuration(c.clientTrain),
		MeanServerAgg:   meanDuration(c.serverAgg),
		PeakAllocBytes:  c.peakAllocB,
		DefenseBytes:    c.extraBytes,
	}
}

func meanDuration(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	var total time.Duration
	for _, d := range ds {
		total += d
	}
	return total / time.Duration(len(ds))
}

// Overhead returns the relative overhead of `got` versus `baseline` as a
// percentage (e.g. +35 means 35% slower). A zero baseline yields 0.
func Overhead(got, baseline time.Duration) float64 {
	if baseline == 0 {
		return 0
	}
	return (float64(got)/float64(baseline) - 1) * 100
}

// OverheadBytes is Overhead for byte counts.
func OverheadBytes(got, baseline uint64) float64 {
	if baseline == 0 {
		return 0
	}
	return (float64(got)/float64(baseline) - 1) * 100
}
