package metrics

import (
	"runtime"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// Phase labels a memory sampling point in the round pipeline.
type Phase int

const (
	// PhaseTrain samples are taken right after one client's local
	// training (plus its client-side defense work).
	PhaseTrain Phase = iota
	// PhaseAggregate samples are taken right after the server's
	// defense-aggregation step.
	PhaseAggregate
	numPhases
)

// Heap telemetry: the latest sampled heap-in-use plus per-phase
// high-water marks, exposed on /metrics so a live federation's memory can
// be watched without a CostMeter.
var (
	telHeapInuse = telemetry.NewGauge("dinar_heap_inuse_bytes",
		"heap in use at the most recent cost-meter sample (process-global)")
	telHeapPeakTrain = telemetry.NewGauge("dinar_heap_train_peak_bytes",
		"peak heap in use sampled at client-training points (process-global)")
	telHeapPeakAgg = telemetry.NewGauge("dinar_heap_aggregate_peak_bytes",
		"peak heap in use sampled at server-aggregation points (process-global)")
)

// CostMeter accumulates the cost metrics of the paper's Table 3: client-side
// training duration per FL round, server-side aggregation duration, and peak
// memory in use. It is safe for concurrent use (clients train in parallel
// goroutines).
//
// Memory attribution caveat: every sample reads runtime.MemStats.HeapInuse,
// which is process-global. With parallel clients a train-phase sample
// therefore includes every concurrently-training sibling's buffers, so the
// per-phase peaks are an upper bound on any single client's footprint, not
// a per-client measurement — exact per-client attribution is impossible
// from a shared Go heap. The per-phase split (train vs aggregate) is the
// finest attribution the process-level counter supports; Table 3 reports
// it with this caveat documented.
type CostMeter struct {
	mu sync.Mutex

	clientTrain []time.Duration
	serverAgg   []time.Duration
	peakAllocB  uint64
	peakPhaseB  [numPhases]uint64
	extraBytes  uint64 // defense-attributed buffer bytes (noise, masks, ...)
}

// NewCostMeter returns an empty cost meter.
func NewCostMeter() *CostMeter { return &CostMeter{} }

// AddClientTrain records the duration of one client's local training for one
// round.
func (c *CostMeter) AddClientTrain(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.clientTrain = append(c.clientTrain, d)
}

// AddServerAgg records the duration of one server aggregation.
func (c *CostMeter) AddServerAgg(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.serverAgg = append(c.serverAgg, d)
}

// AddDefenseBytes attributes additional buffer memory to the active defense
// (e.g. per-parameter noise vectors, compression residuals, pairwise masks).
func (c *CostMeter) AddDefenseBytes(n uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.extraBytes += n
}

// SamplePhase reads the runtime heap-in-use size, attributes the sample to
// phase, and keeps the per-phase and overall maxima (also mirrored to the
// telemetry gauges). See the CostMeter doc for the process-global
// semantics of the sample.
func (c *CostMeter) SamplePhase(p Phase) {
	if p < 0 || p >= numPhases {
		return
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	telHeapInuse.Set(int64(ms.HeapInuse))
	switch p {
	case PhaseTrain:
		telHeapPeakTrain.SetMax(int64(ms.HeapInuse))
	case PhaseAggregate:
		telHeapPeakAgg.SetMax(int64(ms.HeapInuse))
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if ms.HeapInuse > c.peakAllocB {
		c.peakAllocB = ms.HeapInuse
	}
	if ms.HeapInuse > c.peakPhaseB[p] {
		c.peakPhaseB[p] = ms.HeapInuse
	}
}

// SampleMemory records a train-phase sample. Kept for callers that predate
// per-phase attribution; new call sites should use SamplePhase.
func (c *CostMeter) SampleMemory() { c.SamplePhase(PhaseTrain) }

// CostReport is an immutable snapshot of a CostMeter.
type CostReport struct {
	// MeanClientTrain is the mean per-round client training duration.
	MeanClientTrain time.Duration
	// MeanServerAgg is the mean server aggregation duration.
	MeanServerAgg time.Duration
	// PeakAllocBytes is the peak sampled heap-in-use across all phases.
	// Process-global: with parallel clients it includes concurrently
	// training siblings (see the CostMeter doc).
	PeakAllocBytes uint64
	// PeakTrainBytes / PeakAggBytes split the peak by sampling phase,
	// with the same process-global caveat.
	PeakTrainBytes uint64
	PeakAggBytes   uint64
	// DefenseBytes is the defense-attributed buffer memory. Unlike the
	// heap peaks this is exact: defenses account their own allocations.
	DefenseBytes uint64
}

// Report returns the current snapshot.
func (c *CostMeter) Report() CostReport {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CostReport{
		MeanClientTrain: meanDuration(c.clientTrain),
		MeanServerAgg:   meanDuration(c.serverAgg),
		PeakAllocBytes:  c.peakAllocB,
		PeakTrainBytes:  c.peakPhaseB[PhaseTrain],
		PeakAggBytes:    c.peakPhaseB[PhaseAggregate],
		DefenseBytes:    c.extraBytes,
	}
}

func meanDuration(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	var total time.Duration
	for _, d := range ds {
		total += d
	}
	return total / time.Duration(len(ds))
}

// Overhead returns the relative overhead of `got` versus `baseline` as a
// percentage (e.g. +35 means 35% slower). A zero baseline yields 0.
func Overhead(got, baseline time.Duration) float64 {
	if baseline == 0 {
		return 0
	}
	return (float64(got)/float64(baseline) - 1) * 100
}

// OverheadBytes is Overhead for byte counts.
func OverheadBytes(got, baseline uint64) float64 {
	if baseline == 0 {
		return 0
	}
	return (float64(got)/float64(baseline) - 1) * 100
}
