package metrics

import (
	"fmt"
	"strings"
)

// Table renders aligned plain-text tables for experiment reports (the rows
// the benchmark harness prints for each paper table/figure).
type Table struct {
	title   string
	headers []string
	rows    [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// AddRow appends a row; cells are rendered with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, row)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		b.WriteString(t.title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(widths) {
				for p := len(c); p < widths[i]; p++ {
					b.WriteByte(' ')
				}
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	sep := make([]string, len(t.headers))
	for i, w := range widths {
		sep[i] = strings.Repeat("-", w)
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}
