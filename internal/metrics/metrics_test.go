package metrics

import (
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestAUCPerfectSeparation(t *testing.T) {
	scores := []float64{0.9, 0.8, 0.2, 0.1}
	labels := []bool{true, true, false, false}
	auc, err := AUC(scores, labels)
	if err != nil {
		t.Fatal(err)
	}
	if auc != 1 {
		t.Fatalf("AUC = %v, want 1", auc)
	}
}

func TestAUCInvertedSeparation(t *testing.T) {
	scores := []float64{0.1, 0.2, 0.8, 0.9}
	labels := []bool{true, true, false, false}
	auc, err := AUC(scores, labels)
	if err != nil {
		t.Fatal(err)
	}
	if auc != 0 {
		t.Fatalf("AUC = %v, want 0", auc)
	}
	folded, err := AttackAUC(scores, labels)
	if err != nil {
		t.Fatal(err)
	}
	if folded != 1 {
		t.Fatalf("AttackAUC = %v, want 1 (folded)", folded)
	}
}

func TestAUCAllTied(t *testing.T) {
	scores := []float64{0.5, 0.5, 0.5, 0.5}
	labels := []bool{true, false, true, false}
	auc, err := AUC(scores, labels)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(auc-0.5) > 1e-12 {
		t.Fatalf("AUC with ties = %v, want 0.5", auc)
	}
}

func TestAUCKnownMixedValue(t *testing.T) {
	// scores: pos {3, 1}, neg {2, 0}. Pairs: (3>2),(3>0),(1<2),(1>0) => 3/4.
	scores := []float64{3, 1, 2, 0}
	labels := []bool{true, true, false, false}
	auc, err := AUC(scores, labels)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(auc-0.75) > 1e-12 {
		t.Fatalf("AUC = %v, want 0.75", auc)
	}
}

func TestAUCErrors(t *testing.T) {
	if _, err := AUC([]float64{1}, []bool{true, false}); !errors.Is(err, ErrBadInput) {
		t.Fatalf("mismatched lengths: %v", err)
	}
	if _, err := AUC([]float64{1, 2}, []bool{true, true}); !errors.Is(err, ErrBadInput) {
		t.Fatalf("single class: %v", err)
	}
	if _, err := AttackAUC([]float64{1, 2}, []bool{false, false}); !errors.Is(err, ErrBadInput) {
		t.Fatalf("AttackAUC single class: %v", err)
	}
}

// Property: AUC is invariant under strictly monotone transforms of scores.
func TestQuickAUCMonotoneInvariance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(40)
		scores := make([]float64, n)
		labels := make([]bool, n)
		labels[0], labels[1] = true, false // guarantee both classes
		for i := range scores {
			scores[i] = rng.NormFloat64()
			if i >= 2 {
				labels[i] = rng.Float64() < 0.5
			}
		}
		a1, err := AUC(scores, labels)
		if err != nil {
			return false
		}
		transformed := make([]float64, n)
		for i, s := range scores {
			transformed[i] = math.Exp(s)*3 + 1
		}
		a2, err := AUC(transformed, labels)
		if err != nil {
			return false
		}
		return math.Abs(a1-a2) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: flipping all labels maps AUC to 1-AUC.
func TestQuickAUCSymmetry(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(40)
		scores := make([]float64, n)
		labels := make([]bool, n)
		flipped := make([]bool, n)
		labels[0], labels[1] = true, false
		for i := range scores {
			scores[i] = rng.NormFloat64()
			if i >= 2 {
				labels[i] = rng.Float64() < 0.5
			}
			flipped[i] = !labels[i]
		}
		a1, err := AUC(scores, labels)
		if err != nil {
			return false
		}
		a2, err := AUC(scores, flipped)
		if err != nil {
			return false
		}
		return math.Abs(a1+a2-1) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMeanStddev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if Mean(xs) != 5 {
		t.Fatalf("Mean = %v", Mean(xs))
	}
	if Stddev(xs) != 2 {
		t.Fatalf("Stddev = %v", Stddev(xs))
	}
	if Mean(nil) != 0 || Stddev(nil) != 0 {
		t.Fatal("empty stats should be 0")
	}
}

func TestHistogram(t *testing.T) {
	h, err := Histogram([]float64{0, 0.5, 1, 2, -1}, 0, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	// 0 and -1 (clamped) -> bin 0; 0.5 -> bin 1; 1, 2 (clamped) -> bin 1.
	if math.Abs(h[0]-0.4) > 1e-12 || math.Abs(h[1]-0.6) > 1e-12 {
		t.Fatalf("histogram = %v", h)
	}
	if _, err := Histogram(nil, 0, 1, 2); !errors.Is(err, ErrBadInput) {
		t.Fatalf("empty histogram: %v", err)
	}
	if _, err := Histogram([]float64{1}, 1, 0, 2); !errors.Is(err, ErrBadInput) {
		t.Fatalf("bad range: %v", err)
	}
	if _, err := Histogram([]float64{1}, 0, 1, 0); !errors.Is(err, ErrBadInput) {
		t.Fatalf("no bins: %v", err)
	}
}

func TestJSDivergenceProperties(t *testing.T) {
	p := []float64{0.5, 0.5, 0}
	q := []float64{0, 0.5, 0.5}
	js, err := JSDivergence(p, q)
	if err != nil {
		t.Fatal(err)
	}
	if js <= 0 || js > math.Log(2)+1e-9 {
		t.Fatalf("JS = %v, want in (0, ln2]", js)
	}
	// Symmetry.
	js2, err := JSDivergence(q, p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(js-js2) > 1e-12 {
		t.Fatal("JS not symmetric")
	}
	// Identity of indiscernibles.
	same, err := JSDivergence(p, p)
	if err != nil {
		t.Fatal(err)
	}
	if same > 1e-12 {
		t.Fatalf("JS(p,p) = %v", same)
	}
	// Disjoint supports maximize JS at ln 2.
	a := []float64{1, 0}
	b := []float64{0, 1}
	maxJS, err := JSDivergence(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(maxJS-math.Log(2)) > 1e-9 {
		t.Fatalf("disjoint JS = %v, want ln2", maxJS)
	}
	if _, err := JSDivergence(p, []float64{1}); !errors.Is(err, ErrBadInput) {
		t.Fatalf("length mismatch: %v", err)
	}
}

func TestKLDivergence(t *testing.T) {
	p := []float64{0.5, 0.5}
	q := []float64{0.9, 0.1}
	kl, err := KLDivergence(p, q)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.5*math.Log(0.5/0.9) + 0.5*math.Log(0.5/0.1)
	if math.Abs(kl-want) > 1e-9 {
		t.Fatalf("KL = %v, want %v", kl, want)
	}
	if _, err := KLDivergence(p, []float64{1}); !errors.Is(err, ErrBadInput) {
		t.Fatalf("length mismatch: %v", err)
	}
}

func TestJSDivergenceSamples(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := make([]float64, 5000)
	b := make([]float64, 5000)
	c := make([]float64, 5000)
	for i := range a {
		a[i] = rng.NormFloat64()
		b[i] = rng.NormFloat64()
		c[i] = rng.NormFloat64() + 3 // shifted distribution
	}
	near, err := JSDivergenceSamples(a, b, 30)
	if err != nil {
		t.Fatal(err)
	}
	far, err := JSDivergenceSamples(a, c, 30)
	if err != nil {
		t.Fatal(err)
	}
	if near >= far {
		t.Fatalf("JS(same)=%v should be < JS(shifted)=%v", near, far)
	}
	// Identical constant samples -> zero divergence.
	zero, err := JSDivergenceSamples([]float64{1, 1}, []float64{1, 1}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if zero != 0 {
		t.Fatalf("constant JS = %v", zero)
	}
	if _, err := JSDivergenceSamples(nil, a, 10); !errors.Is(err, ErrBadInput) {
		t.Fatalf("empty input: %v", err)
	}
}

func TestCostMeter(t *testing.T) {
	m := NewCostMeter()
	m.AddClientTrain(100 * time.Millisecond)
	m.AddClientTrain(200 * time.Millisecond)
	m.AddServerAgg(10 * time.Millisecond)
	m.AddDefenseBytes(1024)
	m.SampleMemory()
	r := m.Report()
	if r.MeanClientTrain != 150*time.Millisecond {
		t.Fatalf("MeanClientTrain = %v", r.MeanClientTrain)
	}
	if r.MeanServerAgg != 10*time.Millisecond {
		t.Fatalf("MeanServerAgg = %v", r.MeanServerAgg)
	}
	if r.PeakAllocBytes == 0 {
		t.Fatal("PeakAllocBytes not sampled")
	}
	if r.DefenseBytes != 1024 {
		t.Fatalf("DefenseBytes = %d", r.DefenseBytes)
	}
}

func TestCostMeterEmpty(t *testing.T) {
	r := NewCostMeter().Report()
	if r.MeanClientTrain != 0 || r.MeanServerAgg != 0 {
		t.Fatal("empty meter should report zeros")
	}
}

func TestOverhead(t *testing.T) {
	if o := Overhead(135*time.Millisecond, 100*time.Millisecond); math.Abs(o-35) > 1e-9 {
		t.Fatalf("Overhead = %v, want 35", o)
	}
	if Overhead(time.Second, 0) != 0 {
		t.Fatal("zero baseline should yield 0")
	}
	if o := OverheadBytes(200, 100); math.Abs(o-100) > 1e-9 {
		t.Fatalf("OverheadBytes = %v", o)
	}
	if OverheadBytes(5, 0) != 0 {
		t.Fatal("zero byte baseline should yield 0")
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Table 3: overheads", "Defense", "Train", "Agg")
	tb.AddRow("WDP", "+35%", "+0%")
	tb.AddRow("DINAR", 0.0, 0.0)
	out := tb.String()
	if !strings.Contains(out, "Table 3") || !strings.Contains(out, "WDP") {
		t.Fatalf("table output missing content:\n%s", out)
	}
	if !strings.Contains(out, "0") {
		t.Fatalf("float formatting missing:\n%s", out)
	}
	if tb.NumRows() != 2 {
		t.Fatalf("NumRows = %d", tb.NumRows())
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("table has %d lines:\n%s", len(lines), out)
	}
}

func TestROCPerfectClassifier(t *testing.T) {
	curve, err := ROC([]float64{0.9, 0.8, 0.2, 0.1}, []bool{true, true, false, false})
	if err != nil {
		t.Fatal(err)
	}
	// (0,0) -> (0,0.5) -> (0,1) -> (0.5,1) -> (1,1)
	if len(curve) != 5 {
		t.Fatalf("curve = %v", curve)
	}
	if curve[2].FPR != 0 || curve[2].TPR != 1 {
		t.Fatalf("perfect classifier curve wrong: %v", curve)
	}
	last := curve[len(curve)-1]
	if last.FPR != 1 || last.TPR != 1 {
		t.Fatalf("curve should end at (1,1): %v", last)
	}
}

func TestROCMatchesAUC(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	n := 200
	scores := make([]float64, n)
	labels := make([]bool, n)
	labels[0], labels[1] = true, false
	for i := range scores {
		scores[i] = rng.NormFloat64()
		if i >= 2 {
			labels[i] = rng.Float64() < 0.5
		}
		if labels[i] {
			scores[i] += 0.8
		}
	}
	curve, err := ROC(scores, labels)
	if err != nil {
		t.Fatal(err)
	}
	// Trapezoidal area under the curve must equal the rank-based AUC.
	area := 0.0
	for i := 1; i < len(curve); i++ {
		area += (curve[i].FPR - curve[i-1].FPR) * (curve[i].TPR + curve[i-1].TPR) / 2
	}
	auc, err := AUC(scores, labels)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(area-auc) > 1e-9 {
		t.Fatalf("ROC area %v != AUC %v", area, auc)
	}
}

func TestROCErrors(t *testing.T) {
	if _, err := ROC([]float64{1}, []bool{true, false}); !errors.Is(err, ErrBadInput) {
		t.Fatalf("mismatched lengths: %v", err)
	}
	if _, err := ROC([]float64{1, 2}, []bool{true, true}); !errors.Is(err, ErrBadInput) {
		t.Fatalf("single class: %v", err)
	}
}
