package tensor

import (
	"math"
	"math/rand"
	"runtime/debug"
	"testing"

	"repro/internal/parallel"
)

// restoreGEMM resets the blocked-GEMM tuning knobs mutated by a test.
func restoreGEMM(t testing.TB) {
	t.Helper()
	mc, nc := gemmMC, gemmNC
	mv := gemmMinVolume
	t.Cleanup(func() {
		SetGEMMBlocking(mc, nc)
		SetGEMMMinVolume(mv)
	})
}

// naiveGEMM computes the reference result with the original row kernels,
// serially, for the given layout ("nn", "ta", "tb").
func naiveGEMM(out, a, b []float64, m, k, n int, layout string) {
	switch layout {
	case "nn":
		matMulRows(out, a, b, 0, m, k, n)
	case "ta":
		matMulTransACols(out, a, b, 0, m, m, k, n)
	case "tb":
		matMulTransBRows(out, a, b, 0, m, k, n)
	default:
		panic("unknown layout " + layout)
	}
}

// gemmOperands builds the (a, b) storage for a layout: "nn" wants a m×k and
// b k×n; "ta" stores aᵀ (k×m); "tb" stores bᵀ (n×k). A quarter of a's
// elements are forced to exact zero so the skip path is exercised.
func gemmOperands(rng *rand.Rand, m, k, n int, layout string) (a, b []float64) {
	switch layout {
	case "nn":
		a, b = randSlice(rng, m*k), randSlice(rng, k*n)
	case "ta":
		a, b = randSlice(rng, k*m), randSlice(rng, k*n)
	case "tb":
		a, b = randSlice(rng, m*k), randSlice(rng, n*k)
	}
	for i := range a {
		if rng.Intn(4) == 0 {
			a[i] = 0
		}
	}
	return a, b
}

func randSlice(rng *rand.Rand, n int) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = rng.NormFloat64()
	}
	return s
}

var gemmLayouts = []string{"nn", "ta", "tb"}

func runBlocked(out, a, b []float64, m, k, n int, layout string) {
	switch layout {
	case "nn":
		gemmBlocked(out, a, b, m, k, n, false, false)
	case "ta":
		gemmBlocked(out, a, b, m, k, n, true, false)
	case "tb":
		gemmBlocked(out, a, b, m, k, n, false, true)
	}
}

func compareBits(t *testing.T, name string, m, k, n int, got, want []float64) {
	t.Helper()
	for i := range want {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s %dx%dx%d: out[%d] = %x (%v), naive %x (%v)",
				name, m, k, n, i,
				math.Float64bits(got[i]), got[i],
				math.Float64bits(want[i]), want[i])
		}
	}
}

// TestBlockedGEMMBitIdenticalEdgeShapes pits the blocked kernels against the
// naive reference on every combination of the register-tile edge sizes
// (1, MR−1, MR, MR+1) and primes that leave ragged panels at every blocking
// level, for all three layouts. Results must be bit-identical: the blocked
// path reorders loops and packs panels but never regroups an element's
// k-ascending accumulation.
func TestBlockedGEMMBitIdenticalEdgeShapes(t *testing.T) {
	restoreGEMM(t)
	SetGEMMMinVolume(1) // every shape takes the blocked path
	dims := []int{1, gemmMR - 1, gemmMR, gemmMR + 1, 7, 13, 31, 97}
	rng := rand.New(rand.NewSource(23))
	for _, m := range dims {
		for _, k := range dims {
			for _, n := range dims {
				for _, layout := range gemmLayouts {
					a, b := gemmOperands(rng, m, k, n, layout)
					want := make([]float64, m*n)
					naiveGEMM(want, a, b, m, k, n, layout)
					got := make([]float64, m*n)
					for i := range got {
						got[i] = 99 // stale contents must be overwritten
					}
					runBlocked(got, a, b, m, k, n, layout)
					compareBits(t, layout, m, k, n, got, want)
				}
			}
		}
	}
}

// TestBlockedGEMMBitIdenticalBlockParams forces pathologically small and
// misaligned (MC, NC) blocks so every blocking boundary — partial A panels,
// partial B panels, NC windows cutting mid-panel — is crossed within one
// multiply, and checks bit-identity against the naive reference.
func TestBlockedGEMMBitIdenticalBlockParams(t *testing.T) {
	restoreGEMM(t)
	SetGEMMMinVolume(1)
	rng := rand.New(rand.NewSource(29))
	params := []struct{ mc, nc int }{
		{gemmMR, gemmNR}, // minimum legal blocks: one tile each
		{8, 12},
		{16, 64},
		{1, 1},    // clamped up to one tile
		{5, 9},     // nc rounded up to a panel multiple
		{512, 512}, // blocks larger than the matrix
	}
	const m, k, n = 37, 29, 33
	for _, layout := range gemmLayouts {
		a, b := gemmOperands(rng, m, k, n, layout)
		want := make([]float64, m*n)
		naiveGEMM(want, a, b, m, k, n, layout)
		for _, p := range params {
			SetGEMMBlocking(p.mc, p.nc)
			got := make([]float64, m*n)
			runBlocked(got, a, b, m, k, n, layout)
			compareBits(t, layout, m, k, n, got, want)
		}
	}
}

// TestBlockedGEMMBitIdenticalNonFinite checks that the zero-skip convention
// survives blocking for non-finite inputs: a zero A element must skip its
// products (so 0×Inf never manufactures a NaN that the naive kernel would
// not), while Inf/NaN against nonzero elements must propagate identically.
func TestBlockedGEMMBitIdenticalNonFinite(t *testing.T) {
	restoreGEMM(t)
	SetGEMMMinVolume(1)
	rng := rand.New(rand.NewSource(31))
	const m, k, n = 9, 11, 10
	for _, layout := range gemmLayouts {
		a, b := gemmOperands(rng, m, k, n, layout)
		a[1] = math.Inf(1)
		a[len(a)/2] = math.NaN()
		b[0] = math.Inf(-1)
		b[len(b)/3] = math.NaN()
		b[len(b)-1] = math.Inf(1)
		want := make([]float64, m*n)
		naiveGEMM(want, a, b, m, k, n, layout)
		got := make([]float64, m*n)
		runBlocked(got, a, b, m, k, n, layout)
		compareBits(t, layout, m, k, n, got, want)
	}
}

// TestBlockedGEMMPoolParallelBitIdentical checks that the blocked path, like
// the naive kernels, is bit-identical between a serial pool and any worker
// count: chunk boundaries are deterministic and every output element is
// computed wholly inside one chunk.
func TestBlockedGEMMPoolParallelBitIdentical(t *testing.T) {
	restoreGEMM(t)
	restorePool(t)
	SetGEMMMinVolume(1)
	parallel.SetMinWork(64) // force parallel paths on small shapes
	shapes := []struct{ m, k, n int }{
		{3, 200, 1},
		{7, 11, 13},
		{31, 17, 29},
		{64, 33, 12},
	}
	rng := rand.New(rand.NewSource(37))
	for _, s := range shapes {
		for _, layout := range gemmLayouts {
			a, b := gemmOperands(rng, s.m, s.k, s.n, layout)
			parallel.SetWorkers(1)
			want := make([]float64, s.m*s.n)
			runBlocked(want, a, b, s.m, s.k, s.n, layout)
			for _, workers := range []int{2, 4, 7} {
				parallel.SetWorkers(workers)
				got := make([]float64, s.m*s.n)
				runBlocked(got, a, b, s.m, s.k, s.n, layout)
				compareBits(t, layout, s.m, s.k, s.n, got, want)
			}
		}
	}
}

// TestBlockedGEMMDispatchThreshold checks the volume dispatch: shapes under
// gemmMinVolume stay on the naive kernels (the alloc tests depend on tiny
// shapes never paying for packing), larger shapes produce identical results
// through the public entry points either way.
func TestBlockedGEMMDispatchThreshold(t *testing.T) {
	restoreGEMM(t)
	rng := rand.New(rand.NewSource(41))
	// 40×41×42 = 68880 sits above the default threshold; verify the public
	// entry point agrees with the naive reference at a shape that actually
	// dispatches to the blocked path under production settings.
	const m, k, n = 40, 41, 42
	if m*k*n < gemmMinVolume {
		t.Fatalf("test shape below gemmMinVolume=%d; pick a bigger one", gemmMinVolume)
	}
	a := Randn(rng, 0, 1, m, k)
	b := Randn(rng, 0, 1, k, n)
	want := make([]float64, m*n)
	naiveGEMM(want, a.Data(), b.Data(), m, k, n, "nn")
	out := New(m, n)
	if err := MatMulInto(out, a, b); err != nil {
		t.Fatal(err)
	}
	compareBits(t, "dispatch", m, k, n, out.Data(), want)
}

// TestBlockedGEMMAllocFree checks the steady-state allocation contract at the
// tracked bench shapes: pack buffers come from the pool and grow only, so a
// warmed-up multiply performs zero allocations. GC is disabled around the
// measurement so the sync.Pool cannot be drained mid-run.
func TestBlockedGEMMAllocFree(t *testing.T) {
	restoreGEMM(t)
	rng := rand.New(rand.NewSource(43))
	const m, k, n = 256, 128, 64
	if m*k*n < gemmMinVolume {
		t.Fatalf("bench shape below gemmMinVolume=%d", gemmMinVolume)
	}
	a := randSlice(rng, m*k)
	b := randSlice(rng, k*n)
	at := randSlice(rng, k*m)
	bt := randSlice(rng, n*k)
	out := make([]float64, m*n)
	runs := []struct {
		name string
		f    func()
	}{
		{"nn", func() { gemmBlocked(out, a, b, m, k, n, false, false) }},
		{"ta", func() { gemmBlocked(out, at, b, m, k, n, true, false) }},
		{"tb", func() { gemmBlocked(out, a, bt, m, k, n, false, true) }},
	}
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	for _, r := range runs {
		r.f() // warm the pack-buffer pool
		if avg := testing.AllocsPerRun(20, r.f); avg != 0 {
			t.Errorf("%s: %v allocs/op in steady state, want 0", r.name, avg)
		}
	}
}

// FuzzBlockedGEMM fuzzes the shape dispatch: arbitrary (m, k, n, layout,
// seed) must produce bit-identical results between the blocked path and the
// naive reference, including shapes that straddle the volume threshold and
// leave ragged panels everywhere.
func FuzzBlockedGEMM(f *testing.F) {
	f.Add(uint8(1), uint8(1), uint8(1), uint8(0), int64(1))
	f.Add(uint8(4), uint8(4), uint8(4), uint8(1), int64(2))
	f.Add(uint8(5), uint8(3), uint8(9), uint8(2), int64(3))
	f.Add(uint8(47), uint8(31), uint8(33), uint8(0), int64(4))
	f.Fuzz(func(t *testing.T, mu, ku, nu, lu uint8, seed int64) {
		m := int(mu)%48 + 1
		k := int(ku)%48 + 1
		n := int(nu)%48 + 1
		layout := gemmLayouts[int(lu)%len(gemmLayouts)]
		prev := SetGEMMMinVolume(1)
		defer SetGEMMMinVolume(prev)
		rng := rand.New(rand.NewSource(seed))
		a, b := gemmOperands(rng, m, k, n, layout)
		want := make([]float64, m*n)
		naiveGEMM(want, a, b, m, k, n, layout)
		got := make([]float64, m*n)
		runBlocked(got, a, b, m, k, n, layout)
		for i := range want {
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				t.Fatalf("%s %dx%dx%d seed %d: out[%d] = %v, naive %v",
					layout, m, k, n, seed, i, got[i], want[i])
			}
		}
	})
}
