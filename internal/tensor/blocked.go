package tensor

import (
	"sync"

	"repro/internal/parallel"
)

// Cache-blocked SIMD GEMM.
//
// The three matmul entry points (MatMul, MatMulTransA, MatMulTransB) share
// one blocked driver over the AVX2 micro kernels in gemm_amd64.s. The
// vectorization axis is the output column dimension: a 4×8 register tile
// holds one accumulator lane per output element and walks the full inner
// dimension before a single store, so each element sees exactly the scalar
// kernels' operation sequence — k-ascending accumulate, one mul rounding and
// one add rounding per step, rows skipped when the A element is exactly zero.
// That makes the SIMD results bit-identical to the naive kernels (property-
// tested and fuzzed in blocked_test.go), which keeps every seeded experiment
// output unchanged.
//
// Layout handling:
//
//	NN (MatMul)        B row-major k×n: the kernel streams B rows directly,
//	                   no packing needed.
//	TA (MatMulTransA)  A stored transposed (k×m): the four A lanes of a K
//	                   step sit contiguously, a dedicated kernel reads them
//	                   in place — again no packing.
//	TB (MatMulTransB)  B stored transposed (n×k): column lanes would stride
//	                   by k, so B is packed once per multiply into a pooled
//	                   row-major k×n buffer (a tiled transpose), shared
//	                   read-only by all workers, then the NN kernel runs.
//
// KC is pinned to the full inner dimension by the bit-identity contract:
// splitting K would sum block-partial results and round differently. MC and
// NC block the output rows and columns so the B panel a row block streams
// over stays cache-resident; their defaults come from the committed
// BenchmarkGEMMBlockSweep measurements, not guesses (see README
// "Performance").
//
// Work splits across the compute pool by output rows with the same
// deterministic grain as the naive kernels, and every output element is
// computed wholly inside one chunk, so worker count cannot move results.

const (
	// gemmMR × gemmNR is the register tile: 4 rows × 8 columns uses eight
	// YMM accumulators, two B-row vectors, one broadcast and two product
	// temporaries — 13 of the 16 YMM registers, leaving the runtime's
	// reserved registers untouched.
	gemmMR = 4
	gemmNR = 8
)

// Blocking parameters, read once per multiply. They are plain package
// variables mutated only by tests and the sweep harness; concurrent mutation
// with in-flight multiplies is not supported.
var (
	gemmMC        = 64
	gemmNC        = 256
	gemmMinVolume = 1 << 15
)

// SetGEMMBlocking overrides the (MC, NC) cache-block sizes and returns the
// previous values. Both are clamped to at least one register tile. Intended
// for tests and the block-size sweep.
func SetGEMMBlocking(mc, nc int) (prevMC, prevNC int) {
	prevMC, prevNC = gemmMC, gemmNC
	if mc < gemmMR {
		mc = gemmMR
	}
	if nc < gemmNR {
		nc = gemmNR
	}
	gemmMC, gemmNC = mc, nc
	return prevMC, prevNC
}

// SetGEMMMinVolume overrides the m*k*n threshold below which the matmuls
// stay on the naive kernels (kernel-call and packing overhead is not worth
// amortizing), and returns the previous value. Tests use 1 to force every
// shape through the blocked path.
func SetGEMMMinVolume(v int) (prev int) {
	prev = gemmMinVolume
	if v < 1 {
		v = 1
	}
	gemmMinVolume = v
	return prev
}

// useBlockedGEMM reports whether a multiply of the given volume dispatches
// to the blocked SIMD path.
func useBlockedGEMM(m, k, n int) bool {
	return haveAVX2 && m*k*n >= gemmMinVolume
}

// packBuf is a grow-only packing buffer recycled through a sync.Pool, so
// steady-state multiplies perform no allocations.
type packBuf struct{ d []float64 }

var packBufPool = sync.Pool{New: func() any { return new(packBuf) }}

func getPackBuf(n int) *packBuf {
	pb := packBufPool.Get().(*packBuf)
	if cap(pb.d) < n {
		pb.d = make([]float64, n)
	}
	pb.d = pb.d[:n]
	return pb
}

func putPackBuf(pb *packBuf) { packBufPool.Put(pb) }

// gemmBlocked computes out = A × B for the logical m×k matrix A and k×n
// matrix B. aTrans marks a as storing Aᵀ row-major (k×m, the MatMulTransA
// case); bTrans marks b as storing Bᵀ row-major (n×k, the MatMulTransB
// case).
func gemmBlocked(out, a, b []float64, m, k, n int, aTrans, bTrans bool) {
	if !haveAVX2 {
		// Test-only path on machines without the micro kernels: fall back to
		// the serial naive kernels (production dispatch never gets here).
		switch {
		case aTrans:
			matMulTransACols(out, a, b, 0, m, m, k, n)
		case bTrans:
			matMulTransBRows(out, a, b, 0, m, k, n)
		default:
			matMulRows(out, a, b, 0, m, k, n)
		}
		return
	}
	var bt *packBuf
	if bTrans {
		bt = getPackBuf(k * n)
		transposeInto(bt.d, b, n, k)
		b = bt.d
	}
	lda := k
	if aTrans {
		lda = m
	}
	mc, nc := gemmMC, gemmNC
	g := parallel.Grain(k * n)
	if parallel.Chunks(m, g) <= 1 {
		gemmRowsSIMD(out, a, b, 0, m, k, n, lda, aTrans, mc, nc)
	} else {
		bd := b
		parallel.For(m, g, func(lo, hi int) {
			gemmRowsSIMD(out, a, bd, lo, hi, k, n, lda, aTrans, mc, nc)
		})
	}
	if bt != nil {
		putPackBuf(bt)
	}
}

// gemmRowsSIMD computes output rows [lo, hi): MC×NC output blocks are walked
// tile by tile so the NC-wide B panel a row block streams over stays cache-
// resident across the block's rows; ragged tile borders fall back to the
// scalar edge kernel (identical per-element operation sequence).
func gemmRowsSIMD(out, a, b []float64, lo, hi, k, n, lda int, aTrans bool, mc, nc int) {
	for ic := lo; ic < hi; ic += mc {
		ihi := min(ic+mc, hi)
		for jc := 0; jc < n; jc += nc {
			jhi := min(jc+nc, n)
			i := ic
			for ; i+gemmMR <= ihi; i += gemmMR {
				j := jc
				for ; j+gemmNR <= jhi; j += gemmNR {
					if aTrans {
						gemmTA4x8(&out[i*n+j], &a[i], &b[j], k, lda, n, n)
					} else {
						gemmNN4x8(&out[i*n+j], &a[i*lda], &b[j], k, lda, n, n)
					}
				}
				if j < jhi {
					gemmScalarTile(out, a, b, i, i+gemmMR, j, jhi, k, n, lda, aTrans)
				}
			}
			if i < ihi {
				gemmScalarTile(out, a, b, i, ihi, jc, jhi, k, n, lda, aTrans)
			}
		}
	}
}

// gemmScalarTile computes the ragged border tile [i0,i1)×[j0,j1) with plain
// scalar code: per element, a k-ascending register accumulation that skips
// zero A elements — the same sequence as both the naive kernels and the SIMD
// lanes.
func gemmScalarTile(out, a, b []float64, i0, i1, j0, j1, k, n, lda int, aTrans bool) {
	for i := i0; i < i1; i++ {
		if aTrans {
			for j := j0; j < j1; j++ {
				var acc float64
				for p := 0; p < k; p++ {
					av := a[p*lda+i]
					if av == 0 {
						continue
					}
					acc += av * b[p*n+j]
				}
				out[i*n+j] = acc
			}
			continue
		}
		aRow := a[i*lda:][:k]
		for j := j0; j < j1; j++ {
			var acc float64
			for p, av := range aRow {
				if av == 0 {
					continue
				}
				acc += av * b[p*n+j]
			}
			out[i*n+j] = acc
		}
	}
}

// transposeInto writes the transpose of the rows×cols row-major matrix src
// into dst (cols×rows), in transposeTile×transposeTile blocks so both the
// reads and the writes stay within cache lines.
func transposeInto(dst, src []float64, rows, cols int) {
	for i0 := 0; i0 < rows; i0 += transposeTile {
		i1 := min(i0+transposeTile, rows)
		for j0 := 0; j0 < cols; j0 += transposeTile {
			j1 := min(j0+transposeTile, cols)
			for i := i0; i < i1; i++ {
				row := src[i*cols : i*cols+cols]
				for j := j0; j < j1; j++ {
					dst[j*rows+i] = row[j]
				}
			}
		}
	}
}

// GEMMPanel computes the m×n panel C = A × B against row-major operands with
// explicit leading dimensions: C[i*ldc+j] = Σ_p A[i*lda+p]·B[p*ldb+j]. Per
// element the accumulation is k-ascending with the zero-skip convention —
// bit-identical to the naive kernels and to the blocked matmul path. The
// direct convolution path uses it to multiply gathered window panels against
// packed weights without materializing an im2col matrix.
func GEMMPanel(c []float64, ldc int, a []float64, lda int, b []float64, ldb int, m, k, n int) {
	if !haveAVX2 {
		gemmScalarPanel(c, ldc, a, lda, b, ldb, 0, m, 0, n, k)
		return
	}
	i := 0
	for ; i+gemmMR <= m; i += gemmMR {
		j := 0
		for ; j+gemmNR <= n; j += gemmNR {
			gemmNN4x8(&c[i*ldc+j], &a[i*lda], &b[j], k, lda, ldb, ldc)
		}
		if j < n {
			gemmScalarPanel(c, ldc, a, lda, b, ldb, i, i+gemmMR, j, n, k)
		}
	}
	if i < m {
		gemmScalarPanel(c, ldc, a, lda, b, ldb, i, m, 0, n, k)
	}
}

// gemmScalarPanel is the strided scalar edge kernel behind GEMMPanel: the
// per-element operation sequence matches the SIMD lanes exactly.
func gemmScalarPanel(c []float64, ldc int, a []float64, lda int, b []float64, ldb int, i0, i1, j0, j1, k int) {
	for i := i0; i < i1; i++ {
		aRow := a[i*lda:][:k]
		for j := j0; j < j1; j++ {
			var acc float64
			for p, av := range aRow {
				if av == 0 {
					continue
				}
				acc += av * b[p*ldb+j]
			}
			c[i*ldc+j] = acc
		}
	}
}

// AxpyInto accumulates dst[i] += alpha·x[i] over len(x) elements. Each
// element is an independent lane (one mul rounding, one add rounding), so
// the SIMD version is bit-identical to the scalar loop; rank-1 gradient
// updates in the direct convolution path use it without changing results.
func AxpyInto(dst, x []float64, alpha float64) {
	if len(dst) < len(x) {
		panic("tensor: AxpyInto dst shorter than x")
	}
	if len(x) == 0 {
		return
	}
	if haveAVX2 {
		daxpyAVX(&dst[0], &x[0], len(x), alpha)
		return
	}
	for i, v := range x {
		dst[i] += alpha * v
	}
}
