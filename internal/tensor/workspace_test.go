package tensor

import "testing"

func TestWorkspaceReusesStorage(t *testing.T) {
	var ws Workspace
	a := ws.Get2D(0, 4, 8)
	if a.Dim(0) != 4 || a.Dim(1) != 8 || a.Len() != 32 {
		t.Fatalf("Get2D shape = %v", a.Shape())
	}
	a.Data()[0] = 42

	// Shrinking reuses the same tensor and backing array.
	b := ws.Get2D(0, 2, 8)
	if b != a {
		t.Fatal("same slot returned a different tensor")
	}
	if b.Len() != 16 {
		t.Fatalf("shrunk len = %d", b.Len())
	}
	if b.Data()[0] != 42 {
		t.Fatal("shrink did not preserve backing array")
	}

	// Growing within the high-water capacity also reuses storage.
	c := ws.Get(0, 4, 8)
	if &c.Data()[0] != &a.Data()[0] {
		t.Fatal("regrow within capacity reallocated")
	}

	// Distinct slots are distinct tensors.
	d := ws.Get1D(1, 5)
	if d == a {
		t.Fatal("distinct slots share a tensor")
	}
}

func TestWorkspaceSteadyStateAllocs(t *testing.T) {
	var ws Workspace
	// Warm up: reach the high-water capacity for both slots.
	ws.Get2D(0, 8, 8)
	ws.Get4D(1, 2, 3, 4, 5)
	allocs := testing.AllocsPerRun(100, func() {
		ws.Get2D(0, 8, 8)
		ws.Get4D(1, 2, 3, 4, 5)
		ws.Get3D(1, 2, 3, 4) // reshape below high water
		ws.GetLike(0, ws.Get2D(0, 4, 4))
	})
	if allocs != 0 {
		t.Fatalf("steady-state workspace Get allocates %v times", allocs)
	}
}

func TestWorkspaceNegativeDimPanics(t *testing.T) {
	var ws Workspace
	for name, f := range map[string]func(){
		"Get":   func() { ws.Get(0, 2, -1) },
		"Get2D": func() { ws.Get2D(0, -2, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s with negative dim did not panic", name)
				}
			}()
			f()
		}()
	}
}
