// Package tensor implements a small dense n-dimensional tensor engine used by
// the neural-network substrate. Tensors store float64 data in row-major order.
//
// The package is deliberately minimal: it provides exactly the operations the
// DINAR reproduction needs (element-wise arithmetic, matrix multiplication,
// reductions, and seeded random initialization) with no external dependencies.
package tensor

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"strings"
)

// ErrShapeMismatch is returned when an operation receives tensors whose shapes
// are incompatible.
var ErrShapeMismatch = errors.New("tensor: shape mismatch")

// Tensor is a dense, row-major n-dimensional array of float64.
//
// The zero value is an empty tensor. Tensors own their backing slice; use
// Clone to copy and View-style helpers are intentionally not provided to keep
// aliasing rules simple.
type Tensor struct {
	shape []int
	data  []float64
}

// New returns a zero-filled tensor with the given shape. A tensor with no
// dimensions holds a single scalar element.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension %d", d))
		}
		n *= d
	}
	return &Tensor{shape: append([]int(nil), shape...), data: make([]float64, n)}
}

// FromSlice returns a tensor with the given shape whose data is copied from
// values. It returns an error if len(values) does not match the shape volume.
func FromSlice(values []float64, shape ...int) (*Tensor, error) {
	t := New(shape...)
	if len(values) != len(t.data) {
		return nil, fmt.Errorf("%w: %d values for shape %v", ErrShapeMismatch, len(values), shape)
	}
	copy(t.data, values)
	return t, nil
}

// MustFromSlice is FromSlice but panics on error. Intended for tests and
// static initialization.
func MustFromSlice(values []float64, shape ...int) *Tensor {
	t, err := FromSlice(values, shape...)
	if err != nil {
		panic(err)
	}
	return t
}

// Full returns a tensor with the given shape where every element is v.
func Full(v float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = v
	}
	return t
}

// Randn returns a tensor with the given shape filled with samples from a
// normal distribution with the given mean and standard deviation.
func Randn(rng *rand.Rand, mean, std float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = rng.NormFloat64()*std + mean
	}
	return t
}

// RandUniform returns a tensor with the given shape filled with samples drawn
// uniformly from [lo, hi).
func RandUniform(rng *rand.Rand, lo, hi float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = lo + rng.Float64()*(hi-lo)
	}
	return t
}

// Shape returns a copy of the tensor's shape.
func (t *Tensor) Shape() []int { return append([]int(nil), t.shape...) }

// Dims returns the number of dimensions.
func (t *Tensor) Dims() int { return len(t.shape) }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// Len returns the total number of elements.
func (t *Tensor) Len() int { return len(t.data) }

// Data returns the tensor's backing slice. Mutating the returned slice mutates
// the tensor; callers that need isolation must Clone first.
func (t *Tensor) Data() []float64 { return t.data }

// Clone returns a deep copy of the tensor.
func (t *Tensor) Clone() *Tensor {
	c := &Tensor{shape: append([]int(nil), t.shape...), data: make([]float64, len(t.data))}
	copy(c.data, t.data)
	return c
}

// Reshape returns a tensor sharing t's data with a new shape. It returns an
// error if the shape volume differs from the tensor length.
func (t *Tensor) Reshape(shape ...int) (*Tensor, error) {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(t.data) {
		return nil, fmt.Errorf("%w: reshape %v -> %v", ErrShapeMismatch, t.shape, shape)
	}
	return &Tensor{shape: append([]int(nil), shape...), data: t.data}, nil
}

// MustReshape is Reshape but panics on error.
func (t *Tensor) MustReshape(shape ...int) *Tensor {
	r, err := t.Reshape(shape...)
	if err != nil {
		panic(err)
	}
	return r
}

// At returns the element at the given multi-dimensional index.
func (t *Tensor) At(idx ...int) float64 { return t.data[t.offset(idx)] }

// Set assigns v to the element at the given multi-dimensional index.
func (t *Tensor) Set(v float64, idx ...int) { t.data[t.offset(idx)] = v }

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index rank %d for shape %v", len(idx), t.shape))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.shape))
		}
		off = off*t.shape[i] + x
	}
	return off
}

// SameShape reports whether t and o have identical shapes.
func (t *Tensor) SameShape(o *Tensor) bool {
	if len(t.shape) != len(o.shape) {
		return false
	}
	for i := range t.shape {
		if t.shape[i] != o.shape[i] {
			return false
		}
	}
	return true
}

// Zero sets all elements to zero in place.
func (t *Tensor) Zero() {
	for i := range t.data {
		t.data[i] = 0
	}
}

// Fill sets all elements to v in place.
func (t *Tensor) Fill(v float64) {
	for i := range t.data {
		t.data[i] = v
	}
}

// CopyFrom copies o's data into t. The tensors must have equal length.
func (t *Tensor) CopyFrom(o *Tensor) error {
	if len(t.data) != len(o.data) {
		return fmt.Errorf("%w: copy %v <- %v", ErrShapeMismatch, t.shape, o.shape)
	}
	copy(t.data, o.data)
	return nil
}

// AddInPlace adds o to t element-wise, in place.
func (t *Tensor) AddInPlace(o *Tensor) error {
	if len(t.data) != len(o.data) {
		return fmt.Errorf("%w: add %v + %v", ErrShapeMismatch, t.shape, o.shape)
	}
	for i, v := range o.data {
		t.data[i] += v
	}
	return nil
}

// SubInPlace subtracts o from t element-wise, in place.
func (t *Tensor) SubInPlace(o *Tensor) error {
	if len(t.data) != len(o.data) {
		return fmt.Errorf("%w: sub %v - %v", ErrShapeMismatch, t.shape, o.shape)
	}
	for i, v := range o.data {
		t.data[i] -= v
	}
	return nil
}

// MulInPlace multiplies t by o element-wise, in place.
func (t *Tensor) MulInPlace(o *Tensor) error {
	if len(t.data) != len(o.data) {
		return fmt.Errorf("%w: mul %v * %v", ErrShapeMismatch, t.shape, o.shape)
	}
	for i, v := range o.data {
		t.data[i] *= v
	}
	return nil
}

// Scale multiplies every element by s, in place.
func (t *Tensor) Scale(s float64) {
	for i := range t.data {
		t.data[i] *= s
	}
}

// AXPY computes t += alpha*o element-wise, in place.
func (t *Tensor) AXPY(alpha float64, o *Tensor) error {
	if len(t.data) != len(o.data) {
		return fmt.Errorf("%w: axpy %v += a*%v", ErrShapeMismatch, t.shape, o.shape)
	}
	for i, v := range o.data {
		t.data[i] += alpha * v
	}
	return nil
}

// Apply replaces every element x with f(x), in place.
func (t *Tensor) Apply(f func(float64) float64) {
	for i, v := range t.data {
		t.data[i] = f(v)
	}
}

// Add returns t + o as a new tensor.
func Add(t, o *Tensor) (*Tensor, error) {
	r := t.Clone()
	if err := r.AddInPlace(o); err != nil {
		return nil, err
	}
	return r, nil
}

// Sub returns t - o as a new tensor.
func Sub(t, o *Tensor) (*Tensor, error) {
	r := t.Clone()
	if err := r.SubInPlace(o); err != nil {
		return nil, err
	}
	return r, nil
}

// Sum returns the sum of all elements.
func (t *Tensor) Sum() float64 {
	s := 0.0
	for _, v := range t.data {
		s += v
	}
	return s
}

// Mean returns the arithmetic mean of all elements (0 for empty tensors).
func (t *Tensor) Mean() float64 {
	if len(t.data) == 0 {
		return 0
	}
	return t.Sum() / float64(len(t.data))
}

// Variance returns the population variance of all elements.
func (t *Tensor) Variance() float64 {
	if len(t.data) == 0 {
		return 0
	}
	m := t.Mean()
	s := 0.0
	for _, v := range t.data {
		d := v - m
		s += d * d
	}
	return s / float64(len(t.data))
}

// Norm returns the L2 norm of the tensor viewed as a flat vector.
func (t *Tensor) Norm() float64 {
	s := 0.0
	for _, v := range t.data {
		s += v * v
	}
	return math.Sqrt(s)
}

// MaxAbs returns the maximum absolute element value (0 for empty tensors).
func (t *Tensor) MaxAbs() float64 {
	m := 0.0
	for _, v := range t.data {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// ArgMax returns the index of the maximum element of a 1-D tensor view. For
// multi-dimensional tensors it operates on the flattened data.
func (t *Tensor) ArgMax() int {
	if len(t.data) == 0 {
		return -1
	}
	best, bestIdx := t.data[0], 0
	for i, v := range t.data[1:] {
		if v > best {
			best, bestIdx = v, i+1
		}
	}
	return bestIdx
}

// Row returns a copy of row i of a 2-D tensor.
func (t *Tensor) Row(i int) ([]float64, error) {
	if len(t.shape) != 2 {
		return nil, fmt.Errorf("%w: Row on %v", ErrShapeMismatch, t.shape)
	}
	cols := t.shape[1]
	out := make([]float64, cols)
	copy(out, t.data[i*cols:(i+1)*cols])
	return out, nil
}

// SetRow copies values into row i of a 2-D tensor.
func (t *Tensor) SetRow(i int, values []float64) error {
	if len(t.shape) != 2 || len(values) != t.shape[1] {
		return fmt.Errorf("%w: SetRow(%d values) on %v", ErrShapeMismatch, len(values), t.shape)
	}
	copy(t.data[i*t.shape[1]:(i+1)*t.shape[1]], values)
	return nil
}

// String renders a compact description, e.g. "Tensor(2x3)[...]".
func (t *Tensor) String() string {
	var b strings.Builder
	b.WriteString("Tensor(")
	for i, d := range t.shape {
		if i > 0 {
			b.WriteByte('x')
		}
		b.WriteString(strconv.Itoa(d))
	}
	b.WriteByte(')')
	const preview = 6
	b.WriteByte('[')
	for i, v := range t.data {
		if i == preview {
			b.WriteString("...")
			break
		}
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(strconv.FormatFloat(v, 'g', 4, 64))
	}
	b.WriteByte(']')
	return b.String()
}
