package tensor

import (
	"fmt"
	"math/rand"
	"testing"
)

// BenchmarkGEMMBlockSweep is the committed block-size sweep behind the
// default (MC, NC) choice: it times every candidate pair at the tracked
// matmul shapes plus the conv2d im2col-GEMM shape, for all three layouts.
// Run it with
//
//	go test ./internal/tensor -run xxx -bench GEMMBlockSweep -benchtime 200ms
//
// and set the gemmMC/gemmNC defaults in blocked.go to the winner. KC is not
// swept: it is pinned to the full inner dimension by the bit-identity
// contract (splitting K would regroup each element's accumulation and move
// seeded experiment outputs).
func BenchmarkGEMMBlockSweep(b *testing.B) {
	restoreGEMM(b)
	shapes := []struct {
		name    string
		m, k, n int
		layout  string
	}{
		{"matmul_256x128x64", 256, 128, 64, "nn"},
		{"transa_256x128x64", 256, 128, 64, "ta"},
		{"transb_256x128x64", 256, 128, 64, "tb"},
		{"conv2d_gemm_2048x72x16", 2048, 72, 16, "tb"},
	}
	mcs := []int{32, 64, 128, 256}
	ncs := []int{64, 128, 256, 512}
	rng := rand.New(rand.NewSource(47))
	for _, s := range shapes {
		a, bb := gemmOperands(rng, s.m, s.k, s.n, s.layout)
		out := make([]float64, s.m*s.n)
		for _, mc := range mcs {
			for _, nc := range ncs {
				b.Run(fmt.Sprintf("%s/mc%d_nc%d", s.name, mc, nc), func(b *testing.B) {
					SetGEMMBlocking(mc, nc)
					SetGEMMMinVolume(1)
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						runBlocked(out, a, bb, s.m, s.k, s.n, s.layout)
					}
				})
			}
		}
	}
}

// BenchmarkGEMMNaiveVsBlocked reports the naive row kernels next to the
// blocked path at the tracked shapes, for the README speedup table.
func BenchmarkGEMMNaiveVsBlocked(b *testing.B) {
	restoreGEMM(b)
	shapes := []struct {
		name    string
		m, k, n int
		layout  string
	}{
		{"matmul_256x128x64", 256, 128, 64, "nn"},
		{"transa_256x128x64", 256, 128, 64, "ta"},
		{"transb_256x128x64", 256, 128, 64, "tb"},
		{"conv2d_gemm_2048x72x16", 2048, 72, 16, "tb"},
	}
	rng := rand.New(rand.NewSource(53))
	for _, s := range shapes {
		a, bb := gemmOperands(rng, s.m, s.k, s.n, s.layout)
		out := make([]float64, s.m*s.n)
		b.Run(s.name+"/naive", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				naiveGEMM(out, a, bb, s.m, s.k, s.n, s.layout)
			}
		})
		b.Run(s.name+"/blocked", func(b *testing.B) {
			SetGEMMMinVolume(1)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				runBlocked(out, a, bb, s.m, s.k, s.n, s.layout)
			}
		})
	}
}
