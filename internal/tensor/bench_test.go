package tensor

import (
	"math/rand"
	"testing"
)

// Benchmark shapes match the scaled models' hot matmuls: [B*oh*ow, C*k*k] ×
// [OutC, C*k*k]ᵀ style products.
func benchPair(m, k, n int) (a, b, bt, at, out *Tensor) {
	rng := rand.New(rand.NewSource(71))
	a = Randn(rng, 0, 1, m, k)
	b = Randn(rng, 0, 1, k, n)
	bt = Randn(rng, 0, 1, n, k)
	at = Randn(rng, 0, 1, k, m)
	out = New(m, n)
	return
}

func BenchmarkMatMulInto(bb *testing.B) {
	a, b, _, _, out := benchPair(256, 128, 64)
	bb.ReportAllocs()
	bb.ResetTimer()
	for i := 0; i < bb.N; i++ {
		if err := MatMulInto(out, a, b); err != nil {
			bb.Fatal(err)
		}
	}
}

// BenchmarkMatMulTransposeThen is the pre-optimization formulation: transpose
// the second operand, then multiply. Kept as the comparison baseline for
// BenchmarkMatMulTransBInto.
func BenchmarkMatMulTransposeThen(bb *testing.B) {
	a, _, bt, _, out := benchPair(256, 128, 64)
	bb.ReportAllocs()
	bb.ResetTimer()
	for i := 0; i < bb.N; i++ {
		btt, err := Transpose2D(bt)
		if err != nil {
			bb.Fatal(err)
		}
		if err := MatMulInto(out, a, btt); err != nil {
			bb.Fatal(err)
		}
	}
}

func BenchmarkMatMulTransBInto(bb *testing.B) {
	a, _, bt, _, out := benchPair(256, 128, 64)
	bb.ReportAllocs()
	bb.ResetTimer()
	for i := 0; i < bb.N; i++ {
		if err := MatMulTransBInto(out, a, bt); err != nil {
			bb.Fatal(err)
		}
	}
}

func BenchmarkMatMulTransAInto(bb *testing.B) {
	_, b, _, at, out := benchPair(256, 128, 64)
	bb.ReportAllocs()
	bb.ResetTimer()
	for i := 0; i < bb.N; i++ {
		if err := MatMulTransAInto(out, at, b); err != nil {
			bb.Fatal(err)
		}
	}
}

func BenchmarkTranspose2D(bb *testing.B) {
	rng := rand.New(rand.NewSource(72))
	a := Randn(rng, 0, 1, 512, 512)
	bb.ReportAllocs()
	bb.ResetTimer()
	for i := 0; i < bb.N; i++ {
		if _, err := Transpose2D(a); err != nil {
			bb.Fatal(err)
		}
	}
}
