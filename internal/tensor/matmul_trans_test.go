package tensor

import (
	"errors"
	"math/rand"
	"testing"
)

// transShapes covers the degenerate and threshold-straddling cases: single
// rows/columns, inner dimension 1, and products on either side of
// the pool split threshold (parallel.DefaultMinWork) so both the serial and parallel kernels are exercised.
var transShapes = []struct{ m, k, n int }{
	{1, 1, 1},
	{1, 7, 5},
	{5, 1, 7},
	{7, 5, 1},
	{3, 4, 5},
	{8, 8, 8},
	{13, 17, 19},
	{32, 32, 32},  // m*k*n = 32768, below the split threshold
	{40, 41, 42},  // 68880, just above the split threshold
	{64, 64, 64},  // well above the split threshold
	{1, 300, 300}, // above threshold but m==1 forces the serial path
}

// TestMatMulTransBMatchesTranspose checks that a × bᵀ computed by the
// transpose-free kernel is bit-identical to materializing bᵀ and calling
// MatMul: the kernels preserve both the ascending accumulation order over
// the inner dimension and the zero-skip convention.
func TestMatMulTransBMatchesTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, s := range transShapes {
		a := Randn(rng, 0, 1, s.m, s.k)
		b := Randn(rng, 0, 1, s.n, s.k)
		// Sprinkle exact zeros so the zero-skip path is hit.
		a.Data()[0] = 0
		b.Data()[len(b.Data())-1] = 0

		bt, err := Transpose2D(b)
		if err != nil {
			t.Fatal(err)
		}
		want, err := MatMul(a, bt)
		if err != nil {
			t.Fatal(err)
		}
		got, err := MatMulTransB(a, b)
		if err != nil {
			t.Fatalf("MatMulTransB(%dx%d, %dx%d): %v", s.m, s.k, s.n, s.k, err)
		}
		for i := range want.Data() {
			if got.Data()[i] != want.Data()[i] {
				t.Fatalf("shape %+v: TransB[%d] = %v, transpose+matmul %v",
					s, i, got.Data()[i], want.Data()[i])
			}
		}

		into := New(s.m, s.n)
		if err := MatMulTransBInto(into, a, b); err != nil {
			t.Fatal(err)
		}
		for i := range want.Data() {
			if into.Data()[i] != want.Data()[i] {
				t.Fatalf("shape %+v: TransBInto[%d] = %v, want %v",
					s, i, into.Data()[i], want.Data()[i])
			}
		}
	}
}

// TestMatMulTransAMatchesTranspose is the aᵀ × b analog of the TransB test.
func TestMatMulTransAMatchesTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, s := range transShapes {
		a := Randn(rng, 0, 1, s.k, s.m)
		b := Randn(rng, 0, 1, s.k, s.n)
		a.Data()[0] = 0
		b.Data()[len(b.Data())-1] = 0

		at, err := Transpose2D(a)
		if err != nil {
			t.Fatal(err)
		}
		want, err := MatMul(at, b)
		if err != nil {
			t.Fatal(err)
		}
		got, err := MatMulTransA(a, b)
		if err != nil {
			t.Fatalf("MatMulTransA(%dx%d, %dx%d): %v", s.k, s.m, s.k, s.n, err)
		}
		for i := range want.Data() {
			if got.Data()[i] != want.Data()[i] {
				t.Fatalf("shape %+v: TransA[%d] = %v, transpose+matmul %v",
					s, i, got.Data()[i], want.Data()[i])
			}
		}

		into := New(s.m, s.n)
		if err := MatMulTransAInto(into, a, b); err != nil {
			t.Fatal(err)
		}
		for i := range want.Data() {
			if into.Data()[i] != want.Data()[i] {
				t.Fatalf("shape %+v: TransAInto[%d] = %v, want %v",
					s, i, into.Data()[i], want.Data()[i])
			}
		}
	}
}

// TestQuickMatMulTransRandomShapes fuzzes random shapes against the
// transpose-then-multiply reference.
func TestQuickMatMulTransRandomShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 50; trial++ {
		m := 1 + rng.Intn(24)
		k := 1 + rng.Intn(24)
		n := 1 + rng.Intn(24)

		a := Randn(rng, 0, 1, m, k)
		b := Randn(rng, 0, 1, n, k)
		bt, _ := Transpose2D(b)
		want, _ := MatMul(a, bt)
		got, err := MatMulTransB(a, b)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want.Data() {
			if got.Data()[i] != want.Data()[i] {
				t.Fatalf("trial %d (%d,%d,%d): TransB[%d] = %v, want %v",
					trial, m, k, n, i, got.Data()[i], want.Data()[i])
			}
		}

		a2 := Randn(rng, 0, 1, k, m)
		b2 := Randn(rng, 0, 1, k, n)
		at, _ := Transpose2D(a2)
		want2, _ := MatMul(at, b2)
		got2, err := MatMulTransA(a2, b2)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want2.Data() {
			if got2.Data()[i] != want2.Data()[i] {
				t.Fatalf("trial %d (%d,%d,%d): TransA[%d] = %v, want %v",
					trial, m, k, n, i, got2.Data()[i], want2.Data()[i])
			}
		}
	}
}

func TestMatMulTransErrors(t *testing.T) {
	a := New(2, 3)
	b := New(4, 5) // inner mismatch: TransB needs b's second dim == 3
	if _, err := MatMulTransB(a, b); !errors.Is(err, ErrShapeMismatch) {
		t.Fatalf("TransB inner mismatch err = %v", err)
	}
	if _, err := MatMulTransA(a, b); !errors.Is(err, ErrShapeMismatch) {
		t.Fatalf("TransA inner mismatch err = %v", err)
	}
	if _, err := MatMulTransB(New(3), b); !errors.Is(err, ErrShapeMismatch) {
		t.Fatalf("TransB rank err = %v", err)
	}
	if err := MatMulTransBInto(New(2, 2), New(2, 3), New(4, 3)); !errors.Is(err, ErrShapeMismatch) {
		t.Fatalf("TransBInto out-shape err = %v", err)
	}
	if err := MatMulTransAInto(New(2, 2), New(3, 2), New(3, 4)); !errors.Is(err, ErrShapeMismatch) {
		t.Fatalf("TransAInto out-shape err = %v", err)
	}
}

// TestTranspose2DTiledOddShapes exercises the tiled transpose on shapes with
// remainder tiles in every combination (exact multiples, one-off, vectors).
func TestTranspose2DTiledOddShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	shapes := [][2]int{
		{1, 1}, {1, 65}, {65, 1}, {31, 33}, {32, 32}, {33, 31},
		{64, 64}, {65, 63}, {100, 7},
	}
	for _, s := range shapes {
		a := Randn(rng, 0, 1, s[0], s[1])
		at, err := Transpose2D(a)
		if err != nil {
			t.Fatal(err)
		}
		if at.Dim(0) != s[1] || at.Dim(1) != s[0] {
			t.Fatalf("shape %v -> %v", s, at.Shape())
		}
		for i := 0; i < s[0]; i++ {
			for j := 0; j < s[1]; j++ {
				if at.At(j, i) != a.At(i, j) {
					t.Fatalf("%v: at(%d,%d) = %v, want %v", s, j, i, at.At(j, i), a.At(i, j))
				}
			}
		}
	}
}
