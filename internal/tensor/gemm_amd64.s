// AVX2 micro-kernels for the blocked GEMM (see blocked.go).
//
// Bit-identity contract: each output element is one SIMD lane. The lane
// accumulates its k products in ascending order with one VMULPD rounding and
// one VADDPD rounding per step — exactly the mul-then-add sequence of the
// scalar kernels (FMA is deliberately not used: fusing would drop the
// intermediate rounding and move seeded experiment outputs). Rows whose A
// element is exactly ±0 are skipped via an integer bit test (bits<<1 == 0
// matches +0 and -0 and never matches NaN), preserving the scalar kernels'
// zero-skip convention for non-finite inputs.
//
// Register budget (16 YMM, X15 and R14 left untouched for the Go runtime):
// Y0-Y7 hold the 4×8 accumulator tile, Y8/Y9 the current B row pair, Y10 the
// broadcast A element, Y12/Y13 the product temporaries.

#include "textflag.h"

// func gemmNN4x8(c, a, b *float64, k, lda, ldb, ldc int)
//
// C[r][j] += Σ_p A[r][p]·B[p][j] for r < 4, j < 8, with C zero-initialized
// in registers and stored once. a points at A's tile-origin row (row-major,
// row stride lda); b points at B's tile-origin column (row stride ldb);
// c points at the output tile (row stride ldc). Strides are in elements.
TEXT ·gemmNN4x8(SB), NOSPLIT, $0-56
	MOVQ c+0(FP), DI
	MOVQ a+8(FP), R8
	MOVQ b+16(FP), SI
	MOVQ k+24(FP), CX
	MOVQ lda+32(FP), AX
	MOVQ ldb+40(FP), R12
	MOVQ ldc+48(FP), R13
	SHLQ $3, AX  // strides in bytes
	SHLQ $3, R12
	SHLQ $3, R13
	LEAQ (R8)(AX*1), R9   // rows 1..3 of A
	LEAQ (R9)(AX*1), R10
	LEAQ (R10)(AX*1), R11
	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3
	VXORPD Y4, Y4, Y4
	VXORPD Y5, Y5, Y5
	VXORPD Y6, Y6, Y6
	VXORPD Y7, Y7, Y7
	TESTQ CX, CX
	JZ   nnstore
nnloop:
	VMOVUPD (SI), Y8
	VMOVUPD 32(SI), Y9
	MOVQ (R8), DX
	SHLQ $1, DX
	JZ   nnskip0
	VBROADCASTSD (R8), Y10
	VMULPD Y8, Y10, Y12
	VMULPD Y9, Y10, Y13
	VADDPD Y12, Y0, Y0
	VADDPD Y13, Y1, Y1
nnskip0:
	MOVQ (R9), DX
	SHLQ $1, DX
	JZ   nnskip1
	VBROADCASTSD (R9), Y10
	VMULPD Y8, Y10, Y12
	VMULPD Y9, Y10, Y13
	VADDPD Y12, Y2, Y2
	VADDPD Y13, Y3, Y3
nnskip1:
	MOVQ (R10), DX
	SHLQ $1, DX
	JZ   nnskip2
	VBROADCASTSD (R10), Y10
	VMULPD Y8, Y10, Y12
	VMULPD Y9, Y10, Y13
	VADDPD Y12, Y4, Y4
	VADDPD Y13, Y5, Y5
nnskip2:
	MOVQ (R11), DX
	SHLQ $1, DX
	JZ   nnskip3
	VBROADCASTSD (R11), Y10
	VMULPD Y8, Y10, Y12
	VMULPD Y9, Y10, Y13
	VADDPD Y12, Y6, Y6
	VADDPD Y13, Y7, Y7
nnskip3:
	ADDQ $8, R8
	ADDQ $8, R9
	ADDQ $8, R10
	ADDQ $8, R11
	ADDQ R12, SI
	DECQ CX
	JNZ  nnloop
nnstore:
	VMOVUPD Y0, (DI)
	VMOVUPD Y1, 32(DI)
	ADDQ R13, DI
	VMOVUPD Y2, (DI)
	VMOVUPD Y3, 32(DI)
	ADDQ R13, DI
	VMOVUPD Y4, (DI)
	VMOVUPD Y5, 32(DI)
	ADDQ R13, DI
	VMOVUPD Y6, (DI)
	VMOVUPD Y7, 32(DI)
	VZEROUPPER
	RET

// func gemmTA4x8(c, a, b *float64, k, lda, ldb, ldc int)
//
// Same tile as gemmNN4x8, but A is stored transposed (k×m row-major, as in
// MatMulTransA): a points at Aᵀ's tile-origin column, so the four A elements
// of a K step sit contiguously at a[p*lda + 0..3].
TEXT ·gemmTA4x8(SB), NOSPLIT, $0-56
	MOVQ c+0(FP), DI
	MOVQ a+8(FP), R8
	MOVQ b+16(FP), SI
	MOVQ k+24(FP), CX
	MOVQ lda+32(FP), AX
	MOVQ ldb+40(FP), R12
	MOVQ ldc+48(FP), R13
	SHLQ $3, AX
	SHLQ $3, R12
	SHLQ $3, R13
	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3
	VXORPD Y4, Y4, Y4
	VXORPD Y5, Y5, Y5
	VXORPD Y6, Y6, Y6
	VXORPD Y7, Y7, Y7
	TESTQ CX, CX
	JZ   tastore
taloop:
	VMOVUPD (SI), Y8
	VMOVUPD 32(SI), Y9
	MOVQ (R8), DX
	SHLQ $1, DX
	JZ   taskip0
	VBROADCASTSD (R8), Y10
	VMULPD Y8, Y10, Y12
	VMULPD Y9, Y10, Y13
	VADDPD Y12, Y0, Y0
	VADDPD Y13, Y1, Y1
taskip0:
	MOVQ 8(R8), DX
	SHLQ $1, DX
	JZ   taskip1
	VBROADCASTSD 8(R8), Y10
	VMULPD Y8, Y10, Y12
	VMULPD Y9, Y10, Y13
	VADDPD Y12, Y2, Y2
	VADDPD Y13, Y3, Y3
taskip1:
	MOVQ 16(R8), DX
	SHLQ $1, DX
	JZ   taskip2
	VBROADCASTSD 16(R8), Y10
	VMULPD Y8, Y10, Y12
	VMULPD Y9, Y10, Y13
	VADDPD Y12, Y4, Y4
	VADDPD Y13, Y5, Y5
taskip2:
	MOVQ 24(R8), DX
	SHLQ $1, DX
	JZ   taskip3
	VBROADCASTSD 24(R8), Y10
	VMULPD Y8, Y10, Y12
	VMULPD Y9, Y10, Y13
	VADDPD Y12, Y6, Y6
	VADDPD Y13, Y7, Y7
taskip3:
	ADDQ AX, R8
	ADDQ R12, SI
	DECQ CX
	JNZ  taloop
tastore:
	VMOVUPD Y0, (DI)
	VMOVUPD Y1, 32(DI)
	ADDQ R13, DI
	VMOVUPD Y2, (DI)
	VMOVUPD Y3, 32(DI)
	ADDQ R13, DI
	VMOVUPD Y4, (DI)
	VMOVUPD Y5, 32(DI)
	ADDQ R13, DI
	VMOVUPD Y6, (DI)
	VMOVUPD Y7, 32(DI)
	VZEROUPPER
	RET

// func cpuid(eaxArg, ecxArg uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuid(SB), NOSPLIT, $0-24
	MOVL eaxArg+0(FP), AX
	MOVL ecxArg+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv() (eax, edx uint32)
TEXT ·xgetbv(SB), NOSPLIT, $0-8
	MOVL $0, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// func daxpyAVX(dst, x *float64, n int, alpha float64)
//
// dst[i] += alpha·x[i] for i < n. Lanes are independent elements with the
// same mul-then-add rounding as the scalar loop, so results are bit-identical
// to pure Go for any n.
TEXT ·daxpyAVX(SB), NOSPLIT, $0-32
	MOVQ dst+0(FP), DI
	MOVQ x+8(FP), SI
	MOVQ n+16(FP), CX
	VBROADCASTSD alpha+24(FP), Y0
axloop:
	CMPQ CX, $4
	JLT  axtail
	VMOVUPD (SI), Y1
	VMULPD Y1, Y0, Y1
	VMOVUPD (DI), Y2
	VADDPD Y1, Y2, Y2
	VMOVUPD Y2, (DI)
	ADDQ $32, SI
	ADDQ $32, DI
	SUBQ $4, CX
	JMP  axloop
axtail:
	TESTQ CX, CX
	JZ   axdone
	MOVSD (SI), X1
	MULSD X0, X1
	MOVSD (DI), X2
	ADDSD X1, X2
	MOVSD X2, (DI)
	ADDQ $8, SI
	ADDQ $8, DI
	DECQ CX
	JMP  axtail
axdone:
	VZEROUPPER
	RET
