package tensor

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewZeroFilled(t *testing.T) {
	tt := New(2, 3)
	if tt.Len() != 6 {
		t.Fatalf("Len = %d, want 6", tt.Len())
	}
	for i, v := range tt.Data() {
		if v != 0 {
			t.Fatalf("element %d = %v, want 0", i, v)
		}
	}
}

func TestNewScalar(t *testing.T) {
	s := New()
	if s.Len() != 1 {
		t.Fatalf("scalar Len = %d, want 1", s.Len())
	}
	if s.Dims() != 0 {
		t.Fatalf("scalar Dims = %d, want 0", s.Dims())
	}
}

func TestFromSlice(t *testing.T) {
	tt, err := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := tt.At(1, 2); got != 6 {
		t.Fatalf("At(1,2) = %v, want 6", got)
	}
	if got := tt.At(0, 1); got != 2 {
		t.Fatalf("At(0,1) = %v, want 2", got)
	}
}

func TestFromSliceShapeMismatch(t *testing.T) {
	if _, err := FromSlice([]float64{1, 2, 3}, 2, 2); !errors.Is(err, ErrShapeMismatch) {
		t.Fatalf("err = %v, want ErrShapeMismatch", err)
	}
}

func TestSetAt(t *testing.T) {
	tt := New(3, 4)
	tt.Set(7.5, 2, 1)
	if got := tt.At(2, 1); got != 7.5 {
		t.Fatalf("At(2,1) = %v, want 7.5", got)
	}
	if got := tt.Data()[2*4+1]; got != 7.5 {
		t.Fatalf("flat offset = %v, want 7.5", got)
	}
}

func TestCloneIsDeep(t *testing.T) {
	a := MustFromSlice([]float64{1, 2, 3}, 3)
	b := a.Clone()
	b.Set(9, 0)
	if a.At(0) != 1 {
		t.Fatal("Clone aliases the original data")
	}
}

func TestReshapeSharesData(t *testing.T) {
	a := MustFromSlice([]float64{1, 2, 3, 4}, 2, 2)
	b, err := a.Reshape(4)
	if err != nil {
		t.Fatal(err)
	}
	b.Set(99, 3)
	if a.At(1, 1) != 99 {
		t.Fatal("Reshape should share backing data")
	}
	if _, err := a.Reshape(3); !errors.Is(err, ErrShapeMismatch) {
		t.Fatalf("bad reshape err = %v", err)
	}
}

func TestArithmeticInPlace(t *testing.T) {
	a := MustFromSlice([]float64{1, 2, 3}, 3)
	b := MustFromSlice([]float64{10, 20, 30}, 3)
	if err := a.AddInPlace(b); err != nil {
		t.Fatal(err)
	}
	want := []float64{11, 22, 33}
	for i, w := range want {
		if a.At(i) != w {
			t.Fatalf("add[%d] = %v, want %v", i, a.At(i), w)
		}
	}
	if err := a.SubInPlace(b); err != nil {
		t.Fatal(err)
	}
	for i, w := range []float64{1, 2, 3} {
		if a.At(i) != w {
			t.Fatalf("sub[%d] = %v, want %v", i, a.At(i), w)
		}
	}
	if err := a.MulInPlace(b); err != nil {
		t.Fatal(err)
	}
	for i, w := range []float64{10, 40, 90} {
		if a.At(i) != w {
			t.Fatalf("mul[%d] = %v, want %v", i, a.At(i), w)
		}
	}
}

func TestArithmeticShapeErrors(t *testing.T) {
	a := New(3)
	b := New(4)
	if err := a.AddInPlace(b); !errors.Is(err, ErrShapeMismatch) {
		t.Fatalf("AddInPlace err = %v", err)
	}
	if err := a.SubInPlace(b); !errors.Is(err, ErrShapeMismatch) {
		t.Fatalf("SubInPlace err = %v", err)
	}
	if err := a.MulInPlace(b); !errors.Is(err, ErrShapeMismatch) {
		t.Fatalf("MulInPlace err = %v", err)
	}
	if err := a.AXPY(1, b); !errors.Is(err, ErrShapeMismatch) {
		t.Fatalf("AXPY err = %v", err)
	}
}

func TestScaleAXPYApply(t *testing.T) {
	a := MustFromSlice([]float64{1, -2, 3}, 3)
	a.Scale(2)
	if a.At(1) != -4 {
		t.Fatalf("Scale: got %v", a.At(1))
	}
	b := MustFromSlice([]float64{1, 1, 1}, 3)
	if err := a.AXPY(0.5, b); err != nil {
		t.Fatal(err)
	}
	if a.At(0) != 2.5 {
		t.Fatalf("AXPY: got %v", a.At(0))
	}
	a.Apply(math.Abs)
	if a.At(1) != 3.5 {
		t.Fatalf("Apply: got %v", a.At(1))
	}
}

func TestReductions(t *testing.T) {
	a := MustFromSlice([]float64{1, 2, 3, 4}, 4)
	if a.Sum() != 10 {
		t.Fatalf("Sum = %v", a.Sum())
	}
	if a.Mean() != 2.5 {
		t.Fatalf("Mean = %v", a.Mean())
	}
	if got, want := a.Variance(), 1.25; math.Abs(got-want) > 1e-12 {
		t.Fatalf("Variance = %v, want %v", got, want)
	}
	if got, want := a.Norm(), math.Sqrt(30); math.Abs(got-want) > 1e-12 {
		t.Fatalf("Norm = %v, want %v", got, want)
	}
	if a.ArgMax() != 3 {
		t.Fatalf("ArgMax = %d", a.ArgMax())
	}
	neg := MustFromSlice([]float64{-5, 2}, 2)
	if neg.MaxAbs() != 5 {
		t.Fatalf("MaxAbs = %v", neg.MaxAbs())
	}
}

func TestEmptyReductions(t *testing.T) {
	e := New(0)
	if e.Mean() != 0 || e.Variance() != 0 || e.MaxAbs() != 0 {
		t.Fatal("empty tensor reductions should be zero")
	}
	if e.ArgMax() != -1 {
		t.Fatalf("empty ArgMax = %d, want -1", e.ArgMax())
	}
}

func TestRowOps(t *testing.T) {
	a := MustFromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	row, err := a.Row(1)
	if err != nil {
		t.Fatal(err)
	}
	if row[0] != 4 || row[2] != 6 {
		t.Fatalf("Row(1) = %v", row)
	}
	// Row returns a copy.
	row[0] = 99
	if a.At(1, 0) != 4 {
		t.Fatal("Row should return a copy")
	}
	if err := a.SetRow(0, []float64{7, 8, 9}); err != nil {
		t.Fatal(err)
	}
	if a.At(0, 2) != 9 {
		t.Fatalf("SetRow failed: %v", a.At(0, 2))
	}
	if err := a.SetRow(0, []float64{1}); !errors.Is(err, ErrShapeMismatch) {
		t.Fatalf("SetRow bad len err = %v", err)
	}
	v := New(3)
	if _, err := v.Row(0); !errors.Is(err, ErrShapeMismatch) {
		t.Fatalf("Row on 1-D err = %v", err)
	}
}

func TestMatMulSmall(t *testing.T) {
	a := MustFromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	b := MustFromSlice([]float64{7, 8, 9, 10, 11, 12}, 3, 2)
	c, err := MatMul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{58, 64, 139, 154}
	for i, w := range want {
		if c.Data()[i] != w {
			t.Fatalf("matmul[%d] = %v, want %v", i, c.Data()[i], w)
		}
	}
}

func TestMatMulErrors(t *testing.T) {
	a := New(2, 3)
	b := New(4, 2)
	if _, err := MatMul(a, b); !errors.Is(err, ErrShapeMismatch) {
		t.Fatalf("inner mismatch err = %v", err)
	}
	if _, err := MatMul(New(3), b); !errors.Is(err, ErrShapeMismatch) {
		t.Fatalf("rank err = %v", err)
	}
}

func TestMatMulIntoMatchesMatMul(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := Randn(rng, 0, 1, 7, 5)
	b := Randn(rng, 0, 1, 5, 9)
	want, err := MatMul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	out := New(7, 9)
	out.Fill(3.14) // ensure stale contents are overwritten
	if err := MatMulInto(out, a, b); err != nil {
		t.Fatal(err)
	}
	for i := range want.Data() {
		if math.Abs(out.Data()[i]-want.Data()[i]) > 1e-12 {
			t.Fatalf("MatMulInto[%d] = %v, want %v", i, out.Data()[i], want.Data()[i])
		}
	}
}

func TestMatMulParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	// Large enough to trip the parallel path.
	a := Randn(rng, 0, 1, 64, 64)
	b := Randn(rng, 0, 1, 64, 64)
	got, err := MatMul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := New(64, 64)
	matMulRows(want.Data(), a.Data(), b.Data(), 0, 64, 64, 64)
	for i := range want.Data() {
		if math.Abs(got.Data()[i]-want.Data()[i]) > 1e-9 {
			t.Fatalf("parallel[%d] = %v, serial %v", i, got.Data()[i], want.Data()[i])
		}
	}
}

func TestTranspose2D(t *testing.T) {
	a := MustFromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	at, err := Transpose2D(a)
	if err != nil {
		t.Fatal(err)
	}
	if at.Dim(0) != 3 || at.Dim(1) != 2 {
		t.Fatalf("shape = %v", at.Shape())
	}
	if at.At(2, 1) != 6 || at.At(0, 1) != 4 {
		t.Fatalf("transpose values wrong: %v", at.Data())
	}
	if _, err := Transpose2D(New(3)); !errors.Is(err, ErrShapeMismatch) {
		t.Fatalf("rank err = %v", err)
	}
}

func TestMatVecOuterDot(t *testing.T) {
	a := MustFromSlice([]float64{1, 2, 3, 4}, 2, 2)
	v := MustFromSlice([]float64{5, 6}, 2)
	mv, err := MatVec(a, v)
	if err != nil {
		t.Fatal(err)
	}
	if mv.At(0) != 17 || mv.At(1) != 39 {
		t.Fatalf("MatVec = %v", mv.Data())
	}
	u := MustFromSlice([]float64{1, 2}, 2)
	o, err := Outer(u, v)
	if err != nil {
		t.Fatal(err)
	}
	if o.At(1, 1) != 12 || o.At(0, 0) != 5 {
		t.Fatalf("Outer = %v", o.Data())
	}
	d, err := Dot(u, v)
	if err != nil {
		t.Fatal(err)
	}
	if d != 17 {
		t.Fatalf("Dot = %v", d)
	}
	if _, err := Dot(u, New(3)); !errors.Is(err, ErrShapeMismatch) {
		t.Fatalf("Dot err = %v", err)
	}
}

func TestRandnStats(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	tt := Randn(rng, 2, 3, 10000)
	if m := tt.Mean(); math.Abs(m-2) > 0.1 {
		t.Fatalf("Randn mean = %v, want ~2", m)
	}
	if v := tt.Variance(); math.Abs(v-9) > 0.5 {
		t.Fatalf("Randn variance = %v, want ~9", v)
	}
}

func TestRandUniformRange(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	tt := RandUniform(rng, -1, 1, 1000)
	for _, v := range tt.Data() {
		if v < -1 || v >= 1 {
			t.Fatalf("uniform sample %v out of [-1,1)", v)
		}
	}
	if m := tt.Mean(); math.Abs(m) > 0.1 {
		t.Fatalf("uniform mean = %v, want ~0", m)
	}
}

func TestStringPreview(t *testing.T) {
	a := MustFromSlice([]float64{1, 2, 3, 4, 5, 6, 7, 8}, 2, 4)
	s := a.String()
	if s == "" {
		t.Fatal("empty String()")
	}
	if want := "Tensor(2x4)"; len(s) < len(want) || s[:len(want)] != want {
		t.Fatalf("String = %q", s)
	}
}

// Property: (A+B)+C == A+(B+C) element-wise up to float tolerance.
func TestQuickAddAssociative(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 64 {
			raw = raw[:64]
		}
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				raw[i] = 1
			}
			// Clamp to keep float error bounded.
			raw[i] = math.Mod(raw[i], 1e6)
		}
		n := len(raw)
		a := MustFromSlice(raw, n)
		b := a.Clone()
		b.Scale(0.5)
		c := a.Clone()
		c.Scale(-0.25)

		ab, _ := Add(a, b)
		left, _ := Add(ab, c)
		bc, _ := Add(b, c)
		right, _ := Add(a, bc)
		for i := range left.Data() {
			if math.Abs(left.Data()[i]-right.Data()[i]) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: matmul distributes over addition: A(B+C) == AB + AC.
func TestQuickMatMulDistributive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, k, n := 1+rng.Intn(6), 1+rng.Intn(6), 1+rng.Intn(6)
		a := Randn(rng, 0, 1, m, k)
		b := Randn(rng, 0, 1, k, n)
		c := Randn(rng, 0, 1, k, n)
		bc, _ := Add(b, c)
		left, _ := MatMul(a, bc)
		ab, _ := MatMul(a, b)
		ac, _ := MatMul(a, c)
		right, _ := Add(ab, ac)
		for i := range left.Data() {
			if math.Abs(left.Data()[i]-right.Data()[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: transpose is an involution.
func TestQuickTransposeInvolution(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, n := 1+rng.Intn(8), 1+rng.Intn(8)
		a := Randn(rng, 0, 1, m, n)
		at, _ := Transpose2D(a)
		att, _ := Transpose2D(at)
		if !a.SameShape(att) {
			return false
		}
		for i := range a.Data() {
			if a.Data()[i] != att.Data()[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSameShape(t *testing.T) {
	if !New(2, 3).SameShape(New(2, 3)) {
		t.Fatal("equal shapes reported unequal")
	}
	if New(2, 3).SameShape(New(3, 2)) {
		t.Fatal("unequal shapes reported equal")
	}
	if New(6).SameShape(New(2, 3)) {
		t.Fatal("different ranks reported equal")
	}
}
