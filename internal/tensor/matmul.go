package tensor

import (
	"fmt"

	"repro/internal/parallel"
)

// MatMul returns a × b for 2-D tensors a (m×k) and b (k×n). The multiply is
// blocked over rows and fanned out across the process-wide compute pool
// (internal/parallel) when the output is large enough to amortize the
// scheduling cost.
func MatMul(a, b *Tensor) (*Tensor, error) {
	if a.Dims() != 2 || b.Dims() != 2 {
		return nil, fmt.Errorf("%w: matmul %v x %v", ErrShapeMismatch, a.shape, b.shape)
	}
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		return nil, fmt.Errorf("%w: matmul inner %d != %d", ErrShapeMismatch, k, k2)
	}
	out := New(m, n)
	matMulInto(out.data, a.data, b.data, m, k, n)
	return out, nil
}

// MatMulInto computes out = a × b, reusing out's storage. out must be m×n.
func MatMulInto(out, a, b *Tensor) error {
	if a.Dims() != 2 || b.Dims() != 2 || out.Dims() != 2 {
		return fmt.Errorf("%w: matmul-into ranks", ErrShapeMismatch)
	}
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 || out.shape[0] != m || out.shape[1] != n {
		return fmt.Errorf("%w: matmul-into %v x %v -> %v", ErrShapeMismatch, a.shape, b.shape, out.shape)
	}
	matMulInto(out.data, a.data, b.data, m, k, n)
	return nil
}

// All three matmul kernels share one split policy: a chunk of output rows
// must carry at least parallel.MinWork() multiply-accumulates (each row is
// k*n of them) before the multiply fans out to the pool. The serial case is
// guarded with parallel.Chunks before any closure is built so steady-state
// small multiplies stay allocation-free.

func matMulInto(out, a, b []float64, m, k, n int) {
	if useBlockedGEMM(m, k, n) {
		gemmBlocked(out, a, b, m, k, n, false, false)
		return
	}
	g := parallel.Grain(k * n)
	if parallel.Chunks(m, g) <= 1 {
		matMulRows(out, a, b, 0, m, k, n)
		return
	}
	parallel.For(m, g, func(lo, hi int) {
		matMulRows(out, a, b, lo, hi, k, n)
	})
}

// matMulRows computes rows [lo,hi) of out = a×b using an ikj loop order that
// streams b row-wise for cache friendliness.
func matMulRows(out, a, b []float64, lo, hi, k, n int) {
	for i := lo; i < hi; i++ {
		oRow := out[i*n : (i+1)*n]
		for x := range oRow {
			oRow[x] = 0
		}
		aRow := a[i*k : (i+1)*k]
		for p, av := range aRow {
			if av == 0 {
				continue
			}
			bRow := b[p*n : (p+1)*n]
			for j, bv := range bRow {
				oRow[j] += av * bv
			}
		}
	}
}

// MatMulTransB returns a × bᵀ for 2-D tensors a (m×k) and b (n×k) without
// materializing the transpose of b. Because both a's rows and b's rows are
// contiguous, the kernel is a blocked batch of dot products: for each small
// tile of a's rows it streams b row-wise, reusing each b row across the tile
// while the tile's a rows stay in L1.
//
// The accumulation order over k (ascending, skipping zero a elements) is
// identical to Transpose2D(b) followed by MatMul, so results are bit-identical
// to the transpose-then-multiply formulation.
func MatMulTransB(a, b *Tensor) (*Tensor, error) {
	if a.Dims() != 2 || b.Dims() != 2 {
		return nil, fmt.Errorf("%w: matmul-transb %v x %v", ErrShapeMismatch, a.shape, b.shape)
	}
	m, k := a.shape[0], a.shape[1]
	n, k2 := b.shape[0], b.shape[1]
	if k != k2 {
		return nil, fmt.Errorf("%w: matmul-transb inner %d != %d", ErrShapeMismatch, k, k2)
	}
	out := New(m, n)
	matMulTransBInto(out.data, a.data, b.data, m, k, n)
	return out, nil
}

// MatMulTransBInto computes out = a × bᵀ, reusing out's storage. a must be
// m×k, b must be n×k, and out must be m×n.
func MatMulTransBInto(out, a, b *Tensor) error {
	if a.Dims() != 2 || b.Dims() != 2 || out.Dims() != 2 {
		return fmt.Errorf("%w: matmul-transb-into ranks", ErrShapeMismatch)
	}
	m, k := a.shape[0], a.shape[1]
	n, k2 := b.shape[0], b.shape[1]
	if k != k2 || out.shape[0] != m || out.shape[1] != n {
		return fmt.Errorf("%w: matmul-transb-into %v x %v -> %v", ErrShapeMismatch, a.shape, b.shape, out.shape)
	}
	matMulTransBInto(out.data, a.data, b.data, m, k, n)
	return nil
}

func matMulTransBInto(out, a, b []float64, m, k, n int) {
	if useBlockedGEMM(m, k, n) {
		gemmBlocked(out, a, b, m, k, n, false, true)
		return
	}
	g := parallel.Grain(k * n)
	if parallel.Chunks(m, g) <= 1 {
		matMulTransBRows(out, a, b, 0, m, k, n)
		return
	}
	parallel.For(m, g, func(lo, hi int) {
		matMulTransBRows(out, a, b, lo, hi, k, n)
	})
}

// transBTile is the number of b rows (output columns) processed together in
// matMulTransBRows: the four dot products share one pass over the a row (one
// zero test per a element instead of four) and their accumulator chains are
// independent, so the floating-point adds pipeline instead of serializing on
// a single sum.
const transBTile = 4

func matMulTransBRows(out, a, b []float64, lo, hi, k, n int) {
	for i := lo; i < hi; i++ {
		aRow := a[i*k : (i+1)*k]
		oRow := out[i*n : (i+1)*n]
		j := 0
		for ; j+transBTile <= n; j += transBTile {
			b0 := b[j*k : (j+1)*k]
			b1 := b[(j+1)*k : (j+2)*k]
			b2 := b[(j+2)*k : (j+3)*k]
			b3 := b[(j+3)*k : (j+4)*k]
			var s0, s1, s2, s3 float64
			for p, av := range aRow {
				if av == 0 {
					continue
				}
				s0 += av * b0[p]
				s1 += av * b1[p]
				s2 += av * b2[p]
				s3 += av * b3[p]
			}
			oRow[j], oRow[j+1], oRow[j+2], oRow[j+3] = s0, s1, s2, s3
		}
		for ; j < n; j++ {
			bRow := b[j*k : (j+1)*k]
			s := 0.0
			for p, av := range aRow {
				if av == 0 {
					continue
				}
				s += av * bRow[p]
			}
			oRow[j] = s
		}
	}
}

// MatMulTransA returns aᵀ × b for 2-D tensors a (k×m) and b (k×n) without
// materializing the transpose of a. The kernel walks a row-by-row (so a's
// k-major layout is streamed, not strided) and accumulates rank-1 updates
// into the output rows, reusing each b row across a tile of output rows.
//
// The accumulation order over k (ascending, skipping zero a elements) is
// identical to Transpose2D(a) followed by MatMul, so results are bit-identical
// to the transpose-then-multiply formulation.
func MatMulTransA(a, b *Tensor) (*Tensor, error) {
	if a.Dims() != 2 || b.Dims() != 2 {
		return nil, fmt.Errorf("%w: matmul-transa %v x %v", ErrShapeMismatch, a.shape, b.shape)
	}
	k, m := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		return nil, fmt.Errorf("%w: matmul-transa inner %d != %d", ErrShapeMismatch, k, k2)
	}
	out := New(m, n)
	matMulTransAInto(out.data, a.data, b.data, m, k, n)
	return out, nil
}

// MatMulTransAInto computes out = aᵀ × b, reusing out's storage. a must be
// k×m, b must be k×n, and out must be m×n.
func MatMulTransAInto(out, a, b *Tensor) error {
	if a.Dims() != 2 || b.Dims() != 2 || out.Dims() != 2 {
		return fmt.Errorf("%w: matmul-transa-into ranks", ErrShapeMismatch)
	}
	k, m := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 || out.shape[0] != m || out.shape[1] != n {
		return fmt.Errorf("%w: matmul-transa-into %v x %v -> %v", ErrShapeMismatch, a.shape, b.shape, out.shape)
	}
	matMulTransAInto(out.data, a.data, b.data, m, k, n)
	return nil
}

func matMulTransAInto(out, a, b []float64, m, k, n int) {
	if useBlockedGEMM(m, k, n) {
		gemmBlocked(out, a, b, m, k, n, true, false)
		return
	}
	g := parallel.Grain(k * n)
	if parallel.Chunks(m, g) <= 1 {
		matMulTransACols(out, a, b, 0, m, m, k, n)
		return
	}
	parallel.For(m, g, func(lo, hi int) {
		matMulTransACols(out, a, b, lo, hi, m, k, n)
	})
}

// matMulTransACols computes output rows [lo,hi) of out = aᵀ×b (i.e. columns
// [lo,hi) of a).
func matMulTransACols(out, a, b []float64, lo, hi, m, k, n int) {
	for i := lo; i < hi; i++ {
		oRow := out[i*n : (i+1)*n]
		for x := range oRow {
			oRow[x] = 0
		}
	}
	for p := 0; p < k; p++ {
		bRow := b[p*n : (p+1)*n]
		aOff := p * m
		for i := lo; i < hi; i++ {
			av := a[aOff+i]
			if av == 0 {
				continue
			}
			oRow := out[i*n : (i+1)*n]
			for j, bv := range bRow {
				oRow[j] += av * bv
			}
		}
	}
}

// transposeTile is the square blocking factor of Transpose2D, sized so a
// tile of the source and a tile of the destination both fit in L1.
const transposeTile = 32

// Transpose2D returns the transpose of a 2-D tensor. The copy is blocked into
// transposeTile×transposeTile tiles so both the row-major reads and the
// column-major writes stay within cache lines; odd remainder tiles are handled
// by the min-clamped tile bounds.
func Transpose2D(t *Tensor) (*Tensor, error) {
	if t.Dims() != 2 {
		return nil, fmt.Errorf("%w: transpose %v", ErrShapeMismatch, t.shape)
	}
	m, n := t.shape[0], t.shape[1]
	out := New(n, m)
	for i0 := 0; i0 < m; i0 += transposeTile {
		i1 := min(i0+transposeTile, m)
		for j0 := 0; j0 < n; j0 += transposeTile {
			j1 := min(j0+transposeTile, n)
			for i := i0; i < i1; i++ {
				row := t.data[i*n : i*n+n]
				for j := j0; j < j1; j++ {
					out.data[j*m+i] = row[j]
				}
			}
		}
	}
	return out, nil
}

// MatVec returns a × v for a 2-D tensor a (m×k) and 1-D tensor v (k).
func MatVec(a, v *Tensor) (*Tensor, error) {
	if a.Dims() != 2 || v.Dims() != 1 || a.shape[1] != v.shape[0] {
		return nil, fmt.Errorf("%w: matvec %v x %v", ErrShapeMismatch, a.shape, v.shape)
	}
	m, k := a.shape[0], a.shape[1]
	out := New(m)
	for i := 0; i < m; i++ {
		s := 0.0
		row := a.data[i*k : (i+1)*k]
		for j, av := range row {
			s += av * v.data[j]
		}
		out.data[i] = s
	}
	return out, nil
}

// Outer returns the outer product u vᵀ of two 1-D tensors.
func Outer(u, v *Tensor) (*Tensor, error) {
	if u.Dims() != 1 || v.Dims() != 1 {
		return nil, fmt.Errorf("%w: outer %v x %v", ErrShapeMismatch, u.shape, v.shape)
	}
	m, n := u.shape[0], v.shape[0]
	out := New(m, n)
	for i := 0; i < m; i++ {
		ui := u.data[i]
		if ui == 0 {
			continue
		}
		row := out.data[i*n : (i+1)*n]
		for j, vj := range v.data {
			row[j] = ui * vj
		}
	}
	return out, nil
}

// Dot returns the dot product of two tensors viewed as flat vectors.
func Dot(a, b *Tensor) (float64, error) {
	if len(a.data) != len(b.data) {
		return 0, fmt.Errorf("%w: dot %v . %v", ErrShapeMismatch, a.shape, b.shape)
	}
	s := 0.0
	for i, v := range a.data {
		s += v * b.data[i]
	}
	return s, nil
}
