package tensor

import (
	"fmt"
	"runtime"
	"sync"
)

// MatMul returns a × b for 2-D tensors a (m×k) and b (k×n). The multiply is
// blocked over rows and parallelized across GOMAXPROCS goroutines when the
// output is large enough to amortize the scheduling cost.
func MatMul(a, b *Tensor) (*Tensor, error) {
	if a.Dims() != 2 || b.Dims() != 2 {
		return nil, fmt.Errorf("%w: matmul %v x %v", ErrShapeMismatch, a.shape, b.shape)
	}
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		return nil, fmt.Errorf("%w: matmul inner %d != %d", ErrShapeMismatch, k, k2)
	}
	out := New(m, n)
	matMulInto(out.data, a.data, b.data, m, k, n)
	return out, nil
}

// MatMulInto computes out = a × b, reusing out's storage. out must be m×n.
func MatMulInto(out, a, b *Tensor) error {
	if a.Dims() != 2 || b.Dims() != 2 || out.Dims() != 2 {
		return fmt.Errorf("%w: matmul-into ranks", ErrShapeMismatch)
	}
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 || out.shape[0] != m || out.shape[1] != n {
		return fmt.Errorf("%w: matmul-into %v x %v -> %v", ErrShapeMismatch, a.shape, b.shape, out.shape)
	}
	matMulInto(out.data, a.data, b.data, m, k, n)
	return nil
}

// parallelThreshold is the minimum number of multiply-accumulate operations
// below which matMulInto stays single-threaded.
const parallelThreshold = 1 << 16

func matMulInto(out, a, b []float64, m, k, n int) {
	workers := runtime.GOMAXPROCS(0)
	if m*k*n < parallelThreshold || workers <= 1 || m == 1 {
		matMulRows(out, a, b, 0, m, k, n)
		return
	}
	if workers > m {
		workers = m
	}
	rowsPer := (m + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * rowsPer
		hi := lo + rowsPer
		if hi > m {
			hi = m
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			matMulRows(out, a, b, lo, hi, k, n)
		}(lo, hi)
	}
	wg.Wait()
}

// matMulRows computes rows [lo,hi) of out = a×b using an ikj loop order that
// streams b row-wise for cache friendliness.
func matMulRows(out, a, b []float64, lo, hi, k, n int) {
	for i := lo; i < hi; i++ {
		oRow := out[i*n : (i+1)*n]
		for x := range oRow {
			oRow[x] = 0
		}
		aRow := a[i*k : (i+1)*k]
		for p, av := range aRow {
			if av == 0 {
				continue
			}
			bRow := b[p*n : (p+1)*n]
			for j, bv := range bRow {
				oRow[j] += av * bv
			}
		}
	}
}

// Transpose2D returns the transpose of a 2-D tensor.
func Transpose2D(t *Tensor) (*Tensor, error) {
	if t.Dims() != 2 {
		return nil, fmt.Errorf("%w: transpose %v", ErrShapeMismatch, t.shape)
	}
	m, n := t.shape[0], t.shape[1]
	out := New(n, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			out.data[j*m+i] = t.data[i*n+j]
		}
	}
	return out, nil
}

// MatVec returns a × v for a 2-D tensor a (m×k) and 1-D tensor v (k).
func MatVec(a, v *Tensor) (*Tensor, error) {
	if a.Dims() != 2 || v.Dims() != 1 || a.shape[1] != v.shape[0] {
		return nil, fmt.Errorf("%w: matvec %v x %v", ErrShapeMismatch, a.shape, v.shape)
	}
	m, k := a.shape[0], a.shape[1]
	out := New(m)
	for i := 0; i < m; i++ {
		s := 0.0
		row := a.data[i*k : (i+1)*k]
		for j, av := range row {
			s += av * v.data[j]
		}
		out.data[i] = s
	}
	return out, nil
}

// Outer returns the outer product u vᵀ of two 1-D tensors.
func Outer(u, v *Tensor) (*Tensor, error) {
	if u.Dims() != 1 || v.Dims() != 1 {
		return nil, fmt.Errorf("%w: outer %v x %v", ErrShapeMismatch, u.shape, v.shape)
	}
	m, n := u.shape[0], v.shape[0]
	out := New(m, n)
	for i := 0; i < m; i++ {
		ui := u.data[i]
		if ui == 0 {
			continue
		}
		row := out.data[i*n : (i+1)*n]
		for j, vj := range v.data {
			row[j] = ui * vj
		}
	}
	return out, nil
}

// Dot returns the dot product of two tensors viewed as flat vectors.
func Dot(a, b *Tensor) (float64, error) {
	if len(a.data) != len(b.data) {
		return 0, fmt.Errorf("%w: dot %v . %v", ErrShapeMismatch, a.shape, b.shape)
	}
	s := 0.0
	for i, v := range a.data {
		s += v * b.data[i]
	}
	return s, nil
}
