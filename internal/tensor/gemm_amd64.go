package tensor

// AVX2 micro-kernel bindings. See gemm_amd64.s for the bit-identity
// contract; blocked.go drives these per 4×8 output tile.

//go:noescape
func gemmNN4x8(c, a, b *float64, k, lda, ldb, ldc int)

//go:noescape
func gemmTA4x8(c, a, b *float64, k, lda, ldb, ldc int)

func cpuid(eaxArg, ecxArg uint32) (eax, ebx, ecx, edx uint32)

func xgetbv() (eax, edx uint32)

// haveAVX2 gates the blocked-GEMM fast path: the micro kernels need AVX2 and
// an OS that saves YMM state across context switches.
var haveAVX2 = detectAVX2()

func detectAVX2() bool {
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, c1, _ := cpuid(1, 0)
	const osxsaveAndAVX = 1<<27 | 1<<28
	if c1&osxsaveAndAVX != osxsaveAndAVX {
		return false
	}
	if eax, _ := xgetbv(); eax&6 != 6 { // XMM and YMM state enabled in XCR0
		return false
	}
	_, b7, _, _ := cpuid(7, 0)
	return b7&(1<<5) != 0 // AVX2
}

//go:noescape
func daxpyAVX(dst, x *float64, n int, alpha float64)
