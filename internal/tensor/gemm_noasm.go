//go:build !amd64

package tensor

// Non-amd64 builds have no SIMD micro kernels; the matmuls stay on the naive
// row kernels (gemmBlocked falls back before ever reaching these stubs).
const haveAVX2 = false

func gemmNN4x8(c, a, b *float64, k, lda, ldb, ldc int) {
	panic("tensor: gemmNN4x8 without AVX2")
}

func gemmTA4x8(c, a, b *float64, k, lda, ldb, ldc int) {
	panic("tensor: gemmTA4x8 without AVX2")
}

func daxpyAVX(dst, x *float64, n int, alpha float64) {
	panic("tensor: daxpyAVX without AVX2")
}
