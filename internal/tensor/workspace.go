package tensor

// Workspace is grow-only scratch storage for per-call temporaries. A holder
// (typically a neural-network layer) owns one Workspace and addresses its
// scratch tensors by small integer slots; Get reshapes the slot's tensor in
// place, reallocating its backing array only when the requested volume
// exceeds the current capacity. In steady state — repeated calls with the
// same shapes — a Workspace performs no allocations at all.
//
// Returned tensors are valid until the next Get on the same slot. Their
// contents are unspecified (they hold whatever the previous use left); the
// caller must fully overwrite the data or call Zero first.
//
// A Workspace must not be shared across goroutines. The zero value is ready
// to use, and a copied Workspace must not be used (the copy would alias the
// original's buffers); holders that need a duplicate start from a fresh zero
// Workspace.
type Workspace struct {
	slots []*Tensor
}

// Get returns the slot's scratch tensor shaped to shape, growing backing
// storage if needed. The tensor's contents are unspecified.
func (w *Workspace) Get(slot int, shape ...int) *Tensor {
	t := w.slot(slot)
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic("tensor: negative workspace dimension")
		}
		n *= d
	}
	w.reshape(t, n, shape)
	return t
}

// Get1D returns the slot's scratch tensor shaped to [n].
func (w *Workspace) Get1D(slot, n int) *Tensor {
	t := w.slot(slot)
	w.reshape1(t, n, n)
	return t
}

// Get2D returns the slot's scratch tensor shaped to [d0, d1].
func (w *Workspace) Get2D(slot, d0, d1 int) *Tensor {
	t := w.slot(slot)
	w.reshape1(t, d0*d1, d0, d1)
	return t
}

// Get3D returns the slot's scratch tensor shaped to [d0, d1, d2].
func (w *Workspace) Get3D(slot, d0, d1, d2 int) *Tensor {
	t := w.slot(slot)
	w.reshape1(t, d0*d1*d2, d0, d1, d2)
	return t
}

// Get4D returns the slot's scratch tensor shaped to [d0, d1, d2, d3].
func (w *Workspace) Get4D(slot, d0, d1, d2, d3 int) *Tensor {
	t := w.slot(slot)
	w.reshape1(t, d0*d1*d2*d3, d0, d1, d2, d3)
	return t
}

// GetLike returns the slot's scratch tensor shaped like ref.
func (w *Workspace) GetLike(slot int, ref *Tensor) *Tensor {
	t := w.slot(slot)
	w.reshape(t, len(ref.data), ref.shape)
	return t
}

// slot returns the slot's tensor, creating empty tensors up to slot on first
// use (the only allocations a Workspace ever amortizes away).
func (w *Workspace) slot(slot int) *Tensor {
	for slot >= len(w.slots) {
		w.slots = append(w.slots, &Tensor{})
	}
	return w.slots[slot]
}

// reshape points t at an n-element view of its (possibly grown) backing array
// with the given dims, reusing the shape slice in place.
func (w *Workspace) reshape(t *Tensor, n int, dims []int) {
	if cap(t.data) < n {
		t.data = make([]float64, n)
	}
	t.data = t.data[:n]
	if cap(t.shape) < len(dims) {
		t.shape = make([]int, len(dims))
	}
	t.shape = t.shape[:len(dims)]
	copy(t.shape, dims)
}

// reshape1 is reshape for fixed-arity callers; the variadic dims slice stays
// on the caller's stack because it never escapes.
func (w *Workspace) reshape1(t *Tensor, n int, dims ...int) {
	for _, d := range dims {
		if d < 0 {
			panic("tensor: negative workspace dimension")
		}
	}
	w.reshape(t, n, dims)
}
