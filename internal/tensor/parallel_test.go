package tensor

import (
	"math/rand"
	"testing"

	"repro/internal/parallel"
)

// restorePool resets compute-pool configuration mutated by a test.
func restorePool(t *testing.T) {
	t.Helper()
	prevW, prevM := parallel.Workers(), parallel.MinWork()
	t.Cleanup(func() {
		parallel.SetWorkers(prevW)
		parallel.SetMinWork(prevM)
	})
}

// TestMatMulKernelsPoolParallelBitIdentical is the property test for the
// pool migration: each matmul kernel must produce bit-identical output with
// the pool sized 1 (serial) and sized past the chunk count, across odd
// shapes — fewer rows than a grain, rows == workers, prime rows.
func TestMatMulKernelsPoolParallelBitIdentical(t *testing.T) {
	restorePool(t)
	parallel.SetMinWork(64) // force parallel paths on small shapes
	shapes := []struct{ m, k, n int }{
		{1, 5, 4},    // single row: always one chunk
		{3, 200, 1},  // m < grain for the n=1 column case
		{4, 9, 8},    // m == workers
		{7, 11, 13},  // all prime
		{31, 17, 29}, // prime, larger than workers
		{64, 33, 12}, // even split
	}
	rng := rand.New(rand.NewSource(7))
	for _, s := range shapes {
		a := Randn(rng, 0, 1, s.m, s.k)
		b := Randn(rng, 0, 1, s.k, s.n)
		bt := Randn(rng, 0, 1, s.n, s.k)
		at := Randn(rng, 0, 1, s.k, s.m)

		type kernel struct {
			name string
			run  func(out *Tensor) error
		}
		kernels := []kernel{
			{"matmul", func(out *Tensor) error { return MatMulInto(out, a, b) }},
			{"transb", func(out *Tensor) error { return MatMulTransBInto(out, a, bt) }},
			{"transa", func(out *Tensor) error { return MatMulTransAInto(out, at, b) }},
		}
		for _, kn := range kernels {
			parallel.SetWorkers(1)
			want := New(s.m, s.n)
			if err := kn.run(want); err != nil {
				t.Fatalf("%s %dx%dx%d serial: %v", kn.name, s.m, s.k, s.n, err)
			}
			for _, workers := range []int{2, 4, 7} {
				parallel.SetWorkers(workers)
				got := New(s.m, s.n)
				got.Fill(99) // stale contents must be fully overwritten
				if err := kn.run(got); err != nil {
					t.Fatalf("%s %dx%dx%d workers=%d: %v", kn.name, s.m, s.k, s.n, workers, err)
				}
				for i := range want.Data() {
					if got.Data()[i] != want.Data()[i] {
						t.Fatalf("%s %dx%dx%d workers=%d: out[%d] = %v, serial %v",
							kn.name, s.m, s.k, s.n, workers, i, got.Data()[i], want.Data()[i])
					}
				}
			}
		}
	}
}
