package model

import (
	"math/rand"
	"testing"

	"repro/internal/data"
	"repro/internal/nn"
	"repro/internal/tensor"
)

func TestBuildAllRegisteredDatasets(t *testing.T) {
	for _, name := range data.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			spec, err := data.Lookup(name)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(1))
			m, err := Build(spec, rng)
			if err != nil {
				t.Fatal(err)
			}
			// Forward a small batch of real generated data through the model.
			ds, err := data.GenerateN(spec, spec.Classes, 1)
			if err != nil {
				t.Fatal(err)
			}
			x, y := ds.Batch(0, 4)
			out := m.Forward(x, true)
			if out.Dim(0) != 4 || out.Dim(1) != spec.Classes {
				t.Fatalf("output shape %v, want [4 %d]", out.Shape(), spec.Classes)
			}
			var loss nn.SoftmaxCrossEntropy
			res, err := loss.Eval(out, y)
			if err != nil {
				t.Fatal(err)
			}
			m.Backward(res.Grad)
			if m.NumParams() == 0 {
				t.Fatal("model has no parameters")
			}
		})
	}
}

func TestResNet20LayerCount(t *testing.T) {
	m := ResNet20(3, 10, rand.New(rand.NewSource(1)))
	// 20 weight layers: initial conv + 9 blocks × 2 convs + classifier,
	// plus 2 projection convs (stage transitions) = 22 spans.
	if got := m.NumLayers(); got != 22 {
		t.Fatalf("ResNet20 spans = %d, want 22", got)
	}
}

func TestVGG11LayerCount(t *testing.T) {
	m, err := VGG11(3, 16, 16, 32, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	// 8 convolutions + 2 dense layers.
	if got := m.NumLayers(); got != 10 {
		t.Fatalf("VGG11 spans = %d, want 10", got)
	}
}

func TestVGG11RejectsTinyInputs(t *testing.T) {
	if _, err := VGG11(3, 8, 8, 10, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("VGG11 accepted 8x8 input")
	}
}

func TestM18LayerCount(t *testing.T) {
	m, err := M18(256, 36, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	// 17 convolutions + 1 dense = 18 weight layers, as the name promises.
	if got := m.NumLayers(); got != 18 {
		t.Fatalf("M18 spans = %d, want 18", got)
	}
}

func TestM18RejectsShortSequences(t *testing.T) {
	if _, err := M18(32, 10, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("M18 accepted seqLen=32")
	}
}

func TestFCNN6LayerCount(t *testing.T) {
	m := FCNN6(600, 100, rand.New(rand.NewSource(1)))
	// The paper's Fig. 5 sweeps layer sets {5}, {4,5}, ..., {1..6} of a
	// 6-layer network.
	if got := m.NumLayers(); got != 6 {
		t.Fatalf("FCNN6 spans = %d, want 6", got)
	}
}

func TestBuildFallbackByModality(t *testing.T) {
	spec := data.Spec{
		Name: "custom-tabular", Records: 10, Classes: 5,
		Modality: data.Tabular, Features: 32, Noise: 0.1,
	}
	m, err := Build(spec, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if m.NumLayers() != 6 {
		t.Fatalf("fallback tabular spans = %d", m.NumLayers())
	}
	spec = data.Spec{
		Name: "custom-audio", Records: 10, Classes: 5,
		Modality: data.Audio, SeqLen: 128, Noise: 0.1,
	}
	if _, err := Build(spec, rand.New(rand.NewSource(1))); err != nil {
		t.Fatal(err)
	}
	if _, err := Build(data.Spec{Name: "x"}, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("Build accepted spec with no modality")
	}
}

// TestFCNN6Learns drives a few hundred SGD steps on an easy synthetic task
// and requires the loss to fall, validating the whole stack end to end.
func TestFCNN6Learns(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	spec := data.Spec{
		Name: "t", Records: 64, Classes: 4,
		Modality: data.Tabular, Features: 24, Noise: 0.02,
	}
	ds, err := data.GenerateN(spec, 64, 7)
	if err != nil {
		t.Fatal(err)
	}
	m := FCNN6(24, 4, rng)
	var loss nn.SoftmaxCrossEntropy
	x, y := ds.Batch(0, 64)

	evalLoss := func() float64 {
		out := m.Forward(x, true)
		res, err := loss.Eval(out, y)
		if err != nil {
			t.Fatal(err)
		}
		return res.Mean
	}

	initial := evalLoss()
	lr := 0.05
	for i := 0; i < 150; i++ {
		out := m.Forward(x, true)
		res, err := loss.Eval(out, y)
		if err != nil {
			t.Fatal(err)
		}
		m.Backward(res.Grad)
		params, grads := m.Params(), m.Grads()
		for j, p := range params {
			pd, gd := p.Data(), grads[j].Data()
			for k := range pd {
				pd[k] -= lr * gd[k]
			}
		}
	}
	final := evalLoss()
	if final >= initial*0.7 {
		t.Fatalf("loss %v -> %v; FCNN6 failed to learn", initial, final)
	}
}

func TestResNet20ForwardShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := ResNet20(3, 10, rng)
	x := tensor.Randn(rng, 0, 1, 2, 3, 16, 16)
	out := m.Forward(x, true)
	if out.Dim(0) != 2 || out.Dim(1) != 10 {
		t.Fatalf("ResNet20 output %v", out.Shape())
	}
	// Eval mode must also work (exercises BN running stats).
	out = m.Forward(x, false)
	if out.Dim(1) != 10 {
		t.Fatalf("ResNet20 eval output %v", out.Shape())
	}
}

func TestModelsAreDeterministicPerSeed(t *testing.T) {
	a := FCNN6(32, 5, rand.New(rand.NewSource(9)))
	b := FCNN6(32, 5, rand.New(rand.NewSource(9)))
	av, bv := a.ParamVector(), b.ParamVector()
	for i := range av {
		if av[i] != bv[i] {
			t.Fatal("same seed should build identical models")
		}
	}
}
