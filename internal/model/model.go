// Package model builds the four neural-network families of the paper's
// Table 2: ResNet20 (Cifar-10/100), VGG11 (GTSRB, CelebA), M18 (Speech
// Commands), and the 6-layer FCNN (Purchase100, Texas100).
//
// Architectures are topology-faithful but channel-scaled so that full
// federated-learning experiments run on CPU: layer counts, residual wiring,
// pooling schedule, and activation choices match the originals, while widths
// are divided by a constant factor. The paper's findings are architectural
// (the penultimate layer leaks the most membership information in every
// family), so preserving topology preserves the phenomenon under test.
package model

import (
	"fmt"
	"math/rand"

	"repro/internal/data"
	"repro/internal/nn"
)

// Build constructs the paper's model family for the given dataset spec
// (Table 2): ResNet20 for cifar10/cifar100, VGG11 for gtsrb/celeba, M18 for
// speechcommands, FCNN-6 for purchase100/texas100.
func Build(spec data.Spec, rng *rand.Rand) (*nn.Model, error) {
	switch spec.Name {
	case "cifar10", "cifar100":
		return ResNet20(spec.Channels, spec.Classes, rng), nil
	case "gtsrb", "celeba":
		return VGG11(spec.Channels, spec.Height, spec.Width, spec.Classes, rng)
	case "speechcommands":
		return M18(spec.SeqLen, spec.Classes, rng)
	case "purchase100", "texas100":
		return FCNN6(spec.Features, spec.Classes, rng), nil
	}
	// Unknown datasets fall back by modality.
	switch spec.Modality {
	case data.Image:
		return ResNet20(spec.Channels, spec.Classes, rng), nil
	case data.Audio:
		return M18(spec.SeqLen, spec.Classes, rng)
	case data.Tabular:
		return FCNN6(spec.Features, spec.Classes, rng), nil
	}
	return nil, fmt.Errorf("model: no architecture for spec %q", spec.Name)
}

// resNetWidth is the scaled base width (the original uses 16).
const resNetWidth = 4

// ResNet20 builds the CIFAR-style ResNet20: an initial 3×3 convolution
// followed by three stages of three basic residual blocks (widths w, 2w, 4w;
// stride-2 downsampling at stage boundaries), global average pooling, and a
// linear classifier. 20 weight layers, as in He et al.
func ResNet20(inChannels, classes int, rng *rand.Rand) *nn.Model {
	w := resNetWidth
	layers := []nn.Layer{
		nn.NewConv2D(inChannels, w, 3, 1, 1, rng),
		nn.NewBatchNorm(w),
		nn.NewReLU(),
	}
	widths := []int{w, 2 * w, 4 * w}
	in := w
	for stage, width := range widths {
		for block := 0; block < 3; block++ {
			stride := 1
			if stage > 0 && block == 0 {
				stride = 2
			}
			layers = append(layers, nn.NewResidual(in, width, stride, rng))
			in = width
		}
	}
	layers = append(layers,
		nn.NewGlobalAvgPool(),
		nn.NewDense(in, classes, rng),
	)
	return nn.NewModel(layers...)
}

// vggWidths are the scaled VGG11 convolution widths (originals divided
// by 16: 64,128,256,256,512,512,512,512).
var vggWidths = []int{4, 8, 16, 16, 32, 32, 32, 32}

// vggPoolAfter marks the convolution indices followed by 2×2 max pooling.
// The original VGG11 pools after convs 1, 2, 4, 6 and 8; with 16×16 inputs we
// keep four pools (after convs 1, 2, 4, 8) so the final feature map is 1×1.
var vggPoolAfter = map[int]bool{0: true, 1: true, 3: true, 7: true}

// VGG11 builds the VGG11 configuration used for GTSRB and CelebA: eight 3×3
// convolutions with BatchNorm (this is the "neural network with 8
// convolutional layers" analyzed in the paper's Fig. 4) followed by a
// two-layer classifier head.
func VGG11(inChannels, height, width, classes int, rng *rand.Rand) (*nn.Model, error) {
	if height < 16 || width < 16 {
		return nil, fmt.Errorf("model: VGG11 needs >=16x16 inputs, got %dx%d", height, width)
	}
	var layers []nn.Layer
	in := inChannels
	spatial := height
	for i, w := range vggWidths {
		layers = append(layers,
			nn.NewConv2D(in, w, 3, 1, 1, rng),
			nn.NewBatchNorm(w),
			nn.NewReLU(),
		)
		if vggPoolAfter[i] {
			layers = append(layers, nn.NewMaxPool2D(2))
			spatial /= 2
		}
		in = w
	}
	flat := in * spatial * spatial
	layers = append(layers,
		nn.NewFlatten(),
		nn.NewDenseAct(flat, 32, nn.ActReLU, rng),
		nn.NewDense(32, classes, rng),
	)
	return nn.NewModel(layers...), nil
}

// m18StageWidths are the scaled M18 stage widths (originals 64,128,256,512
// divided by 16).
var m18StageWidths = []int{4, 8, 16, 32}

// M18 builds the 18-weight-layer 1-D convolutional network of Dai et al.
// ("Very Deep Convolutional Neural Networks for Raw Waveforms"): a long
// stride-4 input convolution, four stages of four 3-tap convolutions with
// BatchNorm and stage-boundary max pooling, global average pooling, and a
// linear classifier — 17 convolutions + 1 dense = 18 weight layers.
func M18(seqLen, classes int, rng *rand.Rand) (*nn.Model, error) {
	if seqLen < 64 {
		return nil, fmt.Errorf("model: M18 needs seqLen >= 64, got %d", seqLen)
	}
	first := m18StageWidths[0]
	layers := []nn.Layer{
		nn.NewConv1D(1, first, 16, 4, 6, rng),
		nn.NewBatchNorm(first),
		nn.NewReLU(),
		nn.NewMaxPool1D(2),
	}
	in := first
	for stage, width := range m18StageWidths {
		for block := 0; block < 4; block++ {
			layers = append(layers,
				nn.NewConv1D(in, width, 3, 1, 1, rng),
				nn.NewBatchNorm(width),
				nn.NewReLU(),
			)
			in = width
		}
		if stage < len(m18StageWidths)-1 {
			layers = append(layers, nn.NewMaxPool1D(2))
		}
	}
	layers = append(layers,
		nn.NewGlobalAvgPool(),
		nn.NewDense(in, classes, rng),
	)
	return nn.NewModel(layers...), nil
}

// fcnnWidths are the scaled fully-connected widths (originals
// 4096,2048,1024,512,256 divided by 8; the paper's sixth layer is the
// classifier).
var fcnnWidths = []int{512, 256, 128, 64, 32}

// FCNN6 builds the paper's 6-layer fully-connected classifier for
// Purchase100/Texas100: five Tanh hidden layers plus a linear classification
// layer (six weight layers in total, so the penultimate layer is layer 5 —
// the layer DINAR obfuscates in Fig. 5).
func FCNN6(features, classes int, rng *rand.Rand) *nn.Model {
	var layers []nn.Layer
	in := features
	for _, w := range fcnnWidths {
		layers = append(layers, nn.NewDenseAct(in, w, nn.ActTanh, rng))
		in = w
	}
	layers = append(layers, nn.NewDense(in, classes, rng))
	return nn.NewModel(layers...)
}
