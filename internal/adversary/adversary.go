// Package adversary implements deterministic, seeded Byzantine-client
// behaviors for the learning rounds, mirroring internal/faultnet's design
// for the transport layer: a Schedule maps client ids to poisoning Plans,
// and the same seed produces bit-identical corrupted payloads on every run,
// so robustness tests and experiments are reproducible.
//
// The adversary is packaged as a Defense wrapper: it delegates every hook
// to the wrapped (honest) defense and then corrupts the upload of scheduled
// clients in BeforeUpload — exactly where a malicious client would deviate
// from the protocol, after local training and after the legitimate defense
// transformations. The same wrapper therefore works in the in-process
// fl.System (shared defense instance, per-client updates) and as the
// defense of a malicious flnet client process.
package adversary

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"repro/internal/fl"
)

// Kind selects a poisoning strategy.
type Kind int

// Poisoning strategies.
const (
	// Benign leaves the upload untouched.
	Benign Kind = iota
	// SignFlip uploads global − Scale·(state − global): the client's honest
	// progress, inverted.
	SignFlip
	// Boost uploads global + Scale·(state − global): the model-replacement
	// attack, amplifying the client's delta to dominate the average.
	Boost
	// Noise adds N(0, Sigma²) to every coordinate.
	Noise
	// NaNBomb plants NaN and ±Inf coordinates, which corrupt FedAvg sums
	// and misorder sort-based aggregators.
	NaNBomb
	// Replay re-uploads the state from the client's first poisoned round
	// every round after it (a stale-round replay).
	Replay
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Benign:
		return "benign"
	case SignFlip:
		return "sign-flip"
	case Boost:
		return "boost"
	case Noise:
		return "noise"
	case NaNBomb:
		return "nan-bomb"
	case Replay:
		return "replay"
	default:
		return fmt.Sprintf("adversary(%d)", int(k))
	}
}

// Kinds returns every attack strategy (excluding Benign) in declaration
// order — the experiment matrix iterates this.
func Kinds() []Kind {
	return []Kind{SignFlip, Boost, Noise, NaNBomb, Replay}
}

// Plan is the poisoning behavior assigned to one client.
type Plan struct {
	Kind Kind
	// Scale is the delta amplification for SignFlip (default 1) and Boost
	// (default 10).
	Scale float64
	// Sigma is the noise standard deviation for Noise (default 1).
	Sigma float64
	// StopAfter bounds the attack to rounds < StopAfter; 0 poisons every
	// round. Tests use it to model a transient compromise.
	StopAfter int
}

// Schedule returns the plan for a client id. Schedules must be pure
// functions of the id so runs are reproducible.
type Schedule func(clientID int) Plan

// None is the all-benign schedule.
func None(int) Plan { return Plan{} }

// Mark assigns plan to the listed client ids and Benign to everyone else.
func Mark(plan Plan, ids ...int) Schedule {
	marked := make(map[int]bool, len(ids))
	for _, id := range ids {
		marked[id] = true
	}
	return func(clientID int) Plan {
		if marked[clientID] {
			return plan
		}
		return Plan{}
	}
}

// FirstF marks clients 0..f-1 as malicious with plan — the conventional
// "f of n" Byzantine cohort.
func FirstF(f int, plan Plan) Schedule {
	return func(clientID int) Plan {
		if clientID < f {
			return plan
		}
		return Plan{}
	}
}

// Defense wraps an honest defense with scheduled poisoning. Safe for
// concurrent use by parallel clients.
type Defense struct {
	inner    fl.Defense
	seed     int64
	schedule Schedule

	mu      sync.Mutex
	replays map[int][]float64
}

var _ fl.Defense = (*Defense)(nil)

// Wrap builds the adversarial wrapper. A nil schedule means None.
func Wrap(inner fl.Defense, seed int64, schedule Schedule) *Defense {
	if schedule == nil {
		schedule = None
	}
	return &Defense{
		inner:    inner,
		seed:     seed,
		schedule: schedule,
		replays:  make(map[int][]float64),
	}
}

// Name implements fl.Defense.
func (d *Defense) Name() string { return d.inner.Name() + "+adversary" }

// Bind implements fl.Defense.
func (d *Defense) Bind(info fl.ModelInfo) error { return d.inner.Bind(info) }

// OnGlobalModel implements fl.Defense.
func (d *Defense) OnGlobalModel(clientID, round int, global []float64) []float64 {
	return d.inner.OnGlobalModel(clientID, round, global)
}

// Aggregate implements fl.Defense (the server side stays honest).
func (d *Defense) Aggregate(round int, prevGlobal []float64, updates []*fl.Update) ([]float64, error) {
	return d.inner.Aggregate(round, prevGlobal, updates)
}

// BeforeUpload implements fl.Defense: the honest defense runs first, then
// the scheduled corruption.
func (d *Defense) BeforeUpload(round int, global []float64, u *fl.Update) {
	d.inner.BeforeUpload(round, global, u)
	plan := d.schedule(u.ClientID)
	if plan.Kind == Benign || (plan.StopAfter > 0 && round >= plan.StopAfter) {
		return
	}
	d.corrupt(plan, round, global, u)
}

// mix derives a deterministic 64-bit stream seed from (seed, client, round)
// with a SplitMix64-style hash, so each poisoned upload has independent but
// reproducible randomness.
func mix(seed int64, clientID, round int) int64 {
	z := uint64(seed) ^ uint64(clientID)*0x9e3779b97f4a7c15 ^ uint64(round)*0xbf58476d1ce4e5b9
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}

func (d *Defense) corrupt(plan Plan, round int, global []float64, u *fl.Update) {
	switch plan.Kind {
	case SignFlip:
		scale := plan.Scale
		if scale == 0 {
			scale = 1
		}
		for i := range u.State {
			u.State[i] = global[i] - scale*(u.State[i]-global[i])
		}
	case Boost:
		scale := plan.Scale
		if scale == 0 {
			scale = 10
		}
		for i := range u.State {
			u.State[i] = global[i] + scale*(u.State[i]-global[i])
		}
	case Noise:
		sigma := plan.Sigma
		if sigma == 0 {
			sigma = 1
		}
		rng := rand.New(rand.NewSource(mix(d.seed, u.ClientID, round)))
		for i := range u.State {
			u.State[i] += rng.NormFloat64() * sigma
		}
	case NaNBomb:
		for i := range u.State {
			if i%7 == 0 {
				u.State[i] = math.NaN()
			}
		}
		if len(u.State) > 1 {
			u.State[1] = math.Inf(1)
		}
		if len(u.State) > 2 {
			u.State[2] = math.Inf(-1)
		}
	case Replay:
		d.mu.Lock()
		cached := d.replays[u.ClientID]
		if cached == nil {
			// First poisoned round: upload honestly but remember the state —
			// every later round replays it.
			d.replays[u.ClientID] = append([]float64(nil), u.State...)
			d.mu.Unlock()
			return
		}
		d.mu.Unlock()
		u.State = append([]float64(nil), cached...)
	}
}
