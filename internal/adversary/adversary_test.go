package adversary

import (
	"math"
	"testing"

	"repro/internal/fl"
)

// identityDefense is a minimal honest defense for the wrapper tests.
type identityDefense struct{ bound bool }

func (d *identityDefense) Name() string { return "none" }
func (d *identityDefense) Bind(fl.ModelInfo) error {
	d.bound = true
	return nil
}
func (d *identityDefense) OnGlobalModel(_, _ int, global []float64) []float64 {
	return append([]float64(nil), global...)
}
func (d *identityDefense) BeforeUpload(_ int, _ []float64, _ *fl.Update) {}
func (d *identityDefense) Aggregate(_ int, _ []float64, updates []*fl.Update) ([]float64, error) {
	return fl.FedAvg(updates)
}

func upload(d *Defense, clientID, round int, global, state []float64) *fl.Update {
	u := &fl.Update{ClientID: clientID, Round: round, State: append([]float64(nil), state...), NumSamples: 1}
	d.BeforeUpload(round, global, u)
	return u
}

func TestWrapDelegates(t *testing.T) {
	inner := &identityDefense{}
	d := Wrap(inner, 1, nil)
	if d.Name() != "none+adversary" {
		t.Fatalf("name = %q", d.Name())
	}
	if err := d.Bind(fl.ModelInfo{NumParams: 1, NumState: 1}); err != nil || !inner.bound {
		t.Fatal("Bind not delegated")
	}
	if got := d.OnGlobalModel(0, 0, []float64{4})[0]; got != 4 {
		t.Fatal("OnGlobalModel not delegated")
	}
	got, err := d.Aggregate(0, nil, []*fl.Update{{State: []float64{2}, NumSamples: 1}})
	if err != nil || got[0] != 2 {
		t.Fatal("Aggregate not delegated")
	}
}

func TestBenignScheduleLeavesUploadUntouched(t *testing.T) {
	d := Wrap(&identityDefense{}, 1, None)
	u := upload(d, 0, 0, []float64{0, 0}, []float64{1, 2})
	if u.State[0] != 1 || u.State[1] != 2 {
		t.Fatalf("benign upload mutated: %v", u.State)
	}
}

func TestSignFlip(t *testing.T) {
	d := Wrap(&identityDefense{}, 1, Mark(Plan{Kind: SignFlip}, 0))
	global := []float64{1, 1}
	u := upload(d, 0, 0, global, []float64{2, 0.5})
	// global - (state - global): deltas +1 and -0.5 become -1 and +0.5.
	if u.State[0] != 0 || u.State[1] != 1.5 {
		t.Fatalf("sign-flip = %v, want [0 1.5]", u.State)
	}
	// Unscheduled clients stay honest.
	u = upload(d, 1, 0, global, []float64{2, 0.5})
	if u.State[0] != 2 {
		t.Fatalf("unmarked client corrupted: %v", u.State)
	}
}

func TestBoost(t *testing.T) {
	d := Wrap(&identityDefense{}, 1, Mark(Plan{Kind: Boost}, 0))
	u := upload(d, 0, 0, []float64{0}, []float64{1})
	if u.State[0] != 10 { // default scale 10
		t.Fatalf("boost = %v, want [10]", u.State)
	}
	d = Wrap(&identityDefense{}, 1, Mark(Plan{Kind: Boost, Scale: 3}, 0))
	u = upload(d, 0, 0, []float64{0}, []float64{1})
	if u.State[0] != 3 {
		t.Fatalf("boost(scale=3) = %v, want [3]", u.State)
	}
}

func TestNoiseDeterministicPerSeed(t *testing.T) {
	mk := func(seed int64) []float64 {
		d := Wrap(&identityDefense{}, seed, Mark(Plan{Kind: Noise, Sigma: 0.5}, 0))
		return upload(d, 0, 3, []float64{0, 0, 0}, []float64{1, 1, 1}).State
	}
	a, b := mk(42), mk(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %g vs %g", i, a[i], b[i])
		}
		if a[i] == 1 {
			t.Fatalf("noise did not perturb coordinate %d", i)
		}
	}
	c := mk(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical noise")
	}
}

func TestNoiseVariesAcrossRoundsAndClients(t *testing.T) {
	d := Wrap(&identityDefense{}, 7, FirstF(2, Plan{Kind: Noise}))
	r0 := upload(d, 0, 0, []float64{0}, []float64{0}).State[0]
	r1 := upload(d, 0, 1, []float64{0}, []float64{0}).State[0]
	c1 := upload(d, 1, 0, []float64{0}, []float64{0}).State[0]
	if r0 == r1 || r0 == c1 {
		t.Fatalf("noise streams should be independent: r0=%g r1=%g c1=%g", r0, r1, c1)
	}
}

func TestNaNBomb(t *testing.T) {
	d := Wrap(&identityDefense{}, 1, Mark(Plan{Kind: NaNBomb}, 0))
	state := make([]float64, 16)
	u := upload(d, 0, 0, make([]float64, 16), state)
	if !math.IsNaN(u.State[0]) || !math.IsNaN(u.State[7]) || !math.IsNaN(u.State[14]) {
		t.Fatalf("every 7th coordinate should be NaN: %v", u.State)
	}
	if !math.IsInf(u.State[1], 1) || !math.IsInf(u.State[2], -1) {
		t.Fatalf("coordinates 1/2 should be +/-Inf: %v", u.State)
	}
}

func TestReplayUploadsStaleState(t *testing.T) {
	d := Wrap(&identityDefense{}, 1, Mark(Plan{Kind: Replay}, 0))
	global := []float64{0}
	// Round 0: the honest state is cached and uploaded unchanged.
	u := upload(d, 0, 0, global, []float64{1})
	if u.State[0] != 1 {
		t.Fatalf("first replay round should upload honestly: %v", u.State)
	}
	// Later rounds replay the cached round-0 state regardless of progress.
	u = upload(d, 0, 1, global, []float64{5})
	if u.State[0] != 1 {
		t.Fatalf("round 1 should replay the stale state: %v", u.State)
	}
	u = upload(d, 0, 7, global, []float64{9})
	if u.State[0] != 1 {
		t.Fatalf("round 7 should replay the stale state: %v", u.State)
	}
	// Other clients have independent caches.
	u = upload(d, 1, 1, global, []float64{5})
	if u.State[0] != 5 {
		t.Fatalf("unmarked client corrupted: %v", u.State)
	}
}

func TestStopAfterBoundsAttack(t *testing.T) {
	d := Wrap(&identityDefense{}, 1, Mark(Plan{Kind: Boost, StopAfter: 2}, 0))
	if u := upload(d, 0, 0, []float64{0}, []float64{1}); u.State[0] != 10 {
		t.Fatalf("round 0 should be poisoned: %v", u.State)
	}
	if u := upload(d, 0, 1, []float64{0}, []float64{1}); u.State[0] != 10 {
		t.Fatalf("round 1 should be poisoned: %v", u.State)
	}
	if u := upload(d, 0, 2, []float64{0}, []float64{1}); u.State[0] != 1 {
		t.Fatalf("round 2 should be honest again: %v", u.State)
	}
}

func TestFirstF(t *testing.T) {
	s := FirstF(3, Plan{Kind: SignFlip})
	for id := 0; id < 3; id++ {
		if s(id).Kind != SignFlip {
			t.Fatalf("client %d should be malicious", id)
		}
	}
	if s(3).Kind != Benign {
		t.Fatal("client 3 should be benign")
	}
}

func TestKindsAndStrings(t *testing.T) {
	kinds := Kinds()
	if len(kinds) != 5 {
		t.Fatalf("kinds = %v", kinds)
	}
	seen := map[string]bool{}
	for _, k := range kinds {
		if k == Benign {
			t.Fatal("Kinds must exclude Benign")
		}
		name := k.String()
		if name == "" || seen[name] {
			t.Fatalf("kind %d has bad name %q", k, name)
		}
		seen[name] = true
	}
	if Benign.String() != "benign" {
		t.Fatalf("benign name = %q", Benign.String())
	}
	if Kind(99).String() == "" {
		t.Fatal("unknown kinds need a printable name")
	}
}

// TestAdversaryInSystem wires the wrapper into a real federation: with plain
// FedAvg and no screen, one boosting client visibly shifts the aggregate
// compared to an honest run with the same seed.
func TestAdversaryInSystem(t *testing.T) {
	run := func(schedule Schedule) []float64 {
		sys, err := fl.NewSystem(fl.Config{
			Dataset:     "purchase100",
			Records:     300,
			Clients:     3,
			Rounds:      1,
			LocalEpochs: 1,
			BatchSize:   32,
			Seed:        5,
			NoScreen:    true,
		}, Wrap(&identityDefense{}, 5, schedule))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sys.Run(t.Context()); err != nil {
			t.Fatal(err)
		}
		return sys.Server.GlobalState()
	}
	honest := run(None)
	poisoned := run(Mark(Plan{Kind: Boost, Scale: 50}, 0))
	diff := 0.0
	for i := range honest {
		diff += math.Abs(honest[i] - poisoned[i])
	}
	if diff == 0 {
		t.Fatal("boosting client did not move the aggregate")
	}
}
