package plot

import (
	"strings"
	"testing"
)

func TestBarChart(t *testing.T) {
	out := BarChart("AUC", []Bar{
		{Label: "none", Value: 76},
		{Label: "dinar", Value: 50},
	}, 50, 100, 20)
	if !strings.Contains(out, "AUC") || !strings.Contains(out, "none") || !strings.Contains(out, "dinar") {
		t.Fatalf("missing content:\n%s", out)
	}
	// none (76) must have a longer bar than dinar (50).
	lines := strings.Split(out, "\n")
	noneBar := strings.Count(lines[1], "█")
	dinarBar := strings.Count(lines[2], "█")
	if noneBar <= dinarBar {
		t.Fatalf("bar lengths: none=%d dinar=%d\n%s", noneBar, dinarBar, out)
	}
	if dinarBar != 0 {
		t.Fatalf("value at axis minimum should render empty, got %d", dinarBar)
	}
}

func TestBarChartClampsAndDefaults(t *testing.T) {
	out := BarChart("", []Bar{{Label: "x", Value: 999}}, 0, 100, 0)
	if !strings.Contains(out, "999.0") {
		t.Fatalf("original value not printed:\n%s", out)
	}
	// Degenerate range must not panic.
	_ = BarChart("", []Bar{{Label: "x", Value: 1}}, 5, 5, 10)
}

func TestScatter(t *testing.T) {
	out := Scatter("tradeoff", []Point{
		{X: 60, Y: 50, Label: "dinar"},
		{X: 30, Y: 75, Label: "none"},
	}, 30, 10)
	if !strings.Contains(out, "tradeoff") {
		t.Fatal("missing title")
	}
	if !strings.Contains(out, "d") || !strings.Contains(out, "n") {
		t.Fatalf("missing point marks:\n%s", out)
	}
	if !strings.Contains(out, "legend: d=dinar n=none") {
		t.Fatalf("missing legend:\n%s", out)
	}
}

func TestScatterEmpty(t *testing.T) {
	out := Scatter("t", nil, 10, 5)
	if !strings.Contains(out, "no points") {
		t.Fatalf("empty scatter: %q", out)
	}
}

func TestScatterDegenerateRanges(t *testing.T) {
	// Identical coordinates must not divide by zero.
	out := Scatter("t", []Point{{X: 1, Y: 1, Label: "a"}, {X: 1, Y: 1, Label: "b"}}, 10, 5)
	if out == "" {
		t.Fatal("empty output")
	}
}

func TestSeries(t *testing.T) {
	out := Series("divergence", map[string][]float64{
		"purchase100": {0.1, 0.2, 0.3, 0.9},
	})
	if !strings.Contains(out, "purchase100") {
		t.Fatalf("missing label:\n%s", out)
	}
	if !strings.Contains(out, "█") || !strings.Contains(out, "▁") {
		t.Fatalf("sparkline levels missing:\n%s", out)
	}
	// Constant series must not panic and renders the lowest level.
	out = Series("", map[string][]float64{"c": {1, 1, 1}})
	if !strings.Contains(out, "▁▁▁") {
		t.Fatalf("constant series:\n%s", out)
	}
	// Empty series are skipped.
	out = Series("", map[string][]float64{"e": {}})
	if strings.Contains(out, "e ") {
		t.Fatalf("empty series rendered:\n%s", out)
	}
}
