// Package plot renders terminal charts for the experiment harness: the
// paper's figures are bar charts (Fig. 6), line series (Fig. 1), and
// scatters (Fig. 7); dinar-bench renders the same shapes as ASCII so a
// reproduction run reads like the paper's artifact.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// Bar is one labeled bar.
type Bar struct {
	Label string
	Value float64
}

// BarChart renders a horizontal bar chart. lo and hi set the value range
// (e.g. 50–100 for attack AUC, mirroring the paper's axes); width is the bar
// area in characters.
func BarChart(title string, bars []Bar, lo, hi float64, width int) string {
	if width <= 0 {
		width = 40
	}
	if hi <= lo {
		hi = lo + 1
	}
	labelWidth := 0
	for _, b := range bars {
		if len(b.Label) > labelWidth {
			labelWidth = len(b.Label)
		}
	}
	var sb strings.Builder
	if title != "" {
		sb.WriteString(title)
		sb.WriteByte('\n')
	}
	for _, b := range bars {
		v := b.Value
		if v < lo {
			v = lo
		}
		if v > hi {
			v = hi
		}
		n := int((v - lo) / (hi - lo) * float64(width))
		sb.WriteString(fmt.Sprintf("%-*s |%s%s %.1f\n",
			labelWidth, b.Label,
			strings.Repeat("█", n), strings.Repeat(" ", width-n), b.Value))
	}
	sb.WriteString(fmt.Sprintf("%-*s  %-*.0f%*.0f\n", labelWidth, "", width-3, lo, 3, hi))
	return sb.String()
}

// Point is one scatter point.
type Point struct {
	X, Y  float64
	Label string
}

// Scatter renders an ASCII scatter plot of the points, with each point drawn
// as the first rune of its label. Axis ranges are derived from the data with
// a small margin.
func Scatter(title string, points []Point, width, height int) string {
	if width <= 0 {
		width = 60
	}
	if height <= 0 {
		height = 16
	}
	if len(points) == 0 {
		return title + "\n(no points)\n"
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, p := range points {
		minX, maxX = math.Min(minX, p.X), math.Max(maxX, p.X)
		minY, maxY = math.Min(minY, p.Y), math.Max(maxY, p.Y)
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	padX := (maxX - minX) * 0.05
	padY := (maxY - minY) * 0.05
	minX, maxX = minX-padX, maxX+padX
	minY, maxY = minY-padY, maxY+padY

	grid := make([][]rune, height)
	for y := range grid {
		grid[y] = make([]rune, width)
		for x := range grid[y] {
			grid[y][x] = ' '
		}
	}
	for _, p := range points {
		x := int((p.X - minX) / (maxX - minX) * float64(width-1))
		y := int((p.Y - minY) / (maxY - minY) * float64(height-1))
		mark := '*'
		for _, r := range p.Label {
			mark = r
			break
		}
		grid[height-1-y][x] = mark
	}
	var sb strings.Builder
	if title != "" {
		sb.WriteString(title)
		sb.WriteByte('\n')
	}
	sb.WriteString(fmt.Sprintf("y: %.1f..%.1f\n", minY, maxY))
	for _, row := range grid {
		sb.WriteString("|")
		sb.WriteString(string(row))
		sb.WriteString("|\n")
	}
	sb.WriteString(fmt.Sprintf("x: %.1f..%.1f\n", minX, maxX))
	// Legend: label -> first rune.
	seen := make(map[string]bool)
	var legend []string
	for _, p := range points {
		if p.Label != "" && !seen[p.Label] {
			seen[p.Label] = true
			legend = append(legend, fmt.Sprintf("%c=%s", firstRune(p.Label), p.Label))
		}
	}
	if len(legend) > 0 {
		sb.WriteString("legend: " + strings.Join(legend, " ") + "\n")
	}
	return sb.String()
}

// Series renders one or more labeled line series as sparkline rows (used for
// per-layer divergence curves).
func Series(title string, series map[string][]float64) string {
	levels := []rune("▁▂▃▄▅▆▇█")
	var sb strings.Builder
	if title != "" {
		sb.WriteString(title)
		sb.WriteByte('\n')
	}
	labelWidth := 0
	for label := range series {
		if len(label) > labelWidth {
			labelWidth = len(label)
		}
	}
	for label, values := range series {
		if len(values) == 0 {
			continue
		}
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, v := range values {
			lo, hi = math.Min(lo, v), math.Max(hi, v)
		}
		sb.WriteString(fmt.Sprintf("%-*s ", labelWidth, label))
		for _, v := range values {
			idx := 0
			if hi > lo {
				idx = int((v - lo) / (hi - lo) * float64(len(levels)-1))
			}
			sb.WriteRune(levels[idx])
		}
		sb.WriteString(fmt.Sprintf("  [%.3g..%.3g]\n", lo, hi))
	}
	return sb.String()
}

func firstRune(s string) rune {
	for _, r := range s {
		return r
	}
	return '*'
}
