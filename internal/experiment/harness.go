// Package experiment implements one runner per table and figure of the
// paper's evaluation (§5). Each runner assembles the FL system, defenses,
// attacks and metrics needed for that experiment, executes it at a
// CPU-scaled configuration, and returns both structured results (for tests
// and benchmarks) and a printable table with the same rows/series the paper
// reports.
package experiment

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"sync"

	"repro/internal/attack"
	"repro/internal/data"
	"repro/internal/defense"
	"repro/internal/fl"
	"repro/internal/model"
	"repro/internal/nn"
)

// Options are the shared experiment knobs. The zero value is invalid; use
// DefaultOptions (full scaled runs) or QuickOptions (fast smoke-scale runs
// for tests).
type Options struct {
	// Seed drives everything deterministically.
	Seed int64
	// Records overrides each dataset's record count (0 = spec default).
	Records int
	// Clients, Rounds, LocalEpochs, BatchSize, LearningRate configure the FL
	// system (zero values fall back to fl.Config defaults).
	Clients      int
	Rounds       int
	LocalEpochs  int
	BatchSize    int
	LearningRate float64
	// AdaptiveLearningRate is the learning rate used with adaptive
	// optimizers (Adagrad and the §5.11 ablation variants), whose effective
	// per-coordinate step starts near the raw rate and therefore needs a
	// smaller value than SGD.
	AdaptiveLearningRate float64
	// UseShadowAttack selects the Shokri shadow-model MIA; false selects the
	// cheaper loss-threshold MIA.
	UseShadowAttack bool
	// ShadowEpochs configures shadow-model training when UseShadowAttack.
	ShadowEpochs int
	// Parallel trains FL clients concurrently.
	Parallel bool
}

// DefaultOptions returns the standard scaled experiment configuration.
func DefaultOptions() Options {
	return Options{
		Seed:                 1,
		Records:              1200,
		Clients:              5,
		Rounds:               8,
		LocalEpochs:          4,
		BatchSize:            32,
		LearningRate:         0, // per-dataset tuned SGD rate
		AdaptiveLearningRate: 0.01,
		UseShadowAttack:      true,
		ShadowEpochs:         20,
		Parallel:             true,
	}
}

// QuickOptions returns a reduced configuration for tests and smoke runs.
func QuickOptions() Options {
	return Options{
		Seed:                 1,
		Records:              500,
		Clients:              3,
		Rounds:               3,
		LocalEpochs:          2,
		BatchSize:            32,
		LearningRate:         0, // per-dataset tuned SGD rate
		AdaptiveLearningRate: 0.01,
		ShadowEpochs:         8,
		Parallel:             true,
	}
}

// adaptiveOptimizers are the optimizers that use AdaptiveLearningRate.
var adaptiveOptimizers = map[string]bool{
	"adagrad": true, "adam": true, "adamax": true, "rmsprop": true, "adgd": true,
}

// flConfig converts Options to an fl.Config for the given dataset.
func (o Options) flConfig(dataset, optimizer string) fl.Config {
	lr := fl.DefaultLearningRate(dataset, optimizer)
	if adaptiveOptimizers[optimizer] {
		if o.AdaptiveLearningRate > 0 {
			lr = o.AdaptiveLearningRate
		}
	} else if o.LearningRate > 0 {
		lr = o.LearningRate
	}
	return fl.Config{
		Dataset:      dataset,
		Records:      o.Records,
		Clients:      o.Clients,
		Rounds:       o.Rounds,
		LocalEpochs:  o.LocalEpochs,
		BatchSize:    o.BatchSize,
		LearningRate: lr,
		Optimizer:    optimizer,
		Seed:         o.Seed,
		Parallel:     o.Parallel,
	}
}

// optimizerFor returns the client optimizer a defense runs with: DINAR uses
// its adaptive gradient descent (Algorithm 1), baselines use SGD.
func optimizerFor(defenseName string) string {
	switch {
	case strings.HasPrefix(defenseName, "dinar"):
		// Includes robust-wrapped variants ("dinar+robust").
		return "adagrad"
	case strings.HasPrefix(defenseName, "dpfedsam"):
		return "sam" // sharpness-aware minimization is part of the method
	default:
		return "sgd"
	}
}

// FLRun bundles everything an experiment needs after federated training.
type FLRun struct {
	Sys     *fl.System
	Updates []*fl.Update // final-round post-defense uploads
}

// RunFL builds the system for (dataset, defenseName), trains it to
// completion, and finalizes clients (personalized models installed).
func RunFL(ctx context.Context, o Options, dataset, defenseName string) (*FLRun, error) {
	def, err := defense.New(defenseName, o.Seed+7, o.Clients)
	if err != nil {
		return nil, err
	}
	cfg := o.flConfig(dataset, optimizerFor(defenseName))
	sys, err := fl.NewSystem(cfg, def)
	if err != nil {
		return nil, fmt.Errorf("experiment: %s/%s: %w", dataset, defenseName, err)
	}
	updates, err := sys.Run(ctx)
	if err != nil {
		return nil, fmt.Errorf("experiment: %s/%s run: %w", dataset, defenseName, err)
	}
	if err := sys.FinalizeClients(); err != nil {
		return nil, err
	}
	return &FLRun{Sys: sys, Updates: updates}, nil
}

// RunFLWithDefense is RunFL with an explicitly constructed defense (used by
// sweeps that need non-registry configurations, e.g. DINAR with custom layer
// sets or LDP with custom budgets).
func RunFLWithDefense(ctx context.Context, o Options, dataset string, def fl.Defense) (*FLRun, error) {
	cfg := o.flConfig(dataset, optimizerFor(def.Name()))
	sys, err := fl.NewSystem(cfg, def)
	if err != nil {
		return nil, fmt.Errorf("experiment: %s/%s: %w", dataset, def.Name(), err)
	}
	updates, err := sys.Run(ctx)
	if err != nil {
		return nil, fmt.Errorf("experiment: %s/%s run: %w", dataset, def.Name(), err)
	}
	if err := sys.FinalizeClients(); err != nil {
		return nil, err
	}
	return &FLRun{Sys: sys, Updates: updates}, nil
}

// runConfigured runs an explicit fl.Config with an explicit defense — the
// lowest-level runner, used by sweeps that tweak config fields directly
// (non-IID alpha, optimizer override).
func runConfigured(ctx context.Context, cfg fl.Config, def fl.Defense) (*FLRun, error) {
	sys, err := fl.NewSystem(cfg, def)
	if err != nil {
		return nil, fmt.Errorf("experiment: %s/%s: %w", cfg.Dataset, def.Name(), err)
	}
	updates, err := sys.Run(ctx)
	if err != nil {
		return nil, fmt.Errorf("experiment: %s/%s run: %w", cfg.Dataset, def.Name(), err)
	}
	if err := sys.FinalizeClients(); err != nil {
		return nil, err
	}
	return &FLRun{Sys: sys, Updates: updates}, nil
}

// ModelFromState constructs the dataset's architecture and loads a state
// vector into it (how an attacker materializes an observed model).
func ModelFromState(spec data.Spec, state []float64, seed int64) (*nn.Model, error) {
	m, err := model.Build(spec, rand.New(rand.NewSource(seed)))
	if err != nil {
		return nil, err
	}
	if err := m.SetStateVector(state); err != nil {
		return nil, err
	}
	return m, nil
}

// Attacker is the common surface of the loss-threshold and shadow-model
// MIAs.
type Attacker interface {
	AUC(m *nn.Model, members, nonMembers *data.Dataset) (float64, error)
}

// attackerCache memoizes fitted shadow attacks. The attacker's shadow
// models depend only on the dataset, its splits (derived from the seed), and
// the shadow training configuration — never on the defense under test — so
// sweeping seven defenses over one dataset needs exactly one fit.
var attackerCache sync.Map // attackerKey -> *attack.ShadowAttack

type attackerKey struct {
	dataset      string
	records      int
	noiseMilli   int64
	seed         int64
	shadowEpochs int
}

// NewAttacker builds (and, for the shadow attack, fits) the configured MIA
// for the given run. Fitted shadow attacks are cached per dataset
// configuration.
func (o Options) NewAttacker(run *FLRun) (Attacker, error) {
	if !o.UseShadowAttack {
		return attack.NewLossAttack(), nil
	}
	spec := run.Sys.Spec()
	key := attackerKey{
		dataset:      spec.Name,
		records:      spec.Records,
		noiseMilli:   int64(spec.Noise * 1000),
		seed:         o.Seed,
		shadowEpochs: o.ShadowEpochs,
	}
	if cached, ok := attackerCache.Load(key); ok {
		return cached.(*attack.ShadowAttack), nil
	}
	atk := attack.NewShadowAttack(o.Seed + 77)
	if o.ShadowEpochs > 0 {
		atk.Epochs = o.ShadowEpochs
	}
	build := func(rng *rand.Rand) (*nn.Model, error) { return model.Build(spec, rng) }
	if err := atk.Fit(run.Sys.Split.Attacker, build); err != nil {
		return nil, fmt.Errorf("experiment: fit shadow attack: %w", err)
	}
	attackerCache.Store(key, atk)
	return atk, nil
}

// GlobalAUC attacks the final global model: members are the federation's
// training pool, non-members the held-out test pool (Appendix A, first
// privacy metric).
func GlobalAUC(run *FLRun, atk Attacker) (float64, error) {
	spec := run.Sys.Spec()
	m, err := ModelFromState(spec, run.Sys.Server.GlobalState(), 999)
	if err != nil {
		return 0, err
	}
	return atk.AUC(m, run.Sys.Split.Train, run.Sys.Split.Test)
}

// LocalAUC attacks each client's uploaded (post-defense) model with that
// client's shard as members and averages the AUCs (Appendix A, second
// privacy metric — what a server-side attacker achieves).
func LocalAUC(run *FLRun, atk Attacker) (float64, error) {
	spec := run.Sys.Spec()
	sum := 0.0
	for _, u := range run.Updates {
		state := u.State
		// Secure aggregation pre-scales uploads by the sample count; a
		// server-side attacker would also see that scale and divide it out.
		if u.NumSamples > 0 && run.Sys.Defense.Name() == "sa" {
			state = append([]float64(nil), state...)
			inv := 1.0 / float64(u.NumSamples)
			for j := range state {
				state[j] *= inv
			}
		}
		m, err := ModelFromState(spec, state, 998)
		if err != nil {
			return 0, err
		}
		auc, err := atk.AUC(m, run.Sys.Shards[u.ClientID], run.Sys.Split.Test)
		if err != nil {
			return 0, err
		}
		sum += auc
	}
	return sum / float64(len(run.Updates)), nil
}

// Utility returns the paper's overall model utility metric: the mean
// accuracy of the clients' (personalized) models on the test pool.
func Utility(run *FLRun) (float64, error) {
	return run.Sys.MeanClientAccuracy(run.Sys.Split.Test)
}

// pct renders a fraction as a percentage value (e.g. 0.5 -> 50.0).
func pct(v float64) float64 { return v * 100 }

// lookupSpec resolves a dataset name to its spec.
func lookupSpec(dataset string) (data.Spec, error) { return data.Lookup(dataset) }

// buildModel constructs the dataset's model architecture with a seeded RNG.
func buildModel(spec data.Spec, seed int64) (*nn.Model, error) {
	return model.Build(spec, rand.New(rand.NewSource(seed)))
}
