package experiment

import (
	"context"

	"repro/internal/leakage"
	"repro/internal/metrics"
)

// Fig1Datasets are the four datasets of the paper's Figure 1.
var Fig1Datasets = []string{"gtsrb", "celeba", "texas100", "purchase100"}

// Fig1Series holds one dataset's per-layer divergence curve.
type Fig1Series struct {
	Dataset     string
	Divergences []float64
	// MostSensitive is the argmax layer (each client's §4.1 vote).
	MostSensitive int
}

// Fig1Result reproduces Figure 1: the layer-level Jensen–Shannon divergence
// between member and non-member gradients of unprotected FL models.
type Fig1Result struct {
	Series []Fig1Series
}

// Fig1 trains an undefended FL model per dataset and measures per-layer
// membership leakage of the resulting global model.
func Fig1(ctx context.Context, o Options, datasets ...string) (*Fig1Result, error) {
	if len(datasets) == 0 {
		datasets = Fig1Datasets
	}
	res := &Fig1Result{}
	for _, ds := range datasets {
		run, err := RunFL(ctx, o, ds, "none")
		if err != nil {
			return nil, err
		}
		m, err := ModelFromState(run.Sys.Spec(), run.Sys.Server.GlobalState(), 97)
		if err != nil {
			return nil, err
		}
		analyzer := leakage.NewAnalyzer()
		div, err := analyzer.LayerDivergence(m, run.Sys.Split.Train, run.Sys.Split.Test)
		if err != nil {
			return nil, err
		}
		res.Series = append(res.Series, Fig1Series{
			Dataset:       ds,
			Divergences:   div,
			MostSensitive: leakage.MostSensitiveLayer(div),
		})
	}
	return res, nil
}

// Table renders the figure's series as rows.
func (r *Fig1Result) Table() *metrics.Table {
	t := metrics.NewTable("Figure 1: per-layer JS divergence, member vs non-member gradients (no defense)",
		"Dataset", "Layer", "JS divergence", "Most sensitive")
	for _, s := range r.Series {
		for l, d := range s.Divergences {
			mark := ""
			if l == s.MostSensitive {
				mark = "<== obfuscation target"
			}
			t.AddRow(s.Dataset, l, d, mark)
		}
	}
	return t
}
