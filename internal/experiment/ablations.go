package experiment

import (
	"context"

	"repro/internal/core"
	"repro/internal/fl"
	"repro/internal/metrics"
)

// AblationPoint is one configuration's privacy/utility outcome.
type AblationPoint struct {
	Label    string
	LocalAUC float64 // %
	Accuracy float64 // %
}

// AblationResult holds an ablation sweep.
type AblationResult struct {
	Title   string
	Dataset string
	Points  []AblationPoint
}

// Table renders the ablation.
func (r *AblationResult) Table() *metrics.Table {
	t := metrics.NewTable(r.Title+" — "+r.Dataset, "Variant", "Attack AUC (%)", "Model accuracy (%)")
	for _, p := range r.Points {
		t.AddRow(p.Label, p.LocalAUC, p.Accuracy)
	}
	return t
}

// AblationObfuscation compares DINAR's obfuscation distributions (DESIGN.md
// design choice 2): Gaussian draws matched to the layer's initializer versus
// uniform draws. The paper only specifies "random values"; this ablation
// shows the protection level is insensitive to the distribution choice.
func AblationObfuscation(ctx context.Context, o Options, dataset string) (*AblationResult, error) {
	if dataset == "" {
		dataset = "purchase100"
	}
	res := &AblationResult{Title: "Ablation: obfuscation distribution", Dataset: dataset}
	modes := []struct {
		label string
		mode  core.ObfuscationMode
	}{
		{"gaussian (init-matched)", core.ObfuscateGaussian},
		{"uniform", core.ObfuscateUniform},
	}
	for _, m := range modes {
		def := core.New(o.Seed)
		def.Mode = m.mode
		point, err := evaluateWithDefense(ctx, o, dataset, def)
		if err != nil {
			return nil, err
		}
		point.Label = m.label
		res.Points = append(res.Points, *point)
	}
	return res, nil
}

// AblationRobust compares DINAR under FedAvg against DINAR wrapped with
// Byzantine-robust aggregation (coordinate-wise median and trimmed mean) —
// extending the §4.1 Byzantine assumption from initialization to the
// learning rounds.
func AblationRobust(ctx context.Context, o Options, dataset string) (*AblationResult, error) {
	if dataset == "" {
		dataset = "purchase100"
	}
	res := &AblationResult{Title: "Ablation: robust aggregation under DINAR", Dataset: dataset}

	fedavg := core.New(o.Seed)
	point, err := evaluateWithDefense(ctx, o, dataset, fedavg)
	if err != nil {
		return nil, err
	}
	point.Label = "fedavg"
	res.Points = append(res.Points, *point)

	median := fl.NewRobust(core.New(o.Seed))
	point, err = evaluateWithDefense(ctx, o, dataset, median)
	if err != nil {
		return nil, err
	}
	point.Label = "median"
	res.Points = append(res.Points, *point)

	trimmed := fl.NewRobust(core.New(o.Seed))
	trimmed.Rule = fl.RuleTrimmedMean
	trimmed.Trim = 1
	point, err = evaluateWithDefense(ctx, o, dataset, trimmed)
	if err != nil {
		return nil, err
	}
	point.Label = "trimmed-mean(1)"
	res.Points = append(res.Points, *point)
	return res, nil
}

// evaluateWithDefense runs one explicit defense and measures local attack
// AUC and utility.
func evaluateWithDefense(ctx context.Context, o Options, dataset string, def fl.Defense) (*AblationPoint, error) {
	run, err := RunFLWithDefense(ctx, o, dataset, def)
	if err != nil {
		return nil, err
	}
	atk, err := o.NewAttacker(run)
	if err != nil {
		return nil, err
	}
	auc, err := LocalAUC(run, atk)
	if err != nil {
		return nil, err
	}
	acc, err := Utility(run)
	if err != nil {
		return nil, err
	}
	return &AblationPoint{LocalAUC: pct(auc), Accuracy: pct(acc)}, nil
}
