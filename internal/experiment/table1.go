package experiment

import "repro/internal/metrics"

// Table1Row is one method's qualitative properties in the paper's Table 1
// taxonomy.
type Table1Row struct {
	Category string
	Method   string
	Privacy  string // model privacy
	Utility  string // model utility
	Overhead string // negligible overhead
	InRepo   bool   // implemented in this repository
}

// Table1 returns the paper's Table 1 (comparison of FL privacy-preserving
// methods). It is a static taxonomy; the last column records which methods
// this repository implements as executable baselines.
func Table1() []Table1Row {
	yes, no, noNo := "yes", "no", "no (severe)"
	return []Table1Row{
		{"Cryptography", "PEFL", yes, yes, noNo, false},
		{"Cryptography", "HybridAlpha", yes, yes, noNo, false},
		{"Cryptography", "Chen et al.", yes, yes, noNo, false},
		{"Cryptography", "Secure Aggregation", yes, yes, no, true},
		{"TEE", "MixNN", yes, yes, noNo, false},
		{"TEE", "GradSec", yes, yes, noNo, false},
		{"TEE", "PPFL", yes, yes, noNo, false},
		{"Perturbation", "CDP", yes, no, no, true},
		{"Perturbation", "LDP", yes, no, no, true},
		{"Perturbation", "FedGP", yes, no, no, false},
		{"Perturbation", "WDP", no, yes, no, true},
		{"Perturbation", "PFA", yes, yes, no, false},
		{"Perturbation", "MR-MTL", no, yes, no, false},
		{"Perturbation", "DP-FedSAM", yes, yes, no, false},
		{"Perturbation", "PrivateFL", no, yes, no, false},
		{"Gradient compression", "Fu et al. (GC)", yes, yes, no, true},
		{"Our method", "DINAR", yes, yes, yes, true},
	}
}

// Table1Table renders the taxonomy.
func Table1Table() *metrics.Table {
	t := metrics.NewTable("Table 1: comparison of FL privacy-preserving methods",
		"Category", "Method", "Model privacy", "Model utility", "Negligible overhead", "Runnable here")
	for _, r := range Table1() {
		runnable := ""
		if r.InRepo {
			runnable = "yes"
		}
		t.AddRow(r.Category, r.Method, r.Privacy, r.Utility, r.Overhead, runnable)
	}
	return t
}
