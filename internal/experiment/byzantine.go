package experiment

import (
	"context"
	"fmt"
	"math"

	"repro/internal/adversary"
	"repro/internal/defense"
	"repro/internal/fl"
	"repro/internal/metrics"
)

// byzantineClients and byzantineF fix the experiment's cohort geometry: n=10
// participants of which f=3 are poisoned — the conventional "f of n"
// Byzantine setting, and large enough for the Krum family (n ≥ f+3).
const (
	byzantineClients = 10
	byzantineF       = 3
)

// ByzantineCell is one (attack, aggregator) outcome.
type ByzantineCell struct {
	// GlobalAccuracy is the final global model's test accuracy (%).
	GlobalAccuracy float64
	// Rejected, Quarantined and Clipped total the screen's verdicts across
	// all rounds of the run.
	Rejected    int
	Quarantined int
	Clipped     int
	// FiniteGlobal reports whether every coordinate of the final global
	// state is finite (no NaN/Inf reached aggregation).
	FiniteGlobal bool
}

// ByzantineResult is the attack × aggregator robustness matrix.
type ByzantineResult struct {
	Dataset     string
	Clients     int
	F           int
	Aggregators []string
	// Attacks lists the row labels in order; "benign" is the no-adversary
	// baseline row.
	Attacks []string
	// Cells maps attack label → aggregator → outcome.
	Cells map[string]map[string]ByzantineCell
}

// Baseline returns the no-adversary accuracy for an aggregator.
func (r *ByzantineResult) Baseline(aggregator string) float64 {
	return r.Cells["benign"][aggregator].GlobalAccuracy
}

// Table renders the matrix: one row per attack, one accuracy column per
// aggregator.
func (r *ByzantineResult) Table() *metrics.Table {
	headers := make([]string, 0, len(r.Aggregators)+1)
	headers = append(headers, "Attack (f=3 of 10)")
	for _, a := range r.Aggregators {
		headers = append(headers, a+" acc (%)")
	}
	t := metrics.NewTable("Byzantine robustness — "+r.Dataset, headers...)
	for _, atk := range r.Attacks {
		row := make([]interface{}, 0, len(headers))
		row = append(row, atk)
		for _, a := range r.Aggregators {
			row = append(row, r.Cells[atk][a].GlobalAccuracy)
		}
		t.AddRow(row...)
	}
	return t
}

// Byzantine runs the robustness matrix: every attack strategy against every
// aggregation rule, with the update screen at its default configuration, plus
// a benign baseline row. Nil attacks/aggregators select the full matrix.
func Byzantine(ctx context.Context, o Options, dataset string, attacks []adversary.Kind, aggregators []string) (*ByzantineResult, error) {
	if dataset == "" {
		dataset = "purchase100"
	}
	if attacks == nil {
		attacks = adversary.Kinds()
	}
	if aggregators == nil {
		aggregators = []string{"fedavg", "krum", "multi-krum", "norm-bound"}
	}
	res := &ByzantineResult{
		Dataset:     dataset,
		Clients:     byzantineClients,
		F:           byzantineF,
		Aggregators: aggregators,
		Cells:       make(map[string]map[string]ByzantineCell),
	}
	addRow := func(label string, schedule adversary.Schedule) error {
		res.Attacks = append(res.Attacks, label)
		res.Cells[label] = make(map[string]ByzantineCell, len(aggregators))
		for _, agg := range aggregators {
			cell, err := runByzantine(ctx, o, dataset, agg, schedule)
			if err != nil {
				return fmt.Errorf("experiment: byzantine %s/%s: %w", label, agg, err)
			}
			res.Cells[label][agg] = *cell
		}
		return nil
	}
	if err := addRow("benign", adversary.None); err != nil {
		return nil, err
	}
	for _, kind := range attacks {
		schedule := adversary.FirstF(byzantineF, adversary.Plan{Kind: kind})
		if err := addRow(kind.String(), schedule); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// runByzantine executes one cell: an undefended federation whose first f
// clients follow schedule, aggregated by the named rule behind the default
// update screen, evaluated by the global model's test accuracy.
func runByzantine(ctx context.Context, o Options, dataset, aggregator string, schedule adversary.Schedule) (*ByzantineCell, error) {
	def, err := defense.New("none", o.Seed+7, byzantineClients)
	if err != nil {
		return nil, err
	}
	adv := adversary.Wrap(def, o.Seed+13, schedule)
	cfg := o.flConfig(dataset, "sgd")
	cfg.Clients = byzantineClients
	cfg.Aggregator = aggregator
	cfg.MaxByzantine = byzantineF
	run, err := runConfigured(ctx, cfg, adv)
	if err != nil {
		return nil, err
	}
	state := run.Sys.Server.GlobalState()
	cell := &ByzantineCell{FiniteGlobal: true}
	for _, v := range state {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			cell.FiniteGlobal = false
			break
		}
	}
	m, err := ModelFromState(run.Sys.Spec(), state, 997)
	if err != nil {
		return nil, err
	}
	bs := o.BatchSize
	if bs == 0 {
		bs = 64
	}
	acc, _, err := fl.EvaluateModel(m, run.Sys.Split.Test, bs)
	if err != nil {
		return nil, err
	}
	cell.GlobalAccuracy = pct(acc)
	for _, rep := range run.Sys.Server.ScreenReports() {
		cell.Rejected += len(rep.Rejected)
		cell.Quarantined += len(rep.Quarantined)
		cell.Clipped += len(rep.Clipped)
	}
	return cell, nil
}
