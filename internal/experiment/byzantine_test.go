package experiment

import (
	"context"
	"strings"
	"testing"

	"repro/internal/adversary"
)

// TestByzantineMatrix is the PR's acceptance scenario: with 10 clients of
// which 3 are seeded adversaries, the robust aggregators hold the global
// accuracy near their no-adversary baseline while plain FedAvg demonstrably
// degrades under the boost attack, and NaN bombs never reach the global
// state.
func TestByzantineMatrix(t *testing.T) {
	if raceDetectorEnabled {
		t.Skip("24 federated runs take ~15min under the race detector; the adversary/screen/aggregator concurrency is race-covered by make adversary")
	}
	// The smoke-scale quick() run barely learns on a 100-class dataset, so
	// degradation would be invisible; this slightly larger configuration
	// reaches ~9% clean accuracy in a few seconds per run.
	o := quick()
	o.Records = 1200
	o.Rounds = 5
	o.LocalEpochs = 3
	res, err := Byzantine(context.Background(), o, "",
		[]adversary.Kind{adversary.Boost, adversary.NaNBomb}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Clients != 10 || res.F != 3 {
		t.Fatalf("cohort geometry = %d/%d, want 10/3", res.Clients, res.F)
	}
	if len(res.Attacks) != 3 || res.Attacks[0] != "benign" {
		t.Fatalf("attacks = %v", res.Attacks)
	}

	// Plain FedAvg is hijacked by the boosted minority.
	fedavgClean := res.Baseline("fedavg")
	fedavgBoost := res.Cells["boost"]["fedavg"].GlobalAccuracy
	if fedavgClean-fedavgBoost <= 2 {
		t.Fatalf("fedavg should degrade under boost: clean %.2f%%, boosted %.2f%%",
			fedavgClean, fedavgBoost)
	}

	// The robust rules stay within 2 points of their own no-adversary run
	// (one-sided: an attack can only hurt; chance improvements from the
	// changed selection are fine).
	for _, agg := range []string{"krum", "multi-krum", "norm-bound"} {
		clean := res.Baseline(agg)
		boost := res.Cells["boost"][agg].GlobalAccuracy
		if diff := clean - boost; diff > 2 {
			t.Fatalf("%s degraded %.2f points under boost (clean %.2f%%, boosted %.2f%%)",
				agg, diff, clean, boost)
		}
	}

	// NaN bombs are screened out before aggregation for every rule: the
	// global state stays finite and the three poisoners are rejected and
	// quarantined.
	for _, agg := range res.Aggregators {
		cell := res.Cells["nan-bomb"][agg]
		if !cell.FiniteGlobal {
			t.Fatalf("%s: NaN reached the global state", agg)
		}
		if cell.Rejected < res.F {
			t.Fatalf("%s: only %d rejections for %d poisoners", agg, cell.Rejected, res.F)
		}
		if cell.Quarantined == 0 {
			t.Fatalf("%s: poisoners were never quarantined", agg)
		}
	}
	for _, agg := range res.Aggregators {
		if cell := res.Cells["benign"][agg]; cell.Rejected != 0 || cell.Quarantined != 0 {
			t.Fatalf("%s: benign run produced verdicts: %+v", agg, cell)
		}
	}

	tbl := res.Table().String()
	for _, want := range []string{"benign", "boost", "nan-bomb", "krum acc (%)"} {
		if !strings.Contains(tbl, want) {
			t.Fatalf("table missing %q:\n%s", want, tbl)
		}
	}
}
