package experiment

import (
	"context"
	"time"

	"repro/internal/metrics"
)

// Table3Defenses are the rows of the paper's Table 3 (plus the baseline used
// as the reference).
var Table3Defenses = []string{"none", "wdp", "ldp", "cdp", "gc", "sa", "dinar"}

// CostRow is one defense's measured costs.
type CostRow struct {
	Defense string
	// ClientTrain is the mean per-round client-side duration (local training
	// plus client-side defense work).
	ClientTrain time.Duration
	// ServerAgg is the mean server-side aggregation duration.
	ServerAgg time.Duration
	// DefenseBytes is the defense-attributed extra buffer memory.
	DefenseBytes uint64
	// PeakTrainBytes / PeakAggBytes are the peak heap-in-use sampled
	// during client training and server aggregation respectively. Both
	// are process-global (they include concurrently training siblings —
	// see metrics.CostMeter), so they are upper bounds per phase, not
	// per-client measurements.
	PeakTrainBytes, PeakAggBytes uint64
	// TrainOverheadPct / AggOverheadPct are relative to the no-defense
	// baseline, as the paper reports them.
	TrainOverheadPct, AggOverheadPct float64
}

// Table3Result reproduces Table 3 (overheads of FL defense mechanisms).
type Table3Result struct {
	Dataset string
	Rows    []CostRow
}

// Table3 runs each defense on the dataset (paper: GTSRB + VGG11) and
// measures client-side training time, server-side aggregation time, and
// defense memory, relative to the undefended baseline.
func Table3(ctx context.Context, o Options, dataset string, defenses []string) (*Table3Result, error) {
	if dataset == "" {
		dataset = "gtsrb"
	}
	if len(defenses) == 0 {
		defenses = Table3Defenses
	}
	res := &Table3Result{Dataset: dataset}
	var baseTrain, baseAgg time.Duration
	for _, dname := range defenses {
		run, err := RunFL(ctx, o, dataset, dname)
		if err != nil {
			return nil, err
		}
		rep := run.Sys.Meter.Report()
		row := CostRow{
			Defense:        dname,
			ClientTrain:    rep.MeanClientTrain,
			ServerAgg:      rep.MeanServerAgg,
			DefenseBytes:   rep.DefenseBytes,
			PeakTrainBytes: rep.PeakTrainBytes,
			PeakAggBytes:   rep.PeakAggBytes,
		}
		if dname == "none" {
			baseTrain, baseAgg = rep.MeanClientTrain, rep.MeanServerAgg
		}
		if baseTrain > 0 {
			row.TrainOverheadPct = metrics.Overhead(rep.MeanClientTrain, baseTrain)
		}
		if baseAgg > 0 {
			row.AggOverheadPct = metrics.Overhead(rep.MeanServerAgg, baseAgg)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Table renders the cost comparison.
func (r *Table3Result) Table() *metrics.Table {
	t := metrics.NewTable("Table 3: overhead of FL defense mechanisms vs baseline — "+r.Dataset,
		"Defense", "Client train/round", "Train overhead (%)", "Server agg", "Agg overhead (%)", "Defense buffers (KiB)",
		"Peak train heap (MiB)", "Peak agg heap (MiB)")
	for _, row := range r.Rows {
		t.AddRow(row.Defense, row.ClientTrain.Round(time.Microsecond), row.TrainOverheadPct,
			row.ServerAgg.Round(time.Microsecond), row.AggOverheadPct, float64(row.DefenseBytes)/1024,
			float64(row.PeakTrainBytes)/(1024*1024), float64(row.PeakAggBytes)/(1024*1024))
	}
	return t
}
