package experiment

import (
	"context"
	"strings"
	"testing"
)

// quick returns fast smoke options using the loss attack.
func quick() Options {
	o := QuickOptions()
	o.UseShadowAttack = false
	return o
}

func TestFig1QuickSingleDataset(t *testing.T) {
	res, err := Fig1(context.Background(), quick(), "purchase100")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 1 {
		t.Fatalf("series = %d", len(res.Series))
	}
	s := res.Series[0]
	if len(s.Divergences) != 6 {
		t.Fatalf("purchase100 FCNN should have 6 layers, got %d", len(s.Divergences))
	}
	if s.MostSensitive < 0 || s.MostSensitive >= 6 {
		t.Fatalf("most sensitive = %d", s.MostSensitive)
	}
	tbl := res.Table()
	if tbl.NumRows() != 6 {
		t.Fatalf("table rows = %d", tbl.NumRows())
	}
}

func TestTable1Static(t *testing.T) {
	rows := Table1()
	if len(rows) != 17 {
		t.Fatalf("Table 1 rows = %d, want 17", len(rows))
	}
	last := rows[len(rows)-1]
	if last.Method != "DINAR" || last.Overhead != "yes" {
		t.Fatalf("last row should be DINAR with negligible overhead: %+v", last)
	}
	runnable := 0
	for _, r := range rows {
		if r.InRepo {
			runnable++
		}
	}
	if runnable != 6 { // SA, CDP, LDP, WDP, GC, DINAR
		t.Fatalf("runnable methods = %d, want 6", runnable)
	}
	if Table1Table().NumRows() != 17 {
		t.Fatal("rendered table row mismatch")
	}
}

func TestFig3Quick(t *testing.T) {
	o := quick()
	res, err := Fig3(context.Background(), o, "purchase100")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != len(Fig3Defenses) {
		t.Fatalf("series = %d, want %d", len(res.Series), len(Fig3Defenses))
	}
	for _, s := range res.Series {
		if len(s.MemberLosses) == 0 || len(s.NonMemberLosses) == 0 {
			t.Fatalf("%s: empty loss sets", s.Defense)
		}
		if s.JS < 0 {
			t.Fatalf("%s: negative JS", s.Defense)
		}
	}
	if res.Table().NumRows() != len(Fig3Defenses) {
		t.Fatal("table rows mismatch")
	}
}

func TestFig4Quick(t *testing.T) {
	o := quick()
	o.Records = 400
	res, err := Fig4(context.Background(), o, "purchase100")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Divergences) != 6 || len(res.PerLayerAUC) != 6 {
		t.Fatalf("lengths: %d/%d", len(res.Divergences), len(res.PerLayerAUC))
	}
	for l, auc := range res.PerLayerAUC {
		if auc < 50-1e-9 || auc > 100+1e-9 {
			t.Fatalf("layer %d AUC %v out of range", l, auc)
		}
	}
	if res.Table().NumRows() != 6 {
		t.Fatal("table rows mismatch")
	}
}

func TestFig5LayerSets(t *testing.T) {
	sets := fig5LayerSets(6)
	if len(sets) != 6 {
		t.Fatalf("sets = %d", len(sets))
	}
	// First set: penultimate layer only (0-based index 4 of 6).
	if len(sets[0]) != 1 || sets[0][0] != 4 {
		t.Fatalf("first set = %v, want [4]", sets[0])
	}
	// Second set: {3,4}.
	if len(sets[1]) != 2 || sets[1][0] != 3 || sets[1][1] != 4 {
		t.Fatalf("second set = %v, want [3 4]", sets[1])
	}
	// Last set: all six layers.
	if len(sets[5]) != 6 || sets[5][0] != 0 || sets[5][5] != 5 {
		t.Fatalf("last set = %v", sets[5])
	}
	if setLabel(sets[0]) != "5" {
		t.Fatalf("label = %q, want 5 (1-based)", setLabel(sets[0]))
	}
	if setLabel(sets[5]) != "1-2-3-4-5-6" {
		t.Fatalf("label = %q", setLabel(sets[5]))
	}
}

func TestFig5Quick(t *testing.T) {
	o := quick()
	o.Records = 400
	o.Rounds = 2
	res, err := Fig5(context.Background(), o, "purchase100")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sets) != 6 {
		t.Fatalf("sets = %d", len(res.Sets))
	}
	for i := range res.Sets {
		if res.AUC[i] < 50-1e-9 {
			t.Fatalf("set %s AUC %v below 50", res.Sets[i], res.AUC[i])
		}
		if res.Accuracy[i] < 0 || res.Accuracy[i] > 100 {
			t.Fatalf("set %s accuracy %v", res.Sets[i], res.Accuracy[i])
		}
	}
}

func TestFig6QuickSubset(t *testing.T) {
	o := quick()
	res, err := Fig6(context.Background(), o, []string{"purchase100"}, []string{"none", "dinar"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || len(res.Rows[0].Cells) != 2 {
		t.Fatalf("unexpected shape: %+v", res)
	}
	none, dinarCell := res.Rows[0].Cells[0], res.Rows[0].Cells[1]
	if none.Defense != "none" || dinarCell.Defense != "dinar" {
		t.Fatal("cell order wrong")
	}
	// Even at quick scale, the undefended system must leak more than DINAR's
	// uploads.
	if none.LocalAUC <= dinarCell.LocalAUC {
		t.Fatalf("none localAUC %v should exceed dinar %v", none.LocalAUC, dinarCell.LocalAUC)
	}
	if res.Table().NumRows() != 2 || res.Fig7Table().NumRows() != 2 {
		t.Fatal("table rows mismatch")
	}
}

func TestTable3Quick(t *testing.T) {
	o := quick()
	o.Records = 400
	res, err := Table3(context.Background(), o, "purchase100", []string{"none", "dinar", "ldp"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.Rows[0].Defense != "none" || res.Rows[0].TrainOverheadPct != 0 {
		t.Fatalf("baseline row wrong: %+v", res.Rows[0])
	}
	for _, r := range res.Rows {
		if r.ClientTrain <= 0 || r.ServerAgg <= 0 {
			t.Fatalf("%s: zero cost measurements", r.Defense)
		}
	}
	if res.Table().NumRows() != 3 {
		t.Fatal("table rows mismatch")
	}
}

func TestFig8Quick(t *testing.T) {
	o := quick()
	o.Records = 600
	res, err := Fig8(context.Background(), o, "purchase100", []float64{2}, []string{"none", "dinar"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("points = %d", len(res.Points))
	}
	if res.Table().NumRows() != 2 {
		t.Fatal("table rows mismatch")
	}
}

func TestFig9Quick(t *testing.T) {
	o := quick()
	res, err := Fig9(context.Background(), o, "purchase100", []int{3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 { // none + dinar
		t.Fatalf("points = %d", len(res.Points))
	}
	if res.Table().NumRows() != 2 {
		t.Fatal("table rows mismatch")
	}
}

func TestFig10Quick(t *testing.T) {
	o := quick()
	res, err := Fig10(context.Background(), o, "purchase100", []float64{0.2})
	if err != nil {
		t.Fatal(err)
	}
	// no defense + 1 budget + dinar.
	if len(res.Points) != 3 {
		t.Fatalf("points = %d", len(res.Points))
	}
	if !strings.Contains(res.Points[1].Label, "eps=0.2") {
		t.Fatalf("label = %q", res.Points[1].Label)
	}
	if res.Table().NumRows() != 3 {
		t.Fatal("table rows mismatch")
	}
}

func TestFig11Quick(t *testing.T) {
	o := quick()
	res, err := Fig11(context.Background(), o, "purchase100", []string{"adagrad", "adam"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("points = %d", len(res.Points))
	}
	if res.Table().NumRows() != 2 {
		t.Fatal("table rows mismatch")
	}
}

func TestRegistryDispatch(t *testing.T) {
	ids := IDs()
	if len(ids) != 15 {
		t.Fatalf("registered experiments = %d, want 15", len(ids))
	}
	tbl, err := Run(context.Background(), "table1", quick())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tbl.String(), "DINAR") {
		t.Fatal("table1 output missing DINAR")
	}
	if _, err := Run(context.Background(), "nope", quick()); err == nil {
		t.Fatal("accepted unknown experiment")
	}
}

func TestOptimizerFor(t *testing.T) {
	if optimizerFor("dinar") != "adagrad" {
		t.Fatal("DINAR should use adagrad (Algorithm 1)")
	}
	if optimizerFor("ldp") != "sgd" {
		t.Fatal("baselines should use sgd")
	}
}

func TestFlConfigLearningRates(t *testing.T) {
	o := DefaultOptions()
	cfg := o.flConfig("purchase100", "sgd")
	if cfg.LearningRate != 0.8 {
		t.Fatalf("purchase100 sgd lr = %v", cfg.LearningRate)
	}
	cfg = o.flConfig("purchase100", "adagrad")
	if cfg.LearningRate != 0.01 {
		t.Fatalf("adagrad lr = %v", cfg.LearningRate)
	}
	o.LearningRate = 0.3
	cfg = o.flConfig("cifar10", "sgd")
	if cfg.LearningRate != 0.3 {
		t.Fatalf("explicit sgd lr = %v", cfg.LearningRate)
	}
}

func TestAblationObfuscationQuick(t *testing.T) {
	o := quick()
	o.Records = 400
	res, err := AblationObfuscation(context.Background(), o, "purchase100")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("points = %d", len(res.Points))
	}
	for _, p := range res.Points {
		if p.LocalAUC < 50-1e-9 {
			t.Fatalf("%s AUC %v", p.Label, p.LocalAUC)
		}
	}
	if res.Table().NumRows() != 2 {
		t.Fatal("table rows mismatch")
	}
}

func TestAblationRobustQuick(t *testing.T) {
	o := quick()
	o.Records = 400
	res, err := AblationRobust(context.Background(), o, "purchase100")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 3 {
		t.Fatalf("points = %d", len(res.Points))
	}
	if res.Points[1].Label != "median" {
		t.Fatalf("labels: %+v", res.Points)
	}
}
