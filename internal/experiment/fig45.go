package experiment

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/leakage"
	"repro/internal/metrics"
)

// Fig4Result reproduces Figure 4 (CelebA, VGG11 with 8 convolutional
// layers): (a) how much each layer separates members from non-members, and
// (b) the local-model attack AUC when a fine-grained protection obfuscates
// exactly one layer.
type Fig4Result struct {
	Dataset string
	// Divergences is Fig. 4a: per-layer member/non-member divergence.
	Divergences []float64
	// PerLayerAUC is Fig. 4b: attack AUC (%) on local models when layer i
	// alone is obfuscated.
	PerLayerAUC []float64
	// BaselineAUC is the unprotected local-model attack AUC (%).
	BaselineAUC float64
	// MostSensitive is the argmax of Divergences.
	MostSensitive int
}

// Fig4 trains an undefended system once, then sweeps single-layer
// obfuscation over the final uploads and re-attacks each variant.
func Fig4(ctx context.Context, o Options, dataset string) (*Fig4Result, error) {
	if dataset == "" {
		dataset = "celeba"
	}
	run, err := RunFL(ctx, o, dataset, "none")
	if err != nil {
		return nil, err
	}
	spec := run.Sys.Spec()
	atk := attack.NewLossAttack()

	globalModel, err := ModelFromState(spec, run.Sys.Server.GlobalState(), 41)
	if err != nil {
		return nil, err
	}
	div, err := leakage.NewAnalyzer().LayerDivergence(globalModel, run.Sys.Split.Train, run.Sys.Split.Test)
	if err != nil {
		return nil, err
	}

	baseline, err := LocalAUC(run, atk)
	if err != nil {
		return nil, err
	}

	info := globalModel.Spans()
	perLayer := make([]float64, len(info))
	for l := range info {
		sum := 0.0
		for i, u := range run.Updates {
			state := append([]float64(nil), u.State...)
			rng := rand.New(rand.NewSource(o.Seed + int64(l*100+i)))
			if err := core.Obfuscate(state, info[l], core.ObfuscateGaussian, rng); err != nil {
				return nil, fmt.Errorf("experiment: fig4 layer %d: %w", l, err)
			}
			m, err := ModelFromState(spec, state, 42)
			if err != nil {
				return nil, err
			}
			auc, err := atk.AUC(m, run.Sys.Shards[i], run.Sys.Split.Test)
			if err != nil {
				return nil, err
			}
			sum += auc
		}
		perLayer[l] = pct(sum / float64(len(run.Updates)))
	}
	return &Fig4Result{
		Dataset:       dataset,
		Divergences:   div,
		PerLayerAUC:   perLayer,
		BaselineAUC:   pct(baseline),
		MostSensitive: leakage.MostSensitiveLayer(div),
	}, nil
}

// Table renders both panels of the figure.
func (r *Fig4Result) Table() *metrics.Table {
	t := metrics.NewTable(
		fmt.Sprintf("Figure 4: per-layer analysis — %s (no-defense local AUC %.1f%%)", r.Dataset, r.BaselineAUC),
		"Layer", "(a) JS divergence", "(b) attack AUC if obfuscated (%)")
	for l := range r.Divergences {
		t.AddRow(l, r.Divergences[l], r.PerLayerAUC[l])
	}
	return t
}

// Fig5Result reproduces Figure 5 (Purchase100, 6-layer FCNN): obfuscating
// more layers does not improve privacy beyond the single most sensitive
// layer, but costs utility.
type Fig5Result struct {
	Dataset string
	// Sets names the obfuscated layer sets, paper-style ("5", "4-5", ...).
	Sets []string
	// AUC is the local-model attack AUC (%) per set.
	AUC []float64
	// Accuracy is the mean personalized-model accuracy (%) per set.
	Accuracy []float64
}

// fig5LayerSets returns the paper's nested layer sets for an n-layer model:
// {n-1}, {n-2, n-1}, ..., {1..n} in 1-based labels — the penultimate layer
// first, growing toward the full model.
func fig5LayerSets(n int) [][]int {
	var sets [][]int
	for size := 1; size <= n; size++ {
		var set []int
		start := n - 1 - size // 0-based first layer of the set
		if size == n {
			start = 0
		}
		for l := start; l < start+size && l < n; l++ {
			set = append(set, l)
		}
		sets = append(sets, set)
	}
	return sets
}

// Fig5 runs DINAR with growing obfuscation sets and reports privacy and
// utility per set.
func Fig5(ctx context.Context, o Options, dataset string) (*Fig5Result, error) {
	if dataset == "" {
		dataset = "purchase100"
	}
	res := &Fig5Result{Dataset: dataset}
	// Determine the layer count from a probe model without training.
	spec, err := lookupSpec(dataset)
	if err != nil {
		return nil, err
	}
	probeModel, err := buildModel(spec, o.Seed)
	if err != nil {
		return nil, err
	}
	numLayers := probeModel.NumLayers()

	atk := attack.NewLossAttack()
	for _, set := range fig5LayerSets(numLayers) {
		def := core.NewWithLayers(o.Seed, set...)
		run, err := RunFLWithDefense(ctx, o, dataset, def)
		if err != nil {
			return nil, err
		}
		auc, err := LocalAUC(run, atk)
		if err != nil {
			return nil, err
		}
		acc, err := Utility(run)
		if err != nil {
			return nil, err
		}
		res.Sets = append(res.Sets, setLabel(set))
		res.AUC = append(res.AUC, pct(auc))
		res.Accuracy = append(res.Accuracy, pct(acc))
	}
	return res, nil
}

func setLabel(set []int) string {
	s := ""
	for i, l := range set {
		if i > 0 {
			s += "-"
		}
		s += fmt.Sprintf("%d", l+1) // 1-based labels as in the paper
	}
	return s
}

// Table renders the privacy/utility rows per obfuscation set.
func (r *Fig5Result) Table() *metrics.Table {
	t := metrics.NewTable("Figure 5: obfuscating more layers — "+r.Dataset,
		"Obfuscated layers", "Attack AUC (%)", "Model accuracy (%)")
	for i := range r.Sets {
		t.AddRow(r.Sets[i], r.AUC[i], r.Accuracy[i])
	}
	return t
}
