//go:build race

package experiment

// raceDetectorEnabled lets heavyweight accuracy tests skip themselves under
// the race detector, where they run ~10x slower and blow the per-package
// timeout. The concurrency they exercise is race-covered by faster tests
// (`make adversary`); the accuracy assertions run in `make verify`.
const raceDetectorEnabled = true
