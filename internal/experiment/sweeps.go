package experiment

import (
	"context"
	"fmt"
	"math"

	"repro/internal/defense"
	"repro/internal/metrics"
)

// Fig8Alphas are the Dirichlet concentrations of the paper's Figure 8
// (α = ∞ is the IID case).
var Fig8Alphas = []float64{0.8, 2, 5, math.Inf(1)}

// Fig8Defenses are the defenses of the paper's Figure 8.
var Fig8Defenses = []string{"none", "wdp", "cdp", "ldp", "dinar"}

// Fig8Point is one (α, defense) outcome.
type Fig8Point struct {
	Alpha    float64
	Defense  string
	LocalAUC float64 // %
	Accuracy float64 // %
}

// Fig8Result reproduces Figure 8 (privacy leakage vs utility under non-IID
// settings, GTSRB).
type Fig8Result struct {
	Dataset string
	Points  []Fig8Point
}

// Fig8 sweeps Dirichlet α and defenses on the dataset (paper: GTSRB).
func Fig8(ctx context.Context, o Options, dataset string, alphas []float64, defenses []string) (*Fig8Result, error) {
	if dataset == "" {
		dataset = "gtsrb"
	}
	if len(alphas) == 0 {
		alphas = Fig8Alphas
	}
	if len(defenses) == 0 {
		defenses = Fig8Defenses
	}
	res := &Fig8Result{Dataset: dataset}
	for _, alpha := range alphas {
		oa := o
		for _, dname := range defenses {
			def, err := defense.New(dname, o.Seed+7, o.Clients)
			if err != nil {
				return nil, err
			}
			cfg := oa.flConfig(dataset, optimizerFor(dname))
			cfg.DirichletAlpha = alpha
			run, err := runConfigured(ctx, cfg, def)
			if err != nil {
				return nil, err
			}
			atk, err := oa.NewAttacker(run)
			if err != nil {
				return nil, err
			}
			auc, err := LocalAUC(run, atk)
			if err != nil {
				return nil, err
			}
			acc, err := Utility(run)
			if err != nil {
				return nil, err
			}
			res.Points = append(res.Points, Fig8Point{
				Alpha:    alpha,
				Defense:  dname,
				LocalAUC: pct(auc),
				Accuracy: pct(acc),
			})
		}
	}
	return res, nil
}

// Table renders the non-IID sweep.
func (r *Fig8Result) Table() *metrics.Table {
	t := metrics.NewTable("Figure 8: privacy vs utility under non-IID settings — "+r.Dataset,
		"Dirichlet alpha", "Defense", "Attack AUC (%)", "Model accuracy (%)")
	for _, p := range r.Points {
		alpha := fmt.Sprintf("%v", p.Alpha)
		if math.IsInf(p.Alpha, 1) {
			alpha = "inf (IID)"
		}
		t.AddRow(alpha, p.Defense, p.LocalAUC, p.Accuracy)
	}
	return t
}

// Fig9Clients are the federation sizes of the paper's Figure 9.
var Fig9Clients = []int{5, 10, 20, 40}

// Fig9Point is one (clients, defense) outcome.
type Fig9Point struct {
	Clients  int
	Defense  string
	LocalAUC float64 // %
	Accuracy float64 // %
}

// Fig9Result reproduces Figure 9 (model privacy and utility under different
// numbers of FL clients, Purchase100, DINAR vs no defense).
type Fig9Result struct {
	Dataset string
	Points  []Fig9Point
}

// Fig9 sweeps the number of clients for DINAR and the no-defense baseline.
func Fig9(ctx context.Context, o Options, dataset string, clientCounts []int) (*Fig9Result, error) {
	if dataset == "" {
		dataset = "purchase100"
	}
	if len(clientCounts) == 0 {
		clientCounts = Fig9Clients
	}
	res := &Fig9Result{Dataset: dataset}
	for _, n := range clientCounts {
		for _, dname := range []string{"none", "dinar"} {
			oc := o
			oc.Clients = n
			cell, err := evaluateDefense(ctx, oc, dataset, dname)
			if err != nil {
				return nil, err
			}
			res.Points = append(res.Points, Fig9Point{
				Clients:  n,
				Defense:  dname,
				LocalAUC: cell.LocalAUC,
				Accuracy: cell.Accuracy,
			})
		}
	}
	return res, nil
}

// Table renders the client-count sweep.
func (r *Fig9Result) Table() *metrics.Table {
	t := metrics.NewTable("Figure 9: privacy and utility vs number of FL clients — "+r.Dataset,
		"Clients", "Defense", "Attack AUC (%)", "Model accuracy (%)")
	for _, p := range r.Points {
		t.AddRow(p.Clients, p.Defense, p.LocalAUC, p.Accuracy)
	}
	return t
}

// Fig10Budgets are the LDP privacy budgets of the paper's Figure 10.
var Fig10Budgets = []float64{0.05, 0.2, 1, 2.2}

// Fig10Point is one budget's outcome.
type Fig10Point struct {
	// Label identifies the configuration ("no defense", "ldp eps=…",
	// "dinar").
	Label    string
	LocalAUC float64 // %
	Accuracy float64 // %
}

// Fig10Result reproduces Figure 10 (privacy leakage vs utility for LDP under
// different privacy budgets, Purchase100, vs DINAR and no defense).
type Fig10Result struct {
	Dataset string
	Points  []Fig10Point
}

// Fig10 sweeps LDP budgets and compares with DINAR and no defense.
func Fig10(ctx context.Context, o Options, dataset string, budgets []float64) (*Fig10Result, error) {
	if dataset == "" {
		dataset = "purchase100"
	}
	if len(budgets) == 0 {
		budgets = Fig10Budgets
	}
	res := &Fig10Result{Dataset: dataset}

	record := func(label string, run *FLRun) error {
		atk, err := o.NewAttacker(run)
		if err != nil {
			return err
		}
		auc, err := LocalAUC(run, atk)
		if err != nil {
			return err
		}
		acc, err := Utility(run)
		if err != nil {
			return err
		}
		res.Points = append(res.Points, Fig10Point{Label: label, LocalAUC: pct(auc), Accuracy: pct(acc)})
		return nil
	}

	run, err := RunFL(ctx, o, dataset, "none")
	if err != nil {
		return nil, err
	}
	if err := record("no defense", run); err != nil {
		return nil, err
	}
	for _, eps := range budgets {
		def := defense.NewLDPWithBudget(o.Seed+7, eps)
		run, err := RunFLWithDefense(ctx, o, dataset, def)
		if err != nil {
			return nil, err
		}
		if err := record(fmt.Sprintf("ldp eps=%v", eps), run); err != nil {
			return nil, err
		}
	}
	run, err = RunFL(ctx, o, dataset, "dinar")
	if err != nil {
		return nil, err
	}
	if err := record("dinar", run); err != nil {
		return nil, err
	}
	return res, nil
}

// Table renders the budget sweep.
func (r *Fig10Result) Table() *metrics.Table {
	t := metrics.NewTable("Figure 10: LDP privacy budgets vs DINAR — "+r.Dataset,
		"Configuration", "Attack AUC (%)", "Model accuracy (%)")
	for _, p := range r.Points {
		t.AddRow(p.Label, p.LocalAUC, p.Accuracy)
	}
	return t
}

// Fig11Optimizers are the §5.11 ablation variants: DINAR without adaptive
// training, using other optimizers, versus full DINAR (Adagrad).
var Fig11Optimizers = []string{"adam", "adgd", "adamax", "adagrad"}

// Fig11Point is one optimizer variant's outcome.
type Fig11Point struct {
	Optimizer string
	Accuracy  float64 // %
	LocalAUC  float64 // %
}

// Fig11Result reproduces Figure 11 (ablation of DINAR's adaptive training).
type Fig11Result struct {
	Dataset string
	Points  []Fig11Point
}

// Fig11 runs DINAR with each optimizer variant (paper: Purchase100).
func Fig11(ctx context.Context, o Options, dataset string, optimizers []string) (*Fig11Result, error) {
	if dataset == "" {
		dataset = "purchase100"
	}
	if len(optimizers) == 0 {
		optimizers = Fig11Optimizers
	}
	res := &Fig11Result{Dataset: dataset}
	for _, opt := range optimizers {
		def, err := defense.New("dinar", o.Seed+7, o.Clients)
		if err != nil {
			return nil, err
		}
		cfg := o.flConfig(dataset, opt)
		run, err := runConfigured(ctx, cfg, def)
		if err != nil {
			return nil, err
		}
		acc, err := Utility(run)
		if err != nil {
			return nil, err
		}
		atk, err := o.NewAttacker(run)
		if err != nil {
			return nil, err
		}
		auc, err := LocalAUC(run, atk)
		if err != nil {
			return nil, err
		}
		res.Points = append(res.Points, Fig11Point{Optimizer: opt, Accuracy: pct(acc), LocalAUC: pct(auc)})
	}
	return res, nil
}

// Table renders the ablation.
func (r *Fig11Result) Table() *metrics.Table {
	t := metrics.NewTable("Figure 11: DINAR optimizer ablation — "+r.Dataset+" (adagrad = full DINAR)",
		"Optimizer", "Model accuracy (%)", "Attack AUC (%)")
	for _, p := range r.Points {
		t.AddRow(p.Optimizer, p.Accuracy, p.LocalAUC)
	}
	return t
}
