package experiment

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/defense"
	"repro/internal/metrics"
)

// fig6Cache memoizes full Fig6 sweeps: Figure 7 is a different projection of
// exactly the same runs, so `-exp all` pays for the sweep once.
var fig6Cache sync.Map // string -> *Fig6Result

// Fig6Datasets are the six datasets of the paper's Figure 6, in its order.
var Fig6Datasets = []string{"purchase100", "cifar10", "cifar100", "speechcommands", "celeba", "gtsrb"}

// PrivacyCell is one defense's privacy/utility outcome on one dataset.
type PrivacyCell struct {
	Defense string
	// GlobalAUC and LocalAUC are attack AUCs (%) against the global model
	// and the clients' uploaded models.
	GlobalAUC, LocalAUC float64
	// Accuracy is the mean personalized-model test accuracy (%) — used by
	// Figure 7's privacy/utility scatter.
	Accuracy float64
}

// Fig6Result reproduces Figure 6 (attack AUC across defenses and datasets,
// global and local models) and doubles as the data source for Figure 7.
type Fig6Result struct {
	Rows []Fig6Row
}

// Fig6Row is one dataset's sweep over all defenses.
type Fig6Row struct {
	Dataset string
	Cells   []PrivacyCell
}

// Fig6 sweeps the full defense suite over the given datasets.
func Fig6(ctx context.Context, o Options, datasets []string, defenses []string) (*Fig6Result, error) {
	if len(datasets) == 0 {
		datasets = Fig6Datasets
	}
	if len(defenses) == 0 {
		defenses = defense.StandardNames
	}
	key := fmt.Sprintf("%+v|%v|%v", o, datasets, defenses)
	if cached, ok := fig6Cache.Load(key); ok {
		return cached.(*Fig6Result), nil
	}
	res := &Fig6Result{}
	for _, ds := range datasets {
		row := Fig6Row{Dataset: ds}
		for _, dname := range defenses {
			cell, err := evaluateDefense(ctx, o, ds, dname)
			if err != nil {
				return nil, err
			}
			row.Cells = append(row.Cells, *cell)
		}
		res.Rows = append(res.Rows, row)
	}
	fig6Cache.Store(key, res)
	return res, nil
}

// evaluateDefense runs one (dataset, defense) configuration and measures
// global AUC, local AUC, and utility.
func evaluateDefense(ctx context.Context, o Options, dataset, defenseName string) (*PrivacyCell, error) {
	run, err := RunFL(ctx, o, dataset, defenseName)
	if err != nil {
		return nil, err
	}
	atk, err := o.NewAttacker(run)
	if err != nil {
		return nil, err
	}
	global, err := GlobalAUC(run, atk)
	if err != nil {
		return nil, err
	}
	local, err := LocalAUC(run, atk)
	if err != nil {
		return nil, err
	}
	acc, err := Utility(run)
	if err != nil {
		return nil, err
	}
	return &PrivacyCell{
		Defense:   defenseName,
		GlobalAUC: pct(global),
		LocalAUC:  pct(local),
		Accuracy:  pct(acc),
	}, nil
}

// Table renders the privacy matrix (Fig. 6's bar heights).
func (r *Fig6Result) Table() *metrics.Table {
	t := metrics.NewTable("Figure 6: attack AUC (%) per dataset and defense — optimum is 50%",
		"Dataset", "Defense", "Global model AUC", "Local models AUC")
	for _, row := range r.Rows {
		for _, c := range row.Cells {
			t.AddRow(row.Dataset, c.Defense, c.GlobalAUC, c.LocalAUC)
		}
	}
	return t
}

// Fig7Table renders the same runs as Figure 7's privacy-vs-utility scatter
// (local models): one (accuracy, AUC) point per defense per dataset.
func (r *Fig6Result) Fig7Table() *metrics.Table {
	t := metrics.NewTable("Figure 7: privacy vs utility trade-off (local models) — best is bottom-right",
		"Dataset", "Defense", "Model accuracy (%)", "Attack AUC (%)")
	for _, row := range r.Rows {
		for _, c := range row.Cells {
			t.AddRow(row.Dataset, c.Defense, c.Accuracy, c.LocalAUC)
		}
	}
	return t
}
