package experiment

import (
	"context"

	"repro/internal/fl"
	"repro/internal/metrics"
)

// Fig3Defenses are the defenses compared in the paper's Figure 3.
var Fig3Defenses = []string{"none", "ldp", "cdp", "wdp", "dinar"}

// Fig3Series summarizes the member/non-member loss distributions under one
// defense: the paper plots the two densities; we report their histograms
// plus summary statistics.
type Fig3Series struct {
	Defense string
	// MemberLosses and NonMemberLosses are per-sample losses of the model a
	// client actually uses for predictions (DINAR: the personalized model).
	MemberLosses    []float64
	NonMemberLosses []float64
	// MeanMember and MeanNonMember are the distribution means.
	MeanMember, MeanNonMember float64
	// JS is the divergence between the two loss distributions — the
	// attacker-exploitable gap (0 = indistinguishable).
	JS float64
}

// Fig3Result reproduces Figure 3 (model loss distributions under different
// privacy techniques, Cifar-10).
type Fig3Result struct {
	Dataset string
	Series  []Fig3Series
}

// Fig3 runs each defense on the dataset (paper: Cifar-10) and collects the
// loss distributions of member and non-member samples.
func Fig3(ctx context.Context, o Options, dataset string) (*Fig3Result, error) {
	if dataset == "" {
		dataset = "cifar10"
	}
	res := &Fig3Result{Dataset: dataset}
	for _, dname := range Fig3Defenses {
		run, err := RunFL(ctx, o, dataset, dname)
		if err != nil {
			return nil, err
		}
		// The attacked model is what the adversary actually observes: the
		// broadcast global model (for DINAR, with the obfuscated private
		// layer). Members are the whole federation's training pool.
		attacked, err := ModelFromState(run.Sys.Spec(), run.Sys.Server.GlobalState(), 33)
		if err != nil {
			return nil, err
		}
		memberLosses, err := fl.PerSampleLosses(attacked, run.Sys.Split.Train, o.BatchSize)
		if err != nil {
			return nil, err
		}
		nonLosses, err := fl.PerSampleLosses(attacked, run.Sys.Split.Test, o.BatchSize)
		if err != nil {
			return nil, err
		}
		js, err := metrics.JSDivergenceSamples(memberLosses, nonLosses, 24)
		if err != nil {
			return nil, err
		}
		res.Series = append(res.Series, Fig3Series{
			Defense:         dname,
			MemberLosses:    memberLosses,
			NonMemberLosses: nonLosses,
			MeanMember:      metrics.Mean(memberLosses),
			MeanNonMember:   metrics.Mean(nonLosses),
			JS:              js,
		})
	}
	return res, nil
}

// Table renders per-defense loss-distribution summaries.
func (r *Fig3Result) Table() *metrics.Table {
	t := metrics.NewTable("Figure 3: member vs non-member loss distributions — "+r.Dataset,
		"Defense", "Mean loss (members)", "Mean loss (non-members)", "JS(member‖non-member)")
	for _, s := range r.Series {
		t.AddRow(s.Defense, s.MeanMember, s.MeanNonMember, s.JS)
	}
	return t
}
