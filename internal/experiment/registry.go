package experiment

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/metrics"
)

// Runner regenerates one paper artifact and returns its printable table.
type Runner func(ctx context.Context, o Options) (*metrics.Table, error)

// Registry maps experiment IDs (table/figure numbers) to runners. Every row
// of DESIGN.md's per-experiment index appears here.
var Registry = map[string]Runner{
	"table1": func(_ context.Context, _ Options) (*metrics.Table, error) {
		return Table1Table(), nil
	},
	"fig1": func(ctx context.Context, o Options) (*metrics.Table, error) {
		r, err := Fig1(ctx, o)
		if err != nil {
			return nil, err
		}
		return r.Table(), nil
	},
	"fig3": func(ctx context.Context, o Options) (*metrics.Table, error) {
		r, err := Fig3(ctx, o, "")
		if err != nil {
			return nil, err
		}
		return r.Table(), nil
	},
	"fig4": func(ctx context.Context, o Options) (*metrics.Table, error) {
		r, err := Fig4(ctx, o, "")
		if err != nil {
			return nil, err
		}
		return r.Table(), nil
	},
	"fig5": func(ctx context.Context, o Options) (*metrics.Table, error) {
		r, err := Fig5(ctx, o, "")
		if err != nil {
			return nil, err
		}
		return r.Table(), nil
	},
	"fig6": func(ctx context.Context, o Options) (*metrics.Table, error) {
		r, err := Fig6(ctx, o, nil, nil)
		if err != nil {
			return nil, err
		}
		return r.Table(), nil
	},
	"fig7": func(ctx context.Context, o Options) (*metrics.Table, error) {
		r, err := Fig6(ctx, o, nil, nil)
		if err != nil {
			return nil, err
		}
		return r.Fig7Table(), nil
	},
	"table3": func(ctx context.Context, o Options) (*metrics.Table, error) {
		r, err := Table3(ctx, o, "", nil)
		if err != nil {
			return nil, err
		}
		return r.Table(), nil
	},
	"fig8": func(ctx context.Context, o Options) (*metrics.Table, error) {
		r, err := Fig8(ctx, o, "", nil, nil)
		if err != nil {
			return nil, err
		}
		return r.Table(), nil
	},
	"fig9": func(ctx context.Context, o Options) (*metrics.Table, error) {
		r, err := Fig9(ctx, o, "", nil)
		if err != nil {
			return nil, err
		}
		return r.Table(), nil
	},
	"fig10": func(ctx context.Context, o Options) (*metrics.Table, error) {
		r, err := Fig10(ctx, o, "", nil)
		if err != nil {
			return nil, err
		}
		return r.Table(), nil
	},
	"fig11": func(ctx context.Context, o Options) (*metrics.Table, error) {
		r, err := Fig11(ctx, o, "", nil)
		if err != nil {
			return nil, err
		}
		return r.Table(), nil
	},
	// Extensions beyond the paper's artifacts: ablations of design choices
	// DESIGN.md calls out.
	"ablation-obf": func(ctx context.Context, o Options) (*metrics.Table, error) {
		r, err := AblationObfuscation(ctx, o, "")
		if err != nil {
			return nil, err
		}
		return r.Table(), nil
	},
	"ablation-robust": func(ctx context.Context, o Options) (*metrics.Table, error) {
		r, err := AblationRobust(ctx, o, "")
		if err != nil {
			return nil, err
		}
		return r.Table(), nil
	},
	// Byzantine-client robustness matrix: every seeded poisoning strategy
	// against every aggregation rule, behind the default update screen.
	"byzantine": func(ctx context.Context, o Options) (*metrics.Table, error) {
		r, err := Byzantine(ctx, o, "", nil, nil)
		if err != nil {
			return nil, err
		}
		return r.Table(), nil
	},
}

// IDs returns the registered experiment IDs in sorted order.
func IDs() []string {
	ids := make([]string, 0, len(Registry))
	for id := range Registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Run executes the experiment with the given ID.
func Run(ctx context.Context, id string, o Options) (*metrics.Table, error) {
	r, ok := Registry[id]
	if !ok {
		return nil, fmt.Errorf("experiment: unknown id %q (have %v)", id, IDs())
	}
	return r(ctx, o)
}
