package telemetry

import (
	"fmt"
	"sync"
	"time"
)

// Event is one structured log entry: a formatted message tagged with the
// FL round and client it concerns (-1 when not applicable).
type Event struct {
	// Time is when the event was recorded.
	Time time.Time
	// Round is the FL round the event belongs to, -1 if none.
	Round int
	// Client is the client id the event concerns, -1 if none.
	Client int
	// Msg is the fully formatted, single-line message.
	Msg string
}

// EventLog is a serialized structured logger: every Eventf call formats
// its message, appends it to a bounded ring of recent events, and hands
// the whole line to the sink — all under one mutex, so lines from
// concurrent goroutines can never interleave mid-line no matter what the
// sink does internally. The sink must not call back into the log.
type EventLog struct {
	mu   sync.Mutex
	sink func(line string)
	ring []Event
	next int // ring write cursor
	n    int // events stored (≤ len(ring))
	seq  uint64
}

// NewEventLog returns a log keeping the most recent capacity events
// (minimum 1) and forwarding each whole line to sink (nil for none).
func NewEventLog(capacity int, sink func(line string)) *EventLog {
	if capacity < 1 {
		capacity = 1
	}
	return &EventLog{ring: make([]Event, capacity), sink: sink}
}

// Logf records an event with no round/client attribution.
func (l *EventLog) Logf(format string, args ...any) { l.Eventf(-1, -1, format, args...) }

// Eventf records one structured event. The message is formatted and the
// sink invoked under the log's mutex, so concurrent callers emit whole,
// non-interleaved lines in a single total order.
func (l *EventLog) Eventf(round, client int, format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	l.mu.Lock()
	defer l.mu.Unlock()
	l.seq++
	l.ring[l.next] = Event{Time: time.Now(), Round: round, Client: client, Msg: msg}
	l.next = (l.next + 1) % len(l.ring)
	if l.n < len(l.ring) {
		l.n++
	}
	if l.sink != nil {
		l.sink(msg)
	}
}

// Events returns the retained events, oldest first.
func (l *EventLog) Events() []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Event, 0, l.n)
	start := l.next - l.n
	if start < 0 {
		start += len(l.ring)
	}
	for i := 0; i < l.n; i++ {
		out = append(out, l.ring[(start+i)%len(l.ring)])
	}
	return out
}

// Seq returns how many events have ever been recorded (including ones the
// ring has since evicted).
func (l *EventLog) Seq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}
