package telemetry

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// Health is the /healthz snapshot of a running federation server. All
// fields are value types so snapshots are comparable (the JSON round-trip
// fuzzer relies on that).
type Health struct {
	// Status is "waiting" (registration), "running" (rounds in progress),
	// "draining" (graceful shutdown requested, finishing the in-flight
	// round), "drained" (drain complete, state checkpointed), or "done".
	Status string `json:"status"`
	// Round is the round currently being orchestrated (0-based); after the
	// federation finishes it equals Rounds.
	Round int `json:"round"`
	// Rounds is the configured total round count.
	Rounds int `json:"rounds"`
	// RegisteredClients is the current live session count.
	RegisteredClients int `json:"registered_clients"`
	// NumClients is the configured cohort size.
	NumClients int `json:"num_clients"`
	// MinClients is the per-round quorum.
	MinClients int `json:"min_clients"`
	// StartRound is the round the federation (re)started from (checkpoint
	// resume), 0 for a fresh run.
	StartRound int `json:"start_round"`
	// CheckpointRound is the round of the last persisted checkpoint, -1 if
	// checkpointing is off or nothing has been persisted yet.
	CheckpointRound int `json:"checkpoint_round"`
	// Wire is the codec label the server offers at negotiation ("gob",
	// "binary", "binary+flate+int8+topk+delta", ...); empty on servers
	// predating the v3 wire protocol.
	Wire string `json:"wire,omitempty"`
}

// EncodeHealth renders h as JSON.
func EncodeHealth(h Health) ([]byte, error) {
	data, err := json.Marshal(h)
	if err != nil {
		return nil, fmt.Errorf("telemetry: encode health: %w", err)
	}
	return data, nil
}

// DecodeHealth parses a /healthz JSON document. Unknown fields are
// rejected so a deployment mismatch (old prober, new server) fails loudly
// instead of silently dropping data.
func DecodeHealth(data []byte) (Health, error) {
	var h Health
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&h); err != nil {
		return Health{}, fmt.Errorf("telemetry: decode health: %w", err)
	}
	return h, nil
}
