package telemetry

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// AdminServer is the runtime observability endpoint of a dinar-server
// process: /metrics (Prometheus text format), /healthz (JSON Health
// snapshot), and net/http/pprof under /debug/pprof/. It runs on its own
// listener so operations traffic never shares a port with the FL wire
// protocol.
type AdminServer struct {
	ln  net.Listener
	srv *http.Server
}

// AdminMux builds the standard admin route set on a fresh mux: /metrics
// from writeMetrics (nil means the Default registry), /healthz from
// health (nil serves a zero Health), and net/http/pprof under
// /debug/pprof/. Callers that need extra routes — service mode mounts its
// /jobs API here — add them to the returned mux before serving it with
// ServeHandler.
func AdminMux(health func() Health, writeMetrics func(io.Writer) error) *http.ServeMux {
	if writeMetrics == nil {
		writeMetrics = Default().WritePrometheus
	}
	if health == nil {
		health = func() Health { return Health{} }
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = writeMetrics(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		data, err := EncodeHealth(health())
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(append(data, '\n')) //nolint:errcheck // best-effort response
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// ServeHandler starts an admin HTTP server for handler on addr (":0" for
// an ephemeral port). The server runs until Close.
func ServeHandler(addr string, handler http.Handler) (*AdminServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: admin listen %s: %w", addr, err)
	}
	a := &AdminServer{
		ln: ln,
		srv: &http.Server{
			Handler:           handler,
			ReadHeaderTimeout: 10 * time.Second,
		},
	}
	go a.srv.Serve(ln) //nolint:errcheck // Serve returns ErrServerClosed on Close
	return a, nil
}

// ServeAdmin starts an admin server on addr (":0" for an ephemeral port).
// health supplies the /healthz snapshot (nil serves a zero Health);
// reg supplies /metrics (nil means the Default registry). The server runs
// until Close.
func ServeAdmin(addr string, health func() Health, reg *Registry) (*AdminServer, error) {
	var writeMetrics func(io.Writer) error
	if reg != nil {
		writeMetrics = reg.WritePrometheus
	}
	return ServeHandler(addr, AdminMux(health, writeMetrics))
}

// Addr returns the bound admin address.
func (a *AdminServer) Addr() net.Addr { return a.ln.Addr() }

// Close stops the admin listener and in-flight handlers.
func (a *AdminServer) Close() error { return a.srv.Close() }
