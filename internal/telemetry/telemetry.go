// Package telemetry is the process-wide runtime observability layer of the
// DINAR middleware: a metrics registry whose instruments (atomic counters,
// gauges, fixed-bucket histograms) are allocation-free on the hot path, a
// serialized structured event log that replaces ad-hoc Logf fan-in, a
// /healthz snapshot type, and an admin HTTP server exposing it all
// (Prometheus text format on /metrics, JSON on /healthz, net/http/pprof
// under /debug/).
//
// Instruments are registered once at package init time (registration may
// allocate); Observe/Add/Set/Inc never do, so the training hot path — which
// the repository guards at 0 allocs/op in steady state — can be
// instrumented without losing that property. Every instrument is safe for
// concurrent use.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n < 0 is a programming error but is not checked on the hot
// path).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous value.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds n (negative to decrement).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// SetMax raises the gauge to v if v exceeds the current value — a
// monotone high-water mark (peak memory, max queue depth).
func (g *Gauge) SetMax(v int64) {
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket histogram: cumulative counts per upper
// bound plus an implicit +Inf bucket, a float sum, and a total count.
// Observe is lock-free and allocation-free.
type Histogram struct {
	bounds  []float64 // ascending upper bounds; +Inf is implicit
	buckets []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits, CAS-accumulated
}

// DurationBuckets are the default bounds (in seconds) for phase/latency
// histograms: 100µs up to 60s.
var DurationBuckets = []float64{
	0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 10, 30, 60,
}

// Observe records v.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// kind discriminates registered instruments.
type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

// entry is one registered instrument.
type entry struct {
	name string
	help string
	k    kind
	c    *Counter
	g    *Gauge
	h    *Histogram
}

// Registry holds named instruments and renders them in Prometheus text
// format. The zero value is unusable; use NewRegistry or the package-level
// Default registry.
//
// A registry may carry one constant label pair (NewLabeledRegistry) that
// is rendered on every sample it exposes — the mechanism behind per-job
// metric isolation in service mode: each federation job registers its
// instruments into its own `job`-labeled registry, and the admin endpoint
// merges all of them with WritePrometheusMerged so two jobs' counters
// never collapse into one indistinguishable process-wide total.
type Registry struct {
	mu      sync.Mutex
	entries map[string]*entry

	// scalarSuffix is `{key="value"}` appended to counter/gauge/sum/count
	// sample names; bucketPrefix is `key="value",` merged ahead of the
	// le label on histogram buckets. Both empty for unlabeled registries.
	scalarSuffix string
	bucketPrefix string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]*entry)}
}

// NewLabeledRegistry returns an empty registry whose every exposed sample
// carries the constant label key="value" (e.g. job="mnist-a"). The label
// is rendered at exposition time only; instruments stay allocation-free.
func NewLabeledRegistry(key, value string) *Registry {
	r := NewRegistry()
	r.scalarSuffix = fmt.Sprintf("{%s=%q}", key, value)
	r.bucketPrefix = fmt.Sprintf("%s=%q,", key, value)
	return r
}

// defaultRegistry is the process-wide registry every package-level
// instrument registers into; the admin server serves it on /metrics.
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return defaultRegistry }

func (r *Registry) register(e *entry) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.entries[e.name]; dup {
		panic(fmt.Sprintf("telemetry: duplicate metric %q", e.name))
	}
	r.entries[e.name] = e
}

// NewCounter registers a counter under name. Duplicate names panic
// (registration is init-time wiring, not a runtime path).
func (r *Registry) NewCounter(name, help string) *Counter {
	c := &Counter{}
	r.register(&entry{name: name, help: help, k: kindCounter, c: c})
	return c
}

// NewGauge registers a gauge under name.
func (r *Registry) NewGauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(&entry{name: name, help: help, k: kindGauge, g: g})
	return g
}

// NewHistogram registers a histogram with the given ascending bucket
// bounds (nil means DurationBuckets).
func (r *Registry) NewHistogram(name, help string, bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DurationBuckets
	}
	h := &Histogram{bounds: append([]float64(nil), bounds...), buckets: make([]atomic.Int64, len(bounds)+1)}
	r.register(&entry{name: name, help: help, k: kindHistogram, h: h})
	return h
}

// Counter returns the counter registered under name, registering it first
// when absent. Unlike NewCounter, finding the name already registered is
// not an error — metric bundles built per registry (one per federation
// job) can be rebuilt over the same registry when a job restarts from its
// checkpoint, and the instrument keeps accumulating where it left off.
// A name already registered as a different instrument kind still panics.
func (r *Registry) Counter(name, help string) *Counter {
	if e := r.lookup(name, kindCounter); e != nil {
		return e.c
	}
	return r.NewCounter(name, help)
}

// Gauge returns the gauge registered under name, registering it first when
// absent (see Counter for the reuse contract).
func (r *Registry) Gauge(name, help string) *Gauge {
	if e := r.lookup(name, kindGauge); e != nil {
		return e.g
	}
	return r.NewGauge(name, help)
}

// Histogram returns the histogram registered under name, registering it
// first when absent (see Counter for the reuse contract). The bounds of an
// existing histogram are kept; the argument only shapes a fresh one.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if e := r.lookup(name, kindHistogram); e != nil {
		return e.h
	}
	return r.NewHistogram(name, help, bounds)
}

// lookup returns the entry under name after checking its kind, or nil when
// the name is unregistered.
func (r *Registry) lookup(name string, k kind) *entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries[name]
	if !ok {
		return nil
	}
	if e.k != k {
		panic(fmt.Sprintf("telemetry: metric %q re-requested as a different instrument kind", name))
	}
	return e
}

// NewCounter registers a counter in the Default registry.
func NewCounter(name, help string) *Counter { return defaultRegistry.NewCounter(name, help) }

// NewGauge registers a gauge in the Default registry.
func NewGauge(name, help string) *Gauge { return defaultRegistry.NewGauge(name, help) }

// NewHistogram registers a histogram in the Default registry (nil bounds
// mean DurationBuckets).
func NewHistogram(name, help string, bounds []float64) *Histogram {
	return defaultRegistry.NewHistogram(name, help, bounds)
}

// sample couples one instrument with the label rendering of the registry
// that owns it, so merged exposition can interleave samples from several
// registries under one HELP/TYPE header.
type sample struct {
	e            *entry
	scalarSuffix string
	bucketPrefix string
}

// snapshot returns the registry's entries sorted by name, each tagged with
// the registry's label rendering.
func (r *Registry) snapshot() []sample {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.entries))
	for name := range r.entries {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]sample, 0, len(names))
	for _, name := range names {
		out = append(out, sample{e: r.entries[name], scalarSuffix: r.scalarSuffix, bucketPrefix: r.bucketPrefix})
	}
	return out
}

// writeSample renders one instrument's sample lines (no HELP/TYPE header).
func writeSample(w io.Writer, s sample) error {
	e := s.e
	switch e.k {
	case kindCounter:
		if _, err := fmt.Fprintf(w, "%s%s %d\n", e.name, s.scalarSuffix, e.c.Value()); err != nil {
			return err
		}
	case kindGauge:
		if _, err := fmt.Fprintf(w, "%s%s %d\n", e.name, s.scalarSuffix, e.g.Value()); err != nil {
			return err
		}
	case kindHistogram:
		var cum int64
		for i, b := range e.h.bounds {
			cum += e.h.buckets[i].Load()
			if _, err := fmt.Fprintf(w, "%s_bucket{%sle=%q} %d\n", e.name, s.bucketPrefix, formatBound(b), cum); err != nil {
				return err
			}
		}
		cum += e.h.buckets[len(e.h.bounds)].Load()
		if _, err := fmt.Fprintf(w, "%s_bucket{%sle=\"+Inf\"} %d\n", e.name, s.bucketPrefix, cum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n%s_count%s %d\n",
			e.name, s.scalarSuffix, strconv.FormatFloat(e.h.Sum(), 'g', -1, 64),
			e.name, s.scalarSuffix, e.h.Count()); err != nil {
			return err
		}
	}
	return nil
}

// typeName renders the Prometheus TYPE keyword for an instrument kind.
func (k kind) typeName() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// WritePrometheus renders every registered instrument in Prometheus text
// exposition format, sorted by metric name so output is deterministic. A
// labeled registry's samples carry its constant label.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, s := range r.snapshot() {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", s.e.name, s.e.help, s.e.name, s.e.k.typeName()); err != nil {
			return err
		}
		if err := writeSample(w, s); err != nil {
			return err
		}
	}
	return nil
}

// WritePrometheusMerged renders the union of several registries as one
// valid Prometheus exposition: samples sharing a metric name are grouped
// under a single HELP/TYPE header (Prometheus rejects repeated headers),
// distinguished by each registry's constant label. This is how service
// mode serves one /metrics page covering the process-wide Default
// registry plus every job's labeled registry. Registries listed earlier
// win HELP-text conflicts; two unlabeled registries sharing a name would
// emit duplicate series, so callers label all but one.
func WritePrometheusMerged(w io.Writer, regs ...*Registry) error {
	byName := make(map[string][]sample)
	names := make([]string, 0, 64)
	for _, r := range regs {
		if r == nil {
			continue
		}
		for _, s := range r.snapshot() {
			if _, seen := byName[s.e.name]; !seen {
				names = append(names, s.e.name)
			}
			byName[s.e.name] = append(byName[s.e.name], s)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		group := byName[name]
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, group[0].e.help, name, group[0].e.k.typeName()); err != nil {
			return err
		}
		for _, s := range group {
			if err := writeSample(w, s); err != nil {
				return err
			}
		}
	}
	return nil
}

// formatBound renders a bucket bound the way Prometheus expects (shortest
// round-trip float).
func formatBound(b float64) string { return strconv.FormatFloat(b, 'g', -1, 64) }
