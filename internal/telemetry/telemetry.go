// Package telemetry is the process-wide runtime observability layer of the
// DINAR middleware: a metrics registry whose instruments (atomic counters,
// gauges, fixed-bucket histograms) are allocation-free on the hot path, a
// serialized structured event log that replaces ad-hoc Logf fan-in, a
// /healthz snapshot type, and an admin HTTP server exposing it all
// (Prometheus text format on /metrics, JSON on /healthz, net/http/pprof
// under /debug/).
//
// Instruments are registered once at package init time (registration may
// allocate); Observe/Add/Set/Inc never do, so the training hot path — which
// the repository guards at 0 allocs/op in steady state — can be
// instrumented without losing that property. Every instrument is safe for
// concurrent use.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n < 0 is a programming error but is not checked on the hot
// path).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous value.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds n (negative to decrement).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// SetMax raises the gauge to v if v exceeds the current value — a
// monotone high-water mark (peak memory, max queue depth).
func (g *Gauge) SetMax(v int64) {
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket histogram: cumulative counts per upper
// bound plus an implicit +Inf bucket, a float sum, and a total count.
// Observe is lock-free and allocation-free.
type Histogram struct {
	bounds  []float64 // ascending upper bounds; +Inf is implicit
	buckets []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits, CAS-accumulated
}

// DurationBuckets are the default bounds (in seconds) for phase/latency
// histograms: 100µs up to 60s.
var DurationBuckets = []float64{
	0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 10, 30, 60,
}

// Observe records v.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// kind discriminates registered instruments.
type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

// entry is one registered instrument.
type entry struct {
	name string
	help string
	k    kind
	c    *Counter
	g    *Gauge
	h    *Histogram
}

// Registry holds named instruments and renders them in Prometheus text
// format. The zero value is unusable; use NewRegistry or the package-level
// Default registry.
type Registry struct {
	mu      sync.Mutex
	entries map[string]*entry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]*entry)}
}

// defaultRegistry is the process-wide registry every package-level
// instrument registers into; the admin server serves it on /metrics.
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return defaultRegistry }

func (r *Registry) register(e *entry) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.entries[e.name]; dup {
		panic(fmt.Sprintf("telemetry: duplicate metric %q", e.name))
	}
	r.entries[e.name] = e
}

// NewCounter registers a counter under name. Duplicate names panic
// (registration is init-time wiring, not a runtime path).
func (r *Registry) NewCounter(name, help string) *Counter {
	c := &Counter{}
	r.register(&entry{name: name, help: help, k: kindCounter, c: c})
	return c
}

// NewGauge registers a gauge under name.
func (r *Registry) NewGauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(&entry{name: name, help: help, k: kindGauge, g: g})
	return g
}

// NewHistogram registers a histogram with the given ascending bucket
// bounds (nil means DurationBuckets).
func (r *Registry) NewHistogram(name, help string, bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DurationBuckets
	}
	h := &Histogram{bounds: append([]float64(nil), bounds...), buckets: make([]atomic.Int64, len(bounds)+1)}
	r.register(&entry{name: name, help: help, k: kindHistogram, h: h})
	return h
}

// NewCounter registers a counter in the Default registry.
func NewCounter(name, help string) *Counter { return defaultRegistry.NewCounter(name, help) }

// NewGauge registers a gauge in the Default registry.
func NewGauge(name, help string) *Gauge { return defaultRegistry.NewGauge(name, help) }

// NewHistogram registers a histogram in the Default registry (nil bounds
// mean DurationBuckets).
func NewHistogram(name, help string, bounds []float64) *Histogram {
	return defaultRegistry.NewHistogram(name, help, bounds)
}

// WritePrometheus renders every registered instrument in Prometheus text
// exposition format, sorted by metric name so output is deterministic.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.entries))
	for name := range r.entries {
		names = append(names, name)
	}
	entries := make([]*entry, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		entries = append(entries, r.entries[name])
	}
	r.mu.Unlock()

	for _, e := range entries {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n", e.name, e.help); err != nil {
			return err
		}
		switch e.k {
		case kindCounter:
			if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", e.name, e.name, e.c.Value()); err != nil {
				return err
			}
		case kindGauge:
			if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", e.name, e.name, e.g.Value()); err != nil {
				return err
			}
		case kindHistogram:
			if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", e.name); err != nil {
				return err
			}
			var cum int64
			for i, b := range e.h.bounds {
				cum += e.h.buckets[i].Load()
				if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", e.name, formatBound(b), cum); err != nil {
					return err
				}
			}
			cum += e.h.buckets[len(e.h.bounds)].Load()
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", e.name, cum); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n",
				e.name, strconv.FormatFloat(e.h.Sum(), 'g', -1, 64), e.name, e.h.Count()); err != nil {
				return err
			}
		}
	}
	return nil
}

// formatBound renders a bucket bound the way Prometheus expects (shortest
// round-trip float).
func formatBound(b float64) string { return strconv.FormatFloat(b, 'g', -1, 64) }
