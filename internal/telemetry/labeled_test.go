package telemetry

import (
	"strings"
	"testing"
)

func TestLabeledRegistryRendersJobLabel(t *testing.T) {
	r := NewLabeledRegistry("job", "alpha")
	r.Counter("test_events_total", "events").Add(3)
	r.Gauge("test_depth", "depth").Set(7)
	r.Histogram("test_lat_seconds", "latency", []float64{0.1, 1}).Observe(0.05)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`test_events_total{job="alpha"} 3`,
		`test_depth{job="alpha"} 7`,
		`test_lat_seconds_bucket{job="alpha",le="0.1"} 1`,
		`test_lat_seconds_bucket{job="alpha",le="+Inf"} 1`,
		`test_lat_seconds_count{job="alpha"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("labeled exposition missing %q in:\n%s", want, out)
		}
	}
}

// TestMergedExpositionGroupsByName pins the multi-registry writer: one
// HELP/TYPE header per metric name, then every registry's samples — the
// shape Prometheus requires when two jobs export the same metric.
func TestMergedExpositionGroupsByName(t *testing.T) {
	a := NewLabeledRegistry("job", "a")
	b := NewLabeledRegistry("job", "b")
	a.Counter("test_rounds_total", "rounds").Add(1)
	b.Counter("test_rounds_total", "rounds").Add(2)
	b.Gauge("test_only_b", "solo").Set(5)

	var sb strings.Builder
	if err := WritePrometheusMerged(&sb, a, b); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if n := strings.Count(out, "# TYPE test_rounds_total counter"); n != 1 {
		t.Errorf("want exactly one TYPE header for test_rounds_total, got %d:\n%s", n, out)
	}
	if !strings.Contains(out, `test_rounds_total{job="a"} 1`) || !strings.Contains(out, `test_rounds_total{job="b"} 2`) {
		t.Errorf("merged exposition missing per-job samples:\n%s", out)
	}
	// Both samples must sit under the single header, adjacent.
	ai := strings.Index(out, `test_rounds_total{job="a"}`)
	bi := strings.Index(out, `test_rounds_total{job="b"}`)
	hi := strings.Index(out, "# TYPE test_rounds_total")
	if !(hi < ai && ai < bi) {
		t.Errorf("samples not grouped under their header (header=%d a=%d b=%d)", hi, ai, bi)
	}
	if !strings.Contains(out, `test_only_b{job="b"} 5`) {
		t.Errorf("merged exposition missing single-registry metric:\n%s", out)
	}
}

// TestIdempotentGetters pins the lookup-or-create behavior pause/resume
// depends on: re-registering the same instrument returns the existing
// one (state intact), while a kind clash still panics.
func TestIdempotentGetters(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("test_twice_total", "h")
	c1.Add(4)
	c2 := r.Counter("test_twice_total", "h")
	if c1 != c2 {
		t.Fatal("Counter returned a new instrument for an existing name")
	}
	if got := c2.Value(); got != 4 {
		t.Fatalf("re-registered counter lost state: got %d, want 4", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch did not panic")
		}
	}()
	r.Gauge("test_twice_total", "h")
}
