package telemetry

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// TestEventLogSerializesSink proves the whole-line guarantee: many
// goroutines log concurrently, and a reentrancy detector inside the sink
// verifies no two sink invocations ever overlap (run under -race via
// `make telemetry`).
func TestEventLogSerializesSink(t *testing.T) {
	var inSink atomic.Int32
	var lines []string
	l := NewEventLog(64, func(line string) {
		if inSink.Add(1) != 1 {
			t.Error("sink entered concurrently")
		}
		lines = append(lines, line) // safe only because the sink is serialized
		inSink.Add(-1)
	})
	const goroutines, perG = 8, 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				l.Eventf(i, g, "goroutine %d event %d", g, i)
			}
		}()
	}
	wg.Wait()
	if len(lines) != goroutines*perG {
		t.Fatalf("sink saw %d lines, want %d", len(lines), goroutines*perG)
	}
	for _, line := range lines {
		var g, i int
		if _, err := fmt.Sscanf(line, "goroutine %d event %d", &g, &i); err != nil {
			t.Fatalf("interleaved or malformed line %q: %v", line, err)
		}
	}
	if got := l.Seq(); got != goroutines*perG {
		t.Fatalf("Seq = %d, want %d", got, goroutines*perG)
	}
}

// TestEventLogRing checks the bounded ring keeps the newest events in
// order and Events returns them oldest first.
func TestEventLogRing(t *testing.T) {
	l := NewEventLog(4, nil)
	for i := 0; i < 10; i++ {
		l.Eventf(i, -1, "event %d", i)
	}
	evs := l.Events()
	if len(evs) != 4 {
		t.Fatalf("ring holds %d events, want 4", len(evs))
	}
	for i, ev := range evs {
		wantRound := 6 + i
		if ev.Round != wantRound || ev.Msg != fmt.Sprintf("event %d", wantRound) {
			t.Fatalf("ring[%d] = round %d %q, want round %d", i, ev.Round, ev.Msg, wantRound)
		}
		if ev.Client != -1 {
			t.Fatalf("ring[%d].Client = %d, want -1", i, ev.Client)
		}
	}
	if l.Seq() != 10 {
		t.Fatalf("Seq = %d, want 10", l.Seq())
	}
}

// TestEventLogNilSinkAndMinCapacity: a nil sink only records, and
// capacity is clamped to at least 1.
func TestEventLogNilSinkAndMinCapacity(t *testing.T) {
	l := NewEventLog(0, nil)
	l.Logf("only %s", "line")
	evs := l.Events()
	if len(evs) != 1 || !strings.Contains(evs[0].Msg, "only line") {
		t.Fatalf("events = %+v, want one 'only line'", evs)
	}
	if evs[0].Round != -1 || evs[0].Client != -1 {
		t.Fatalf("Logf should record round=-1 client=-1, got %d/%d", evs[0].Round, evs[0].Client)
	}
}
