package telemetry

import (
	"strings"
	"sync"
	"testing"
)

// TestCounterConcurrent hammers one counter from many goroutines (run
// under -race via `make telemetry`) and checks the total.
func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("test_counter_total", "t")
	const goroutines, perG = 16, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				if i%2 == 0 {
					c.Inc()
				} else {
					c.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != goroutines*perG {
		t.Fatalf("counter = %d, want %d", got, goroutines*perG)
	}
}

// TestGaugeConcurrent checks Add pairs cancel and SetMax keeps the maximum
// under contention.
func TestGaugeConcurrent(t *testing.T) {
	r := NewRegistry()
	g := r.NewGauge("test_gauge", "t")
	hw := r.NewGauge("test_highwater", "t")
	const goroutines, perG = 16, 1000
	var wg sync.WaitGroup
	for id := 0; id < goroutines; id++ {
		id := id
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				g.Add(1)
				g.Add(-1)
				hw.SetMax(int64(id*perG + i))
			}
		}()
	}
	wg.Wait()
	if got := g.Value(); got != 0 {
		t.Fatalf("gauge = %d after balanced Adds, want 0", got)
	}
	if want := int64((goroutines-1)*perG + perG - 1); hw.Value() != want {
		t.Fatalf("high-water = %d, want %d", hw.Value(), want)
	}
}

// TestHistogramConcurrent checks bucket placement, count, and the
// CAS-accumulated sum under contention.
func TestHistogramConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("test_hist_seconds", "t", []float64{1, 10})
	const goroutines, perG = 8, 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.Observe(0.5) // le=1 bucket
				h.Observe(5)   // le=10 bucket
				h.Observe(50)  // +Inf bucket
			}
		}()
	}
	wg.Wait()
	if got, want := h.Count(), int64(3*goroutines*perG); got != want {
		t.Fatalf("count = %d, want %d", got, want)
	}
	if got, want := h.Sum(), 55.5*goroutines*perG; got != want {
		t.Fatalf("sum = %g, want %g", got, want)
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, line := range []string{
		`test_hist_seconds_bucket{le="1"} 4000`,
		`test_hist_seconds_bucket{le="10"} 8000`,
		`test_hist_seconds_bucket{le="+Inf"} 12000`,
	} {
		if !strings.Contains(out, line) {
			t.Errorf("missing %q in:\n%s", line, out)
		}
	}
}

// TestHotPathAllocFree guards the tentpole property: recording telemetry
// from the training hot path must not allocate.
func TestHotPathAllocFree(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("alloc_counter_total", "t")
	g := r.NewGauge("alloc_gauge", "t")
	h := r.NewHistogram("alloc_hist_seconds", "t", nil)
	if n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
		g.Set(42)
		g.Add(-1)
		g.SetMax(99)
		h.Observe(0.0042)
	}); n != 0 {
		t.Fatalf("instrument hot path allocates %v allocs/op, want 0", n)
	}
}

// TestDuplicateRegistrationPanics: duplicate metric names are wiring bugs.
func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("dup_total", "t")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.NewGauge("dup_total", "t")
}

// TestWritePrometheusGolden pins the full exposition format on a fresh
// registry: HELP/TYPE lines, name-sorted order, cumulative buckets, sum
// and count.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("z_requests_total", "requests served")
	g := r.NewGauge("a_live_clients", "live clients")
	h := r.NewHistogram("m_latency_seconds", "request latency", []float64{0.5, 2})
	c.Add(7)
	g.Set(3)
	h.Observe(0.25)
	h.Observe(1)
	h.Observe(9)

	const want = `# HELP a_live_clients live clients
# TYPE a_live_clients gauge
a_live_clients 3
# HELP m_latency_seconds request latency
# TYPE m_latency_seconds histogram
m_latency_seconds_bucket{le="0.5"} 1
m_latency_seconds_bucket{le="2"} 2
m_latency_seconds_bucket{le="+Inf"} 3
m_latency_seconds_sum 10.25
m_latency_seconds_count 3
# HELP z_requests_total requests served
# TYPE z_requests_total counter
z_requests_total 7
`
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if got := sb.String(); got != want {
		t.Fatalf("exposition format drifted:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}
