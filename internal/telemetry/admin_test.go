package telemetry

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/chaos"
)

// testClient disables keep-alives so idle-connection goroutines don't
// linger past a.Close() and trip the leak guard.
var testClient = &http.Client{Transport: &http.Transport{DisableKeepAlives: true}}

// TestServeAdmin spins up an admin server on an ephemeral port and checks
// all three endpoint families.
func TestServeAdmin(t *testing.T) {
	chaos.GuardTest(t, 5*time.Second)
	reg := NewRegistry()
	c := reg.NewCounter("admin_test_total", "t")
	c.Add(5)
	want := Health{Status: "running", Round: 2, Rounds: 9, RegisteredClients: 3,
		NumClients: 3, MinClients: 2, CheckpointRound: -1}
	a, err := ServeAdmin("127.0.0.1:0", func() Health { return want }, reg)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	base := fmt.Sprintf("http://%s", a.Addr())

	get := func(path string) (int, string, string) {
		t.Helper()
		resp, err := testClient.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: read: %v", path, err)
		}
		return resp.StatusCode, string(body), resp.Header.Get("Content-Type")
	}

	code, body, ctype := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	if !strings.HasPrefix(ctype, "text/plain; version=0.0.4") {
		t.Errorf("/metrics content type %q", ctype)
	}
	if !strings.Contains(body, "admin_test_total 5") {
		t.Errorf("/metrics missing counter:\n%s", body)
	}

	code, body, ctype = get("/healthz")
	if code != http.StatusOK {
		t.Fatalf("/healthz status %d", code)
	}
	if ctype != "application/json" {
		t.Errorf("/healthz content type %q", ctype)
	}
	got, err := DecodeHealth([]byte(body))
	if err != nil {
		t.Fatalf("/healthz decode: %v", err)
	}
	if got != want {
		t.Errorf("/healthz = %+v, want %+v", got, want)
	}

	if code, _, _ = get("/debug/pprof/"); code != http.StatusOK {
		t.Errorf("/debug/pprof/ status %d", code)
	}
	if code, _, _ = get("/debug/pprof/cmdline"); code != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline status %d", code)
	}
}

// TestServeAdminNilDefaults: nil health and registry fall back to a zero
// snapshot and the Default registry instead of crashing.
func TestServeAdminNilDefaults(t *testing.T) {
	chaos.GuardTest(t, 5*time.Second)
	a, err := ServeAdmin("127.0.0.1:0", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	resp, err := testClient.Get(fmt.Sprintf("http://%s/healthz", a.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if _, err := DecodeHealth(body); err != nil {
		t.Fatalf("zero health does not decode: %v", err)
	}
}
