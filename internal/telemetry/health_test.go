package telemetry

import (
	"strings"
	"testing"
)

func TestHealthRoundTrip(t *testing.T) {
	h := Health{
		Status:            "running",
		Round:             3,
		Rounds:            10,
		RegisteredClients: 4,
		NumClients:        5,
		MinClients:        3,
		StartRound:        1,
		CheckpointRound:   2,
	}
	data, err := EncodeHealth(h)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeHealth(data)
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatalf("round trip: got %+v, want %+v", got, h)
	}
}

// TestDecodeHealthRejectsUnknownFields: a deployment mismatch must fail
// loudly instead of silently dropping data.
func TestDecodeHealthRejectsUnknownFields(t *testing.T) {
	_, err := DecodeHealth([]byte(`{"status":"running","new_field":1}`))
	if err == nil || !strings.Contains(err.Error(), "unknown field") {
		t.Fatalf("want unknown-field error, got %v", err)
	}
}

// FuzzHealthJSON fuzzes the /healthz encoder round trip: every Health that
// encodes must decode back to itself, and DecodeHealth must never panic on
// arbitrary bytes.
func FuzzHealthJSON(f *testing.F) {
	f.Add("running", 3, 10, 4, 5, 3, 1, 2)
	f.Add("", -1, 0, 0, 0, 0, 0, -1)
	f.Add(`weird "status"\n`, 1<<30, -1<<30, 7, 7, 7, 7, 7)
	f.Fuzz(func(t *testing.T, status string, round, rounds, reg, num, min, start, ckpt int) {
		// encoding/json coerces invalid UTF-8 to U+FFFD on marshal, so the
		// identity property only holds for the coerced string.
		status = strings.ToValidUTF8(status, "�")
		h := Health{
			Status:            status,
			Round:             round,
			Rounds:            rounds,
			RegisteredClients: reg,
			NumClients:        num,
			MinClients:        min,
			StartRound:        start,
			CheckpointRound:   ckpt,
		}
		data, err := EncodeHealth(h)
		if err != nil {
			t.Fatalf("encode %+v: %v", h, err)
		}
		got, err := DecodeHealth(data)
		if err != nil {
			t.Fatalf("decode %s: %v", data, err)
		}
		if got != h {
			t.Fatalf("round trip: got %+v, want %+v", got, h)
		}
		// Arbitrary mutations must never panic the decoder.
		if len(data) > 0 {
			data[len(data)/2] ^= 0x5a
			_, _ = DecodeHealth(data)
		}
	})
}
