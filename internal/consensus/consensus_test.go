package consensus

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func honest(votes ...int) []Node {
	nodes := make([]Node, len(votes))
	for i, v := range votes {
		nodes[i] = Node{ID: i, Vote: v}
	}
	return nodes
}

func TestUnanimousVote(t *testing.T) {
	res, err := Run(context.Background(), honest(4, 4, 4, 4, 4), 6, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 4 {
		t.Fatalf("value = %d, want 4", res.Value)
	}
	if res.Tally[4] != 5 {
		t.Fatalf("tally = %v", res.Tally)
	}
}

func TestMajorityVote(t *testing.T) {
	res, err := Run(context.Background(), honest(2, 2, 2, 1, 0), 4, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 2 {
		t.Fatalf("value = %d, want 2", res.Value)
	}
}

func TestNoMajorityFails(t *testing.T) {
	_, err := Run(context.Background(), honest(0, 1, 2, 3), 4, rand.New(rand.NewSource(1)))
	if !errors.Is(err, ErrNoQuorum) {
		t.Fatalf("err = %v, want ErrNoQuorum", err)
	}
}

func TestByzantineMinorityTolerated(t *testing.T) {
	// 5 honest voting 3, 2 Byzantine lying arbitrarily: 5/7 > 1/2 majority,
	// so every honest node still sees >= 5 votes for 3 out of 7.
	nodes := []Node{
		{ID: 0, Vote: 3}, {ID: 1, Vote: 3}, {ID: 2, Vote: 3},
		{ID: 3, Vote: 3}, {ID: 4, Vote: 3},
		{ID: 5, Byzantine: true}, {ID: 6, Byzantine: true},
	}
	for seed := int64(0); seed < 10; seed++ {
		res, err := Run(context.Background(), nodes, 8, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Value != 3 {
			t.Fatalf("seed %d: value = %d, want 3", seed, res.Value)
		}
	}
}

func TestByzantineCannotForceWithoutHonestMajority(t *testing.T) {
	// 2 honest split votes + 3 Byzantine: no honest absolute majority is
	// guaranteed; the protocol must either agree on an honest-supported
	// value or fail, never crash.
	nodes := []Node{
		{ID: 0, Vote: 1}, {ID: 1, Vote: 2},
		{ID: 2, Byzantine: true}, {ID: 3, Byzantine: true}, {ID: 4, Byzantine: true},
	}
	for seed := int64(0); seed < 20; seed++ {
		res, err := Run(context.Background(), nodes, 4, rand.New(rand.NewSource(seed)))
		if err != nil {
			if !errors.Is(err, ErrNoQuorum) {
				t.Fatalf("seed %d: unexpected error %v", seed, err)
			}
			continue
		}
		if res.Value < 0 || res.Value >= 4 {
			t.Fatalf("seed %d: out-of-domain value %d", seed, res.Value)
		}
	}
}

func TestInputValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := Run(context.Background(), nil, 3, rng); err == nil {
		t.Fatal("accepted zero nodes")
	}
	if _, err := Run(context.Background(), honest(0), 0, rng); err == nil {
		t.Fatal("accepted zero choices")
	}
	if _, err := Run(context.Background(), honest(7), 3, rng); err == nil {
		t.Fatal("accepted out-of-range vote")
	}
}

func TestAllByzantineFails(t *testing.T) {
	nodes := []Node{{ID: 0, Byzantine: true}, {ID: 1, Byzantine: true}}
	if _, err := Run(context.Background(), nodes, 3, rand.New(rand.NewSource(1))); !errors.Is(err, ErrNoQuorum) {
		t.Fatalf("err = %v", err)
	}
}

func TestContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, honest(1, 1, 1), 3, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("cancelled run should fail")
	}
}

func TestAgreeOnLayer(t *testing.T) {
	layer, err := AgreeOnLayer(context.Background(), []int{4, 4, 4, 2, 4}, 6, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if layer != 4 {
		t.Fatalf("layer = %d, want 4", layer)
	}
	if _, err := AgreeOnLayer(context.Background(), []int{0, 1}, 2, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("tie should fail")
	}
}

// Property: with an honest absolute majority voting v, the protocol returns v
// regardless of the minority's behaviour.
func TestQuickHonestMajorityWins(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(10)
		choices := 2 + rng.Intn(8)
		v := rng.Intn(choices)
		majority := n/2 + 1
		nodes := make([]Node, n)
		for i := range nodes {
			switch {
			case i < majority:
				nodes[i] = Node{ID: i, Vote: v}
			case rng.Float64() < 0.5:
				nodes[i] = Node{ID: i, Byzantine: true}
			default:
				nodes[i] = Node{ID: i, Vote: rng.Intn(choices)}
			}
		}
		res, err := Run(context.Background(), nodes, choices, rng)
		return err == nil && res.Value == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
