// Package consensus implements the broadcast distributed voting protocol of
// DINAR's initialization phase (§4.1): before federated training begins, all
// clients vote on the index of the most privacy-sensitive layer. The method
// follows the distributed multi-choice voting/ranking (DMVR) approach: every
// node broadcasts its preferred value to all other nodes; each node then
// selects the value with the absolute majority among everything it received.
// The protocol tolerates Byzantine nodes that send arbitrary, inconsistent
// values to different peers, as long as a majority of nodes are honest and
// agree.
package consensus

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
)

// ErrNoQuorum is returned when honest nodes fail to reach an absolute
// majority on any single value.
var ErrNoQuorum = errors.New("consensus: no absolute majority")

// Node is one participant of the vote.
type Node struct {
	// ID is the node index.
	ID int
	// Vote is the value the node proposes (for DINAR: its locally measured
	// most-sensitive layer index).
	Vote int
	// Byzantine marks a faulty node that sends arbitrary per-recipient
	// values instead of its vote.
	Byzantine bool
}

// message is one broadcast value from sender to recipient.
type message struct {
	from  int
	value int
}

// Result summarizes a protocol run.
type Result struct {
	// Value is the agreed-upon value (the layer index to obfuscate).
	Value int
	// Decisions holds each node's local decision, indexed by node ID
	// (including Byzantine nodes' computed decisions).
	Decisions []int
	// Tally is the global count of honest first-round votes per value.
	Tally map[int]int
}

// Run executes one round of broadcast voting among the nodes. numChoices
// bounds the value domain [0, numChoices); Byzantine nodes draw their lies
// from it using rng. The call is deterministic given rng.
//
// Each node runs as its own goroutine and communicates only via channels,
// mirroring the message-passing structure of the real protocol.
func Run(ctx context.Context, nodes []Node, numChoices int, rng *rand.Rand) (*Result, error) {
	n := len(nodes)
	if n == 0 {
		return nil, errors.New("consensus: no nodes")
	}
	if numChoices <= 0 {
		return nil, fmt.Errorf("consensus: numChoices = %d", numChoices)
	}
	for _, node := range nodes {
		if !node.Byzantine && (node.Vote < 0 || node.Vote >= numChoices) {
			return nil, fmt.Errorf("consensus: node %d vote %d out of range [0,%d)", node.ID, node.Vote, numChoices)
		}
	}

	// Pre-draw Byzantine lies deterministically (rng is not goroutine-safe).
	lies := make(map[int][]int, n)
	for _, node := range nodes {
		if node.Byzantine {
			vals := make([]int, n)
			for i := range vals {
				vals[i] = rng.Intn(numChoices)
			}
			lies[node.ID] = vals
		}
	}

	inboxes := make([]chan message, n)
	for i := range inboxes {
		inboxes[i] = make(chan message, n)
	}

	var wg sync.WaitGroup
	decisions := make([]int, n)
	decisionOK := make([]bool, n)
	for idx, node := range nodes {
		wg.Add(1)
		go func(idx int, node Node) {
			defer wg.Done()
			// Broadcast phase: send a value to every peer (and self).
			for peer := 0; peer < n; peer++ {
				v := node.Vote
				if node.Byzantine {
					v = lies[node.ID][peer]
				}
				select {
				case inboxes[peer] <- message{from: node.ID, value: v}:
				case <-ctx.Done():
					return
				}
			}
			// Collect phase: receive exactly one message from every node.
			counts := make(map[int]int, numChoices)
			for received := 0; received < n; received++ {
				select {
				case msg := <-inboxes[idx]:
					counts[msg.value]++
				case <-ctx.Done():
					return
				}
			}
			// Decide: absolute majority, else leave undecided.
			for v, c := range counts {
				if 2*c > n {
					decisions[idx] = v
					decisionOK[idx] = true
					return
				}
			}
		}(idx, node)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// An honest node's decision stands for the protocol outcome; all honest
	// nodes see the same honest votes, so their decisions coincide whenever a
	// quorum exists.
	tally := make(map[int]int)
	for _, node := range nodes {
		if !node.Byzantine {
			tally[node.Vote]++
		}
	}
	agreed := -1
	for idx, node := range nodes {
		if node.Byzantine {
			continue
		}
		if !decisionOK[idx] {
			return nil, fmt.Errorf("%w: honest node %d undecided", ErrNoQuorum, node.ID)
		}
		if agreed == -1 {
			agreed = decisions[idx]
		} else if decisions[idx] != agreed {
			return nil, fmt.Errorf("%w: honest nodes disagree (%d vs %d)", ErrNoQuorum, agreed, decisions[idx])
		}
	}
	if agreed == -1 {
		return nil, fmt.Errorf("%w: no honest nodes", ErrNoQuorum)
	}
	return &Result{Value: agreed, Decisions: decisions, Tally: tally}, nil
}

// AgreeOnLayer is the DINAR-facing wrapper: given each client's locally
// measured most-sensitive layer index (votes) and the model's layer count,
// it runs the broadcast vote with no Byzantine nodes and returns the layer
// to obfuscate.
func AgreeOnLayer(ctx context.Context, votes []int, numLayers int, rng *rand.Rand) (int, error) {
	nodes := make([]Node, len(votes))
	for i, v := range votes {
		nodes[i] = Node{ID: i, Vote: v}
	}
	res, err := Run(ctx, nodes, numLayers, rng)
	if err != nil {
		return -1, err
	}
	return res.Value, nil
}
