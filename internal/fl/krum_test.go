package fl

import (
	"math"
	"strings"
	"testing"
)

// cluster builds n near-identical honest updates around base plus the given
// Byzantine states, with distinct client ids.
func cluster(n int, base []float64, byz ...[]float64) []*Update {
	out := make([]*Update, 0, n+len(byz))
	for i := 0; i < n; i++ {
		state := make([]float64, len(base))
		for c := range state {
			state[c] = base[c] + 0.01*float64(i)
		}
		out = append(out, &Update{ClientID: i, State: state, NumSamples: 1})
	}
	for j, s := range byz {
		out = append(out, &Update{ClientID: n + j, State: s, NumSamples: 1})
	}
	return out
}

func TestKrumPicksHonestUpdate(t *testing.T) {
	updates := cluster(5, []float64{1, 1},
		[]float64{100, -100},
		[]float64{-80, 90},
	)
	got, err := Krum(updates, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range got {
		if math.Abs(v-1) > 0.1 {
			t.Fatalf("krum picked a poisoned update: %v", got)
		}
	}
}

func TestKrumReturnsCopy(t *testing.T) {
	updates := cluster(4, []float64{1, 1})
	got, err := Krum(updates, 1)
	if err != nil {
		t.Fatal(err)
	}
	got[0] = 999
	for _, u := range updates {
		if u.State[0] == 999 {
			t.Fatal("krum aliased an input state")
		}
	}
}

func TestKrumIgnoresNonFinite(t *testing.T) {
	updates := cluster(4, []float64{1, 1},
		[]float64{math.NaN(), 1},
		[]float64{1, math.Inf(1)},
	)
	// f=1 against 4 finite updates still satisfies n >= f+3.
	got, err := Krum(updates, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range got {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("krum returned non-finite state: %v", got)
		}
	}
}

func TestKrumErrors(t *testing.T) {
	if _, err := Krum(nil, 0); err == nil {
		t.Fatal("accepted zero updates")
	}
	if _, err := Krum(cluster(4, []float64{1}), -1); err == nil {
		t.Fatal("accepted negative f")
	}
	// n=4 with f=2 leaves n-f-2=0 neighbors: too few updates.
	if _, err := Krum(cluster(4, []float64{1}), 2); err == nil {
		t.Fatal("accepted n < f+3")
	}
	if _, err := Krum(mkUpdates([]float64{math.NaN()}, []float64{math.Inf(1)}, []float64{math.NaN()}), 0); err == nil {
		t.Fatal("accepted all-non-finite updates")
	}
	if _, err := Krum(mkUpdates([]float64{1}, []float64{2}, []float64{3, 4}), 0); err == nil {
		t.Fatal("accepted mismatched lengths")
	}
}

func TestKrumDeterministicTieBreak(t *testing.T) {
	// Identical states tie on score; the lowest client id must win, in any
	// input order.
	a := &Update{ClientID: 2, State: []float64{1}, NumSamples: 1}
	b := &Update{ClientID: 0, State: []float64{1}, NumSamples: 1}
	c := &Update{ClientID: 1, State: []float64{1}, NumSamples: 1}
	sel, err := krumSelect([]*Update{a, b, c}, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if sel[0].ClientID != 0 {
		t.Fatalf("tie broke to client %d, want 0", sel[0].ClientID)
	}
}

func TestMultiKrumAveragesSelection(t *testing.T) {
	updates := cluster(6, []float64{2, 2},
		[]float64{1e6, 1e6},
	)
	// f=1, m<=0 selects the maximum n-f-2 = 4 honest updates.
	got, err := MultiKrum(updates, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range got {
		if math.Abs(v-2) > 0.1 {
			t.Fatalf("multi-krum hijacked: %v", got)
		}
	}
	// Explicit m=2 averages the two best.
	got, err = MultiKrum(updates, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got[0]-2) > 0.1 {
		t.Fatalf("multi-krum(m=2) = %v", got)
	}
}

func TestNormBoundedFedAvgClipsBoost(t *testing.T) {
	prev := []float64{0, 0}
	// Four honest deltas of norm ~1, one boosted to norm 100 in the same
	// direction: clipping must bring the mean back near the honest mean.
	updates := mkUpdates(
		[]float64{1, 0},
		[]float64{0.9, 0},
		[]float64{1.1, 0},
		[]float64{1, 0},
		[]float64{100, 0},
	)
	got, err := NormBoundedFedAvg(prev, updates, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] > 1.2 || got[0] < 0.8 {
		t.Fatalf("norm-bounded mean = %v, want ~1", got)
	}

	// Without the bound the boost dominates.
	plain, err := FedAvg(updates)
	if err != nil {
		t.Fatal(err)
	}
	if plain[0] < 10 {
		t.Fatalf("plain FedAvg should be hijacked, got %v", plain)
	}
}

func TestNormBoundedFedAvgDropsNonFinite(t *testing.T) {
	prev := []float64{0}
	got, err := NormBoundedFedAvg(prev, mkUpdates(
		[]float64{1},
		[]float64{math.NaN()},
		[]float64{1},
	), 3)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 1 {
		t.Fatalf("norm-bounded mean = %v, want 1", got)
	}
}

func TestNormBoundedFedAvgDegenerate(t *testing.T) {
	// All-zero deltas: median norm is 0, nothing to clip.
	prev := []float64{5, 5}
	got, err := NormBoundedFedAvg(prev, mkUpdates([]float64{5, 5}, []float64{5, 5}), 1)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 5 || got[1] != 5 {
		t.Fatalf("degenerate round = %v", got)
	}
}

func TestNormBoundedFedAvgErrors(t *testing.T) {
	if _, err := NormBoundedFedAvg([]float64{0}, nil, 1); err == nil {
		t.Fatal("accepted zero updates")
	}
	if _, err := NormBoundedFedAvg([]float64{0}, mkUpdates([]float64{math.Inf(1)}), 1); err == nil {
		t.Fatal("accepted all-non-finite updates")
	}
	if _, err := NormBoundedFedAvg([]float64{0}, mkUpdates([]float64{1, 2}), 1); err == nil {
		t.Fatal("accepted mismatched lengths")
	}
}

func TestDeltaNorm(t *testing.T) {
	if got := DeltaNorm([]float64{0, 0}, []float64{3, 4}); got != 5 {
		t.Fatalf("norm = %g, want 5", got)
	}
	if got := DeltaNorm([]float64{0}, []float64{1, 2}); !math.IsInf(got, 1) {
		t.Fatalf("mismatched lengths should yield +Inf, got %g", got)
	}
}

func TestWithAggregator(t *testing.T) {
	inner := &noneDefense{}

	// "fedavg"/"" keep the defense untouched.
	for _, name := range []string{"", "fedavg"} {
		def, err := WithAggregator(inner, name, 1)
		if err != nil {
			t.Fatal(err)
		}
		if def != Defense(inner) {
			t.Fatalf("%q should return the inner defense unchanged", name)
		}
	}

	cases := []struct {
		name string
		rule RobustRule
	}{
		{"median", RuleMedian},
		{"trimmed-mean", RuleTrimmedMean},
		{"krum", RuleKrum},
		{"multi-krum", RuleMultiKrum},
		{"norm-bound", RuleNormBound},
	}
	for _, c := range cases {
		def, err := WithAggregator(inner, c.name, 2)
		if err != nil {
			t.Fatal(err)
		}
		r, ok := def.(*RobustDefense)
		if !ok {
			t.Fatalf("%q should wrap with RobustDefense", c.name)
		}
		if r.Rule != c.rule {
			t.Fatalf("%q wired rule %v, want %v", c.name, r.Rule, c.rule)
		}
	}

	// trimmed-mean trims f per side; f=0 falls back to 1.
	def, _ := WithAggregator(inner, "trimmed-mean", 0)
	if def.(*RobustDefense).Trim != 1 {
		t.Fatalf("trim = %d, want 1", def.(*RobustDefense).Trim)
	}

	if _, err := WithAggregator(inner, "nope", 0); err == nil || !strings.Contains(err.Error(), "unknown aggregator") {
		t.Fatalf("unknown name should error, got %v", err)
	}
	if _, err := WithAggregator(inner, "krum", -1); err == nil {
		t.Fatal("negative f should error")
	}
}
