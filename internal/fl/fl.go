// Package fl implements the federated-learning core of the DINAR middleware:
// clients that train local models, a server that aggregates them with FedAvg,
// and a defense-interceptor interface through which every privacy mechanism
// of the paper (LDP, CDP, WDP, GC, SA, DINAR) plugs into the round pipeline.
//
// A round proceeds exactly as in §2.1/§4 of the paper:
//
//  1. the server broadcasts the global model state;
//  2. each client passes it through Defense.OnGlobalModel (DINAR restores its
//     private layer here — "model personalization"), installs it, and trains
//     locally ("adaptive model training");
//  3. each client passes its new state through Defense.BeforeUpload (DINAR
//     obfuscates the private layer; LDP/WDP perturb; GC compresses; SA masks)
//     and uploads it;
//  4. the server combines uploads via Defense.Aggregate (FedAvg by default;
//     CDP perturbs the aggregate; SA uses the masked sum).
package fl

import (
	"fmt"

	"repro/internal/nn"
)

// Update is a client-to-server model update for one round.
type Update struct {
	// ClientID identifies the sending client.
	ClientID int
	// Round is the FL round this update belongs to.
	Round int
	// State is the client's full model state vector (parameters followed by
	// normalization statistics), already passed through the client-side
	// defense.
	State []float64
	// NumSamples is the client's local training set size; FedAvg weighs
	// updates by it.
	NumSamples int
	// Staleness is how many rounds old the update is at aggregation time
	// (0 in synchronous rounds). The async buffered mode sets it for late
	// updates, and FedAvg decays their weight by StalenessWeight.
	Staleness int
}

// ModelInfo describes the model layout to defenses that address individual
// layers (DINAR) or need vector sizes (noise mechanisms).
type ModelInfo struct {
	// Spans lists the logical layer spans over the parameter prefix of the
	// state vector.
	Spans []nn.Span
	// NumParams is the length of the parameter prefix.
	NumParams int
	// NumState is the full state vector length.
	NumState int
}

// InfoOf extracts ModelInfo from a model.
func InfoOf(m *nn.Model) ModelInfo {
	return ModelInfo{
		Spans:     m.Spans(),
		NumParams: m.NumParams(),
		NumState:  m.NumState(),
	}
}

// Defense is the middleware interceptor interface. Implementations must be
// safe for concurrent use by multiple clients: OnGlobalModel and BeforeUpload
// are invoked from per-client goroutines when parallel training is enabled.
//
// All hooks receive and return full state vectors; implementations must not
// retain the input slice after returning (copy if needed).
type Defense interface {
	// Name returns the defense identifier used in reports, e.g. "dinar".
	Name() string
	// Bind is called once with the model layout before the first round.
	Bind(info ModelInfo) error
	// OnGlobalModel transforms the broadcast global state on the client side
	// before the client installs it. round is 0-based.
	OnGlobalModel(clientID, round int, global []float64) []float64
	// BeforeUpload transforms the client's trained state before upload. The
	// update's State field is the post-training state; implementations mutate
	// or replace it. global is the state the round started from, so
	// delta-based mechanisms (DP noise on updates, gradient compression) can
	// operate on state − global.
	BeforeUpload(round int, global []float64, u *Update)
	// Aggregate combines the round's updates into the next global state on
	// the server side; prevGlobal is the state the round started from. Most
	// defenses delegate to FedAvg.
	Aggregate(round int, prevGlobal []float64, updates []*Update) ([]float64, error)
}

// adaptiveOptimizers are the optimizers whose effective first-step magnitude
// is roughly the raw learning rate per coordinate.
var adaptiveOptimizers = map[string]bool{
	"adagrad": true, "adam": true, "adamax": true, "rmsprop": true, "adgd": true,
}

// sgdRates are tuned per-dataset SGD learning rates for the scaled models
// (probed so each model family reaches its paper-comparable utility band).
var sgdRates = map[string]float64{
	"cifar10":        0.2,
	"cifar100":       0.2,
	"gtsrb":          0.2,
	"celeba":         0.2,
	"speechcommands": 0.3,
	"purchase100":    0.8,
	"texas100":       0.8,
}

// DefaultLearningRate returns the tuned learning rate for a (dataset,
// optimizer) pair: adaptive optimizers use 0.01 everywhere; SGD uses a
// per-dataset rate (0.2 for unknown datasets).
func DefaultLearningRate(dataset, optimizer string) float64 {
	if adaptiveOptimizers[optimizer] {
		return 0.01
	}
	if r, ok := sgdRates[dataset]; ok {
		return r
	}
	return 0.2
}

// FedAvg computes the sample-count-weighted average of the updates' state
// vectors — the classical aggregation rule of McMahan et al. A zero total
// weight falls back to the unweighted mean; stale updates (Update.Staleness
// > 0, set by the async mode) are decayed by StalenessWeight.
//
// FedAvg is defined as StreamingFedAvg folded over the batch: the sums
// accumulate in exact fixed point (see exact.go), so the result is
// identical no matter how the batch is ordered or split — the streaming
// arrival-order path, the materialized sorted path, and an async
// crash/resume all agree bit for bit.
func FedAvg(updates []*Update) ([]float64, error) {
	if len(updates) == 0 {
		return nil, fmt.Errorf("fl: FedAvg of zero updates")
	}
	agg := NewStreamingFedAvg()
	for _, u := range updates {
		if err := agg.Fold(u); err != nil {
			return nil, err
		}
	}
	return agg.Finalize()
}

// MaskedSum computes the plain unweighted sum of the updates divided by the
// total sample count. Secure aggregation uses it: clients pre-scale their
// states by their sample counts and add pairwise masks that cancel in the
// sum, so the server recovers exactly the FedAvg result without seeing any
// individual model.
func MaskedSum(updates []*Update) ([]float64, error) {
	if len(updates) == 0 {
		return nil, fmt.Errorf("fl: masked sum of zero updates")
	}
	n := len(updates[0].State)
	total := 0
	for _, u := range updates {
		if len(u.State) != n {
			return nil, fmt.Errorf("fl: update from client %d has %d values, want %d", u.ClientID, len(u.State), n)
		}
		total += u.NumSamples
	}
	if total == 0 {
		return nil, fmt.Errorf("fl: masked sum with zero samples")
	}
	out := make([]float64, n)
	inv := 1.0 / float64(total)
	for _, u := range updates {
		for i, v := range u.State {
			out[i] += v * inv
		}
	}
	return out, nil
}
