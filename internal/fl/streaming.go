package fl

import (
	"fmt"
	"math"
	"sort"
)

// StreamingAggregator folds one round's updates into a running accumulator
// as they arrive, instead of materializing the whole cohort in memory:
// server memory stays O(model), not O(clients × model). Begin arms the
// aggregator for a round, Fold consumes one update (the caller may release
// the update's buffer immediately after — implementations never retain it),
// and Finalize produces the next global state.
//
// Implementations built on the exact fixed-point accumulator (StreamingFedAvg)
// are fold-order invariant: any arrival order produces bit-identical output,
// which is what lets the streaming path match the materialized sorted-order
// path bit for bit, and lets async mode fold late updates whenever they land.
type StreamingAggregator interface {
	// Name identifies the rule, e.g. "fedavg".
	Name() string
	// Begin resets the accumulator for a round starting from prevGlobal.
	Begin(round int, prevGlobal []float64)
	// Fold accumulates one update. The update and its State buffer are not
	// retained. A non-nil error poisons the round (caller's choice to abort
	// or evict the sender); the update is not counted.
	Fold(u *Update) error
	// Finalize returns the aggregated next global state.
	Finalize() ([]float64, error)
}

// StreamingCapable is implemented by defenses whose server-side aggregation
// rule can run as a StreamingAggregator. Returning nil declares the rule
// non-streaming for its current configuration (Krum and Multi-Krum score
// each update against the whole cohort, so they inherently need every
// update materialized); the flnet server then falls back to materialized
// aggregation and raises a telemetry warning.
type StreamingCapable interface {
	StreamingAggregator() StreamingAggregator
}

// StreamingOf returns def's streaming aggregator, or nil when the defense
// does not (or cannot) stream.
func StreamingOf(def Defense) StreamingAggregator {
	if sc, ok := def.(StreamingCapable); ok {
		return sc.StreamingAggregator()
	}
	return nil
}

// CohortAware is implemented by defenses whose correctness depends on the
// exact per-round participant set. Secure aggregation is the canonical
// case: pairwise masks only cancel when both endpoints of every mask edge
// aggregate in the same round, so under client sampling the mask graph must
// be restricted to the sampled cohort (paper Fig. 6 semantics) — on the
// server before masked aggregation, and on every sampled client before it
// masks its upload. The flnet layer calls SetRoundCohort on both sides and
// ships the cohort ids in the round's global broadcast.
type CohortAware interface {
	// SetRoundCohort announces the client ids sampled into round. The slice
	// is not retained (implementations copy).
	SetRoundCohort(round int, cohort []int)
}

// StalenessWeight is the age decay applied to an update aggregated s rounds
// after the round it trained against: 1/(1+s). Fresh updates (s ≤ 0) keep
// full weight, so synchronous rounds are unaffected.
func StalenessWeight(s int) float64 {
	if s <= 0 {
		return 1
	}
	return 1 / float64(1+s)
}

// StreamingFedAvg is the streaming form of FedAvg: the sample-count- and
// staleness-weighted average, accumulated exactly so fold order cannot
// change the result. FedAvg itself is defined as this aggregator folded
// over the batch, which is why the two paths agree bit for bit.
//
// A zero total weight falls back to the (staleness-weighted) mean of the
// folded states, preserving classic FedAvg's zero-weight behavior.
type StreamingFedAvg struct {
	dim      int // -1 until the first fold fixes it
	weighted *exactVec
	plain    *exactVec
	wTotal   fixAcc
	cTotal   fixAcc
	count    int
}

var _ StreamingAggregator = (*StreamingFedAvg)(nil)

// NewStreamingFedAvg returns an armed aggregator (Begin is optional for the
// first round).
func NewStreamingFedAvg() *StreamingFedAvg {
	a := &StreamingFedAvg{}
	a.Begin(0, nil)
	return a
}

// Name implements StreamingAggregator.
func (a *StreamingFedAvg) Name() string { return "fedavg" }

// Begin implements StreamingAggregator. An empty prevGlobal leaves the
// dimension to be fixed by the first fold.
func (a *StreamingFedAvg) Begin(_ int, prevGlobal []float64) {
	a.wTotal, a.cTotal = fixAcc{}, fixAcc{}
	a.count = 0
	if len(prevGlobal) == 0 {
		a.dim = -1
		return
	}
	a.setDim(len(prevGlobal))
}

func (a *StreamingFedAvg) setDim(n int) {
	a.dim = n
	if a.weighted == nil {
		a.weighted = newExactVec(n)
		a.plain = newExactVec(n)
		return
	}
	a.weighted.reset(n)
	a.plain.reset(n)
}

// Fold implements StreamingAggregator.
func (a *StreamingFedAvg) Fold(u *Update) error {
	if u == nil {
		return fmt.Errorf("fl: fold of nil update")
	}
	if a.dim < 0 {
		a.setDim(len(u.State))
	}
	if len(u.State) != a.dim {
		return fmt.Errorf("fl: update from client %d has %d values, want %d", u.ClientID, len(u.State), a.dim)
	}
	decay := StalenessWeight(u.Staleness)
	w := float64(u.NumSamples) * decay
	if !a.wTotal.addFloat(w) || !a.cTotal.addFloat(decay) {
		return fmt.Errorf("fl: update from client %d has unrepresentable weight %g", u.ClientID, w)
	}
	a.weighted.addScaled(u.State, w)
	a.plain.addScaled(u.State, decay)
	a.count++
	return nil
}

// Count returns how many updates have been folded since Begin.
func (a *StreamingFedAvg) Count() int { return a.count }

// Finalize implements StreamingAggregator.
func (a *StreamingFedAvg) Finalize() ([]float64, error) {
	if a.count == 0 {
		return nil, fmt.Errorf("fl: FedAvg of zero updates")
	}
	out := make([]float64, a.dim)
	if a.wTotal.isZero() {
		a.plain.finalize(a.cTotal.float(), out)
	} else {
		a.weighted.finalize(a.wTotal.float(), out)
	}
	return out, nil
}

// MemoryBytes reports the accumulator footprint (the aggregation
// peak-memory gauge adds it to the in-flight update payload).
func (a *StreamingFedAvg) MemoryBytes() int {
	if a.weighted == nil {
		return 0
	}
	return a.weighted.bytes() + a.plain.bytes() + 2*16
}

// StreamingNormBound is the streaming form of norm-bounded averaging: each
// arriving update's delta (state − prevGlobal) is clipped to
// multiple × median of a trailing window of previously accepted norms, then
// folded into a StreamingFedAvg.
//
// The bound deliberately differs from NormBoundedFedAvg's: the materialized
// rule clips against the median of the *current* round (it has every update
// in hand), which a per-arrival fold cannot know. The streaming rule
// calibrates on completed rounds instead — the first rounds pass unclipped
// while the window fills (like the screen's MinHistory warmup), and within
// a round the bound is fixed at Begin, so verdicts are independent of
// arrival order. Non-finite updates are dropped, mirroring the materialized
// rule's finiteness filter.
type StreamingNormBound struct {
	inner      *StreamingFedAvg
	multiple   float64
	window     int
	minHistory int
	prev       []float64
	bound      float64
	history    []float64
	roundNorms []float64
	scratch    []float64
	dropped    int
}

var _ StreamingAggregator = (*StreamingNormBound)(nil)

// NewStreamingNormBound returns a streaming norm-bound aggregator; multiple
// ≤ 0 means 1 (clip to the median itself), matching NormBoundedFedAvg.
func NewStreamingNormBound(multiple float64) *StreamingNormBound {
	if multiple <= 0 {
		multiple = 1
	}
	return &StreamingNormBound{
		inner:      NewStreamingFedAvg(),
		multiple:   multiple,
		window:     64,
		minHistory: 4,
	}
}

// Name implements StreamingAggregator.
func (a *StreamingNormBound) Name() string { return "norm-bound" }

// Begin implements StreamingAggregator. The round's clip bound is fixed
// here from the trailing norm window, so every fold of the round sees the
// same bound regardless of arrival order.
func (a *StreamingNormBound) Begin(round int, prevGlobal []float64) {
	a.inner.Begin(round, prevGlobal)
	a.prev = prevGlobal
	a.roundNorms = a.roundNorms[:0]
	a.dropped = 0
	a.bound = a.currentBound()
}

// currentBound returns multiple × median of the trailing accepted norms, or
// +Inf while the window is still calibrating.
func (a *StreamingNormBound) currentBound() float64 {
	if len(a.history) < a.minHistory {
		return math.Inf(1)
	}
	sorted := append([]float64(nil), a.history...)
	sort.Float64s(sorted)
	med := sorted[len(sorted)/2]
	if len(sorted)%2 == 0 {
		med = (sorted[len(sorted)/2-1] + sorted[len(sorted)/2]) / 2
	}
	if med <= 0 {
		return math.Inf(1)
	}
	return a.multiple * med
}

// Fold implements StreamingAggregator.
func (a *StreamingNormBound) Fold(u *Update) error {
	if u == nil {
		return fmt.Errorf("fl: fold of nil update")
	}
	if len(a.prev) > 0 && len(u.State) != len(a.prev) {
		return fmt.Errorf("fl: update from client %d has %d values, want %d", u.ClientID, len(u.State), len(a.prev))
	}
	if !isFinite(u.State) {
		a.dropped++
		return nil
	}
	norm := DeltaNorm(a.prev, u.State)
	if len(a.prev) == 0 || norm <= a.bound {
		if err := a.inner.Fold(u); err != nil {
			return err
		}
		a.roundNorms = append(a.roundNorms, norm)
		return nil
	}
	// Clip: keep the delta's direction, cap its magnitude at the bound.
	scale := a.bound / norm
	if cap(a.scratch) < len(u.State) {
		a.scratch = make([]float64, len(u.State))
	}
	a.scratch = a.scratch[:len(u.State)]
	for i := range a.scratch {
		a.scratch[i] = a.prev[i] + scale*(u.State[i]-a.prev[i])
	}
	cu := *u
	cu.State = a.scratch
	if err := a.inner.Fold(&cu); err != nil {
		return err
	}
	a.roundNorms = append(a.roundNorms, a.bound)
	return nil
}

// Finalize implements StreamingAggregator: the round's accepted norms are
// sorted (so the window's content is independent of arrival order) and
// appended to the trailing window before the inner average finalizes.
func (a *StreamingNormBound) Finalize() ([]float64, error) {
	if a.inner.Count() == 0 && a.dropped > 0 {
		return nil, fmt.Errorf("fl: norm-bounded FedAvg: every update carries non-finite values")
	}
	sort.Float64s(a.roundNorms)
	a.history = append(a.history, a.roundNorms...)
	if len(a.history) > a.window {
		a.history = a.history[len(a.history)-a.window:]
	}
	a.roundNorms = a.roundNorms[:0]
	return a.inner.Finalize()
}

// MemoryBytes reports the accumulator footprint.
func (a *StreamingNormBound) MemoryBytes() int {
	return a.inner.MemoryBytes() + (len(a.history)+cap(a.scratch))*8
}

// ExportNorms copies the trailing accepted-norm window for checkpointing,
// so a crash/resume keeps clipping against the same calibration.
func (a *StreamingNormBound) ExportNorms() []float64 {
	return append([]float64(nil), a.history...)
}

// ImportNorms restores a checkpointed norm window.
func (a *StreamingNormBound) ImportNorms(norms []float64) {
	a.history = append(a.history[:0], norms...)
}

// NormCarrier is implemented by streaming aggregators with calibration
// state worth checkpointing (StreamingNormBound's trailing norm window).
type NormCarrier interface {
	ExportNorms() []float64
	ImportNorms([]float64)
}
