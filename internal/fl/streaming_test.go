package fl

import (
	"math"
	"math/rand"
	"testing"
)

// synthUpdates builds a deterministic batch of updates with varied weights.
func synthUpdates(rng *rand.Rand, n, dim int) []*Update {
	ups := make([]*Update, n)
	for i := range ups {
		state := make([]float64, dim)
		for j := range state {
			state[j] = rng.NormFloat64()
		}
		ups[i] = &Update{ClientID: i, NumSamples: 1 + rng.Intn(9), State: state}
	}
	return ups
}

// foldAll folds a batch in the given order and finalizes.
func foldAll(t *testing.T, agg StreamingAggregator, prev []float64, ups []*Update) []float64 {
	t.Helper()
	agg.Begin(0, prev)
	for _, u := range ups {
		if err := agg.Fold(u); err != nil {
			t.Fatal(err)
		}
	}
	out, err := agg.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestStreamingFedAvgOrderInvariance is the property the whole streaming
// design rests on: folding any permutation of the batch produces
// bit-identical output, and that output is bit-identical to the
// materialized FedAvg of the same batch.
func TestStreamingFedAvgOrderInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(30)
		dim := 1 + rng.Intn(64)
		ups := synthUpdates(rng, n, dim)

		want, err := FedAvg(ups)
		if err != nil {
			t.Fatal(err)
		}
		agg := NewStreamingFedAvg()
		for perm := 0; perm < 5; perm++ {
			shuffled := append([]*Update(nil), ups...)
			rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
			got := foldAll(t, agg, nil, shuffled)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("trial %d perm %d coordinate %d: streaming %v != materialized %v",
						trial, perm, i, got[i], want[i])
				}
			}
		}
	}
}

// TestStreamingFedAvgZeroWeights: all-zero sample counts fall back to the
// plain mean, matching materialized FedAvg.
func TestStreamingFedAvgZeroWeights(t *testing.T) {
	ups := []*Update{
		{ClientID: 0, NumSamples: 0, State: []float64{2, 4}},
		{ClientID: 1, NumSamples: 0, State: []float64{4, 8}},
	}
	want, err := FedAvg(ups)
	if err != nil {
		t.Fatal(err)
	}
	got := foldAll(t, NewStreamingFedAvg(), nil, ups)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("coordinate %d: %v != %v", i, got[i], want[i])
		}
	}
	if got[0] != 3 || got[1] != 6 {
		t.Fatalf("zero-weight mean: got %v, want [3 6]", got)
	}
}

// TestStalenessWeight checks the age decay and its effect on the average:
// a stale update counts with weight NumSamples/(1+staleness).
func TestStalenessWeight(t *testing.T) {
	if StalenessWeight(0) != 1 || StalenessWeight(-3) != 1 {
		t.Fatal("fresh updates must keep full weight")
	}
	if StalenessWeight(1) != 0.5 || StalenessWeight(3) != 0.25 {
		t.Fatalf("decay wrong: s=1 %v, s=3 %v", StalenessWeight(1), StalenessWeight(3))
	}
	// Two clients, equal sample counts; the stale one (s=1) counts half.
	ups := []*Update{
		{ClientID: 0, NumSamples: 4, State: []float64{0}},
		{ClientID: 1, NumSamples: 4, Staleness: 1, State: []float64{3}},
	}
	got := foldAll(t, NewStreamingFedAvg(), nil, ups)
	// (4*0 + 2*3) / (4 + 2) = 1
	if got[0] != 1 {
		t.Fatalf("staleness-weighted mean: got %v, want 1", got[0])
	}
}

// TestStreamingFedAvgRejectsMismatch: a wrong-dimension fold errors without
// corrupting the accumulator.
func TestStreamingFedAvgRejectsMismatch(t *testing.T) {
	agg := NewStreamingFedAvg()
	agg.Begin(0, []float64{0, 0})
	if err := agg.Fold(&Update{NumSamples: 1, State: []float64{1, 2, 3}}); err == nil {
		t.Fatal("accepted wrong-dimension update")
	}
	if err := agg.Fold(&Update{NumSamples: 1, State: []float64{1, 2}}); err != nil {
		t.Fatal(err)
	}
	out, err := agg.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 1 || out[1] != 2 {
		t.Fatalf("accumulator corrupted: %v", out)
	}
}

// TestStreamingFedAvgPoisonOnOverflow: contributions at or beyond the
// fixed-point magnitude bound poison the affected coordinate to NaN instead
// of silently wrapping.
func TestStreamingFedAvgPoisonOnOverflow(t *testing.T) {
	agg := NewStreamingFedAvg()
	agg.Begin(0, nil)
	huge := math.Ldexp(1, 41) // 2^41 >= fixMaxMag
	if err := agg.Fold(&Update{NumSamples: 1, State: []float64{1, huge}}); err != nil {
		t.Fatal(err)
	}
	out, err := agg.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 1 {
		t.Fatalf("untainted coordinate changed: %v", out[0])
	}
	if !math.IsNaN(out[1]) {
		t.Fatalf("overflowed coordinate should finalize NaN, got %v", out[1])
	}
}

// TestStreamingNormBoundWindow: the bound calibrates on completed rounds —
// wide open while the history warms up, then clipping an outlier delta to
// multiple x median of the trailing window, independent of arrival order.
func TestStreamingNormBoundWindow(t *testing.T) {
	prev := make([]float64, 4)
	agg := NewStreamingNormBound(2)

	// Warmup rounds: unit-norm deltas, no clipping possible (bound +Inf).
	for round := 0; round < 3; round++ {
		agg.Begin(round, prev)
		for c := 0; c < 3; c++ {
			state := []float64{1, 0, 0, 0} // delta norm 1
			if err := agg.Fold(&Update{ClientID: c, NumSamples: 1, State: state}); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := agg.Finalize(); err != nil {
			t.Fatal(err)
		}
	}

	// Calibrated round: bound = 2 x median(1) = 2. An update with delta norm
	// 10 must fold clipped to norm 2; its neighbors are untouched.
	agg.Begin(3, prev)
	if err := agg.Fold(&Update{ClientID: 0, NumSamples: 1, State: []float64{10, 0, 0, 0}}); err != nil {
		t.Fatal(err)
	}
	if err := agg.Fold(&Update{ClientID: 1, NumSamples: 1, State: []float64{1, 0, 0, 0}}); err != nil {
		t.Fatal(err)
	}
	out, err := agg.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	// (2 + 1) / 2 = 1.5 in the first coordinate.
	if math.Abs(out[0]-1.5) > 1e-12 {
		t.Fatalf("clipped average: got %v, want 1.5", out[0])
	}

	// Non-finite updates are dropped, not folded.
	agg.Begin(4, prev)
	if err := agg.Fold(&Update{ClientID: 0, NumSamples: 1, State: []float64{math.NaN(), 0, 0, 0}}); err != nil {
		t.Fatal(err)
	}
	if _, err := agg.Finalize(); err == nil {
		t.Fatal("a round of only non-finite updates should fail to finalize")
	}
}

// TestStreamingNormBoundExportImport: the trailing window survives a
// checkpoint round-trip, so a resumed aggregator clips with the same bound.
func TestStreamingNormBoundExportImport(t *testing.T) {
	a := NewStreamingNormBound(1)
	a.ImportNorms([]float64{1, 2, 3, 4, 5})
	norms := a.ExportNorms()
	if len(norms) != 5 {
		t.Fatalf("exported %d norms, want 5", len(norms))
	}
	b := NewStreamingNormBound(1)
	b.ImportNorms(norms)
	prev := []float64{0}
	a.Begin(0, prev)
	b.Begin(0, prev)
	// Median of {1..5} is 3: a delta of norm 5 clips to 3 in both.
	for _, agg := range []*StreamingNormBound{a, b} {
		if err := agg.Fold(&Update{NumSamples: 1, State: []float64{5}}); err != nil {
			t.Fatal(err)
		}
	}
	av, err := a.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	bv, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if av[0] != bv[0] || av[0] != 3 {
		t.Fatalf("resumed bound differs: %v vs %v (want 3)", av[0], bv[0])
	}
}

// TestServerStreamingRound drives the fl.Server streaming API end to end:
// BeginRound/Offer/FinishRound must match a materialized Aggregate of the
// same batch bit for bit, verdicts must reflect the screen, and AbortRound
// must leave the state untouched.
func TestServerStreamingRound(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	dim := 16
	initial := make([]float64, dim)
	ups := synthUpdates(rng, 8, dim)

	mkServer := func() *Server {
		srv, err := NewServer(append([]float64(nil), initial...), &fedAvgDefense{}, nil)
		if err != nil {
			t.Fatal(err)
		}
		srv.SetScreen(NewScreen(ScreenConfig{}))
		return srv
	}

	mat := mkServer()
	cp := make([]*Update, len(ups))
	for i, u := range ups {
		cu := *u
		cu.State = append([]float64(nil), u.State...)
		cp[i] = &cu
	}
	if err := mat.Aggregate(cp); err != nil {
		t.Fatal(err)
	}

	str := mkServer()
	if err := str.BeginRound(NewStreamingFedAvg()); err != nil {
		t.Fatal(err)
	}
	if _, err := str.Offer(nil); err == nil {
		t.Fatal("Offer(nil) should error")
	}
	for i := len(ups) - 1; i >= 0; i-- { // reversed arrival order
		v, err := str.Offer(ups[i])
		if err != nil {
			t.Fatal(err)
		}
		if v != OfferAccepted {
			t.Fatalf("update %d verdict %v, want accepted", i, v)
		}
	}
	// A NaN payload is rejected per-arrival, not folded.
	if v, err := str.Offer(&Update{ClientID: 98, NumSamples: 1, State: nanState(dim)}); err != nil || v != OfferRejected {
		t.Fatalf("NaN offer: verdict %v err %v, want rejected/nil", v, err)
	}
	if got := str.StreamCount(); got != len(ups) {
		t.Fatalf("StreamCount %d, want %d", got, len(ups))
	}
	if err := str.FinishRound(); err != nil {
		t.Fatal(err)
	}

	ms, ss := mat.GlobalState(), str.GlobalState()
	for i := range ms {
		if ms[i] != ss[i] {
			t.Fatalf("coordinate %d: materialized %v != streamed %v", i, ms[i], ss[i])
		}
	}
	if mat.Round() != str.Round() {
		t.Fatalf("rounds diverged: %d vs %d", mat.Round(), str.Round())
	}

	// Abort: state and round stay put, and a new round can begin.
	if err := str.BeginRound(NewStreamingFedAvg()); err != nil {
		t.Fatal(err)
	}
	if err := str.BeginRound(NewStreamingFedAvg()); err == nil {
		t.Fatal("double BeginRound should error")
	}
	if _, err := str.Offer(ups[0]); err != nil {
		t.Fatal(err)
	}
	str.AbortRound()
	after := str.GlobalState()
	for i := range ss {
		if after[i] != ss[i] {
			t.Fatal("AbortRound changed the global state")
		}
	}
	if _, err := str.Offer(ups[0]); err == nil {
		t.Fatal("Offer after AbortRound should error")
	}
	// An empty round fails to finish.
	if err := str.BeginRound(NewStreamingFedAvg()); err != nil {
		t.Fatal(err)
	}
	if err := str.FinishRound(); err == nil {
		t.Fatal("FinishRound with zero updates should error")
	}
}

func nanState(dim int) []float64 {
	s := make([]float64, dim)
	s[0] = math.NaN()
	return s
}

// fedAvgDefense is a minimal streaming-capable defense for server tests.
type fedAvgDefense struct{}

func (d *fedAvgDefense) Name() string                                  { return "test-fedavg" }
func (d *fedAvgDefense) Bind(ModelInfo) error                          { return nil }
func (d *fedAvgDefense) OnGlobalModel(_, _ int, g []float64) []float64 { return g }
func (d *fedAvgDefense) BeforeUpload(int, []float64, *Update)          {}
func (d *fedAvgDefense) Aggregate(_ int, _ []float64, ups []*Update) ([]float64, error) {
	return FedAvg(ups)
}
func (d *fedAvgDefense) StreamingAggregator() StreamingAggregator { return NewStreamingFedAvg() }
