package fl

import (
	"fmt"
	"math"
	"sort"
)

// Quantized delta payloads are the lossy half of the v3 wire protocol
// (internal/flnet): a client uploads q(update − broadcast) instead of the
// raw float64 vector, and the server reconstructs broadcast + dq(payload)
// before screening and folding. Reconstruction is a pure function of the
// payload bytes, and the payload bytes are a pure function of
// (kind, seed, stream, round, base, state, topK) — stochastic rounding is
// driven by a counter-mode hash, not a stateful RNG — so a federation's
// aggregate stays bit-deterministic for a fixed seed no matter how encode
// and fold calls interleave across connections.

// QuantKind selects the quantization level width.
type QuantKind uint8

// Quantization kinds. QuantNone means raw float64 payloads.
const (
	QuantNone QuantKind = iota
	QuantInt8
	QuantInt16
)

// String implements fmt.Stringer.
func (k QuantKind) String() string {
	switch k {
	case QuantNone:
		return "none"
	case QuantInt8:
		return "int8"
	case QuantInt16:
		return "int16"
	default:
		return fmt.Sprintf("quant(%d)", uint8(k))
	}
}

// levels returns the top quantization level (0..levels inclusive), or 0 for
// QuantNone.
func (k QuantKind) levels() uint32 {
	switch k {
	case QuantInt8:
		return math.MaxUint8
	case QuantInt16:
		return math.MaxUint16
	default:
		return 0
	}
}

// ParseQuantKind maps a flag value ("none", "int8", "int16"; "" means none)
// to its QuantKind.
func ParseQuantKind(s string) (QuantKind, error) {
	switch s {
	case "", "none":
		return QuantNone, nil
	case "int8":
		return QuantInt8, nil
	case "int16":
		return QuantInt16, nil
	default:
		return QuantNone, fmt.Errorf("fl: unknown quantization kind %q (want none, int8, or int16)", s)
	}
}

// DeltaPayload is a quantized, optionally top-k-sparsified difference
// between a state vector and a base state both ends share (the round's
// broadcast for uploads, the previous round's broadcast for delta-encoded
// downloads). Values dequantize to Lo + Q/levels·(Hi−Lo).
type DeltaPayload struct {
	// Kind is the level width (QuantInt8 or QuantInt16).
	Kind QuantKind
	// Dim is the full vector length (reconstruction needs it when the
	// payload is sparse).
	Dim int
	// BaseRound is the round of the base state the delta was taken against.
	BaseRound int
	// Lo and Hi span the quantization range (the encoded deltas' min/max).
	Lo, Hi float64
	// Indices lists the coordinates carried by a sparse payload in
	// ascending order; nil means dense (len(Q) == Dim).
	Indices []uint32
	// Q holds the quantization levels, one per carried coordinate
	// (uint8-ranged when Kind is QuantInt8).
	Q []uint16
}

// quantMix is the SplitMix64 finalizer: a counter-mode hash whose stream
// quality is all stochastic rounding needs, with no RNG state to order.
func quantMix(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// quantStream derives the per-(seed, stream, round) hash base; coordinate i
// draws quantMix(base + i). stream is the uploading client id, or -1 for
// the server's canonical broadcast delta.
func quantStream(seed int64, stream, round int) uint64 {
	h := quantMix(uint64(seed))
	h = quantMix(h ^ uint64(int64(stream))*0xd1342543de82ef95)
	return quantMix(h ^ uint64(int64(round))*0xaf251af3b0f025b5)
}

// EncodeDelta quantizes state − base into a DeltaPayload with seeded
// stochastic rounding (round up with probability equal to the fractional
// level, so the dequantized delta is unbiased). topK in (0,1) keeps only
// that fraction of coordinates, chosen by descending |delta| with index
// ties broken ascending — a deterministic selection. baseRound tags the
// payload with the base state's round for the decoder's anchor lookup.
//
// The encoding is bit-reproducible: the same inputs produce the same
// payload in every run and on every platform, which is what lets the
// server's exact fixed-point fold stay deterministic over quantized
// uploads.
func EncodeDelta(kind QuantKind, seed int64, stream, round, baseRound int, base, state []float64, topK float64) (*DeltaPayload, error) {
	if kind != QuantInt8 && kind != QuantInt16 {
		return nil, fmt.Errorf("fl: cannot encode delta with quantization kind %v", kind)
	}
	if len(base) != len(state) || len(state) == 0 {
		return nil, fmt.Errorf("fl: delta encode needs matching non-empty vectors, got base %d state %d", len(base), len(state))
	}
	dim := len(state)
	p := &DeltaPayload{Kind: kind, Dim: dim, BaseRound: baseRound}

	delta := make([]float64, dim)
	for i := range delta {
		delta[i] = state[i] - base[i]
	}
	var idx []uint32
	if topK > 0 && topK < 1 {
		k := int(math.Ceil(topK * float64(dim)))
		if k < 1 {
			k = 1
		}
		order := make([]uint32, dim)
		for i := range order {
			order[i] = uint32(i)
		}
		sort.Slice(order, func(a, b int) bool {
			da, db := math.Abs(delta[order[a]]), math.Abs(delta[order[b]])
			if da != db {
				return da > db
			}
			return order[a] < order[b]
		})
		idx = order[:k]
		sort.Slice(idx, func(a, b int) bool { return idx[a] < idx[b] })
		p.Indices = idx
	}

	value := func(j int) float64 {
		if idx != nil {
			return delta[idx[j]]
		}
		return delta[j]
	}
	count := dim
	if idx != nil {
		count = len(idx)
	}
	lo, hi := value(0), value(0)
	for j := 0; j < count; j++ {
		v := value(j)
		// NaN must be caught per-value: it compares false against any
		// bound, so a min/max scan alone would let it through.
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("fl: delta encode: non-finite delta %g at coordinate %d", v, j)
		}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	p.Lo, p.Hi = lo, hi
	p.Q = make([]uint16, count)
	if hi == lo {
		return p, nil // constant delta: every level is 0, dequant yields Lo
	}
	levels := float64(kind.levels())
	scale := levels / (hi - lo)
	h := quantStream(seed, stream, round)
	for j := 0; j < count; j++ {
		coord := j
		if idx != nil {
			coord = int(idx[j])
		}
		x := (value(j) - lo) * scale
		q := math.Floor(x)
		frac := x - q
		// Counter-mode draw in [0,1): round up with probability frac.
		u := float64(quantMix(h+uint64(coord))>>11) / float64(1<<53)
		if u < frac {
			q++
		}
		if q < 0 {
			q = 0
		}
		if q > levels {
			q = levels
		}
		p.Q[j] = uint16(q)
	}
	return p, nil
}

// Dequant returns the reconstructed delta value for carried coordinate j.
func (p *DeltaPayload) Dequant(j int) float64 {
	if p.Hi == p.Lo {
		return p.Lo
	}
	return p.Lo + float64(p.Q[j])/float64(p.Kind.levels())*(p.Hi-p.Lo)
}

// Validate checks the payload's structural invariants (sizes, kind, index
// ordering and bounds) so a decoder can reject a corrupt frame before
// touching any base state.
func (p *DeltaPayload) Validate() error {
	if p.Kind != QuantInt8 && p.Kind != QuantInt16 {
		return fmt.Errorf("fl: delta payload has quantization kind %v", p.Kind)
	}
	if p.Dim <= 0 {
		return fmt.Errorf("fl: delta payload has dimension %d", p.Dim)
	}
	if math.IsNaN(p.Lo) || math.IsInf(p.Lo, 0) || math.IsNaN(p.Hi) || math.IsInf(p.Hi, 0) || p.Hi < p.Lo {
		return fmt.Errorf("fl: delta payload has range [%g, %g]", p.Lo, p.Hi)
	}
	if p.Indices == nil {
		if len(p.Q) != p.Dim {
			return fmt.Errorf("fl: dense delta payload has %d levels for dimension %d", len(p.Q), p.Dim)
		}
	} else {
		if len(p.Indices) != len(p.Q) || len(p.Indices) == 0 || len(p.Indices) > p.Dim {
			return fmt.Errorf("fl: sparse delta payload has %d indices for %d levels (dimension %d)",
				len(p.Indices), len(p.Q), p.Dim)
		}
		prev := -1
		for _, ix := range p.Indices {
			if int(ix) <= prev || int(ix) >= p.Dim {
				return fmt.Errorf("fl: sparse delta payload index %d out of order or range (dimension %d)", ix, p.Dim)
			}
			prev = int(ix)
		}
	}
	if max := uint16(p.Kind.levels()); max < math.MaxUint16 {
		for _, q := range p.Q {
			if q > max {
				return fmt.Errorf("fl: delta payload level %d exceeds %v maximum %d", q, p.Kind, max)
			}
		}
	}
	return nil
}

// Apply reconstructs base + dequantized delta into dst (grown as needed)
// and returns it. base is read-only; coordinates a sparse payload does not
// carry copy through unchanged.
func (p *DeltaPayload) Apply(base, dst []float64) ([]float64, error) {
	if err := p.Validate(); err != nil {
		return dst, err
	}
	if len(base) != p.Dim {
		return dst, fmt.Errorf("fl: delta payload for dimension %d applied to base of %d", p.Dim, len(base))
	}
	if cap(dst) < p.Dim {
		dst = make([]float64, p.Dim)
	}
	dst = dst[:p.Dim]
	copy(dst, base)
	if p.Indices == nil {
		for i := range dst {
			dst[i] += p.Dequant(i)
		}
		return dst, nil
	}
	for j, ix := range p.Indices {
		dst[ix] += p.Dequant(j)
	}
	return dst, nil
}
