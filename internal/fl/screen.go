package fl

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// The screen is the update validation stage every round passes through
// before the defense's aggregation rule runs: structurally invalid or
// non-finite updates are rejected outright, over-norm updates are clipped
// or rejected against a running median-of-norms bound, and repeat offenders
// are quarantined — their updates are excluded for a fixed number of rounds
// even if they reconnect under the fault-tolerance path.

// ScreenConfig configures the update screen. The zero value is a useful
// default: reject non-finite updates, no norm clipping, quarantine after
// the first offense for three rounds.
type ScreenConfig struct {
	// AllowNonFinite disables the NaN/Inf rejection. Leave false: a single
	// NaN coordinate corrupts FedAvg and misorders sort-based rules.
	AllowNonFinite bool
	// ClipNorms enables delta-norm validation: each update's L2 distance to
	// the round's starting global state is compared against a running
	// median of recently accepted norms. Off by default because defenses
	// with legitimately outsized uploads (secure aggregation's masked
	// states) must not be clipped.
	ClipNorms bool
	// NormMultiple scales the clip bound (default 3): deltas with norm in
	// (NormMultiple×median, RejectMultiple×median] are scaled down to the
	// bound.
	NormMultiple float64
	// RejectMultiple scales the rejection bound (default 10): deltas past
	// it are dropped and count as an offense.
	RejectMultiple float64
	// HistoryWindow is how many recent accepted norms the running median
	// covers (default 64).
	HistoryWindow int
	// MinHistory is how many accepted norms must be observed before norm
	// verdicts activate (default 4) — the first rounds calibrate the bound.
	MinHistory int
	// Strikes is the number of rejected updates before a client is
	// quarantined (default 1).
	Strikes int
	// QuarantineRounds is how many rounds a quarantined client's updates
	// are excluded for (default 3). Negative disables quarantine.
	QuarantineRounds int
}

func (c ScreenConfig) withDefaults() ScreenConfig {
	if c.NormMultiple <= 0 {
		c.NormMultiple = 3
	}
	if c.RejectMultiple <= 0 {
		c.RejectMultiple = 10
	}
	if c.RejectMultiple < c.NormMultiple {
		c.RejectMultiple = c.NormMultiple
	}
	if c.HistoryWindow <= 0 {
		c.HistoryWindow = 64
	}
	if c.MinHistory <= 0 {
		c.MinHistory = 4
	}
	if c.Strikes <= 0 {
		c.Strikes = 1
	}
	if c.QuarantineRounds == 0 {
		c.QuarantineRounds = 3
	}
	return c
}

// ScreenVerdict records why one update was rejected.
type ScreenVerdict struct {
	ClientID int
	Reason   string
}

// ScreenReport is one round's screening outcome.
type ScreenReport struct {
	// Round is the round the verdicts belong to.
	Round int
	// Accepted lists the client ids whose updates reached the defense
	// (including clipped ones).
	Accepted []int
	// Clipped lists the client ids whose deltas were norm-clipped.
	Clipped []int
	// Rejected lists the rejected updates with reasons.
	Rejected []ScreenVerdict
	// Quarantined lists client ids whose updates were dropped because the
	// client is serving a quarantine penalty from an earlier round.
	Quarantined []int
	// NewlyQuarantined lists client ids whose penalty started this round.
	NewlyQuarantined []int
}

// RejectedIDs returns the rejected client ids.
func (r *ScreenReport) RejectedIDs() []int {
	ids := make([]int, len(r.Rejected))
	for i, v := range r.Rejected {
		ids[i] = v.ClientID
	}
	return ids
}

// Screen validates updates and tracks per-client reputation. Safe for
// concurrent use.
type Screen struct {
	cfg ScreenConfig
	tel *Metrics

	mu sync.Mutex
	// norms is the ring of recently accepted delta norms.
	norms []float64
	// offenses counts rejected updates per client.
	offenses map[int]int
	// blockedUntil maps a quarantined client to the last round (inclusive)
	// its updates are excluded.
	blockedUntil map[int]int
}

// NewScreen builds a screen from cfg (zero value: defaults).
func NewScreen(cfg ScreenConfig) *Screen {
	return &Screen{
		cfg:          cfg.withDefaults(),
		tel:          defaultMetrics,
		offenses:     make(map[int]int),
		blockedUntil: make(map[int]int),
	}
}

// SetMetrics points the screen's verdict counters at m — per-job bundles
// in service mode, see Server.SetMetrics. nil restores the default.
func (s *Screen) SetMetrics(m *Metrics) {
	if m == nil {
		m = defaultMetrics
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tel = m
}

// Quarantined reports whether clientID's updates are excluded at round.
func (s *Screen) Quarantined(clientID, round int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.quarantined(clientID, round)
}

// quarantined is the lock-free core of Quarantined. The existence check
// matters: the map's zero value would otherwise quarantine every client at
// round 0. Callers hold s.mu.
func (s *Screen) quarantined(clientID, round int) bool {
	until, ok := s.blockedUntil[clientID]
	return ok && round <= until
}

// Offenses returns how many of clientID's updates have been rejected.
func (s *Screen) Offenses(clientID int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.offenses[clientID]
}

// medianNorm returns the running median of accepted norms; ok is false
// until MinHistory norms are recorded. Callers hold s.mu.
func (s *Screen) medianNorm() (float64, bool) {
	if len(s.norms) < s.cfg.MinHistory {
		return 0, false
	}
	sorted := append([]float64(nil), s.norms...)
	sort.Float64s(sorted)
	med := sorted[len(sorted)/2]
	if len(sorted)%2 == 0 {
		med = (sorted[len(sorted)/2-1] + sorted[len(sorted)/2]) / 2
	}
	return med, med > 0
}

// recordNorm pushes an accepted norm into the ring. Callers hold s.mu.
func (s *Screen) recordNorm(norm float64) {
	s.norms = append(s.norms, norm)
	if len(s.norms) > s.cfg.HistoryWindow {
		s.norms = s.norms[len(s.norms)-s.cfg.HistoryWindow:]
	}
}

// reject books an offense for clientID at round and starts a quarantine
// penalty when the strike budget is exhausted. Callers hold s.mu. Returns
// whether the client was newly quarantined.
func (s *Screen) reject(clientID, round int) bool {
	s.offenses[clientID]++
	if s.cfg.QuarantineRounds < 0 || s.offenses[clientID] < s.cfg.Strikes {
		return false
	}
	until := round + s.cfg.QuarantineRounds
	if prev, ok := s.blockedUntil[clientID]; ok && until <= prev {
		return false
	}
	already := s.quarantined(clientID, round)
	s.blockedUntil[clientID] = until
	return !already
}

// ScreenState is the screen's exportable reputation state, checkpointed by
// the middleware so quarantine penalties survive a server restart (a
// poisoner must not be paroled by crashing the server).
type ScreenState struct {
	// Offenses counts rejected updates per client id.
	Offenses map[int]int
	// BlockedUntil maps a quarantined client id to the last round
	// (inclusive) its updates are excluded.
	BlockedUntil map[int]int
	// Norms is the running window of accepted delta norms.
	Norms []float64
}

// ExportState deep-copies the screen's reputation state for checkpointing.
func (s *Screen) ExportState() ScreenState {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := ScreenState{
		Offenses:     make(map[int]int, len(s.offenses)),
		BlockedUntil: make(map[int]int, len(s.blockedUntil)),
		Norms:        append([]float64(nil), s.norms...),
	}
	for id, n := range s.offenses {
		st.Offenses[id] = n
	}
	for id, until := range s.blockedUntil {
		st.BlockedUntil[id] = until
	}
	return st
}

// ImportState replaces the screen's reputation state with a checkpointed
// copy (crash recovery). Nil maps reset the corresponding state.
func (s *Screen) ImportState(st ScreenState) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.offenses = make(map[int]int, len(st.Offenses))
	s.blockedUntil = make(map[int]int, len(st.BlockedUntil))
	for id, n := range st.Offenses {
		s.offenses[id] = n
	}
	for id, until := range st.BlockedUntil {
		s.blockedUntil[id] = until
	}
	s.norms = append(s.norms[:0], st.Norms...)
}

// Apply screens one round's updates against prevGlobal (the state the
// round started from) and returns the survivors plus the verdict report.
// Input updates are never mutated; clipped updates are copies.
func (s *Screen) Apply(round int, prevGlobal []float64, updates []*Update) ([]*Update, ScreenReport) {
	s.mu.Lock()
	defer s.mu.Unlock()

	report := ScreenReport{Round: round}
	kept := make([]*Update, 0, len(updates))
	for _, u := range updates {
		if su, ok := s.applyOne(&report, round, prevGlobal, u); ok {
			kept = append(kept, su)
		}
	}
	s.tel.ScreenAccepted.Add(int64(len(report.Accepted)))
	s.tel.ScreenRejected.Add(int64(len(report.Rejected)))
	s.tel.ScreenClipped.Add(int64(len(report.Clipped)))
	s.tel.ScreenQuarantined.Add(int64(len(report.Quarantined)))
	s.updateOccupancy(round)
	return kept, report
}

// ApplyOne screens a single update as it arrives — the streaming
// aggregation path issues its verdict per arrival, before the update is
// folded and its buffer released. The verdict is appended to report (the
// round's running report, owned by the caller); the returned update is the
// one to fold (a scaled copy when clipped) and ok reports survival.
// Equivalent to Apply over a one-update batch: folding N arrivals through
// ApplyOne books the same verdicts, offenses, and telemetry as one Apply
// over the same N updates.
func (s *Screen) ApplyOne(report *ScreenReport, round int, prevGlobal []float64, u *Update) (*Update, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	before := [4]int{len(report.Accepted), len(report.Rejected), len(report.Clipped), len(report.Quarantined)}
	su, ok := s.applyOne(report, round, prevGlobal, u)
	s.tel.ScreenAccepted.Add(int64(len(report.Accepted) - before[0]))
	s.tel.ScreenRejected.Add(int64(len(report.Rejected) - before[1]))
	s.tel.ScreenClipped.Add(int64(len(report.Clipped) - before[2]))
	s.tel.ScreenQuarantined.Add(int64(len(report.Quarantined) - before[3]))
	s.updateOccupancy(round)
	return su, ok
}

// applyOne issues one update's verdict into report and returns the
// survivor (a clipped copy when norm-bounded). Callers hold s.mu.
func (s *Screen) applyOne(report *ScreenReport, round int, prevGlobal []float64, u *Update) (*Update, bool) {
	if s.quarantined(u.ClientID, round) {
		report.Quarantined = append(report.Quarantined, u.ClientID)
		return nil, false
	}
	if reason := s.validate(prevGlobal, u); reason != "" {
		report.Rejected = append(report.Rejected, ScreenVerdict{ClientID: u.ClientID, Reason: reason})
		if s.reject(u.ClientID, round) {
			report.NewlyQuarantined = append(report.NewlyQuarantined, u.ClientID)
		}
		return nil, false
	}
	su, clipped := s.clip(prevGlobal, u)
	if clipped {
		report.Clipped = append(report.Clipped, su.ClientID)
	}
	report.Accepted = append(report.Accepted, su.ClientID)
	return su, true
}

// updateOccupancy refreshes the quarantine-occupancy gauge. Callers hold
// s.mu.
func (s *Screen) updateOccupancy(round int) {
	occupancy := 0
	for _, until := range s.blockedUntil {
		if round <= until {
			occupancy++
		}
	}
	s.tel.QuarantineOccupancy.Set(int64(occupancy))
}

// validate returns a rejection reason, or "" for a structurally sound
// update. Callers hold s.mu.
func (s *Screen) validate(prevGlobal []float64, u *Update) string {
	if len(u.State) != len(prevGlobal) {
		return fmt.Sprintf("state has %d values, want %d", len(u.State), len(prevGlobal))
	}
	if u.NumSamples < 0 {
		return fmt.Sprintf("negative sample count %d", u.NumSamples)
	}
	if !s.cfg.AllowNonFinite {
		for i, v := range u.State {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Sprintf("non-finite value %g at coordinate %d", v, i)
			}
		}
	}
	if s.cfg.ClipNorms {
		if med, ok := s.medianNorm(); ok {
			if norm := DeltaNorm(prevGlobal, u.State); norm > s.cfg.RejectMultiple*med {
				return fmt.Sprintf("delta norm %.4g exceeds reject bound %.4g", norm, s.cfg.RejectMultiple*med)
			}
		}
	}
	return ""
}

// clip applies the norm bound to an accepted update, returning a scaled
// copy when the delta exceeds the bound, and records the accepted norm.
// Callers hold s.mu.
func (s *Screen) clip(prevGlobal []float64, u *Update) (*Update, bool) {
	if !s.cfg.ClipNorms {
		return u, false
	}
	norm := DeltaNorm(prevGlobal, u.State)
	med, ok := s.medianNorm()
	if !ok || norm <= s.cfg.NormMultiple*med {
		s.recordNorm(norm)
		return u, false
	}
	bound := s.cfg.NormMultiple * med
	scale := bound / norm
	state := make([]float64, len(u.State))
	for i := range state {
		state[i] = prevGlobal[i] + scale*(u.State[i]-prevGlobal[i])
	}
	cu := *u
	cu.State = state
	s.recordNorm(bound)
	return &cu, true
}
